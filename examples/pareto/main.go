// pareto sweeps all five scheduling schemes over a small evaluation corpus
// and prints the energy/QoS Pareto points of the paper's Fig. 13, plus the
// confidence-threshold sensitivity of Fig. 14.
package main

import (
	"log"
	"os"

	"repro"
)

func main() {
	cfg := pes.DefaultExperimentConfig()
	cfg.EvalTracesPerApp = 1 // keep the example fast; increase for smoother averages
	cfg.TrainTracesPerApp = 4

	setup, err := pes.NewExperiments(cfg)
	if err != nil {
		log.Fatal(err)
	}

	pareto, err := setup.Fig13()
	if err != nil {
		log.Fatal(err)
	}
	if err := pareto.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	sensitivity, err := setup.Fig14([]float64{0.3, 0.7, 1.0})
	if err != nil {
		log.Fatal(err)
	}
	if err := sensitivity.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
