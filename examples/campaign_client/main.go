// Campaign client: drive a running pes-serve instance over HTTP — submit a
// campaign, poll its progress, and print the aggregate energy/QoS tables.
//
// Start the service first, then run the client:
//
//	go run ./cmd/pes-serve -addr :8080 &
//	go run ./examples/campaign_client -addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "pes-serve base URL")
	flag.Parse()

	campaign := pes.Campaign{
		Apps:       []string{"cnn", "ebay"},
		TraceSeeds: []int64{1, 2},
		Schedulers: []string{"EBS", "PES", "Oracle"},
		Sweep:      &pes.CampaignSweep{ConfidenceThresholds: []float64{0.5, 0.9}},
	}
	body, err := json.Marshal(campaign)
	if err != nil {
		log.Fatal(err)
	}
	st := post[pes.CampaignStatus](*addr+"/v1/campaigns", body)
	fmt.Printf("submitted campaign %s: %d sessions\n", st.ID, st.Sessions)

	for st.Status == "queued" || st.Status == "running" {
		time.Sleep(200 * time.Millisecond)
		st = get[pes.CampaignStatus](*addr + "/v1/campaigns/" + st.ID)
		fmt.Printf("  %s: %d/%d sessions\n", st.Status, st.Completed, st.Sessions)
	}
	if st.Status != "done" {
		log.Fatalf("campaign ended %s: %s", st.Status, st.Error)
	}

	res := get[pes.CampaignResults](*addr + "/v1/campaigns/" + st.ID + "/results")
	for _, tab := range res.Tables {
		if err := tab.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("server cache: %d sessions served, %d simulated, %d memo hits\n",
		res.Stats.Sessions, res.Stats.UniqueRuns, res.Stats.CacheHits)
}

func post[T any](url string, body []byte) T {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	return decode[T](resp)
}

func get[T any](url string) T {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	return decode[T](resp)
}

func decode[T any](resp *http.Response) T {
	defer resp.Body.Close()
	var v T
	if resp.StatusCode >= 300 {
		var apiErr struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		log.Fatalf("%s: HTTP %d: %s", resp.Request.URL, resp.StatusCode, apiErr.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	return v
}
