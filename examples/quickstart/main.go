// Quickstart: train the PES predictor, simulate one cnn.com session under
// PES and under the reactive EBS baseline, and compare energy and QoS.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Train the event sequence learner offline (the paper trains once on
	//    recorded traces of the 12 seen applications).
	learner, err := pes.TrainPredictor(6, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Pick an application and generate a synthetic user session.
	app, err := pes.AppByName("cnn")
	if err != nil {
		log.Fatal(err)
	}
	tr := pes.GenerateTrace(app, 42)
	events, err := tr.Runtime()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session: %d events over %.0f s on %s\n", tr.Count(), tr.Duration().Seconds(), app.Name)

	// 3. Replay the same session under EBS (reactive) and PES (proactive).
	platform := pes.Exynos5410()
	ebs := pes.RunReactive(platform, app.Name, events, pes.NewEBS(platform))
	scheduler := pes.NewPES(platform, learner, app, tr.DOMSeed, pes.DefaultPredictorConfig())
	proactive := pes.RunProactive(platform, app.Name, events, scheduler)

	// 4. Compare.
	fmt.Printf("%-6s energy=%8.1f mJ  QoS violations=%5.1f%%\n",
		"EBS", ebs.TotalEnergyMJ, 100*ebs.ViolationRate)
	fmt.Printf("%-6s energy=%8.1f mJ  QoS violations=%5.1f%%  (committed speculative frames: %d, mis-predictions: %d)\n",
		"PES", proactive.TotalEnergyMJ, 100*proactive.ViolationRate,
		proactive.CommittedFrames, proactive.Mispredictions)
	saving := 100 * (ebs.TotalEnergyMJ - proactive.TotalEnergyMJ) / ebs.TotalEnergyMJ
	fmt.Printf("PES saves %.1f%% energy relative to EBS on this session\n", saving)
}
