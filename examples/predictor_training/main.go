// predictor_training walks through the offline training pipeline of the PES
// event predictor: generate training traces for the seen applications, train
// the logistic-regression sequence learner, and evaluate its accuracy on
// fresh traces of both seen and unseen applications — including the Sec. 6.5
// ablation without DOM analysis.
package main

import (
	"fmt"
	"log"

	"repro/internal/mlr"
	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/webapp"
)

func main() {
	// Training corpus: several synthetic sessions per seen application.
	train := trace.GenerateCorpus(webapp.SeenApps(), 8, 1000, trace.PurposeTrain, trace.Options{})
	fmt.Printf("training corpus: %d traces, %d events\n", len(train), train.TotalEvents())

	learner := predictor.NewSequenceLearner()
	if err := learner.Train(train, mlr.TrainConfig{}); err != nil {
		log.Fatal(err)
	}

	// Evaluation corpus: new users (different seeds) on all 18 applications.
	eval := trace.GenerateCorpus(webapp.Registry(), 3, 700000, trace.PurposeEval, trace.Options{})

	withDOM, err := predictor.EvaluateAccuracy(learner, eval, true)
	if err != nil {
		log.Fatal(err)
	}
	withoutDOM, err := predictor.EvaluateAccuracy(learner, eval, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-15s %-7s %12s %12s\n", "application", "corpus", "with DOM", "without DOM")
	var seen, unseen, seenN, unseenN float64
	for i, r := range withDOM {
		kind := "unseen"
		if r.Seen {
			kind = "seen"
			seen += r.Accuracy
			seenN++
		} else {
			unseen += r.Accuracy
			unseenN++
		}
		fmt.Printf("%-15s %-7s %11.1f%% %11.1f%%\n", r.App, kind, 100*r.Accuracy, 100*withoutDOM[i].Accuracy)
	}
	fmt.Printf("\naverage accuracy: seen apps %.1f%%, unseen apps %.1f%%\n", 100*seen/seenN, 100*unseen/unseenN)
	fmt.Println("(paper: 91.3% seen, 89.2% unseen; DOM ablation costs ~5%)")
}
