// Batch sessions: simulate many user sessions of one application
// concurrently through the public batch API, with memoized results — the
// README's batch quickstart as a runnable program.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro"
)

func main() {
	learner, err := pes.TrainPredictor(6, 1)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := pes.AppByName("ebay")
	if err != nil {
		log.Fatal(err)
	}
	platform := pes.Exynos5410()

	// 16 sessions (seeds 1..16) under PES, plus seed 1 requested twice to
	// show memoization.
	var sessions []pes.BatchSession
	for _, seed := range append([]int64{1}, seedRange(1, 16)...) {
		s, err := pes.NewSession(pes.SessionSpec{
			Platform:  platform,
			Trace:     pes.GenerateTrace(spec, seed),
			Scheduler: "PES",
			Learner:   learner,
			Predictor: pes.DefaultPredictorConfig(),
		})
		if err != nil {
			log.Fatal(err)
		}
		sessions = append(sessions, s)
	}

	runner := pes.NewBatchRunner(0) // one worker per CPU
	results, err := runner.Run(sessions)
	if err != nil {
		log.Fatal(err)
	}

	var energy, viol float64
	for _, r := range results {
		energy += r.TotalEnergyMJ
		viol += r.ViolationRate
	}
	n := float64(len(results))
	st := runner.Stats()
	fmt.Printf("%d sessions of %s under PES on %d worker(s): %d simulated, %d cache hits\n",
		len(results), spec.Name, runtime.NumCPU(), st.UniqueRuns, st.CacheHits)
	fmt.Printf("average energy %.1f mJ/session, QoS violations %.1f%%\n", energy/n, 100*viol/n)
}

func seedRange(lo, hi int64) []int64 {
	var out []int64
	for s := lo; s <= hi; s++ {
		out = append(out, s)
	}
	return out
}
