// interactive_session reproduces the spirit of the paper's Fig. 2: a short
// representative interaction sequence (a page load followed by a burst of
// taps and a scroll) replayed under the OS governor, EBS and the Oracle,
// showing how reactive schedulers violate deadlines or waste energy while a
// scheduler with knowledge of the future meets every deadline with less
// energy.
package main

import (
	"fmt"

	"repro"
	"repro/internal/acmp"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

func main() {
	platform := pes.Exynos5410()

	// A hand-built four-event sequence shaped like the paper's cnn.com
	// example: E2's workload is too heavy to meet its 300 ms target even at
	// maximum performance unless execution starts early, and E3/E4 follow
	// closely enough to suffer interference.
	events := []*pes.Event{
		{Seq: 0, App: "cnn", Type: webevent.Load, Trigger: 0,
			Work: acmp.Workload{Tmem: 250 * simtime.Millisecond, Cycles: 2300e6}},
		{Seq: 1, App: "cnn", Type: webevent.Click, Trigger: simtime.Time(4 * simtime.Second),
			Work: acmp.Workload{Tmem: 30 * simtime.Millisecond, Cycles: 700e6}},
		{Seq: 2, App: "cnn", Type: webevent.Click, Trigger: simtime.Time(4*simtime.Second + 400*simtime.Millisecond),
			Work: acmp.Workload{Tmem: 15 * simtime.Millisecond, Cycles: 280e6}},
		{Seq: 3, App: "cnn", Type: webevent.Scroll, Trigger: simtime.Time(4*simtime.Second + 800*simtime.Millisecond),
			Work: acmp.Workload{Tmem: 2 * simtime.Millisecond, Cycles: 12e6}},
	}

	run := func(name string, r *pes.Result) {
		fmt.Printf("\n%s\n", name)
		for _, o := range r.Outcomes {
			status := "meets QoS"
			if o.Violated {
				status = "VIOLATES QoS"
			}
			fmt.Printf("  E%d %-6s latency %-9s (target %-6s) on %-14s %s\n",
				o.Event.Seq+1, o.Event.Type, o.Latency, o.Event.QoSTarget(), o.Config, status)
		}
		fmt.Printf("  total energy: %.1f mJ, violations: %d\n", r.TotalEnergyMJ, r.Violations)
	}

	run("Interactive (QoS-agnostic OS governor)",
		pes.RunReactive(platform, "cnn", events, pes.NewInteractive(platform)))
	run("EBS (reactive, QoS-aware, one event at a time)",
		pes.RunReactive(platform, "cnn", events, pes.NewEBS(platform)))
	run("Oracle (proactive, knows the whole sequence)",
		pes.RunProactive(platform, "cnn", events, pes.NewOracle(platform, events)))
}
