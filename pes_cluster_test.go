package pes

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// clusterHarness is a full sharded deployment under test: two HTTP workers
// and a campaign server whose coordinator routes shards to them. Every
// process shares one harness configuration, as a real deployment must for
// results to merge byte-identically.
type clusterHarness struct {
	svc     *Server
	coord   *ClusterCoordinator
	workers []*ClusterWorker
}

func smallCluster(t *testing.T) (*clusterHarness, string) {
	t.Helper()
	if testing.Short() {
		t.Skip("cluster e2e tests train a predictor")
	}
	cfg := ExperimentConfig{TrainTracesPerApp: 2, EvalTracesPerApp: 1, Parallel: 2}
	var urls []string
	h := &clusterHarness{}
	for i := 0; i < 2; i++ {
		w, err := NewClusterWorker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(w.Handler())
		t.Cleanup(ts.Close)
		h.workers = append(h.workers, w)
		urls = append(urls, ts.URL)
	}
	coord, err := NewClusterCoordinator(ClusterConfig{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	h.coord = coord
	svc, err := NewServer(ServerConfig{Experiments: cfg, JobWorkers: 2, Cluster: coord})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	h.svc = svc
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return h, ts.URL
}

// TestClusteredCampaignMatchesSingleProcess submits a campaign to a server
// sharding across two workers and asserts the merged, served results are
// byte-identical (modulo host-timing fields) to a direct single-process
// RunBatch of the same plan — and that a repeat campaign is answered from
// the workers' warm memo caches.
func TestClusteredCampaignMatchesSingleProcess(t *testing.T) {
	h, base := smallCluster(t)

	campaign := Campaign{
		Apps:       []string{"cnn", "ebay"},
		TraceSeeds: []int64{1, 2},
		// All five schedulers: 20 sessions spread across both workers.
	}
	st := postCampaign(t, base, campaign)
	if st.Sessions != 20 {
		t.Fatalf("campaign expanded to %d sessions, want 20", st.Sessions)
	}
	final := awaitCampaign(t, base, st.ID)
	if final.Status != "done" {
		t.Fatalf("campaign ended %s: %s", final.Status, final.Error)
	}
	if final.Completed != final.Sessions {
		t.Errorf("progress reports %d/%d sessions", final.Completed, final.Sessions)
	}

	res := fetchRawResults(t, base, st.ID)
	if len(res.Rows) != 20 {
		t.Fatalf("served %d rows, want 20", len(res.Rows))
	}

	// The same campaign simulated directly, serially, in this process.
	plan, err := NewCampaign(campaign, h.svc.Setup())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunBatch(1, plan.Sessions)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Rows {
		if !compactEqualResult(t, row.Result, direct[i]) {
			t.Errorf("row %d (%s/%d/%s): sharded result differs from single-process RunBatch",
				i, row.App, row.TraceSeed, row.Scheduler)
		}
	}

	// The server's own runner did none of the work; the workers did all of
	// it, visible through the coordinator's merged remote stats.
	if runnerStats := h.svc.Stats(); runnerStats.UniqueRuns != 0 {
		t.Errorf("coordinator process simulated %d sessions itself, want 0", runnerStats.UniqueRuns)
	}
	cs := h.coord.Stats()
	if cs.SessionsRouted != 20 || cs.Remote.UniqueRuns != 20 || cs.WorkerFailures != 0 {
		t.Errorf("coordinator stats after first campaign: %+v", cs)
	}

	// A repeat campaign routes the same sessions to the same workers, whose
	// memo caches answer without re-simulating.
	st2 := postCampaign(t, base, campaign)
	if final2 := awaitCampaign(t, base, st2.ID); final2.Status != "done" {
		t.Fatalf("repeat campaign ended %s: %s", final2.Status, final2.Error)
	}
	res2 := fetchRawResults(t, base, st2.ID)
	for i, row := range res2.Rows {
		if !compactEqualResult(t, row.Result, direct[i]) {
			t.Errorf("repeat row %d: served result differs", i)
		}
	}
	cs = h.coord.Stats()
	if cs.Remote.UniqueRuns != 20 || cs.Remote.CacheHits != 20 || cs.Remote.Sessions != 40 {
		t.Errorf("repeat campaign was not served from warm worker caches: %+v", cs.Remote)
	}
}

// TestClusteredHealthzReportsClusterCounters asserts the coordinator
// surfaces shard/worker counters through /healthz.
func TestClusteredHealthzReportsClusterCounters(t *testing.T) {
	_, base := smallCluster(t)

	st := postCampaign(t, base, Campaign{Apps: []string{"cnn"}, Schedulers: []string{"EBS", "PES"}})
	if final := awaitCampaign(t, base, st.ID); final.Status != "done" {
		t.Fatalf("campaign ended %s: %s", final.Status, final.Error)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status  string `json:"status"`
		Cluster *struct {
			Workers        int   `json:"workers"`
			Shards         int64 `json:"shards"`
			SessionsRouted int64 `json:"sessions_routed"`
			Remote         struct {
				UniqueRuns int64 `json:"UniqueRuns"`
			} `json:"remote"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Cluster == nil {
		t.Fatalf("clustered healthz missing cluster section: %+v", h)
	}
	if h.Cluster.Workers != 2 || h.Cluster.Shards < 1 || h.Cluster.SessionsRouted != 2 {
		t.Errorf("cluster counters = %+v", h.Cluster)
	}
	if h.Cluster.Remote.UniqueRuns != 2 {
		t.Errorf("remote unique runs = %d, want 2", h.Cluster.Remote.UniqueRuns)
	}
}

// TestClusteredSpillOverAndLiveRegistration covers the elastic paths end to
// end: a coordinator with no workers at all executes campaigns locally
// (graceful degradation), and a worker registered at runtime through the
// membership API takes over subsequent campaigns.
func TestClusteredSpillOverAndLiveRegistration(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e tests train a predictor")
	}
	cfg := ExperimentConfig{TrainTracesPerApp: 2, EvalTracesPerApp: 1, Parallel: 2}
	coord, err := NewClusterCoordinator(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	svc, err := NewServer(ServerConfig{Experiments: cfg, JobWorkers: 2, Cluster: coord})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	base := ts.URL

	// With an empty membership the campaign spills over to the server's own
	// in-process worker instead of failing.
	first := Campaign{Apps: []string{"cnn"}, Schedulers: []string{"EBS", "PES"}}
	st := postCampaign(t, base, first)
	if final := awaitCampaign(t, base, st.ID); final.Status != "done" {
		t.Fatalf("spill-over campaign ended %s: %s", final.Status, final.Error)
	}
	res := fetchRawResults(t, base, st.ID)
	plan, err := NewCampaign(first, svc.Setup())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunBatch(1, plan.Sessions)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Rows {
		if !compactEqualResult(t, row.Result, direct[i]) {
			t.Errorf("spill-over row %d differs from single-process RunBatch", i)
		}
	}
	cs := coord.Stats()
	if cs.SessionsSpilled != 2 || cs.Shards != 0 {
		t.Errorf("spill-over not recorded: %+v", cs)
	}
	if got := svc.Stats().UniqueRuns; got != 2 {
		t.Errorf("local worker simulated %d sessions, want 2", got)
	}

	// Register a real worker over HTTP; the next campaign routes to it.
	w, err := NewClusterWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wts := httptest.NewServer(w.Handler())
	t.Cleanup(wts.Close)
	resp, err := http.Post(base+"/v1/cluster/workers", "application/json",
		strings.NewReader(`{"addr": "`+wts.URL+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registration = %d", resp.StatusCode)
	}

	second := Campaign{Apps: []string{"ebay"}, Schedulers: []string{"EBS", "PES"}}
	st2 := postCampaign(t, base, second)
	if final := awaitCampaign(t, base, st2.ID); final.Status != "done" {
		t.Fatalf("post-registration campaign ended %s: %s", final.Status, final.Error)
	}
	res2 := fetchRawResults(t, base, st2.ID)
	plan2, err := NewCampaign(second, svc.Setup())
	if err != nil {
		t.Fatal(err)
	}
	direct2, err := RunBatch(1, plan2.Sessions)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res2.Rows {
		if !compactEqualResult(t, row.Result, direct2[i]) {
			t.Errorf("post-registration row %d differs from single-process RunBatch", i)
		}
	}
	cs = coord.Stats()
	if cs.SessionsRouted != 2 || cs.Workers != 1 {
		t.Errorf("registered worker did not take the campaign: %+v", cs)
	}
	if got := w.Stats().UniqueRuns; got != 2 {
		t.Errorf("registered worker simulated %d sessions, want 2", got)
	}
}
