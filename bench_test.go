// Benchmarks: one testing.B benchmark per table/figure of the paper's
// evaluation section. Each benchmark regenerates the corresponding
// experiment (at a reduced trace count so a full -bench=. run stays in the
// minutes range) and reports a headline metric via b.ReportMetric so that
// the reproduced numbers appear directly in the benchmark output.
//
//	go test -bench=. -benchmem
package pes

import (
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/ilp"
	"repro/internal/predictor"
	"repro/internal/simtime"
	"repro/internal/webapp"
	"repro/internal/webevent"
)

// benchSetup is shared by all experiment benchmarks; building it (predictor
// training + evaluation corpus generation) is itself measured by
// BenchmarkSetupTraining.
var (
	benchOnce  sync.Once
	benchSetup *experiments.Setup
	benchErr   error
)

func getSetup(b *testing.B) *experiments.Setup {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.TrainTracesPerApp = 5
		cfg.EvalTracesPerApp = 2
		benchSetup, benchErr = experiments.NewSetup(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSetup
}

func reportColumnMean(b *testing.B, t *experiments.Table, column, unit string) {
	b.Helper()
	vals := t.Column(column)
	if len(vals) == 0 {
		b.Fatalf("column %q missing from %s", column, t.ID)
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	b.ReportMetric(sum/float64(len(vals)), unit)
}

// BenchmarkSetupTraining measures the offline pipeline: training-trace
// generation plus logistic-regression training (the paper reports ~3 s).
func BenchmarkSetupTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := predictor.TrainOnSeenApps(5, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig02RepresentativeSequence regenerates the Fig. 2 four-event
// comparison (Interactive vs EBS vs Oracle).
func BenchmarkFig02RepresentativeSequence(b *testing.B) {
	s := getSetup(b)
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = s.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
	reportColumnMean(b, t, "violations", "violations/scheme")
}

// BenchmarkFig03EventTypeDistribution regenerates the Type I–IV event
// classification under EBS.
func BenchmarkFig03EventTypeDistribution(b *testing.B) {
	s := getSetup(b)
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = s.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
	if row, ok := t.Row("average"); ok && len(row.Values) == 4 {
		b.ReportMetric(100*(row.Values[0]+row.Values[1]), "%missQoS")
	}
}

// BenchmarkTable1FeatureExtraction measures the Table 1 feature extraction
// over the evaluation corpus.
func BenchmarkTable1FeatureExtraction(b *testing.B) {
	s := getSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig08PredictionAccuracy regenerates the per-application predictor
// accuracy and reports the mean accuracy.
func BenchmarkFig08PredictionAccuracy(b *testing.B) {
	s := getSetup(b)
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = s.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
	if row, ok := t.Row("avg. seen apps"); ok {
		b.ReportMetric(100*row.Values[0], "%accuracy-seen")
	}
	if row, ok := t.Row("avg. unseen apps"); ok {
		b.ReportMetric(100*row.Values[0], "%accuracy-unseen")
	}
}

// BenchmarkFig09PFBDynamics regenerates the PFB-occupancy trace.
func BenchmarkFig09PFBDynamics(b *testing.B) {
	s := getSetup(b)
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = s.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
	reportColumnMean(b, t, "pfb size", "frames")
}

// BenchmarkFig10MispredictionWaste regenerates the mis-prediction waste
// figure and reports the suite-average waste per mis-prediction.
func BenchmarkFig10MispredictionWaste(b *testing.B) {
	s := getSetup(b)
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = s.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
	if row, ok := t.Row("average"); ok {
		b.ReportMetric(row.Values[0], "ms/mispredict")
	}
}

// BenchmarkSec63PredictorOverhead measures one predictor evaluation (the
// paper reports ~2 µs per five-variable logistic evaluation).
func BenchmarkSec63PredictorOverhead(b *testing.B) {
	s := getSetup(b)
	spec := webapp.SeenApps()[0]
	p := predictor.New(s.Learner, spec, 1, predictor.DefaultConfig())
	p.Observe(&webevent.Event{App: spec.Name, Type: webevent.Load})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictNext()
	}
}

// BenchmarkSec63SolverOverhead measures one constrained-optimization solve
// over a typical window (the paper reports ~10 ms).
func BenchmarkSec63SolverOverhead(b *testing.B) {
	// A 6-item, 17-config chain problem, the typical size PES solves.
	prob := ilp.Problem{Start: 0}
	lat := []simtime.Duration{5, 9, 14, 20, 28, 40, 60, 85, 120, 170, 240, 330, 450, 600, 800, 1000, 1300}
	for i := 0; i < 6; i++ {
		item := ilp.Item{Deadline: simtime.Time((i + 1) * 400 * int(simtime.Millisecond))}
		for j, l := range lat {
			item.Choices = append(item.Choices, ilp.Choice{
				Latency: l * simtime.Millisecond,
				Energy:  float64(len(lat)-j) * 1.7,
			})
		}
		prob.Items = append(prob.Items, item)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ilp.Solve(prob)
	}
}

// BenchmarkFig11Energy regenerates the normalized-energy comparison and
// reports the suite-average PES energy relative to Interactive.
func BenchmarkFig11Energy(b *testing.B) {
	s := getSetup(b)
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = s.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
	if row, ok := t.Row("avg. seen apps"); ok {
		b.ReportMetric(row.Values[2], "%PES-energy-vs-Interactive")
		b.ReportMetric(row.Values[1], "%EBS-energy-vs-Interactive")
	}
}

// BenchmarkFig12QoSViolation regenerates the QoS-violation comparison and
// reports the suite-average PES and EBS violation rates.
func BenchmarkFig12QoSViolation(b *testing.B) {
	s := getSetup(b)
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = s.Fig12(); err != nil {
			b.Fatal(err)
		}
	}
	if row, ok := t.Row("avg. seen apps"); ok {
		b.ReportMetric(row.Values[2], "%PES-violations")
		b.ReportMetric(row.Values[1], "%EBS-violations")
	}
}

// BenchmarkFig13Pareto regenerates the Pareto analysis across all five
// schemes.
func BenchmarkFig13Pareto(b *testing.B) {
	s := getSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig13(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14ConfidenceSensitivity regenerates the confidence-threshold
// sensitivity study on a reduced threshold grid.
func BenchmarkFig14ConfidenceSensitivity(b *testing.B) {
	s := getSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig14([]float64{0.3, 0.7, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoDOMAnalysis regenerates the Sec. 6.5 predictor ablation
// and reports the accuracy drop without DOM analysis.
func BenchmarkAblationNoDOMAnalysis(b *testing.B) {
	s := getSetup(b)
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = s.AblationNoDOM(); err != nil {
			b.Fatal(err)
		}
	}
	if row, ok := t.Row("average"); ok {
		b.ReportMetric(100*row.Values[2], "%accuracy-drop")
	}
}

// BenchmarkOtherDeviceTX2 regenerates the TX2 "other devices" study and
// reports the PES energy saving vs Interactive on that platform.
func BenchmarkOtherDeviceTX2(b *testing.B) {
	s := getSetup(b)
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		if t, err = s.OtherDeviceTX2(); err != nil {
			b.Fatal(err)
		}
	}
	if row, ok := t.Row("PES vs Interactive"); ok {
		b.ReportMetric(row.Values[0], "%energy-saving")
	}
}
