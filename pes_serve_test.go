package pes

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// smallServer builds a service instance with a cheap training configuration.
func smallServer(t *testing.T) *Server {
	t.Helper()
	if testing.Short() {
		t.Skip("service e2e tests train a predictor")
	}
	cfg := ExperimentConfig{TrainTracesPerApp: 2, EvalTracesPerApp: 1, Parallel: 2}
	s, err := NewServer(ServerConfig{Experiments: cfg, JobWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postCampaign(t *testing.T, base string, c Campaign) CampaignStatus {
	t.Helper()
	body, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d, want 202", resp.StatusCode)
	}
	var st CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func awaitCampaign(t *testing.T, base, id string) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(base + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st CampaignStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case "queued", "running":
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s still %s (%d/%d) at deadline", id, st.Status, st.Completed, st.Sessions)
			}
			time.Sleep(10 * time.Millisecond)
		default:
			return st
		}
	}
}

// rawResults fetches a campaign's results keeping each per-session result as
// raw JSON, for byte-level comparison.
type rawResults struct {
	ID   string `json:"id"`
	Rows []struct {
		App       string          `json:"app"`
		TraceSeed int64           `json:"trace_seed"`
		Scheduler string          `json:"scheduler"`
		Result    json.RawMessage `json:"result"`
	} `json:"rows"`
	Solver SolverStats `json:"solver"`
	Stats  BatchStats  `json:"stats"`
}

func fetchRawResults(t *testing.T, base, id string) rawResults {
	t.Helper()
	resp, err := http.Get(base + "/v1/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results returned %d, want 200", resp.StatusCode)
	}
	var res rawResults
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

// normalizeResult re-encodes a result JSON document with sorted keys and
// the solver wall time zeroed. Every other field of a Result is
// deterministic; the wall time is a host measurement that legitimately
// differs between the served simulation and the direct re-run.
func normalizeResult(t *testing.T, raw []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if solver, ok := m["Solver"].(map[string]any); ok {
		solver["wall_ns"] = 0
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// compactEqualResult compares a served result against the canonical
// encoding of a directly computed one, byte for byte modulo the solver
// wall-time measurement.
func compactEqualResult(t *testing.T, served json.RawMessage, direct *Result) bool {
	t.Helper()
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(normalizeResult(t, served), normalizeResult(t, want))
}

// TestServedCampaignMatchesDirectRunBatch submits a campaign over HTTP,
// polls it to completion, and asserts every served session result is
// byte-identical to a direct RunBatch of the same sessions on a fresh
// serial runner.
func TestServedCampaignMatchesDirectRunBatch(t *testing.T) {
	svc := smallServer(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	campaign := Campaign{
		Apps:       []string{"cnn"},
		TraceSeeds: []int64{7, 8},
		Schedulers: []string{"EBS", "PES"},
	}
	st := postCampaign(t, ts.URL, campaign)
	if st.Sessions != 4 {
		t.Fatalf("campaign expanded to %d sessions, want 4", st.Sessions)
	}
	final := awaitCampaign(t, ts.URL, st.ID)
	if final.Status != "done" {
		t.Fatalf("campaign ended %s: %s", final.Status, final.Error)
	}
	if final.Completed != final.Sessions {
		t.Errorf("progress reports %d/%d sessions", final.Completed, final.Sessions)
	}

	res := fetchRawResults(t, ts.URL, st.ID)
	if len(res.Rows) != 4 {
		t.Fatalf("served %d rows, want 4", len(res.Rows))
	}
	// The campaign includes PES sessions, so the aggregated solver
	// statistics must report real optimization work.
	if res.Solver.Solves == 0 || res.Solver.Nodes == 0 {
		t.Errorf("campaign solver aggregate is empty: %+v", res.Solver)
	}

	// The same campaign expanded and simulated directly, serially, on a
	// fresh runner — sharing only the trained learner.
	plan, err := NewCampaign(campaign, svc.Setup())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunBatch(1, plan.Sessions)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Rows {
		if m := plan.Meta[i]; row.App != m.App || row.TraceSeed != m.TraceSeed || row.Scheduler != m.Scheduler {
			t.Fatalf("row %d is %s/%d/%s, want %s/%d/%s",
				i, row.App, row.TraceSeed, row.Scheduler, m.App, m.TraceSeed, m.Scheduler)
		}
		if !compactEqualResult(t, row.Result, direct[i]) {
			t.Errorf("row %d (%s/%d/%s): served result differs from direct RunBatch",
				i, row.App, row.TraceSeed, row.Scheduler)
		}
	}
}

// TestConcurrentCampaignsShareMemoCache submits two overlapping campaigns
// from concurrent clients and asserts (a) each unique session was simulated
// exactly once — the overlap is served from the shared cache — and (b) both
// served result sets are byte-identical to serial direct runs.
func TestConcurrentCampaignsShareMemoCache(t *testing.T) {
	svc := smallServer(t)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// The campaigns overlap on seed 2: one app, seeds {1,2} and {2,3}, two
	// schedulers each — 8 sessions total, 6 unique.
	campaigns := []Campaign{
		{Apps: []string{"cnn"}, TraceSeeds: []int64{1, 2}, Schedulers: []string{"Interactive", "Ondemand"}},
		{Apps: []string{"cnn"}, TraceSeeds: []int64{2, 3}, Schedulers: []string{"Interactive", "Ondemand"}},
	}
	before := svc.Stats()
	if before.Sessions != 0 {
		t.Fatalf("dedicated server already served %d sessions", before.Sessions)
	}

	ids := make([]string, len(campaigns))
	var wg sync.WaitGroup
	for i, c := range campaigns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := postCampaign(t, ts.URL, c)
			final := awaitCampaign(t, ts.URL, st.ID)
			if final.Status != "done" {
				t.Errorf("campaign %s ended %s: %s", st.ID, final.Status, final.Error)
				return
			}
			ids[i] = st.ID
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	stats := svc.Stats()
	if stats.Sessions != 8 {
		t.Errorf("server resolved %d sessions, want 8", stats.Sessions)
	}
	if stats.UniqueRuns != 6 {
		t.Errorf("server simulated %d unique sessions, want 6 (the seed-2 overlap must hit the cache)", stats.UniqueRuns)
	}
	if stats.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2", stats.CacheHits)
	}

	// Both campaigns' served results must equal a serial direct run.
	for i, c := range campaigns {
		res := fetchRawResults(t, ts.URL, ids[i])
		plan, err := NewCampaign(c, svc.Setup())
		if err != nil {
			t.Fatal(err)
		}
		direct, err := RunBatch(1, plan.Sessions)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(direct) {
			t.Fatalf("campaign %d: %d rows, want %d", i, len(res.Rows), len(direct))
		}
		for j, row := range res.Rows {
			if !compactEqualResult(t, row.Result, direct[j]) {
				t.Errorf("campaign %d row %d (%s/%d/%s): served result differs from serial direct run",
					i, j, row.App, row.TraceSeed, row.Scheduler)
			}
		}
	}
}
