package pes

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// storedExpConfig is the cheap harness configuration of the store e2e tests:
// a private artifact store per instance (so nothing leaks through the
// process-wide artifacts.Default between the "processes") layered over the
// shared persistent store.
func storedExpConfig(ps *PersistentStore) ExperimentConfig {
	return ExperimentConfig{
		TrainTracesPerApp: 2,
		EvalTracesPerApp:  1,
		Parallel:          2,
		Artifacts:         NewArtifactStore(),
		Store:             ps,
	}
}

// TestServerRestartWarmStart is the restart e2e: a campaign runs against a
// server on a store directory, the server goes away, a fresh server opens
// the same directory, and the repeated campaign must be served entirely
// from the store — zero re-simulations, no re-training, and result rows
// byte-identical to the cold run (solver wall times included: the stored
// bytes are the cold run's own).
func TestServerRestartWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e tests train a predictor")
	}
	dir := t.TempDir()
	campaign := Campaign{Apps: []string{"cnn", "ebay"}, TraceSeeds: []int64{1, 2}}

	// Cold "process": empty store directory, full training + simulation.
	psCold, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldCfg := storedExpConfig(psCold)
	coldSrv, err := NewServer(ServerConfig{Experiments: coldCfg, JobWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	coldTS := httptest.NewServer(coldSrv.Handler())
	st := postCampaign(t, coldTS.URL, campaign)
	if final := awaitCampaign(t, coldTS.URL, st.ID); final.Status != "done" {
		t.Fatalf("cold campaign ended %s: %s", final.Status, final.Error)
	}
	coldRes := fetchRawResults(t, coldTS.URL, st.ID)
	coldStats := coldSrv.Stats()
	if coldStats.UniqueRuns == 0 || coldStats.StoreHits != 0 {
		t.Fatalf("cold stats: %+v", coldStats)
	}
	if coldCfg.Artifacts.Stats().LearnerBuilds != 1 {
		t.Fatalf("cold artifact stats: %+v", coldCfg.Artifacts.Stats())
	}
	// The "process" dies: server and store handle both go away.
	coldTS.Close()
	coldSrv.Close()
	if err := psCold.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm "process": same directory, fresh everything else.
	psWarm, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { psWarm.Close() })
	if rec := psWarm.Stats().Recovered; rec == 0 {
		t.Fatal("warm store recovered no records")
	}
	warmCfg := storedExpConfig(psWarm)
	warmSrv, err := NewServer(ServerConfig{Experiments: warmCfg, JobWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(warmSrv.Close)
	warmTS := httptest.NewServer(warmSrv.Handler())
	t.Cleanup(warmTS.Close)

	st2 := postCampaign(t, warmTS.URL, campaign)
	if final := awaitCampaign(t, warmTS.URL, st2.ID); final.Status != "done" {
		t.Fatalf("warm campaign ended %s: %s", final.Status, final.Error)
	}
	warmRes := fetchRawResults(t, warmTS.URL, st2.ID)

	// Zero re-simulation, every unique session from the store.
	warmStats := warmSrv.Stats()
	if warmStats.UniqueRuns != 0 {
		t.Errorf("warm server re-simulated %d sessions", warmStats.UniqueRuns)
	}
	if warmStats.StoreHits != coldStats.UniqueRuns {
		t.Errorf("StoreHits = %d, want %d (one per unique cold run)", warmStats.StoreHits, coldStats.UniqueRuns)
	}
	// No re-training: the model came from the store.
	warmArts := warmCfg.Artifacts.Stats()
	if warmArts.LearnerBuilds != 0 || warmArts.LearnerStoreHits != 1 {
		t.Errorf("warm artifact stats: %+v", warmArts)
	}
	// Byte-identical rows, wall times included.
	if len(warmRes.Rows) != len(coldRes.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(warmRes.Rows), len(coldRes.Rows))
	}
	for i := range warmRes.Rows {
		if !bytes.Equal(warmRes.Rows[i].Result, coldRes.Rows[i].Result) {
			t.Errorf("row %d (%s/%d/%s): warm result bytes differ from cold",
				i, warmRes.Rows[i].App, warmRes.Rows[i].TraceSeed, warmRes.Rows[i].Scheduler)
		}
	}
	// The served stats payload surfaces the store snapshot.
	if warmRes.Stats.Store == nil || warmRes.Stats.Store.Hits == 0 {
		t.Errorf("results stats missing store section: %+v", warmRes.Stats.Store)
	}
}

// TestSpillOverWorkerSharesStore covers the cluster half of persistence: a
// coordinator server and an in-process worker share one persistent store.
// The campaign first spills over to the server's own harness (empty
// membership), then — after the worker registers — repeats routed to the
// worker, which must serve every session from the shared store without
// re-simulating and without re-training the learner.
func TestSpillOverWorkerSharesStore(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e tests train a predictor")
	}
	ps, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Close() })

	coord, err := NewClusterCoordinator(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	srvCfg := storedExpConfig(ps)
	svc, err := NewServer(ServerConfig{Experiments: srvCfg, JobWorkers: 2, Cluster: coord})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	campaign := Campaign{Apps: []string{"cnn"}, Schedulers: []string{"EBS", "PES"}}
	st := postCampaign(t, ts.URL, campaign)
	if final := awaitCampaign(t, ts.URL, st.ID); final.Status != "done" {
		t.Fatalf("spill-over campaign ended %s: %s", final.Status, final.Error)
	}
	firstRes := fetchRawResults(t, ts.URL, st.ID)
	if got := svc.Stats().UniqueRuns; got != 2 {
		t.Fatalf("spill-over simulated %d sessions, want 2", got)
	}

	// The worker joins, sharing the persistent store but nothing in memory.
	workerCfg := storedExpConfig(ps)
	w, err := NewClusterWorker(workerCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Construction loaded the trained model from the store — SGD ran once in
	// this test, in the server's harness.
	wArts := workerCfg.Artifacts.Stats()
	if wArts.LearnerBuilds != 0 || wArts.LearnerStoreHits != 1 {
		t.Fatalf("worker artifact stats after construction: %+v", wArts)
	}
	wts := httptest.NewServer(w.Handler())
	t.Cleanup(wts.Close)
	resp, err := http.Post(ts.URL+"/v1/cluster/workers", "application/json",
		strings.NewReader(`{"addr": "`+wts.URL+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	st2 := postCampaign(t, ts.URL, campaign)
	if final := awaitCampaign(t, ts.URL, st2.ID); final.Status != "done" {
		t.Fatalf("routed campaign ended %s: %s", final.Status, final.Error)
	}
	repeatRes := fetchRawResults(t, ts.URL, st2.ID)

	// The worker did the routing's share — entirely from the store.
	ws := w.Stats()
	if ws.Sessions != 2 || ws.UniqueRuns != 0 || ws.StoreHits != 2 {
		t.Errorf("worker stats: %+v, want 2 sessions / 0 unique / 2 store hits", ws)
	}
	cs := coord.Stats()
	if cs.SessionsRouted != 2 || cs.Remote.StoreHits != 2 {
		t.Errorf("coordinator stats: routed=%d remote=%+v", cs.SessionsRouted, cs.Remote)
	}
	// And byte-identically to the spill-over run.
	for i := range repeatRes.Rows {
		if !bytes.Equal(repeatRes.Rows[i].Result, firstRes.Rows[i].Result) {
			t.Errorf("row %d: worker-served result differs from spill-over run", i)
		}
	}
}
