// Package pes is the public API of the PES reproduction: Proactive Event
// Scheduling for responsive and energy-efficient mobile Web computing
// (Feng & Zhu, ISCA 2019), rebuilt as a pure-Go simulation library.
//
// The package is a facade over the internal packages. A typical use:
//
//	learner, err := pes.TrainPredictor(8, 1)             // offline training
//	spec, _ := pes.AppByName("cnn")                      // pick an application
//	tr := pes.GenerateTrace(spec, 42)                    // a user session
//	events, _ := tr.Runtime()
//	platform := pes.Exynos5410()
//	scheduler := pes.NewPES(platform, learner, spec, tr.DOMSeed, pes.DefaultPredictorConfig())
//	result := pes.RunProactive(platform, tr.App, events, scheduler)
//	fmt.Println(result.ViolationRate, result.TotalEnergyMJ)
//
// Many sessions can be simulated concurrently — with results memoized per
// (platform, app, trace seed, scheduler, predictor config) — through
// RunBatch / NewBatchRunner.
//
// The full evaluation of the paper is regenerated through NewExperiments /
// Experiments.All (also available as the cmd/pes-experiments binary).
package pes

import (
	"net/http"

	"repro/internal/acmp"
	"repro/internal/artifacts"
	"repro/internal/batch"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/optimizer"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/sessions"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/webapp"
	"repro/internal/webevent"
)

// Hardware platform models.
type (
	// Platform is an ACMP hardware model (clusters, DVFS ladders, power).
	Platform = acmp.Platform
	// Config is one <core, frequency> operating point.
	Config = acmp.Config
	// Workload is the Tmem/Ndep description of one event execution.
	Workload = acmp.Workload
)

// Exynos5410 returns the ODROID XU+E platform model used as the paper's
// primary evaluation hardware.
func Exynos5410() *Platform { return acmp.Exynos5410() }

// TX2Parker returns the NVIDIA TX2 platform model used in the paper's
// "other devices" study.
func TX2Parker() *Platform { return acmp.TX2Parker() }

// Applications and traces.
type (
	// AppSpec describes one mobile Web application of the benchmark suite.
	AppSpec = webapp.Spec
	// Trace is one recorded user interaction session.
	Trace = trace.Trace
	// TraceOptions controls synthetic trace generation.
	TraceOptions = trace.Options
	// Event is one runtime event instance.
	Event = webevent.Event
)

// Apps returns the full 18-application benchmark suite (12 seen + 6 unseen).
func Apps() []*AppSpec { return webapp.Registry() }

// SeenApps returns the 12 applications whose traces train the predictor.
func SeenApps() []*AppSpec { return webapp.SeenApps() }

// UnseenApps returns the 6 evaluation-only applications.
func UnseenApps() []*AppSpec { return webapp.UnseenApps() }

// AppByName looks up an application spec by name.
func AppByName(name string) (*AppSpec, error) { return webapp.ByName(name) }

// GenerateTrace produces a synthetic user interaction trace for an
// application with default options (≈110 s session).
func GenerateTrace(spec *AppSpec, seed int64) *Trace {
	return trace.Generate(spec, seed, trace.Options{})
}

// GenerateTraceWith produces a trace with explicit options.
func GenerateTraceWith(spec *AppSpec, seed int64, opts TraceOptions) *Trace {
	return trace.Generate(spec, seed, opts)
}

// Predictor training and configuration.
type (
	// SequenceLearner is the trained event sequence model.
	SequenceLearner = predictor.SequenceLearner
	// PredictorConfig controls the predictor (confidence threshold, DOM
	// analysis toggle).
	PredictorConfig = predictor.Config
)

// DefaultPredictorConfig returns the paper's predictor configuration (70%
// confidence threshold, DOM analysis on).
func DefaultPredictorConfig() PredictorConfig { return predictor.DefaultConfig() }

// TrainPredictor trains the event sequence learner on synthetic traces of
// the seen applications (tracesPerApp per application) and returns it.
func TrainPredictor(tracesPerApp int, seed int64) (*SequenceLearner, error) {
	learner, _, err := predictor.TrainOnSeenApps(tracesPerApp, seed)
	return learner, err
}

// Schedulers.
type (
	// ReactiveScheduler is the contract of reactive schedulers.
	ReactiveScheduler = sched.ReactivePolicy
	// ProactiveScheduler is the contract of proactive schedulers.
	ProactiveScheduler = sched.ProactivePolicy
	// PES is the paper's proactive event scheduler.
	PES = core.PES
)

// NewInteractive returns the Android Interactive governor baseline.
func NewInteractive(p *Platform) ReactiveScheduler { return sched.NewInteractive(p) }

// NewOndemand returns the Ondemand governor baseline.
func NewOndemand(p *Platform) ReactiveScheduler { return sched.NewOndemand(p) }

// NewEBS returns the reactive QoS-aware EBS baseline.
func NewEBS(p *Platform) ReactiveScheduler { return sched.NewEBS(p) }

// NewOracle returns the oracle scheduler for a specific event sequence.
func NewOracle(p *Platform, events []*Event) ProactiveScheduler { return sched.NewOracle(p, events) }

// NewPES builds the PES scheduler for one application session.
func NewPES(p *Platform, learner *SequenceLearner, spec *AppSpec, domSeed int64, cfg PredictorConfig) *PES {
	return core.NewPES(p, learner, spec, domSeed, cfg)
}

// Simulation.
type (
	// Result aggregates one simulated session (energy, QoS, speculation,
	// solver statistics).
	Result = engine.Result
	// Outcome is the per-event record of a simulation.
	Outcome = engine.Outcome
	// SolverStats aggregates constrained-optimization work: solve count,
	// branch-and-bound nodes explored, plan-cache hits, and solver wall
	// time. It appears per session in Result.Solver, summed over a runner's
	// unique runs in BatchStats.Solver, and summed over a campaign in
	// CampaignResults.Solver.
	SolverStats = optimizer.SolverStats
)

// RunReactive replays events under a reactive scheduler.
func RunReactive(p *Platform, app string, events []*Event, policy ReactiveScheduler) *Result {
	return engine.RunReactive(p, app, events, policy)
}

// RunProactive replays events under a proactive scheduler (PES or Oracle).
func RunProactive(p *Platform, app string, events []*Event, policy ProactiveScheduler) *Result {
	return engine.RunProactive(p, app, events, policy)
}

// Batch simulation.
type (
	// BatchRunner executes batches of sessions on a worker pool with a
	// memoized result cache keyed by BatchKey.
	BatchRunner = batch.Runner
	// BatchSession is one unit of batch work: a memo key plus the function
	// that simulates the session on a cache miss.
	BatchSession = batch.Session
	// BatchKey identifies one unique session simulation.
	BatchKey = batch.Key
	// BatchStats reports the sessions/unique-runs/cache-hits counters of a
	// BatchRunner.
	BatchStats = batch.Stats
)

// SessionSpec describes one session simulation for NewSession: a trace
// replayed under a named scheduler ("Interactive", "Ondemand", "EBS", "PES",
// "Oracle"; case-insensitive) on a platform. Learner and Predictor are
// consulted only for PES.
type SessionSpec = sessions.Spec

// NewSession builds a self-contained, correctly-keyed batch session: the
// memo key includes the predictor configuration, the learner identity, and
// a trace fingerprint, so differently-configured sessions never share a
// cache slot. Prefer this over hand-building a BatchSession.
func NewSession(s SessionSpec) (BatchSession, error) { return sessions.New(s) }

// NewBatchRunner creates a batch runner with the given worker-pool size;
// workers <= 0 selects the number of CPUs.
func NewBatchRunner(workers int) *BatchRunner { return batch.NewRunner(workers) }

// Shared session artifacts.
type (
	// ArtifactStore is the shared session-artifact cache: generated traces,
	// parsed runtime events, memo fingerprints, and offline-trained
	// learners, each built exactly once per process and shared by every
	// consumer. Sessions built with NewSession draw from the process-wide
	// store unless their spec names another one.
	ArtifactStore = artifacts.Store
	// ArtifactStats snapshots an ArtifactStore's build/hit counters (plus
	// the process-wide DOM page-tree cache); it appears in BatchStats when
	// a store is attached to the runner, and in the pes-serve /healthz and
	// campaign-results bodies.
	ArtifactStats = artifacts.Stats
)

// SharedArtifacts returns the process-wide artifact store.
func SharedArtifacts() *ArtifactStore { return artifacts.Default }

// NewArtifactStore creates an empty, private artifact store (for isolation
// in tests and cold-path benchmarks; most callers want SharedArtifacts).
func NewArtifactStore() *ArtifactStore { return artifacts.NewStore() }

// Persistent content-addressed storage.
type (
	// PersistentStore is the disk-backed content-addressed store: an
	// append-only checksummed record log that survives restarts, layered
	// under the batch memo cache (BatchRunner.WithStore), the artifact
	// caches (ArtifactStore.WithPersistent) and the experiment harness
	// (ExperimentConfig.Store). Campaigns re-run against the same directory
	// serve every repeated session from disk — zero re-simulation, byte-
	// identical results. One process per directory.
	PersistentStore = store.Store
	// PersistentStoreStats snapshots a PersistentStore's recovery outcome
	// (records recovered, corrupt records skipped, torn bytes dropped) and
	// hit/miss counters; it appears in BatchStats when a store is attached.
	PersistentStoreStats = store.Stats
)

// OpenStore opens (or creates) the persistent store in dir, recovering all
// intact records from its log; torn tails are truncated and corrupt records
// skipped with a counted warning. Close it when done.
func OpenStore(dir string) (*PersistentStore, error) { return store.Open(dir) }

// RunBatch simulates many sessions concurrently on a fresh runner and
// returns the results index-aligned with the input. Sessions with equal keys
// simulate exactly once and share one Result. Keep the runner instead (see
// NewBatchRunner) to reuse its memo cache across batches.
func RunBatch(workers int, sessions []BatchSession) ([]*Result, error) {
	return batch.NewRunner(workers).Run(sessions)
}

// Experiments.
type (
	// Experiments is the harness that regenerates the paper's figures.
	Experiments = experiments.Setup
	// ExperimentConfig parameterizes the harness.
	ExperimentConfig = experiments.Config
	// ResultTable is a printable experiment result.
	ResultTable = experiments.Table
)

// DefaultExperimentConfig returns the paper-equivalent harness settings.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// NewExperiments prepares the experiment harness (trains the predictor and
// generates the evaluation corpus).
func NewExperiments(cfg ExperimentConfig) (*Experiments, error) { return experiments.NewSetup(cfg) }

// Simulation as a service.
type (
	// Campaign is a simulation campaign request: the cross product of
	// applications, trace seeds and schedulers on one platform, optionally
	// extended by a predictor sensitivity sweep.
	Campaign = server.Campaign
	// CampaignSweep adds a confidence-threshold sensitivity sweep to a
	// campaign.
	CampaignSweep = server.Sweep
	// CampaignPlan is a validated, expanded campaign: batch sessions plus
	// index-aligned per-session metadata.
	CampaignPlan = server.Plan
	// CampaignStatus is the status/progress view of a submitted campaign
	// (the body of POST /v1/campaigns and GET /v1/campaigns/{id}).
	CampaignStatus = server.JobStatus
	// CampaignResults is the body of GET /v1/campaigns/{id}/results:
	// per-session result rows plus aggregate energy/QoS tables.
	CampaignResults = server.Results
	// Server is the long-running simulation service. All campaigns and
	// figure requests share one memo cache, so overlapping work simulates
	// each unique session exactly once per server.
	Server = server.Server
	// ServerConfig parameterizes the service.
	ServerConfig = server.Config
)

// NewCampaign validates a campaign and expands it into batch sessions using
// the harness's trained learner and predictor defaults; run the plan's
// Sessions with RunBatch (or a kept BatchRunner).
func NewCampaign(c Campaign, x *Experiments) (*CampaignPlan, error) { return c.Expand(x) }

// NewServer trains the shared harness state and starts the campaign
// workers; expose it over HTTP with its Handler method, and Close it to
// shut down.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Sharded multi-worker campaign execution.
type (
	// ClusterConfig parameterizes a campaign coordinator: static worker
	// seed, transport, hash-ring replicas, shard timeout, heartbeat cadence,
	// local spill-over worker.
	ClusterConfig = cluster.Config
	// ClusterCoordinator shards campaign sessions across an elastic worker
	// set by consistent hashing on the batch memo key: workers join via
	// Register and are health-checked by heartbeats, idle workers steal
	// queued work from slow ones, worker faults re-route to the survivors,
	// and when the live set empties the coordinator spills over to local
	// in-process execution. Merged results stay byte-identical to
	// single-process execution. Set it on ServerConfig.Cluster to shard a
	// server's campaigns.
	ClusterCoordinator = cluster.Coordinator
	// ClusterMember is one cluster member's externally visible state:
	// address, static/registered source, and health.
	ClusterMember = cluster.Member
	// ClusterWorker executes shards on its own trained harness and warm
	// caches; serve its Handler to join a cluster.
	ClusterWorker = cluster.Worker
	// ClusterSession is the wire description of one session — the batch
	// memo-key tuple a worker rebuilds the full session from.
	ClusterSession = cluster.SessionSpec
	// ClusterStats snapshots a coordinator's shard/retry/worker counters
	// plus the summed remote worker cache stats.
	ClusterStats = cluster.Stats
)

// NewClusterCoordinator builds a campaign coordinator over the configured
// workers (every worker must run the same harness configuration as the
// coordinating server for merged results to be byte-identical).
func NewClusterCoordinator(cfg ClusterConfig) (*ClusterCoordinator, error) { return cluster.New(cfg) }

// NewClusterWorker trains a worker harness from the experiment
// configuration; serve its Handler over HTTP and point a coordinator at it.
func NewClusterWorker(cfg ExperimentConfig) (*ClusterWorker, error) { return cluster.NewWorker(cfg) }

// Serve runs the simulation service on addr until the process exits (see
// cmd/pes-serve for the graceful-shutdown variant).
func Serve(addr string, cfg ServerConfig) error {
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	return http.ListenAndServe(addr, s.Handler())
}
