// Command pes-sim simulates one synthetic user session of one application
// under a chosen scheduler and prints per-event and aggregate results.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/acmp"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/webapp"
)

func main() {
	app := flag.String("app", "cnn", "application name (see pes-trace -list)")
	seed := flag.Int64("seed", 42, "user/session seed")
	scheduler := flag.String("scheduler", "pes", "scheduler: interactive, ondemand, ebs, pes, oracle")
	verbose := flag.Bool("v", false, "print per-event outcomes")
	flag.Parse()

	spec, err := webapp.ByName(*app)
	if err != nil {
		log.Fatalf("pes-sim: %v", err)
	}
	platform := acmp.Exynos5410()
	tr := trace.Generate(spec, *seed, trace.Options{})
	events, err := tr.Runtime()
	if err != nil {
		log.Fatalf("pes-sim: %v", err)
	}

	var result *sim.Result
	switch strings.ToLower(*scheduler) {
	case "interactive":
		result = sim.RunReactive(platform, *app, events, sched.NewInteractive(platform))
	case "ondemand":
		result = sim.RunReactive(platform, *app, events, sched.NewOndemand(platform))
	case "ebs":
		result = sim.RunReactive(platform, *app, events, sched.NewEBS(platform))
	case "oracle":
		result = sim.RunProactive(platform, *app, events, sched.NewOracle(platform, events))
	case "pes":
		learner, _, err := predictor.TrainOnSeenApps(6, 1)
		if err != nil {
			log.Fatalf("pes-sim: training: %v", err)
		}
		pes := core.NewPES(platform, learner, spec, tr.DOMSeed, predictor.DefaultConfig())
		result = sim.RunProactive(platform, *app, events, pes)
	default:
		log.Fatalf("pes-sim: unknown scheduler %q", *scheduler)
	}

	if *verbose {
		for _, o := range result.Outcomes {
			status := "ok"
			if o.Violated {
				status = "VIOLATED"
			}
			fmt.Printf("#%-3d %-10s trigger=%-10s latency=%-10s qos=%-6s cfg=%-14s spec=%-5v %s\n",
				o.Event.Seq, o.Event.Type, o.Event.Trigger, o.Latency, o.Event.QoSTarget(), o.Config, o.Speculative, status)
		}
	}
	fmt.Printf("scheduler=%s app=%s events=%d duration=%s\n", result.Scheduler, result.App, len(result.Outcomes), result.Duration)
	fmt.Printf("energy: total=%.1f mJ (busy=%.1f idle=%.1f wasted=%.1f)\n",
		result.TotalEnergyMJ, result.BusyEnergyMJ, result.IdleEnergyMJ, result.WastedEnergyMJ)
	fmt.Printf("qos: violations=%d (%.1f%%), mean latency=%s\n",
		result.Violations, 100*result.ViolationRate, result.MeanLatency())
	if result.CommittedFrames+result.Mispredictions > 0 {
		fmt.Printf("speculation: committed=%d mispredictions=%d squashed=%d waste=%s\n",
			result.CommittedFrames, result.Mispredictions, result.SquashedFrames, result.MispredictWaste)
	}
}
