// Command pes-sim simulates synthetic user sessions of one application
// under a chosen scheduler and prints per-event and aggregate results.
//
// By default it simulates one session. With -sessions N it replays N
// sessions (user seeds seed..seed+N-1) through the concurrent batch runner
// and prints per-session and averaged aggregates:
//
//	pes-sim -app cnn -scheduler ebs
//	pes-sim -app ebay -scheduler pes -sessions 16 -parallel 8
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	"repro/internal/acmp"
	"repro/internal/batch"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/sessions"
	"repro/internal/trace"
	"repro/internal/webapp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatalf("pes-sim: %v", err)
	}
}

// run is the testable body of the command: the report goes to stdout, flag
// usage and parse errors to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pes-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "cnn", "application name (see pes-trace -list)")
	seed := fs.Int64("seed", 42, "user/session seed (first seed with -sessions > 1)")
	scheduler := fs.String("scheduler", "pes", "scheduler: interactive, ondemand, ebs, pes, oracle")
	nSessions := fs.Int("sessions", 1, "number of sessions to simulate (seeds seed..seed+N-1)")
	parallel := fs.Int("parallel", 0, "simulation worker-pool size (0 = number of CPUs, 1 = serial)")
	verbose := fs.Bool("v", false, "print per-event outcomes")
	oracle := fs.String("oracle", "", "oracle solver version: v2 (default, fast path) or v1 (paper-exact reference figures)")
	debugAddr := fs.String("debug-addr", "", "listen address for a live pprof/expvar debug server during the run (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	oracleVer, err := sched.ParseOracleVersion(*oracle)
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, obs.DebugHandler()); err != nil {
				fmt.Fprintf(stderr, "pes-sim: debug listener: %v\n", err)
			}
		}()
	}

	spec, err := webapp.ByName(*app)
	if err != nil {
		return err
	}
	if *nSessions < 1 {
		return fmt.Errorf("-sessions must be at least 1")
	}
	schedName, err := sessions.Canonical(*scheduler)
	if err != nil {
		return err
	}
	platform := acmp.Exynos5410()

	// The PES predictor is trained once and shared read-only by every
	// session.
	var learner *predictor.SequenceLearner
	if schedName == sessions.PES {
		learner, _, err = predictor.TrainOnSeenApps(6, 1)
		if err != nil {
			return fmt.Errorf("training: %w", err)
		}
	}

	specs := make([]batch.Session, 0, *nSessions)
	for i := 0; i < *nSessions; i++ {
		tr := trace.Generate(spec, *seed+int64(i), trace.Options{})
		sess, err := sessions.New(sessions.Spec{
			Platform:      platform,
			Trace:         tr,
			Scheduler:     schedName,
			Learner:       learner,
			Predictor:     predictor.DefaultConfig(),
			OracleVersion: oracleVer,
		})
		if err != nil {
			return err
		}
		specs = append(specs, sess)
	}
	runner := batch.NewRunner(*parallel)
	results, err := runner.Run(specs)
	if err != nil {
		return err
	}

	for i, result := range results {
		if *nSessions > 1 {
			fmt.Fprintf(stdout, "--- session seed=%d ---\n", *seed+int64(i))
		}
		printResult(stdout, result, *verbose)
	}
	if *nSessions > 1 {
		printAverages(stdout, results)
		fmt.Fprintf(stdout, "batch: %d sessions on %d worker(s)\n", *nSessions, runner.Workers())
	}
	return nil
}

func printResult(w io.Writer, result *engine.Result, verbose bool) {
	if verbose {
		for _, o := range result.Outcomes {
			status := "ok"
			if o.Violated {
				status = "VIOLATED"
			}
			fmt.Fprintf(w, "#%-3d %-10s trigger=%-10s latency=%-10s qos=%-6s cfg=%-14s spec=%-5v %s\n",
				o.Event.Seq, o.Event.Type, o.Event.Trigger, o.Latency, o.Event.QoSTarget(), o.Config, o.Speculative, status)
		}
	}
	fmt.Fprintf(w, "scheduler=%s app=%s events=%d duration=%s\n", result.Scheduler, result.App, len(result.Outcomes), result.Duration)
	fmt.Fprintf(w, "energy: total=%.1f mJ (busy=%.1f idle=%.1f wasted=%.1f)\n",
		result.TotalEnergyMJ, result.BusyEnergyMJ, result.IdleEnergyMJ, result.WastedEnergyMJ)
	fmt.Fprintf(w, "qos: violations=%d (%.1f%%), mean latency=%s\n",
		result.Violations, 100*result.ViolationRate, result.MeanLatency())
	if result.CommittedFrames+result.Mispredictions > 0 {
		fmt.Fprintf(w, "speculation: committed=%d mispredictions=%d squashed=%d waste=%s\n",
			result.CommittedFrames, result.Mispredictions, result.SquashedFrames, result.MispredictWaste)
	}
}

func printAverages(w io.Writer, results []*engine.Result) {
	var energy, viol float64
	for _, r := range results {
		energy += r.TotalEnergyMJ
		viol += r.ViolationRate
	}
	n := float64(len(results))
	fmt.Fprintf(w, "--- batch average over %d sessions ---\n", len(results))
	fmt.Fprintf(w, "energy: %.1f mJ/session, qos violations: %.1f%%\n", energy/n, 100*viol/n)
}
