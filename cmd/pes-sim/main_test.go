package main

import (
	"bytes"
	"testing"
)

// goldenBatch pins the full stdout of a small fixed-seed batch invocation:
// two cnn sessions under EBS, simulated serially. The simulation is fully
// deterministic, so any diff here means the CLI (or the substrate beneath
// it) changed behaviour.
const goldenBatch = `--- session seed=42 ---
scheduler=EBS app=cnn events=56 duration=114.5s
energy: total=45492.6 mJ (busy=31272.4 idle=14220.2 wasted=0.0)
qos: violations=7 (12.5%), mean latency=356ms
--- session seed=43 ---
scheduler=EBS app=cnn events=51 duration=110.5s
energy: total=44749.4 mJ (busy=31311.0 idle=13438.4 wasted=0.0)
qos: violations=8 (15.7%), mean latency=312ms
--- batch average over 2 sessions ---
energy: 45121.0 mJ/session, qos violations: 14.1%
batch: 2 sessions on 1 worker(s)
`

func TestRunGoldenBatch(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-app", "cnn", "-scheduler", "ebs", "-seed", "42", "-sessions", "2", "-parallel", "1"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := out.String(); got != goldenBatch {
		t.Errorf("output drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, goldenBatch)
	}
	if errOut.Len() != 0 {
		t.Errorf("unexpected stderr output: %q", errOut.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown app", []string{"-app", "nosuchapp"}},
		{"unknown scheduler", []string{"-scheduler", "nosuchsched"}},
		{"bad session count", []string{"-sessions", "0"}},
		{"bad flag", []string{"-nosuchflag"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if err := run(c.args, &out, &errOut); err == nil {
				t.Errorf("run(%v) succeeded, want error", c.args)
			}
		})
	}
}
