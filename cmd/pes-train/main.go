// Command pes-train trains the event sequence learner offline on synthetic
// traces of the seen applications, reports its accuracy on fresh evaluation
// traces, and optionally persists the model to a JSON file (the paper
// persists the trained model and loads it when an application boots).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/webapp"
)

func main() {
	tracesPerApp := flag.Int("traces", 8, "training traces per seen application")
	evalPerApp := flag.Int("eval", 2, "evaluation traces per application")
	seed := flag.Int64("seed", 1, "training seed")
	out := flag.String("out", "", "path to write the trained model JSON (omit to skip)")
	flag.Parse()

	learner, train, err := predictor.TrainOnSeenApps(*tracesPerApp, *seed)
	if err != nil {
		log.Fatalf("pes-train: %v", err)
	}
	fmt.Printf("trained on %d traces (%d events)\n", len(train), train.TotalEvents())

	eval := trace.GenerateCorpus(webapp.Registry(), *evalPerApp, *seed+900000, trace.PurposeEval, trace.Options{})
	results, err := predictor.EvaluateAccuracy(learner, eval, true)
	if err != nil {
		log.Fatalf("pes-train: %v", err)
	}
	var seenSum, seenN, unseenSum, unseenN float64
	for _, r := range results {
		fmt.Printf("%-15s seen=%-5v accuracy=%.1f%% (%d events)\n", r.App, r.Seen, 100*r.Accuracy, r.Events)
		if r.Seen {
			seenSum += r.Accuracy
			seenN++
		} else {
			unseenSum += r.Accuracy
			unseenN++
		}
	}
	fmt.Printf("average: seen=%.1f%% unseen=%.1f%%\n", 100*seenSum/seenN, 100*unseenSum/unseenN)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("pes-train: %v", err)
		}
		defer f.Close()
		if err := learner.Model().Save(f); err != nil {
			log.Fatalf("pes-train: %v", err)
		}
		fmt.Printf("model written to %s\n", *out)
	}
}
