// Command pes-trace generates synthetic user interaction traces and writes
// them as a JSON stream (one trace per line), or lists the application
// suite.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/trace"
	"repro/internal/webapp"
)

func main() {
	app := flag.String("app", "", "application name (empty = all applications)")
	n := flag.Int("n", 3, "traces per application")
	seed := flag.Int64("seed", 1, "base seed")
	purpose := flag.String("purpose", trace.PurposeEval, "trace purpose label (train or eval)")
	list := flag.Bool("list", false, "list the application suite and exit")
	flag.Parse()

	if *list {
		for _, s := range webapp.Registry() {
			kind := "unseen"
			if s.Seen {
				kind = "seen"
			}
			fmt.Printf("%-15s %-7s clickable=%.2f pages=%d\n", s.Name, kind, s.ClickableDensity, s.PageCount)
		}
		return
	}

	var apps []*webapp.Spec
	if *app == "" {
		apps = webapp.Registry()
	} else {
		spec, err := webapp.ByName(*app)
		if err != nil {
			log.Fatalf("pes-trace: %v", err)
		}
		apps = []*webapp.Spec{spec}
	}
	corpus := trace.GenerateCorpus(apps, *n, *seed, *purpose, trace.Options{})
	if err := trace.Encode(os.Stdout, corpus); err != nil {
		log.Fatalf("pes-trace: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d traces (%d events)\n", len(corpus), corpus.TotalEvents())
}
