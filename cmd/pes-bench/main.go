// Command pes-bench is the repo's performance-trajectory harness: it runs
// the solver microbenchmark suite, representative scheduler sessions, the
// unique-session throughput benchmark (cold vs artifact-warm, serial vs
// parallel), and the paper-figure benchmarks, and emits one JSON report.
// The committed BENCH_pr3.json and BENCH_pr4.json are the first two points
// of that trajectory; CI re-runs the harness on every PR and fails when the
// solver benchmarks regress more than 20% against the committed baseline or
// the artifact-warm throughput advantage falls below its floor.
//
//	pes-bench -quick -out BENCH.json                # fast PR-sized run
//	pes-bench                                       # full-scale run to stdout
//	pes-bench -quick -check -baseline BENCH_pr4.json
//	pes-bench -quick -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The solver suite is identical in quick and full mode (it is cheap and its
// node counters must stay comparable to the committed baseline); -quick only
// shrinks the session, throughput and figure benchmarks. Node counters are
// fully deterministic for a given -seed; wall times are host measurements
// and are reported but never gated on. The warm/cold throughput *ratio* is
// gated: both sides run on the same host in the same process, so the ratio
// is comparable across machines even though the absolute sessions/sec are
// not.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/acmp"
	"repro/internal/artifacts"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/ilp"
	"repro/internal/ilp/chaingen"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/sessions"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// Report is the emitted benchmark document.
type Report struct {
	// Version tags the report layout; bump when fields change meaning.
	Version string `json:"version"`
	// Quick records whether the session/figure benchmarks ran at reduced
	// scale. The solver suite is scale-independent.
	Quick bool `json:"quick"`
	// Seed is the solver-suite RNG seed; reports are only comparable at
	// equal seeds.
	Seed int64 `json:"seed"`
	// Host records the runtime the report was measured on. Wall-time fields
	// are only comparable between reports from matching hosts; the
	// deterministic node counters are comparable regardless.
	Host HostReport `json:"host"`
	// OracleVersion is the Oracle solver version the session and throughput
	// benchmarks ran ("v1" or "v2"). The v2 gates (per-scheduler throughput
	// floor, zero budget aborts) apply only to v2 reports; -oracle=v1 runs
	// reproduce the paper-exact BENCH_pr4 Oracle figures bit-identically.
	OracleVersion string            `json:"oracle_version,omitempty"`
	Solver        SolverReport      `json:"solver"`
	Sessions      []SessionReport   `json:"sessions,omitempty"`
	Throughput    *ThroughputReport `json:"throughput,omitempty"`
	Figures       []FigureReport    `json:"figures,omitempty"`
	// Store is the warm-start section, present only when -store was given:
	// a fixed campaign run against the persistent store directory. The first
	// run against an empty directory populates it (hit_rate 0); re-running
	// the same command against the same directory must report hit_rate 1 and
	// zero unique runs — the restart-durability claim in benchmark form.
	Store *StoreReport `json:"store,omitempty"`
}

// HostReport identifies the toolchain and hardware context of a report.
type HostReport struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// hostReport samples the running process's host context.
func hostReport() HostReport {
	return HostReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// StoreReport is the persistent-store warm-start benchmark.
type StoreReport struct {
	Dir string `json:"dir"`
	// WarmStart reports whether the store held records at open (i.e. this
	// is a re-run against a populated directory); RecoveredRecords is how
	// many it recovered from the log.
	WarmStart        bool  `json:"warm_start"`
	RecoveredRecords int64 `json:"recovered_records"`
	// Sessions / UniqueRuns / StoreHits are the campaign's batch counters:
	// every session is a distinct key, so on a warm start StoreHits equals
	// Sessions and UniqueRuns is zero.
	Sessions   int64   `json:"sessions"`
	UniqueRuns int64   `json:"unique_runs"`
	StoreHits  int64   `json:"store_hits"`
	HitRate    float64 `json:"hit_rate"`
	// TraceStoreHits / LearnerStoreHits count artifacts loaded from the
	// store instead of rebuilt; a warm start skips SGD training entirely.
	TraceStoreHits   int64 `json:"trace_store_hits"`
	LearnerStoreHits int64 `json:"learner_store_hits"`
	// SyncEvery echoes -store-sync and Syncs counts the fsyncs it caused —
	// with WallMS, the durability overhead in benchmark form (compare a
	// -store-sync run's wall time against a no-fsync run of the same dir).
	SyncEvery int   `json:"sync_every,omitempty"`
	Syncs     int64 `json:"syncs,omitempty"`
	// WallMS is the campaign wall time (host measurement, not gated).
	WallMS float64 `json:"wall_ms"`
}

// ThroughputReport is the unique-session throughput benchmark: how many
// *distinct* sessions per second the stack simulates. Cold replicates the
// pre-artifact-cache path (every scheduler regenerates its trace, re-parses
// runtime events, rebuilds DOM pages, re-hashes the memo fingerprint); warm
// shares all of those through the artifact store. Every session is unique —
// the batch memo cache never serves a result — so this measures simulation
// throughput, not memoization.
type ThroughputReport struct {
	Apps       []string `json:"apps"`
	TraceSeeds []int64  `json:"trace_seeds"`
	Schedulers []string `json:"schedulers"`
	// Sessions is the number of unique sessions per pass; Events the total
	// trace events they replay.
	Sessions int `json:"sessions"`
	Events   int `json:"events"`
	// Reps is the number of passes per mode; the reported rates are the
	// best pass (least scheduling noise).
	Reps int `json:"reps"`
	// Sessions per second: cold serial, artifact-warm serial, and
	// artifact-warm on the parallel batch runner (Workers workers).
	ColdSerialSPS   float64 `json:"cold_serial_sps"`
	WarmSerialSPS   float64 `json:"warm_serial_sps"`
	WarmParallelSPS float64 `json:"warm_parallel_sps"`
	Workers         int     `json:"workers"`
	// WarmColdRatio = WarmParallelSPS / ColdSerialSPS, the headline
	// unique-session speedup of the artifact-warm path (the CI floor
	// applies to it). On a single-core host it degenerates to the serial
	// warm/cold ratio: the campaign mix is then dominated by the Oracle's
	// budget-pinned solves (irreducible by construction — its published
	// figures are traversal artifacts), so the parallel ≥3x headline must
	// be read from a multi-core run, exactly as with the PR 1 batch-runner
	// speedup.
	WarmColdRatio float64 `json:"warm_cold_ratio"`
	// WarmEventsPerSec is the event-replay rate of the best warm-parallel
	// pass.
	WarmEventsPerSec float64 `json:"warm_events_per_sec"`
	// BySched breaks the serial passes down per scheduler, exposing where
	// the time goes: PES gains both the artifact reuse and the
	// zero-allocation predictor path; the Oracle is bounded below by its
	// pinned solver budget; the governors and EBS simulate in microseconds
	// either way.
	BySched []SchedThroughput `json:"by_scheduler"`
	// Notes explain how to read the numbers across hosts.
	Notes []string `json:"notes"`
}

// throughputNotes is attached to every ThroughputReport.
var throughputNotes = []string{
	"cold here runs the PR 4 engine on the pre-artifact-cache setup path; PR 3's engine was itself ~1.8x slower per PES session (BENCH_pr3 sessions: 719us vs 359us) and ~35% slower per figure session, so warm throughput vs the actual PR 3 cold path is the warm/cold ratio times that factor",
	"on a single core the campaign mix is floored by the Oracle's budget-pinned reference solves (see by_scheduler); warm_parallel_sps scales with cores while cold stays serial per session, so multi-core runs (CI) read >=3x directly",
}

// SchedThroughput is the per-scheduler slice of the serial throughput
// passes.
type SchedThroughput struct {
	Scheduler     string  `json:"scheduler"`
	Sessions      int     `json:"sessions"`
	ColdSerialSPS float64 `json:"cold_serial_sps"`
	WarmSerialSPS float64 `json:"warm_serial_sps"`
	WarmColdRatio float64 `json:"warm_cold_ratio"`
}

// warmColdRatioFloor is the CI gate on ThroughputReport.WarmColdRatio: the
// artifact-warm path must simulate unique sessions at least this many times
// faster than the cold path. The floor is the single-core lower bound with
// margin (measured 1.7x on one core, where the parallel and serial warm
// paths coincide); multi-core runners measure 3x and above.
const warmColdRatioFloor = 1.4

// oraclePESRatioFloor is the CI gate on the Oracle v2 throughput floor: the
// Oracle's warm serial sessions/sec must be within this factor of the PES
// path's (BENCH_pr4 had it 6.5x slower; the v2 fast path brings it within
// ~3.5x). Like the warm/cold gate it is a same-host, same-process ratio, so
// it is portable across CI hardware. v1 runs are exempt: the reference
// solver's budget-pinned cost is the artifact the version flag preserves.
const oraclePESRatioFloor = 5.0

// SolverReport summarizes the solver microbenchmark suite: the overhauled
// Solve versus the frozen SolveReference on identical instances.
type SolverReport struct {
	// Problems is the number of instances in the suite; Aborted counts
	// instances where either solver exhausted its node budget (excluded
	// from the energy cross-check, included in the node counters).
	Problems int `json:"problems"`
	Aborted  int `json:"aborted"`
	// Nodes and RefNodes are the summed branch-and-bound nodes explored by
	// Solve and SolveReference; NodeRatio = RefNodes/Nodes is the headline
	// reduction (the acceptance floor is 2x). All three are deterministic.
	Nodes     int64   `json:"nodes"`
	RefNodes  int64   `json:"ref_nodes"`
	NodeRatio float64 `json:"node_ratio"`
	// Wall-time per solve for Solve, SolveReference, and the Oracle's
	// budget-pinned SolveReferenceOrder (host measurements).
	NsPerSolve         float64 `json:"ns_per_solve"`
	RefNsPerSolve      float64 `json:"ref_ns_per_solve"`
	RefOrderNsPerSolve float64 `json:"ref_order_ns_per_solve"`
	// EnergyMismatches counts non-aborted instances where Solve returned a
	// different total energy than SolveReference; any value but 0 is a bug.
	EnergyMismatches int `json:"energy_mismatches"`
	// GreedyGapPct is the mean energy saving of the exact solve over the
	// greedy heuristic, in percent — what the branch-and-bound buys.
	GreedyGapPct float64 `json:"greedy_gap_pct"`
}

// SessionReport is one end-to-end scheduler session benchmark.
type SessionReport struct {
	App       string                `json:"app"`
	TraceSeed int64                 `json:"trace_seed"`
	Scheduler string                `json:"scheduler"`
	Events    int                   `json:"events"`
	WallMS    float64               `json:"wall_ms"`
	Solver    optimizer.SolverStats `json:"solver"`
}

// FigureReport is one paper-figure benchmark: the wall time to produce the
// figure and how many sessions it simulated.
type FigureReport struct {
	Name     string  `json:"name"`
	WallMS   float64 `json:"wall_ms"`
	Sessions int64   `json:"sessions"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatalf("pes-bench: %v", err)
	}
}

// run is the testable body of the command: the JSON report goes to -out (or
// stdout), progress and check verdicts to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pes-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "reduced session/throughput/figure scale (solver suite is unaffected)")
	solverOnly := fs.Bool("solver-only", false, "run only the solver microbenchmark suite")
	out := fs.String("out", "", "write the JSON report to this file (default: stdout)")
	baseline := fs.String("baseline", "", "committed report to compare against (e.g. BENCH_pr4.json)")
	check := fs.Bool("check", false, "with -baseline: exit non-zero when the solver or throughput benchmarks regress")
	seed := fs.Int64("seed", 1, "solver-suite RNG seed (must match the baseline's)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the benchmark run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	oracle := fs.String("oracle", "", "oracle solver version for the session/throughput benchmarks: v2 (default) or v1 (reproduces the BENCH_pr4 Oracle figures)")
	storeDir := fs.String("store", "", "persistent store directory for the warm-start section (first run populates it; a re-run must report hit_rate 1)")
	storeSync := fs.Int("store-sync", 0, "fsync the -store log every n record writes during the warm-start section (0 = no fsync), to measure durability overhead")
	debugAddr := fs.String("debug-addr", "", "listen address for a live pprof/expvar debug server during the run (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, obs.DebugHandler()); err != nil {
				fmt.Fprintf(stderr, "pes-bench: debug listener: %v\n", err)
			}
		}()
	}
	if *storeSync < 0 {
		return fmt.Errorf("-store-sync must not be negative")
	}
	if *storeSync > 0 && *storeDir == "" {
		return fmt.Errorf("-store-sync requires -store")
	}
	oracleVer, err := sched.ParseOracleVersion(*oracle)
	if err != nil {
		return err
	}
	if *check && *baseline == "" {
		return fmt.Errorf("-check requires -baseline")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	rep := Report{Version: "pr10", Quick: *quick, Seed: *seed, Host: hostReport(), OracleVersion: oracleVer.String()}
	rep.Solver = benchSolver(*seed)
	if !*solverOnly {
		sessions, err := benchSessions(*quick, oracleVer)
		if err != nil {
			return err
		}
		rep.Sessions = sessions
		throughput, err := benchThroughput(*quick, oracleVer)
		if err != nil {
			return err
		}
		rep.Throughput = throughput
		figures, err := benchFigures(*quick)
		if err != nil {
			return err
		}
		rep.Figures = figures
	}
	if *storeDir != "" {
		storeRep, err := benchStore(*storeDir, *storeSync, oracleVer)
		if err != nil {
			return err
		}
		rep.Store = storeRep
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}

	if *baseline != "" {
		return checkBaseline(rep, *baseline, *check, stderr)
	}
	return nil
}

// benchStore runs the warm-start benchmark: a fixed, fully deterministic
// campaign (2 apps x 2 seeds x every scheduler) through a batch runner and
// artifact store layered over the persistent store at dir. All state is
// private to the call except the store directory itself, so the section
// measures exactly what the directory's contents buy: an empty dir pays the
// full training+simulation cost and populates the log; re-running against
// the populated dir trains nothing, simulates nothing, and reports
// hit_rate 1.
func benchStore(dir string, syncEvery int, oracleVer sched.OracleVersion) (*StoreReport, error) {
	var opts []store.Option
	if syncEvery > 0 {
		opts = append(opts, store.WithSyncEvery(syncEvery))
	}
	ps, err := store.Open(dir, opts...)
	if err != nil {
		return nil, err
	}
	defer ps.Close()
	atOpen := ps.Stats()

	arts := artifacts.NewStore().WithPersistent(ps)
	learner, _, err := arts.Learner(artifacts.LearnerKey{TracesPerApp: 3, CorpusSeed: 400, TrainSeed: 1})
	if err != nil {
		return nil, err
	}
	platform := acmp.Exynos5410()
	runner := batch.NewRunner(0).AttachArtifacts(arts).WithStore(ps)
	var specs []batch.Session
	for _, app := range []string{"cnn", "ebay"} {
		spec, err := webapp.ByName(app)
		if err != nil {
			return nil, err
		}
		for _, seed := range []int64{21, 22} {
			tr := arts.Trace(spec, seed, trace.PurposeEval, trace.Options{})
			for _, schedName := range sessions.Names() {
				sess, err := sessions.New(sessions.Spec{
					Platform:      platform,
					Trace:         tr,
					Scheduler:     schedName,
					Learner:       learner,
					Predictor:     predictor.DefaultConfig(),
					Artifacts:     arts,
					OracleVersion: oracleVer,
				})
				if err != nil {
					return nil, err
				}
				specs = append(specs, sess)
			}
		}
	}
	begun := time.Now()
	if _, err := runner.Run(specs); err != nil {
		return nil, err
	}
	wall := time.Since(begun)

	st := runner.Stats()
	rep := &StoreReport{
		Dir:              dir,
		WarmStart:        atOpen.Recovered > 0,
		RecoveredRecords: atOpen.Recovered,
		Sessions:         st.Sessions,
		UniqueRuns:       st.UniqueRuns,
		StoreHits:        st.StoreHits,
		WallMS:           float64(wall.Microseconds()) / 1e3,
	}
	if st.Sessions > 0 {
		rep.HitRate = float64(st.StoreHits) / float64(st.Sessions)
	}
	if st.Artifacts != nil {
		rep.TraceStoreHits = st.Artifacts.TraceStoreHits
		rep.LearnerStoreHits = st.Artifacts.LearnerStoreHits
	}
	rep.SyncEvery = syncEvery
	rep.Syncs = ps.Stats().Syncs
	return rep, nil
}

// benchSolver runs the solver microbenchmark suite: identical instances
// through Solve, SolveReference, and SolveReferenceOrder. The instances
// come from the shared chaingen distribution (the 17-point Exynos-shaped
// ladder), the same one the ilp node-reduction property test pins.
func benchSolver(seed int64) SolverReport {
	// Sizes mirror the optimizer's real instances: PES plans span an
	// outstanding event plus a handful of predicted ones. Larger windows
	// (the Oracle's 12) exhaust the node budget in both solvers and would
	// only measure the budget, so they are left to the session benchmarks.
	const perSize = 30
	sizes := []int{2, 3, 4, 6, 8}
	pts := chaingen.Points()
	rng := rand.New(rand.NewSource(seed))
	var problems []ilp.Problem
	for _, n := range sizes {
		for k := 0; k < perSize; k++ {
			problems = append(problems, chaingen.Problem(rng, pts, n))
		}
	}

	rep := SolverReport{Problems: len(problems)}
	var gapSum float64
	var wallNew, wallRef, wallRefOrder time.Duration
	completed := 0
	for _, p := range problems {
		begun := time.Now()
		a := ilp.Solve(p)
		dNew := time.Since(begun)

		begun = time.Now()
		r := ilp.SolveReference(p)
		dRef := time.Since(begun)

		begun = time.Now()
		ilp.SolveReferenceOrder(p)
		dRefOrder := time.Since(begun)

		if a.Aborted() || r.Aborted() {
			// A search that exhausted its budget measures the budget, not
			// the algorithm; count it separately and keep it out of every
			// counter the baseline check gates on.
			rep.Aborted++
			continue
		}
		completed++
		wallNew += dNew
		wallRef += dRef
		wallRefOrder += dRefOrder
		rep.Nodes += int64(a.Nodes)
		rep.RefNodes += int64(r.Nodes)
		if diff := a.TotalEnergy - r.TotalEnergy; diff > 1e-9 || diff < -1e-9 {
			rep.EnergyMismatches++
		}
		if gr := ilp.SolveGreedy(p); gr.TotalEnergy > 0 {
			gapSum += 100 * (gr.TotalEnergy - a.TotalEnergy) / gr.TotalEnergy
		}
	}
	if rep.Nodes > 0 {
		rep.NodeRatio = float64(rep.RefNodes) / float64(rep.Nodes)
	}
	if completed > 0 {
		n := float64(completed)
		rep.NsPerSolve = float64(wallNew.Nanoseconds()) / n
		rep.RefNsPerSolve = float64(wallRef.Nanoseconds()) / n
		rep.RefOrderNsPerSolve = float64(wallRefOrder.Nanoseconds()) / n
		rep.GreedyGapPct = gapSum / n
	}
	return rep
}

// benchSessions replays fixed-seed sessions under the solver-bearing
// schedulers and reports wall time plus the solver statistics threaded
// through engine.Result.
func benchSessions(quick bool, oracleVer sched.OracleVersion) ([]SessionReport, error) {
	type sess struct {
		app  string
		seed int64
	}
	corpus := []sess{{"cnn", 11}, {"ebay", 5}, {"espn", 9}}
	if quick {
		corpus = corpus[:1]
	}
	// The artifact store trains this configuration at most once per process
	// (the throughput benchmark shares it).
	learner, _, err := artifacts.Default.Learner(artifacts.LearnerKey{TracesPerApp: 3, CorpusSeed: 400, TrainSeed: 1})
	if err != nil {
		return nil, err
	}
	platform := acmp.Exynos5410()
	var out []SessionReport
	for _, s := range corpus {
		spec, err := webapp.ByName(s.app)
		if err != nil {
			return nil, err
		}
		tr := trace.Generate(spec, s.seed, trace.Options{})
		evs, err := tr.Runtime()
		if err != nil {
			return nil, err
		}
		for _, schedName := range []string{"PES", "Oracle"} {
			var policy sched.ProactivePolicy
			if schedName == "PES" {
				policy = core.NewPES(platform, learner, spec, tr.DOMSeed, predictor.DefaultConfig())
			} else {
				policy = sched.NewOracleWithVersion(platform, evs, oracleVer)
			}
			begun := time.Now()
			res := engine.RunProactive(platform, s.app, evs, policy)
			out = append(out, SessionReport{
				App:       s.app,
				TraceSeed: s.seed,
				Scheduler: schedName,
				Events:    len(res.Outcomes),
				WallMS:    float64(time.Since(begun).Nanoseconds()) / 1e6,
				Solver:    res.Solver,
			})
		}
	}
	return out, nil
}

// benchThroughput measures unique-session throughput: one pass simulates
// the full apps × seeds × schedulers cross product (every session unique, no
// memo-cache hits), cold and artifact-warm.
//
// Cold replicates the pre-artifact-cache per-session setup: the trace is
// regenerated for every scheduler, runtime events are re-parsed and the
// fingerprint re-hashed per session (a fresh single-use store guarantees no
// sharing), and the DOM page-tree cache is bypassed. Warm shares everything
// through one pre-warmed store and runs on the batch runner. Both modes run
// the same simulations on the same host, so their ratio is the portable
// headline number.
func benchThroughput(quick bool, oracleVer sched.OracleVersion) (*ThroughputReport, error) {
	scale := throughputScale{apps: []string{"cnn", "ebay", "espn"}, seeds: []int64{11, 5}, reps: 3, oracle: oracleVer}
	if !quick {
		scale.apps = append(scale.apps, "amazon", "google", "twitter")
		scale.seeds = append(scale.seeds, 9)
		scale.reps = 5
	}
	return benchThroughputScaled(scale)
}

// throughputScale parameterizes the throughput campaign (tests shrink it).
type throughputScale struct {
	apps   []string
	seeds  []int64
	reps   int
	oracle sched.OracleVersion
}

// benchThroughputScaled is benchThroughput at an explicit scale.
func benchThroughputScaled(scale throughputScale) (*ThroughputReport, error) {
	apps, seeds, reps := scale.apps, scale.seeds, scale.reps
	scheds := sessions.Names()

	learner, _, err := artifacts.Default.Learner(artifacts.LearnerKey{TracesPerApp: 3, CorpusSeed: 400, TrainSeed: 1})
	if err != nil {
		return nil, err
	}
	platform := acmp.Exynos5410()
	rep := &ThroughputReport{
		Apps:       apps,
		TraceSeeds: seeds,
		Schedulers: scheds,
		Sessions:   len(apps) * len(seeds) * len(scheds),
		Reps:       reps,
		Workers:    runtime.NumCPU(),
		Notes:      throughputNotes,
	}

	specByApp := make(map[string]*webapp.Spec, len(apps))
	for _, app := range apps {
		spec, err := webapp.ByName(app)
		if err != nil {
			return nil, err
		}
		specByApp[app] = spec
	}

	// Per-scheduler serial timings, best-of-reps.
	coldBySched := make(map[string]time.Duration, len(scheds))
	warmBySched := make(map[string]time.Duration, len(scheds))

	// Cold passes: serial, fresh per-session store, page cache bypassed.
	pageCacheWas := webapp.SetPageCache(false)
	defer webapp.SetPageCache(pageCacheWas)
	var coldBest time.Duration
	for r := 0; r < reps; r++ {
		perSched := make(map[string]time.Duration, len(scheds))
		begun := time.Now()
		for _, app := range apps {
			for _, seed := range seeds {
				for _, schedName := range scheds {
					sessBegun := time.Now()
					tr := trace.Generate(specByApp[app], seed, trace.Options{})
					sess, err := sessions.New(sessions.Spec{
						Platform:      platform,
						Trace:         tr,
						Scheduler:     schedName,
						Learner:       learner,
						Predictor:     predictor.DefaultConfig(),
						Artifacts:     artifacts.NewStore(),
						OracleVersion: scale.oracle,
					})
					if err == nil {
						_, err = sess.Run()
					}
					if err != nil {
						return nil, err // the deferred SetPageCache restores the caller's state
					}
					perSched[schedName] += time.Since(sessBegun)
				}
			}
		}
		if d := time.Since(begun); coldBest == 0 || d < coldBest {
			coldBest = d
		}
		for name, d := range perSched {
			if cur, ok := coldBySched[name]; !ok || d < cur {
				coldBySched[name] = d
			}
		}
	}
	// The warm phase measures the cached path by definition; the deferred
	// restore puts the caller's setting back at exit.
	webapp.SetPageCache(true)

	// Warm passes: one shared store, sessions built per pass from the cached
	// artifacts. The serial pass runs the sessions directly (per-scheduler
	// timing); the parallel pass goes through the batch runner. A fresh
	// runner per pass keeps every session a unique run — the memo cache
	// never serves a result.
	store := artifacts.NewStore()
	buildSessions := func() ([]batch.Session, []string, error) {
		list := make([]batch.Session, 0, rep.Sessions)
		names := make([]string, 0, rep.Sessions)
		for _, app := range apps {
			for _, seed := range seeds {
				tr := store.Trace(specByApp[app], seed, trace.PurposeEval, trace.Options{})
				for _, schedName := range scheds {
					sess, err := sessions.New(sessions.Spec{
						Platform:      platform,
						Trace:         tr,
						Scheduler:     schedName,
						Learner:       learner,
						Predictor:     predictor.DefaultConfig(),
						Artifacts:     store,
						OracleVersion: scale.oracle,
					})
					if err != nil {
						return nil, nil, err
					}
					list = append(list, sess)
					names = append(names, schedName)
				}
			}
		}
		return list, names, nil
	}
	// Pre-warm the store (and count events) with one untimed pass.
	warmup, _, err := buildSessions()
	if err != nil {
		return nil, err
	}
	results, err := batch.NewRunner(1).Run(warmup)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		rep.Events += len(r.Outcomes)
	}

	var warmSerialBest time.Duration
	for r := 0; r < reps; r++ {
		list, names, err := buildSessions()
		if err != nil {
			return nil, err
		}
		perSched := make(map[string]time.Duration, len(scheds))
		begun := time.Now()
		for i, sess := range list {
			sessBegun := time.Now()
			if _, err := sess.Run(); err != nil {
				return nil, err
			}
			perSched[names[i]] += time.Since(sessBegun)
		}
		if d := time.Since(begun); warmSerialBest == 0 || d < warmSerialBest {
			warmSerialBest = d
		}
		for name, d := range perSched {
			if cur, ok := warmBySched[name]; !ok || d < cur {
				warmBySched[name] = d
			}
		}
	}

	var warmParallelBest time.Duration
	for r := 0; r < reps; r++ {
		list, _, err := buildSessions()
		if err != nil {
			return nil, err
		}
		runner := batch.NewRunner(0)
		begun := time.Now()
		if _, err := runner.Run(list); err != nil {
			return nil, err
		}
		if d := time.Since(begun); warmParallelBest == 0 || d < warmParallelBest {
			warmParallelBest = d
		}
	}

	n := float64(rep.Sessions)
	rep.ColdSerialSPS = n / coldBest.Seconds()
	rep.WarmSerialSPS = n / warmSerialBest.Seconds()
	rep.WarmParallelSPS = n / warmParallelBest.Seconds()
	rep.WarmColdRatio = rep.WarmParallelSPS / rep.ColdSerialSPS
	rep.WarmEventsPerSec = float64(rep.Events) / warmParallelBest.Seconds()
	perSchedSessions := len(apps) * len(seeds)
	for _, name := range scheds {
		st := SchedThroughput{Scheduler: name, Sessions: perSchedSessions}
		if d := coldBySched[name]; d > 0 {
			st.ColdSerialSPS = float64(perSchedSessions) / d.Seconds()
		}
		if d := warmBySched[name]; d > 0 {
			st.WarmSerialSPS = float64(perSchedSessions) / d.Seconds()
		}
		if st.ColdSerialSPS > 0 {
			st.WarmColdRatio = st.WarmSerialSPS / st.ColdSerialSPS
		}
		rep.BySched = append(rep.BySched, st)
	}
	return rep, nil
}

// benchFigures times the paper-figure pipeline: harness setup (training +
// corpus generation) and the headline energy/QoS figures.
func benchFigures(quick bool) ([]FigureReport, error) {
	cfg := experiments.DefaultConfig()
	cfg.Parallel = 1
	if quick {
		cfg.TrainTracesPerApp = 2
		cfg.EvalTracesPerApp = 1
	}
	begun := time.Now()
	setup, err := experiments.NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	out := []FigureReport{{Name: "setup", WallMS: float64(time.Since(begun).Nanoseconds()) / 1e6}}
	for _, fig := range []struct {
		name string
		gen  func() (*experiments.Table, error)
	}{{"fig11", setup.Fig11}, {"fig12", setup.Fig12}, {"fig13", setup.Fig13}} {
		before := setup.Runner.Stats().UniqueRuns
		begun := time.Now()
		if _, err := fig.gen(); err != nil {
			return nil, err
		}
		out = append(out, FigureReport{
			Name:     fig.name,
			WallMS:   float64(time.Since(begun).Nanoseconds()) / 1e6,
			Sessions: setup.Runner.Stats().UniqueRuns - before,
		})
	}
	return out, nil
}

// checkBaseline compares the current report against the committed baseline.
// Only deterministic (solver counters) or host-relative (the warm/cold
// throughput ratio: both sides run in the same process on the same machine)
// quantities are gated; absolute wall times and sessions/sec are printed for
// context but never fail the check, since CI hardware varies.
func checkBaseline(cur Report, path string, enforce bool, stderr io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	var failures []string
	if base.Seed != cur.Seed || base.Solver.Problems != cur.Solver.Problems {
		failures = append(failures, fmt.Sprintf("suite mismatch: baseline seed=%d/problems=%d, current seed=%d/problems=%d",
			base.Seed, base.Solver.Problems, cur.Seed, cur.Solver.Problems))
	}
	if limit := float64(base.Solver.Nodes) * 1.2; float64(cur.Solver.Nodes) > limit {
		failures = append(failures, fmt.Sprintf("solver node count regressed >20%%: %d vs baseline %d",
			cur.Solver.Nodes, base.Solver.Nodes))
	}
	if cur.Solver.NodeRatio < 2 {
		failures = append(failures, fmt.Sprintf("node-reduction ratio %.2f fell below the 2x floor", cur.Solver.NodeRatio))
	}
	if cur.Solver.EnergyMismatches > 0 {
		failures = append(failures, fmt.Sprintf("%d instances where Solve and SolveReference disagree on energy",
			cur.Solver.EnergyMismatches))
	}
	if cur.Throughput != nil && cur.Throughput.WarmColdRatio < warmColdRatioFloor {
		failures = append(failures, fmt.Sprintf("artifact-warm/cold throughput ratio %.2f fell below the %.1fx floor",
			cur.Throughput.WarmColdRatio, warmColdRatioFloor))
	}
	// The v2 fast-path gates: Oracle throughput within the PES floor, and
	// zero budget aborts (a v2 solve that exhausts the node budget means the
	// escalation ladder regressed). v1 reports are exempt — the reference
	// solver's budget-pinned cost is exactly what the version flag preserves.
	if cur.OracleVersion != "v1" {
		if cur.Throughput != nil {
			var oracleSPS, pesSPS float64
			for _, st := range cur.Throughput.BySched {
				switch st.Scheduler {
				case "Oracle":
					oracleSPS = st.WarmSerialSPS
				case "PES":
					pesSPS = st.WarmSerialSPS
				}
			}
			if oracleSPS > 0 && pesSPS > 0 {
				if ratio := pesSPS / oracleSPS; ratio > oraclePESRatioFloor {
					failures = append(failures, fmt.Sprintf(
						"Oracle v2 warm throughput %.0f/s is %.1fx slower than PES %.0f/s (gate: within %.0fx)",
						oracleSPS, ratio, pesSPS, oraclePESRatioFloor))
				}
				fmt.Fprintf(stderr, "pes-bench: oracle v2 warm %.0f/s vs PES %.0f/s (%.1fx, gate %.0fx)\n",
					oracleSPS, pesSPS, pesSPS/oracleSPS, oraclePESRatioFloor)
			}
		}
		aborts := 0
		for _, s := range cur.Sessions {
			if s.Scheduler == "Oracle" {
				aborts += s.Solver.BudgetAborts
			}
		}
		if aborts > 0 {
			failures = append(failures, fmt.Sprintf("Oracle v2 hit the node budget %d time(s); the fast path must prove its optima", aborts))
		}
	}
	fmt.Fprintf(stderr, "pes-bench: nodes %d (baseline %d), node ratio %.2fx (baseline %.2fx), ns/solve %.0f (baseline %.0f, informational)\n",
		cur.Solver.Nodes, base.Solver.Nodes, cur.Solver.NodeRatio, base.Solver.NodeRatio,
		cur.Solver.NsPerSolve, base.Solver.NsPerSolve)
	if t := cur.Throughput; t != nil {
		fmt.Fprintf(stderr, "pes-bench: throughput %d unique sessions: cold %.0f/s, warm serial %.0f/s, warm parallel %.0f/s (%d workers), warm/cold %.2fx (floor %.1fx)\n",
			t.Sessions, t.ColdSerialSPS, t.WarmSerialSPS, t.WarmParallelSPS, t.Workers, t.WarmColdRatio, warmColdRatioFloor)
	}
	if len(failures) == 0 {
		fmt.Fprintln(stderr, "pes-bench: no regressions against", path)
		return nil
	}
	for _, f := range failures {
		fmt.Fprintln(stderr, "pes-bench: REGRESSION:", f)
	}
	if enforce {
		return fmt.Errorf("%d regression(s) against %s", len(failures), path)
	}
	return nil
}
