// Command pes-bench is the repo's performance-trajectory harness: it runs
// the solver microbenchmark suite, representative scheduler sessions, and
// the paper-figure benchmarks, and emits one JSON report. The committed
// BENCH_pr3.json is the first point of that trajectory; CI re-runs the
// harness on every PR and fails when the solver benchmarks regress more
// than 20% against it.
//
//	pes-bench -quick -out BENCH.json                # fast PR-sized run
//	pes-bench                                       # full-scale run to stdout
//	pes-bench -quick -check -baseline BENCH_pr3.json
//
// The solver suite is identical in quick and full mode (it is cheap and its
// node counters must stay comparable to the committed baseline); -quick only
// shrinks the session and figure benchmarks. Node counters are fully
// deterministic for a given -seed; wall times are host measurements and are
// reported but never gated on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/acmp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/ilp"
	"repro/internal/ilp/chaingen"
	"repro/internal/optimizer"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// Report is the emitted benchmark document.
type Report struct {
	// Version tags the report layout; bump when fields change meaning.
	Version string `json:"version"`
	// Quick records whether the session/figure benchmarks ran at reduced
	// scale. The solver suite is scale-independent.
	Quick bool `json:"quick"`
	// Seed is the solver-suite RNG seed; reports are only comparable at
	// equal seeds.
	Seed     int64           `json:"seed"`
	Solver   SolverReport    `json:"solver"`
	Sessions []SessionReport `json:"sessions,omitempty"`
	Figures  []FigureReport  `json:"figures,omitempty"`
}

// SolverReport summarizes the solver microbenchmark suite: the overhauled
// Solve versus the frozen SolveReference on identical instances.
type SolverReport struct {
	// Problems is the number of instances in the suite; Aborted counts
	// instances where either solver exhausted its node budget (excluded
	// from the energy cross-check, included in the node counters).
	Problems int `json:"problems"`
	Aborted  int `json:"aborted"`
	// Nodes and RefNodes are the summed branch-and-bound nodes explored by
	// Solve and SolveReference; NodeRatio = RefNodes/Nodes is the headline
	// reduction (the acceptance floor is 2x). All three are deterministic.
	Nodes     int64   `json:"nodes"`
	RefNodes  int64   `json:"ref_nodes"`
	NodeRatio float64 `json:"node_ratio"`
	// Wall-time per solve for Solve, SolveReference, and the Oracle's
	// budget-pinned SolveReferenceOrder (host measurements).
	NsPerSolve         float64 `json:"ns_per_solve"`
	RefNsPerSolve      float64 `json:"ref_ns_per_solve"`
	RefOrderNsPerSolve float64 `json:"ref_order_ns_per_solve"`
	// EnergyMismatches counts non-aborted instances where Solve returned a
	// different total energy than SolveReference; any value but 0 is a bug.
	EnergyMismatches int `json:"energy_mismatches"`
	// GreedyGapPct is the mean energy saving of the exact solve over the
	// greedy heuristic, in percent — what the branch-and-bound buys.
	GreedyGapPct float64 `json:"greedy_gap_pct"`
}

// SessionReport is one end-to-end scheduler session benchmark.
type SessionReport struct {
	App       string                `json:"app"`
	TraceSeed int64                 `json:"trace_seed"`
	Scheduler string                `json:"scheduler"`
	Events    int                   `json:"events"`
	WallMS    float64               `json:"wall_ms"`
	Solver    optimizer.SolverStats `json:"solver"`
}

// FigureReport is one paper-figure benchmark: the wall time to produce the
// figure and how many sessions it simulated.
type FigureReport struct {
	Name     string  `json:"name"`
	WallMS   float64 `json:"wall_ms"`
	Sessions int64   `json:"sessions"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatalf("pes-bench: %v", err)
	}
}

// run is the testable body of the command: the JSON report goes to -out (or
// stdout), progress and check verdicts to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pes-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "reduced session/figure scale (solver suite is unaffected)")
	solverOnly := fs.Bool("solver-only", false, "run only the solver microbenchmark suite")
	out := fs.String("out", "", "write the JSON report to this file (default: stdout)")
	baseline := fs.String("baseline", "", "committed report to compare against (e.g. BENCH_pr3.json)")
	check := fs.Bool("check", false, "with -baseline: exit non-zero when the solver benchmarks regress >20%")
	seed := fs.Int64("seed", 1, "solver-suite RNG seed (must match the baseline's)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *check && *baseline == "" {
		return fmt.Errorf("-check requires -baseline")
	}

	rep := Report{Version: "pr3", Quick: *quick, Seed: *seed}
	rep.Solver = benchSolver(*seed)
	if !*solverOnly {
		sessions, err := benchSessions(*quick)
		if err != nil {
			return err
		}
		rep.Sessions = sessions
		figures, err := benchFigures(*quick)
		if err != nil {
			return err
		}
		rep.Figures = figures
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}

	if *baseline != "" {
		return checkBaseline(rep, *baseline, *check, stderr)
	}
	return nil
}

// benchSolver runs the solver microbenchmark suite: identical instances
// through Solve, SolveReference, and SolveReferenceOrder. The instances
// come from the shared chaingen distribution (the 17-point Exynos-shaped
// ladder), the same one the ilp node-reduction property test pins.
func benchSolver(seed int64) SolverReport {
	// Sizes mirror the optimizer's real instances: PES plans span an
	// outstanding event plus a handful of predicted ones. Larger windows
	// (the Oracle's 12) exhaust the node budget in both solvers and would
	// only measure the budget, so they are left to the session benchmarks.
	const perSize = 30
	sizes := []int{2, 3, 4, 6, 8}
	pts := chaingen.Points()
	rng := rand.New(rand.NewSource(seed))
	var problems []ilp.Problem
	for _, n := range sizes {
		for k := 0; k < perSize; k++ {
			problems = append(problems, chaingen.Problem(rng, pts, n))
		}
	}

	rep := SolverReport{Problems: len(problems)}
	var gapSum float64
	var wallNew, wallRef, wallRefOrder time.Duration
	completed := 0
	for _, p := range problems {
		begun := time.Now()
		a := ilp.Solve(p)
		dNew := time.Since(begun)

		begun = time.Now()
		r := ilp.SolveReference(p)
		dRef := time.Since(begun)

		begun = time.Now()
		ilp.SolveReferenceOrder(p)
		dRefOrder := time.Since(begun)

		if a.Aborted() || r.Aborted() {
			// A search that exhausted its budget measures the budget, not
			// the algorithm; count it separately and keep it out of every
			// counter the baseline check gates on.
			rep.Aborted++
			continue
		}
		completed++
		wallNew += dNew
		wallRef += dRef
		wallRefOrder += dRefOrder
		rep.Nodes += int64(a.Nodes)
		rep.RefNodes += int64(r.Nodes)
		if diff := a.TotalEnergy - r.TotalEnergy; diff > 1e-9 || diff < -1e-9 {
			rep.EnergyMismatches++
		}
		if gr := ilp.SolveGreedy(p); gr.TotalEnergy > 0 {
			gapSum += 100 * (gr.TotalEnergy - a.TotalEnergy) / gr.TotalEnergy
		}
	}
	if rep.Nodes > 0 {
		rep.NodeRatio = float64(rep.RefNodes) / float64(rep.Nodes)
	}
	if completed > 0 {
		n := float64(completed)
		rep.NsPerSolve = float64(wallNew.Nanoseconds()) / n
		rep.RefNsPerSolve = float64(wallRef.Nanoseconds()) / n
		rep.RefOrderNsPerSolve = float64(wallRefOrder.Nanoseconds()) / n
		rep.GreedyGapPct = gapSum / n
	}
	return rep
}

// benchSessions replays fixed-seed sessions under the solver-bearing
// schedulers and reports wall time plus the solver statistics threaded
// through engine.Result.
func benchSessions(quick bool) ([]SessionReport, error) {
	type sess struct {
		app  string
		seed int64
	}
	corpus := []sess{{"cnn", 11}, {"ebay", 5}, {"espn", 9}}
	if quick {
		corpus = corpus[:1]
	}
	learner, _, err := predictor.TrainOnSeenApps(3, 400)
	if err != nil {
		return nil, err
	}
	platform := acmp.Exynos5410()
	var out []SessionReport
	for _, s := range corpus {
		spec, err := webapp.ByName(s.app)
		if err != nil {
			return nil, err
		}
		tr := trace.Generate(spec, s.seed, trace.Options{})
		evs, err := tr.Runtime()
		if err != nil {
			return nil, err
		}
		for _, schedName := range []string{"PES", "Oracle"} {
			var policy sched.ProactivePolicy
			if schedName == "PES" {
				policy = core.NewPES(platform, learner, spec, tr.DOMSeed, predictor.DefaultConfig())
			} else {
				policy = sched.NewOracle(platform, evs)
			}
			begun := time.Now()
			res := engine.RunProactive(platform, s.app, evs, policy)
			out = append(out, SessionReport{
				App:       s.app,
				TraceSeed: s.seed,
				Scheduler: schedName,
				Events:    len(res.Outcomes),
				WallMS:    float64(time.Since(begun).Nanoseconds()) / 1e6,
				Solver:    res.Solver,
			})
		}
	}
	return out, nil
}

// benchFigures times the paper-figure pipeline: harness setup (training +
// corpus generation) and the headline energy/QoS figures.
func benchFigures(quick bool) ([]FigureReport, error) {
	cfg := experiments.DefaultConfig()
	cfg.Parallel = 1
	if quick {
		cfg.TrainTracesPerApp = 2
		cfg.EvalTracesPerApp = 1
	}
	begun := time.Now()
	setup, err := experiments.NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	out := []FigureReport{{Name: "setup", WallMS: float64(time.Since(begun).Nanoseconds()) / 1e6}}
	for _, fig := range []struct {
		name string
		gen  func() (*experiments.Table, error)
	}{{"fig11", setup.Fig11}, {"fig12", setup.Fig12}, {"fig13", setup.Fig13}} {
		before := setup.Runner.Stats().UniqueRuns
		begun := time.Now()
		if _, err := fig.gen(); err != nil {
			return nil, err
		}
		out = append(out, FigureReport{
			Name:     fig.name,
			WallMS:   float64(time.Since(begun).Nanoseconds()) / 1e6,
			Sessions: setup.Runner.Stats().UniqueRuns - before,
		})
	}
	return out, nil
}

// checkBaseline compares the current report against the committed baseline.
// Only deterministic solver counters are gated (node counts must not grow
// more than 20%, the node-reduction floor of 2x must hold, and the solvers
// must agree on energies); wall times are printed for context but never
// fail the check, since CI hardware varies.
func checkBaseline(cur Report, path string, enforce bool, stderr io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	var failures []string
	if base.Seed != cur.Seed || base.Solver.Problems != cur.Solver.Problems {
		failures = append(failures, fmt.Sprintf("suite mismatch: baseline seed=%d/problems=%d, current seed=%d/problems=%d",
			base.Seed, base.Solver.Problems, cur.Seed, cur.Solver.Problems))
	}
	if limit := float64(base.Solver.Nodes) * 1.2; float64(cur.Solver.Nodes) > limit {
		failures = append(failures, fmt.Sprintf("solver node count regressed >20%%: %d vs baseline %d",
			cur.Solver.Nodes, base.Solver.Nodes))
	}
	if cur.Solver.NodeRatio < 2 {
		failures = append(failures, fmt.Sprintf("node-reduction ratio %.2f fell below the 2x floor", cur.Solver.NodeRatio))
	}
	if cur.Solver.EnergyMismatches > 0 {
		failures = append(failures, fmt.Sprintf("%d instances where Solve and SolveReference disagree on energy",
			cur.Solver.EnergyMismatches))
	}
	fmt.Fprintf(stderr, "pes-bench: nodes %d (baseline %d), node ratio %.2fx (baseline %.2fx), ns/solve %.0f (baseline %.0f, informational)\n",
		cur.Solver.Nodes, base.Solver.Nodes, cur.Solver.NodeRatio, base.Solver.NodeRatio,
		cur.Solver.NsPerSolve, base.Solver.NsPerSolve)
	if len(failures) == 0 {
		fmt.Fprintln(stderr, "pes-bench: no solver regressions against", path)
		return nil
	}
	for _, f := range failures {
		fmt.Fprintln(stderr, "pes-bench: REGRESSION:", f)
	}
	if enforce {
		return fmt.Errorf("%d solver regression(s) against %s", len(failures), path)
	}
	return nil
}
