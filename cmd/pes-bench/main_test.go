package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/sched"
)

// TestSolverSuiteReport runs the solver microbenchmark suite and validates
// the invariants the committed BENCH_pr3.json and the CI smoke job rely on:
// the suite is non-trivial, the overhauled solver is energy-equivalent to
// the reference, and the node reduction meets its 2x floor.
func TestSolverSuiteReport(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-solver-only", "-seed", "1"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Version != "pr10" || rep.Solver.Problems == 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.Host.GoVersion == "" || rep.Host.NumCPU < 1 || rep.Host.GOMAXPROCS < 1 || rep.Host.GOOS == "" || rep.Host.GOARCH == "" {
		t.Errorf("host section not populated: %+v", rep.Host)
	}
	if rep.Solver.EnergyMismatches != 0 {
		t.Errorf("Solve and SolveReference disagreed on %d instances", rep.Solver.EnergyMismatches)
	}
	if rep.Solver.NodeRatio < 2 {
		t.Errorf("node-reduction ratio %.2f is below the 2x acceptance floor", rep.Solver.NodeRatio)
	}
	if rep.Sessions != nil || rep.Throughput != nil || rep.Figures != nil {
		t.Error("-solver-only must omit the session, throughput and figure benchmarks")
	}
}

// TestThroughputGate feeds checkBaseline a report whose warm/cold ratio is
// below the floor and expects the -check gate to fail, and one above it to
// pass.
func TestThroughputGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var out, errOut bytes.Buffer
	if err := run([]string{"-solver-only", "-out", path}, &out, &errOut); err != nil {
		t.Fatalf("run -out: %v", err)
	}
	var base Report
	readJSON(t, path, &base)

	cur := base
	cur.Throughput = &ThroughputReport{WarmColdRatio: warmColdRatioFloor - 0.1}
	if err := checkBaseline(cur, path, true, &errOut); err == nil {
		t.Error("checkBaseline passed a warm/cold ratio below the floor")
	}
	cur.Throughput = &ThroughputReport{WarmColdRatio: warmColdRatioFloor + 0.1}
	if err := checkBaseline(cur, path, true, &errOut); err != nil {
		t.Errorf("checkBaseline failed a warm/cold ratio above the floor: %v", err)
	}
}

// TestOracleV2Gates exercises the v2-only gates: the Oracle-vs-PES warm
// throughput floor and the zero-budget-aborts requirement, both exempted
// under -oracle=v1.
func TestOracleV2Gates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var out, errOut bytes.Buffer
	if err := run([]string{"-solver-only", "-out", path}, &out, &errOut); err != nil {
		t.Fatalf("run -out: %v", err)
	}
	var base Report
	readJSON(t, path, &base)

	mk := func(oracleSPS float64, aborts int, version string) Report {
		cur := base
		cur.OracleVersion = version
		cur.Throughput = &ThroughputReport{
			WarmColdRatio: warmColdRatioFloor + 1,
			BySched: []SchedThroughput{
				{Scheduler: "PES", WarmSerialSPS: 3000},
				{Scheduler: "Oracle", WarmSerialSPS: oracleSPS},
			},
		}
		cur.Sessions = []SessionReport{{Scheduler: "Oracle", Solver: optimizer.SolverStats{BudgetAborts: aborts}}}
		return cur
	}

	if err := checkBaseline(mk(3000/oraclePESRatioFloor-100, 0, "v2"), path, true, &errOut); err == nil {
		t.Error("checkBaseline passed an Oracle v2 slower than PES/5")
	}
	if err := checkBaseline(mk(3000/oraclePESRatioFloor+100, 0, "v2"), path, true, &errOut); err != nil {
		t.Errorf("checkBaseline failed an Oracle v2 within the PES floor: %v", err)
	}
	if err := checkBaseline(mk(1000, 2, "v2"), path, true, &errOut); err == nil {
		t.Error("checkBaseline passed a v2 report with budget aborts")
	}
	// v1 is exempt from both gates: its budget-pinned cost is the artifact.
	if err := checkBaseline(mk(100, 2, "v1"), path, true, &errOut); err != nil {
		t.Errorf("checkBaseline applied the v2 gates to a v1 report: %v", err)
	}
}

// TestCheckAgainstBaseline round-trips a report through -out and -baseline:
// a report never regresses against itself, and a tampered baseline with far
// fewer nodes must fail the -check gate.
func TestCheckAgainstBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var out, errOut bytes.Buffer
	if err := run([]string{"-solver-only", "-out", path}, &out, &errOut); err != nil {
		t.Fatalf("run -out: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("-out should leave stdout empty, got %q", out.String())
	}

	out.Reset()
	errOut.Reset()
	if err := run([]string{"-solver-only", "-baseline", path, "-check"}, &out, &errOut); err != nil {
		t.Fatalf("self-check regressed: %v\n%s", err, errOut.String())
	}

	// Tamper: pretend the baseline explored far fewer nodes.
	var rep Report
	readJSON(t, path, &rep)
	rep.Solver.Nodes /= 10
	writeJSON(t, path, rep)
	out.Reset()
	errOut.Reset()
	if err := run([]string{"-solver-only", "-baseline", path, "-check"}, &out, &errOut); err == nil {
		t.Fatal("-check passed against a baseline with 10x fewer nodes")
	}
}

// TestThroughputBenchmarkScaled runs the throughput campaign at a tiny
// scale and validates the report's shape and invariants: every session is
// unique, every mode measured, and the per-scheduler breakdown covers all
// five schedulers.
func TestThroughputBenchmarkScaled(t *testing.T) {
	rep, err := benchThroughputScaled(throughputScale{apps: []string{"espn"}, seeds: []int64{9}, reps: 1, oracle: sched.DefaultOracleVersion})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 5 || rep.Events == 0 {
		t.Fatalf("degenerate throughput report: %+v", rep)
	}
	if rep.ColdSerialSPS <= 0 || rep.WarmSerialSPS <= 0 || rep.WarmParallelSPS <= 0 {
		t.Errorf("all three rates must be measured: %+v", rep)
	}
	if rep.WarmColdRatio <= 0 || rep.WarmEventsPerSec <= 0 {
		t.Errorf("derived rates must be positive: %+v", rep)
	}
	if len(rep.BySched) != 5 {
		t.Fatalf("per-scheduler breakdown has %d rows, want 5", len(rep.BySched))
	}
	for _, s := range rep.BySched {
		if s.Sessions != 1 || s.ColdSerialSPS <= 0 || s.WarmSerialSPS <= 0 {
			t.Errorf("scheduler row not fully measured: %+v", s)
		}
	}
}

// TestSessionBenchmarkQuick covers the session suite at quick scale.
func TestSessionBenchmarkQuick(t *testing.T) {
	reps, err := benchSessions(true, sched.DefaultOracleVersion)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("quick session suite has %d entries, want 2 (PES + Oracle)", len(reps))
	}
	for _, r := range reps {
		if r.Events == 0 || r.WallMS <= 0 {
			t.Errorf("degenerate session report: %+v", r)
		}
		if r.Scheduler == "PES" && r.Solver.Solves == 0 {
			t.Errorf("PES session reported no solves: %+v", r)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuchflag"},
		{"-check"}, // -check without -baseline
		{"-solver-only", "-baseline", "does-not-exist.json"},
	} {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func readJSON(t *testing.T, path string, v any) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatal(err)
	}
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
