package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSolverSuiteReport runs the solver microbenchmark suite and validates
// the invariants the committed BENCH_pr3.json and the CI smoke job rely on:
// the suite is non-trivial, the overhauled solver is energy-equivalent to
// the reference, and the node reduction meets its 2x floor.
func TestSolverSuiteReport(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-solver-only", "-seed", "1"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Version != "pr3" || rep.Solver.Problems == 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.Solver.EnergyMismatches != 0 {
		t.Errorf("Solve and SolveReference disagreed on %d instances", rep.Solver.EnergyMismatches)
	}
	if rep.Solver.NodeRatio < 2 {
		t.Errorf("node-reduction ratio %.2f is below the 2x acceptance floor", rep.Solver.NodeRatio)
	}
	if rep.Sessions != nil || rep.Figures != nil {
		t.Error("-solver-only must omit the session and figure benchmarks")
	}
}

// TestCheckAgainstBaseline round-trips a report through -out and -baseline:
// a report never regresses against itself, and a tampered baseline with far
// fewer nodes must fail the -check gate.
func TestCheckAgainstBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var out, errOut bytes.Buffer
	if err := run([]string{"-solver-only", "-out", path}, &out, &errOut); err != nil {
		t.Fatalf("run -out: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("-out should leave stdout empty, got %q", out.String())
	}

	out.Reset()
	errOut.Reset()
	if err := run([]string{"-solver-only", "-baseline", path, "-check"}, &out, &errOut); err != nil {
		t.Fatalf("self-check regressed: %v\n%s", err, errOut.String())
	}

	// Tamper: pretend the baseline explored far fewer nodes.
	var rep Report
	readJSON(t, path, &rep)
	rep.Solver.Nodes /= 10
	writeJSON(t, path, rep)
	out.Reset()
	errOut.Reset()
	if err := run([]string{"-solver-only", "-baseline", path, "-check"}, &out, &errOut); err == nil {
		t.Fatal("-check passed against a baseline with 10x fewer nodes")
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuchflag"},
		{"-check"}, // -check without -baseline
		{"-solver-only", "-baseline", "does-not-exist.json"},
	} {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func readJSON(t *testing.T, path string, v any) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatal(err)
	}
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
