// Command pes-serve runs the simulation service: a long-lived HTTP server
// that accepts simulation campaigns, executes them on a bounded worker pool,
// and memoizes every unique session in one process-wide cache shared across
// all requests — repeated or overlapping campaigns simulate each session
// exactly once.
//
//	pes-serve -addr :8080 -parallel 8
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/campaigns -d '{"apps":["cnn"],"schedulers":["EBS","PES"]}'
//	curl -s localhost:8080/v1/campaigns/c0001
//	curl -s localhost:8080/v1/campaigns/c0001/results
//	curl -s localhost:8080/v1/figures/fig11
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	traces := flag.Int("traces", 3, "evaluation traces per application (figure endpoints)")
	train := flag.Int("train", 8, "training traces per seen application")
	seed := flag.Int64("seed", 1, "harness seed")
	parallel := flag.Int("parallel", 0, "simulation worker-pool size (0 = number of CPUs)")
	jobs := flag.Int("jobs", 2, "campaigns executed concurrently")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.EvalTracesPerApp = *traces
	cfg.TrainTracesPerApp = *train
	cfg.Seed = *seed
	cfg.Parallel = *parallel

	log.Printf("pes-serve: training the predictor (%d traces/app)...", *train)
	svc, err := server.New(server.Config{Experiments: cfg, JobWorkers: *jobs})
	if err != nil {
		log.Fatalf("pes-serve: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("pes-serve: shutting down (queued campaigns are canceled, running ones finish)")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()

	log.Printf("pes-serve: listening on %s (%d simulation workers, %d campaign workers)",
		*addr, svc.Setup().Runner.Workers(), *jobs)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pes-serve: %v", err)
	}
	svc.Close()
	st := svc.Stats()
	log.Printf("pes-serve: served %d sessions (%d simulated, %d from cache)",
		st.Sessions, st.UniqueRuns, st.CacheHits)
}
