// Command pes-serve runs the simulation service: a long-lived HTTP server
// that accepts simulation campaigns, executes them on a bounded worker pool,
// and memoizes every unique session in one process-wide cache shared across
// all requests — repeated or overlapping campaigns simulate each session
// exactly once.
//
//	pes-serve -addr :8080 -parallel 8
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/campaigns -d '{"apps":["cnn"],"schedulers":["EBS","PES"]}'
//	curl -s localhost:8080/v1/campaigns/c0001
//	curl -s localhost:8080/v1/campaigns/c0001/results
//	curl -s localhost:8080/v1/figures/fig11
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil && !errors.Is(err, flag.ErrHelp) {
		log.Fatalf("pes-serve: %v", err)
	}
}

// serveConfig is the validated flag state of one invocation.
type serveConfig struct {
	addr string
	jobs int
	exp  experiments.Config
}

// parseArgs parses and validates the command line; flag usage and parse
// errors go to stderr.
func parseArgs(args []string, stderr io.Writer) (serveConfig, error) {
	fs := flag.NewFlagSet("pes-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	traces := fs.Int("traces", 3, "evaluation traces per application (figure endpoints)")
	train := fs.Int("train", 8, "training traces per seen application")
	seed := fs.Int64("seed", 1, "harness seed")
	parallel := fs.Int("parallel", 0, "simulation worker-pool size (0 = number of CPUs)")
	jobs := fs.Int("jobs", 2, "campaigns executed concurrently")
	if err := fs.Parse(args); err != nil {
		return serveConfig{}, err
	}
	if *addr == "" {
		return serveConfig{}, fmt.Errorf("-addr must not be empty")
	}
	if *traces < 1 || *train < 1 {
		return serveConfig{}, fmt.Errorf("-traces and -train must be at least 1")
	}
	if *parallel < 0 {
		return serveConfig{}, fmt.Errorf("-parallel must not be negative")
	}
	if *jobs < 1 {
		return serveConfig{}, fmt.Errorf("-jobs must be at least 1")
	}
	cfg := experiments.DefaultConfig()
	cfg.EvalTracesPerApp = *traces
	cfg.TrainTracesPerApp = *train
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	return serveConfig{addr: *addr, jobs: *jobs, exp: cfg}, nil
}

// run is the testable body of the command, factored like pes-sim and
// pes-experiments: flag handling and validation are separable from the
// blocking serve loop, and all human-readable output flows through the
// writers.
func run(args []string, stdout, stderr io.Writer) error {
	cfg, err := parseArgs(args, stderr)
	if err != nil {
		return err
	}
	return serve(cfg, stdout)
}

// serve trains the harness, listens on cfg.addr, and blocks until SIGINT or
// SIGTERM triggers a graceful shutdown.
func serve(cfg serveConfig, stdout io.Writer) error {
	fmt.Fprintf(stdout, "pes-serve: training the predictor (%d traces/app)...\n", cfg.exp.TrainTracesPerApp)
	svc, err := server.New(server.Config{Experiments: cfg.exp, JobWorkers: cfg.jobs})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: cfg.addr, Handler: svc.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(stdout, "pes-serve: shutting down (queued campaigns are canceled, running ones finish)")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()

	fmt.Fprintf(stdout, "pes-serve: listening on %s (%d simulation workers, %d campaign workers)\n",
		cfg.addr, svc.Setup().Runner.Workers(), cfg.jobs)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		svc.Close()
		return err
	}
	svc.Close()
	st := svc.Stats()
	fmt.Fprintf(stdout, "pes-serve: served %d sessions (%d simulated, %d from cache; %d solves, %d plan-cache hits)\n",
		st.Sessions, st.UniqueRuns, st.CacheHits, st.Solver.Solves, st.Solver.PlanCacheHits)
	return nil
}
