// Command pes-serve runs the simulation service: a long-lived HTTP server
// that accepts simulation campaigns, executes them on a bounded worker pool,
// and memoizes every unique session in one process-wide cache shared across
// all requests — repeated or overlapping campaigns simulate each session
// exactly once.
//
//	pes-serve -addr :8080 -parallel 8
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/campaigns -d '{"apps":["cnn"],"schedulers":["EBS","PES"]}'
//	curl -s localhost:8080/v1/campaigns/c0001
//	curl -s localhost:8080/v1/campaigns/c0001/results
//	curl -s 'localhost:8080/v1/campaigns/c0001/results?scheduler=PES&format=ndjson'
//	curl -s localhost:8080/v1/figures/fig11
//
// The same binary scales out to an elastic cluster: workers serve the shard
// API, a coordinator shards campaigns across them by consistent hashing on
// the session memo key and merges the results byte-identically to in-process
// execution. Membership is dynamic — workers join by registering with the
// coordinator (-coordinator) or through the static -workers seed, are
// health-checked over their /healthz, can be listed and removed at
// /v1/cluster/workers, and idle workers steal queued work from slow ones.
// If every worker dies, the coordinator runs remaining sessions in-process
// instead of failing the campaign. Every process must share the harness
// flags (-train, -traces, -seed, -oracle) so the workers' trained
// predictors and solvers match the coordinator's; an -oracle mismatch is
// rejected at shard submit.
//
//	pes-serve -cluster -addr :8080 &
//	pes-serve -worker -addr :9001 -coordinator localhost:8080 &
//	pes-serve -worker -addr :9002 -coordinator localhost:8080 &
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil && !errors.Is(err, flag.ErrHelp) {
		log.Fatalf("pes-serve: %v", err)
	}
}

// serveConfig is the validated flag state of one invocation.
type serveConfig struct {
	addr        string
	jobs        int
	worker      bool
	workers     []string
	clusterMode bool
	coordinator string
	advertise   string
	storeDir    string
	storeSync   int
	drain       time.Duration
	logFormat   string
	debugAddr   string
	chaos       chaos.Config
	exp         experiments.Config
}

// defaultAdvertise derives the address other processes reach this worker
// at: a bare ":port" listen address advertises localhost.
func defaultAdvertise(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "localhost" + addr
	}
	return addr
}

// parseArgs parses and validates the command line; flag usage and parse
// errors go to stderr.
func parseArgs(args []string, stderr io.Writer) (serveConfig, error) {
	fs := flag.NewFlagSet("pes-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	traces := fs.Int("traces", 3, "evaluation traces per application (figure endpoints)")
	train := fs.Int("train", 8, "training traces per seen application")
	seed := fs.Int64("seed", 1, "harness seed")
	parallel := fs.Int("parallel", 0, "simulation worker-pool size (0 = number of CPUs)")
	jobs := fs.Int("jobs", 2, "campaigns executed concurrently")
	cacheMax := fs.Int("cache-max-entries", 0, "LRU bound on the session memo cache and artifact store (0 = unbounded)")
	worker := fs.Bool("worker", false, "run as a cluster worker (serve the shard API instead of the campaign API)")
	workers := fs.String("workers", "", "comma-separated cluster worker addresses (host:port) statically seeding the membership (empty = in-process execution unless -cluster)")
	clusterMode := fs.Bool("cluster", false, "run as a cluster coordinator even with no static -workers (workers join via -coordinator registration)")
	coordinator := fs.String("coordinator", "", "coordinator URL this worker registers with on startup (worker mode only)")
	advertise := fs.String("advertise", "", "address the coordinator reaches this worker at (default: derived from -addr)")
	oracle := fs.String("oracle", "", "oracle solver version: v2 (default, fast path) or v1 (paper-exact reference figures); cluster processes must agree")
	storeDir := fs.String("store", "", "persistent store directory: session results, traces and trained models survive restarts (empty = in-memory only; one process per directory)")
	storeSync := fs.Int("store-sync", 0, "fsync the -store log every n record writes; campaign terminal states always fsync when set (0 = rely on the OS page cache)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown deadline for running campaigns when -store journals them; unfinished campaigns resume on the next boot")
	logFormat := fs.String("log-format", "text", "structured log format, text or json (logs go to stderr; stdout stays the human banner channel)")
	debugAddr := fs.String("debug-addr", "", "listen address for the pprof/expvar debug server (empty = disabled; bind loopback only, profiles stop the world)")
	chaosSpec := fs.String("chaos", "", "deterministic fault-injection spec for resilience testing, e.g. seed=1,fault=0.05,torn=0.02,latency=0.1,latency_max=20ms,ping=0.05,short_write=0.01 (empty = off; never set in production)")
	if err := fs.Parse(args); err != nil {
		return serveConfig{}, err
	}
	chaosCfg, err := chaos.ParseSpec(*chaosSpec)
	if err != nil {
		return serveConfig{}, fmt.Errorf("-chaos: %w", err)
	}
	oracleVer, err := sched.ParseOracleVersion(*oracle)
	if err != nil {
		return serveConfig{}, err
	}
	if *addr == "" {
		return serveConfig{}, fmt.Errorf("-addr must not be empty")
	}
	if *traces < 1 || *train < 1 {
		return serveConfig{}, fmt.Errorf("-traces and -train must be at least 1")
	}
	if *parallel < 0 {
		return serveConfig{}, fmt.Errorf("-parallel must not be negative")
	}
	if *jobs < 1 {
		return serveConfig{}, fmt.Errorf("-jobs must be at least 1")
	}
	if *cacheMax < 0 {
		return serveConfig{}, fmt.Errorf("-cache-max-entries must not be negative")
	}
	if *storeSync < 0 {
		return serveConfig{}, fmt.Errorf("-store-sync must not be negative")
	}
	if *storeSync > 0 && *storeDir == "" {
		return serveConfig{}, fmt.Errorf("-store-sync requires -store")
	}
	if *drain <= 0 {
		return serveConfig{}, fmt.Errorf("-drain must be positive")
	}
	if *logFormat != "text" && *logFormat != "json" {
		return serveConfig{}, fmt.Errorf("-log-format must be text or json, got %q", *logFormat)
	}
	if *worker && *workers != "" {
		return serveConfig{}, fmt.Errorf("-worker and -workers are mutually exclusive (a process is either a worker or a coordinator)")
	}
	if *worker && *clusterMode {
		return serveConfig{}, fmt.Errorf("-worker and -cluster are mutually exclusive (a process is either a worker or a coordinator)")
	}
	if *coordinator != "" && !*worker {
		return serveConfig{}, fmt.Errorf("-coordinator requires -worker (only workers register with a coordinator)")
	}
	if *advertise != "" && *coordinator == "" {
		return serveConfig{}, fmt.Errorf("-advertise requires -coordinator (it is the address sent at registration)")
	}
	var workerList []string
	if *workers != "" {
		for _, w := range strings.Split(*workers, ",") {
			w = strings.TrimSpace(w)
			if w == "" {
				return serveConfig{}, fmt.Errorf("-workers contains an empty address")
			}
			workerList = append(workerList, w)
		}
	}
	adv := *advertise
	if adv == "" {
		adv = defaultAdvertise(*addr)
	}
	cfg := experiments.DefaultConfig()
	cfg.EvalTracesPerApp = *traces
	cfg.TrainTracesPerApp = *train
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	cfg.CacheMaxEntries = *cacheMax
	cfg.OracleVersion = oracleVer
	return serveConfig{
		addr:        *addr,
		jobs:        *jobs,
		worker:      *worker,
		workers:     workerList,
		clusterMode: *clusterMode,
		coordinator: *coordinator,
		advertise:   adv,
		storeDir:    *storeDir,
		storeSync:   *storeSync,
		drain:       *drain,
		logFormat:   *logFormat,
		debugAddr:   *debugAddr,
		chaos:       chaosCfg,
		exp:         cfg,
	}, nil
}

// newLogger builds the process logger for -log-format. Structured logs go to
// stderr so stdout stays the human banner/result channel; json makes every
// record one machine-parsable line for log shippers.
func newLogger(format string, stderr io.Writer) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(stderr, nil))
	}
	return slog.New(slog.NewTextHandler(stderr, nil))
}

// startDebug serves pprof and expvar on their own opt-in listener, never on
// the service port: profiles can stop the world and must not be reachable by
// campaign clients.
func startDebug(addr string, logger *slog.Logger) {
	if addr == "" {
		return
	}
	go func() {
		logger.Info("debug listener serving pprof and expvar", "addr", addr)
		if err := http.ListenAndServe(addr, obs.DebugHandler()); err != nil {
			logger.Warn("debug listener failed", "addr", addr, "error", err)
		}
	}()
}

// run is the testable body of the command, factored like pes-sim and
// pes-experiments: flag handling and validation are separable from the
// blocking serve loop, and all human-readable output flows through the
// writers.
func run(args []string, stdout, stderr io.Writer) error {
	cfg, err := parseArgs(args, stderr)
	if err != nil {
		return err
	}
	logger := newLogger(cfg.logFormat, stderr)
	if cfg.worker {
		return serveWorker(cfg, stdout, logger)
	}
	return serve(cfg, stdout, logger)
}

// listenUntilSignal serves handler on addr and blocks until SIGINT or
// SIGTERM triggers a graceful shutdown (the shared tail of both roles).
func listenUntilSignal(addr string, handler http.Handler, stdout io.Writer, shutdownMsg string) error {
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(stdout, shutdownMsg)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// coordinatorURL normalizes a coordinator address to a base URL.
func coordinatorURL(c string) string {
	if strings.Contains(c, "://") {
		return strings.TrimRight(c, "/")
	}
	return "http://" + c
}

// registerLoop announces the worker to the coordinator: immediately, then
// periodically — registration is idempotent, so re-announcing heals both a
// restarted coordinator and a membership entry marked unhealthy while this
// worker was briefly unreachable. Re-announcement paces itself: a steady
// 15s heartbeat while registered, jittered exponential backoff (1s doubling
// to 60s) while the coordinator is unreachable — a coordinator rebooting
// under a large worker fleet sees staggered re-registrations instead of a
// synchronized stampede every 15s. The returned stop function ends the loop
// and deregisters (best effort).
func registerLoop(coordinator, advertise string, stdout io.Writer) (stop func()) {
	base := coordinatorURL(coordinator)
	client := &http.Client{Timeout: 5 * time.Second}
	body, _ := json.Marshal(map[string]string{"addr": advertise})
	announce := func() bool {
		resp, err := client.Post(base+"/v1/cluster/workers", "application/json", bytes.NewReader(body))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return resp.StatusCode == http.StatusOK
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		const (
			steady      = 15 * time.Second
			backoffBase = time.Second
			backoffMax  = time.Minute
		)
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		backoff := backoffBase
		registered := false
		for {
			var wait time.Duration
			if announce() {
				if !registered {
					registered = true
					fmt.Fprintf(stdout, "pes-serve: registered %s with coordinator %s\n", advertise, coordinator)
				}
				backoff = backoffBase
				wait = steady
			} else {
				registered = false
				wait = backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
				backoff *= 2
				if backoff > backoffMax {
					backoff = backoffMax
				}
			}
			select {
			case <-done:
				return
			case <-time.After(wait):
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/cluster/workers?addr="+url.QueryEscape(advertise), nil)
		if err != nil {
			return
		}
		if resp, err := client.Do(req); err == nil {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
	}
}

// newInjector builds the process-wide fault injector when -chaos selects
// any faults, announcing it loudly: a production process with chaos enabled
// should be impossible to miss in the logs.
func newInjector(cfg serveConfig, stdout io.Writer) *chaos.Injector {
	if !cfg.chaos.Enabled() {
		return nil
	}
	fmt.Fprintf(stdout, "pes-serve: CHAOS ENABLED (%+v) — injected faults ahead, do not trust this process with real work\n", cfg.chaos)
	return chaos.New(cfg.chaos)
}

// openPersistentStore opens the -store directory when one is configured,
// applying the -store-sync fsync cadence and (resilience testing only) the
// chaos file wrapper, and reports the recovery outcome; an empty dir means
// in-memory only (nil store).
func openPersistentStore(cfg serveConfig, in *chaos.Injector, stdout io.Writer) (*store.Store, error) {
	if cfg.storeDir == "" {
		return nil, nil
	}
	var opts []store.Option
	if cfg.storeSync > 0 {
		opts = append(opts, store.WithSyncEvery(cfg.storeSync))
	}
	if in != nil {
		opts = append(opts, store.WithFileWrapper(in.WrapFile))
	}
	ps, err := store.Open(cfg.storeDir, opts...)
	if err != nil {
		return nil, fmt.Errorf("opening -store: %w", err)
	}
	st := ps.Stats()
	sync := "no fsync"
	if cfg.storeSync > 0 {
		sync = fmt.Sprintf("fsync every %d records", cfg.storeSync)
	}
	fmt.Fprintf(stdout, "pes-serve: persistent store %s: %d records recovered (%d corrupt skipped, %d torn bytes dropped; %s)\n",
		cfg.storeDir, st.Recovered, st.CorruptRecords, st.TornBytes, sync)
	return ps, nil
}

// serveWorker trains the worker harness and serves the cluster shard API on
// cfg.addr until a signal stops it, registering with the coordinator when
// one is configured. Workers expose the same /metrics surface as the
// coordinator so a scrape job can cover the whole cluster uniformly.
func serveWorker(cfg serveConfig, stdout io.Writer, logger *slog.Logger) error {
	in := newInjector(cfg, stdout)
	ps, err := openPersistentStore(cfg, in, stdout)
	if err != nil {
		return err
	}
	if ps != nil {
		cfg.exp.Store = ps
		defer ps.Close()
	}
	fmt.Fprintf(stdout, "pes-serve: training the predictor (%d traces/app)...\n", cfg.exp.TrainTracesPerApp)
	w, err := cluster.NewWorker(cfg.exp)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	w.Setup().Runner.RegisterMetrics(reg)
	if in != nil {
		in.RegisterMetrics(reg)
	}
	mux := http.NewServeMux()
	mux.Handle("/", w.Handler())
	mux.Handle("GET /metrics", reg.Handler())
	startDebug(cfg.debugAddr, logger)
	fmt.Fprintf(stdout, "pes-serve: worker listening on %s (%d simulation workers)\n",
		cfg.addr, w.Setup().Runner.Workers())
	var stopReg func()
	if cfg.coordinator != "" {
		stopReg = registerLoop(cfg.coordinator, cfg.advertise, stdout)
	}
	err = listenUntilSignal(cfg.addr, mux, stdout, "pes-serve: worker shutting down")
	if stopReg != nil {
		stopReg()
	}
	if err != nil {
		return err
	}
	st := w.Stats()
	fmt.Fprintf(stdout, "pes-serve: worker served %d sessions (%d simulated, %d from cache, %d from store, %d evicted)\n",
		st.Sessions, st.UniqueRuns, st.CacheHits, st.StoreHits, st.CacheEvictions)
	if in != nil {
		fmt.Fprintf(stdout, "pes-serve: chaos injected: %s\n", in.Stats().Summary())
	}
	return nil
}

// serve trains the harness, listens on cfg.addr, and blocks until SIGINT or
// SIGTERM triggers a graceful shutdown. With cfg.workers or -cluster set,
// campaigns are sharded across the (elastic) cluster; otherwise they
// execute in-process.
func serve(cfg serveConfig, stdout io.Writer, logger *slog.Logger) error {
	in := newInjector(cfg, stdout)
	ps, err := openPersistentStore(cfg, in, stdout)
	if err != nil {
		return err
	}
	if ps != nil {
		cfg.exp.Store = ps
		defer ps.Close()
	}
	fmt.Fprintf(stdout, "pes-serve: training the predictor (%d traces/app)...\n", cfg.exp.TrainTracesPerApp)
	srvCfg := server.Config{Experiments: cfg.exp, JobWorkers: cfg.jobs, DrainTimeout: cfg.drain, Logger: logger}
	var coord *cluster.Coordinator
	if len(cfg.workers) > 0 || cfg.clusterMode {
		var err error
		clCfg := cluster.Config{Workers: cfg.workers, OracleVersion: cfg.exp.OracleVersion, Logger: logger}
		if in != nil {
			clCfg.Transport = in.WrapTransport(cluster.NewHTTPTransport())
		}
		coord, err = cluster.New(clCfg)
		if err != nil {
			return err
		}
		srvCfg.Cluster = coord
	}
	svc, err := server.New(srvCfg)
	if err != nil {
		if coord != nil {
			coord.Close()
		}
		return err
	}
	if in != nil {
		in.RegisterMetrics(svc.Metrics())
	}
	startDebug(cfg.debugAddr, logger)
	if n := svc.Resumed(); n > 0 {
		fmt.Fprintf(stdout, "pes-serve: resumed %d journaled campaign(s); completed sessions replay from the store\n", n)
	}

	if coord != nil {
		seed := "none"
		if len(cfg.workers) > 0 {
			seed = strings.Join(cfg.workers, ", ")
		}
		fmt.Fprintf(stdout, "pes-serve: coordinator listening on %s (static workers: %s; registration at /v1/cluster/workers; %d campaign workers)\n",
			cfg.addr, seed, cfg.jobs)
	} else {
		fmt.Fprintf(stdout, "pes-serve: listening on %s (%d simulation workers, %d campaign workers)\n",
			cfg.addr, svc.Setup().Runner.Workers(), cfg.jobs)
	}
	shutdownMsg := "pes-serve: shutting down (queued campaigns are canceled, running ones finish)"
	if ps != nil {
		shutdownMsg = fmt.Sprintf("pes-serve: draining (running campaigns get %s; unfinished ones stay journaled and resume on the next boot)", cfg.drain)
	}
	err = listenUntilSignal(cfg.addr, svc.Handler(), stdout, shutdownMsg)
	svc.Close()
	if coord != nil {
		coord.Close()
	}
	if err != nil {
		return err
	}
	st := svc.Stats()
	fmt.Fprintf(stdout, "pes-serve: served %d sessions (%d simulated, %d from cache, %d from store; %d solves, %d plan-cache hits)\n",
		st.Sessions, st.UniqueRuns, st.CacheHits, st.StoreHits, st.Solver.Solves, st.Solver.PlanCacheHits)
	if in != nil {
		fmt.Fprintf(stdout, "pes-serve: chaos injected: %s\n", in.Stats().Summary())
	}
	return nil
}
