package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"
)

// goldenUsage pins the full -h output of the command: the flag set is the
// service's operator interface, so any drift here is an interface change.
const goldenUsage = `Usage of pes-serve:
  -addr string
    	listen address (default ":8080")
  -jobs int
    	campaigns executed concurrently (default 2)
  -parallel int
    	simulation worker-pool size (0 = number of CPUs)
  -seed int
    	harness seed (default 1)
  -traces int
    	evaluation traces per application (figure endpoints) (default 3)
  -train int
    	training traces per seen application (default 8)
`

func TestRunGoldenUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-h"}, &out, &errOut)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("run(-h) = %v, want flag.ErrHelp", err)
	}
	if got := errOut.String(); got != goldenUsage {
		t.Errorf("usage drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, goldenUsage)
	}
	if out.Len() != 0 {
		t.Errorf("usage must go to stderr, stdout got %q", out.String())
	}
}

func TestParseArgsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"bad flag", []string{"-nosuchflag"}, "flag provided but not defined"},
		{"empty addr", []string{"-addr", ""}, "-addr"},
		{"zero traces", []string{"-traces", "0"}, "-traces"},
		{"zero train", []string{"-train", "0"}, "-train"},
		{"negative parallel", []string{"-parallel", "-1"}, "-parallel"},
		{"zero jobs", []string{"-jobs", "0"}, "-jobs"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var errOut bytes.Buffer
			if _, err := parseArgs(c.args, &errOut); err == nil {
				t.Fatalf("parseArgs(%v) succeeded, want error", c.args)
			} else if !strings.Contains(err.Error(), c.want) {
				t.Errorf("parseArgs(%v) error %q does not mention %q", c.args, err, c.want)
			}
		})
	}
}

func TestParseArgsDefaults(t *testing.T) {
	var errOut bytes.Buffer
	cfg, err := parseArgs(nil, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8080" || cfg.jobs != 2 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.exp.EvalTracesPerApp != 3 || cfg.exp.TrainTracesPerApp != 8 || cfg.exp.Seed != 1 {
		t.Errorf("unexpected experiment defaults: %+v", cfg.exp)
	}
}
