package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"
	"time"
)

// goldenUsage pins the full -h output of the command: the flag set is the
// service's operator interface, so any drift here is an interface change.
const goldenUsage = `Usage of pes-serve:
  -addr string
    	listen address (default ":8080")
  -advertise string
    	address the coordinator reaches this worker at (default: derived from -addr)
  -cache-max-entries int
    	LRU bound on the session memo cache and artifact store (0 = unbounded)
  -chaos string
    	deterministic fault-injection spec for resilience testing, e.g. seed=1,fault=0.05,torn=0.02,latency=0.1,latency_max=20ms,ping=0.05,short_write=0.01 (empty = off; never set in production)
  -cluster
    	run as a cluster coordinator even with no static -workers (workers join via -coordinator registration)
  -coordinator string
    	coordinator URL this worker registers with on startup (worker mode only)
  -debug-addr string
    	listen address for the pprof/expvar debug server (empty = disabled; bind loopback only, profiles stop the world)
  -drain duration
    	graceful-shutdown deadline for running campaigns when -store journals them; unfinished campaigns resume on the next boot (default 30s)
  -jobs int
    	campaigns executed concurrently (default 2)
  -log-format string
    	structured log format, text or json (logs go to stderr; stdout stays the human banner channel) (default "text")
  -oracle string
    	oracle solver version: v2 (default, fast path) or v1 (paper-exact reference figures); cluster processes must agree
  -parallel int
    	simulation worker-pool size (0 = number of CPUs)
  -seed int
    	harness seed (default 1)
  -store string
    	persistent store directory: session results, traces and trained models survive restarts (empty = in-memory only; one process per directory)
  -store-sync int
    	fsync the -store log every n record writes; campaign terminal states always fsync when set (0 = rely on the OS page cache)
  -traces int
    	evaluation traces per application (figure endpoints) (default 3)
  -train int
    	training traces per seen application (default 8)
  -worker
    	run as a cluster worker (serve the shard API instead of the campaign API)
  -workers string
    	comma-separated cluster worker addresses (host:port) statically seeding the membership (empty = in-process execution unless -cluster)
`

func TestRunGoldenUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-h"}, &out, &errOut)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("run(-h) = %v, want flag.ErrHelp", err)
	}
	if got := errOut.String(); got != goldenUsage {
		t.Errorf("usage drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, goldenUsage)
	}
	if out.Len() != 0 {
		t.Errorf("usage must go to stderr, stdout got %q", out.String())
	}
}

func TestParseArgsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"bad flag", []string{"-nosuchflag"}, "flag provided but not defined"},
		{"empty addr", []string{"-addr", ""}, "-addr"},
		{"zero traces", []string{"-traces", "0"}, "-traces"},
		{"zero train", []string{"-train", "0"}, "-train"},
		{"negative parallel", []string{"-parallel", "-1"}, "-parallel"},
		{"zero jobs", []string{"-jobs", "0"}, "-jobs"},
		{"negative cache bound", []string{"-cache-max-entries", "-1"}, "-cache-max-entries"},
		{"worker and workers", []string{"-worker", "-workers", "localhost:9001"}, "mutually exclusive"},
		{"worker and cluster", []string{"-worker", "-cluster"}, "mutually exclusive"},
		{"coordinator without worker", []string{"-coordinator", "localhost:8080"}, "-coordinator requires -worker"},
		{"advertise without coordinator", []string{"-worker", "-advertise", "localhost:9001"}, "-advertise requires -coordinator"},
		{"empty worker address", []string{"-workers", "localhost:9001,,localhost:9002"}, "empty address"},
		{"negative store-sync", []string{"-store", "/tmp/x", "-store-sync", "-1"}, "-store-sync"},
		{"store-sync without store", []string{"-store-sync", "8"}, "requires -store"},
		{"zero drain", []string{"-drain", "0s"}, "-drain"},
		{"bad log format", []string{"-log-format", "xml"}, "-log-format"},
		{"bad chaos key", []string{"-chaos", "explode=1"}, "unknown spec key"},
		{"bad chaos probability", []string{"-chaos", "fault=1.5"}, "outside [0,1]"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var errOut bytes.Buffer
			if _, err := parseArgs(c.args, &errOut); err == nil {
				t.Fatalf("parseArgs(%v) succeeded, want error", c.args)
			} else if !strings.Contains(err.Error(), c.want) {
				t.Errorf("parseArgs(%v) error %q does not mention %q", c.args, err, c.want)
			}
		})
	}
}

func TestParseArgsDefaults(t *testing.T) {
	var errOut bytes.Buffer
	cfg, err := parseArgs(nil, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8080" || cfg.jobs != 2 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.exp.EvalTracesPerApp != 3 || cfg.exp.TrainTracesPerApp != 8 || cfg.exp.Seed != 1 {
		t.Errorf("unexpected experiment defaults: %+v", cfg.exp)
	}
	if cfg.worker || cfg.workers != nil || cfg.exp.CacheMaxEntries != 0 {
		t.Errorf("cluster/cache defaults not zero: %+v", cfg)
	}
	if cfg.storeSync != 0 || cfg.drain != 30*time.Second || cfg.chaos.Enabled() {
		t.Errorf("durability defaults wrong: sync=%d drain=%s chaos=%+v", cfg.storeSync, cfg.drain, cfg.chaos)
	}
}

func TestParseArgsDurability(t *testing.T) {
	var errOut bytes.Buffer
	cfg, err := parseArgs([]string{"-store", "/tmp/pes", "-store-sync", "64", "-drain", "5s",
		"-chaos", "seed=9,fault=0.1,latency=0.2,latency_max=5ms"}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.storeSync != 64 || cfg.drain != 5*time.Second {
		t.Errorf("sync=%d drain=%s, want 64/5s", cfg.storeSync, cfg.drain)
	}
	if !cfg.chaos.Enabled() || cfg.chaos.Seed != 9 || cfg.chaos.FaultP != 0.1 || cfg.chaos.MaxLatency != 5*time.Millisecond {
		t.Errorf("chaos config not parsed: %+v", cfg.chaos)
	}
}

func TestParseArgsClusterModes(t *testing.T) {
	var errOut bytes.Buffer
	cfg, err := parseArgs([]string{"-workers", " localhost:9001, localhost:9002 ", "-cache-max-entries", "512"}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.workers) != 2 || cfg.workers[0] != "localhost:9001" || cfg.workers[1] != "localhost:9002" {
		t.Errorf("worker list = %q, want the two trimmed addresses", cfg.workers)
	}
	if cfg.exp.CacheMaxEntries != 512 {
		t.Errorf("CacheMaxEntries = %d, want 512", cfg.exp.CacheMaxEntries)
	}
	cfg, err = parseArgs([]string{"-worker", "-addr", ":9001"}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.worker || cfg.addr != ":9001" {
		t.Errorf("worker mode not parsed: %+v", cfg)
	}
	// A bare ":port" listen address advertises localhost by default; an
	// explicit -advertise wins.
	if cfg.advertise != "localhost:9001" {
		t.Errorf("derived advertise = %q, want localhost:9001", cfg.advertise)
	}
	cfg, err = parseArgs([]string{"-worker", "-addr", ":9001", "-coordinator", "localhost:8080", "-advertise", "10.0.0.7:9001"}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.coordinator != "localhost:8080" || cfg.advertise != "10.0.0.7:9001" {
		t.Errorf("registration flags not parsed: %+v", cfg)
	}
	// Coordinator mode with no static seed.
	cfg, err = parseArgs([]string{"-cluster"}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.clusterMode || len(cfg.workers) != 0 {
		t.Errorf("cluster mode not parsed: %+v", cfg)
	}
}

// TestNewLogger pins the two structured-log formats: -log-format=json emits
// one JSON object per record, text emits key=value pairs, and both carry the
// message.
func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	newLogger("json", &buf).Info("boot", "addr", ":8080")
	line := strings.TrimSpace(buf.String())
	if !strings.HasPrefix(line, "{") || !strings.Contains(line, `"msg":"boot"`) || !strings.Contains(line, `"addr":":8080"`) {
		t.Errorf("json logger emitted %q", line)
	}
	buf.Reset()
	newLogger("text", &buf).Info("boot", "addr", ":8080")
	line = strings.TrimSpace(buf.String())
	if strings.HasPrefix(line, "{") || !strings.Contains(line, "msg=boot") {
		t.Errorf("text logger emitted %q", line)
	}
}
