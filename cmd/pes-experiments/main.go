// Command pes-experiments regenerates the tables and figures of the paper's
// evaluation section and prints them as plain-text tables.
//
// Usage:
//
//	pes-experiments                 # run everything (Fig. 2–14, overheads, ablations)
//	pes-experiments -fig fig11      # run a single experiment
//	pes-experiments -traces 5       # more evaluation traces per application
//	pes-experiments -parallel 8     # simulate sessions on 8 workers (0 = NumCPU)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatalf("pes-experiments: %v", err)
	}
}

// run is the testable body of the command: tables go to stdout, the runner
// statistics line to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pes-experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "all", "experiment to run (fig2, fig3, table1, fig8, fig9, fig10, fig11, fig12, fig13, fig14, overhead, ablation, tx2, all)")
	traces := fs.Int("traces", 3, "evaluation traces per application")
	train := fs.Int("train", 8, "training traces per seen application")
	seed := fs.Int64("seed", 1, "experiment seed")
	parallel := fs.Int("parallel", 0, "simulation worker-pool size (0 = number of CPUs, 1 = serial)")
	oracle := fs.String("oracle", "", "oracle solver version: v2 (default, fast path) or v1 (paper-exact reference figures)")
	debugAddr := fs.String("debug-addr", "", "listen address for a live pprof/expvar debug server during the run (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	oracleVer, err := sched.ParseOracleVersion(*oracle)
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, obs.DebugHandler()); err != nil {
				fmt.Fprintf(stderr, "pes-experiments: debug listener: %v\n", err)
			}
		}()
	}

	cfg := experiments.DefaultConfig()
	cfg.EvalTracesPerApp = *traces
	cfg.TrainTracesPerApp = *train
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	cfg.OracleVersion = oracleVer

	setup, err := experiments.NewSetup(cfg)
	if err != nil {
		return err
	}

	var tables []*experiments.Table
	switch strings.ToLower(*fig) {
	case "all":
		tables, err = setup.All()
	case "fig2":
		tables, err = one(setup.Fig2())
	case "fig3":
		tables, err = one(setup.Fig3())
	case "table1":
		tables, err = one(setup.Table1())
	case "fig8":
		tables, err = one(setup.Fig8())
	case "fig9":
		tables, err = one(setup.Fig9())
	case "fig10":
		tables, err = one(setup.Fig10())
	case "fig11":
		tables, err = one(setup.Fig11())
	case "fig12":
		tables, err = one(setup.Fig12())
	case "fig13":
		tables, err = one(setup.Fig13())
	case "fig14":
		tables, err = one(setup.Fig14(nil))
	case "overhead", "sec6.3":
		tables, err = one(setup.OverheadTable())
	case "ablation", "nodom":
		tables, err = one(setup.AblationNoDOM())
	case "tx2", "otherdevice":
		tables, err = one(setup.OtherDeviceTX2())
	default:
		return fmt.Errorf("unknown experiment %q", *fig)
	}
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Render(stdout); err != nil {
			return err
		}
	}
	st := setup.Runner.Stats()
	fmt.Fprintf(stderr, "completed %d experiment(s): %d sessions requested, %d simulated on %d worker(s), %d served from cache\n",
		len(tables), st.Sessions, st.UniqueRuns, setup.Runner.Workers(), st.CacheHits)
	return nil
}

func one(t *experiments.Table, err error) ([]*experiments.Table, error) {
	if err != nil {
		return nil, err
	}
	return []*experiments.Table{t}, nil
}
