package main

import (
	"bytes"
	"strings"
	"testing"
)

// goldenFig2 pins the full stdout of a small fixed-seed invocation. Fig. 2
// replays a hand-built four-event sequence, so its values depend only on the
// platform model and the engine — any diff means observable behaviour
// changed.
const goldenFig2 = `== fig2: Representative 4-event sequence (per-event latency ms, violations, energy mJ) ==
                         E1 ms           E2 ms           E3 ms           E4 ms      violations       energy mJ
--------------------------------------------------------------------------------------------------------------
Interactive           1552.174         443.733         214.288          32.906           1.000        7975.753
EBS                   1611.275         427.322         197.878          23.767           1.000        7708.132
Oracle                2813.889           8.333         220.776           8.333           0.000        4211.129
note: paper: OS and EBS violate deadlines on E2/E3 (and E4 for OS); the oracle meets all four and cuts energy by ~1/4 vs EBS

`

func TestRunGoldenFig2(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the predictor")
	}
	var out, errOut bytes.Buffer
	args := []string{"-fig", "fig2", "-traces", "1", "-train", "2", "-seed", "1", "-parallel", "1"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := out.String(); got != goldenFig2 {
		t.Errorf("output drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, goldenFig2)
	}
	if !strings.Contains(errOut.String(), "completed 1 experiment(s)") {
		t.Errorf("stderr missing the runner statistics line, got %q", errOut.String())
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-fig", "nosuchfig", "-traces", "1", "-train", "2"},
		{"-nosuchflag"},
	} {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
