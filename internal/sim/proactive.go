package sim

import (
	"repro/internal/acmp"
	"repro/internal/control"
	"repro/internal/render"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

// plannedTask is a speculative task queued for execution, annotated by the
// simulator with the index of the trace event it is intended to predict so
// that the execution can use the ground-truth workload when the prediction
// is correct.
type plannedTask struct {
	task     sched.SpecTask
	eventIdx int // index into the trace, or -1 when beyond the trace end
}

// inflightTask is a speculative task currently executing on the CPU.
type inflightTask struct {
	task          plannedTask
	start, finish simtime.Time
	energy        float64
	committed     bool // the matching event already arrived; do not buffer the frame
}

// proactiveState is the runtime state of a proactive simulation: the plan
// queue, the in-flight speculative execution, and the Pending Frame Buffer.
type proactiveState struct {
	plan        []plannedTask
	inflight    *inflightTask
	pfb         control.PFB
	frameEnergy map[*render.Frame]float64
	cpuFree     simtime.Time
}

// hasSpeculation reports whether any prediction is still outstanding. A
// committed in-flight execution no longer counts: it belongs to an event
// that has already arrived.
func (s *proactiveState) hasSpeculation() bool {
	return s.pfb.Size() > 0 || (s.inflight != nil && !s.inflight.committed) || len(s.plan) > 0
}

// headType returns the type of the next expected predicted event.
func (s *proactiveState) headType() (webevent.Type, bool) {
	if f, ok := s.pfb.Head(); ok {
		return f.Type, true
	}
	if s.inflight != nil && !s.inflight.committed {
		return s.inflight.task.task.Type, true
	}
	if len(s.plan) > 0 {
		return s.plan[0].task.Type, true
	}
	return 0, false
}

// busyUntil returns the instant the CPU becomes free, accounting for an
// in-flight execution.
func (s *proactiveState) busyUntil() simtime.Time {
	if s.inflight != nil && s.inflight.finish.After(s.cpuFree) {
		return s.inflight.finish
	}
	return s.cpuFree
}

// RunProactive replays the events under a proactive policy (PES or Oracle).
func RunProactive(p *acmp.Platform, app string, events []*webevent.Event, policy sched.ProactivePolicy) *Result {
	res := &Result{Scheduler: policy.Name(), App: app}
	m := &machine{platform: p, res: res}
	st := &proactiveState{frameEnergy: make(map[*render.Frame]float64)}

	// workFor returns the workload a speculative task will actually incur:
	// the ground-truth work of the event it predicts when the prediction is
	// correct, and a workload reconstructed from the estimate otherwise (the
	// frame will be squashed, only its cost matters).
	workFor := func(t plannedTask) acmp.Workload {
		if t.eventIdx >= 0 && t.eventIdx < len(events) && events[t.eventIdx].Type == t.task.Type {
			return events[t.eventIdx].Work
		}
		eff := float64(t.task.Config.FreqMHz) / p.Cluster(t.task.Config.Core).CPI
		return acmp.Workload{Cycles: int64(float64(t.task.EstimatedLatency) * eff)}
	}

	// advance executes speculative work until the given instant.
	advance := func(until simtime.Time) {
		for {
			if st.inflight != nil {
				if st.inflight.finish.After(until) {
					return
				}
				// Completes before `until`.
				fl := st.inflight
				fl.energy += m.chargeBusy(fl.task.task.Config, fl.start, fl.finish)
				policy.ObserveExecution(fl.task.task.Signature, fl.task.task.Config, fl.finish.Sub(fl.start))
				if !fl.committed {
					frame := render.Produce(fl.task.task.Type, fl.task.task.Config, fl.start, fl.finish, true)
					st.frameEnergy[frame] = fl.energy
					st.pfb.Push(fl.task.task.Type, frame)
				}
				st.cpuFree = fl.finish
				st.inflight = nil
				continue
			}
			if len(st.plan) > 0 && policy.SpeculationEnabled() {
				if !st.cpuFree.Before(until) {
					return
				}
				// A hold-until-trigger task (e.g. a predicted load whose
				// network requests are suppressed) blocks the speculative
				// pipeline until its real event arrives; the CPU idles.
				if st.plan[0].task.HoldUntilTrigger {
					m.chargeIdle(until)
					if until.After(st.cpuFree) {
						st.cpuFree = until
					}
					return
				}
				// Speculative tasks execute as soon as the main thread is
				// free, in plan order — the same as-soon-as-possible,
				// back-to-back execution the optimizer's chain constraint
				// (Eqn. 4) assumes.
				t := st.plan[0]
				st.plan = st.plan[1:]
				start, swEnergy := m.switchTo(t.task.Config, st.cpuFree)
				finish := start.Add(p.Latency(workFor(t), t.task.Config))
				st.inflight = &inflightTask{task: t, start: start, finish: finish, energy: swEnergy}
				continue
			}
			// Nothing to run: idle until `until`.
			m.chargeIdle(until)
			if until.After(st.cpuFree) {
				st.cpuFree = until
			}
			return
		}
	}

	// runNow executes an event (or planned task for an event) reactively and
	// records its outcome.
	runNow := func(e *webevent.Event, cfg acmp.Config, estimated bool) {
		start := simtime.Max(e.Trigger, st.busyUntil())
		m.chargeIdle(start)
		now, energy := m.switchTo(cfg, start)
		finish := now.Add(p.Latency(e.Work, cfg))
		energy += m.chargeBusy(cfg, now, finish)
		lat := render.DisplayLatency(e.Trigger, finish)
		policy.ObserveExecution(e.Signature(), cfg, finish.Sub(now))
		res.Outcomes = append(res.Outcomes, Outcome{
			Event:    e,
			Start:    start,
			Finish:   finish,
			Latency:  lat,
			Violated: lat > e.QoSTarget(),
			Config:   cfg,
			EnergyMJ: energy,
		})
		st.cpuFree = finish
		_ = estimated
	}

	// adoptPlan installs a freshly produced plan: tasks for outstanding
	// events are returned to the caller (executed immediately), predicted
	// tasks are queued for speculative execution.
	adoptPlan := func(tasks []sched.SpecTask, nextEventIdx int) (outstandingTasks []sched.SpecTask) {
		st.plan = st.plan[:0]
		k := 0
		for _, t := range tasks {
			if t.Event != nil {
				outstandingTasks = append(outstandingTasks, t)
				continue
			}
			idx := nextEventIdx + k
			if idx >= len(events) {
				idx = -1
			}
			st.plan = append(st.plan, plannedTask{task: t, eventIdx: idx})
			k++
		}
		return outstandingTasks
	}

	// squash drops every outstanding speculative artifact and accounts the
	// waste.
	squash := func(at simtime.Time) {
		dropped, wasted := st.pfb.Squash()
		res.SquashedFrames += dropped
		res.MispredictWaste += wasted
		for f := range st.frameEnergy {
			// Energy of squashed frames stays charged (it was really spent)
			// but is also tracked as waste.
			res.WastedEnergyMJ += st.frameEnergy[f]
			delete(st.frameEnergy, f)
		}
		if st.inflight != nil && !st.inflight.committed {
			// Abort the in-flight speculative execution immediately. An
			// in-flight execution that has already been committed belongs to
			// an event that actually happened and is left to finish.
			elapsed := at.Sub(st.inflight.start)
			if elapsed < 0 {
				elapsed = 0
			}
			e := m.chargeBusy(st.inflight.task.task.Config, st.inflight.start, at)
			res.WastedEnergyMJ += e + st.inflight.energy
			res.MispredictWaste += elapsed
			res.SquashedFrames++
			st.inflight = nil
			st.cpuFree = at
		}
		st.plan = st.plan[:0]
	}

	for ai, e := range events {
		advance(e.Trigger)
		policy.Observe(e)

		headType, hasHead := st.headType()
		switch {
		case hasHead && headType == e.Type:
			policy.OnCorrectPrediction()
			res.CommittedFrames++
			if pf, ok := st.pfb.Head(); ok && pf.Type == e.Type {
				st.pfb.Commit()
				lat := render.DisplayLatency(e.Trigger, pf.Frame.Completed)
				res.Outcomes = append(res.Outcomes, Outcome{
					Event:       e,
					Start:       pf.Frame.Started,
					Finish:      pf.Frame.Completed,
					Latency:     lat,
					Violated:    lat > e.QoSTarget(),
					Config:      pf.Frame.Config,
					EnergyMJ:    st.frameEnergy[pf.Frame],
					Speculative: true,
				})
				delete(st.frameEnergy, pf.Frame)
			} else if st.inflight != nil && !st.inflight.committed {
				// The matching speculative execution is still running; the
				// frame commits when it completes.
				fl := st.inflight
				fl.committed = true
				finish := fl.finish
				lat := render.DisplayLatency(e.Trigger, finish)
				res.Outcomes = append(res.Outcomes, Outcome{
					Event:       e,
					Start:       fl.start,
					Finish:      finish,
					Latency:     lat,
					Violated:    lat > e.QoSTarget(),
					Config:      fl.task.task.Config,
					EnergyMJ:    acmp.EnergyMJ(p.Power(fl.task.task.Config), finish.Sub(fl.start)),
					Speculative: true,
				})
			} else {
				// Planned but not yet started: execute it now at the planned
				// configuration.
				t := st.plan[0]
				st.plan = st.plan[1:]
				runNow(e, t.task.Config, false)
			}
		case hasHead:
			// Mis-prediction: squash everything and fall back to reactive
			// handling of this event.
			policy.OnMisprediction()
			res.Mispredictions++
			squash(e.Trigger)
			if !policy.SpeculationEnabled() {
				res.SpeculationStops++
			}
			handleReactively(e, ai, policy, st, adoptPlan, runNow)
		default:
			// No speculation outstanding (e.g. first event or disabled).
			handleReactively(e, ai, policy, st, adoptPlan, runNow)
		}

		// When the whole predicted pipeline has drained, start a new round of
		// prediction so that the idle gap before the next event can be used.
		if !st.hasSpeculation() && policy.SpeculationEnabled() {
			start := simtime.Max(e.Trigger, st.busyUntil())
			tasks := policy.Plan(start, nil)
			adoptPlan(tasks, ai+1)
		}

		res.PFBSamples = append(res.PFBSamples, PFBSample{Seq: e.Seq, Size: st.pfb.Size()})
	}
	res.finalize()
	return res
}

// handleReactively executes an event that has no usable speculation: if the
// policy can produce a plan covering it, the event runs at the planned
// configuration and the plan's predicted tail is queued speculatively;
// otherwise the policy's reactive (EBS-equivalent) configuration is used.
func handleReactively(e *webevent.Event, ai int, policy sched.ProactivePolicy, st *proactiveState,
	adoptPlan func([]sched.SpecTask, int) []sched.SpecTask,
	runNow func(*webevent.Event, acmp.Config, bool)) {

	policy.OnReactiveEvent()
	start := simtime.Max(e.Trigger, st.busyUntil())
	if policy.SpeculationEnabled() {
		tasks := policy.Plan(start, []*webevent.Event{e})
		if len(tasks) > 0 {
			outstanding := adoptPlan(tasks, ai+1)
			if len(outstanding) > 0 && outstanding[0].Event == e {
				runNow(e, outstanding[0].Config, false)
				return
			}
		}
	}
	runNow(e, policy.ReactiveConfig(e, start), true)
}
