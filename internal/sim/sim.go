// Package sim is the discrete-event simulator that replays an interaction
// trace under a scheduler on an ACMP platform and measures what the paper
// measures on real hardware: per-event latency against its QoS target and
// the processor energy consumed over the whole session (busy, idle, and
// speculation-wasted energy).
//
// Two drivers are provided. RunReactive drives schedulers that only react to
// triggered events (the Interactive/Ondemand governors and EBS), including
// the governors' periodic frequency re-evaluation during an event's
// execution. RunProactive drives proactive schedulers (PES and the Oracle):
// it executes speculative plans ahead of user input, holds the produced
// frames in the Pending Frame Buffer, commits them when the real events
// match the predictions, and squashes them on mis-predictions.
package sim

import (
	"repro/internal/acmp"
	"repro/internal/render"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

// Outcome records the execution of one event.
type Outcome struct {
	// Event is the trace event.
	Event *webevent.Event
	// Start and Finish bound the event's (frame's) production on the CPU.
	Start, Finish simtime.Time
	// Latency is the user-perceived latency (trigger to display).
	Latency simtime.Duration
	// Violated reports whether the latency exceeded the QoS target.
	Violated bool
	// Config is the (final) ACMP configuration the event executed on.
	Config acmp.Config
	// EnergyMJ is the active energy attributed to the event's execution.
	EnergyMJ float64
	// Speculative marks events whose frame production began before the
	// trigger (only possible under proactive scheduling).
	Speculative bool
}

// PFBSample records the Pending Frame Buffer occupancy when an event occurs
// (Fig. 9).
type PFBSample struct {
	Seq  int
	Size int
}

// Result aggregates one simulation run.
type Result struct {
	Scheduler string
	App       string

	Outcomes []Outcome

	// Energy breakdown in millijoules.
	BusyEnergyMJ   float64
	IdleEnergyMJ   float64
	WastedEnergyMJ float64
	TotalEnergyMJ  float64

	// QoS summary.
	Violations    int
	ViolationRate float64

	// Speculation summary (proactive schedulers only).
	CommittedFrames  int
	Mispredictions   int
	SquashedFrames   int
	MispredictWaste  simtime.Duration
	PFBSamples       []PFBSample
	SpeculationStops int

	// Busy-time breakdown, used to reproduce observations such as
	// "Interactive spends >80% of busy time at the big cluster's top
	// frequency".
	TotalBusy   simtime.Duration
	BigBusy     simtime.Duration
	MaxPerfBusy simtime.Duration

	// Duration is the simulated session length (first trigger to last
	// frame).
	Duration simtime.Duration
}

// finalize computes the derived aggregates.
func (r *Result) finalize() {
	r.Violations = 0
	for _, o := range r.Outcomes {
		if o.Violated {
			r.Violations++
		}
	}
	if len(r.Outcomes) > 0 {
		r.ViolationRate = float64(r.Violations) / float64(len(r.Outcomes))
		first := r.Outcomes[0].Event.Trigger
		last := r.Outcomes[0].Finish
		for _, o := range r.Outcomes {
			if o.Finish.After(last) {
				last = o.Finish
			}
		}
		r.Duration = last.Sub(first)
	}
	r.TotalEnergyMJ = r.BusyEnergyMJ + r.IdleEnergyMJ
}

// MeanLatency returns the mean user-perceived latency across outcomes.
func (r *Result) MeanLatency() simtime.Duration {
	if len(r.Outcomes) == 0 {
		return 0
	}
	var sum simtime.Duration
	for _, o := range r.Outcomes {
		sum += o.Latency
	}
	return sum / simtime.Duration(len(r.Outcomes))
}

// machine tracks the shared CPU/energy accounting of a simulation run.
type machine struct {
	platform  *acmp.Platform
	res       *Result
	accounted simtime.Time // instant up to which energy has been charged
	lastCfg   acmp.Config
}

// chargeIdle charges idle energy from the accounting cursor up to t.
func (m *machine) chargeIdle(t simtime.Time) {
	if t.After(m.accounted) {
		m.res.IdleEnergyMJ += m.platform.IdleEnergy(t.Sub(m.accounted))
		m.accounted = t
	}
}

// chargeBusy charges active energy for an execution slice on cfg ending at
// end, and tracks the busy-time breakdown. It returns the energy charged.
func (m *machine) chargeBusy(cfg acmp.Config, start, end simtime.Time) float64 {
	if !end.After(start) {
		return 0
	}
	m.chargeIdle(start)
	d := end.Sub(start)
	e := acmp.EnergyMJ(m.platform.Power(cfg), d)
	m.res.BusyEnergyMJ += e
	m.res.TotalBusy += d
	if cfg.Core == acmp.BigCore {
		m.res.BigBusy += d
	}
	if cfg == m.platform.MaxPerformance() {
		m.res.MaxPerfBusy += d
	}
	if end.After(m.accounted) {
		m.accounted = end
	}
	return e
}

// switchTo charges the configuration-switch overhead (if any) starting at t
// and returns the instant execution can begin plus the energy charged.
func (m *machine) switchTo(cfg acmp.Config, t simtime.Time) (simtime.Time, float64) {
	ov := m.platform.SwitchOverhead(m.lastCfg, cfg)
	var e float64
	if ov > 0 {
		e = m.chargeBusy(cfg, t, t.Add(ov))
		t = t.Add(ov)
	}
	m.lastCfg = cfg
	return t, e
}

// RunReactive replays the events under a reactive policy.
func RunReactive(p *acmp.Platform, app string, events []*webevent.Event, policy sched.ReactivePolicy) *Result {
	res := &Result{Scheduler: policy.Name(), App: app}
	m := &machine{platform: p, res: res}
	var cpuFree simtime.Time

	for _, e := range events {
		start := simtime.Max(e.Trigger, cpuFree)
		if start.After(cpuFree) {
			policy.NoteIdle(cpuFree, start)
		}
		m.chargeIdle(start)

		cfg := policy.ConfigAtStart(e, start)
		now, energy := m.switchTo(cfg, start)

		// Execute, re-consulting the governor every sampling quantum.
		remaining := 1.0
		for remaining > 1e-12 {
			fullLat := p.Latency(e.Work, cfg)
			if fullLat <= 0 {
				remaining = 0
				break
			}
			remTime := simtime.Duration(float64(fullLat) * remaining)
			if remTime <= 0 {
				remaining = 0
				break
			}
			q := policy.Quantum()
			if q > 0 && remTime > q {
				energy += m.chargeBusy(cfg, now, now.Add(q))
				now = now.Add(q)
				remaining -= float64(q) / float64(fullLat)
				if next := policy.Requantum(e, cfg, now.Sub(start)); next != cfg {
					var se float64
					now, se = m.switchTo(next, now)
					energy += se
					cfg = next
				}
			} else {
				energy += m.chargeBusy(cfg, now, now.Add(remTime))
				now = now.Add(remTime)
				remaining = 0
			}
		}
		finish := now
		lat := render.DisplayLatency(e.Trigger, finish)
		policy.Observe(e, cfg, start, finish.Sub(start))
		res.Outcomes = append(res.Outcomes, Outcome{
			Event:    e,
			Start:    start,
			Finish:   finish,
			Latency:  lat,
			Violated: lat > e.QoSTarget(),
			Config:   cfg,
			EnergyMJ: energy,
		})
		cpuFree = finish
	}
	res.finalize()
	return res
}
