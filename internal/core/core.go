// Package core implements PES itself — the paper's contribution: a
// proactive event scheduler that combines the event predictor (statistical
// sequence learner + DOM analysis), the energy/QoS optimizer (ILP over
// outstanding and predicted events), and the control unit's fallback policy
// (disable speculation after consecutive mis-predictions, behave like the
// reactive EBS scheduler meanwhile).
package core

import (
	"repro/internal/acmp"
	"repro/internal/control"
	"repro/internal/optimizer"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/webapp"
	"repro/internal/webevent"
)

// PES is the proactive event scheduler. One instance schedules one
// interaction session of one application (mirroring the per-renderer PES
// layer in the browser); the predictor's logistic model is shared across
// applications and trained offline.
type PES struct {
	platform *acmp.Platform
	spec     *webapp.Spec
	pred     *predictor.Predictor
	opt      *optimizer.Optimizer
	fallback *control.Fallback

	lastTrigger simtime.Time
	haveEvent   bool

	// Reusable planning buffers: the optimizer tasks (values plus the
	// pointer list Schedule takes) and the returned speculative schedule.
	// Plan's result is consumed synchronously by the engine adapter, so the
	// buffers are recycled on the next planning round.
	taskBuf  []optimizer.Task
	taskPtrs []*optimizer.Task
	outBuf   []sched.SpecTask
}

// Option customizes a PES instance.
type Option func(*PES)

// WithFallback overrides the mis-prediction fallback controller (used by
// tests and sensitivity studies).
func WithFallback(f *control.Fallback) Option {
	return func(p *PES) { p.fallback = f }
}

// NewPES builds a PES scheduler for one session of the given application.
//
// learner is the offline-trained event sequence learner; domSeed must match
// the trace being replayed so that the predictor's DOM replica sees the same
// pages the user saw; predCfg carries the confidence threshold and the DOM
// analysis toggle (Sec. 6.5 sensitivity studies).
func NewPES(platform *acmp.Platform, learner *predictor.SequenceLearner, spec *webapp.Spec,
	domSeed int64, predCfg predictor.Config, opts ...Option) *PES {
	cost := optimizer.NewCostModel(platform)
	p := &PES{
		platform: platform,
		spec:     spec,
		pred:     predictor.New(learner, spec, domSeed, predCfg),
		opt:      optimizer.New(platform, cost),
		fallback: control.NewFallback(),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements sched.ProactivePolicy.
func (p *PES) Name() string { return "PES" }

// Predictor exposes the underlying predictor (for overhead reporting).
func (p *PES) Predictor() *predictor.Predictor { return p.pred }

// Optimizer exposes the underlying optimizer (for overhead reporting).
func (p *PES) Optimizer() *optimizer.Optimizer { return p.opt }

// Observe implements sched.ProactivePolicy: every actual event updates the
// predictor's feature window and DOM replica.
func (p *PES) Observe(e *webevent.Event) {
	p.pred.Observe(e)
	p.lastTrigger = e.Trigger
	p.haveEvent = true
}

// Plan implements sched.ProactivePolicy: it predicts the upcoming event
// sequence and solves the constrained optimization problem over the
// outstanding events plus the predicted events, producing the speculative
// schedule. The returned slice is a reusable buffer owned by the scheduler;
// it is valid until the next Plan call (the engine consumes it immediately).
func (p *PES) Plan(start simtime.Time, outstanding []*webevent.Event) []sched.SpecTask {
	if !p.fallback.Enabled() {
		return nil
	}
	preds := p.pred.PredictSequence()
	if len(preds) == 0 && len(outstanding) == 0 {
		return nil
	}

	p.taskBuf = p.taskBuf[:0]
	for _, e := range outstanding {
		p.taskBuf = append(p.taskBuf, optimizer.Task{
			Event:           e,
			Type:            e.Type,
			Signature:       e.Signature(),
			ExpectedTrigger: e.Trigger,
			Deadline:        e.Deadline(),
		})
	}
	// Predicted events: their deadlines are anchored at the expected trigger
	// times accumulated from the last observed event. A predicted page load
	// whose content depends on suppressed network requests (Sec. 5.3) cannot
	// be usefully pre-rendered, so the speculative sequence stops at a deep
	// predicted load: the DOM state beyond it is too uncertain — committing
	// the load starts a fresh prediction round instead.
	expected := p.lastTrigger
	if len(outstanding) > 0 {
		expected = outstanding[len(outstanding)-1].Trigger
	}
	for i, pr := range preds {
		if pr.Type == webevent.Load && i > 0 {
			break
		}
		expected = expected.Add(pr.ExpectedGap)
		p.taskBuf = append(p.taskBuf, optimizer.Task{
			Type:            pr.Type,
			Signature:       webevent.Signature{App: p.spec.Name, Type: pr.Type, TargetKind: webevent.NodeKind(pr.TargetKind)},
			ExpectedTrigger: expected,
			Deadline:        expected.Add(pr.Type.QoSTarget()),
			Predicted:       true,
		})
	}
	p.taskPtrs = p.taskPtrs[:0]
	for i := range p.taskBuf {
		p.taskPtrs = append(p.taskPtrs, &p.taskBuf[i])
	}
	p.opt.Schedule(start, p.taskPtrs)

	p.outBuf = p.outBuf[:0]
	for i := range p.taskBuf {
		t := &p.taskBuf[i]
		p.outBuf = append(p.outBuf, sched.SpecTask{
			Event:            t.Event,
			Type:             t.Type,
			Signature:        t.Signature,
			Config:           t.Config,
			EstimatedLatency: t.EstimatedLatency,
			ExpectedTrigger:  t.ExpectedTrigger,
		})
	}
	return p.outBuf
}

// ReactiveConfig implements sched.ProactivePolicy: when speculation is not
// usable PES behaves exactly like EBS — the minimum-energy configuration
// that meets the single event's deadline.
func (p *PES) ReactiveConfig(e *webevent.Event, start simtime.Time) acmp.Config {
	return p.opt.Cost().PickMinEnergyConfig(e.Signature(), start, e.Deadline())
}

// ObserveExecution implements sched.ProactivePolicy.
func (p *PES) ObserveExecution(sig webevent.Signature, cfg acmp.Config, execLatency simtime.Duration) {
	p.opt.Cost().Observe(sig, cfg, execLatency)
}

// OnCorrectPrediction implements sched.ProactivePolicy.
func (p *PES) OnCorrectPrediction() { p.fallback.OnCorrectPrediction() }

// OnMisprediction implements sched.ProactivePolicy.
func (p *PES) OnMisprediction() { p.fallback.OnMisprediction() }

// OnReactiveEvent implements sched.ProactivePolicy.
func (p *PES) OnReactiveEvent() { p.fallback.OnReactiveEvent() }

// SpeculationEnabled implements sched.ProactivePolicy.
func (p *PES) SpeculationEnabled() bool { return p.fallback.Enabled() }

// SolverStats implements sched.SolverStatsProvider: the optimizer's
// accumulated solve/node/plan-cache counters and solver wall time.
func (p *PES) SolverStats() optimizer.SolverStats { return p.opt.Stats() }

var (
	_ sched.ProactivePolicy     = (*PES)(nil)
	_ sched.SolverStatsProvider = (*PES)(nil)
)
