package core

import (
	"testing"

	"repro/internal/acmp"
	"repro/internal/control"
	"repro/internal/predictor"
	"repro/internal/simtime"
	"repro/internal/webapp"
	"repro/internal/webevent"
)

func newTestPES(t *testing.T) (*PES, *webapp.Spec) {
	t.Helper()
	learner, _, err := predictor.TrainOnSeenApps(2, 7000)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := webapp.ByName("cnn")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPES(acmp.Exynos5410(), learner, spec, 3, predictor.DefaultConfig())
	return p, spec
}

func TestPESPlanProducesCoordinatedSchedule(t *testing.T) {
	p, _ := newTestPES(t)
	if p.Name() != "PES" || !p.SpeculationEnabled() {
		t.Fatal("metadata wrong")
	}
	load := &webevent.Event{Seq: 0, App: "cnn", Type: webevent.Load, Trigger: 0,
		Work: acmp.Workload{Tmem: 200 * simtime.Millisecond, Cycles: 2000e6}}
	p.Observe(load)
	tasks := p.Plan(load.Trigger, []*webevent.Event{load})
	if len(tasks) == 0 {
		t.Fatal("plan should not be empty")
	}
	if tasks[0].Event != load {
		t.Error("the outstanding event must head the plan")
	}
	for i, task := range tasks {
		if task.Config.IsZero() {
			t.Fatalf("task %d has no config", i)
		}
		if task.EstimatedLatency <= 0 {
			t.Fatalf("task %d has no latency estimate", i)
		}
		if i > 0 && task.Event != nil {
			t.Fatalf("only the first task should be an outstanding event")
		}
	}
	// Predicted tasks have increasing expected triggers.
	for i := 2; i < len(tasks); i++ {
		if tasks[i].ExpectedTrigger.Before(tasks[i-1].ExpectedTrigger) {
			t.Error("expected triggers must not decrease")
		}
	}
	if p.Predictor() == nil || p.Optimizer() == nil {
		t.Error("accessors should expose components")
	}
}

func TestPESReactiveConfigMatchesEBSBehaviour(t *testing.T) {
	p, _ := newTestPES(t)
	ev := &webevent.Event{App: "cnn", Type: webevent.Click, Trigger: simtime.Time(simtime.Second),
		Work: acmp.Workload{Tmem: 10 * simtime.Millisecond, Cycles: 200e6}}
	cfg := p.ReactiveConfig(ev, ev.Trigger)
	if cfg.IsZero() {
		t.Fatal("no reactive config")
	}
	// With no budget the fallback escalates to max performance.
	if p.ReactiveConfig(ev, ev.Deadline()) != acmp.Exynos5410().MaxPerformance() {
		t.Error("no-budget fallback should be max performance")
	}
	p.ObserveExecution(ev.Signature(), cfg, 100*simtime.Millisecond)
}

func TestPESFallbackDisablesSpeculation(t *testing.T) {
	p, _ := newTestPES(t)
	for i := 0; i < 4; i++ {
		p.OnMisprediction()
	}
	if p.SpeculationEnabled() {
		t.Fatal("speculation should be disabled after 4 consecutive mispredictions")
	}
	if got := p.Plan(0, nil); got != nil {
		t.Error("a disabled PES must not plan speculation")
	}
	// Reactive events eventually re-arm speculation.
	for i := 0; i < 10; i++ {
		p.OnReactiveEvent()
	}
	if !p.SpeculationEnabled() {
		t.Error("speculation should re-arm after reactive events")
	}
	p.OnCorrectPrediction() // must not panic
}

func TestPESCustomFallbackOption(t *testing.T) {
	learner, _, err := predictor.TrainOnSeenApps(2, 7100)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := webapp.ByName("bbc")
	fb := &control.Fallback{Threshold: 0, RearmAfter: 1}
	p := NewPES(acmp.Exynos5410(), learner, spec, 1, predictor.DefaultConfig(), WithFallback(fb))
	p.OnMisprediction()
	if p.SpeculationEnabled() {
		t.Error("custom fallback with threshold 0 should disable on the first mis-prediction")
	}
}

func TestPESDeepPredictedLoadsAreNotSpeculated(t *testing.T) {
	p, spec := newTestPES(t)
	// Observe a load and a couple of scrolls so that the predictor has
	// context, then plan without outstanding events: any predicted load
	// beyond the first position must terminate the speculative sequence.
	now := simtime.Time(0)
	p.Observe(&webevent.Event{App: "cnn", Type: webevent.Load, Trigger: now})
	for i := 1; i <= 2; i++ {
		now = now.Add(700 * simtime.Millisecond)
		p.Observe(&webevent.Event{App: "cnn", Type: spec.Behavior.MoveManifestation, Trigger: now, Seq: i})
	}
	tasks := p.Plan(now, nil)
	for i, task := range tasks {
		if i > 0 && task.Type == webevent.Load {
			t.Errorf("task %d is a deep predicted load; the plan should have stopped before it", i)
		}
	}
}
