// Package experiments regenerates every table and figure of the paper's
// evaluation section on top of the simulated substrate: one function per
// figure, each returning a printable Table whose rows mirror the series the
// paper plots.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Row is one line of a result table: a label (usually an application name)
// and one value per column.
type Row struct {
	Label  string
	Values []float64
}

// Table is a printable experiment result.
type Table struct {
	// ID identifies the experiment (e.g. "fig11").
	ID string
	// Title describes the experiment.
	Title string
	// Columns names the value columns.
	Columns []string
	// Rows holds the data.
	Rows []Row
	// Notes carries free-form remarks (e.g. paper reference values).
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Column returns the values of the named column in row order.
func (t *Table) Column(name string) []float64 {
	idx := -1
	for i, c := range t.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]float64, 0, len(t.Rows))
	for _, r := range t.Rows {
		if idx < len(r.Values) {
			out = append(out, r.Values[idx])
		}
	}
	return out
}

// Row returns the row with the given label, if present.
func (t *Table) Row(label string) (Row, bool) {
	for _, r := range t.Rows {
		if r.Label == label {
			return r, true
		}
	}
	return Row{}, false
}

// Render writes the table in an aligned plain-text format.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	labelWidth := 14
	for _, r := range t.Rows {
		if len(r.Label) > labelWidth {
			labelWidth = len(r.Label)
		}
	}
	header := fmt.Sprintf("%-*s", labelWidth, "")
	for _, c := range t.Columns {
		header += fmt.Sprintf("  %14s", c)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, r := range t.Rows {
		line := fmt.Sprintf("%-*s", labelWidth, r.Label)
		for _, v := range r.Values {
			line += fmt.Sprintf("  %14.3f", v)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// mean returns the arithmetic mean of xs (0 for empty input).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
