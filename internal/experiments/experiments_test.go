package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// The setup is expensive (training + corpus generation + simulations), so
// tests share one small instance.
var (
	setupOnce sync.Once
	shared    *Setup
	setupErr  error
)

func testSetup(t *testing.T) *Setup {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment harness tests are slow")
	}
	setupOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.TrainTracesPerApp = 3
		cfg.EvalTracesPerApp = 1
		shared, setupErr = NewSetup(cfg)
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return shared
}

func TestTableRenderAndAccessors(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("row1", 1, 2)
	tab.AddRow("row2", 3, 4)
	tab.Notes = append(tab.Notes, "a note")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "row1", "row2", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
	if got := tab.Column("b"); len(got) != 2 || got[1] != 4 {
		t.Errorf("Column = %v", got)
	}
	if got := tab.Column("missing"); got != nil {
		t.Error("missing column should be nil")
	}
	if _, ok := tab.Row("row2"); !ok {
		t.Error("Row lookup failed")
	}
	if _, ok := tab.Row("nope"); ok {
		t.Error("Row lookup should fail")
	}
	if mean([]float64{2, 4}) != 3 || mean(nil) != 0 {
		t.Error("mean helper wrong")
	}
}

func TestFig2Shape(t *testing.T) {
	s := testSetup(t)
	tab, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Fig2 has %d rows, want 3 schemes", len(tab.Rows))
	}
	inter, _ := tab.Row(SchedInteractive)
	oracle, _ := tab.Row(SchedOracle)
	// The oracle must not violate more deadlines nor use more energy than
	// the OS governor on the representative sequence.
	if oracle.Values[4] > inter.Values[4] {
		t.Errorf("oracle violations %v exceed Interactive %v", oracle.Values[4], inter.Values[4])
	}
	if oracle.Values[5] >= inter.Values[5] {
		t.Errorf("oracle energy %v should be below Interactive %v", oracle.Values[5], inter.Values[5])
	}
}

func TestFig3Fractions(t *testing.T) {
	s := testSetup(t)
	tab, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		sum := 0.0
		for _, v := range row.Values {
			if v < 0 || v > 1 {
				t.Fatalf("%s: fraction %v out of range", row.Label, v)
			}
			sum += v
		}
		if sum < 0.98 || sum > 1.02 {
			t.Errorf("%s: fractions sum to %v", row.Label, sum)
		}
	}
}

func TestFig8AccuracyInPlausibleRange(t *testing.T) {
	s := testSetup(t)
	tab, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	row, ok := tab.Row("avg. seen apps")
	if !ok {
		t.Fatal("missing seen average")
	}
	if row.Values[0] < 0.75 || row.Values[0] > 1 {
		t.Errorf("seen accuracy %v implausible", row.Values[0])
	}
}

func TestFig11And12Shape(t *testing.T) {
	s := testSetup(t)
	e, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	eRow, _ := e.Row("avg. seen apps")
	vRow, _ := v.Row("avg. seen apps")
	// Column order: Interactive, EBS, PES, Oracle.
	if eRow.Values[0] != 100 {
		t.Errorf("Interactive energy should be the 100%% baseline, got %v", eRow.Values[0])
	}
	if !(eRow.Values[3] < eRow.Values[2] && eRow.Values[2] < eRow.Values[0]) {
		t.Errorf("energy ordering should be Oracle < PES < Interactive, got %v", eRow.Values)
	}
	if eRow.Values[2] >= eRow.Values[1]+2 {
		t.Errorf("PES energy %v should not exceed EBS energy %v", eRow.Values[2], eRow.Values[1])
	}
	if !(vRow.Values[3] <= vRow.Values[2] && vRow.Values[2] <= vRow.Values[1]+2) {
		t.Errorf("violation ordering should be Oracle ≤ PES ≤ EBS, got %v", vRow.Values)
	}
}

func TestFig13ParetoIncludesAllSchemes(t *testing.T) {
	s := testSetup(t)
	tab, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("Pareto table has %d rows, want 5", len(tab.Rows))
	}
}

func TestOverheadTable(t *testing.T) {
	s := testSetup(t)
	tab, err := s.OverheadTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("overhead table has %d rows", len(tab.Rows))
	}
	// DVFS and migration overheads are platform constants.
	if r, _ := tab.Row("DVFS transition (µs)"); r.Values[0] != 100 {
		t.Errorf("DVFS overhead %v", r.Values[0])
	}
	if r, _ := tab.Row("core migration (µs)"); r.Values[0] != 20 {
		t.Errorf("migration overhead %v", r.Values[0])
	}
	// The predictor evaluation must be microseconds-scale, not milliseconds.
	if r, _ := tab.Row("predictor evaluation (µs)"); r.Values[0] <= 0 || r.Values[0] > 1000 {
		t.Errorf("predictor evaluation cost %v µs implausible", r.Values[0])
	}
}

func TestUnknownSchedulerRejected(t *testing.T) {
	s := testSetup(t)
	if _, err := s.runScheduler("bogus"); err == nil {
		t.Error("expected error for unknown scheduler")
	}
}

// TestRunnerMemoizesAcrossFigures checks the batch layer underneath the
// harness: figures drawing on the same sessions (Fig. 11, 12, 13 all sweep
// every scheduler) must not re-simulate them.
func TestRunnerMemoizesAcrossFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness tests are slow")
	}
	cfg := DefaultConfig()
	cfg.TrainTracesPerApp = 2
	cfg.EvalTracesPerApp = 1
	s, err := NewSetup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fig11(); err != nil {
		t.Fatal(err)
	}
	after11 := s.Runner.Stats().UniqueRuns
	if after11 == 0 {
		t.Fatal("Fig11 simulated nothing")
	}
	if _, err := s.Fig12(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fig13(); err != nil {
		t.Fatal(err)
	}
	st := s.Runner.Stats()
	// Fig12 adds no schedulers beyond Fig11's four; Fig13 adds only Ondemand.
	extra := st.UniqueRuns - after11
	if want := int64(len(s.Eval)); extra != want {
		t.Errorf("Fig12+Fig13 simulated %d new sessions, want %d (Ondemand only)", extra, want)
	}
	if st.CacheHits == 0 {
		t.Error("expected cache hits across figures")
	}
}

// TestParallelHarnessMatchesSerial runs a small campaign twice — serial and
// on a 4-worker pool — and requires identical figure values: concurrency
// must not change the science.
func TestParallelHarnessMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness tests are slow")
	}
	newSetup := func(workers int) *Setup {
		// Each setup gets its own Config (and so its own fresh Platform):
		// sharing one platform would let the serial run pre-warm lazy state
		// and hide shared-state races from the parallel run.
		cfg := DefaultConfig()
		cfg.TrainTracesPerApp = 2
		cfg.EvalTracesPerApp = 1
		cfg.Parallel = workers
		s, err := NewSetup(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	parallel := newSetup(4)
	serial := newSetup(1)
	for name, gen := range map[string]func(*Setup) (*Table, error){
		"fig11": (*Setup).Fig11,
		"fig12": (*Setup).Fig12,
	} {
		// Parallel first, so its workers hit any lazily-initialized shared
		// state cold.
		pt, err := gen(parallel)
		if err != nil {
			t.Fatal(err)
		}
		st, err := gen(serial)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Rows) != len(pt.Rows) {
			t.Fatalf("%s: row count differs", name)
		}
		for i, sr := range st.Rows {
			pr := pt.Rows[i]
			if sr.Label != pr.Label {
				t.Fatalf("%s: row %d label %q vs %q", name, i, sr.Label, pr.Label)
			}
			for j, sv := range sr.Values {
				if sv != pr.Values[j] {
					t.Errorf("%s: %s[%d] = %v serial vs %v parallel", name, sr.Label, j, sv, pr.Values[j])
				}
			}
		}
	}
}
