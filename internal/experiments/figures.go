package experiments

import (
	"time"

	"repro/internal/acmp"
	"repro/internal/engine"
	"repro/internal/eventclass"
	"repro/internal/mlr"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/webapp"
	"repro/internal/webevent"
)

// trainConfig returns the deterministic logistic-regression training
// configuration used throughout the harness.
func trainConfig(seed int64) mlr.TrainConfig { return mlr.TrainConfig{Seed: seed} }

// Fig2 reproduces the representative cnn.com interaction sequence of Fig. 2:
// four events (a load, a heavy tap, a tap, a move) scheduled by the
// QoS-agnostic OS governor, the reactive EBS scheduler, and the Oracle. The
// columns report per-event latency in milliseconds; the final two columns
// report the number of QoS violations and the total energy.
func (s *Setup) Fig2() (*Table, error) {
	p := s.Config.Platform
	// A hand-built sequence shaped like the paper's example: E2's workload
	// exceeds what even the fastest configuration can deliver within its
	// target, and E3/E4 follow closely enough to suffer interference.
	events := []*webevent.Event{
		{Seq: 0, App: "cnn", Type: webevent.Load, Trigger: 0,
			Work: acmp.Workload{Tmem: 250 * simtime.Millisecond, Cycles: 2300e6}},
		{Seq: 1, App: "cnn", Type: webevent.Click, Trigger: simtime.Time(4 * simtime.Second),
			Work: acmp.Workload{Tmem: 30 * simtime.Millisecond, Cycles: 700e6}},
		{Seq: 2, App: "cnn", Type: webevent.Click, Trigger: simtime.Time(4*simtime.Second + 400*simtime.Millisecond),
			Work: acmp.Workload{Tmem: 15 * simtime.Millisecond, Cycles: 280e6}},
		{Seq: 3, App: "cnn", Type: webevent.Scroll, Trigger: simtime.Time(4*simtime.Second + 800*simtime.Millisecond),
			Work: acmp.Workload{Tmem: 2 * simtime.Millisecond, Cycles: 12e6}},
	}
	t := &Table{
		ID:      "fig2",
		Title:   "Representative 4-event sequence (per-event latency ms, violations, energy mJ)",
		Columns: []string{"E1 ms", "E2 ms", "E3 ms", "E4 ms", "violations", "energy mJ"},
		Notes: []string{
			"paper: OS and EBS violate deadlines on E2/E3 (and E4 for OS); the oracle meets all four and cuts energy by ~1/4 vs EBS",
		},
	}
	addRun := func(name string, r *engine.Result) {
		vals := make([]float64, 0, 6)
		viol := 0.0
		for _, o := range r.Outcomes {
			vals = append(vals, o.Latency.Millis())
			if o.Violated {
				viol++
			}
		}
		vals = append(vals, viol, r.TotalEnergyMJ)
		t.AddRow(name, vals...)
	}
	addRun(SchedInteractive, engine.RunReactive(p, "cnn", events, sched.NewInteractive(p)))
	addRun(SchedEBS, engine.RunReactive(p, "cnn", events, sched.NewEBS(p)))
	addRun(SchedOracle, engine.RunProactive(p, "cnn", events,
		sched.NewOracleWithVersion(p, events, s.Config.OracleVersion)))
	return t, nil
}

// Fig3 reproduces the Type I–IV event distribution under EBS across the 12
// seen applications (fractions of events per category).
func (s *Setup) Fig3() (*Table, error) {
	rs, err := s.runScheduler(SchedEBS)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3",
		Title:   "Event type distribution under EBS (fraction of events)",
		Columns: []string{"Type I", "Type II", "Type III", "Type IV"},
		Notes: []string{
			"paper: on average ~21% of events miss QoS (Type I+II) and ~14% waste energy (Type III)",
		},
	}
	sums := make(map[string][eventclass.NumClasses]float64)
	counts := make(map[string]float64)
	for i, r := range rs {
		app := s.Eval[i].App
		spec, _ := webapp.ByName(app)
		if spec == nil || !spec.Seen {
			continue
		}
		d := eventclass.Distribution(s.Config.Platform, r)
		acc := sums[app]
		for c := 0; c < eventclass.NumClasses; c++ {
			acc[c] += d[c]
		}
		sums[app] = acc
		counts[app]++
	}
	var avg [eventclass.NumClasses]float64
	apps := 0.0
	for _, spec := range webapp.SeenApps() {
		acc := sums[spec.Name]
		n := counts[spec.Name]
		if n == 0 {
			continue
		}
		row := make([]float64, eventclass.NumClasses)
		for c := 0; c < eventclass.NumClasses; c++ {
			row[c] = acc[c] / n
			avg[c] += row[c]
		}
		apps++
		t.AddRow(spec.Name, row...)
	}
	if apps > 0 {
		row := make([]float64, eventclass.NumClasses)
		for c := 0; c < eventclass.NumClasses; c++ {
			row[c] = avg[c] / apps
		}
		t.AddRow("average", row...)
	}
	return t, nil
}

// Table1 reports the predictor's feature vector on a sample of evaluation
// states: one row per feature with its observed mean value, documenting the
// feature definitions of Table 1.
func (s *Setup) Table1() (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Model features (observed mean value over the evaluation corpus)",
		Columns: []string{"mean value"},
	}
	sums := make([]float64, predictor.NumFeatures)
	n := 0.0
	for _, tr := range s.Eval {
		evs, err := tr.Runtime()
		if err != nil {
			return nil, err
		}
		sess, err := tr.Session()
		if err != nil {
			return nil, err
		}
		var win predictor.Window
		for _, e := range evs {
			f := predictor.Features(sess.Tree(), &win)
			for i, v := range f {
				sums[i] += v
			}
			n++
			win.Observe(e.Type, sess.Tree().ViewportCenterY(), e.Trigger)
			sess.ApplyEvent(e)
		}
	}
	for i, name := range predictor.FeatureNames {
		t.AddRow(name, sums[i]/n)
	}
	return t, nil
}

// Fig8 reproduces the per-application prediction accuracy (seen and unseen
// applications).
func (s *Setup) Fig8() (*Table, error) {
	return s.accuracyTable("fig8", true)
}

// AblationNoDOM reproduces the Sec. 6.5 predictor ablation: accuracy without
// the DOM analysis.
func (s *Setup) AblationNoDOM() (*Table, error) {
	withDOM, err := predictor.EvaluateAccuracy(s.Learner, s.Eval, true)
	if err != nil {
		return nil, err
	}
	without, err := predictor.EvaluateAccuracy(s.Learner, s.Eval, false)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-nodom",
		Title:   "Predictor ablation: accuracy with and without DOM analysis",
		Columns: []string{"with DOM", "without DOM", "drop"},
		Notes:   []string{"paper: removing the DOM analysis drops accuracy by about 5%"},
	}
	var withSum, withoutSum float64
	for i := range withDOM {
		withSum += withDOM[i].Accuracy
		withoutSum += without[i].Accuracy
		t.AddRow(withDOM[i].App, withDOM[i].Accuracy, without[i].Accuracy, withDOM[i].Accuracy-without[i].Accuracy)
	}
	n := float64(len(withDOM))
	if n > 0 {
		t.AddRow("average", withSum/n, withoutSum/n, (withSum-withoutSum)/n)
	}
	return t, nil
}

func (s *Setup) accuracyTable(id string, useDOM bool) (*Table, error) {
	results, err := predictor.EvaluateAccuracy(s.Learner, s.Eval, useDOM)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   "Event predictor accuracy (fraction of correctly predicted events)",
		Columns: []string{"accuracy", "events"},
		Notes: []string{
			"paper: 91.3% average over seen applications, 89.2% over unseen applications",
		},
	}
	byApp := make(map[string]predictor.AccuracyResult, len(results))
	for _, r := range results {
		byApp[r.App] = r
	}
	var seenSum, seenN, unseenSum, unseenN float64
	for _, app := range appOrder() {
		r, ok := byApp[app]
		if !ok {
			continue
		}
		t.AddRow(app, r.Accuracy, float64(r.Events))
		if r.Seen {
			seenSum += r.Accuracy
			seenN++
		} else {
			unseenSum += r.Accuracy
			unseenN++
		}
	}
	if seenN > 0 {
		t.AddRow("avg. seen apps", seenSum/seenN, 0)
	}
	if unseenN > 0 {
		t.AddRow("avg. unseen apps", unseenSum/unseenN, 0)
	}
	return t, nil
}

// Fig9 reproduces the Pending Frame Buffer dynamics for one ebay evaluation
// trace under PES: one row per event with the PFB occupancy when the event
// occurs.
func (s *Setup) Fig9() (*Table, error) {
	rs, err := s.runScheduler(SchedPES)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9",
		Title:   "PFB occupancy over one ebay event sequence under PES",
		Columns: []string{"pfb size"},
		Notes:   []string{"paper: the PFB drains by one per matched event, drops to zero on a mis-prediction, and refills on a new prediction round"},
	}
	for i, r := range rs {
		if s.Eval[i].App != "ebay" {
			continue
		}
		for _, sample := range r.PFBSamples {
			t.AddRow(fmtEvent(sample.Seq), float64(sample.Size))
		}
		break
	}
	return t, nil
}

func fmtEvent(seq int) string { return "event " + itoa(seq) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Fig10 reproduces the average mis-prediction waste per application
// (milliseconds of discarded speculative frame production per
// mis-prediction).
func (s *Setup) Fig10() (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "Average mis-prediction waste (ms per mis-prediction)",
		Columns: []string{"waste ms", "mispredictions"},
		Notes:   []string{"paper: ~20 ms average for both seen and unseen applications"},
	}
	waste, err := s.perApp(SchedPES, func(r *engine.Result) float64 { return r.MispredictWaste.Millis() })
	if err != nil {
		return nil, err
	}
	count, err := s.perApp(SchedPES, func(r *engine.Result) float64 { return float64(r.Mispredictions) })
	if err != nil {
		return nil, err
	}
	var sum, n float64
	for _, app := range appOrder() {
		per := 0.0
		if count[app] > 0 {
			per = waste[app] / count[app]
		}
		t.AddRow(app, per, count[app])
		sum += per
		n++
	}
	if n > 0 {
		t.AddRow("average", sum/n, 0)
	}
	return t, nil
}

// Fig11 reproduces the energy comparison: per-application energy of each
// scheme normalized to Interactive (percent, lower is better).
func (s *Setup) Fig11() (*Table, error) {
	t := &Table{
		ID:      "fig11",
		Title:   "Energy normalized to Interactive (%)",
		Columns: []string{SchedInteractive, SchedEBS, SchedPES, SchedOracle},
		Notes: []string{
			"paper: PES saves 27.9%/19.8% vs Interactive/EBS on seen apps, 23.1%/13.9% on unseen apps, and is within 12.9% of Oracle",
		},
	}
	energies := make(map[string]map[string]float64)
	for _, name := range t.Columns {
		e, err := s.perApp(name, func(r *engine.Result) float64 { return r.TotalEnergyMJ })
		if err != nil {
			return nil, err
		}
		energies[name] = e
	}
	var seenRows, unseenRows [][]float64
	for _, app := range appOrder() {
		base := energies[SchedInteractive][app]
		row := make([]float64, 0, len(t.Columns))
		for _, name := range t.Columns {
			row = append(row, 100*energies[name][app]/base)
		}
		t.AddRow(app, row...)
		spec, _ := webapp.ByName(app)
		if spec != nil && spec.Seen {
			seenRows = append(seenRows, row)
		} else {
			unseenRows = append(unseenRows, row)
		}
	}
	t.AddRow("avg. seen apps", avgRows(seenRows)...)
	t.AddRow("avg. unseen apps", avgRows(unseenRows)...)
	return t, nil
}

// Fig12 reproduces the QoS violation comparison (percent of events whose
// latency exceeds the QoS target; lower is better). The Oracle column is
// included for completeness even though the paper omits it (it is ~0).
func (s *Setup) Fig12() (*Table, error) {
	t := &Table{
		ID:      "fig12",
		Title:   "QoS violation (%)",
		Columns: []string{SchedInteractive, SchedEBS, SchedPES, SchedOracle},
		Notes: []string{
			"paper: ~24.8% (Interactive) and ~24.4% (EBS) vs 7.5% (PES) on seen apps; Oracle is 0",
		},
	}
	viols := make(map[string]map[string]float64)
	for _, name := range t.Columns {
		v, err := s.perApp(name, func(r *engine.Result) float64 { return 100 * r.ViolationRate })
		if err != nil {
			return nil, err
		}
		viols[name] = v
	}
	var seenRows, unseenRows [][]float64
	for _, app := range appOrder() {
		row := make([]float64, 0, len(t.Columns))
		for _, name := range t.Columns {
			row = append(row, viols[name][app])
		}
		t.AddRow(app, row...)
		spec, _ := webapp.ByName(app)
		if spec != nil && spec.Seen {
			seenRows = append(seenRows, row)
		} else {
			unseenRows = append(unseenRows, row)
		}
	}
	t.AddRow("avg. seen apps", avgRows(seenRows)...)
	t.AddRow("avg. unseen apps", avgRows(unseenRows)...)
	return t, nil
}

// Fig13 reproduces the Pareto analysis: one row per scheduling scheme with
// its average QoS violation and its average energy normalized to
// Interactive.
func (s *Setup) Fig13() (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Pareto analysis (QoS violation % vs normalized energy %)",
		Columns: []string{"QoS violation %", "norm energy %"},
		Notes:   []string{"paper: PES Pareto-dominates Interactive, Ondemand and EBS"},
	}
	schedulers := []string{SchedInteractive, SchedOndemand, SchedEBS, SchedPES, SchedOracle}
	baseEnergy := 0.0
	for _, name := range schedulers {
		energy, err := s.perApp(name, func(r *engine.Result) float64 { return r.TotalEnergyMJ })
		if err != nil {
			return nil, err
		}
		viol, err := s.perApp(name, func(r *engine.Result) float64 { return 100 * r.ViolationRate })
		if err != nil {
			return nil, err
		}
		var eSum, vSum, n float64
		for _, app := range appOrder() {
			eSum += energy[app]
			vSum += viol[app]
			n++
		}
		if name == SchedInteractive {
			baseEnergy = eSum
		}
		t.AddRow(name, vSum/n, 100*eSum/baseEnergy)
	}
	return t, nil
}

// Fig14 reproduces the confidence-threshold sensitivity study: for each
// threshold, the average PES energy and QoS violation normalized to EBS.
func (s *Setup) Fig14(thresholds []float64) (*Table, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{0.3, 0.5, 0.7, 0.9, 1.0}
	}
	ebsResults, err := s.runScheduler(SchedEBS)
	if err != nil {
		return nil, err
	}
	var ebsEnergy, ebsViol float64
	for _, r := range ebsResults {
		ebsEnergy += r.TotalEnergyMJ
		ebsViol += r.ViolationRate
	}
	t := &Table{
		ID:      "fig14",
		Title:   "Sensitivity to the prediction confidence threshold (relative to EBS)",
		Columns: []string{"norm energy %", "QoS violation reduction %"},
		Notes: []string{
			"paper: benefits saturate below a ~70% threshold and vanish at 100% (prediction effectively disabled)",
		},
	}
	for _, th := range thresholds {
		cfg := s.Config.Predictor
		cfg.ConfidenceThreshold = th
		rs, err := s.runCorpus(s.Config.Platform, SchedPES, cfg)
		if err != nil {
			return nil, err
		}
		var energy, viol float64
		for _, r := range rs {
			energy += r.TotalEnergyMJ
			viol += r.ViolationRate
		}
		reduction := 0.0
		if ebsViol > 0 {
			reduction = 100 * (ebsViol - viol) / ebsViol
		}
		t.AddRow(percentLabel(th), 100*energy/ebsEnergy, reduction)
	}
	return t, nil
}

func percentLabel(th float64) string { return itoa(int(th*100+0.5)) + "%" }

// OverheadTable reports the Sec. 6.3 runtime overheads measured on the
// actual implementation: the per-evaluation predictor cost, the per-solve
// optimizer cost, and the hardware transition overheads of the platform
// model.
func (s *Setup) OverheadTable() (*Table, error) {
	t := &Table{
		ID:      "sec6.3",
		Title:   "Runtime overheads",
		Columns: []string{"value"},
		Notes: []string{
			"paper: ~2 µs per prediction, ~10 ms per optimization, 100 µs DVFS transition, 20 µs core migration",
			"predictor/optimizer rows are measured on this host in microseconds",
		},
	}
	// Measure the predictor evaluation cost.
	spec := webapp.SeenApps()[0]
	pred := predictor.New(s.Learner, spec, 1, s.Config.Predictor)
	pred.Observe(&webevent.Event{App: spec.Name, Type: webevent.Load})
	start := time.Now()
	const predIters = 2000
	for i := 0; i < predIters; i++ {
		pred.PredictNext()
	}
	predCost := time.Since(start).Seconds() * 1e6 / predIters

	// Measure the optimizer solve cost on a typical instance.
	tr := s.Eval[0]
	pes, err := s.NewPES(tr)
	if err != nil {
		return nil, err
	}
	evs, err := tr.Runtime()
	if err != nil {
		return nil, err
	}
	pes.Observe(evs[0])
	start = time.Now()
	const optIters = 200
	for i := 0; i < optIters; i++ {
		// Reset the plan cache each round: the row measures the raw solve
		// path, not the cache-hit fast path (which the solver stats report).
		pes.Optimizer().ResetPlanCache()
		pes.Plan(evs[0].Trigger, nil)
	}
	optCost := time.Since(start).Seconds() * 1e6 / optIters

	t.AddRow("predictor evaluation (µs)", predCost)
	t.AddRow("optimizer solve (µs)", optCost)
	t.AddRow("DVFS transition (µs)", float64(s.Config.Platform.DVFSLatency))
	t.AddRow("core migration (µs)", float64(s.Config.Platform.MigrationLatency))
	return t, nil
}

// OtherDeviceTX2 reproduces the Sec. 6.5 "other devices" study: PES energy
// saving versus Interactive on the NVIDIA TX2 Parker platform model.
func (s *Setup) OtherDeviceTX2() (*Table, error) {
	tx2 := acmp.TX2Parker()
	t := &Table{
		ID:      "sec6.5-tx2",
		Title:   "PES on the TX2 Parker platform (energy saving vs Interactive, %)",
		Columns: []string{"saving %"},
		Notes:   []string{"paper: ~24.6% energy saving vs Interactive on the TX2"},
	}
	interRs, err := s.runCorpus(tx2, SchedInteractive, s.Config.Predictor)
	if err != nil {
		return nil, err
	}
	pesRs, err := s.runCorpus(tx2, SchedPES, s.Config.Predictor)
	if err != nil {
		return nil, err
	}
	var interactive, pesEnergy float64
	for i := range s.Eval {
		interactive += interRs[i].TotalEnergyMJ
		pesEnergy += pesRs[i].TotalEnergyMJ
	}
	t.AddRow("PES vs Interactive", 100*(interactive-pesEnergy)/interactive)
	return t, nil
}

// avgRows averages a set of equal-length rows element-wise.
func avgRows(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	out := make([]float64, len(rows[0]))
	for _, r := range rows {
		for i, v := range r {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(rows))
	}
	return out
}

// All runs every experiment in paper order.
func (s *Setup) All() ([]*Table, error) {
	type gen func() (*Table, error)
	gens := []gen{
		s.Fig2, s.Fig3, s.Table1, s.Fig8,
		s.Fig9, s.Fig10, s.OverheadTable,
		s.Fig11, s.Fig12, s.Fig13,
		func() (*Table, error) { return s.Fig14(nil) },
		s.AblationNoDOM, s.OtherDeviceTX2,
	}
	var out []*Table
	for _, g := range gens {
		t, err := g()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
