package experiments

import (
	"fmt"

	"repro/internal/acmp"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// Scheduler names used across tables.
const (
	SchedInteractive = "Interactive"
	SchedOndemand    = "Ondemand"
	SchedEBS         = "EBS"
	SchedPES         = "PES"
	SchedOracle      = "Oracle"
)

// Config parameterizes the experiment harness. The defaults reproduce the
// paper's setup at a scale that runs in seconds: three evaluation traces per
// application (as in the paper) and a training corpus of several traces per
// seen application.
type Config struct {
	// Platform is the ACMP hardware model (default Exynos 5410).
	Platform *acmp.Platform
	// TrainTracesPerApp is the number of training traces per seen
	// application (default 8, roughly the paper's ">100 traces" over 12
	// applications).
	TrainTracesPerApp int
	// EvalTracesPerApp is the number of evaluation traces per application
	// (default 3, as in the paper).
	EvalTracesPerApp int
	// Seed controls trace generation and training determinism.
	Seed int64
	// Predictor carries the PES predictor configuration.
	Predictor predictor.Config
}

// DefaultConfig returns the paper-equivalent configuration.
func DefaultConfig() Config {
	return Config{
		Platform:          acmp.Exynos5410(),
		TrainTracesPerApp: 8,
		EvalTracesPerApp:  3,
		Seed:              1,
		Predictor:         predictor.DefaultConfig(),
	}
}

func (c Config) withDefaults() Config {
	if c.Platform == nil {
		c.Platform = acmp.Exynos5410()
	}
	if c.TrainTracesPerApp == 0 {
		c.TrainTracesPerApp = 8
	}
	if c.EvalTracesPerApp == 0 {
		c.EvalTracesPerApp = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Predictor.ConfidenceThreshold == 0 {
		c.Predictor = predictor.DefaultConfig()
	}
	return c
}

// Setup holds the shared state of one experiment campaign: the trained
// predictor, the evaluation corpus, and cached simulation results so that
// figures drawing on the same runs (e.g. Fig. 11, 12 and 13) do not repeat
// them.
type Setup struct {
	Config  Config
	Learner *predictor.SequenceLearner
	Train   trace.Corpus
	Eval    trace.Corpus

	// results caches per-scheduler, per-trace simulation results keyed by
	// scheduler name; the slice is index-aligned with Eval.
	results map[string][]*sim.Result
}

// NewSetup trains the predictor on the seen applications and generates the
// evaluation corpus for all 18 applications. Evaluation traces always use
// seeds disjoint from the training traces (new users, as in the paper).
func NewSetup(cfg Config) (*Setup, error) {
	cfg = cfg.withDefaults()
	train := trace.GenerateCorpus(webapp.SeenApps(), cfg.TrainTracesPerApp, cfg.Seed*1000, trace.PurposeTrain, trace.Options{})
	learner := predictor.NewSequenceLearner()
	if err := learner.Train(train, trainConfig(cfg.Seed)); err != nil {
		return nil, fmt.Errorf("experiments: training: %w", err)
	}
	eval := trace.GenerateCorpus(webapp.Registry(), cfg.EvalTracesPerApp, cfg.Seed*1000+500000, trace.PurposeEval, trace.Options{})
	return &Setup{
		Config:  cfg,
		Learner: learner,
		Train:   train,
		Eval:    eval,
		results: make(map[string][]*sim.Result),
	}, nil
}

// NewPES constructs a PES scheduler instance for one evaluation trace.
func (s *Setup) NewPES(tr *trace.Trace) (*core.PES, error) {
	spec, err := webapp.ByName(tr.App)
	if err != nil {
		return nil, err
	}
	return core.NewPES(s.Config.Platform, s.Learner, spec, tr.DOMSeed, s.Config.Predictor), nil
}

// corePESForThreshold builds a PES instance with an explicit predictor
// configuration (used by the sensitivity and other-device studies).
func corePESForThreshold(s *Setup, spec *webapp.Spec, tr *trace.Trace, predCfg predictor.Config) *core.PES {
	return core.NewPES(s.Config.Platform, s.Learner, spec, tr.DOMSeed, predCfg)
}

// runScheduler simulates every evaluation trace under the named scheduler,
// caching the results.
func (s *Setup) runScheduler(name string) ([]*sim.Result, error) {
	if rs, ok := s.results[name]; ok {
		return rs, nil
	}
	p := s.Config.Platform
	out := make([]*sim.Result, 0, len(s.Eval))
	for _, tr := range s.Eval {
		evs, err := tr.Runtime()
		if err != nil {
			return nil, err
		}
		var r *sim.Result
		switch name {
		case SchedInteractive:
			r = sim.RunReactive(p, tr.App, evs, sched.NewInteractive(p))
		case SchedOndemand:
			r = sim.RunReactive(p, tr.App, evs, sched.NewOndemand(p))
		case SchedEBS:
			r = sim.RunReactive(p, tr.App, evs, sched.NewEBS(p))
		case SchedPES:
			pes, err := s.NewPES(tr)
			if err != nil {
				return nil, err
			}
			r = sim.RunProactive(p, tr.App, evs, pes)
		case SchedOracle:
			r = sim.RunProactive(p, tr.App, evs, sched.NewOracle(p, evs))
		default:
			return nil, fmt.Errorf("experiments: unknown scheduler %q", name)
		}
		out = append(out, r)
	}
	s.results[name] = out
	return out, nil
}

// perApp aggregates a metric of the cached results per application, in
// registry order.
func (s *Setup) perApp(name string, metric func(*sim.Result) float64) (map[string]float64, error) {
	rs, err := s.runScheduler(name)
	if err != nil {
		return nil, err
	}
	sums := make(map[string]float64)
	counts := make(map[string]float64)
	for i, r := range rs {
		app := s.Eval[i].App
		sums[app] += metric(r)
		counts[app]++
	}
	out := make(map[string]float64, len(sums))
	for app, sum := range sums {
		out[app] = sum / counts[app]
	}
	return out, nil
}

// appOrder returns the application names in presentation order: seen
// applications first, then unseen, as in the paper's figures.
func appOrder() []string {
	var names []string
	for _, s := range webapp.SeenApps() {
		names = append(names, s.Name)
	}
	for _, s := range webapp.UnseenApps() {
		names = append(names, s.Name)
	}
	return names
}
