package experiments

import (
	"fmt"

	"repro/internal/acmp"
	"repro/internal/artifacts"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/sessions"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// Scheduler names used across tables.
const (
	SchedInteractive = sessions.Interactive
	SchedOndemand    = sessions.Ondemand
	SchedEBS         = sessions.EBS
	SchedPES         = sessions.PES
	SchedOracle      = sessions.Oracle
)

// Config parameterizes the experiment harness. The defaults reproduce the
// paper's setup at a scale that runs in seconds: three evaluation traces per
// application (as in the paper) and a training corpus of several traces per
// seen application.
type Config struct {
	// Platform is the ACMP hardware model (default Exynos 5410).
	Platform *acmp.Platform
	// TrainTracesPerApp is the number of training traces per seen
	// application (default 8, roughly the paper's ">100 traces" over 12
	// applications).
	TrainTracesPerApp int
	// EvalTracesPerApp is the number of evaluation traces per application
	// (default 3, as in the paper).
	EvalTracesPerApp int
	// Seed controls trace generation and training determinism.
	Seed int64
	// Predictor carries the PES predictor configuration.
	Predictor predictor.Config
	// Parallel is the batch runner's worker-pool size; 0 selects the number
	// of CPUs, 1 forces serial simulation.
	Parallel int
	// CacheMaxEntries bounds the session memo cache (and, with a small
	// multiple, the artifact store's trace cache) to at most this many
	// entries with LRU eviction; 0 keeps both unbounded. Long-lived servers
	// sweeping many seeds set it to cap memory; eviction only ever costs
	// recomputation, never changes a result.
	CacheMaxEntries int
	// Artifacts optionally selects the shared artifact store; nil uses the
	// process-wide artifacts.Default. Tests inject private stores to get
	// isolated counters.
	Artifacts *artifacts.Store
	// Store optionally layers a persistent content-addressed store under
	// both the artifact caches (traces, trained learners) and the session
	// memo cache: a restarted process pointed at the same directory serves
	// repeated campaigns from disk with zero re-simulation and no training.
	// Nil (the default) keeps everything in memory. The caller owns the
	// store's lifecycle (Open/Close).
	Store *store.Store
	// OracleVersion selects the Oracle solver for every Oracle session of
	// the campaign (zero value = sched.DefaultOracleVersion). Paper-exact
	// figures use sched.OracleV1.
	OracleVersion sched.OracleVersion
}

// DefaultConfig returns the paper-equivalent configuration.
func DefaultConfig() Config {
	return Config{
		Platform:          acmp.Exynos5410(),
		TrainTracesPerApp: 8,
		EvalTracesPerApp:  3,
		Seed:              1,
		Predictor:         predictor.DefaultConfig(),
	}
}

func (c Config) withDefaults() Config {
	if c.Platform == nil {
		c.Platform = acmp.Exynos5410()
	}
	if c.TrainTracesPerApp == 0 {
		c.TrainTracesPerApp = 8
	}
	if c.EvalTracesPerApp == 0 {
		c.EvalTracesPerApp = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Predictor.ConfidenceThreshold == 0 {
		c.Predictor = predictor.DefaultConfig()
	}
	c.OracleVersion = c.OracleVersion.OrDefault()
	return c
}

// Setup holds the shared state of one experiment campaign: the trained
// predictor, the evaluation corpus, and the batch-session runner whose
// memoized cache guarantees that figures drawing on the same sessions (e.g.
// Fig. 11, 12 and 13) simulate each one exactly once.
type Setup struct {
	Config  Config
	Learner *predictor.SequenceLearner
	Train   trace.Corpus
	Eval    trace.Corpus

	// Runner executes simulation sessions concurrently and memoizes their
	// results by (platform, app, trace seed, scheduler, predictor config).
	Runner *batch.Runner

	// Artifacts is the shared artifact store the setup's corpora and
	// learner came from and its sessions draw runtime inputs from. Setups
	// with equal (TrainTracesPerApp, Seed) share one trained learner and
	// one trace corpus through it.
	Artifacts *artifacts.Store
}

// NewSetup trains the predictor on the seen applications and generates the
// evaluation corpus for all 18 applications. Evaluation traces always use
// seeds disjoint from the training traces (new users, as in the paper).
// Everything reusable — the training corpus, the trained model, the
// evaluation traces — comes from the process-wide artifact store, so a
// second identically-configured setup (another server, another benchmark
// repetition) performs no training and no trace generation at all.
func NewSetup(cfg Config) (*Setup, error) {
	cfg = cfg.withDefaults()
	store := cfg.Artifacts
	if store == nil {
		store = artifacts.Default
	}
	if cfg.Store != nil {
		// Layer the persistent store under the artifact caches before any
		// artifact is requested, so the learner/corpus builds below already
		// go through it.
		store.WithPersistent(cfg.Store)
	}
	if cfg.CacheMaxEntries > 0 {
		// A memo entry is one (app, seed, scheduler, predictor) tuple; its
		// trace is shared by every scheduler, so the trace cache needs far
		// fewer slots for the same working set.
		store.WithMaxTraces(cfg.CacheMaxEntries)
	}
	learner, train, err := store.Learner(artifacts.LearnerKey{
		TracesPerApp: cfg.TrainTracesPerApp,
		CorpusSeed:   cfg.Seed * 1000,
		TrainSeed:    trainConfig(cfg.Seed).Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: training: %w", err)
	}
	eval := store.Corpus(webapp.Registry(), cfg.EvalTracesPerApp, cfg.Seed*1000+500000, trace.PurposeEval, trace.Options{})
	return &Setup{
		Config:    cfg,
		Learner:   learner,
		Train:     train,
		Eval:      eval,
		Runner:    batch.NewRunner(cfg.Parallel).WithMaxEntries(cfg.CacheMaxEntries).AttachArtifacts(store).WithStore(cfg.Store),
		Artifacts: store,
	}, nil
}

// NewPES constructs a PES scheduler instance for one evaluation trace.
func (s *Setup) NewPES(tr *trace.Trace) (*core.PES, error) {
	spec, err := webapp.ByName(tr.App)
	if err != nil {
		return nil, err
	}
	return core.NewPES(s.Config.Platform, s.Learner, spec, tr.DOMSeed, s.Config.Predictor), nil
}

// runCorpus simulates every trace of the evaluation corpus under the named
// scheduler on the given platform/predictor configuration; results are
// index-aligned with the corpus. PES sessions carry the predictor
// configuration in their memo key, so a sensitivity sweep that revisits the
// default threshold shares the baseline PES runs.
func (s *Setup) runCorpus(p *acmp.Platform, name string, predCfg predictor.Config) ([]*engine.Result, error) {
	specs := make([]batch.Session, 0, len(s.Eval))
	for _, tr := range s.Eval {
		sess, err := sessions.New(sessions.Spec{
			Platform:      p,
			Trace:         tr,
			Scheduler:     name,
			Learner:       s.Learner,
			Predictor:     predCfg,
			Artifacts:     s.Artifacts,
			OracleVersion: s.Config.OracleVersion,
		})
		if err != nil {
			return nil, err
		}
		specs = append(specs, sess)
	}
	return s.Runner.Run(specs)
}

// runScheduler simulates every evaluation trace under the named scheduler on
// the default platform; the batch runner memoizes the results.
func (s *Setup) runScheduler(name string) ([]*engine.Result, error) {
	return s.runCorpus(s.Config.Platform, name, s.Config.Predictor)
}

// perApp aggregates a metric of the scheduler's results per application, in
// registry order.
func (s *Setup) perApp(name string, metric func(*engine.Result) float64) (map[string]float64, error) {
	rs, err := s.runScheduler(name)
	if err != nil {
		return nil, err
	}
	sums := make(map[string]float64)
	counts := make(map[string]float64)
	for i, r := range rs {
		app := s.Eval[i].App
		sums[app] += metric(r)
		counts[app]++
	}
	out := make(map[string]float64, len(sums))
	for app, sum := range sums {
		out[app] = sum / counts[app]
	}
	return out, nil
}

// appOrder returns the application names in presentation order: seen
// applications first, then unseen, as in the paper's figures.
func appOrder() []string {
	var names []string
	for _, s := range webapp.SeenApps() {
		names = append(names, s.Name)
	}
	for _, s := range webapp.UnseenApps() {
		names = append(names, s.Name)
	}
	return names
}
