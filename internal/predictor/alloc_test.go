package predictor

import (
	"testing"

	"repro/internal/webapp"
	"repro/internal/webevent"
)

// TestPredictStepZeroAlloc is the CI allocation gate of the per-event
// prediction fast path: after warm-up, a prediction step must not allocate.
// The paper budgets ~2 µs per evaluation; allocation (and the GC pressure it
// implies across a campaign's millions of events) is what pushed the
// pre-overhaul step past that budget.
func TestPredictStepZeroAlloc(t *testing.T) {
	learner, _, err := TrainOnSeenApps(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, useDOM := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.UseDOMAnalysis = useDOM
		spec := webapp.SeenApps()[0]
		p := New(learner, spec, 1, cfg)
		p.Observe(&webevent.Event{App: spec.Name, Type: webevent.Load})
		p.Observe(&webevent.Event{App: spec.Name, Type: spec.Behavior.MoveManifestation})
		if avg := testing.AllocsPerRun(200, func() {
			if _, ok := p.PredictNext(); !ok {
				t.Fatal("PredictNext failed")
			}
		}); avg != 0 {
			t.Errorf("PredictNext (useDOM=%t) allocates %.1f objects per step, want 0", useDOM, avg)
		}
	}
}

// TestPredictSequenceSteadyStateAlloc pins the whole sequence-prediction
// round: after the first round has sized the predictor's reusable buffers, a
// repeat round over the same state must not allocate either.
func TestPredictSequenceSteadyStateAlloc(t *testing.T) {
	learner, _, err := TrainOnSeenApps(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := webapp.SeenApps()[0]
	p := New(learner, spec, 1, DefaultConfig())
	p.Observe(&webevent.Event{App: spec.Name, Type: webevent.Load})
	p.Observe(&webevent.Event{App: spec.Name, Type: spec.Behavior.MoveManifestation})
	if avg := testing.AllocsPerRun(200, func() {
		p.PredictSequence()
	}); avg != 0 {
		t.Errorf("PredictSequence allocates %.1f objects per round in steady state, want 0", avg)
	}
}
