package predictor

import (
	"repro/internal/dom"
	"repro/internal/webapp"
	"repro/internal/webevent"
)

// Hint is a high-confidence next-event suggestion derived purely from
// program analysis of the application (the Semantic Tree), independent of
// the statistical learner.
type Hint struct {
	Valid      bool
	Type       webevent.Type
	Target     dom.NodeID
	TargetKind dom.Kind
	Confidence float64
}

// Analysis is the result of the DOM analyzer for one prediction step.
type Analysis struct {
	// LNES is the Likely-Next-Event-Set: event types that the visible DOM
	// state permits as the next user-triggered event.
	LNES []webevent.Type
	// Hint is an optional program-analysis prediction that takes precedence
	// over the statistical learner when valid.
	Hint Hint
}

// Analyzer performs the program-analysis half of the predictor. It inspects
// the session's Semantic Tree to narrow the prediction space and to resolve
// the cases where the application logic makes the next event near-certain:
// a tap that navigates is followed by the destination page's load, and an
// expanded menu is almost always followed by a tap on one of its items.
type Analyzer struct {
	sess *webapp.Session
	// lnesBuf is the reusable LNES buffer of the per-event fast path; the
	// Analysis returned by Analyze aliases it and is valid until the next
	// Analyze call (its consumer, the prediction step, uses it immediately).
	lnesBuf []webevent.Type
}

// NewAnalyzer creates an analyzer bound to a DOM session.
func NewAnalyzer(sess *webapp.Session) *Analyzer { return &Analyzer{sess: sess} }

// Analyze computes the LNES and hint for the next event. menuJustOpened is
// the menu node expanded by the most recent event (None when the previous
// event did not expand a menu).
func (a *Analyzer) Analyze(menuJustOpened dom.NodeID) Analysis {
	tree := a.sess.Tree()
	a.lnesBuf = tree.AppendLNES(a.lnesBuf[:0])
	out := Analysis{LNES: a.lnesBuf}

	// A pending navigation means the next event is the destination page's
	// load: the application logic has already committed to it.
	if a.sess.PendingNavigation() != "" {
		out.Hint = Hint{
			Valid:      true,
			Type:       webevent.Load,
			Target:     dom.None,
			TargetKind: dom.Document,
			Confidence: 0.96,
		}
		out.LNES = lnesLoadOnly
		return out
	}

	// A menu the user just expanded strongly suggests a tap on one of its
	// items next (that is why the menu was opened).
	if menuJustOpened != dom.None {
		if item, ok := a.firstVisibleMenuItem(menuJustOpened); ok {
			n := tree.Node(item)
			typ := a.tapManifestation(n)
			out.Hint = Hint{
				Valid:      true,
				Type:       typ,
				Target:     item,
				TargetKind: n.Kind,
				Confidence: 0.88,
			}
			return out
		}
	}
	return out
}

// firstVisibleMenuItem returns a visible tappable child of the menu.
func (a *Analyzer) firstVisibleMenuItem(menu dom.NodeID) (dom.NodeID, bool) {
	found := dom.None
	a.sess.Tree().VisitVisibleTappable(func(n *dom.Node) bool {
		if n.Parent == menu {
			found = n.ID
			return false
		}
		return true
	})
	return found, found != dom.None
}

// tapManifestation returns the tap event type registered on the node,
// falling back to the application's tap manifestation.
func (a *Analyzer) tapManifestation(n *dom.Node) webevent.Type {
	for _, l := range n.Listeners {
		if l.IsTap() {
			return l
		}
	}
	return a.sess.Spec.Behavior.TapManifestation
}

// TypicalTapTarget picks the hypothetical node a predicted tap would land
// on: the visible tappable node with the largest on-screen area (the most
// likely touch target). It returns None when nothing is tappable.
func (a *Analyzer) TypicalTapTarget() (dom.NodeID, dom.Kind) {
	best := dom.None
	bestKind := dom.Document
	bestArea := -1.0
	a.sess.Tree().VisitVisibleTappable(func(n *dom.Node) bool {
		if n.Area > bestArea {
			best, bestKind, bestArea = n.ID, n.Kind, n.Area
		}
		return true
	})
	if best == dom.None {
		return dom.None, dom.Document
	}
	return best, bestKind
}

// NavigatesAfterTap reports whether tapping the given node commits the
// session to a navigation (used when chaining predictions).
func (a *Analyzer) NavigatesAfterTap(target dom.NodeID) bool {
	if target == dom.None {
		return false
	}
	n := a.sess.Tree().Node(target)
	return n.NavigatesTo != "" && n.TogglesMenu == dom.None
}

// OpensMenu returns the menu that tapping the node would expand, or None.
func (a *Analyzer) OpensMenu(target dom.NodeID) dom.NodeID {
	if target == dom.None {
		return dom.None
	}
	n := a.sess.Tree().Node(target)
	if n.TogglesMenu != dom.None && a.sess.Tree().Node(n.TogglesMenu).Hidden {
		return n.TogglesMenu
	}
	return dom.None
}
