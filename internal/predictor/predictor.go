package predictor

import (
	"repro/internal/dom"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/webapp"
	"repro/internal/webevent"
)

// Config controls the behaviour of the predictor.
type Config struct {
	// ConfidenceThreshold terminates sequence prediction once the cumulative
	// confidence of the predicted sequence drops below it (paper default:
	// 70%).
	ConfidenceThreshold float64
	// MaxDegree caps the number of events predicted ahead in one round.
	MaxDegree int
	// UseDOMAnalysis enables the program-analysis half of the predictor
	// (LNES restriction and Semantic-Tree hints). Disabling it reproduces
	// the paper's Sec. 6.5 ablation.
	UseDOMAnalysis bool
}

// DefaultConfig returns the paper's configuration: a 70% confidence
// threshold with DOM analysis enabled.
func DefaultConfig() Config {
	return Config{ConfidenceThreshold: 0.70, MaxDegree: 8, UseDOMAnalysis: true}
}

func (c Config) withDefaults() Config {
	if c.ConfidenceThreshold == 0 {
		c.ConfidenceThreshold = 0.70
	}
	if c.MaxDegree == 0 {
		c.MaxDegree = 8
	}
	return c
}

// Predictor predicts upcoming events for one interaction session. It owns a
// replica of the session's DOM state (fed by Observe) so that its features
// and program analysis always reflect what the user currently sees.
type Predictor struct {
	cfg      Config
	learner  *SequenceLearner
	sess     *webapp.Session
	analyzer *Analyzer

	win         Window
	menuOpened  dom.NodeID
	lastTrigger simtime.Time
	haveLast    bool

	gapStats map[webevent.Interaction]*stats.Running

	// evaluations counts learner evaluations, for the overhead analysis.
	evaluations int

	// Reusable buffers of the per-event prediction fast path. A prediction
	// step must not allocate (the paper budgets ~2 µs per evaluation and a
	// campaign server replays millions of events), so the feature vector, the
	// learner's probability/restriction scratch, and the sequence buffer all
	// live on the predictor and are recycled across steps. They make a
	// Predictor single-goroutine state, which it already was.
	featBuf  [NumFeatures]float64
	scratch  predictScratch
	predsBuf []Predicted
}

// lnesLoadOnly is the constant LNES of a committed navigation: the only
// possible next event is the destination page's load.
var lnesLoadOnly = []webevent.Type{webevent.Load}

// New creates a predictor for one session of the given application. The
// model is shared (trained offline across applications); the session state
// is per-user.
func New(learner *SequenceLearner, spec *webapp.Spec, domSeed int64, cfg Config) *Predictor {
	cfg = cfg.withDefaults()
	sess := webapp.NewSession(spec, domSeed)
	return &Predictor{
		cfg:      cfg,
		learner:  learner,
		sess:     sess,
		analyzer: NewAnalyzer(sess),
		gapStats: make(map[webevent.Interaction]*stats.Running),
	}
}

// Session exposes the predictor's DOM session (shared with the feature
// extraction of the scheduler's cost model).
func (p *Predictor) Session() *webapp.Session { return p.sess }

// Evaluations returns the number of logistic-model evaluations performed so
// far (used by the overhead analysis of Sec. 6.3).
func (p *Predictor) Evaluations() int { return p.evaluations }

// Observe informs the predictor that an actual event occurred. It updates
// the feature window, the inter-arrival statistics, and the DOM replica.
func (p *Predictor) Observe(e *webevent.Event) {
	if p.haveLast {
		gap := e.Trigger.Sub(p.lastTrigger)
		in := e.Type.Interaction()
		if p.gapStats[in] == nil {
			p.gapStats[in] = &stats.Running{}
		}
		p.gapStats[in].Add(float64(gap))
	}
	p.lastTrigger = e.Trigger
	p.haveLast = true

	p.win.Observe(e.Type, p.sess.Tree().ViewportCenterY(), e.Trigger)
	mut := p.sess.Apply(e.Type, dom.NodeID(e.Target))
	if mut.Kind == dom.MenuToggled && !p.sess.Tree().Node(mut.Menu).Hidden {
		p.menuOpened = mut.Menu
	} else if e.Type != webevent.Load {
		p.menuOpened = dom.None
	}
}

// expectedGap estimates the inter-arrival gap preceding an event of the
// given type, from the session's own history when available and from
// interaction-scale priors otherwise.
func (p *Predictor) expectedGap(typ webevent.Type) simtime.Duration {
	in := typ.Interaction()
	if r := p.gapStats[in]; r != nil && r.Count() >= 3 {
		return simtime.Duration(r.Mean())
	}
	switch in {
	case webevent.LoadInteraction:
		return 180 * simtime.Millisecond
	case webevent.MoveInteraction:
		return 650 * simtime.Millisecond
	default:
		return 3 * simtime.Second
	}
}

// PredictNext returns a single-step prediction regardless of the confidence
// threshold (used by the accuracy evaluation and as the seed of sequence
// prediction). ok is false only if the learner is unusable.
func (p *Predictor) PredictNext() (Predicted, bool) {
	pred, ok := p.predictStep(&p.win, p.menuOpened, p.sess.PendingNavigation() != "",
		p.sess.Tree().ViewportCenterY())
	return pred, ok
}

// predictStep produces one prediction from the given (possibly virtual)
// window and session flags.
func (p *Predictor) predictStep(win *Window, menuOpened dom.NodeID, pendingNav bool, viewportY float64) (Predicted, bool) {
	if p.cfg.UseDOMAnalysis {
		var analysis Analysis
		if pendingNav || menuOpened != dom.None {
			// Re-derive hints for the virtual state.
			if pendingNav {
				analysis = Analysis{
					LNES: lnesLoadOnly,
					Hint: Hint{Valid: true, Type: webevent.Load, Target: dom.None,
						TargetKind: dom.Document, Confidence: 0.96},
				}
			} else {
				analysis = p.analyzer.Analyze(menuOpened)
			}
		} else {
			analysis = p.analyzer.Analyze(dom.None)
		}
		if analysis.Hint.Valid {
			h := analysis.Hint
			return Predicted{
				Type:        h.Type,
				Target:      h.Target,
				TargetKind:  h.TargetKind,
				Confidence:  h.Confidence,
				ExpectedGap: p.expectedGap(h.Type),
				FromDOMHint: true,
			}, true
		}
		return p.learnerStep(win, viewportY, analysis.LNES)
	}
	return p.learnerStep(win, viewportY, nil)
}

// learnerStep runs the statistical learner, optionally restricted to the
// LNES, and attaches a hypothetical target. It is allocation-free: the
// feature vector and the learner scratch are the predictor's reusable
// buffers.
func (p *Predictor) learnerStep(win *Window, viewportY float64, allowed []webevent.Type) (Predicted, bool) {
	FeaturesInto(&p.featBuf, p.sess.Tree(), win, viewportY)
	p.evaluations++
	typ, conf, err := p.learner.predictWith(&p.scratch, p.featBuf[:], allowed)
	if err != nil {
		return Predicted{}, false
	}
	pred := Predicted{
		Type:        typ,
		Target:      dom.None,
		TargetKind:  dom.Document,
		Confidence:  conf,
		ExpectedGap: p.expectedGap(typ),
	}
	if typ.IsTap() {
		pred.Target, pred.TargetKind = p.analyzer.TypicalTapTarget()
	}
	return pred, true
}

// PredictSequence predicts the upcoming event sequence, terminating when the
// cumulative confidence falls below the configured threshold or the degree
// cap is reached. It may return an empty slice when even the first
// prediction is below the threshold (in which case PES behaves reactively).
// The returned slice is a reusable buffer owned by the predictor; it is
// valid until the next PredictSequence call.
func (p *Predictor) PredictSequence() []Predicted {
	preds := p.predsBuf[:0]
	vwin := p.win // value copy: the virtual window advanced by predictions
	menuOpened := p.menuOpened
	pendingNav := p.sess.PendingNavigation() != ""
	viewportY := p.sess.Tree().ViewportCenterY()
	cum := 1.0

	for len(preds) < p.cfg.MaxDegree {
		pred, ok := p.predictStep(&vwin, menuOpened, pendingNav, viewportY)
		if !ok {
			break
		}
		next := cum * pred.Confidence
		if next < p.cfg.ConfidenceThreshold {
			break
		}
		cum = next
		pred.Cumulative = cum
		preds = append(preds, pred)

		// Advance the virtual state as if the predicted event had occurred.
		vwin.Observe(pred.Type, viewportY, 0)
		switch {
		case pred.Type == webevent.Load:
			pendingNav = false
			menuOpened = dom.None
		case pred.Type.IsTap():
			pendingNav = p.analyzer.NavigatesAfterTap(pred.Target)
			menuOpened = p.analyzer.OpensMenu(pred.Target)
		case pred.Type.IsMove():
			// One scroll step moves the viewport by one scroll-step fraction.
			if p.sess.Tree().PageHeight > 0 {
				viewportY += p.sess.Tree().ViewportHeight * dom.ScrollStepFraction / p.sess.Tree().PageHeight
				if viewportY > 1 {
					viewportY = 1
				}
			}
			pendingNav = false
			menuOpened = dom.None
		}
	}
	p.predsBuf = preds
	return preds
}

// Matches reports whether an actual event matches a predicted one. The paper
// predicts (and validates) the type of the event; the speculative frame for
// a matching type is committed.
func Matches(pred Predicted, actual *webevent.Event) bool {
	return pred.Type == actual.Type
}
