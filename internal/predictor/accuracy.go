package predictor

import (
	"repro/internal/mlr"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// AccuracyResult is the per-application prediction accuracy measured on an
// evaluation corpus (Fig. 8 of the paper).
type AccuracyResult struct {
	App      string
	Seen     bool
	Events   int
	Correct  int
	Accuracy float64
}

// EvaluateAccuracy measures next-event prediction accuracy per application
// over the evaluation corpus: before each event (other than a session's
// initial load) the predictor predicts the next event type from the history
// so far, and the prediction is scored against the event that actually
// occurs. useDOM toggles the program-analysis half (Sec. 6.5 ablation).
func EvaluateAccuracy(learner *SequenceLearner, corpus trace.Corpus, useDOM bool) ([]AccuracyResult, error) {
	byApp := make(map[string]*AccuracyResult)
	var order []string

	for _, tr := range corpus {
		spec, err := webapp.ByName(tr.App)
		if err != nil {
			return nil, err
		}
		evs, err := tr.Runtime()
		if err != nil {
			return nil, err
		}
		cfg := DefaultConfig()
		cfg.UseDOMAnalysis = useDOM
		p := New(learner, spec, tr.DOMSeed, cfg)

		res := byApp[tr.App]
		if res == nil {
			res = &AccuracyResult{App: tr.App, Seen: spec.Seen}
			byApp[tr.App] = res
			order = append(order, tr.App)
		}
		for i, e := range evs {
			if i > 0 {
				pred, ok := p.PredictNext()
				if ok {
					res.Events++
					if Matches(pred, e) {
						res.Correct++
					}
				}
			}
			p.Observe(e)
		}
	}

	out := make([]AccuracyResult, 0, len(order))
	for _, app := range order {
		r := byApp[app]
		if r.Events > 0 {
			r.Accuracy = float64(r.Correct) / float64(r.Events)
		}
		out = append(out, *r)
	}
	return out, nil
}

// TrainOnSeenApps is a convenience that generates a training corpus from the
// seen applications and trains a learner on it, mirroring the paper's
// offline training on >100 traces across the 12 seen applications.
func TrainOnSeenApps(tracesPerApp int, baseSeed int64) (*SequenceLearner, trace.Corpus, error) {
	corpus := trace.GenerateCorpus(webapp.SeenApps(), tracesPerApp, baseSeed, trace.PurposeTrain, trace.Options{})
	learner := NewSequenceLearner()
	if err := learner.Train(corpus, mlr.TrainConfig{}); err != nil {
		return nil, nil, err
	}
	return learner, corpus, nil
}
