package predictor

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/mlr"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/webapp"
	"repro/internal/webevent"
)

func TestWindowFeatures(t *testing.T) {
	spec, _ := webapp.ByName("cnn")
	tree := spec.BuildPage("home", 1)
	var w Window
	feats := Features(tree, &w)
	if len(feats) != NumFeatures {
		t.Fatalf("feature vector has %d entries, want %d", len(feats), NumFeatures)
	}
	// Empty window: distance to previous click is 1, counts are 0.
	if feats[2] != 1 || feats[3] != 0 || feats[4] != 0 {
		t.Errorf("empty-window features = %v", feats)
	}
	// Observe a click and three scrolls plus a load.
	w.Observe(webevent.Click, tree.ViewportCenterY(), 0)
	w.Observe(webevent.Scroll, 0.1, 1)
	w.Observe(webevent.Scroll, 0.2, 2)
	w.Observe(webevent.Scroll, 0.3, 3)
	w.Observe(webevent.Load, 0.0, 4)
	feats = Features(tree, &w)
	if feats[3] != 1.0/WindowSize {
		t.Errorf("navigations feature = %v, want %v", feats[3], 1.0/WindowSize)
	}
	if feats[4] != 3.0/WindowSize {
		t.Errorf("scrolls feature = %v, want %v", feats[4], 3.0/WindowSize)
	}
	if feats[2] >= 1 {
		t.Errorf("distance to previous click should be < 1 after a click, got %v", feats[2])
	}
	// Window keeps only the last five entries.
	w.Observe(webevent.Scroll, 0.4, 5)
	if w.Len() != WindowSize {
		t.Errorf("window length = %d, want %d", w.Len(), WindowSize)
	}
	if typ, _, ok := w.Last(); !ok || typ != webevent.Scroll {
		t.Error("Last should report the newest entry")
	}
	w.Reset()
	if w.Len() != 0 {
		t.Error("Reset should empty the window")
	}
	// All feature values must be within [0, 1].
	for i, f := range feats {
		if f < 0 || f > 1 {
			t.Errorf("feature %d (%s) = %v out of [0,1]", i, FeatureNames[i], f)
		}
	}
}

func TestTrainingSamplesShape(t *testing.T) {
	corpus := trace.GenerateCorpus(webapp.SeenApps()[:2], 2, 500, trace.PurposeTrain, trace.Options{})
	samples, err := TrainingSamples(corpus)
	if err != nil {
		t.Fatal(err)
	}
	// One sample per event except each trace's first event.
	want := corpus.TotalEvents() - len(corpus)
	if len(samples) != want {
		t.Errorf("samples = %d, want %d", len(samples), want)
	}
	for _, s := range samples {
		if len(s.Features) != NumFeatures {
			t.Fatalf("sample has %d features", len(s.Features))
		}
		if s.Label < 0 || s.Label >= webevent.NumTypes {
			t.Fatalf("label %d out of range", s.Label)
		}
	}
	if _, err := TrainingSamples(nil); err == nil {
		t.Error("expected error for empty corpus")
	}
}

func TestLearnerFromModelShapeCheck(t *testing.T) {
	if _, err := LearnerFromModel(mlr.NewModel(2, 2)); err == nil {
		t.Error("expected shape error")
	}
	if _, err := LearnerFromModel(mlr.NewModel(NumFeatures, webevent.NumTypes)); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

// trainSmall trains a learner on a small corpus for use in tests.
func trainSmall(t *testing.T) *SequenceLearner {
	t.Helper()
	learner, _, err := TrainOnSeenApps(2, 9000)
	if err != nil {
		t.Fatal(err)
	}
	return learner
}

func TestPredictorHintNavigation(t *testing.T) {
	learner := trainSmall(t)
	spec, _ := webapp.ByName("cnn")
	p := New(learner, spec, 77, DefaultConfig())

	// Find a visible navigation link in the predictor's own session replica
	// and deliver a click on it.
	var link dom.NodeID
	for _, id := range p.Session().Tree().VisibleTappable() {
		n := p.Session().Tree().Node(id)
		if n.NavigatesTo != "" && n.TogglesMenu == dom.None {
			link = id
			break
		}
	}
	if link == dom.None {
		t.Fatal("no visible navigation link")
	}
	p.Observe(&webevent.Event{Seq: 0, App: "cnn", Type: webevent.Load, Trigger: 0})
	p.Observe(&webevent.Event{Seq: 1, App: "cnn", Type: webevent.Click,
		Trigger: simtime.Time(5 * simtime.Second), Target: int(link), Navigation: true})

	pred, ok := p.PredictNext()
	if !ok {
		t.Fatal("prediction failed")
	}
	if pred.Type != webevent.Load || !pred.FromDOMHint {
		t.Errorf("after a navigation tap the predictor should predict a load via DOM hint, got %+v", pred)
	}
	if pred.Confidence < 0.9 {
		t.Errorf("navigation hint confidence = %v", pred.Confidence)
	}
}

func TestPredictorScrollRunPrediction(t *testing.T) {
	learner := trainSmall(t)
	spec, _ := webapp.ByName("bbc")
	p := New(learner, spec, 3, DefaultConfig())
	now := simtime.Time(0)
	p.Observe(&webevent.Event{Seq: 0, App: "bbc", Type: webevent.Load, Trigger: now})
	// A run of scrolls strongly suggests another scroll.
	for i := 1; i <= 3; i++ {
		now = now.Add(700 * simtime.Millisecond)
		p.Observe(&webevent.Event{Seq: i, App: "bbc", Type: spec.Behavior.MoveManifestation, Trigger: now})
	}
	pred, ok := p.PredictNext()
	if !ok {
		t.Fatal("prediction failed")
	}
	if !pred.Type.IsMove() {
		t.Errorf("mid-scroll-run prediction = %v, want a move", pred.Type)
	}
}

func TestPredictSequenceRespectsThresholdAndDegree(t *testing.T) {
	learner := trainSmall(t)
	spec, _ := webapp.ByName("ebay")
	cfg := DefaultConfig()
	p := New(learner, spec, 5, cfg)
	p.Observe(&webevent.Event{Seq: 0, App: "ebay", Type: webevent.Load, Trigger: 0})
	seq := p.PredictSequence()
	if len(seq) > cfg.MaxDegree {
		t.Errorf("sequence length %d exceeds max degree", len(seq))
	}
	for i, pr := range seq {
		if pr.Cumulative < cfg.ConfidenceThreshold-1e-9 {
			t.Errorf("prediction %d cumulative confidence %v below threshold", i, pr.Cumulative)
		}
		if i > 0 && pr.Cumulative > seq[i-1].Cumulative+1e-9 {
			t.Errorf("cumulative confidence must be non-increasing")
		}
		if pr.ExpectedGap <= 0 {
			t.Errorf("prediction %d has no expected gap", i)
		}
	}
	// A 100% threshold should essentially disable prediction.
	strict := New(learner, spec, 5, Config{ConfidenceThreshold: 1.0, MaxDegree: 8, UseDOMAnalysis: true})
	strict.Observe(&webevent.Event{Seq: 0, App: "ebay", Type: webevent.Load, Trigger: 0})
	if got := strict.PredictSequence(); len(got) > 1 {
		t.Errorf("threshold 1.0 should produce at most a single certain prediction, got %d", len(got))
	}
}

func TestPredictorAccuracyOnEvalTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy evaluation is slow")
	}
	learner, _, err := TrainOnSeenApps(3, 12000)
	if err != nil {
		t.Fatal(err)
	}
	apps := []*webapp.Spec{}
	for _, name := range []string{"slashdot", "cnn", "google", "yahoo"} {
		s, _ := webapp.ByName(name)
		apps = append(apps, s)
	}
	eval := trace.GenerateCorpus(apps, 2, 77000, trace.PurposeEval, trace.Options{})
	results, err := EvaluateAccuracy(learner, eval, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results for %d apps, want 4", len(results))
	}
	for _, r := range results {
		if r.Events == 0 {
			t.Errorf("%s: no events evaluated", r.App)
		}
		if r.Accuracy < 0.70 {
			t.Errorf("%s: accuracy %.3f is far below the paper's ~90%% regime", r.App, r.Accuracy)
		}
	}
	// DOM analysis must not hurt accuracy.
	noDOM, err := EvaluateAccuracy(learner, eval, false)
	if err != nil {
		t.Fatal(err)
	}
	var withSum, withoutSum float64
	for i := range results {
		withSum += results[i].Accuracy
		withoutSum += noDOM[i].Accuracy
	}
	if withSum < withoutSum {
		t.Errorf("DOM analysis should improve mean accuracy (with=%.3f, without=%.3f)", withSum/4, withoutSum/4)
	}
}

func TestMatches(t *testing.T) {
	pred := Predicted{Type: webevent.Click}
	if !Matches(pred, &webevent.Event{Type: webevent.Click}) {
		t.Error("same type should match")
	}
	if Matches(pred, &webevent.Event{Type: webevent.Scroll}) {
		t.Error("different type should not match")
	}
}

func TestExpectedGapLearnsFromSession(t *testing.T) {
	learner := trainSmall(t)
	spec, _ := webapp.ByName("msn")
	p := New(learner, spec, 1, DefaultConfig())
	now := simtime.Time(0)
	p.Observe(&webevent.Event{Type: webevent.Load, Trigger: now})
	for i := 0; i < 5; i++ {
		now = now.Add(simtime.FromMillis(400))
		p.Observe(&webevent.Event{Type: spec.Behavior.MoveManifestation, Trigger: now})
	}
	got := p.expectedGap(spec.Behavior.MoveManifestation)
	if got < 300*simtime.Millisecond || got > 500*simtime.Millisecond {
		t.Errorf("expected gap should reflect the observed ~400ms cadence, got %v", got)
	}
	// Unobserved interactions fall back to priors.
	if p.expectedGap(webevent.Load) <= 0 {
		t.Error("load gap prior should be positive")
	}
}

func TestEvaluationsCounter(t *testing.T) {
	learner := trainSmall(t)
	spec, _ := webapp.ByName("espn")
	p := New(learner, spec, 2, DefaultConfig())
	p.Observe(&webevent.Event{Type: webevent.Load, Trigger: 0})
	before := p.Evaluations()
	p.PredictSequence()
	if p.Evaluations() < before {
		t.Error("evaluation counter must not decrease")
	}
}
