package predictor

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/mlr"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/webevent"
)

// SequenceLearner is the statistical half of the event predictor: a
// one-vs-rest logistic regression model over the Table 1 features whose
// classes are the DOM-level event types.
type SequenceLearner struct {
	model *mlr.Model
}

// NewSequenceLearner creates an untrained learner.
func NewSequenceLearner() *SequenceLearner {
	return &SequenceLearner{model: mlr.NewModel(NumFeatures, webevent.NumTypes)}
}

// LearnerFromModel wraps an already-trained model (e.g. loaded from disk).
func LearnerFromModel(m *mlr.Model) (*SequenceLearner, error) {
	if m.NumFeatures != NumFeatures || m.NumClasses != webevent.NumTypes {
		return nil, fmt.Errorf("predictor: model shape %dx%d does not match %dx%d",
			m.NumFeatures, m.NumClasses, NumFeatures, webevent.NumTypes)
	}
	return &SequenceLearner{model: m}, nil
}

// Model exposes the underlying logistic model (for persistence).
func (l *SequenceLearner) Model() *mlr.Model { return l.model }

// TrainingSamples replays every trace of the corpus through its DOM session
// and produces one training sample per event: the Table 1 features computed
// from the state *before* the event, labelled with the event's type. The
// session's first event (the initial load) has no preceding context and is
// skipped.
func TrainingSamples(corpus trace.Corpus) ([]mlr.Sample, error) {
	var samples []mlr.Sample
	for _, tr := range corpus {
		evs, err := tr.Runtime()
		if err != nil {
			return nil, err
		}
		sess, err := tr.Session()
		if err != nil {
			return nil, err
		}
		var win Window
		for i, e := range evs {
			if i > 0 {
				samples = append(samples, mlr.Sample{
					Features: Features(sess.Tree(), &win),
					Label:    int(e.Type),
				})
			}
			win.Observe(e.Type, sess.Tree().ViewportCenterY(), e.Trigger)
			sess.ApplyEvent(e)
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("predictor: corpus produced no training samples")
	}
	return samples, nil
}

// Train fits the learner on the corpus. Training is deterministic and cheap
// (the paper reports ~3 s on a desktop CPU; this synthetic corpus trains in
// well under a second).
func (l *SequenceLearner) Train(corpus trace.Corpus, cfg mlr.TrainConfig) error {
	samples, err := TrainingSamples(corpus)
	if err != nil {
		return err
	}
	return l.model.Fit(samples, cfg)
}

// predictScratch holds the reusable buffers of allocation-free learner
// prediction. Each Predictor owns one (the trained learner itself is shared
// read-only across concurrent sessions, so the scratch state cannot live on
// it).
type predictScratch struct {
	probs   []float64
	allowed []int
}

// predictWith is the allocation-free prediction path: the class-restriction
// indices and the probability vector live in the caller's scratch buffers.
func (l *SequenceLearner) predictWith(s *predictScratch, features []float64, allowed []webevent.Type) (webevent.Type, float64, error) {
	s.allowed = s.allowed[:0]
	for _, t := range allowed {
		s.allowed = append(s.allowed, int(t))
	}
	class, conf, probs, err := l.model.PredictRestrictedBuf(s.probs, features, s.allowed)
	if probs != nil {
		s.probs = probs
	}
	if err != nil {
		return 0, 0, err
	}
	return webevent.Type(class), conf, nil
}

// Predict returns the most likely next event type and its confidence, with
// the candidate set optionally restricted to the allowed types (the LNES).
func (l *SequenceLearner) Predict(features []float64, allowed []webevent.Type) (webevent.Type, float64, error) {
	var s predictScratch
	return l.predictWith(&s, features, allowed)
}

// Predicted is one entry of a predicted event sequence.
type Predicted struct {
	// Type is the predicted DOM-level event type.
	Type webevent.Type
	// Target is the hypothetical target node used for speculative execution
	// (None for loads and moves).
	Target dom.NodeID
	// TargetKind is the kind of the hypothetical target.
	TargetKind dom.Kind
	// Confidence is the individual confidence of this prediction.
	Confidence float64
	// Cumulative is the product of confidences up to and including this
	// prediction (the quantity compared against the confidence threshold).
	Cumulative float64
	// ExpectedGap is the predicted inter-arrival gap between the previous
	// event's trigger and this event's trigger. The sequence learner only
	// predicts types, not times; the gap is a running estimate from the
	// current session used by the optimizer to place speculative deadlines.
	ExpectedGap simtime.Duration
	// FromDOMHint marks predictions produced by program analysis rather than
	// the statistical learner.
	FromDOMHint bool
}
