// Package predictor implements the PES event predictor: the combination of
// a statistical event sequence learner (logistic regression over the Table 1
// features) and application program analysis over the DOM (the
// Likely-Next-Event-Set and Semantic-Tree-derived hints).
package predictor

import (
	"repro/internal/dom"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

// WindowSize is the number of most recent events considered by the
// interaction-dependent features (the paper uses the five most recent
// events).
const WindowSize = 5

// NumFeatures is the dimensionality of the feature vector — the five
// features of Table 1.
const NumFeatures = 5

// FeatureNames lists the features in vector order, matching Table 1.
var FeatureNames = [NumFeatures]string{
	"clickable region percentage in the viewport",
	"visible link percentage in the viewport",
	"distance to the previous click in the window",
	"number of navigations in the window",
	"number of scrolls in the window",
}

// windowEntry is one recent event as remembered by the feature window.
type windowEntry struct {
	typ       webevent.Type
	viewportY float64
	trigger   simtime.Time
}

// Window is a fixed-size buffer of the most recent events of the current
// interaction session. It is a pure value type (no heap state), so the
// virtual window of sequence prediction is a plain struct copy and observing
// an event never allocates.
type Window struct {
	entries [WindowSize]windowEntry
	n       int
}

// Observe appends an event to the window, evicting the oldest entry beyond
// WindowSize.
func (w *Window) Observe(typ webevent.Type, viewportY float64, trigger simtime.Time) {
	e := windowEntry{typ: typ, viewportY: viewportY, trigger: trigger}
	if w.n == WindowSize {
		copy(w.entries[:], w.entries[1:])
		w.entries[WindowSize-1] = e
		return
	}
	w.entries[w.n] = e
	w.n++
}

// Len returns the number of events currently in the window.
func (w *Window) Len() int { return w.n }

// Reset clears the window (used when an interaction session ends).
func (w *Window) Reset() { w.n = 0 }

// Last returns the most recent entry and true, or false when empty.
func (w *Window) Last() (typ webevent.Type, viewportY float64, ok bool) {
	if w.n == 0 {
		return 0, 0, false
	}
	e := w.entries[w.n-1]
	return e.typ, e.viewportY, true
}

// navigations counts Load events in the window.
func (w *Window) navigations() int {
	n := 0
	for _, e := range w.entries[:w.n] {
		if e.typ == webevent.Load {
			n++
		}
	}
	return n
}

// scrolls counts move-interaction events in the window.
func (w *Window) scrolls() int {
	n := 0
	for _, e := range w.entries[:w.n] {
		if e.typ.IsMove() {
			n++
		}
	}
	return n
}

// distanceToPreviousClick returns the normalized vertical distance between
// the current viewport centre and the viewport position of the most recent
// tap in the window, or 1 when the window contains no tap.
func (w *Window) distanceToPreviousClick(currentY float64) float64 {
	for i := w.n - 1; i >= 0; i-- {
		if w.entries[i].typ.IsTap() {
			d := currentY - w.entries[i].viewportY
			if d < 0 {
				d = -d
			}
			if d > 1 {
				d = 1
			}
			return d
		}
	}
	return 1
}

// Features computes the Table 1 feature vector for the current DOM state and
// event window. All features are normalized to [0, 1].
func Features(tree *dom.Tree, w *Window) []float64 {
	var buf [NumFeatures]float64
	FeaturesInto(&buf, tree, w, tree.ViewportCenterY())
	out := make([]float64, NumFeatures)
	copy(out, buf[:])
	return out
}

// FeaturesInto fills dst with the Table 1 feature vector without allocating.
// currentY is the viewport centre the interaction-dependent features are
// evaluated against (the tree's actual centre, or a virtual position during
// sequence prediction).
func FeaturesInto(dst *[NumFeatures]float64, tree *dom.Tree, w *Window, currentY float64) {
	dst[0] = tree.ClickableFraction()
	dst[1] = tree.LinkFraction()
	dst[2] = w.distanceToPreviousClick(currentY)
	dst[3] = float64(w.navigations()) / WindowSize
	dst[4] = float64(w.scrolls()) / WindowSize
}
