package engine

import (
	"testing"

	"repro/internal/acmp"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// oracleGolden pins the Oracle's per-version behaviour on the golden
// sessions. The v1 rows are the paper-exact baseline: energies must match
// the pre-refactor driver fingerprints (the `golden` table) and the solver
// counters — node counts included — must never drift, because v1's hardest
// 12-event windows exhaust the search budget and its figures are therefore
// artifacts of the exact traversal, not just of the optimum. The v2 rows pin
// the fast path: the same windows solved to proven optimality within a small
// node count and zero budget aborts.
var oracleGolden = []struct {
	tag          string
	app          string
	seed         int64
	v1Solves     int
	v1Nodes      int64
	v1Aborts     int
	v2Solves     int
	v2Nodes      int64
	v2MaxNodes   int64 // tightened drift alarm on top of the exact pin
	v1TotalMJ    float64
	v2NoWorseEps float64
}{
	{tag: "cnn/11", app: "cnn", seed: 11, v1Solves: 5, v1Nodes: 408721, v1Aborts: 1,
		v2Solves: 5, v2Nodes: 10514, v2MaxNodes: 50000, v1TotalMJ: 21553.69738},
	{tag: "ebay/5", app: "ebay", seed: 5, v1Solves: 5, v1Nodes: 18462, v1Aborts: 0,
		v2Solves: 5, v2Nodes: 1091, v2MaxNodes: 50000, v1TotalMJ: 25010.48101},
	{tag: "espn/9", app: "espn", seed: 9, v1Solves: 3, v1Nodes: 119, v1Aborts: 0,
		v2Solves: 3, v2Nodes: 5, v2MaxNodes: 50000, v1TotalMJ: 17337.69909},
}

// TestOracleV1FiguresPinned replays the golden sessions under both oracle
// versions. v1 must stay bit-identical to the paper-exact baseline —
// energies and solver counters — no matter how v2 evolves; v2 must complete
// every solve within budget and never exceed v1's energy.
func TestOracleV1FiguresPinned(t *testing.T) {
	p := acmp.Exynos5410()
	for _, g := range oracleGolden {
		spec, err := webapp.ByName(g.app)
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.Generate(spec, g.seed, trace.Options{})
		evs, err := tr.Runtime()
		if err != nil {
			t.Fatal(err)
		}

		r1 := RunProactive(p, g.app, evs, sched.NewOracleWithVersion(p, evs, sched.OracleV1))
		if !approxEq(r1.TotalEnergyMJ, g.v1TotalMJ) {
			t.Errorf("%s v1: TotalEnergyMJ = %.10g, want %.10g", g.tag, r1.TotalEnergyMJ, g.v1TotalMJ)
		}
		s1 := r1.Solver
		if s1.Solves != g.v1Solves || s1.Nodes != g.v1Nodes || s1.BudgetAborts != g.v1Aborts {
			t.Errorf("%s v1: solver counters drifted: solves=%d nodes=%d aborts=%d, want %d/%d/%d",
				g.tag, s1.Solves, s1.Nodes, s1.BudgetAborts, g.v1Solves, g.v1Nodes, g.v1Aborts)
		}
		if s1.PlanCacheHits != 0 {
			// Real session horizons never repeat (start times advance), so a
			// hit here would mean the v1 figures changed provenance.
			t.Errorf("%s v1: unexpected plan cache hits: %d", g.tag, s1.PlanCacheHits)
		}

		r2 := RunProactive(p, g.app, evs, sched.NewOracleWithVersion(p, evs, sched.OracleV2))
		s2 := r2.Solver
		if s2.BudgetAborts != 0 {
			t.Errorf("%s v2: %d budget aborts, want 0", g.tag, s2.BudgetAborts)
		}
		if s2.Solves != g.v2Solves || s2.Nodes != g.v2Nodes {
			t.Errorf("%s v2: solver counters drifted: solves=%d nodes=%d, want %d/%d",
				g.tag, s2.Solves, s2.Nodes, g.v2Solves, g.v2Nodes)
		}
		if s2.Nodes > g.v2MaxNodes {
			t.Errorf("%s v2: %d nodes exceeds the %d drift alarm", g.tag, s2.Nodes, g.v2MaxNodes)
		}
		if r2.TotalEnergyMJ > r1.TotalEnergyMJ*(1+1e-12) {
			t.Errorf("%s: v2 energy %.10g exceeds v1 %.10g — v2 must dominate the truncated baseline",
				g.tag, r2.TotalEnergyMJ, r1.TotalEnergyMJ)
		}
	}
}
