package engine

import (
	"testing"

	"repro/internal/acmp"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

// scriptedPolicy is a minimal proactive policy for exercising the proactive
// driver's control paths (commit, mis-prediction squash, fallback) without
// the full PES stack.
type scriptedPolicy struct {
	platform    *acmp.Platform
	plans       [][]sched.SpecTask
	planIdx     int
	enabled     bool
	mispredicts int
	corrects    int
	reactive    int
}

func (s *scriptedPolicy) Name() string              { return "scripted" }
func (s *scriptedPolicy) Observe(e *webevent.Event) {}
func (s *scriptedPolicy) OnCorrectPrediction()      { s.corrects++ }
func (s *scriptedPolicy) OnMisprediction()          { s.mispredicts++ }
func (s *scriptedPolicy) OnReactiveEvent()          { s.reactive++ }
func (s *scriptedPolicy) SpeculationEnabled() bool  { return s.enabled }
func (s *scriptedPolicy) ObserveExecution(sig webevent.Signature, cfg acmp.Config, d simtime.Duration) {
}

func (s *scriptedPolicy) Plan(now simtime.Time, outstanding []*webevent.Event) []sched.SpecTask {
	if !s.enabled || s.planIdx >= len(s.plans) {
		return nil
	}
	plan := s.plans[s.planIdx]
	s.planIdx++
	// Attach outstanding events to the head tasks if requested.
	out := make([]sched.SpecTask, len(plan))
	copy(out, plan)
	for i := range out {
		if i < len(outstanding) && out[i].Event == nil && i == 0 {
			out[i].Event = outstanding[i]
		}
	}
	return out
}

func (s *scriptedPolicy) ReactiveConfig(e *webevent.Event, start simtime.Time) acmp.Config {
	return s.platform.MaxPerformance()
}

func mkEvents(p *acmp.Platform) []*webevent.Event {
	mk := func(seq int, typ webevent.Type, atMS int64, cycles int64) *webevent.Event {
		return &webevent.Event{
			Seq: seq, App: "cnn", Type: typ,
			Trigger: simtime.Time(atMS * int64(simtime.Millisecond)),
			Work:    acmp.Workload{Tmem: 2 * simtime.Millisecond, Cycles: cycles},
		}
	}
	return []*webevent.Event{
		mk(0, webevent.Load, 100, 900e6),
		mk(1, webevent.Scroll, 4000, 10e6),
		mk(2, webevent.Scroll, 4700, 10e6),
		mk(3, webevent.Click, 9000, 200e6),
	}
}

func TestProactiveCommitPath(t *testing.T) {
	p := acmp.Exynos5410()
	events := mkEvents(p)
	cfg := p.MaxPerformance()
	task := func(typ webevent.Type, trigMS int64) sched.SpecTask {
		return sched.SpecTask{
			Type: typ, Signature: webevent.Signature{App: "cnn", Type: typ},
			Config: cfg, EstimatedLatency: 20 * simtime.Millisecond,
			ExpectedTrigger: simtime.Time(trigMS * int64(simtime.Millisecond)),
		}
	}
	pol := &scriptedPolicy{
		platform: p,
		enabled:  true,
		plans: [][]sched.SpecTask{
			// Plan issued when the load arrives: load (outstanding) + the two
			// scrolls and the click, all correctly predicted.
			{task(webevent.Load, 100), task(webevent.Scroll, 4000), task(webevent.Scroll, 4700), task(webevent.Click, 9000)},
		},
	}
	r := RunProactive(p, "cnn", events, pol)
	if len(r.Outcomes) != len(events) {
		t.Fatalf("outcomes %d", len(r.Outcomes))
	}
	if r.Mispredictions != 0 {
		t.Fatalf("unexpected mispredictions: %d", r.Mispredictions)
	}
	if r.CommittedFrames != 3 {
		t.Errorf("committed = %d, want 3 (the three predicted events)", r.CommittedFrames)
	}
	// The scroll and click events were speculated during the long gaps, so
	// their latencies should be well below their QoS targets.
	for _, o := range r.Outcomes[1:] {
		if o.Violated {
			t.Errorf("event %d should not violate after correct speculation (latency %v)", o.Event.Seq, o.Latency)
		}
	}
}

func TestProactiveMispredictionSquash(t *testing.T) {
	p := acmp.Exynos5410()
	events := mkEvents(p)
	cfg := p.MaxPerformance()
	pol := &scriptedPolicy{
		platform: p,
		enabled:  true,
		plans: [][]sched.SpecTask{
			// Wrong prediction: after the load we predict a click, but the
			// next real event is a scroll → squash.
			{
				{Type: webevent.Load, Signature: webevent.Signature{App: "cnn", Type: webevent.Load}, Config: cfg,
					EstimatedLatency: 600 * simtime.Millisecond, ExpectedTrigger: events[0].Trigger},
				{Type: webevent.Click, Signature: webevent.Signature{App: "cnn", Type: webevent.Click}, Config: cfg,
					EstimatedLatency: 150 * simtime.Millisecond, ExpectedTrigger: events[1].Trigger},
			},
		},
	}
	r := RunProactive(p, "cnn", events, pol)
	if r.Mispredictions != 1 {
		t.Fatalf("mispredictions = %d, want 1", r.Mispredictions)
	}
	if r.SquashedFrames == 0 || r.MispredictWaste <= 0 || r.WastedEnergyMJ <= 0 {
		t.Error("squash should record waste")
	}
	if pol.mispredicts != 1 {
		t.Error("policy should be notified of the mis-prediction")
	}
	// All events still execute and are accounted.
	if len(r.Outcomes) != len(events) {
		t.Fatalf("outcomes %d", len(r.Outcomes))
	}
}

func TestProactiveDisabledBehavesReactively(t *testing.T) {
	p := acmp.Exynos5410()
	events := mkEvents(p)
	pol := &scriptedPolicy{platform: p, enabled: false}
	r := RunProactive(p, "cnn", events, pol)
	if r.CommittedFrames != 0 || r.Mispredictions != 0 {
		t.Error("disabled speculation should produce no speculative activity")
	}
	if pol.reactive != len(events) {
		t.Errorf("all %d events should be handled reactively, got %d", len(events), pol.reactive)
	}
	for _, o := range r.Outcomes {
		if o.Speculative {
			t.Error("no outcome should be speculative")
		}
		if o.Config != p.MaxPerformance() {
			t.Error("reactive fallback config should be used")
		}
	}
}
