package engine

import (
	"testing"

	"repro/internal/acmp"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/webapp"
	"repro/internal/webevent"
)

func evalTrace(t testing.TB, app string, seed int64) (*trace.Trace, []*webevent.Event, *webapp.Spec) {
	t.Helper()
	spec, err := webapp.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(spec, seed, trace.Options{})
	evs, err := tr.Runtime()
	if err != nil {
		t.Fatal(err)
	}
	return tr, evs, spec
}

func checkResultInvariants(t *testing.T, r *Result, nEvents int) {
	t.Helper()
	if len(r.Outcomes) != nEvents {
		t.Fatalf("%s: %d outcomes for %d events", r.Scheduler, len(r.Outcomes), nEvents)
	}
	if r.TotalEnergyMJ <= 0 || r.BusyEnergyMJ <= 0 {
		t.Errorf("%s: non-positive energy", r.Scheduler)
	}
	if r.TotalEnergyMJ < r.BusyEnergyMJ {
		t.Errorf("%s: total energy below busy energy", r.Scheduler)
	}
	if r.ViolationRate < 0 || r.ViolationRate > 1 {
		t.Errorf("%s: violation rate %v out of range", r.Scheduler, r.ViolationRate)
	}
	viol := 0
	for _, o := range r.Outcomes {
		if o.Latency <= 0 {
			t.Fatalf("%s: outcome with non-positive latency", r.Scheduler)
		}
		if o.Finish.Before(o.Start) {
			t.Fatalf("%s: outcome finishes before it starts", r.Scheduler)
		}
		if o.Violated {
			viol++
		}
		if o.Config.IsZero() {
			t.Fatalf("%s: outcome with no config", r.Scheduler)
		}
	}
	if viol != r.Violations {
		t.Errorf("%s: violation count mismatch", r.Scheduler)
	}
	if r.MeanLatency() <= 0 {
		t.Errorf("%s: mean latency not positive", r.Scheduler)
	}
}

func TestRunReactiveInvariants(t *testing.T) {
	p := acmp.Exynos5410()
	_, evs, _ := evalTrace(t, "cnn", 11)
	for _, policy := range []sched.ReactivePolicy{sched.NewInteractive(p), sched.NewOndemand(p), sched.NewEBS(p)} {
		r := RunReactive(p, "cnn", evs, policy)
		checkResultInvariants(t, r, len(evs))
		if r.Scheduler != policy.Name() {
			t.Errorf("scheduler name %q", r.Scheduler)
		}
		// Reactive executions never begin before their trigger.
		for _, o := range r.Outcomes {
			if o.Start.Before(o.Event.Trigger) {
				t.Fatalf("%s started before its trigger", policy.Name())
			}
			if o.Speculative {
				t.Fatalf("%s produced a speculative outcome", policy.Name())
			}
		}
	}
}

func TestInteractiveSpendsMostBusyTimeAtMaxPerformance(t *testing.T) {
	// Sec. 6.4: Interactive spends >80% of its busy time at the big
	// cluster's top frequency.
	p := acmp.Exynos5410()
	_, evs, _ := evalTrace(t, "bbc", 3)
	r := RunReactive(p, "bbc", evs, sched.NewInteractive(p))
	frac := float64(r.MaxPerfBusy) / float64(r.TotalBusy)
	if frac < 0.6 {
		t.Errorf("Interactive spends only %.0f%% of busy time at max performance, expected the large majority", 100*frac)
	}
}

func TestRunProactiveOracleInvariants(t *testing.T) {
	p := acmp.Exynos5410()
	_, evs, _ := evalTrace(t, "ebay", 5)
	r := RunProactive(p, "ebay", evs, sched.NewOracle(p, evs))
	checkResultInvariants(t, r, len(evs))
	if r.Mispredictions != 0 {
		t.Errorf("the oracle must never mispredict, got %d", r.Mispredictions)
	}
	if r.CommittedFrames == 0 {
		t.Error("the oracle should commit speculative work")
	}
	spec := 0
	for _, o := range r.Outcomes {
		if o.Speculative {
			spec++
		}
	}
	if spec == 0 {
		t.Error("the oracle should produce speculative outcomes")
	}
	if len(r.PFBSamples) != len(evs) {
		t.Errorf("PFB samples %d, want one per event", len(r.PFBSamples))
	}
}

func TestOracleBeatsReactiveSchedulers(t *testing.T) {
	p := acmp.Exynos5410()
	_, evs, _ := evalTrace(t, "cnn", 21)
	ebs := RunReactive(p, "cnn", evs, sched.NewEBS(p))
	oracle := RunProactive(p, "cnn", evs, sched.NewOracle(p, evs))
	if oracle.TotalEnergyMJ >= ebs.TotalEnergyMJ {
		t.Errorf("oracle energy %.0f should be below EBS energy %.0f", oracle.TotalEnergyMJ, ebs.TotalEnergyMJ)
	}
	if oracle.ViolationRate > ebs.ViolationRate {
		t.Errorf("oracle violations %.2f should not exceed EBS %.2f", oracle.ViolationRate, ebs.ViolationRate)
	}
}

func TestRunProactivePESEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end PES simulation is slow")
	}
	p := acmp.Exynos5410()
	learner, _, err := predictor.TrainOnSeenApps(3, 400)
	if err != nil {
		t.Fatal(err)
	}
	tr, evs, spec := evalTrace(t, "espn", 9)
	pes := core.NewPES(p, learner, spec, tr.DOMSeed, predictor.DefaultConfig())
	r := RunProactive(p, "espn", evs, pes)
	checkResultInvariants(t, r, len(evs))
	if r.CommittedFrames == 0 {
		t.Error("PES should commit at least one speculative frame")
	}
	// Speculation must stay accounted: wasted energy can never exceed busy
	// energy.
	if r.WastedEnergyMJ > r.BusyEnergyMJ {
		t.Errorf("wasted energy %.1f exceeds busy energy %.1f", r.WastedEnergyMJ, r.BusyEnergyMJ)
	}
	// PES should not consume more energy than the QoS-agnostic governor on
	// the same trace.
	inter := RunReactive(p, "espn", evs, sched.NewInteractive(p))
	if r.TotalEnergyMJ > inter.TotalEnergyMJ {
		t.Errorf("PES energy %.0f exceeds Interactive energy %.0f", r.TotalEnergyMJ, inter.TotalEnergyMJ)
	}
}

func TestResultFinalizeEmpty(t *testing.T) {
	r := &Result{Scheduler: "x", App: "y"}
	r.finalize()
	if r.ViolationRate != 0 || r.Duration != 0 || r.MeanLatency() != 0 {
		t.Error("empty result should finalize to zeros")
	}
}

func TestContextAccounting(t *testing.T) {
	p := acmp.Exynos5410()
	res := &Result{}
	m := &Context{platform: p, res: res}
	cfg := p.MaxPerformance()
	// Idle then busy then idle.
	m.chargeIdle(simtime.Time(100 * simtime.Millisecond))
	e := m.chargeBusy(cfg, simtime.Time(100*simtime.Millisecond), simtime.Time(150*simtime.Millisecond))
	if e <= 0 {
		t.Fatal("busy energy should be positive")
	}
	m.chargeIdle(simtime.Time(200 * simtime.Millisecond))
	if res.IdleEnergyMJ <= 0 || res.BusyEnergyMJ != e {
		t.Error("accounting wrong")
	}
	if res.TotalBusy != 50*simtime.Millisecond || res.MaxPerfBusy != 50*simtime.Millisecond {
		t.Error("busy-time breakdown wrong")
	}
	// Zero-length or inverted intervals charge nothing.
	if m.chargeBusy(cfg, 10, 10) != 0 {
		t.Error("zero-length busy interval should charge nothing")
	}
	// Switch overhead from the zero config is free.
	at, se := m.switchTo(cfg, simtime.Time(300*simtime.Millisecond))
	if se != 0 || at != simtime.Time(300*simtime.Millisecond) {
		t.Error("first switch should be free")
	}
	// A cluster migration costs time and energy.
	at2, se2 := m.switchTo(acmp.Config{Core: acmp.LittleCore, FreqMHz: 600}, at)
	if se2 <= 0 || !at2.After(at) {
		t.Error("migration should cost time and energy")
	}
}
