package engine

import (
	"testing"

	"repro/internal/acmp"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// TestSchedulerInvariants sweeps every scheduler over fixed-seed traces and
// checks the properties that must hold regardless of tuning:
//
//   - the Oracle solves for minimum energy subject to QoS, so no other
//     scheduler (all of which also try to meet QoS) may beat its energy;
//   - violation counts are bounded by the event count and every event gets
//     exactly one outcome;
//   - energy components are non-negative and sum to the total.
func TestSchedulerInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the predictor")
	}
	p := acmp.Exynos5410()
	learner, _, err := predictor.TrainOnSeenApps(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		app  string
		seed int64
	}{
		{"cnn", 11}, {"ebay", 5}, {"espn", 9},
	} {
		spec, err := webapp.ByName(tc.app)
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.Generate(spec, tc.seed, trace.Options{})
		evs, err := tr.Runtime()
		if err != nil {
			t.Fatal(err)
		}
		oracle := RunProactive(p, tc.app, evs, sched.NewOracle(p, evs))
		runs := map[string]*Result{
			"Interactive": RunReactive(p, tc.app, evs, sched.NewInteractive(p)),
			"Ondemand":    RunReactive(p, tc.app, evs, sched.NewOndemand(p)),
			"EBS":         RunReactive(p, tc.app, evs, sched.NewEBS(p)),
			"PES": RunProactive(p, tc.app, evs,
				core.NewPES(p, learner, spec, tr.DOMSeed, predictor.DefaultConfig())),
			"Oracle": oracle,
		}
		for name, r := range runs {
			tag := tc.app + "/" + name
			if got, want := len(r.Outcomes), len(evs); got != want {
				t.Errorf("%s: %d outcomes for %d events", tag, got, want)
			}
			if r.Violations < 0 || r.Violations > len(evs) {
				t.Errorf("%s: violation count %d out of range [0, %d]", tag, r.Violations, len(evs))
			}
			if r.BusyEnergyMJ < 0 || r.IdleEnergyMJ < 0 || r.WastedEnergyMJ < 0 {
				t.Errorf("%s: negative energy component (busy=%g idle=%g wasted=%g)",
					tag, r.BusyEnergyMJ, r.IdleEnergyMJ, r.WastedEnergyMJ)
			}
			if diff := r.TotalEnergyMJ - (r.BusyEnergyMJ + r.IdleEnergyMJ); diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s: total energy %g does not sum busy+idle %g",
					tag, r.TotalEnergyMJ, r.BusyEnergyMJ+r.IdleEnergyMJ)
			}
			// Floating-point accumulation differs across schedulers; allow a
			// hair of slack on the oracle bound.
			if r.TotalEnergyMJ < oracle.TotalEnergyMJ*(1-1e-9) {
				t.Errorf("%s: energy %g mJ beats the oracle's %g mJ",
					tag, r.TotalEnergyMJ, oracle.TotalEnergyMJ)
			}
		}
	}
}

// TestConfigLatencyInvariant checks the platform's performance ordering on
// real trace workloads: the MaxPerformance configuration never yields a
// higher execution latency than MinPerformance for the same workload.
func TestConfigLatencyInvariant(t *testing.T) {
	for _, p := range []*acmp.Platform{acmp.Exynos5410(), acmp.TX2Parker()} {
		maxCfg, minCfg := p.MaxPerformance(), p.MinPerformance()
		for _, spec := range webapp.Registry() {
			tr := trace.Generate(spec, 3, trace.Options{MaxEvents: 20})
			evs, err := tr.Runtime()
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range evs {
				fast := p.Latency(e.Work, maxCfg)
				slow := p.Latency(e.Work, minCfg)
				if fast > slow {
					t.Fatalf("%s/%s event %d: MaxPerformance latency %s exceeds MinPerformance %s",
						p.Name, spec.Name, e.Seq, fast, slow)
				}
			}
		}
	}
}
