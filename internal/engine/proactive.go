package engine

import (
	"sort"

	"repro/internal/acmp"
	"repro/internal/control"
	"repro/internal/optimizer"
	"repro/internal/render"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

// plannedTask is a speculative task queued for execution, annotated by the
// adapter with the index of the trace event it is intended to predict so
// that the execution can use the ground-truth workload when the prediction
// is correct.
type plannedTask struct {
	task     sched.SpecTask
	eventIdx int // index into the trace, or -1 when beyond the trace end
}

// inflightTask is a speculative task currently executing on the CPU.
type inflightTask struct {
	task          plannedTask
	start, finish simtime.Time
	energy        float64
	committed     bool // the matching event already arrived; do not buffer the frame
}

// proactiveAdapter drives a sched.ProactivePolicy (PES or the Oracle) on the
// unified engine. It owns the runtime state of proactive scheduling: the
// plan queue, the in-flight speculative execution, and the Pending Frame
// Buffer. The plan queue is consumed through a head index and the in-flight
// slot is an inline value so that the per-event loop recycles one backing
// array and never allocates per speculative task.
type proactiveAdapter struct {
	policy      sched.ProactivePolicy
	plan        []plannedTask
	planHead    int
	inflight    inflightTask
	hasInflight bool
	pfb         control.PFB
	frameEnergy map[*render.Frame]float64
	wasteSum    []float64 // scratch for squash's order-independent sum
}

// planLen returns the number of speculative tasks still queued.
func (a *proactiveAdapter) planLen() int { return len(a.plan) - a.planHead }

// resetPlan empties the queue, recycling the backing array.
func (a *proactiveAdapter) resetPlan() {
	a.plan = a.plan[:0]
	a.planHead = 0
}

// RunProactive replays the events under a proactive policy (PES or Oracle).
func RunProactive(p *acmp.Platform, app string, events []*webevent.Event, policy sched.ProactivePolicy) *Result {
	return Run(p, app, events, &proactiveAdapter{
		policy:      policy,
		frameEnergy: make(map[*render.Frame]float64),
	})
}

func (a *proactiveAdapter) Name() string { return a.policy.Name() }

// SolverStats implements sched.SolverStatsProvider by delegating to the
// wrapped policy, so Run picks the stats up through the adapter.
func (a *proactiveAdapter) SolverStats() optimizer.SolverStats {
	if sp, ok := a.policy.(sched.SolverStatsProvider); ok {
		return sp.SolverStats()
	}
	return optimizer.SolverStats{}
}

// hasSpeculation reports whether any prediction is still outstanding. A
// committed in-flight execution no longer counts: it belongs to an event
// that has already arrived.
func (a *proactiveAdapter) hasSpeculation() bool {
	return a.pfb.Size() > 0 || (a.hasInflight && !a.inflight.committed) || a.planLen() > 0
}

// headType returns the type of the next expected predicted event.
func (a *proactiveAdapter) headType() (webevent.Type, bool) {
	if f, ok := a.pfb.Head(); ok {
		return f.Type, true
	}
	if a.hasInflight && !a.inflight.committed {
		return a.inflight.task.task.Type, true
	}
	if a.planLen() > 0 {
		return a.plan[a.planHead].task.Type, true
	}
	return 0, false
}

// busyUntil returns the instant the CPU becomes free, accounting for an
// in-flight execution.
func (a *proactiveAdapter) busyUntil(ec *Context) simtime.Time {
	if a.hasInflight && a.inflight.finish.After(ec.cpuFree) {
		return a.inflight.finish
	}
	return ec.cpuFree
}

// workFor returns the workload a speculative task will actually incur: the
// ground-truth work of the event it predicts when the prediction is correct,
// and a workload reconstructed from the estimate otherwise (the frame will
// be squashed, only its cost matters).
func (a *proactiveAdapter) workFor(ec *Context, t plannedTask) acmp.Workload {
	events := ec.events
	if t.eventIdx >= 0 && t.eventIdx < len(events) && events[t.eventIdx].Type == t.task.Type {
		return events[t.eventIdx].Work
	}
	p := ec.platform
	eff := float64(t.task.Config.FreqMHz) / p.Cluster(t.task.Config.Core).CPI
	return acmp.Workload{Cycles: int64(float64(t.task.EstimatedLatency) * eff)}
}

// Advance implements Policy: execute speculative work until the given
// instant.
func (a *proactiveAdapter) Advance(ec *Context, until simtime.Time) {
	for {
		if a.hasInflight {
			if a.inflight.finish.After(until) {
				return
			}
			// Completes before `until`.
			fl := &a.inflight
			fl.energy += ec.chargeBusy(fl.task.task.Config, fl.start, fl.finish)
			a.policy.ObserveExecution(fl.task.task.Signature, fl.task.task.Config, fl.finish.Sub(fl.start))
			if !fl.committed {
				frame := render.Produce(fl.task.task.Type, fl.task.task.Config, fl.start, fl.finish, true)
				a.frameEnergy[frame] = fl.energy
				a.pfb.Push(fl.task.task.Type, frame)
			}
			ec.cpuFree = fl.finish
			a.hasInflight = false
			continue
		}
		if a.planLen() > 0 && a.policy.SpeculationEnabled() {
			if !ec.cpuFree.Before(until) {
				return
			}
			// Speculative tasks execute as soon as the main thread is
			// free, in plan order — the same as-soon-as-possible,
			// back-to-back execution the optimizer's chain constraint
			// (Eqn. 4) assumes. Predicted loads whose network requests are
			// suppressed (Sec. 5.3) never reach the queue: PES terminates
			// the speculative sequence at a deep predicted load instead
			// (see core.PES.Plan).
			t := a.plan[a.planHead]
			a.planHead++
			start, swEnergy := ec.switchTo(t.task.Config, ec.cpuFree)
			finish := start.Add(ec.platform.Latency(a.workFor(ec, t), t.task.Config))
			a.inflight = inflightTask{task: t, start: start, finish: finish, energy: swEnergy}
			a.hasInflight = true
			continue
		}
		// Nothing to run: idle until `until`.
		ec.chargeIdle(until)
		if until.After(ec.cpuFree) {
			ec.cpuFree = until
		}
		return
	}
}

// runNow executes an event reactively on the unified engine's execute path
// (quantum 0: proactive schedulers commit to one configuration per event)
// and records its outcome.
func (a *proactiveAdapter) runNow(ec *Context, e *webevent.Event, cfg acmp.Config) {
	start := simtime.Max(e.Trigger, a.busyUntil(ec))
	execStart, finish, final, energy := ec.execute(e, cfg, start, 0, nil)
	a.policy.ObserveExecution(e.Signature(), final, finish.Sub(execStart))
	ec.addOutcome(e, start, finish, final, energy, false)
	ec.cpuFree = finish
}

// adoptPlan installs a freshly produced plan: tasks for outstanding events
// are returned to the caller (executed immediately), predicted tasks are
// queued for speculative execution.
func (a *proactiveAdapter) adoptPlan(tasks []sched.SpecTask, nextEventIdx int, nEvents int) (outstandingTasks []sched.SpecTask) {
	a.resetPlan()
	k := 0
	for _, t := range tasks {
		if t.Event != nil {
			outstandingTasks = append(outstandingTasks, t)
			continue
		}
		idx := nextEventIdx + k
		if idx >= nEvents {
			idx = -1
		}
		a.plan = append(a.plan, plannedTask{task: t, eventIdx: idx})
		k++
	}
	return outstandingTasks
}

// squash drops every outstanding speculative artifact and accounts the
// waste.
func (a *proactiveAdapter) squash(ec *Context, at simtime.Time) {
	res := ec.res
	dropped, wasted := a.pfb.Squash()
	res.SquashedFrames += dropped
	res.MispredictWaste += wasted
	// Energy of squashed frames stays charged (it was really spent) but
	// is also tracked as waste. Map iteration order is randomized and
	// float addition is not associative, so sum the energies in sorted
	// order — otherwise the same session produces last-ULP-different
	// results across runs, breaking byte-identical crash resume.
	a.wasteSum = a.wasteSum[:0]
	for f, e := range a.frameEnergy {
		a.wasteSum = append(a.wasteSum, e)
		delete(a.frameEnergy, f)
	}
	sort.Float64s(a.wasteSum)
	for _, e := range a.wasteSum {
		res.WastedEnergyMJ += e
	}
	if a.hasInflight && !a.inflight.committed {
		// Abort the in-flight speculative execution immediately. An
		// in-flight execution that has already been committed belongs to
		// an event that actually happened and is left to finish.
		elapsed := at.Sub(a.inflight.start)
		if elapsed < 0 {
			elapsed = 0
		}
		e := ec.chargeBusy(a.inflight.task.task.Config, a.inflight.start, at)
		res.WastedEnergyMJ += e + a.inflight.energy
		res.MispredictWaste += elapsed
		res.SquashedFrames++
		a.hasInflight = false
		ec.cpuFree = at
	}
	a.resetPlan()
}

// Dispatch implements Policy: resolve the event against the outstanding
// speculation — commit a matching frame, squash on a mis-prediction, or
// handle the event reactively.
func (a *proactiveAdapter) Dispatch(ec *Context, e *webevent.Event, idx int) {
	res := ec.res
	a.policy.Observe(e)

	headType, hasHead := a.headType()
	switch {
	case hasHead && headType == e.Type:
		a.policy.OnCorrectPrediction()
		res.CommittedFrames++
		if pf, ok := a.pfb.Head(); ok && pf.Type == e.Type {
			a.pfb.Commit()
			ec.addOutcome(e, pf.Frame.Started, pf.Frame.Completed, pf.Frame.Config, a.frameEnergy[pf.Frame], true)
			delete(a.frameEnergy, pf.Frame)
		} else if a.hasInflight && !a.inflight.committed {
			// The matching speculative execution is still running; the
			// frame commits when it completes.
			fl := &a.inflight
			fl.committed = true
			cfg := fl.task.task.Config
			energy := acmp.EnergyMJ(ec.platform.Power(cfg), fl.finish.Sub(fl.start))
			ec.addOutcome(e, fl.start, fl.finish, cfg, energy, true)
		} else {
			// Planned but not yet started: execute it now at the planned
			// configuration.
			t := a.plan[a.planHead]
			a.planHead++
			a.runNow(ec, e, t.task.Config)
		}
	case hasHead:
		// Mis-prediction: squash everything and fall back to reactive
		// handling of this event.
		a.policy.OnMisprediction()
		res.Mispredictions++
		a.squash(ec, e.Trigger)
		if !a.policy.SpeculationEnabled() {
			res.SpeculationStops++
		}
		a.handleReactively(ec, e, idx)
	default:
		// No speculation outstanding (e.g. first event or disabled).
		a.handleReactively(ec, e, idx)
	}
}

// AfterDispatch implements Policy: when the whole predicted pipeline has
// drained, start a new round of prediction so that the idle gap before the
// next event can be used; then sample the PFB occupancy.
func (a *proactiveAdapter) AfterDispatch(ec *Context, e *webevent.Event, idx int) {
	if !a.hasSpeculation() && a.policy.SpeculationEnabled() {
		start := simtime.Max(e.Trigger, a.busyUntil(ec))
		tasks := a.policy.Plan(start, nil)
		a.adoptPlan(tasks, idx+1, len(ec.events))
	}
	if ec.res.PFBSamples == nil {
		// Exactly one sample per event: size the buffer once, here rather
		// than in the engine's generic entry point, so only policies that
		// actually sample the PFB pay for (and retain) it.
		ec.res.PFBSamples = make([]PFBSample, 0, len(ec.events))
	}
	ec.res.PFBSamples = append(ec.res.PFBSamples, PFBSample{Seq: e.Seq, Size: a.pfb.Size()})
}

// handleReactively executes an event that has no usable speculation: if the
// policy can produce a plan covering it, the event runs at the planned
// configuration and the plan's predicted tail is queued speculatively;
// otherwise the policy's reactive (EBS-equivalent) configuration is used.
func (a *proactiveAdapter) handleReactively(ec *Context, e *webevent.Event, idx int) {
	a.policy.OnReactiveEvent()
	start := simtime.Max(e.Trigger, a.busyUntil(ec))
	if a.policy.SpeculationEnabled() {
		tasks := a.policy.Plan(start, []*webevent.Event{e})
		if len(tasks) > 0 {
			outstanding := a.adoptPlan(tasks, idx+1, len(ec.events))
			if len(outstanding) > 0 && outstanding[0].Event == e {
				a.runNow(ec, e, outstanding[0].Config)
				return
			}
		}
	}
	a.runNow(ec, e, a.policy.ReactiveConfig(e, start))
}
