// Package engine is the unified discrete-event simulation engine that
// replays an interaction trace under a scheduler on an ACMP platform and
// measures what the paper measures on real hardware: per-event latency
// against its QoS target and the processor energy consumed over the whole
// session (busy, idle, and speculation-wasted energy).
//
// One event loop (Run) drives every scheduler through the Policy interface.
// Two adapters plug the scheduler contracts of package sched into it:
// RunReactive drives sched.ReactivePolicy implementations (the
// Interactive/Ondemand governors and EBS), including the governors' periodic
// frequency re-evaluation during an event's execution. RunProactive drives
// sched.ProactivePolicy implementations (PES and the Oracle): it executes
// speculative plans ahead of user input, holds the produced frames in the
// Pending Frame Buffer, commits them when the real events match the
// predictions, and squashes them on mis-predictions.
//
// The engine owns everything the two adapters share: the event iteration,
// the CPU time/energy accounting (idle, busy, configuration switches), the
// execute-with-requantum loop, outcome recording, and result finalization.
package engine

import (
	"repro/internal/acmp"
	"repro/internal/optimizer"
	"repro/internal/render"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

// Outcome records the execution of one event.
type Outcome struct {
	// Event is the trace event.
	Event *webevent.Event
	// Start and Finish bound the event's (frame's) production on the CPU.
	Start, Finish simtime.Time
	// Latency is the user-perceived latency (trigger to display).
	Latency simtime.Duration
	// Violated reports whether the latency exceeded the QoS target.
	Violated bool
	// Config is the (final) ACMP configuration the event executed on.
	Config acmp.Config
	// EnergyMJ is the active energy attributed to the event's execution.
	EnergyMJ float64
	// Speculative marks events whose frame production began before the
	// trigger (only possible under proactive scheduling).
	Speculative bool
}

// PFBSample records the Pending Frame Buffer occupancy when an event occurs
// (Fig. 9).
type PFBSample struct {
	Seq  int
	Size int
}

// Result aggregates one simulation run.
type Result struct {
	Scheduler string
	App       string

	Outcomes []Outcome

	// Energy breakdown in millijoules.
	BusyEnergyMJ   float64
	IdleEnergyMJ   float64
	WastedEnergyMJ float64
	TotalEnergyMJ  float64

	// QoS summary.
	Violations    int
	ViolationRate float64

	// Speculation summary (proactive schedulers only).
	CommittedFrames  int
	Mispredictions   int
	SquashedFrames   int
	MispredictWaste  simtime.Duration
	PFBSamples       []PFBSample
	SpeculationStops int

	// Busy-time breakdown, used to reproduce observations such as
	// "Interactive spends >80% of busy time at the big cluster's top
	// frequency".
	TotalBusy   simtime.Duration
	BigBusy     simtime.Duration
	MaxPerfBusy simtime.Duration

	// Duration is the simulated session length (first trigger to last
	// frame).
	Duration simtime.Duration

	// Solver aggregates the constrained-optimization work of the session's
	// scheduler: solve count, branch-and-bound nodes, plan-cache hits, and
	// solver wall time (Sec. 6.3 overhead analysis). It is zero for
	// schedulers that never solve (the governors and EBS). All counters
	// except the wall time are deterministic for a deterministic run.
	Solver optimizer.SolverStats
}

// finalize computes the derived aggregates.
func (r *Result) finalize() {
	r.Violations = 0
	for _, o := range r.Outcomes {
		if o.Violated {
			r.Violations++
		}
	}
	if len(r.Outcomes) > 0 {
		r.ViolationRate = float64(r.Violations) / float64(len(r.Outcomes))
		first := r.Outcomes[0].Event.Trigger
		last := r.Outcomes[0].Finish
		for _, o := range r.Outcomes {
			if o.Finish.After(last) {
				last = o.Finish
			}
		}
		r.Duration = last.Sub(first)
	}
	r.TotalEnergyMJ = r.BusyEnergyMJ + r.IdleEnergyMJ
}

// MeanLatency returns the mean user-perceived latency across outcomes.
func (r *Result) MeanLatency() simtime.Duration {
	if len(r.Outcomes) == 0 {
		return 0
	}
	var sum simtime.Duration
	for _, o := range r.Outcomes {
		sum += o.Latency
	}
	return sum / simtime.Duration(len(r.Outcomes))
}

// Policy is the per-scheduler plug-in of the unified engine. The engine
// iterates the trace; for each event it first lets the policy spend the time
// up to the trigger (speculative execution under proactive scheduling, idle
// otherwise), then dispatches the event, then runs post-event bookkeeping
// (re-planning, PFB sampling).
type Policy interface {
	// Name identifies the scheduler in experiment output.
	Name() string
	// Advance consumes simulated time up to `until` (the next trigger).
	Advance(ec *Context, until simtime.Time)
	// Dispatch resolves one triggered event, recording its outcome(s) on the
	// context.
	Dispatch(ec *Context, e *webevent.Event, idx int)
	// AfterDispatch performs post-event bookkeeping.
	AfterDispatch(ec *Context, e *webevent.Event, idx int)
}

// Context is the engine state handed to a Policy: the platform, the trace,
// the result under construction, and the CPU time/energy accounting shared
// by every scheduler.
type Context struct {
	platform *acmp.Platform
	events   []*webevent.Event
	res      *Result

	cpuFree   simtime.Time // instant the main thread becomes free
	accounted simtime.Time // instant up to which energy has been charged
	lastCfg   acmp.Config
}

// Platform returns the hardware model of the run.
func (ec *Context) Platform() *acmp.Platform { return ec.platform }

// Events returns the full trace being replayed.
func (ec *Context) Events() []*webevent.Event { return ec.events }

// chargeIdle charges idle energy from the accounting cursor up to t.
func (ec *Context) chargeIdle(t simtime.Time) {
	if t.After(ec.accounted) {
		ec.res.IdleEnergyMJ += ec.platform.IdleEnergy(t.Sub(ec.accounted))
		ec.accounted = t
	}
}

// chargeBusy charges active energy for an execution slice on cfg ending at
// end, and tracks the busy-time breakdown. It returns the energy charged.
func (ec *Context) chargeBusy(cfg acmp.Config, start, end simtime.Time) float64 {
	if !end.After(start) {
		return 0
	}
	ec.chargeIdle(start)
	d := end.Sub(start)
	e := acmp.EnergyMJ(ec.platform.Power(cfg), d)
	ec.res.BusyEnergyMJ += e
	ec.res.TotalBusy += d
	if cfg.Core == acmp.BigCore {
		ec.res.BigBusy += d
	}
	if cfg == ec.platform.MaxPerformance() {
		ec.res.MaxPerfBusy += d
	}
	if end.After(ec.accounted) {
		ec.accounted = end
	}
	return e
}

// switchTo charges the configuration-switch overhead (if any) starting at t
// and returns the instant execution can begin plus the energy charged.
func (ec *Context) switchTo(cfg acmp.Config, t simtime.Time) (simtime.Time, float64) {
	ov := ec.platform.SwitchOverhead(ec.lastCfg, cfg)
	var e float64
	if ov > 0 {
		e = ec.chargeBusy(cfg, t, t.Add(ov))
		t = t.Add(ov)
	}
	ec.lastCfg = cfg
	return t, e
}

// requantumFunc is consulted after each governor sampling period while an
// event executes and may return an updated configuration.
type requantumFunc func(current acmp.Config, elapsed simtime.Duration) acmp.Config

// execute runs e's workload beginning at start on cfg, re-consulting
// requantum every `quantum` (0 means the configuration is never re-evaluated
// — the event commits to one configuration, as under EBS or a proactive
// plan). It returns the instant pure execution began (after the initial
// switch overhead), the finish time, the final configuration, and the total
// energy charged including switches.
func (ec *Context) execute(e *webevent.Event, cfg acmp.Config, start simtime.Time,
	quantum simtime.Duration, requantum requantumFunc) (execStart, finish simtime.Time, final acmp.Config, energy float64) {

	ec.chargeIdle(start)
	now, energy := ec.switchTo(cfg, start)
	execStart = now

	remaining := 1.0
	for remaining > 1e-12 {
		fullLat := ec.platform.Latency(e.Work, cfg)
		if fullLat <= 0 {
			break
		}
		remTime := simtime.Duration(float64(fullLat) * remaining)
		if remTime <= 0 {
			break
		}
		if quantum > 0 && remTime > quantum {
			energy += ec.chargeBusy(cfg, now, now.Add(quantum))
			now = now.Add(quantum)
			remaining -= float64(quantum) / float64(fullLat)
			if next := requantum(cfg, now.Sub(start)); next != cfg {
				var se float64
				now, se = ec.switchTo(next, now)
				energy += se
				cfg = next
			}
		} else {
			energy += ec.chargeBusy(cfg, now, now.Add(remTime))
			now = now.Add(remTime)
			remaining = 0
		}
	}
	return execStart, now, cfg, energy
}

// addOutcome records the resolution of one event: it derives the
// user-perceived latency and the QoS verdict and appends the outcome.
func (ec *Context) addOutcome(e *webevent.Event, start, finish simtime.Time,
	cfg acmp.Config, energy float64, speculative bool) {

	lat := render.DisplayLatency(e.Trigger, finish)
	ec.res.Outcomes = append(ec.res.Outcomes, Outcome{
		Event:       e,
		Start:       start,
		Finish:      finish,
		Latency:     lat,
		Violated:    lat > e.QoSTarget(),
		Config:      cfg,
		EnergyMJ:    energy,
		Speculative: speculative,
	})
}

// Run replays the events under the policy and returns the aggregated result.
// This is the single event loop behind every scheduler.
func Run(p *acmp.Platform, app string, events []*webevent.Event, pol Policy) *Result {
	res := &Result{Scheduler: pol.Name(), App: app}
	// Every event produces at least one outcome; sizing the slice up front
	// keeps the event loop free of append regrowth. (PFBSamples is sized
	// analogously by the proactive adapter on first use — reactive sessions
	// never sample the PFB and get no buffer.)
	res.Outcomes = make([]Outcome, 0, len(events))
	ec := &Context{platform: p, events: events, res: res}
	for i, e := range events {
		pol.Advance(ec, e.Trigger)
		pol.Dispatch(ec, e, i)
		pol.AfterDispatch(ec, e, i)
	}
	res.finalize()
	if sp, ok := pol.(sched.SolverStatsProvider); ok {
		res.Solver = sp.SolverStats()
	}
	return res
}
