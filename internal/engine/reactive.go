package engine

import (
	"repro/internal/acmp"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

// reactiveAdapter drives a sched.ReactivePolicy on the unified engine:
// events execute only after their trigger, one at a time, with the governor
// re-consulted every sampling quantum.
type reactiveAdapter struct {
	policy sched.ReactivePolicy
}

// RunReactive replays the events under a reactive policy.
func RunReactive(p *acmp.Platform, app string, events []*webevent.Event, policy sched.ReactivePolicy) *Result {
	return Run(p, app, events, &reactiveAdapter{policy: policy})
}

func (a *reactiveAdapter) Name() string { return a.policy.Name() }

// Advance implements Policy: a reactive scheduler leaves the CPU idle until
// the trigger; the idle gap is reported to the governor's utilization
// window.
func (a *reactiveAdapter) Advance(ec *Context, until simtime.Time) {
	if until.After(ec.cpuFree) {
		a.policy.NoteIdle(ec.cpuFree, until)
	}
}

// Dispatch implements Policy: pick the starting configuration, execute with
// periodic re-evaluation, and record the outcome.
func (a *reactiveAdapter) Dispatch(ec *Context, e *webevent.Event, idx int) {
	start := simtime.Max(e.Trigger, ec.cpuFree)
	cfg := a.policy.ConfigAtStart(e, start)
	_, finish, final, energy := ec.execute(e, cfg, start, a.policy.Quantum(),
		func(current acmp.Config, elapsed simtime.Duration) acmp.Config {
			return a.policy.Requantum(e, current, elapsed)
		})
	a.policy.Observe(e, final, start, finish.Sub(start))
	ec.addOutcome(e, start, finish, final, energy, false)
	ec.cpuFree = finish
}

// AfterDispatch implements Policy (no post-event bookkeeping reactively).
func (a *reactiveAdapter) AfterDispatch(ec *Context, e *webevent.Event, idx int) {}
