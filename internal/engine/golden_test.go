package engine

import (
	"math"
	"testing"

	"repro/internal/acmp"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// goldenResult is one Result fingerprint captured from the pre-refactor
// drivers (the separate sim.RunReactive / sim.RunProactive event loops) on
// fixed trace seeds. The unified engine must reproduce every field exactly:
// these values pin the engine to the behaviour the paper figures were
// produced with.
type goldenResult struct {
	tag       string // app/seed
	scheduler string
	app       string
	outcomes  int
	busyMJ    float64
	idleMJ    float64
	wastedMJ  float64
	totalMJ   float64
	violations,
	committed,
	mispredictions,
	squashed int
	mispredictWaste int // simtime ticks
	speculative     int
}

// golden holds the fingerprints recorded by running the old drivers at
// commit ab5b7dc with: apps cnn/ebay/espn, trace seeds 11/5/9, and a PES
// predictor trained with TrainOnSeenApps(3, 400).
var golden = []goldenResult{
	{"cnn/11", "Interactive", "cnn", 54, 35770.0534, 13880.21166, 0, 49650.26506, 15, 0, 0, 0, 0, 0},
	{"cnn/11", "Ondemand", "cnn", 54, 33958.65496, 13594.46116, 0, 47553.11612, 44, 0, 0, 0, 0, 0},
	{"cnn/11", "EBS", "cnn", 54, 30315.57625, 13614.47458, 0, 43930.05083, 6, 0, 0, 0, 0, 0},
	{"cnn/11", "Oracle", "cnn", 54, 14229.94696, 7323.75042, 0, 21553.69738, 0, 53, 0, 0, 0, 53},
	{"cnn/11", "PES", "cnn", 54, 25793.76333, 13846.45626, 0, 39640.21959, 19, 46, 0, 0, 0, 33},
	{"ebay/5", "Interactive", "ebay", 53, 41061.8034, 13883.2477, 0, 54945.0511, 16, 0, 0, 0, 0, 0},
	{"ebay/5", "Ondemand", "ebay", 53, 39170.83123, 13596.25036, 0, 52767.08159, 45, 0, 0, 0, 0, 0},
	{"ebay/5", "EBS", "ebay", 53, 30600.06142, 13228.75414, 0, 43828.81556, 22, 0, 0, 0, 0, 0},
	{"ebay/5", "Oracle", "ebay", 53, 17344.21443, 7666.26658, 0, 25010.48101, 1, 52, 0, 0, 0, 52},
	{"ebay/5", "PES", "ebay", 53, 30676.82045, 12742.59616, 110.1466352, 43419.41661, 11, 45, 4, 6, 396479, 35},
	{"espn/9", "Interactive", "espn", 26, 24845.99662, 14400.02326, 0, 39246.01988, 11, 0, 0, 0, 0, 0},
	{"espn/9", "Ondemand", "espn", 26, 23373.6206, 14191.50124, 0, 37565.12184, 23, 0, 0, 0, 0, 0},
	{"espn/9", "EBS", "espn", 26, 21052.3877, 14181.34816, 0, 35233.73586, 7, 0, 0, 0, 0, 0},
	{"espn/9", "Oracle", "espn", 26, 8686.305848, 8651.39324, 0, 17337.69909, 0, 25, 0, 0, 0, 25},
	{"espn/9", "PES", "espn", 26, 20095.00417, 13016.69208, 53.81461503, 33111.69625, 4, 11, 1, 2, 80571, 10},
}

// approxEq compares against a golden value recorded with %.10g formatting.
func approxEq(got, want float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want) <= 5e-9*math.Abs(want)
}

// TestEngineMatchesPreRefactorDrivers replays the golden sessions on the
// unified engine and checks every recorded Result field.
func TestEngineMatchesPreRefactorDrivers(t *testing.T) {
	p := acmp.Exynos5410()
	learner, _, err := predictor.TrainOnSeenApps(3, 400)
	if err != nil {
		t.Fatal(err)
	}
	sessions := []struct {
		app  string
		seed int64
	}{{"cnn", 11}, {"ebay", 5}, {"espn", 9}}

	results := make(map[string]*Result)
	for _, s := range sessions {
		spec, err := webapp.ByName(s.app)
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.Generate(spec, s.seed, trace.Options{})
		evs, err := tr.Runtime()
		if err != nil {
			t.Fatal(err)
		}
		run := func(name string, r *Result) { results[s.app+"/"+name] = r }
		run("Interactive", RunReactive(p, s.app, evs, sched.NewInteractive(p)))
		run("Ondemand", RunReactive(p, s.app, evs, sched.NewOndemand(p)))
		run("EBS", RunReactive(p, s.app, evs, sched.NewEBS(p)))
		run("Oracle", RunProactive(p, s.app, evs, sched.NewOracle(p, evs)))
		pes := core.NewPES(p, learner, spec, tr.DOMSeed, predictor.DefaultConfig())
		run("PES", RunProactive(p, s.app, evs, pes))
	}

	for _, g := range golden {
		r := results[g.app+"/"+g.scheduler]
		if r == nil {
			t.Fatalf("%s %s: no result", g.tag, g.scheduler)
		}
		if len(r.Outcomes) != g.outcomes {
			t.Errorf("%s %s: outcomes = %d, want %d", g.tag, g.scheduler, len(r.Outcomes), g.outcomes)
		}
		for _, c := range []struct {
			field     string
			got, want float64
		}{
			{"BusyEnergyMJ", r.BusyEnergyMJ, g.busyMJ},
			{"IdleEnergyMJ", r.IdleEnergyMJ, g.idleMJ},
			{"WastedEnergyMJ", r.WastedEnergyMJ, g.wastedMJ},
			{"TotalEnergyMJ", r.TotalEnergyMJ, g.totalMJ},
		} {
			if !approxEq(c.got, c.want) {
				t.Errorf("%s %s: %s = %.10g, want %.10g", g.tag, g.scheduler, c.field, c.got, c.want)
			}
		}
		spec := 0
		for _, o := range r.Outcomes {
			if o.Speculative {
				spec++
			}
		}
		for _, c := range []struct {
			field     string
			got, want int
		}{
			{"Violations", r.Violations, g.violations},
			{"CommittedFrames", r.CommittedFrames, g.committed},
			{"Mispredictions", r.Mispredictions, g.mispredictions},
			{"SquashedFrames", r.SquashedFrames, g.squashed},
			{"MispredictWaste", int(r.MispredictWaste), g.mispredictWaste},
			{"speculative outcomes", spec, g.speculative},
		} {
			if c.got != c.want {
				t.Errorf("%s %s: %s = %d, want %d", g.tag, g.scheduler, c.field, c.got, c.want)
			}
		}
	}
}
