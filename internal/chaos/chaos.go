// Package chaos is a seeded, deterministic fault injector for the PES
// service: it wraps the cluster Transport/Pinger (injected latency, worker
// 5xx/transport errors, torn shard responses, failed health probes) and the
// store's log file (short writes, crash-at-record-N) so the resilience
// machinery — retry budgets, backoff, journal resume, torn-tail recovery —
// is exercised by tests and CI smokes instead of waiting for production to
// exercise it first.
//
// Determinism: every injection decision is drawn from one seeded PRNG, so a
// single-threaded op sequence (a store's write stream, a serial campaign)
// replays identically for the same seed and config. Under concurrency the
// *assignment* of faults to ops depends on scheduling, but the fault
// density and the counters remain reproducible in distribution.
//
// The injector is wired in two places: `pes-serve -chaos SPEC` (hidden flag
// for the CI chaos smoke) wraps the coordinator transport and, with
// `-store`, the store log; tests construct Injectors directly.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config selects which faults to inject and how often. The zero value
// injects nothing.
type Config struct {
	// Seed seeds the injector's PRNG. Zero means seed 1 (the injector is
	// always deterministic; there is no "random seed" mode — pick one).
	Seed int64

	// FaultP is the probability a RunShard call fails with an injected
	// transport error (the coordinator classifies it a worker fault:
	// exclude + re-route). [0,1].
	FaultP float64
	// TornP is the probability a RunShard response is torn: the worker ran
	// the shard, but the response loses its tail results (the coordinator's
	// length check classifies it a worker fault). [0,1].
	TornP float64
	// LatencyP is the probability a RunShard call is delayed by a uniform
	// duration in (0, MaxLatency]. [0,1].
	LatencyP float64
	// MaxLatency bounds injected latency. Defaults to 50ms when LatencyP is
	// set and MaxLatency is not.
	MaxLatency time.Duration
	// PingP is the probability a health probe fails. [0,1].
	PingP float64

	// ShortWriteP is the probability a store log write is cut short: a
	// prefix of the record lands on disk and the write errors — the store
	// sees a failed Put, a reopened log sees a torn tail. [0,1].
	ShortWriteP float64
	// CrashAfter, when > 0, makes the wrapped log file "crash" after that
	// many more record writes: the crashing write persists only a prefix,
	// and every write or sync after it fails. Arm it late with
	// Injector.ArmCrashAfter to skip setup-time writes.
	CrashAfter int64
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool {
	return c.FaultP > 0 || c.TornP > 0 || c.LatencyP > 0 || c.PingP > 0 ||
		c.ShortWriteP > 0 || c.CrashAfter > 0
}

// ParseSpec parses the -chaos flag format: comma-separated key=value pairs
//
//	seed=42,fault=0.05,torn=0.02,latency=0.2,latency_max=20ms,ping=0.1,short_write=0.01,crash_after=40
//
// Unknown keys are an error (a typoed fault that silently injects nothing
// would defeat the point of a chaos smoke).
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: bad spec element %q (want key=value)", part)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "fault":
			cfg.FaultP, err = parseProb(v)
		case "torn":
			cfg.TornP, err = parseProb(v)
		case "latency":
			cfg.LatencyP, err = parseProb(v)
		case "latency_max":
			cfg.MaxLatency, err = time.ParseDuration(v)
		case "ping":
			cfg.PingP, err = parseProb(v)
		case "short_write":
			cfg.ShortWriteP, err = parseProb(v)
		case "crash_after":
			cfg.CrashAfter, err = strconv.ParseInt(v, 10, 64)
		default:
			return cfg, fmt.Errorf("chaos: unknown spec key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("chaos: bad value for %q: %v", k, err)
		}
	}
	return cfg, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

// Stats counts the faults an Injector has inflicted.
type Stats struct {
	// ShardFaults counts RunShard calls failed with an injected error.
	ShardFaults int64 `json:"shard_faults"`
	// TornResponses counts RunShard responses that lost their tail.
	TornResponses int64 `json:"torn_responses"`
	// Delays counts injected latency sleeps.
	Delays int64 `json:"delays"`
	// PingFaults counts failed health probes.
	PingFaults int64 `json:"ping_faults"`
	// ShortWrites counts store log writes cut short.
	ShortWrites int64 `json:"short_writes"`
	// Crashed reports whether the crash-at-record-N trigger has fired.
	Crashed bool `json:"crashed"`
}

// Injector injects the faults a Config selects. One Injector may wrap any
// number of transports and files; they share the PRNG and the counters.
// Safe for concurrent use.
type Injector struct {
	cfg Config

	mu      sync.Mutex
	rng     *rand.Rand
	writes  int64 // record writes seen by wrapped files
	crashAt int64 // writes value at which the crash fires; 0 = disarmed
	crashed bool

	shardFaults   int64
	tornResponses int64
	delays        int64
	pingFaults    int64
	shortWrites   int64
}

// New builds an Injector for cfg. A CrashAfter in cfg arms the crash
// immediately; use ArmCrashAfter to arm it later (e.g. after setup writes).
func New(cfg Config) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if cfg.LatencyP > 0 && cfg.MaxLatency <= 0 {
		cfg.MaxLatency = 50 * time.Millisecond
	}
	in := &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	if cfg.CrashAfter > 0 {
		in.crashAt = cfg.CrashAfter
	}
	return in
}

// ArmCrashAfter makes the wrapped store file crash after n more record
// writes (see Config.CrashAfter). It may be called at any time, including
// after the wrapped file is already in use.
func (in *Injector) ArmCrashAfter(n int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAt = in.writes + n
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return Stats{
		ShardFaults:   in.shardFaults,
		TornResponses: in.tornResponses,
		Delays:        in.delays,
		PingFaults:    in.pingFaults,
		ShortWrites:   in.shortWrites,
		Crashed:       in.crashed,
	}
}

// roll draws one uniform sample in [0,1).
func (in *Injector) roll() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64()
}

// Summary renders the non-zero counters for logs, sorted by name.
func (s Stats) Summary() string {
	parts := map[string]int64{
		"delays":         s.Delays,
		"ping_faults":    s.PingFaults,
		"shard_faults":   s.ShardFaults,
		"short_writes":   s.ShortWrites,
		"torn_responses": s.TornResponses,
	}
	var names []string
	for k, v := range parts {
		if v > 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", k, parts[k])
	}
	if s.Crashed {
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		b.WriteString("crashed=true")
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}
