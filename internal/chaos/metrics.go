package chaos

import "repro/internal/obs"

// RegisterMetrics exposes the injector's fault counters as Prometheus
// series, sampled from the same snapshot Stats() reads. Chaos metrics exist
// so a chaos-smoke run can assert, from the outside, that faults were
// actually injected — a chaos test that injected nothing proves nothing.
func (in *Injector) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("pes_chaos_shard_faults_total",
		"RunShard calls failed with an injected error.",
		func() float64 { return float64(in.Stats().ShardFaults) })
	reg.CounterFunc("pes_chaos_torn_responses_total",
		"RunShard responses that lost their tail.",
		func() float64 { return float64(in.Stats().TornResponses) })
	reg.CounterFunc("pes_chaos_delays_total",
		"Injected latency sleeps.",
		func() float64 { return float64(in.Stats().Delays) })
	reg.CounterFunc("pes_chaos_ping_faults_total",
		"Health probes failed by injection.",
		func() float64 { return float64(in.Stats().PingFaults) })
	reg.CounterFunc("pes_chaos_short_writes_total",
		"Store log writes cut short by injection.",
		func() float64 { return float64(in.Stats().ShortWrites) })
	reg.GaugeFunc("pes_chaos_crashed",
		"1 when the crash-at-record-N trigger has fired.",
		func() float64 {
			if in.Stats().Crashed {
				return 1
			}
			return 0
		})
}
