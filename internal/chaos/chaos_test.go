package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/predictor"
	"repro/internal/sessions"
	"repro/internal/store"
)

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=42,fault=0.05,torn=0.02,latency=0.2,latency_max=20ms,ping=0.1,short_write=0.01,crash_after=40")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	want := Config{Seed: 42, FaultP: 0.05, TornP: 0.02, LatencyP: 0.2,
		MaxLatency: 20 * time.Millisecond, PingP: 0.1, ShortWriteP: 0.01, CrashAfter: 40}
	if cfg != want {
		t.Fatalf("ParseSpec = %+v, want %+v", cfg, want)
	}
	if !cfg.Enabled() {
		t.Error("parsed config not Enabled")
	}
	if c, err := ParseSpec(""); err != nil || c.Enabled() {
		t.Errorf("empty spec: cfg=%+v err=%v", c, err)
	}
	for _, bad := range []string{"nope=1", "fault=1.5", "fault", "latency_max=fast", "seed=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// nopTransport returns empty successful responses sized to the request.
type nopTransport struct{}

func (nopTransport) RunShard(ctx context.Context, worker string, req cluster.ShardRequest) (cluster.ShardResponse, error) {
	return cluster.ShardResponse{Results: make([]*engine.Result, len(req.Sessions))}, nil
}

// TestInjectionDeterministic drives two same-seeded injectors through an
// identical op sequence and asserts the fault pattern replays exactly.
func TestInjectionDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, FaultP: 0.3, TornP: 0.2}
	pattern := func() string {
		tr := New(cfg).WrapTransport(nopTransport{})
		var b bytes.Buffer
		req := cluster.ShardRequest{Sessions: make([]cluster.SessionSpec, 4)}
		for i := 0; i < 200; i++ {
			resp, err := tr.RunShard(context.Background(), "w", req)
			switch {
			case err != nil:
				b.WriteByte('F')
			case len(resp.Results) != len(req.Sessions):
				b.WriteByte('T')
			default:
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := pattern(), pattern()
	if a != b {
		t.Fatalf("same seed, different fault pattern:\n%s\n%s", a, b)
	}
	if !bytes.ContainsAny([]byte(a), "F") || !bytes.ContainsAny([]byte(a), "T") {
		t.Fatalf("pattern injected no faults/tears: %s", a)
	}
}

// TestPingerSurfaceUnchanged asserts wrapping preserves whether the
// transport exposes health probes.
func TestPingerSurfaceUnchanged(t *testing.T) {
	in := New(Config{Seed: 1, PingP: 1})
	if _, ok := in.WrapTransport(nopTransport{}).(cluster.Pinger); ok {
		t.Error("wrapper grew a Pinger the inner transport lacks")
	}
	wrapped := in.WrapTransport(cluster.NewHTTPTransport())
	p, ok := wrapped.(cluster.Pinger)
	if !ok {
		t.Fatal("wrapper lost the inner transport's Pinger")
	}
	if err := p.Ping(context.Background(), "w"); err == nil {
		t.Error("PingP=1 probe did not fail")
	}
	if in.Stats().PingFaults != 1 {
		t.Errorf("PingFaults = %d, want 1", in.Stats().PingFaults)
	}
}

// TestCrashAtRecordNRecovery is the store half of the resilience property
// suite: put records through a chaos-wrapped log, crash at a random record,
// reopen clean, and assert everything before the crash point survived and
// the torn crashing record was truncated away.
func TestCrashAtRecordNRecovery(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)))
			total := 10 + rng.Intn(40)
			crashAt := 1 + rng.Intn(total)
			in := New(Config{Seed: int64(trial)})
			dir := t.TempDir()
			s, err := store.Open(dir, store.WithFileWrapper(in.WrapFile))
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			in.ArmCrashAfter(int64(crashAt))
			wrote := 0
			for i := 0; i < total; i++ {
				if err := s.Put(fmt.Sprintf("k%04d", i), []byte(fmt.Sprintf("v%04d", i))); err != nil {
					break
				}
				wrote++
			}
			if wrote != crashAt-1 {
				t.Fatalf("wrote %d records before the crash, want %d", wrote, crashAt-1)
			}
			if !in.Stats().Crashed {
				t.Fatal("crash never fired")
			}
			// Everything after the crash must fail too.
			if err := s.Put("after", []byte("x")); err == nil {
				t.Fatal("Put succeeded after the crash")
			}
			s.Close()

			// Reopen without chaos: the torn crashing record is truncated,
			// every record before it is intact.
			s2, err := store.Open(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer s2.Close()
			st := s2.Stats()
			if st.Recovered != int64(wrote) {
				t.Fatalf("recovered %d records, want %d (stats %+v)", st.Recovered, wrote, st)
			}
			if st.TornBytes == 0 {
				t.Fatal("no torn tail truncated: the crashing write left nothing?")
			}
			if st.CorruptRecords != 0 {
				t.Fatalf("recovery saw %d corrupt records, want 0 (tears must stay at the tail)", st.CorruptRecords)
			}
			for i := 0; i < wrote; i++ {
				v, ok := s2.Get(fmt.Sprintf("k%04d", i))
				if !ok || !bytes.Equal(v, []byte(fmt.Sprintf("v%04d", i))) {
					t.Fatalf("record %d lost or wrong after recovery", i)
				}
			}
		})
	}
}

// TestShortWritesSurfaceAsPutErrors asserts short writes fail the Put and
// never corrupt what a reopened store recovers.
func TestShortWritesSurfaceAsPutErrors(t *testing.T) {
	in := New(Config{Seed: 3, ShortWriteP: 0.3})
	dir := t.TempDir()
	s, err := store.Open(dir, store.WithFileWrapper(in.WrapFile))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	good := map[string]bool{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%04d", i)
		if err := s.Put(k, []byte("v")); err == nil {
			good[k] = true
		}
	}
	s.Close()
	if in.Stats().ShortWrites == 0 {
		t.Fatal("no short writes injected")
	}
	if len(good) == 100 {
		t.Fatal("every Put succeeded despite short writes")
	}
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	for k := range good {
		if _, ok := s2.Get(k); !ok {
			// A short write at offset X is overwritten by the next record at
			// the same offset, so a *successful* Put survives unless it was
			// the last before close with a torn record after it — impossible
			// here because failed Puts do not advance the log offset.
			t.Fatalf("successfully-Put key %s lost after reopen", k)
		}
	}
}

// chaosSpecs is the small 20-session campaign the cluster tests use.
func chaosSpecs() []cluster.SessionSpec {
	var specs []cluster.SessionSpec
	for _, app := range []string{"cnn", "ebay"} {
		for _, seed := range []int64{1, 2} {
			for _, sched := range sessions.Names() {
				specs = append(specs, cluster.SessionSpec{
					Platform:  "Exynos5410",
					App:       app,
					TraceSeed: seed,
					Scheduler: sched,
					Predictor: predictor.DefaultConfig(),
				})
			}
		}
	}
	return specs
}

// workerTransport routes shards to in-process workers.
type workerTransport struct{ workers map[string]*cluster.Worker }

func (w workerTransport) RunShard(ctx context.Context, worker string, req cluster.ShardRequest) (cluster.ShardResponse, error) {
	return w.workers[worker].RunShard(req)
}

// TestCampaignSurvivesChaosByteIdentical runs the resilience property
// end-to-end: a campaign dispatched through a fault-injecting transport
// (errors, torn responses, latency) must complete with zero client-visible
// failures and results byte-identical to a chaos-free run.
func TestCampaignSurvivesChaosByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a predictor")
	}
	smallCfg := experiments.Config{TrainTracesPerApp: 2, EvalTracesPerApp: 1, Parallel: 2}
	newWorkers := func() map[string]*cluster.Worker {
		ws := map[string]*cluster.Worker{}
		for _, name := range []string{"worker-a:9001", "worker-b:9002"} {
			w, err := cluster.NewWorker(smallCfg)
			if err != nil {
				t.Fatal(err)
			}
			ws[name] = w
		}
		return ws
	}
	specs := chaosSpecs()
	// Small chunks force many dispatches, so every seed injects something.
	// The local spill-over worker matches production wiring (server.New
	// always installs one): when chaos excludes every remote, the campaign
	// degrades to local execution instead of failing.
	runOnce := func(tr cluster.Transport, names []string) []*engine.Result {
		local, err := cluster.NewWorker(smallCfg)
		if err != nil {
			t.Fatal(err)
		}
		coord, err := cluster.New(cluster.Config{Workers: names, Transport: tr, MaxShardSessions: 2, Local: local})
		if err != nil {
			t.Fatal(err)
		}
		out, err := coord.Run(specs, nil)
		if err != nil {
			t.Fatalf("campaign failed (must have zero client-visible failures): %v", err)
		}
		return out
	}
	names := []string{"worker-a:9001", "worker-b:9002"}
	clean := runOnce(workerTransport{newWorkers()}, names)

	for _, seed := range []int64{1, 2, 3} {
		in := New(Config{Seed: seed, FaultP: 0.15, TornP: 0.15, LatencyP: 0.3, MaxLatency: 2 * time.Millisecond})
		chaotic := runOnce(in.WrapTransport(workerTransport{newWorkers()}), names)
		st := in.Stats()
		if st.ShardFaults+st.TornResponses == 0 {
			t.Errorf("seed %d injected nothing; the run proves nothing", seed)
		}
		for i := range clean {
			if chaotic[i] == nil {
				t.Fatalf("seed %d: result %d missing", seed, i)
			}
			if !bytes.Equal(normalize(t, clean[i]), normalize(t, chaotic[i])) {
				t.Fatalf("seed %d: result %d differs from chaos-free run", seed, i)
			}
		}
	}
}

// normalize re-encodes a result with the solver wall time zeroed — the only
// nondeterministic byte of a Result.
func normalize(t *testing.T, res *engine.Result) []byte {
	t.Helper()
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if solver, ok := m["Solver"].(map[string]any); ok {
		solver["wall_ns"] = 0
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
