package chaos

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRegisterMetricsExposesFaultCounters scrapes a fresh injector's
// registry: every fault family must render (all zero — nothing injected
// yet), because the chaos-smoke gate reads these series to prove faults
// actually happened.
func TestRegisterMetricsExposesFaultCounters(t *testing.T) {
	reg := obs.NewRegistry()
	New(Config{Seed: 1}).RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, series := range []string{
		"pes_chaos_shard_faults_total 0",
		"pes_chaos_torn_responses_total 0",
		"pes_chaos_delays_total 0",
		"pes_chaos_ping_faults_total 0",
		"pes_chaos_short_writes_total 0",
		"pes_chaos_crashed 0",
	} {
		if !strings.Contains(body, "\n"+series+"\n") {
			t.Errorf("scrape is missing series %q", series)
		}
	}
}
