package chaos

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
)

// transport injects latency, transport errors and torn responses around an
// inner cluster.Transport.
type transport struct {
	in    *Injector
	inner cluster.Transport
}

// pingerTransport adds the Pinger side when the inner transport has one, so
// wrapping does not grow or shrink the coordinator's health-probe surface.
type pingerTransport struct {
	transport
	pinger cluster.Pinger
}

// WrapTransport returns t with the injector's shard faults in front of it.
// The wrapper implements cluster.Pinger exactly when t does.
func (in *Injector) WrapTransport(t cluster.Transport) cluster.Transport {
	ct := transport{in: in, inner: t}
	if p, ok := t.(cluster.Pinger); ok {
		return &pingerTransport{transport: ct, pinger: p}
	}
	return &ct
}

func (t *transport) RunShard(ctx context.Context, worker string, req cluster.ShardRequest) (cluster.ShardResponse, error) {
	in, cfg := t.in, t.in.cfg
	if cfg.LatencyP > 0 && in.roll() < cfg.LatencyP {
		d := time.Duration(in.roll() * float64(cfg.MaxLatency))
		in.count(&in.delays)
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return cluster.ShardResponse{}, ctx.Err()
		}
	}
	if cfg.FaultP > 0 && in.roll() < cfg.FaultP {
		in.count(&in.shardFaults)
		return cluster.ShardResponse{}, fmt.Errorf("chaos: injected transport fault dispatching to %s", worker)
	}
	resp, err := t.inner.RunShard(ctx, worker, req)
	if err != nil {
		return resp, err
	}
	if cfg.TornP > 0 && len(resp.Results) > 0 && in.roll() < cfg.TornP {
		// Drop the response tail: the coordinator's length check turns this
		// into a worker fault and re-routes the whole chunk.
		in.count(&in.tornResponses)
		resp.Results = resp.Results[:len(resp.Results)/2]
	}
	return resp, err
}

func (t *pingerTransport) Ping(ctx context.Context, worker string) error {
	in, cfg := t.in, t.in.cfg
	if cfg.PingP > 0 && in.roll() < cfg.PingP {
		in.count(&in.pingFaults)
		return fmt.Errorf("chaos: injected probe failure for %s", worker)
	}
	return t.pinger.Ping(ctx, worker)
}

// count bumps one injector counter under the lock.
func (in *Injector) count(c *int64) {
	in.mu.Lock()
	*c++
	in.mu.Unlock()
}
