package chaos

import (
	"fmt"
	"os"

	"repro/internal/store"
)

// ErrCrashed is the error every file operation returns once the
// crash-at-record-N trigger has fired: from the store's point of view the
// process is dead, even though the test harness keeps running.
var ErrCrashed = fmt.Errorf("chaos: injected crash (log file is gone)")

// chaosFile injects short writes and crash-at-record-N around a store log
// file. Reads stay clean — corrupting reads is the store test suite's own
// job (it flips bytes on disk); chaos models the write path dying.
type chaosFile struct {
	in    *Injector
	inner store.File
}

// WrapFile returns f with the injector's write faults in front of it. Pass
// it to store.WithFileWrapper.
func (in *Injector) WrapFile(f store.File) store.File {
	return &chaosFile{in: in, inner: f}
}

func (f *chaosFile) ReadAt(p []byte, off int64) (int, error) {
	return f.inner.ReadAt(p, off)
}

func (f *chaosFile) Stat() (os.FileInfo, error) { return f.inner.Stat() }

// writeFault decides the fate of one record write of n bytes: how many
// bytes actually land (short < n on a short write or the crashing write)
// and whether the op errors. Counting happens here, under one lock
// acquisition, so concurrent writers see a consistent crash point.
func (f *chaosFile) writeFault(n int) (short int, err error) {
	in := f.in
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return 0, ErrCrashed
	}
	in.writes++
	if in.crashAt > 0 && in.writes >= in.crashAt {
		// The crashing write tears: a prefix lands, then the "process" dies.
		in.crashed = true
		return n / 2, ErrCrashed
	}
	if in.cfg.ShortWriteP > 0 && in.rng.Float64() < in.cfg.ShortWriteP {
		in.shortWrites++
		return n / 2, fmt.Errorf("chaos: injected short write (%d of %d bytes)", n/2, n)
	}
	return n, nil
}

func (f *chaosFile) WriteAt(p []byte, off int64) (int, error) {
	short, err := f.writeFault(len(p))
	if err != nil {
		n, _ := f.inner.WriteAt(p[:short], off)
		return n, err
	}
	return f.inner.WriteAt(p, off)
}

func (f *chaosFile) Write(p []byte) (int, error) {
	short, err := f.writeFault(len(p))
	if err != nil {
		n, _ := f.inner.Write(p[:short])
		return n, err
	}
	return f.inner.Write(p)
}

func (f *chaosFile) Truncate(size int64) error {
	if f.dead() {
		return ErrCrashed
	}
	return f.inner.Truncate(size)
}

func (f *chaosFile) Sync() error {
	if f.dead() {
		return ErrCrashed
	}
	return f.inner.Sync()
}

// Close always reaches the real file: the harness needs the fd back even
// after a simulated crash.
func (f *chaosFile) Close() error { return f.inner.Close() }

func (f *chaosFile) dead() bool {
	f.in.mu.Lock()
	defer f.in.mu.Unlock()
	return f.in.crashed
}
