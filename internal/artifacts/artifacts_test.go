package artifacts

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/acmp"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// TestConcurrentBuildsExactlyOnce hammers one store from many goroutines —
// the shape of overlapping campaigns expanding the same (app, seed) cross
// product — and proves every artifact is built exactly once. Run under
// -race this also proves the singleflight construction is sound.
func TestConcurrentBuildsExactlyOnce(t *testing.T) {
	store := NewStore()
	apps := webapp.SeenApps()[:3]
	seeds := []int64{1, 2}
	platform := acmp.Exynos5410()
	platform.Configs()
	lk := LearnerKey{TracesPerApp: 1, CorpusSeed: 77, TrainSeed: 1}

	const campaigns = 8
	var wg sync.WaitGroup
	errs := make(chan error, campaigns)
	for c := 0; c < campaigns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := store.Learner(lk); err != nil {
				errs <- err
				return
			}
			for _, spec := range apps {
				for _, seed := range seeds {
					tr := store.Trace(spec, seed, trace.PurposeEval, trace.Options{})
					if _, err := store.Runtime(tr); err != nil {
						errs <- err
						return
					}
					store.Fingerprint(platform, tr)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := store.Stats()
	wantTraces := int64(len(apps)*len(seeds)) + int64(len(webapp.SeenApps())*lk.TracesPerApp)
	if st.TraceBuilds != wantTraces {
		t.Errorf("TraceBuilds = %d, want %d (each (app, seed, purpose) generated exactly once)", st.TraceBuilds, wantTraces)
	}
	if want := int64(len(apps) * len(seeds)); st.RuntimeBuilds != want {
		t.Errorf("RuntimeBuilds = %d, want %d", st.RuntimeBuilds, want)
	}
	if want := int64(len(apps) * len(seeds)); st.FingerprintBuilds != want {
		t.Errorf("FingerprintBuilds = %d, want %d", st.FingerprintBuilds, want)
	}
	if st.LearnerBuilds != 1 {
		t.Errorf("LearnerBuilds = %d, want 1", st.LearnerBuilds)
	}
	if st.TraceHits == 0 || st.RuntimeHits == 0 || st.LearnerHits == 0 {
		t.Errorf("expected cache hits under %d concurrent campaigns, got %+v", campaigns, st)
	}
}

// TestArtifactsMatchDirectConstruction proves the cached artifacts are
// bit-identical to what the direct (cold) constructors produce.
func TestArtifactsMatchDirectConstruction(t *testing.T) {
	store := NewStore()
	spec := webapp.SeenApps()[0]
	platform := acmp.Exynos5410()

	cachedTrace := store.Trace(spec, 42, trace.PurposeEval, trace.Options{})
	directTrace := trace.Generate(spec, 42, trace.Options{})
	if !reflect.DeepEqual(cachedTrace, directTrace) {
		t.Error("cached trace differs from trace.Generate output")
	}
	if again := store.Trace(spec, 42, trace.PurposeEval, trace.Options{}); again != cachedTrace {
		t.Error("second Trace request returned a different instance")
	}

	cachedEvs, err := store.Runtime(cachedTrace)
	if err != nil {
		t.Fatal(err)
	}
	directEvs, err := directTrace.Runtime()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cachedEvs, directEvs) {
		t.Error("cached runtime events differ from Trace.Runtime output")
	}

	// Fingerprints of identical content must agree across instances and
	// stores (they key the batch memo cache).
	other := NewStore()
	if a, b := store.Fingerprint(platform, cachedTrace), other.Fingerprint(platform, directTrace); a != b {
		t.Errorf("fingerprint mismatch for identical content: %q vs %q", a, b)
	}

	// The corpus assembled from cached traces must equal GenerateCorpus.
	cachedCorpus := store.Corpus(webapp.SeenApps()[:2], 2, 900, trace.PurposeTrain, trace.Options{})
	directCorpus := trace.GenerateCorpus(webapp.SeenApps()[:2], 2, 900, trace.PurposeTrain, trace.Options{})
	if !reflect.DeepEqual(cachedCorpus, directCorpus) {
		t.Error("cached corpus differs from trace.GenerateCorpus output")
	}
}

// TestExternalTracesAreNotRetained guards the store against unbounded
// growth on traces it did not generate: pointer-keyed entries for external
// traces would never be hit again, so Runtime and Fingerprint must compute
// without caching (correctly) instead of inserting one dead entry per call.
func TestExternalTracesAreNotRetained(t *testing.T) {
	store := NewStore()
	spec := webapp.SeenApps()[0]
	platform := acmp.Exynos5410()
	owned := store.Trace(spec, 1, trace.PurposeEval, trace.Options{})

	for i := 0; i < 10; i++ {
		external := trace.Generate(spec, 1, trace.Options{})
		evs, err := store.Runtime(external)
		if err != nil {
			t.Fatal(err)
		}
		if len(evs) != len(external.Events) {
			t.Fatalf("uncached Runtime returned %d events, want %d", len(evs), len(external.Events))
		}
		if fp := store.Fingerprint(platform, external); fp != store.Fingerprint(platform, owned) {
			t.Fatal("uncached fingerprint disagrees with cached one for identical content")
		}
	}
	store.mu.Lock()
	runtimes, fingerprints := len(store.runtimes), len(store.fingerprints)
	store.mu.Unlock()
	if runtimes > 0 || fingerprints > 1 {
		t.Errorf("external traces were retained: %d runtime entries (want 0), %d fingerprint entries (want ≤1)",
			runtimes, fingerprints)
	}
	st := store.Stats()
	if st.RuntimeBuilds != 0 {
		t.Errorf("RuntimeBuilds = %d, want 0 (external parses are not cache builds)", st.RuntimeBuilds)
	}
}

// TestLearnerSharedAcrossEqualKeys proves equal training configurations
// share one model instance while distinct ones do not.
func TestLearnerSharedAcrossEqualKeys(t *testing.T) {
	store := NewStore()
	a, _, err := store.Learner(LearnerKey{TracesPerApp: 1, CorpusSeed: 5, TrainSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := store.Learner(LearnerKey{TracesPerApp: 1, CorpusSeed: 5, TrainSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("equal learner keys returned distinct instances")
	}
	c, _, err := store.Learner(LearnerKey{TracesPerApp: 1, CorpusSeed: 6, TrainSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("distinct learner keys shared one instance")
	}
	if st := store.Stats(); st.LearnerBuilds != 2 {
		t.Errorf("LearnerBuilds = %d, want 2", st.LearnerBuilds)
	}
}

// TestTracePurposeKeysSeparately guards the purpose field's place in the
// trace key: the same (app, seed) requested for training and evaluation
// must not share one (mutable-metadata) instance.
func TestTracePurposeKeysSeparately(t *testing.T) {
	store := NewStore()
	spec := webapp.SeenApps()[0]
	train := store.Trace(spec, 7, trace.PurposeTrain, trace.Options{})
	eval := store.Trace(spec, 7, trace.PurposeEval, trace.Options{})
	if train == eval {
		t.Fatal("train and eval purposes shared one trace instance")
	}
	if train.Purpose != trace.PurposeTrain || eval.Purpose != trace.PurposeEval {
		t.Errorf("purposes = %q/%q, want train/eval", train.Purpose, eval.Purpose)
	}
	for i := range train.Events {
		if !reflect.DeepEqual(train.Events[i], eval.Events[i]) {
			t.Fatal("trace content must not depend on purpose")
		}
	}
}

func ExampleStore_Trace() {
	store := NewStore()
	spec := webapp.SeenApps()[0]
	a := store.Trace(spec, 1, trace.PurposeEval, trace.Options{})
	b := store.Trace(spec, 1, trace.PurposeEval, trace.Options{})
	fmt.Println(a == b, store.Stats().TraceBuilds)
	// Output: true 1
}

// TestTraceLRUBound exercises the trace-cache LRU: the cache honors its
// bound, evicting a trace drops its derived artifacts, and a re-requested
// trace regenerates bit-identically (same fingerprint), so eviction can
// never change a session's memo key or result.
func TestTraceLRUBound(t *testing.T) {
	store := NewStore().WithMaxTraces(2)
	apps := webapp.SeenApps()[:3]
	platform := acmp.Exynos5410()
	platform.Configs()

	first := store.Trace(apps[0], 1, trace.PurposeEval, trace.Options{})
	firstPrint := store.Fingerprint(platform, first)
	store.Trace(apps[1], 1, trace.PurposeEval, trace.Options{})
	store.Trace(apps[2], 1, trace.PurposeEval, trace.Options{})

	st := store.Stats()
	if st.TraceBuilds != 3 || st.TraceEntries != 2 || st.TraceEvictions != 1 {
		t.Fatalf("after 3 builds on a 2-slot cache: %+v", st)
	}
	// The evicted trace's derived entries are gone with it.
	if store.owns(first) {
		t.Error("evicted trace still owned by the store")
	}

	// A consumer still holding the evicted pointer keeps working, uncached.
	if _, err := store.Runtime(first); err != nil {
		t.Fatalf("runtime of evicted trace: %v", err)
	}

	// Re-requesting the evicted key regenerates a bit-identical trace: the
	// content fingerprint — and with it every batch memo key — is unchanged.
	again := store.Trace(apps[0], 1, trace.PurposeEval, trace.Options{})
	if again == first {
		t.Fatal("evicted trace was not regenerated")
	}
	if got := store.Fingerprint(platform, again); got != firstPrint {
		t.Errorf("regenerated trace fingerprint %s != original %s", got, firstPrint)
	}
	if st := store.Stats(); st.TraceBuilds != 4 || st.TraceEvictions != 2 {
		t.Errorf("after regeneration: %+v, want 4 builds / 2 evictions", st)
	}
}

// TestTraceLRUConcurrent hammers a tightly bounded store from many
// goroutines; under -race this exercises eviction racing singleflight
// construction, and every request must still yield a usable trace.
func TestTraceLRUConcurrent(t *testing.T) {
	store := NewStore().WithMaxTraces(2)
	apps := webapp.SeenApps()[:4]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				tr := store.Trace(apps[i%len(apps)], 1, trace.PurposeEval, trace.Options{})
				if tr == nil || len(tr.Events) == 0 {
					t.Error("bounded store returned an unusable trace")
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := store.Stats(); st.TraceEntries > 2 {
		t.Errorf("trace cache grew past its bound: %+v", st)
	}
}
