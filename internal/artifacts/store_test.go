package artifacts

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/acmp"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/webapp"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	ps, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Close() })
	return ps
}

// TestPersistentTraceRoundTrip pins the keying-preserving property the whole
// store design rests on: a trace loaded from the persistent store is deeply
// equal to the generated one and produces the identical platform/trace
// fingerprint — so batch memo keys match across restarts.
func TestPersistentTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec, err := webapp.ByName("cnn")
	if err != nil {
		t.Fatal(err)
	}
	p := acmp.Exynos5410()

	cold := NewStore().WithPersistent(openStore(t, dir))
	trCold := cold.Trace(spec, 42, trace.PurposeEval, trace.Options{})
	fpCold := cold.Fingerprint(p, trCold)
	if st := cold.Stats(); st.TraceBuilds != 1 || st.TraceStoreHits != 0 {
		t.Fatalf("cold stats: %+v", st)
	}

	// "Restart": a fresh artifact store on a fresh handle to the same dir.
	warm := NewStore().WithPersistent(openStore(t, dir))
	trWarm := warm.Trace(spec, 42, trace.PurposeEval, trace.Options{})
	if st := warm.Stats(); st.TraceBuilds != 0 || st.TraceStoreHits != 1 {
		t.Fatalf("warm stats: %+v", st)
	}
	if !reflect.DeepEqual(trCold, trWarm) {
		t.Fatal("loaded trace differs from generated trace")
	}
	if fpWarm := warm.Fingerprint(p, trWarm); fpWarm != fpCold {
		t.Fatalf("fingerprint changed across restart: %s != %s", fpWarm, fpCold)
	}
	// The loaded trace is owned: its derivations are memoized like a
	// generated one's.
	if !warm.owns(trWarm) {
		t.Error("store-loaded trace not owned by the artifact store")
	}
}

// TestPersistentLearnerTrainedOnce: the second artifact store sharing the
// directory loads the trained model instead of re-running SGD, and the
// loaded learner predicts from bit-identical weights.
func TestPersistentLearnerTrainedOnce(t *testing.T) {
	dir := t.TempDir()
	k := LearnerKey{TracesPerApp: 1, CorpusSeed: 1, TrainSeed: 1}

	cold := NewStore().WithPersistent(openStore(t, dir))
	lCold, corpusCold, err := cold.Learner(k)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.LearnerBuilds != 1 || st.LearnerStoreHits != 0 {
		t.Fatalf("cold stats: %+v", st)
	}

	warm := NewStore().WithPersistent(openStore(t, dir))
	lWarm, corpusWarm, err := warm.Learner(k)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.LearnerBuilds != 0 {
		t.Fatalf("warm store re-trained: %+v", st)
	}
	if st.LearnerStoreHits != 1 {
		t.Fatalf("LearnerStoreHits = %d, want 1", st.LearnerStoreHits)
	}
	if !reflect.DeepEqual(lCold.Model(), lWarm.Model()) {
		t.Fatal("loaded model weights differ from trained model")
	}
	// The corpus still comes back (and through the trace store, warm).
	if len(corpusWarm) != len(corpusCold) {
		t.Fatalf("corpus sizes differ: %d != %d", len(corpusWarm), len(corpusCold))
	}
	if !reflect.DeepEqual(corpusCold, corpusWarm) {
		t.Fatal("warm corpus differs from cold corpus")
	}
}

// TestConcurrentStoresShareOneTraining: N artifact stores sharing one
// persistent store and racing on the same learner key run SGD exactly once
// between them (persistent-store singleflight). Run under -race.
func TestConcurrentStoresShareOneTraining(t *testing.T) {
	ps := openStore(t, t.TempDir())
	k := LearnerKey{TracesPerApp: 1, CorpusSeed: 2, TrainSeed: 3}
	const n = 4
	stores := make([]*Store, n)
	for i := range stores {
		stores[i] = NewStore().WithPersistent(ps)
	}
	var wg sync.WaitGroup
	models := make([]any, n)
	for i, s := range stores {
		wg.Add(1)
		go func(i int, s *Store) {
			defer wg.Done()
			l, _, err := s.Learner(k)
			if err != nil {
				t.Errorf("store %d: %v", i, err)
				return
			}
			models[i] = l.Model()
		}(i, s)
	}
	wg.Wait()
	var builds, loads int64
	for _, s := range stores {
		st := s.Stats()
		builds += st.LearnerBuilds
		loads += st.LearnerStoreHits
	}
	if builds != 1 {
		t.Fatalf("SGD ran %d times across %d stores, want 1", builds, n)
	}
	// The builder's siblings either blocked on the shared build (a shared
	// singleflight result, not counted as a store hit) or loaded from disk.
	if builds+loads > n {
		t.Fatalf("accounting off: %d builds + %d loads > %d requests", builds, loads, n)
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(models[0], models[i]) {
			t.Fatalf("store %d got a different model", i)
		}
	}
}
