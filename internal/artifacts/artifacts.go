// Package artifacts is the shared session-artifact cache: the immutable
// inputs that every simulation session of a campaign is built from —
// generated traces, their runtime event lists, platform/trace fingerprints,
// and offline-trained sequence learners — built exactly once per process and
// shared by every consumer.
//
// A campaign is the cross product apps × trace seeds × schedulers (times
// sweep configurations); before this cache, each of the ~6 schedulers
// regenerated the identical trace, re-parsed its runtime events, re-hashed
// its fingerprint and (per harness) re-trained the identical learner for
// every (app, seed) pair it touched. The batch runner's memo cache
// deduplicates the *results* of identical sessions; this package
// deduplicates the *inputs* of distinct ones, which is what gates
// unique-session throughput once the solver is fast (see BENCH_pr4.json).
//
// Every artifact is immutable after construction:
//
//   - traces are plain data and no consumer mutates events;
//   - runtime event instances are read-only by engine convention (outcomes
//     reference them, nothing writes them);
//   - fingerprints are strings;
//   - trained learners are read-only at prediction time (each predictor owns
//     its own scratch buffers).
//
// Construction is singleflight: concurrent campaigns requesting the same
// artifact block on one build and share the result. The cache is unbounded
// and process-lived, like the batch memo cache it feeds: artifacts are a few
// kilobytes each and bounded by the distinct (app, seed) pairs and training
// configurations a process touches. The per-trace derivations (runtime
// events, fingerprints) are memoized only for traces the store itself
// generated — pointer-keyed entries for externally built traces would never
// be hit again and would grow without bound, so they are computed without
// caching instead.
//
// The DOM page-tree half of session setup is cached one layer down, in
// package webapp (every webapp.NewSession clones cached master pages); its
// counters are surfaced through Stats here so one snapshot covers the whole
// artifact layer.
package artifacts

import (
	"container/list"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/acmp"
	"repro/internal/mlr"
	"repro/internal/predictor"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/webapp"
	"repro/internal/webevent"
)

// Default is the process-wide store shared by the experiment harness, the
// campaign server, and cmd/pes-bench. Sessions built through
// internal/sessions use it unless a spec names another store.
var Default = NewStore()

// traceKey identifies one generated trace.
type traceKey struct {
	app     string
	seed    int64
	purpose string
	opts    trace.Options
}

// LearnerKey identifies one offline training run: the seen-application
// corpus shape plus the SGD seed. Equal keys produce bit-identical models
// (training is deterministic), so every harness with the same configuration
// shares one trained learner.
type LearnerKey struct {
	// TracesPerApp is the number of training traces per seen application.
	TracesPerApp int
	// CorpusSeed is the base seed of the training corpus.
	CorpusSeed int64
	// TrainSeed seeds the SGD shuffling (mlr.TrainConfig.Seed).
	TrainSeed int64
}

// corpusKey identifies one generated corpus slice.
type corpusKey struct {
	apps         string // "|"-joined app names
	tracesPerApp int
	baseSeed     int64
	purpose      string
	opts         trace.Options
}

// Singleflight slots. The first requester builds inside the Once; everyone
// else blocks on it and shares the built value.
type (
	traceEntry struct {
		once sync.Once
		tr   *trace.Trace
		// elem is the entry's LRU slot, linked (under Store.mu) once the
		// trace is built; in-flight entries are never evicted.
		elem *list.Element
	}
	runtimeEntry struct {
		once sync.Once
		evs  []*webevent.Event
		err  error
	}
	fingerprintEntry struct {
		once sync.Once
		hash string // content hash of the trace half of a fingerprint
	}
	learnerEntry struct {
		once    sync.Once
		learner *predictor.SequenceLearner
		corpus  trace.Corpus
		err     error
	}
	corpusEntry struct {
		once   sync.Once
		corpus trace.Corpus
	}
)

// Stats snapshots the store's build/hit counters (plus the process-wide
// page-tree cache of package webapp). A build is one artifact constructed; a
// hit is a request answered by an artifact that another request had already
// begun building.
type Stats struct {
	TraceBuilds       int64 `json:"trace_builds"`
	TraceHits         int64 `json:"trace_hits"`
	RuntimeBuilds     int64 `json:"runtime_builds"`
	RuntimeHits       int64 `json:"runtime_hits"`
	FingerprintBuilds int64 `json:"fingerprint_builds"`
	FingerprintHits   int64 `json:"fingerprint_hits"`
	LearnerBuilds     int64 `json:"learner_builds"`
	LearnerHits       int64 `json:"learner_hits"`
	// TraceEntries is the number of traces currently retained;
	// TraceEvictions counts traces dropped by the LRU bound (zero on
	// unbounded stores). Evicting a trace also drops its derived runtime
	// events and fingerprint; regeneration is deterministic, so eviction
	// never changes an artifact's content, only whether it is rebuilt.
	TraceEntries   int64 `json:"trace_entries"`
	TraceEvictions int64 `json:"trace_evictions"`
	// TraceStoreHits and LearnerStoreHits count artifacts loaded from the
	// persistent store instead of regenerated/retrained (zero when none is
	// attached). A learner store hit skips the SGD training entirely —
	// usually the single most expensive artifact build in a process's life.
	TraceStoreHits   int64 `json:"trace_store_hits"`
	LearnerStoreHits int64 `json:"learner_store_hits"`
	// PageBuilds and PageHits are the process-wide DOM page-tree cache
	// counters (webapp.PageCacheStats); they are global, not per store.
	PageBuilds int64 `json:"page_builds"`
	PageHits   int64 `json:"page_hits"`
}

// Store is one artifact cache. All methods are safe for concurrent use.
type Store struct {
	mu           sync.Mutex
	traces       map[traceKey]*traceEntry
	owned        map[*trace.Trace]bool // traces this store generated
	runtimes     map[*trace.Trace]*runtimeEntry
	fingerprints map[*trace.Trace]*fingerprintEntry
	learners     map[LearnerKey]*learnerEntry
	corpora      map[corpusKey]*corpusEntry
	maxTraces    int        // 0 = unbounded
	traceLRU     *list.List // completed trace keys, most recently used first
	persist      *store.Store

	traceBuilds, traceHits             atomic.Int64
	runtimeBuilds, runtimeHits         atomic.Int64
	fingerprintBuilds, fingerprintHits atomic.Int64
	learnerBuilds, learnerHits         atomic.Int64
	traceEvictions                     atomic.Int64
	traceStoreHits, learnerStoreHits   atomic.Int64
}

// NewStore creates an empty artifact store. Most callers want Default; a
// private store only makes sense for isolation in tests and cold-path
// benchmarks.
func NewStore() *Store {
	return &Store{
		traces:       make(map[traceKey]*traceEntry),
		owned:        make(map[*trace.Trace]bool),
		runtimes:     make(map[*trace.Trace]*runtimeEntry),
		fingerprints: make(map[*trace.Trace]*fingerprintEntry),
		learners:     make(map[LearnerKey]*learnerEntry),
		corpora:      make(map[corpusKey]*corpusEntry),
		traceLRU:     list.New(),
	}
}

// WithMaxTraces bounds the per-trace cache to at most n generated traces,
// evicting least-recently-used ones (together with their derived runtime
// events and fingerprints) beyond it; n <= 0 keeps the cache unbounded (the
// default). Learners and corpora are never evicted — they are bounded by
// the handful of training configurations a process touches. It returns the
// store for chaining. The write is synchronized (a harness may bound the
// process-wide Default while other consumers run), but the bound only
// applies to traces completed after it is set.
func (s *Store) WithMaxTraces(n int) *Store {
	s.mu.Lock()
	s.maxTraces = n
	s.mu.Unlock()
	return s
}

// WithPersistent layers a persistent content-addressed store under the
// in-memory caches: traces and trained learners are written through on
// first build and loaded back — skipping generation and SGD training — in
// later processes (or sibling stores) sharing the directory. Runtime events,
// fingerprints and corpora are cheap derivations and stay memory-only. The
// persistent store's singleflight keeps builds exactly-once even across
// several artifact stores sharing it. Set before the store is shared across
// goroutines; ps may be nil (no persistence, the default). It returns the
// store for chaining.
func (s *Store) WithPersistent(ps *store.Store) *Store {
	s.persist = ps
	return s
}

// owns reports whether the store generated the trace (and thus keeps its
// derived artifacts).
func (s *Store) owns(tr *trace.Trace) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.owned[tr]
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	pageBuilds, pageHits := webapp.PageCacheStats()
	s.mu.Lock()
	entries := int64(len(s.traces))
	s.mu.Unlock()
	return Stats{
		TraceBuilds:       s.traceBuilds.Load(),
		TraceHits:         s.traceHits.Load(),
		RuntimeBuilds:     s.runtimeBuilds.Load(),
		RuntimeHits:       s.runtimeHits.Load(),
		FingerprintBuilds: s.fingerprintBuilds.Load(),
		FingerprintHits:   s.fingerprintHits.Load(),
		LearnerBuilds:     s.learnerBuilds.Load(),
		LearnerHits:       s.learnerHits.Load(),
		TraceEntries:      entries,
		TraceEvictions:    s.traceEvictions.Load(),
		TraceStoreHits:    s.traceStoreHits.Load(),
		LearnerStoreHits:  s.learnerStoreHits.Load(),
		PageBuilds:        pageBuilds,
		PageHits:          pageHits,
	}
}

// entryLocked returns m[k], creating it with mk on first request, and
// reports whether the entry already existed. Generics keep the five
// singleflight maps on one code path.
func entryLocked[K comparable, E any](mu *sync.Mutex, m map[K]*E, k K, mk func() *E) (*E, bool) {
	mu.Lock()
	defer mu.Unlock()
	if e, ok := m[k]; ok {
		return e, true
	}
	e := mk()
	m[k] = e
	return e, false
}

// Trace returns the deterministic trace for (application, seed, purpose,
// options), generating it on first request. The returned trace is shared;
// callers must not mutate it.
func (s *Store) Trace(spec *webapp.Spec, seed int64, purpose string, opts trace.Options) *trace.Trace {
	k := traceKey{app: spec.Name, seed: seed, purpose: purpose, opts: opts}
	e, hit := entryLocked(&s.mu, s.traces, k, func() *traceEntry { return &traceEntry{} })
	if hit {
		s.traceHits.Add(1)
	}
	e.once.Do(func() {
		e.tr = s.buildTrace(spec, seed, purpose, opts)
		s.mu.Lock()
		s.owned[e.tr] = true
		s.mu.Unlock()
	})
	s.touchTrace(k, e)
	return e.tr
}

// buildTrace resolves a trace-cache miss: plain generation without a
// persistent store, get-or-build through it otherwise. A loaded trace is
// bit-equivalent to a generated one (trace.Trace round-trips through JSON
// exactly, floats included), so fingerprints — and through them the batch
// memo keys — are identical either way.
func (s *Store) buildTrace(spec *webapp.Spec, seed int64, purpose string, opts trace.Options) *trace.Trace {
	generate := func() *trace.Trace {
		s.traceBuilds.Add(1)
		tr := trace.Generate(spec, seed, opts)
		tr.Purpose = purpose
		return tr
	}
	if s.persist == nil {
		return generate()
	}
	key := fmt.Sprintf("trace|%s|%d|%s|%+v", spec.Name, seed, purpose, opts)
	var built *trace.Trace
	val, _, err := s.persist.GetOrBuild(key, func() ([]byte, error) {
		built = generate()
		return json.Marshal(built)
	})
	if built != nil {
		return built
	}
	if err == nil {
		tr := new(trace.Trace)
		if err := json.Unmarshal(val, tr); err == nil {
			s.traceStoreHits.Add(1)
			return tr
		}
	}
	// Store trouble (encode/decode mismatch from a foreign writer) never
	// fails a trace request — generation is always available.
	return generate()
}

// touchTrace marks a trace entry most-recently-used once it is built and
// applies the LRU bound. Evicting a trace drops its derived runtime-event
// and fingerprint entries too; consumers already holding the trace pointer
// keep working (the trace itself is immutable), and a later request for the
// same key regenerates a bit-identical trace.
func (s *Store) touchTrace(k traceKey, e *traceEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.elem != nil {
		s.traceLRU.MoveToFront(e.elem)
		return
	}
	if s.traces[k] != e {
		return // evicted while (or before) completing
	}
	e.elem = s.traceLRU.PushFront(k)
	if s.maxTraces <= 0 {
		return
	}
	for len(s.traces) > s.maxTraces {
		back := s.traceLRU.Back()
		if back == nil {
			break // only in-flight entries remain
		}
		old := back.Value.(traceKey)
		if oe, ok := s.traces[old]; ok && oe.elem == back {
			delete(s.traces, old)
			delete(s.owned, oe.tr)
			delete(s.runtimes, oe.tr)
			delete(s.fingerprints, oe.tr)
			s.traceEvictions.Add(1)
		}
		s.traceLRU.Remove(back)
	}
}

// Runtime returns the runtime event instances of a trace, parsing them on
// first request. Runtime events are immutable by engine convention, so one
// list serves every scheduler replaying the trace. Only traces generated by
// this store are memoized (their pointers are the canonical instances);
// external traces are parsed per call, since a pointer-keyed entry for them
// would never be hit again.
func (s *Store) Runtime(tr *trace.Trace) ([]*webevent.Event, error) {
	if !s.owns(tr) {
		return tr.Runtime()
	}
	e, hit := entryLocked(&s.mu, s.runtimes, tr, func() *runtimeEntry { return &runtimeEntry{} })
	if hit {
		s.runtimeHits.Add(1)
	}
	e.once.Do(func() {
		s.runtimeBuilds.Add(1)
		e.evs, e.err = tr.Runtime()
	})
	return e.evs, e.err
}

// Fingerprint hashes the platform parameters and the full trace content.
// (Platform.Name, App, Seed) alone do not pin the simulation inputs: a
// caller may tweak an exported platform field without renaming it, or load
// or edit a trace whose events differ from the generated ones. Only the
// exported, pointer-free fields are hashed (fmt prints them
// deterministically); the platform's unexported lazily-built config cache
// stays out of the hash.
//
// The expensive half — walking every trace event — is memoized per
// store-generated trace (external traces are hashed per call, see Runtime);
// the handful of platform fields are hashed fresh on every call, so no
// per-platform-instance state accumulates no matter how many Platform
// values a caller constructs. The memo assumes the trace is immutable once
// sessions are being built from it — the same assumption every other shared
// artifact makes.
func (s *Store) Fingerprint(p *acmp.Platform, tr *trace.Trace) string {
	var traceHash string
	if !s.owns(tr) {
		traceHash = computeTraceHash(tr)
	} else {
		e, hit := entryLocked(&s.mu, s.fingerprints, tr, func() *fingerprintEntry { return &fingerprintEntry{} })
		if hit {
			s.fingerprintHits.Add(1)
		}
		e.once.Do(func() {
			s.fingerprintBuilds.Add(1)
			e.hash = computeTraceHash(tr)
		})
		traceHash = e.hash
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%+v|%+v|%d|%d|%g|%s",
		p.Name, p.Little, p.Big, p.DVFSLatency, p.MigrationLatency, p.IdlePowerMW, traceHash)
	return fmt.Sprintf("%016x", h.Sum64())
}

// computeTraceHash hashes the trace half of a fingerprint: the DOM seed and
// every event.
func computeTraceHash(tr *trace.Trace) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|", tr.DOMSeed, len(tr.Events))
	for i := range tr.Events {
		fmt.Fprintf(h, "%+v;", tr.Events[i])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Corpus returns the deterministic corpus for the application set, sharing
// each trace with the per-trace cache (a corpus slice is assembled once per
// distinct shape). It mirrors trace.GenerateCorpus exactly.
func (s *Store) Corpus(apps []*webapp.Spec, tracesPerApp int, baseSeed int64, purpose string, opts trace.Options) trace.Corpus {
	names := ""
	for i, spec := range apps {
		if i > 0 {
			names += "|"
		}
		names += spec.Name
	}
	k := corpusKey{apps: names, tracesPerApp: tracesPerApp, baseSeed: baseSeed, purpose: purpose, opts: opts}
	e, _ := entryLocked(&s.mu, s.corpora, k, func() *corpusEntry { return &corpusEntry{} })
	e.once.Do(func() {
		out := make(trace.Corpus, 0, len(apps)*tracesPerApp)
		for ai, spec := range apps {
			for u := 0; u < tracesPerApp; u++ {
				out = append(out, s.Trace(spec, trace.CorpusSeed(baseSeed, ai, u), purpose, opts))
			}
		}
		e.corpus = out
	})
	return e.corpus
}

// Learner returns the trained sequence learner for the key (and the training
// corpus it was fitted on), training it on first request. Training is
// deterministic, so every harness configured identically shares one model —
// and, through the session memo key's learner identity, one batch cache
// slot per session.
func (s *Store) Learner(k LearnerKey) (*predictor.SequenceLearner, trace.Corpus, error) {
	e, hit := entryLocked(&s.mu, s.learners, k, func() *learnerEntry { return &learnerEntry{} })
	if hit {
		s.learnerHits.Add(1)
	}
	e.once.Do(func() {
		// The corpus is needed in both paths: a freshly trained learner fits
		// on it, and a store-loaded one is still returned alongside it (the
		// harness replays training traces for its own reporting). Corpus
		// traces go through the per-trace cache, so a persistent store warms
		// them too.
		corpus := s.Corpus(webapp.SeenApps(), k.TracesPerApp, k.CorpusSeed, trace.PurposeTrain, trace.Options{})
		train := func() (*predictor.SequenceLearner, error) {
			s.learnerBuilds.Add(1)
			learner := predictor.NewSequenceLearner()
			if err := learner.Train(corpus, mlr.TrainConfig{Seed: k.TrainSeed}); err != nil {
				return nil, fmt.Errorf("artifacts: training %+v: %w", k, err)
			}
			return learner, nil
		}
		if s.persist == nil {
			e.learner, e.err = train()
			e.corpus = corpus
			return
		}
		// The key is configuration-addressed, not content-addressed — safe
		// because training is deterministic: equal configurations produce
		// bit-identical models, which is the same contract LearnerKey
		// already guarantees in memory.
		key := fmt.Sprintf("learner|tpa=%d|corpus=%d|train=%d", k.TracesPerApp, k.CorpusSeed, k.TrainSeed)
		var built *predictor.SequenceLearner
		val, _, err := s.persist.GetOrBuild(key, func() ([]byte, error) {
			l, err := train()
			if err != nil {
				return nil, err
			}
			built = l
			return json.Marshal(l.Model())
		})
		if built != nil {
			e.learner, e.corpus = built, corpus
			return
		}
		if err != nil {
			e.err = err
			return
		}
		m := new(mlr.Model)
		if err := json.Unmarshal(val, m); err == nil {
			if l, lerr := predictor.LearnerFromModel(m); lerr == nil {
				s.learnerStoreHits.Add(1)
				e.learner, e.corpus = l, corpus
				return
			}
		}
		// A stored model that doesn't decode or doesn't match the current
		// feature shape (written by an older build) falls back to training.
		e.learner, e.err = train()
		e.corpus = corpus
	})
	return e.learner, e.corpus, e.err
}
