package batch

import (
	"runtime"
	"testing"

	"repro/internal/acmp"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// benchSessions builds one batch of unique full-length sessions: every seen
// application under the three reactive schedulers.
func benchSessions(b *testing.B) []Session {
	b.Helper()
	p := acmp.Exynos5410()
	var sessions []Session
	for _, spec := range webapp.SeenApps() {
		for _, schedName := range []string{"Interactive", "Ondemand", "EBS"} {
			spec, schedName := spec, schedName
			seed := int64(100 + len(sessions))
			sessions = append(sessions, Session{
				Key: Key{Platform: p.Name, App: spec.Name, TraceSeed: seed, Scheduler: schedName},
				Run: func() (*engine.Result, error) {
					tr := trace.Generate(spec, seed, trace.Options{})
					evs, err := tr.Runtime()
					if err != nil {
						return nil, err
					}
					var pol sched.ReactivePolicy
					switch schedName {
					case "Interactive":
						pol = sched.NewInteractive(p)
					case "Ondemand":
						pol = sched.NewOndemand(p)
					default:
						pol = sched.NewEBS(p)
					}
					return engine.RunReactive(p, spec.Name, evs, pol), nil
				},
			})
		}
	}
	return sessions
}

// runBatch measures one cold batch (fresh runner each iteration so the memo
// cache does not hide the simulation cost).
func runBatch(b *testing.B, workers int) {
	b.Helper()
	sessions := benchSessions(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := NewRunner(workers).Run(sessions)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(sessions) {
			b.Fatalf("got %d results", len(out))
		}
	}
	b.ReportMetric(float64(len(sessions)), "sessions/op")
}

// BenchmarkBatchSerial is the pre-refactor baseline: one session at a time.
func BenchmarkBatchSerial(b *testing.B) { runBatch(b, 1) }

// BenchmarkBatchParallel runs the same batch on a NumCPU worker pool. On a
// 4+ core machine the speedup over BenchmarkBatchSerial should be ≥ 3×
// (BENCH snapshots track the ratio).
func BenchmarkBatchParallel(b *testing.B) { runBatch(b, runtime.NumCPU()) }

// BenchmarkBatchMemoized measures the steady-state cost of re-requesting an
// already-simulated batch: pure cache hits.
func BenchmarkBatchMemoized(b *testing.B) {
	sessions := benchSessions(b)
	r := NewRunner(runtime.NumCPU())
	if _, err := r.Run(sessions); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(sessions); err != nil {
			b.Fatal(err)
		}
	}
}
