package batch

import (
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
)

var errTest = errors.New("session build failed")

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	ps, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Close() })
	return ps
}

// countedSession wraps ebsSession with a run counter so tests can assert
// exactly how many simulations executed.
func countedSession(t testing.TB, app string, seed int64, runs *atomic.Int64) Session {
	s := ebsSession(t, app, seed)
	run := s.Run
	s.Run = func() (*engine.Result, error) {
		runs.Add(1)
		return run()
	}
	return s
}

// sameJSON reports whether two results serialize identically — the byte-level
// equality the server's warm-start guarantee is built on.
func sameJSON(t *testing.T, a, b *engine.Result) bool {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(ja) == string(jb)
}

// TestRunnerStoreWarmStart is the restart story at the batch layer: a second
// runner opened on the same store dir serves every session from disk —
// zero simulations — with results JSON-identical to the cold run's.
func TestRunnerStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	var coldRuns atomic.Int64
	var sessions []Session
	for seed := int64(0); seed < 4; seed++ {
		sessions = append(sessions, countedSession(t, "cnn", seed, &coldRuns))
	}

	cold := NewRunner(2).WithStore(openStore(t, dir))
	coldOut, err := cold.Run(sessions)
	if err != nil {
		t.Fatal(err)
	}
	if got := coldRuns.Load(); got != 4 {
		t.Fatalf("cold run simulated %d times, want 4", got)
	}
	if st := cold.Stats(); st.UniqueRuns != 4 || st.StoreHits != 0 {
		t.Fatalf("cold stats: %+v", st)
	}
	if err := cold.PersistentStore().Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh runner, fresh store handle, same directory.
	var warmRuns atomic.Int64
	var warmSessions []Session
	for seed := int64(0); seed < 4; seed++ {
		warmSessions = append(warmSessions, countedSession(t, "cnn", seed, &warmRuns))
	}
	warm := NewRunner(2).WithStore(openStore(t, dir))
	warmOut, err := warm.Run(warmSessions)
	if err != nil {
		t.Fatal(err)
	}
	if got := warmRuns.Load(); got != 0 {
		t.Fatalf("warm run re-simulated %d sessions", got)
	}
	st := warm.Stats()
	if st.UniqueRuns != 0 || st.StoreHits != 4 {
		t.Fatalf("warm stats: %+v", st)
	}
	if st.Store == nil || st.Store.Hits != 4 {
		t.Fatalf("store stats not surfaced: %+v", st.Store)
	}
	for i := range warmOut {
		if !sameJSON(t, coldOut[i], warmOut[i]) {
			t.Errorf("session %d: warm result differs from cold", i)
		}
		if !reflect.DeepEqual(coldOut[i], warmOut[i]) {
			t.Errorf("session %d: decoded result not deeply equal", i)
		}
	}
}

// TestTwoRunnersSharedStoreBuildOnce pins the cross-runner exactly-once
// guarantee: two Runners sharing one store, hammered concurrently with the
// same keys, execute each simulation exactly once between them (store-level
// singleflight). Run under -race.
func TestTwoRunnersSharedStoreBuildOnce(t *testing.T) {
	ps := openStore(t, t.TempDir())
	a := NewRunner(4).WithStore(ps)
	b := NewRunner(4).WithStore(ps)

	var runs atomic.Int64
	const uniqueKeys = 3
	batchFor := func() []Session {
		var out []Session
		for i := 0; i < 12; i++ {
			out = append(out, countedSession(t, "cnn", int64(i%uniqueKeys), &runs))
		}
		return out
	}
	var wg sync.WaitGroup
	outs := make([][]*engine.Result, 2)
	for i, r := range []*Runner{a, b} {
		wg.Add(1)
		go func(i int, r *Runner) {
			defer wg.Done()
			out, err := r.Run(batchFor())
			if err != nil {
				t.Errorf("runner %d: %v", i, err)
				return
			}
			outs[i] = out
		}(i, r)
	}
	wg.Wait()
	if got := runs.Load(); got != uniqueKeys {
		t.Fatalf("simulated %d times across two runners, want %d", got, uniqueKeys)
	}
	sta, stb := a.Stats(), b.Stats()
	if sta.UniqueRuns+stb.UniqueRuns != uniqueKeys {
		t.Errorf("unique runs split %d + %d, want total %d", sta.UniqueRuns, stb.UniqueRuns, uniqueKeys)
	}
	// Sessions not simulated locally were served from the shared store.
	if sta.StoreHits+stb.StoreHits+sta.UniqueRuns+stb.UniqueRuns != 2*uniqueKeys {
		t.Errorf("store-hit accounting off: a=%+v b=%+v", sta, stb)
	}
	for i := range outs[0] {
		if !sameJSON(t, outs[0][i], outs[1][i]) {
			t.Errorf("session %d: runners disagree on result", i)
		}
	}
}

// TestEvictionFallsBackToStore is the regression test for the LRU-eviction
// fix: before the persistent store, an evicted memo entry re-simulated on
// its next request; with a store attached it must be served from disk
// instead.
func TestEvictionFallsBackToStore(t *testing.T) {
	var runs atomic.Int64
	r := NewRunner(1).WithMaxEntries(1).WithStore(openStore(t, t.TempDir()))

	first, err := r.Run([]Session{countedSession(t, "cnn", 1, &runs)})
	if err != nil {
		t.Fatal(err)
	}
	// A second key evicts the first from the bounded memo cache.
	if _, err := r.Run([]Session{countedSession(t, "cnn", 2, &runs)}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.CacheEvictions != 1 {
		t.Fatalf("expected 1 eviction, got stats %+v", st)
	}
	// Re-requesting the evicted key must hit the store, not the simulator.
	again, err := r.Run([]Session{countedSession(t, "cnn", 1, &runs)})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("evicted session re-simulated: %d total runs, want 2", got)
	}
	st := r.Stats()
	if st.StoreHits != 1 {
		t.Fatalf("StoreHits = %d, want 1 (stats %+v)", st.StoreHits, st)
	}
	if st.UniqueRuns != 2 {
		t.Fatalf("UniqueRuns = %d, want 2", st.UniqueRuns)
	}
	if !sameJSON(t, first[0], again[0]) {
		t.Error("store-served result differs from the original simulation")
	}
}

// TestStoreErrorNotPersisted: a failing session build leaves nothing in the
// store, and the error reaches the caller.
func TestStoreErrorNotPersisted(t *testing.T) {
	ps := openStore(t, t.TempDir())
	r := NewRunner(1).WithStore(ps)
	s := ebsSession(t, "cnn", 7)
	boom := Session{Key: s.Key, Run: func() (*engine.Result, error) {
		return nil, errTest
	}}
	if _, err := r.Run([]Session{boom}); err == nil {
		t.Fatal("error not propagated")
	}
	if n := ps.Len(); n != 0 {
		t.Fatalf("failed build persisted %d records", n)
	}
}
