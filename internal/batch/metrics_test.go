package batch

import (
	"strings"
	"testing"

	"repro/internal/artifacts"
	"repro/internal/obs"
	"repro/internal/store"
)

// TestRegisterMetricsExposesEveryFamily wires a fully-loaded runner (memo
// cache, artifact store, persistent log) into a registry and scrapes it.
// The sampled closures only execute at exposition time, so rendering is the
// only way to prove each family is live and reads the right counter.
func TestRegisterMetricsExposesEveryFamily(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := obs.NewRegistry()
	r := NewRunner(1).AttachArtifacts(artifacts.NewStore()).WithStore(st).RegisterMetrics(reg)
	if r.sessionSeconds == nil || r.solveSeconds == nil {
		t.Fatal("RegisterMetrics did not attach the native latency histograms")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, series := range []string{
		"pes_sessions_total 0",
		"pes_unique_runs_total 0",
		"pes_cache_hits_total 0",
		"pes_cache_entries 0",
		"pes_cache_evictions_total 0",
		"pes_store_hits_total 0",
		"pes_solver_solves_total 0",
		"pes_solver_nodes_total 0",
		"pes_solver_plan_cache_hits_total 0",
		"pes_solver_budget_aborts_total 0",
		`pes_artifact_builds_total{kind="trace"} `,
		`pes_artifact_builds_total{kind="runtime"} `,
		`pes_artifact_builds_total{kind="fingerprint"} `,
		`pes_artifact_builds_total{kind="learner"} `,
		`pes_artifact_builds_total{kind="page"} `,
		`pes_artifact_hits_total{kind="trace"} `,
		"pes_artifact_trace_entries ",
		"pes_artifact_trace_evictions_total ",
		`pes_artifact_store_hits_total{kind="trace"} `,
		`pes_artifact_store_hits_total{kind="learner"} `,
		"pes_store_log_records ",
		"pes_store_log_recovered ",
		"pes_store_log_corrupt_records_total ",
		"pes_store_log_torn_bytes ",
		"pes_store_log_hits_total ",
		"pes_store_log_misses_total ",
		"pes_store_log_puts_total ",
		"pes_store_log_syncs_total ",
		"pes_store_log_shared_builds_total ",
		"pes_session_seconds_count 0",
		"pes_solve_seconds_count 0",
	} {
		if !strings.Contains(body, "\n"+series) {
			t.Errorf("scrape is missing series %q", series)
		}
	}
}
