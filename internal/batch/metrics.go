package batch

import (
	"repro/internal/obs"
	"repro/internal/optimizer"
)

// solverSnapshot returns the aggregated solver counters under the lock.
func (r *Runner) solverSnapshot() optimizer.SolverStats {
	r.solverMu.Lock()
	defer r.solverMu.Unlock()
	return r.solver
}

// RegisterMetrics exposes every counter family the runner's Stats snapshot
// reports as Prometheus series on reg, and attaches the two native latency
// histograms (session wall time, solve wall time) the snapshot cannot carry.
// The sampled series read the same atomic counters Stats reads — the
// registry is a view, not a second write path — so /healthz, results stats,
// and /metrics can never disagree. Call once at wiring time, before the
// runner is shared; returns the runner for chaining.
func (r *Runner) RegisterMetrics(reg *obs.Registry) *Runner {
	reg.CounterFunc("pes_sessions_total",
		"Sessions requested through the batch runner (memo hits included).",
		func() float64 { return float64(r.sessions.Load()) })
	reg.CounterFunc("pes_unique_runs_total",
		"Simulations actually executed (memo and store misses).",
		func() float64 { return float64(r.uniqueRuns.Load()) })
	reg.CounterFunc("pes_cache_hits_total",
		"Sessions served from the in-memory memo cache.",
		func() float64 { return float64(r.cacheHits.Load()) })
	reg.GaugeFunc("pes_cache_entries",
		"Results currently retained in the memo cache.",
		func() float64 {
			r.mu.Lock()
			n := len(r.cache)
			r.mu.Unlock()
			return float64(n)
		})
	reg.CounterFunc("pes_cache_evictions_total",
		"Memo-cache results dropped by the LRU bound.",
		func() float64 { return float64(r.evictions.Load()) })
	reg.CounterFunc("pes_store_hits_total",
		"Sessions served from the persistent store instead of simulated.",
		func() float64 { return float64(r.storeHits.Load()) })

	reg.CounterFunc("pes_solver_solves_total",
		"ilp.Solve invocations across unique runs.",
		func() float64 { return float64(r.solverSnapshot().Solves) })
	reg.CounterFunc("pes_solver_nodes_total",
		"Branch-and-bound nodes explored across unique runs.",
		func() float64 { return float64(r.solverSnapshot().Nodes) })
	reg.CounterFunc("pes_solver_plan_cache_hits_total",
		"Schedule calls answered from the plan cache without solving.",
		func() float64 { return float64(r.solverSnapshot().PlanCacheHits) })
	reg.CounterFunc("pes_solver_budget_aborts_total",
		"Solves that exhausted the branch-and-bound node budget.",
		func() float64 { return float64(r.solverSnapshot().BudgetAborts) })

	if a := r.artifacts; a != nil {
		kinds := []struct {
			kind         string
			builds, hits func() float64
		}{
			{"trace",
				func() float64 { return float64(a.Stats().TraceBuilds) },
				func() float64 { return float64(a.Stats().TraceHits) }},
			{"runtime",
				func() float64 { return float64(a.Stats().RuntimeBuilds) },
				func() float64 { return float64(a.Stats().RuntimeHits) }},
			{"fingerprint",
				func() float64 { return float64(a.Stats().FingerprintBuilds) },
				func() float64 { return float64(a.Stats().FingerprintHits) }},
			{"learner",
				func() float64 { return float64(a.Stats().LearnerBuilds) },
				func() float64 { return float64(a.Stats().LearnerHits) }},
			{"page",
				func() float64 { return float64(a.Stats().PageBuilds) },
				func() float64 { return float64(a.Stats().PageHits) }},
		}
		for _, k := range kinds {
			reg.CounterFunc("pes_artifact_builds_total",
				"Artifacts built (by kind).", k.builds, obs.L("kind", k.kind))
			reg.CounterFunc("pes_artifact_hits_total",
				"Artifacts served from cache (by kind).", k.hits, obs.L("kind", k.kind))
		}
		reg.GaugeFunc("pes_artifact_trace_entries",
			"Traces currently retained in the artifact cache.",
			func() float64 { return float64(a.Stats().TraceEntries) })
		reg.CounterFunc("pes_artifact_trace_evictions_total",
			"Traces dropped by the artifact LRU bound.",
			func() float64 { return float64(a.Stats().TraceEvictions) })
		reg.CounterFunc("pes_artifact_store_hits_total",
			"Artifacts loaded from the persistent store (by kind).",
			func() float64 { return float64(a.Stats().TraceStoreHits) }, obs.L("kind", "trace"))
		reg.CounterFunc("pes_artifact_store_hits_total",
			"Artifacts loaded from the persistent store (by kind).",
			func() float64 { return float64(a.Stats().LearnerStoreHits) }, obs.L("kind", "learner"))
	}

	if ps := r.persist; ps != nil {
		reg.GaugeFunc("pes_store_log_records",
			"Distinct keys currently readable from the persistent log.",
			func() float64 { return float64(ps.Stats().Records) })
		reg.GaugeFunc("pes_store_log_recovered",
			"Intact records replayed when the log was opened.",
			func() float64 { return float64(ps.Stats().Recovered) })
		reg.CounterFunc("pes_store_log_corrupt_records_total",
			"Records dropped for a checksum mismatch.",
			func() float64 { return float64(ps.Stats().CorruptRecords) })
		reg.GaugeFunc("pes_store_log_torn_bytes",
			"Unparseable log tail truncated at open, in bytes.",
			func() float64 { return float64(ps.Stats().TornBytes) })
		reg.CounterFunc("pes_store_log_hits_total",
			"Persistent-log lookups that found a record.",
			func() float64 { return float64(ps.Stats().Hits) })
		reg.CounterFunc("pes_store_log_misses_total",
			"Persistent-log lookups that missed.",
			func() float64 { return float64(ps.Stats().Misses) })
		reg.CounterFunc("pes_store_log_puts_total",
			"Records appended to the persistent log.",
			func() float64 { return float64(ps.Stats().Puts) })
		reg.CounterFunc("pes_store_log_syncs_total",
			"Explicit log flushes to stable storage.",
			func() float64 { return float64(ps.Stats().Syncs) })
		reg.CounterFunc("pes_store_log_shared_builds_total",
			"GetOrBuild callers served by another caller's in-flight build.",
			func() float64 { return float64(ps.Stats().SharedBuilds) })
	}

	r.sessionSeconds = reg.Histogram("pes_session_seconds",
		"Wall time to resolve one session (cache hits included).", nil)
	r.solveSeconds = reg.Histogram("pes_solve_seconds",
		"Solver wall time per unique run.", nil)
	return r
}
