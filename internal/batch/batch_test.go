package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/acmp"
	"repro/internal/artifacts"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// ebsSession builds a real (but cheap) session: one EBS simulation of a
// short synthetic trace.
func ebsSession(t testing.TB, app string, seed int64) Session {
	t.Helper()
	spec, err := webapp.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	p := acmp.Exynos5410()
	return Session{
		Key: Key{Platform: p.Name, App: app, TraceSeed: seed, Scheduler: "EBS"},
		Run: func() (*engine.Result, error) {
			tr := trace.Generate(spec, seed, trace.Options{MaxEvents: 25})
			evs, err := tr.Runtime()
			if err != nil {
				return nil, err
			}
			return engine.RunReactive(p, app, evs, sched.NewEBS(p)), nil
		},
	}
}

func TestRunnerMemoizesDuplicateSessions(t *testing.T) {
	r := NewRunner(4)
	var sessions []Session
	// 40 sessions over 5 unique keys, interleaved.
	for i := 0; i < 40; i++ {
		sessions = append(sessions, ebsSession(t, "cnn", int64(i%5)))
	}
	out, err := r.Run(sessions)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Sessions != 40 || st.UniqueRuns != 5 || st.CacheHits != 35 {
		t.Errorf("stats = %+v, want 40 sessions / 5 unique / 35 hits", st)
	}
	for i, res := range out {
		if res == nil {
			t.Fatalf("result %d missing", i)
		}
		// Duplicate keys share one result instance.
		if res != out[i%5] {
			t.Errorf("result %d not memoized", i)
		}
	}
	// A second batch with the same keys is served entirely from the cache.
	out2, err := r.Run(sessions[:5])
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.UniqueRuns != 5 {
		t.Errorf("second batch re-simulated: %+v", st)
	}
	for i := range out2 {
		if out2[i] != out[i] {
			t.Errorf("second batch result %d differs", i)
		}
	}
}

// TestRunnerConcurrentCache hammers one runner from many goroutines with
// overlapping keys; run under -race this exercises the cache's concurrency
// safety, and the engine results must stay deterministic.
func TestRunnerConcurrentCache(t *testing.T) {
	r := NewRunner(8)
	want, err := r.Run([]Session{ebsSession(t, "ebay", 1), ebsSession(t, "ebay", 2)})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var sessions []Session
			for i := 0; i < 10; i++ {
				sessions = append(sessions, ebsSession(t, "ebay", int64(1+(g+i)%4)))
			}
			out, err := r.Run(sessions)
			if err != nil {
				t.Error(err)
				return
			}
			for i, res := range out {
				if res == nil {
					t.Errorf("goroutine %d: result %d missing", g, i)
					continue
				}
				if res.TotalEnergyMJ <= 0 || len(res.Outcomes) == 0 {
					t.Errorf("goroutine %d: result %d empty", g, i)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := r.Stats(); st.UniqueRuns != 4 {
		t.Errorf("unique runs = %d, want 4", st.UniqueRuns)
	}
	// Deterministic: re-requesting the first keys returns the same instances.
	again, err := r.Run([]Session{ebsSession(t, "ebay", 1), ebsSession(t, "ebay", 2)})
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != want[0] || again[1] != want[1] {
		t.Error("cached results changed identity across concurrent batches")
	}
}

func TestRunnerPropagatesErrors(t *testing.T) {
	r := NewRunner(2)
	boom := errors.New("boom")
	sessions := []Session{
		ebsSession(t, "cnn", 1),
		{Key: Key{App: "bad", Scheduler: "x"}, Run: func() (*engine.Result, error) { return nil, boom }},
		ebsSession(t, "cnn", 2),
	}
	out, err := r.Run(sessions)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if out[1] != nil {
		t.Error("failed session should have nil result")
	}
	if out[0] == nil || out[2] == nil {
		t.Error("healthy sessions should still complete")
	}
	// The error is memoized like a result.
	if _, err := r.Run(sessions[1:2]); !errors.Is(err, boom) {
		t.Error("memoized error lost")
	}
}

func TestRunnerWorkerDefaults(t *testing.T) {
	if NewRunner(0).Workers() < 1 {
		t.Error("default worker count must be at least 1")
	}
	if got := NewRunner(7).Workers(); got != 7 {
		t.Errorf("workers = %d, want 7", got)
	}
	// A serial runner handles duplicate keys without deadlocking.
	r := NewRunner(1)
	out, err := r.Run([]Session{ebsSession(t, "cnn", 3), ebsSession(t, "cnn", 3)})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != out[1] {
		t.Error("serial runner should memoize too")
	}
}

// TestRunnerParallelMatchesSerial checks that a parallel batch produces
// field-identical results to a serial one — the concurrency must not leak
// into the simulation.
func TestRunnerParallelMatchesSerial(t *testing.T) {
	var sessions []Session
	for seed := int64(1); seed <= 6; seed++ {
		sessions = append(sessions, ebsSession(t, "espn", seed))
	}
	serial, err := NewRunner(1).Run(sessions)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(6).Run(sessions)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sessions {
		s, p := serial[i], parallel[i]
		if s.TotalEnergyMJ != p.TotalEnergyMJ || s.Violations != p.Violations ||
			len(s.Outcomes) != len(p.Outcomes) {
			t.Errorf("session %d: serial %v/%d differs from parallel %v/%d",
				i, s.TotalEnergyMJ, s.Violations, p.TotalEnergyMJ, p.Violations)
		}
	}
}

func ExampleRunner() {
	r := NewRunner(2)
	p := acmp.Exynos5410()
	spec, _ := webapp.ByName("cnn")
	mk := func(seed int64) Session {
		return Session{
			Key: Key{Platform: p.Name, App: "cnn", TraceSeed: seed, Scheduler: "EBS"},
			Run: func() (*engine.Result, error) {
				tr := trace.Generate(spec, seed, trace.Options{MaxEvents: 10})
				evs, err := tr.Runtime()
				if err != nil {
					return nil, err
				}
				return engine.RunReactive(p, "cnn", evs, sched.NewEBS(p)), nil
			},
		}
	}
	// Three requests, two unique sessions: seed 7 simulates once.
	out, err := r.Run([]Session{mk(7), mk(8), mk(7)})
	if err != nil {
		panic(err)
	}
	st := r.Stats()
	fmt.Println(len(out), st.UniqueRuns, st.CacheHits, out[0] == out[2])
	// Output: 3 2 1 true
}

func TestRunWithProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := NewRunner(workers)
		var sessions []Session
		for i := 0; i < 12; i++ {
			sessions = append(sessions, ebsSession(t, "cnn", int64(i%3)))
		}
		var (
			mu    sync.Mutex
			calls int
			max   int
			total int
		)
		_, err := r.RunWithProgress(sessions, func(completed, tot int) {
			mu.Lock()
			calls++
			if completed > max {
				max = completed
			}
			total = tot
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		// One callback per session (cache hits included), reaching the batch
		// size exactly once.
		if calls != len(sessions) || max != len(sessions) || total != len(sessions) {
			t.Errorf("workers=%d: %d calls, max completed %d, total %d, want all %d",
				workers, calls, max, total, len(sessions))
		}
	}
}

func TestRunWithProgressErrorsStillReport(t *testing.T) {
	r := NewRunner(1)
	boom := errors.New("boom")
	sessions := []Session{
		{Key: Key{App: "x", TraceSeed: 1}, Run: func() (*engine.Result, error) { return nil, boom }},
		ebsSession(t, "cnn", 2),
	}
	calls := 0
	_, err := r.RunWithProgress(sessions, func(completed, total int) { calls++ })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Errorf("progress called %d times, want 2 (failed sessions count as resolved)", calls)
	}
}

func TestStatsCarryAttachedArtifacts(t *testing.T) {
	store := artifacts.NewStore()
	r := NewRunner(1)
	if r.Stats().Artifacts != nil {
		t.Error("unattached runner must not report artifact stats")
	}
	if got := r.AttachArtifacts(store); got != r {
		t.Error("AttachArtifacts must return the runner for chaining")
	}
	spec := webapp.SeenApps()[0]
	tr := store.Trace(spec, 31, trace.PurposeEval, trace.Options{})
	if _, err := store.Runtime(tr); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Artifacts == nil {
		t.Fatal("attached runner must snapshot artifact stats")
	}
	if st.Artifacts.TraceBuilds != 1 || st.Artifacts.RuntimeBuilds != 1 {
		t.Errorf("artifact counters not threaded: %+v", st.Artifacts)
	}
}

// TestRunnerLRUBound exercises the memo-cache LRU: the cache never exceeds
// its bound, eviction is least-recently-used, evicted sessions re-simulate
// deterministically, and the counters report it all.
func TestRunnerLRUBound(t *testing.T) {
	r := NewRunner(1).WithMaxEntries(3)
	// Four unique keys through a 3-slot cache: the oldest (seed 0) falls out.
	for seed := int64(0); seed < 4; seed++ {
		if _, err := r.Run([]Session{ebsSession(t, "cnn", seed)}); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.UniqueRuns != 4 || st.CacheEntries != 3 || st.CacheEvictions != 1 {
		t.Fatalf("after 4 inserts: %+v, want 4 unique / 3 entries / 1 eviction", st)
	}

	// Touch seed 1 (making seed 2 the LRU), then insert seed 4: seed 2 must
	// be the victim, seed 1 must still be cached.
	if _, err := r.Run([]Session{ebsSession(t, "cnn", 1)}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.CacheHits != 1 {
		t.Fatalf("touching a cached key did not hit: %+v", st)
	}
	if _, err := r.Run([]Session{ebsSession(t, "cnn", 4)}); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	_, has1 := r.cache[ebsSession(t, "cnn", 1).Key]
	_, has2 := r.cache[ebsSession(t, "cnn", 2).Key]
	r.mu.Unlock()
	if !has1 || has2 {
		t.Errorf("LRU victim wrong: seed1 cached=%t (want true), seed2 cached=%t (want false)", has1, has2)
	}

	// An evicted session re-simulates and reproduces the same result.
	first, err := r.Run([]Session{ebsSession(t, "cnn", 0)})
	if err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.UniqueRuns != 6 { // 5 distinct seeds + the re-simulated seed 0
		t.Errorf("evicted session was not re-simulated: %+v", st)
	}
	if first[0] == nil || first[0].TotalEnergyMJ <= 0 {
		t.Errorf("re-simulated result malformed: %+v", first[0])
	}
}

// TestRunnerLRUBoundConcurrent hammers a tightly bounded cache from many
// goroutines; under -race this exercises eviction racing lookups, and every
// request must still resolve to a result.
func TestRunnerLRUBoundConcurrent(t *testing.T) {
	r := NewRunner(8).WithMaxEntries(2)
	var sessions []Session
	for i := 0; i < 60; i++ {
		sessions = append(sessions, ebsSession(t, "cnn", int64(i%6)))
	}
	out, err := r.Run(sessions)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out {
		if res == nil {
			t.Fatalf("result %d missing", i)
		}
	}
	st := r.Stats()
	if st.CacheEntries > 2 {
		t.Errorf("cache grew past its bound: %+v", st)
	}
	if st.CacheEvictions == 0 {
		t.Errorf("no evictions on a 2-slot cache over 6 keys: %+v", st)
	}
}

func TestRunContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			r := NewRunner(workers)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var started atomic.Int64
			var sessions []Session
			const total = 50
			for i := 0; i < total; i++ {
				i := i
				sessions = append(sessions, Session{
					Key: Key{Platform: "p", App: "a", TraceSeed: int64(i), Scheduler: "s"},
					Run: func() (*engine.Result, error) {
						// The 10th simulation triggers the cancellation; later
						// sessions must never be dispatched.
						if started.Add(1) == 10 {
							cancel()
						}
						return &engine.Result{App: "a"}, nil
					},
				})
			}
			out, err := r.RunContext(ctx, sessions, nil)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext error = %v, want context.Canceled", err)
			}
			ran := started.Load()
			if ran >= total {
				t.Fatalf("cancellation did not stop dispatch: all %d sessions ran", total)
			}
			// Every completed session's result is retained (resumable work),
			// every unreached session's slot is nil.
			var got int
			for _, res := range out {
				if res != nil {
					got++
				}
			}
			if got == 0 || got > int(ran) {
				t.Fatalf("%d results retained for %d started sessions", got, ran)
			}
			// A fresh uncanceled run completes the tail from the warm cache.
			out2, err := r.RunContext(context.Background(), sessions, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, res := range out2 {
				if res == nil {
					t.Fatalf("re-run result %d missing", i)
				}
			}
		})
	}
}
