// Package batch is the concurrent batch-session runner on top of the
// unified simulation engine. An experiment sweep simulates the same user
// sessions many times over — the same (platform, app, trace seed, scheduler,
// predictor configuration) tuple reappears across figures — so the runner
// memoizes results by that tuple and executes distinct sessions in parallel
// on a worker pool. Each unique session simulates exactly once per Runner,
// no matter how many times or how concurrently it is requested.
package batch

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"time"

	"repro/internal/artifacts"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/store"
)

// Key identifies one unique session simulation. Two sessions with equal keys
// must be guaranteed by the caller to produce identical results; the runner
// then simulates only one of them.
type Key struct {
	// Platform is the hardware model name (e.g. "Exynos5410").
	Platform string
	// App is the application name.
	App string
	// TraceSeed is the user/session seed the trace was generated from.
	TraceSeed int64
	// Scheduler is the scheduler name (e.g. "PES").
	Scheduler string
	// Predictor is a canonical encoding of the predictor configuration, or
	// empty for schedulers that have none.
	Predictor string
	// Variant distinguishes any further state the simulation depends on
	// that the fields above do not capture — e.g. a trace fingerprint when
	// traces are generated with non-default options, or the identity of a
	// shared trained model. Leave empty when the other fields fully
	// determine the result.
	Variant string
}

// Session is one unit of batch work: the memoization key plus the function
// that simulates the session on a cache miss. Run must be self-contained
// (construct its own scheduler instance) so that sessions can execute on
// any worker concurrently.
type Session struct {
	Key Key
	Run func() (*engine.Result, error)
}

// Stats reports the work a Runner has performed.
type Stats struct {
	// Sessions is the number of sessions requested.
	Sessions int64
	// UniqueRuns is the number of simulations actually executed.
	UniqueRuns int64
	// CacheHits is the number of sessions served from the memo cache.
	CacheHits int64
	// CacheEntries is the number of results currently retained in the memo
	// cache.
	CacheEntries int64
	// CacheEvictions is the number of results dropped by the LRU bound
	// (zero on unbounded runners). An evicted session re-simulates on its
	// next request — results are deterministic, so eviction never changes
	// what a session returns, only whether it is recomputed.
	CacheEvictions int64
	// StoreHits is the number of sessions served from the persistent store
	// (zero when none is attached): the memo cache missed, but the session's
	// result was already on disk — from an earlier process, another runner
	// sharing the store, or an entry this runner built and later evicted —
	// so no simulation ran. Store-served sessions count toward neither
	// UniqueRuns nor CacheHits.
	StoreHits int64
	// Solver sums the constrained-optimization work of the unique runs
	// (sessions served from the memo cache or the persistent store
	// contribute nothing — their solver work was never repeated).
	Solver optimizer.SolverStats
	// Artifacts snapshots the shared artifact store attached to the runner
	// (nil when none is attached): how often the session inputs — traces,
	// runtime events, fingerprints, trained learners, DOM pages — were
	// served from cache instead of regenerated. The tag matches the
	// sibling fields' (untagged) PascalCase so the served stats payload
	// keeps one casing style.
	Artifacts *artifacts.Stats `json:"Artifacts,omitempty"`
	// Store snapshots the persistent store attached to the runner (nil when
	// none is attached): records on disk, recovery outcome, raw hit/miss
	// counters. Tagged PascalCase to match the sibling untagged fields.
	Store *store.Stats `json:"Store,omitempty"`
}

// Runner executes batches of sessions on a worker pool with a memoized
// result cache. A Runner is safe for concurrent use and may be reused
// across batches; the cache persists for its lifetime.
type Runner struct {
	workers   int
	artifacts *artifacts.Store
	persist   *store.Store

	mu         sync.Mutex
	cache      map[Key]*entry
	maxEntries int        // 0 = unbounded
	lru        *list.List // completed keys, most recently used first

	sessions   atomic.Int64
	uniqueRuns atomic.Int64
	cacheHits  atomic.Int64
	storeHits  atomic.Int64
	evictions  atomic.Int64

	solverMu sync.Mutex
	solver   optimizer.SolverStats

	// sessionSeconds and solveSeconds are native latency histograms set by
	// RegisterMetrics at wiring time (nil when telemetry is unwired — all
	// observations are nil-safe no-ops).
	sessionSeconds *obs.Histogram
	solveSeconds   *obs.Histogram
}

// entry is a singleflight-style cache slot: the first requester simulates,
// concurrent requesters for the same key block on the Once and then share
// the result.
type entry struct {
	once sync.Once
	res  *engine.Result
	err  error
	// elem is the entry's LRU slot, linked (under Runner.mu) once the build
	// completes; in-flight entries are never evicted.
	elem *list.Element
}

// NewRunner creates a runner with the given worker-pool size; workers <= 0
// selects runtime.NumCPU().
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Runner{workers: workers, cache: make(map[Key]*entry), lru: list.New()}
}

// WithMaxEntries bounds the memo cache to at most n completed results,
// evicting least-recently-used entries beyond it; n <= 0 keeps the cache
// unbounded (the default). It returns the runner for chaining. The write is
// synchronized, but the bound only applies to entries completed after it is
// set — set it before running batches.
func (r *Runner) WithMaxEntries(n int) *Runner {
	r.mu.Lock()
	r.maxEntries = n
	r.mu.Unlock()
	return r
}

// Workers returns the worker-pool size.
func (r *Runner) Workers() int { return r.workers }

// AttachArtifacts associates the shared artifact store whose counters Stats
// should report alongside the memo-cache counters. It returns the runner for
// chaining. Attach before the runner is shared across goroutines.
func (r *Runner) AttachArtifacts(s *artifacts.Store) *Runner {
	r.artifacts = s
	return r
}

// WithStore layers a persistent content-addressed store under the in-memory
// memo cache: every memo miss consults the store before simulating, and
// every fresh simulation is written through. Results decode from stored
// bytes bit-identically (engine.Result round-trips through JSON exactly), so
// a store-served session is indistinguishable from a memoized one — which is
// also what makes LRU eviction cheap: an evicted entry falls back to a store
// hit instead of a re-simulation. Several Runners may share one store (the
// store's own singleflight keeps builds exactly-once across them); set it
// before the runner is shared across goroutines. It returns the runner for
// chaining; ps may be nil (no persistence, the default).
func (r *Runner) WithStore(ps *store.Store) *Runner {
	r.persist = ps
	return r
}

// PersistentStore returns the persistent store attached with WithStore, or
// nil.
func (r *Runner) PersistentStore() *store.Store { return r.persist }

// storeKey renders a memo key as the persistent store's content address.
// Every component of Key is content-derived (Variant carries the platform,
// trace and learner fingerprints), so equal strings across processes mean
// bit-identical results.
func storeKey(k Key) string {
	return fmt.Sprintf("result|%s|%s|%d|%s|%s|%s",
		k.Platform, k.App, k.TraceSeed, k.Scheduler, k.Predictor, k.Variant)
}

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() Stats {
	r.solverMu.Lock()
	solver := r.solver
	r.solverMu.Unlock()
	r.mu.Lock()
	entries := int64(len(r.cache))
	r.mu.Unlock()
	st := Stats{
		Sessions:       r.sessions.Load(),
		UniqueRuns:     r.uniqueRuns.Load(),
		CacheHits:      r.cacheHits.Load(),
		CacheEntries:   entries,
		CacheEvictions: r.evictions.Load(),
		StoreHits:      r.storeHits.Load(),
		Solver:         solver,
	}
	if r.artifacts != nil {
		a := r.artifacts.Stats()
		st.Artifacts = &a
	}
	if r.persist != nil {
		p := r.persist.Stats()
		st.Store = &p
	}
	return st
}

// entryFor returns the cache slot for a key, creating it if needed.
func (r *Runner) entryFor(k Key) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.cache[k]
	if !ok {
		e = &entry{}
		r.cache[k] = e
	}
	return e
}

// touch marks an entry most-recently-used once its build has completed and
// applies the LRU bound. Only completed entries join the LRU list, so an
// in-flight simulation can never be evicted from under its waiters; an
// entry evicted between its build and this touch (possible when another
// key's touch ran eviction first) is simply not re-linked.
func (r *Runner) touch(k Key, e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.elem != nil {
		r.lru.MoveToFront(e.elem)
		return
	}
	if r.cache[k] != e {
		return // evicted while (or before) completing
	}
	e.elem = r.lru.PushFront(k)
	if r.maxEntries <= 0 {
		return
	}
	for len(r.cache) > r.maxEntries {
		back := r.lru.Back()
		if back == nil {
			break // only in-flight entries remain
		}
		old := back.Value.(Key)
		if oe, ok := r.cache[old]; ok && oe.elem == back {
			delete(r.cache, old)
			r.evictions.Add(1)
		}
		r.lru.Remove(back)
	}
}

// one resolves a single session through the cache.
func (r *Runner) one(s Session) (*engine.Result, error) {
	r.sessions.Add(1)
	var start time.Time
	if r.sessionSeconds != nil {
		start = time.Now()
	}
	e := r.entryFor(s.Key)
	hit := true
	e.once.Do(func() {
		hit = false
		e.res, e.err = r.build(s)
	})
	r.touch(s.Key, e)
	if hit {
		r.cacheHits.Add(1)
	}
	if r.sessionSeconds != nil {
		r.sessionSeconds.ObserveSeconds(int64(time.Since(start)))
	}
	return e.res, e.err
}

// build resolves a memo-cache miss: straight simulation when no persistent
// store is attached, otherwise get-or-build through the store. The store's
// singleflight spans runners — when another runner sharing the store is
// already simulating this key, we block on its build instead of starting a
// second one. Only a simulation this runner actually executed counts as a
// unique run and contributes solver stats; a session decoded from stored
// bytes counts as a store hit.
func (r *Runner) build(s Session) (*engine.Result, error) {
	if r.persist == nil {
		r.uniqueRuns.Add(1)
		res, err := s.Run()
		r.addSolver(res)
		return res, err
	}
	var built *engine.Result
	val, _, err := r.persist.GetOrBuild(storeKey(s.Key), func() ([]byte, error) {
		res, err := s.Run()
		if err != nil {
			return nil, err
		}
		built = res
		return json.Marshal(res)
	})
	if err != nil {
		return nil, err
	}
	if built != nil {
		r.uniqueRuns.Add(1)
		r.addSolver(built)
		return built, nil
	}
	res := new(engine.Result)
	if err := json.Unmarshal(val, res); err != nil {
		return nil, fmt.Errorf("batch: decoding stored result for %s: %w", storeKey(s.Key), err)
	}
	r.storeHits.Add(1)
	return res, nil
}

// addSolver folds a unique run's solver work into the aggregate.
func (r *Runner) addSolver(res *engine.Result) {
	if res == nil {
		return
	}
	r.solveSeconds.ObserveSeconds(res.Solver.WallNS)
	r.solverMu.Lock()
	r.solver = r.solver.Add(res.Solver)
	r.solverMu.Unlock()
}

// Run simulates every session and returns the results index-aligned with
// the input. Duplicate keys — within the batch or across earlier batches —
// are served from the cache. On error the first error is returned and the
// corresponding results are nil; the remaining sessions still complete.
func (r *Runner) Run(sessions []Session) ([]*engine.Result, error) {
	return r.RunWithProgress(sessions, nil)
}

// RunWithProgress is Run with a progress callback: after each session
// resolves (from the cache or a fresh simulation, successfully or not),
// progress is called with the number of sessions resolved so far and the
// batch size. The callback may run concurrently from several workers and
// completed counts may arrive out of order; it must be cheap and safe for
// concurrent use. A nil progress is ignored.
func (r *Runner) RunWithProgress(sessions []Session, progress func(completed, total int)) ([]*engine.Result, error) {
	return r.RunContext(context.Background(), sessions, progress)
}

// RunContext is RunWithProgress bounded by a context: the runner checks ctx
// between sessions and stops dispatching new work once it is done, returning
// ctx.Err() as the error (unless a session error came first). Simulations
// already in flight run to completion — the engine is not preemptible — and
// their results stay in the cache and the persistent store, so a canceled
// batch re-run later costs only the sessions it never reached. Results for
// unreached sessions are nil.
func (r *Runner) RunContext(ctx context.Context, sessions []Session, progress func(completed, total int)) ([]*engine.Result, error) {
	out := make([]*engine.Result, len(sessions))
	var completed atomic.Int64
	note := func() {
		if progress != nil {
			progress(int(completed.Add(1)), len(sessions))
		}
	}
	workers := r.workers
	if workers > len(sessions) {
		workers = len(sessions)
	}
	if workers <= 1 {
		var firstErr error
		for i, s := range sessions {
			if err := ctx.Err(); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				break
			}
			res, err := r.one(s)
			note()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			out[i] = res
		}
		return out, firstErr
	}

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := r.one(sessions[i])
				note()
				if err != nil {
					setErr(err)
					continue
				}
				out[i] = res
			}
		}()
	}
feed:
	for i := range sessions {
		select {
		case idx <- i:
		case <-ctx.Done():
			setErr(ctx.Err())
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return out, firstErr
}
