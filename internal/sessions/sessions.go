// Package sessions bridges traces and scheduler names to batch sessions: it
// is the one place that knows how to construct every scheduler and run it on
// the unified engine, shared by the experiment harness, cmd/pes-sim, and the
// simcheck tool.
package sessions

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"

	"repro/internal/acmp"
	"repro/internal/artifacts"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// Canonical scheduler names (also used as batch memo keys and result
// labels).
const (
	Interactive = "Interactive"
	Ondemand    = "Ondemand"
	EBS         = "EBS"
	PES         = "PES"
	Oracle      = "Oracle"
)

// Names lists every scheduler in presentation order.
func Names() []string { return []string{Interactive, Ondemand, EBS, PES, Oracle} }

// Canonical resolves a case-insensitive scheduler name to its canonical
// form.
func Canonical(name string) (string, error) {
	for _, n := range Names() {
		if strings.EqualFold(name, n) {
			return n, nil
		}
	}
	return "", fmt.Errorf("sessions: unknown scheduler %q", name)
}

// Spec describes one session simulation: a trace replayed under a named
// scheduler on a platform. Learner and Predictor are consulted only for
// PES.
type Spec struct {
	Platform  *acmp.Platform
	Trace     *trace.Trace
	Scheduler string
	// Learner is the trained sequence model shared (read-only) by PES
	// sessions.
	Learner *predictor.SequenceLearner
	// Predictor is the PES predictor configuration; it participates in the
	// memo key so that sweeps over it cache correctly.
	Predictor predictor.Config
	// Artifacts is the shared artifact store the session draws its runtime
	// events and fingerprint from; nil selects artifacts.Default. Sessions
	// of the same trace share one parsed event list through it, no matter
	// which scheduler replays them.
	Artifacts *artifacts.Store
	// OracleVersion selects the Oracle solver (zero value = default). It is
	// consulted only for Oracle sessions and participates in their memo key,
	// so v1 and v2 results never alias in caches or on the cluster wire.
	OracleVersion sched.OracleVersion
}

// learnerFPs caches each trained learner's content fingerprint — an FNV-64a
// hash of the model's shape and weight bits. Unlike the per-process
// sequential identifier it replaced, the fingerprint is stable across
// restarts and equal exactly when the trained weights are equal, which is
// what lets PES memo keys address a persistent store: two processes that
// trained the same model (training is deterministic) produce the same key,
// and two differently-trained models can never alias. The map retains the
// learner, bounded by the number of trainings in the process; models are
// immutable once trained, so the cached hash never goes stale.
var (
	learnerMu  sync.Mutex
	learnerFPs = map[*predictor.SequenceLearner]string{}
)

func learnerFingerprint(l *predictor.SequenceLearner) string {
	learnerMu.Lock()
	defer learnerMu.Unlock()
	fp, ok := learnerFPs[l]
	if !ok {
		m := l.Model()
		h := fnv.New64a()
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(m.NumFeatures))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(m.NumClasses))
		h.Write(buf[:])
		for _, row := range m.Weights {
			for _, w := range row {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(w))
				h.Write(buf[:])
			}
		}
		fp = fmt.Sprintf("%016x", h.Sum64())
		learnerFPs[l] = fp
	}
	return fp
}

// predictorKey canonically encodes a predictor configuration for session
// memoization.
func predictorKey(cfg predictor.Config) string {
	return fmt.Sprintf("ct=%g,deg=%d,dom=%t", cfg.ConfidenceThreshold, cfg.MaxDegree, cfg.UseDOMAnalysis)
}

// New builds the self-contained batch session for a spec. The returned
// session constructs its own scheduler instance on each (cache-miss) run,
// so it can execute on any worker concurrently. Runtime events and the memo
// fingerprint come from the spec's artifact store: every scheduler replaying
// the same trace shares one parsed event list and one content hash.
func New(s Spec) (batch.Session, error) {
	name, err := Canonical(s.Scheduler)
	if err != nil {
		return batch.Session{}, err
	}
	p, tr := s.Platform, s.Trace
	store := s.Artifacts
	if store == nil {
		store = artifacts.Default
	}
	// Populate the platform's lazy config cache now, from this goroutine:
	// the run closure may execute on any batch worker concurrently with
	// other sessions sharing the platform.
	p.Configs()
	key := batch.Key{
		Platform:  p.Name,
		App:       tr.App,
		TraceSeed: tr.Seed,
		Scheduler: name,
		Variant:   store.Fingerprint(p, tr),
	}
	var run func() (*engine.Result, error)
	switch name {
	case Interactive, Ondemand, EBS:
		run = func() (*engine.Result, error) {
			evs, err := store.Runtime(tr)
			if err != nil {
				return nil, err
			}
			var pol sched.ReactivePolicy
			switch name {
			case Interactive:
				pol = sched.NewInteractive(p)
			case Ondemand:
				pol = sched.NewOndemand(p)
			default:
				pol = sched.NewEBS(p)
			}
			return engine.RunReactive(p, tr.App, evs, pol), nil
		}
	case Oracle:
		ov := s.OracleVersion.OrDefault()
		if !ov.Valid() {
			return batch.Session{}, fmt.Errorf("sessions: invalid oracle version %d", ov)
		}
		key.Variant += fmt.Sprintf(",oracle=%s", ov)
		run = func() (*engine.Result, error) {
			evs, err := store.Runtime(tr)
			if err != nil {
				return nil, err
			}
			return engine.RunProactive(p, tr.App, evs, sched.NewOracleWithVersion(p, evs, ov)), nil
		}
	case PES:
		if s.Learner == nil {
			return batch.Session{}, fmt.Errorf("sessions: PES requires a trained learner")
		}
		spec, err := webapp.ByName(tr.App)
		if err != nil {
			return batch.Session{}, err
		}
		learner, predCfg := s.Learner, s.Predictor
		key.Predictor = predictorKey(predCfg)
		// PES results depend on the trained model; fingerprint the model
		// content so sessions built from different trainings never share a
		// cache slot, while identically-trained models — in this process or
		// a restarted one addressing a persistent store — share exactly one.
		key.Variant += fmt.Sprintf(",learner=%s", learnerFingerprint(learner))
		run = func() (*engine.Result, error) {
			evs, err := store.Runtime(tr)
			if err != nil {
				return nil, err
			}
			pes := core.NewPES(p, learner, spec, tr.DOMSeed, predCfg)
			return engine.RunProactive(p, tr.App, evs, pes), nil
		}
	}
	return batch.Session{Key: key, Run: run}, nil
}
