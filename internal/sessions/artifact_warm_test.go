package sessions

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/acmp"
	"repro/internal/artifacts"
	"repro/internal/engine"
	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// canonical serializes a result with its only non-deterministic field (the
// solver's host wall time) zeroed.
func canonical(t *testing.T, res *engine.Result) []byte {
	t.Helper()
	clone := *res
	clone.Solver.WallNS = 0
	raw, err := json.Marshal(&clone)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestArtifactWarmEqualsColdPath is the byte-identity guarantee of the
// shared-artifact layer: a session built from a pre-warmed store (shared
// trace instance, shared runtime events, cached DOM pages) must produce a
// Result byte-identical to the cold path (fresh store, freshly generated
// trace, page cache bypassed), for every scheduler.
func TestArtifactWarmEqualsColdPath(t *testing.T) {
	learner, _, err := predictor.TrainOnSeenApps(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	platform := acmp.Exynos5410()
	spec, err := webapp.ByName("cnn")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 11

	// Warm: one shared store, pre-warmed by building and running every
	// scheduler once before the recorded runs.
	warmStore := artifacts.NewStore()
	warmResults := make(map[string][]byte)
	warmRun := func(record bool) {
		for _, name := range Names() {
			tr := warmStore.Trace(spec, seed, trace.PurposeEval, trace.Options{})
			sess, err := New(Spec{
				Platform:  platform,
				Trace:     tr,
				Scheduler: name,
				Learner:   learner,
				Predictor: predictor.DefaultConfig(),
				Artifacts: warmStore,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sess.Run()
			if err != nil {
				t.Fatal(err)
			}
			if record {
				warmResults[name] = canonical(t, res)
			}
		}
	}
	warmRun(false) // warm the store
	warmRun(true)  // recorded, fully artifact-warm runs

	// Cold: fresh single-use store per session, fresh trace generation,
	// page-tree cache bypassed — the pre-artifact-cache setup path.
	was := webapp.SetPageCache(false)
	defer webapp.SetPageCache(was)
	for _, name := range Names() {
		tr := trace.Generate(spec, seed, trace.Options{})
		sess, err := New(Spec{
			Platform:  platform,
			Trace:     tr,
			Scheduler: name,
			Learner:   learner,
			Predictor: predictor.DefaultConfig(),
			Artifacts: artifacts.NewStore(),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(canonical(t, res), warmResults[name]) {
			t.Errorf("%s: artifact-warm result differs from cold-path result", name)
		}
	}
}

// TestArtifactWarmSharesMemoKey proves warm and cold construction agree on
// the batch memo key (same fingerprint for identical content), so results
// cached by one path serve the other.
func TestArtifactWarmSharesMemoKey(t *testing.T) {
	platform := acmp.Exynos5410()
	spec, err := webapp.ByName("ebay")
	if err != nil {
		t.Fatal(err)
	}
	store := artifacts.NewStore()
	warm, err := New(Spec{
		Platform:  platform,
		Trace:     store.Trace(spec, 3, trace.PurposeEval, trace.Options{}),
		Scheduler: EBS,
		Artifacts: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(Spec{
		Platform:  platform,
		Trace:     trace.Generate(spec, 3, trace.Options{}),
		Scheduler: EBS,
		Artifacts: artifacts.NewStore(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Key != cold.Key {
		t.Errorf("memo keys differ: warm %+v, cold %+v", warm.Key, cold.Key)
	}
}
