package sessions

import (
	"testing"

	"repro/internal/acmp"
	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/webapp"
)

func TestCanonical(t *testing.T) {
	for in, want := range map[string]string{
		"pes": PES, "PES": PES, "ebs": EBS, "Interactive": Interactive,
		"ONDEMAND": Ondemand, "oracle": Oracle,
	} {
		got, err := Canonical(in)
		if err != nil || got != want {
			t.Errorf("Canonical(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := Canonical("bogus"); err == nil {
		t.Error("expected error for unknown scheduler")
	}
}

func TestNewBuildsEveryScheduler(t *testing.T) {
	p := acmp.Exynos5410()
	spec, err := webapp.ByName("cnn")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(spec, 7, trace.Options{MaxEvents: 15})
	learner, _, err := predictor.TrainOnSeenApps(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		sess, err := New(Spec{
			Platform:  p,
			Trace:     tr,
			Scheduler: name,
			Learner:   learner,
			Predictor: predictor.DefaultConfig(),
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sess.Key.Scheduler != name || sess.Key.App != "cnn" || sess.Key.TraceSeed != 7 {
			t.Errorf("%s: bad key %+v", name, sess.Key)
		}
		if (sess.Key.Predictor != "") != (name == PES) {
			t.Errorf("%s: predictor key presence wrong: %q", name, sess.Key.Predictor)
		}
		r, err := sess.Run()
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		if r.Scheduler != name {
			t.Errorf("result labelled %q, want %q", r.Scheduler, name)
		}
		if len(r.Outcomes) == 0 || r.TotalEnergyMJ <= 0 {
			t.Errorf("%s: empty result", name)
		}
	}
	// PES without a learner is rejected up front.
	if _, err := New(Spec{Platform: p, Trace: tr, Scheduler: PES}); err == nil {
		t.Error("PES without learner should error")
	}
}

// TestKeyVariantDisambiguates checks that sessions which would produce
// different results never share a memo key: same (app, seed) traces with
// different generation options, and PES sessions built from different
// trained learners.
func TestKeyVariantDisambiguates(t *testing.T) {
	p := acmp.Exynos5410()
	spec, err := webapp.ByName("cnn")
	if err != nil {
		t.Fatal(err)
	}
	full := trace.Generate(spec, 7, trace.Options{})
	short := trace.Generate(spec, 7, trace.Options{MaxEvents: 5})
	a, err := New(Spec{Platform: p, Trace: full, Scheduler: EBS})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Spec{Platform: p, Trace: short, Scheduler: EBS})
	if err != nil {
		t.Fatal(err)
	}
	if a.Key == b.Key {
		t.Errorf("full and truncated traces share key %+v", a.Key)
	}
	// Same inputs → same key (the fingerprint must be stable, including
	// across the platform's lazy config-cache population).
	p.Configs()
	a2, err := New(Spec{Platform: p, Trace: full, Scheduler: EBS})
	if err != nil {
		t.Fatal(err)
	}
	if a.Key != a2.Key {
		t.Errorf("key not stable: %+v vs %+v", a.Key, a2.Key)
	}
	// A mutated platform keeping its name must not share a key.
	tweaked := acmp.Exynos5410()
	tweaked.IdlePowerMW *= 2
	c, err := New(Spec{Platform: tweaked, Trace: full, Scheduler: EBS})
	if err != nil {
		t.Fatal(err)
	}
	if a.Key == c.Key {
		t.Errorf("mutated platform shares key %+v", a.Key)
	}
	// An edited trace keeping (app, seed, count, span) must not share a key.
	edited := *full
	edited.Events = append([]trace.Event(nil), full.Events...)
	edited.Events[1].Cycles *= 2
	d, err := New(Spec{Platform: p, Trace: &edited, Scheduler: EBS})
	if err != nil {
		t.Fatal(err)
	}
	if a.Key == d.Key {
		t.Errorf("edited trace shares key %+v", a.Key)
	}
	// A trace differing only in DOMSeed (different DOM replica → different
	// PES predictions) must not share a key.
	reDOM := *full
	reDOM.DOMSeed++
	e, err := New(Spec{Platform: p, Trace: &reDOM, Scheduler: EBS})
	if err != nil {
		t.Fatal(err)
	}
	if a.Key == e.Key {
		t.Errorf("trace with different DOMSeed shares key %+v", a.Key)
	}

	l1, _, err := predictor.TrainOnSeenApps(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	l2, _, err := predictor.TrainOnSeenApps(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := predictor.DefaultConfig()
	p1, err := New(Spec{Platform: p, Trace: full, Scheduler: PES, Learner: l1, Predictor: cfg})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(Spec{Platform: p, Trace: full, Scheduler: PES, Learner: l2, Predictor: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Key == p2.Key {
		t.Errorf("PES sessions from different learners share key %+v", p1.Key)
	}
	p1again, err := New(Spec{Platform: p, Trace: full, Scheduler: PES, Learner: l1, Predictor: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Key != p1again.Key {
		t.Error("same learner/trace/config should produce a stable key")
	}
}
