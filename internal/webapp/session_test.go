package webapp

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/webevent"
)

func TestSessionInitialState(t *testing.T) {
	s, _ := ByName("cnn")
	sess := NewSession(s, 99)
	if sess.CurrentPage() != "home" {
		t.Errorf("initial page = %q", sess.CurrentPage())
	}
	if sess.Tree() == nil || sess.Semantic() == nil {
		t.Fatal("session must expose a DOM and semantic tree")
	}
	if sess.PendingNavigation() != "" {
		t.Error("no navigation should be pending initially")
	}
	if sess.PageVisits() != 1 {
		t.Errorf("PageVisits = %d, want 1", sess.PageVisits())
	}
}

func TestSessionNavigationFlow(t *testing.T) {
	s, _ := ByName("cnn")
	sess := NewSession(s, 99)
	// Find a visible navigating node.
	var link dom.NodeID
	var dest string
	for _, id := range sess.Tree().VisibleTappable() {
		if n := sess.Tree().Node(id); n.NavigatesTo != "" && n.TogglesMenu == dom.None {
			link, dest = id, n.NavigatesTo
			break
		}
	}
	if link == dom.None {
		t.Fatal("home page has no visible navigation link")
	}
	mut := sess.Apply(webevent.Click, link)
	if mut.Kind != dom.Navigated || mut.Page != dest {
		t.Fatalf("mutation = %+v", mut)
	}
	if sess.PendingNavigation() != dest {
		t.Errorf("pending navigation = %q, want %q", sess.PendingNavigation(), dest)
	}
	// The Load event consumes the pending navigation and swaps the page.
	sess.Apply(webevent.Load, dom.None)
	if sess.CurrentPage() != dest {
		t.Errorf("after load, page = %q, want %q", sess.CurrentPage(), dest)
	}
	if sess.PendingNavigation() != "" {
		t.Error("pending navigation should be cleared after the load")
	}
	if sess.PageVisits() != 2 {
		t.Errorf("PageVisits = %d, want 2", sess.PageVisits())
	}
}

func TestSessionInitialLoadIsIdempotent(t *testing.T) {
	s, _ := ByName("bbc")
	sess := NewSession(s, 7)
	before := sess.Tree().Len()
	sess.Apply(webevent.Load, dom.None) // the session's first load event
	if sess.CurrentPage() != "home" || sess.Tree().Len() != before {
		t.Error("the initial load should land on the already-built home page")
	}
}

func TestSessionScrollAndMenu(t *testing.T) {
	s, _ := ByName("amazon")
	sess := NewSession(s, 5)
	top := sess.Tree().ViewportTop
	mut := sess.Apply(s.Behavior.MoveManifestation, dom.None)
	if mut.Kind != dom.Scrolled || sess.Tree().ViewportTop <= top {
		t.Errorf("scroll did not move the viewport: %+v", mut)
	}
	// Find a menu toggle and expand it.
	var toggle dom.NodeID
	sess.Tree().Walk(func(n *dom.Node) {
		if n.TogglesMenu != dom.None && toggle == dom.None {
			toggle = n.ID
		}
	})
	if toggle == dom.None {
		t.Fatal("amazon pages should have menu toggles")
	}
	mut = sess.Apply(s.Behavior.TapManifestation, toggle)
	if mut.Kind != dom.MenuToggled {
		t.Fatalf("toggle mutation = %+v", mut)
	}
	if sess.Tree().Node(mut.Menu).Hidden {
		t.Error("menu should be visible after the toggle")
	}
}

func TestSessionDeterministicReplay(t *testing.T) {
	s, _ := ByName("ebay")
	a := NewSession(s, 123)
	b := NewSession(s, 123)
	// Apply the same event sequence to both sessions; DOM state must match.
	seq := []webevent.Type{s.Behavior.MoveManifestation, s.Behavior.MoveManifestation, webevent.Load}
	for _, typ := range seq {
		a.Apply(typ, dom.None)
		b.Apply(typ, dom.None)
	}
	if a.CurrentPage() != b.CurrentPage() || a.Tree().ViewportTop != b.Tree().ViewportTop {
		t.Error("identical event sequences must produce identical session state")
	}
	if a.Tree().ClickableFraction() != b.Tree().ClickableFraction() {
		t.Error("identical sessions must expose identical features")
	}
}

func TestPageCacheClonesAndToggle(t *testing.T) {
	spec := SeenApps()[0]
	builds0, _ := PageCacheStats()

	// Two sessions on the same (app, seed): the second must clone, not build.
	const seed = 987654
	a := NewSession(spec, seed)
	buildsAfterFirst, _ := PageCacheStats()
	b := NewSession(spec, seed)
	buildsAfterSecond, hits := PageCacheStats()
	if buildsAfterSecond != buildsAfterFirst {
		t.Errorf("second session rebuilt the page: builds %d -> %d", buildsAfterFirst, buildsAfterSecond)
	}
	if hits == 0 {
		t.Error("second session should have hit the page cache")
	}
	if buildsAfterFirst == builds0 {
		t.Error("first session should have built the page")
	}

	// The clone is independent: scrolling one session must not move the other.
	a.Apply(spec.Behavior.MoveManifestation, 0)
	if a.Tree().ViewportTop == b.Tree().ViewportTop {
		t.Error("sessions share a mutable tree")
	}
	// And the shared semantic view still binds to each session's own tree.
	if a.Semantic().Len() != b.Semantic().Len() {
		t.Error("semantic views disagree")
	}

	// With the cache disabled, sessions build fresh pages again.
	was := SetPageCache(false)
	defer SetPageCache(was)
	if !was {
		t.Error("page cache should have been enabled by default")
	}
	c := NewSession(spec, seed)
	if buildsNow, _ := PageCacheStats(); buildsNow != buildsAfterSecond {
		t.Error("cache-off builds must not be counted as cache builds")
	}
	if c.Tree().Len() != b.Tree().Len() {
		t.Error("cache-off session built a different page")
	}
}
