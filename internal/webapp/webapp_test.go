package webapp

import (
	"math/rand"
	"testing"

	"repro/internal/acmp"
	"repro/internal/dom"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

func TestRegistryShape(t *testing.T) {
	if got := len(Registry()); got != 18 {
		t.Fatalf("registry has %d applications, want 18", got)
	}
	if got := len(SeenApps()); got != 12 {
		t.Errorf("seen apps = %d, want 12", got)
	}
	if got := len(UnseenApps()); got != 6 {
		t.Errorf("unseen apps = %d, want 6", got)
	}
	// The paper's applications must all be present.
	for _, name := range []string{"163", "msn", "slashdot", "youtube", "google",
		"amazon", "ebay", "sina", "espn", "bbc", "cnn", "twitter",
		"yahoo", "nytimes", "stackoverflow", "taobao", "tmall", "jd"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("missing application %q", name)
		}
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("expected error for unknown application")
	}
	if len(Names()) != 18 || len(SortedNames()) != 18 {
		t.Error("Names/SortedNames wrong")
	}
}

func TestSpecParametersSane(t *testing.T) {
	for _, s := range Registry() {
		if s.ClickableDensity <= 0 || s.ClickableDensity > 1 {
			t.Errorf("%s: clickable density %v out of range", s.Name, s.ClickableDensity)
		}
		if s.LinkDensity <= 0 || s.LinkDensity > s.ClickableDensity {
			t.Errorf("%s: link density %v should be within (0, clickable]", s.Name, s.LinkDensity)
		}
		if s.Behavior.Noise < 0 || s.Behavior.Noise > 0.5 {
			t.Errorf("%s: noise %v out of range", s.Name, s.Behavior.Noise)
		}
		if s.PageCount < 2 {
			t.Errorf("%s: needs at least 2 pages", s.Name)
		}
		if len(s.Workloads) != webevent.NumInteractions {
			t.Errorf("%s: %d workload models, want %d", s.Name, len(s.Workloads), webevent.NumInteractions)
		}
		if !s.Behavior.TapManifestation.IsTap() || !s.Behavior.MoveManifestation.IsMove() {
			t.Errorf("%s: manifestation types wrong", s.Name)
		}
	}
}

func TestWorkloadMagnitudes(t *testing.T) {
	// Loads must be heavyweight (seconds at max performance), taps moderate
	// (tens to hundreds of ms), moves light (ms to tens of ms); this ordering
	// is what gives the three QoS classes their distinct scheduling pressure.
	p := acmp.Exynos5410()
	max := p.MaxPerformance()
	rng := rand.New(rand.NewSource(1))
	for _, s := range Registry() {
		var loadSum, tapSum, moveSum simtime.Duration
		const n = 200
		for i := 0; i < n; i++ {
			loadSum += p.Latency(s.Workloads[webevent.LoadInteraction].Sample(rng), max)
			tapSum += p.Latency(s.Workloads[webevent.TapInteraction].Sample(rng), max)
			moveSum += p.Latency(s.Workloads[webevent.MoveInteraction].Sample(rng), max)
		}
		load, tap, move := loadSum/n, tapSum/n, moveSum/n
		if load < 800*simtime.Millisecond || load > 3500*simtime.Millisecond {
			t.Errorf("%s: mean load latency at max perf = %v, want ~1–3s", s.Name, load)
		}
		if tap < 40*simtime.Millisecond || tap > 450*simtime.Millisecond {
			t.Errorf("%s: mean tap latency at max perf = %v, want tens-to-hundreds ms", s.Name, tap)
		}
		if move < 2*simtime.Millisecond || move > 33*simtime.Millisecond {
			t.Errorf("%s: mean move latency at max perf = %v, want below the 33ms target", s.Name, move)
		}
	}
}

func TestSampleWorkloadTargetKindAdjustment(t *testing.T) {
	s, _ := ByName("cnn")
	rng := rand.New(rand.NewSource(7))
	var plain, menu int64
	for i := 0; i < 500; i++ {
		plain += s.SampleWorkload(webevent.Click, dom.Link, rng).Cycles
		menu += s.SampleWorkload(webevent.Click, dom.Button, rng).Cycles
	}
	if menu <= plain {
		t.Error("menu-toggle taps should be heavier than link taps on average")
	}
	// Unknown interaction falls back to a small default.
	w := s.SampleWorkload(webevent.Type(99), dom.Text, rng)
	if w.Cycles <= 0 {
		t.Error("fallback workload should be non-trivial")
	}
}

func TestBuildPageDeterministic(t *testing.T) {
	s, _ := ByName("amazon")
	a := s.BuildPage("home", 42)
	b := s.BuildPage("home", 42)
	if a.Len() != b.Len() {
		t.Fatalf("same seed should give same page size: %d vs %d", a.Len(), b.Len())
	}
	if a.ClickableFraction() != b.ClickableFraction() {
		t.Error("same seed should give identical clickable fraction")
	}
	c := s.BuildPage("home", 43)
	if a.Len() == c.Len() && a.ClickableFraction() == c.ClickableFraction() {
		t.Error("different seeds should (almost surely) give different pages")
	}
}

func TestBuildPageDensities(t *testing.T) {
	for _, s := range Registry() {
		tree := s.BuildPage("home", 11)
		if tree.Len() < 10 {
			t.Errorf("%s: page too small (%d nodes)", s.Name, tree.Len())
		}
		cf := tree.ClickableFraction()
		if cf < s.ClickableDensity*0.4 || cf > s.ClickableDensity*2.5+0.2 {
			t.Errorf("%s: clickable fraction %v far from target %v", s.Name, cf, s.ClickableDensity)
		}
		lf := tree.LinkFraction()
		if lf <= 0 {
			t.Errorf("%s: no visible links", s.Name)
		}
		if !tree.Scrollable() {
			t.Errorf("%s: pages should be scrollable", s.Name)
		}
		// The LNES of a fresh page must allow taps and moves.
		lnes := tree.LNES()
		hasTap, hasMove := false, false
		for _, typ := range lnes {
			if typ.IsTap() {
				hasTap = true
			}
			if typ.IsMove() {
				hasMove = true
			}
		}
		if !hasTap || !hasMove {
			t.Errorf("%s: LNES %v should allow both taps and moves", s.Name, lnes)
		}
	}
}

func TestPageNames(t *testing.T) {
	s, _ := ByName("cnn")
	if s.PageName(0) != "home" {
		t.Errorf("PageName(0) = %q", s.PageName(0))
	}
	if s.PageName(3) == "home" {
		t.Error("non-zero page index should not be home")
	}
	// Page indices wrap around the page count.
	if s.PageName(3) != s.PageName(3+s.PageCount) {
		t.Error("page names should wrap modulo PageCount")
	}
}

func TestPerAppDifferentiation(t *testing.T) {
	amazon, _ := ByName("amazon")
	slashdot, _ := ByName("slashdot")
	google, _ := ByName("google")
	if amazon.ClickableDensity <= slashdot.ClickableDensity {
		t.Error("amazon should have a denser clickable area than slashdot (paper Sec. 6.2)")
	}
	if slashdot.Behavior.Noise >= google.Behavior.Noise {
		t.Error("slashdot users should be more predictable than google users (paper Fig. 8)")
	}
}

func TestHeavyTailProducesTypeICandidates(t *testing.T) {
	// A noticeable fraction of tap events must be impossible to finish
	// within 300 ms even at maximum performance — these are the paper's
	// Type I events.
	p := acmp.Exynos5410()
	max := p.MaxPerformance()
	rng := rand.New(rand.NewSource(3))
	s, _ := ByName("cnn")
	over := 0
	const n = 2000
	for i := 0; i < n; i++ {
		w := s.Workloads[webevent.TapInteraction].Sample(rng)
		if p.Latency(w, max) > webevent.TapInteraction.QoSTarget() {
			over++
		}
	}
	frac := float64(over) / n
	if frac < 0.03 || frac > 0.30 {
		t.Errorf("fraction of infeasible taps = %v, want roughly 5–20%%", frac)
	}
}
