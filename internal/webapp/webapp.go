// Package webapp models the suite of mobile Web applications used by the
// paper: the 12 "seen" applications that also train the event predictor
// (163, msn, slashdot, youtube, google, amazon, ebay, sina, espn, bbc, cnn,
// twitter) and the 6 "unseen" applications used only for evaluation (yahoo,
// nytimes, stackoverflow, taobao, tmall, jd).
//
// Each application is described by a Spec: the shape of its DOM (clickable
// density, link density, menus, page graph), the hardware workload of its
// event callbacks plus rendering work, and the behaviour of users
// interacting with it (scroll-run lengths, think times, burstiness,
// navigation propensity, and an intrinsic unpredictability/noise term).
// These parameters drive both the synthetic page builder and the synthetic
// interaction-trace generator, replacing the real webpages and recorded user
// traces of the original study.
package webapp

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/acmp"
	"repro/internal/dom"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

// WorkloadDist describes the distribution of hardware work for one primitive
// interaction of an application. Cycle counts are expressed in millions of
// cycles on the CPI-reference (big) core; Tmem in milliseconds.
type WorkloadDist struct {
	// TmemMeanMs is the mean memory-bound time in ms.
	TmemMeanMs float64
	// TmemJitter is the relative jitter (±fraction of the mean).
	TmemJitter float64
	// CyclesMeanM is the mean compute work in millions of cycles.
	CyclesMeanM float64
	// CyclesJitter is the relative jitter (±fraction of the mean).
	CyclesJitter float64
	// HeavyProb is the probability an instance is "heavy" (a Type I
	// candidate whose work is multiplied by HeavyFactor).
	HeavyProb float64
	// HeavyFactor is the multiplier applied to heavy instances.
	HeavyFactor float64
}

// Sample draws one workload instance from the distribution.
func (d WorkloadDist) Sample(rng *rand.Rand) acmp.Workload {
	jitter := func(mean, rel float64) float64 {
		if mean <= 0 {
			return 0
		}
		v := mean * (1 + rel*(2*rng.Float64()-1))
		if v < 0 {
			v = 0
		}
		return v
	}
	tmem := jitter(d.TmemMeanMs, d.TmemJitter)
	cycles := jitter(d.CyclesMeanM, d.CyclesJitter)
	if d.HeavyProb > 0 && rng.Float64() < d.HeavyProb {
		cycles *= d.HeavyFactor
		tmem *= 1.3
	}
	return acmp.Workload{
		Tmem:   simtime.FromMillis(tmem),
		Cycles: int64(cycles * 1e6),
	}
}

// Behavior captures how users interact with an application.
type Behavior struct {
	// Noise is the probability that the user's next action deviates from
	// the "intent" the features would predict; it is the dominant driver of
	// per-application prediction accuracy.
	Noise float64
	// ScrollRunMean is the mean length of a run of consecutive move events.
	ScrollRunMean float64
	// ScrollGapMs is the mean gap between move events inside a run.
	ScrollGapMs float64
	// ThinkMeanMs and ThinkJitter describe the pause before a deliberate
	// action (tap or new scroll run).
	ThinkMeanMs float64
	ThinkJitter float64
	// BurstProb is the probability a deliberate action arrives in a burst
	// (short gap) right after the previous event, producing the event
	// interference the paper's Type II/III events come from.
	BurstProb float64
	// BurstGapMs is the mean gap of burst arrivals.
	BurstGapMs float64
	// NavProb is the probability a tap is a navigation (followed by a load).
	NavProb float64
	// MenuProb is the probability a tap is on a menu toggle.
	MenuProb float64
	// FormProb is the probability a tap is a form submission.
	FormProb float64
	// ScrollAffinity is the probability that, when idle, the user starts a
	// new scroll run rather than tapping.
	ScrollAffinity float64
	// AfterLoadScrollProb is the probability the first interaction after a
	// page load is a scroll (users scan new content before acting).
	AfterLoadScrollProb float64
	// MenuFollowProb is the probability that, right after expanding a menu,
	// the user taps one of its items.
	MenuFollowProb float64
	// TapManifestation is the DOM event type this app delivers taps as.
	TapManifestation webevent.Type
	// MoveManifestation is the DOM event type this app delivers moves as.
	MoveManifestation webevent.Type
}

// Spec describes one application of the benchmark suite.
type Spec struct {
	// Name is the application name used throughout the experiments.
	Name string
	// Seen marks applications whose training traces train the predictor.
	Seen bool
	// ClickableDensity is the target fraction of the viewport covered by
	// tappable elements.
	ClickableDensity float64
	// LinkDensity is the target fraction of the viewport covered by links.
	LinkDensity float64
	// MenuCount is the number of collapsible menus per page.
	MenuCount int
	// PageCount is the number of distinct pages in the navigation graph.
	PageCount int
	// PageHeightVP is the page height in viewport units.
	PageHeightVP float64
	// NodesPerViewport controls DOM density.
	NodesPerViewport int
	// Workloads maps each primitive interaction to its workload model.
	Workloads map[webevent.Interaction]WorkloadDist
	// Behavior is the user behaviour model for the application.
	Behavior Behavior
}

// String returns the app name.
func (s *Spec) String() string { return s.Name }

// SampleWorkload draws a ground-truth workload for an event of the given
// type. Menu toggles and form submissions carry a modest extra style/layout
// cost relative to plain taps.
func (s *Spec) SampleWorkload(typ webevent.Type, targetKind dom.Kind, rng *rand.Rand) acmp.Workload {
	d, ok := s.Workloads[typ.Interaction()]
	if !ok {
		d = WorkloadDist{TmemMeanMs: 5, CyclesMeanM: 50, CyclesJitter: 0.3}
	}
	w := d.Sample(rng)
	switch targetKind {
	case dom.Button: // menu toggles re-layout the expanded subtree
		w.Cycles = w.Cycles * 13 / 10
	case dom.Form:
		w.Cycles = w.Cycles * 12 / 10
	}
	return w
}

// PageName returns the canonical name of the i-th page of the application's
// navigation graph.
func (s *Spec) PageName(i int) string {
	if i <= 0 {
		return "home"
	}
	return fmt.Sprintf("page-%02d", i%s.PageCount)
}

// BuildPage deterministically generates the DOM tree of the named page. The
// same (application, page, seed) triple always yields the same tree, so
// navigation during trace generation and replay is reproducible.
func (s *Spec) BuildPage(page string, seed int64) *dom.Tree {
	rng := rand.New(rand.NewSource(seed ^ int64(hashString(s.Name+"/"+page))))
	const viewportH = 1000.0
	pageH := viewportH * s.PageHeightVP
	t := dom.NewTree(page, pageH, viewportH)
	root := t.Root()
	t.Node(root).Listeners = []webevent.Type{s.Behavior.MoveManifestation}

	bands := int(s.PageHeightVP + 0.5)
	if bands < 1 {
		bands = 1
	}
	tap := s.Behavior.TapManifestation

	// Collapsible menus near the top of the page with their toggle buttons.
	for m := 0; m < s.MenuCount; m++ {
		y := 80 + float64(m)*140
		menu := t.Add(&dom.Node{
			Kind: dom.Menu, Parent: root, Y: y + 50, Height: 260, Area: 0.22, Hidden: true,
		})
		t.Add(&dom.Node{
			Kind: dom.Button, Parent: root, Y: y, Height: 45, Area: 0.05,
			Listeners: []webevent.Type{tap}, TogglesMenu: menu,
		})
		items := 3 + rng.Intn(3)
		for i := 0; i < items; i++ {
			t.Add(&dom.Node{
				Kind: dom.MenuItem, Parent: menu, Y: y + 60 + float64(i)*45, Height: 40, Area: 0.05,
				Listeners:   []webevent.Type{tap},
				NavigatesTo: s.PageName(1 + rng.Intn(s.PageCount)),
			})
		}
	}

	// Per-viewport band content: links, buttons, images and text laid out to
	// approximate the app's clickable and link densities.
	for b := 0; b < bands; b++ {
		bandTop := float64(b) * viewportH
		// Links first, until the link density budget of this band is used.
		linkBudget := s.LinkDensity
		for linkBudget > 0.005 {
			area := 0.02 + 0.04*rng.Float64()
			if area > linkBudget {
				area = linkBudget
			}
			t.Add(&dom.Node{
				Kind: dom.Link, Parent: root,
				Y: bandTop + rng.Float64()*(viewportH-60), Height: 40 + rng.Float64()*30, Area: area,
				Listeners:   []webevent.Type{tap},
				NavigatesTo: s.PageName(1 + rng.Intn(s.PageCount)),
			})
			linkBudget -= area
		}
		// Non-link tappables (buttons, images with handlers) fill the rest of
		// the clickable budget.
		tapBudget := s.ClickableDensity - s.LinkDensity
		for tapBudget > 0.005 {
			area := 0.03 + 0.05*rng.Float64()
			if area > tapBudget {
				area = tapBudget
			}
			kind := dom.Image
			if rng.Float64() < 0.5 {
				kind = dom.Container
			}
			t.Add(&dom.Node{
				Kind: kind, Parent: root,
				Y: bandTop + rng.Float64()*(viewportH-80), Height: 60 + rng.Float64()*60, Area: area,
				Listeners: []webevent.Type{tap},
			})
			tapBudget -= area
		}
		// Inert text fills visual space but carries no listeners.
		for i := 0; i < s.NodesPerViewport/3; i++ {
			t.Add(&dom.Node{
				Kind: dom.Text, Parent: root,
				Y: bandTop + rng.Float64()*(viewportH-40), Height: 30, Area: 0.03,
			})
		}
	}

	// One search/login form on pages that submit.
	if s.Behavior.FormProb > 0 {
		form := t.Add(&dom.Node{
			Kind: dom.Form, Parent: root, Y: 30, Height: 50, Area: 0.08,
			Listeners: []webevent.Type{webevent.Submit, tap},
		})
		t.Add(&dom.Node{Kind: dom.Input, Parent: form, Y: 32, Height: 40, Area: 0.05})
	}
	return t
}

// hashString is a tiny FNV-1a used to derive page seeds; it avoids importing
// hash/fnv for a two-line use.
func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// registry is the ordered application suite. Order matters for experiment
// tables: seen applications first (in the paper's Fig. 8 order), then the
// unseen applications.
var registry = buildRegistry()

// Registry returns every application spec, seen applications first.
func Registry() []*Spec { return registry }

// SeenApps returns the 12 applications used for predictor training.
func SeenApps() []*Spec { return filter(true) }

// UnseenApps returns the 6 applications only used for evaluation.
func UnseenApps() []*Spec { return filter(false) }

// ByName returns the spec with the given name or an error.
func ByName(name string) (*Spec, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("webapp: unknown application %q", name)
}

// Names returns all application names, seen first.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}

func filter(seen bool) []*Spec {
	var out []*Spec
	for _, s := range registry {
		if s.Seen == seen {
			out = append(out, s)
		}
	}
	return out
}

// appParams is the compact per-application tuning table expanded by
// buildRegistry into full Specs.
type appParams struct {
	name      string
	seen      bool
	clickable float64
	links     float64
	menus     int
	pages     int
	heightVP  float64
	noise     float64
	scrollRun float64
	navProb   float64
	burstProb float64
	loadScale float64 // scales load workload (content-heavy sites load slower)
	tapScale  float64 // scales tap workload
	touchTap  bool    // delivers taps as touchstart instead of click
	touchMove bool    // delivers moves as touchmove instead of scroll
	formProb  float64
}

func buildRegistry() []*Spec {
	params := []appParams{
		// The 12 seen applications (Fig. 8 order).
		{"163", true, 0.27, 0.21, 2, 8, 6, 0.07, 9.0, 0.30, 0.22, 1.15, 1.10, false, false, 0.02},
		{"msn", true, 0.28, 0.20, 2, 8, 6, 0.05, 8.8, 0.28, 0.20, 1.10, 1.05, false, false, 0.02},
		{"slashdot", true, 0.14, 0.11, 1, 6, 7, 0.03, 10.5, 0.22, 0.15, 0.95, 0.90, false, false, 0.02},
		{"youtube", true, 0.42, 0.18, 1, 10, 5, 0.08, 7.6, 0.34, 0.25, 1.05, 1.20, true, true, 0.05},
		{"google", true, 0.24, 0.16, 1, 10, 3, 0.14, 6.5, 0.38, 0.30, 0.80, 0.85, false, false, 0.12},
		{"amazon", true, 0.45, 0.26, 2, 12, 6, 0.11, 8.0, 0.33, 0.28, 1.10, 1.15, true, true, 0.08},
		{"ebay", true, 0.40, 0.24, 2, 10, 6, 0.09, 8.0, 0.32, 0.26, 1.05, 1.10, true, true, 0.08},
		{"sina", true, 0.26, 0.20, 2, 8, 8, 0.08, 10.0, 0.26, 0.22, 1.20, 0.70, false, false, 0.02},
		{"espn", true, 0.28, 0.21, 2, 8, 6, 0.07, 9.2, 0.28, 0.24, 1.15, 1.10, false, false, 0.02},
		{"bbc", true, 0.27, 0.20, 2, 8, 7, 0.06, 9.6, 0.27, 0.21, 1.10, 1.05, false, false, 0.02},
		{"cnn", true, 0.29, 0.21, 2, 8, 7, 0.08, 9.4, 0.29, 0.26, 1.25, 1.15, false, false, 0.02},
		{"twitter", true, 0.38, 0.17, 1, 8, 9, 0.09, 11.0, 0.24, 0.30, 0.95, 1.00, true, true, 0.05},
		// The 6 unseen applications.
		{"yahoo", false, 0.29, 0.21, 2, 8, 6, 0.09, 9.0, 0.29, 0.23, 1.10, 1.05, false, false, 0.03},
		{"nytimes", false, 0.24, 0.19, 2, 8, 8, 0.09, 10.0, 0.25, 0.20, 1.20, 1.10, false, false, 0.02},
		{"stackoverflow", false, 0.20, 0.16, 1, 8, 7, 0.08, 9.8, 0.24, 0.18, 0.95, 0.95, false, false, 0.04},
		{"taobao", false, 0.44, 0.25, 2, 12, 6, 0.11, 8.0, 0.33, 0.28, 1.15, 1.15, true, true, 0.08},
		{"tmall", false, 0.42, 0.24, 2, 12, 6, 0.10, 8.0, 0.32, 0.27, 1.15, 1.12, true, true, 0.08},
		{"jd", false, 0.41, 0.24, 2, 12, 6, 0.10, 8.2, 0.31, 0.26, 1.12, 1.10, true, true, 0.08},
	}
	specs := make([]*Spec, 0, len(params))
	for _, p := range params {
		tapManifest := webevent.Click
		if p.touchTap {
			tapManifest = webevent.TouchStart
		}
		moveManifest := webevent.Scroll
		if p.touchMove {
			moveManifest = webevent.TouchMove
		}
		specs = append(specs, &Spec{
			Name:             p.name,
			Seen:             p.seen,
			ClickableDensity: p.clickable,
			LinkDensity:      p.links,
			MenuCount:        p.menus,
			PageCount:        p.pages,
			PageHeightVP:     p.heightVP,
			NodesPerViewport: 12,
			Workloads: map[webevent.Interaction]WorkloadDist{
				webevent.LoadInteraction: {
					TmemMeanMs: 280 * p.loadScale, TmemJitter: 0.3,
					CyclesMeanM: 2300 * p.loadScale, CyclesJitter: 0.35,
					HeavyProb: 0.10, HeavyFactor: 2.2,
				},
				webevent.TapInteraction: {
					TmemMeanMs: 18 * p.tapScale, TmemJitter: 0.4,
					CyclesMeanM: 290 * p.tapScale, CyclesJitter: 0.45,
					HeavyProb: 0.13, HeavyFactor: 2.6,
				},
				webevent.MoveInteraction: {
					TmemMeanMs: 2.0, TmemJitter: 0.4,
					CyclesMeanM: 9 * p.tapScale, CyclesJitter: 0.5,
					HeavyProb: 0.08, HeavyFactor: 7.0,
				},
			},
			Behavior: Behavior{
				Noise:               p.noise,
				ScrollRunMean:       p.scrollRun,
				ScrollGapMs:         650,
				ThinkMeanMs:         9000,
				ThinkJitter:         0.6,
				BurstProb:           p.burstProb,
				BurstGapMs:          160,
				NavProb:             p.navProb,
				MenuProb:            0.18,
				FormProb:            p.formProb,
				ScrollAffinity:      0.85,
				AfterLoadScrollProb: 0.95,
				MenuFollowProb:      0.92,
				TapManifestation:    tapManifest,
				MoveManifestation:   moveManifest,
			},
		})
	}
	// Sanity: names must be unique.
	names := make(map[string]bool, len(specs))
	for _, s := range specs {
		if names[s.Name] {
			panic("webapp: duplicate application name " + s.Name)
		}
		names[s.Name] = true
	}
	return specs
}

// SortedNames returns all application names in lexical order (useful for
// deterministic iteration in tests).
func SortedNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}
