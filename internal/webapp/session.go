package webapp

import (
	"sync"
	"sync/atomic"

	"repro/internal/dom"
	"repro/internal/webevent"
)

// pageKey identifies one deterministically built page tree.
type pageKey struct {
	app  string
	page string
	seed int64
}

// pageCache memoizes built page trees. BuildPage is deterministic in
// (application, page, seed), and a session mutates only node visibility and
// the viewport, so every consumer — the trace generator, the predictor's DOM
// replica, the accuracy evaluation — can start from a cloned master instead
// of rebuilding the page. The cache is process-wide and immutable: masters
// are never handed out directly, only clones.
var (
	pageCache       sync.Map // pageKey -> *dom.Tree (immutable master)
	pageCacheOff    atomic.Bool
	pageCacheBuilds atomic.Int64
	pageCacheHits   atomic.Int64
)

// SetPageCache enables or disables the shared page-tree cache and reports
// the previous setting. It exists for cold-path benchmarking (cmd/pes-bench)
// and must not be toggled while sessions are being built concurrently.
func SetPageCache(enabled bool) (was bool) {
	return !pageCacheOff.Swap(!enabled)
}

// PageCacheStats returns how many page trees were built and how many session
// page loads were served by cloning a cached master.
func PageCacheStats() (builds, hits int64) {
	return pageCacheBuilds.Load(), pageCacheHits.Load()
}

// builtPageEntry pairs a master page tree with its semantic view.
type builtPageEntry struct {
	tree *dom.Tree
	sem  *dom.SemanticTree
}

// builtPage returns a mutable tree for the page plus its semantic view, from
// the cache when enabled.
func builtPage(spec *Spec, page string, seed int64) (*dom.Tree, *dom.SemanticTree) {
	if pageCacheOff.Load() {
		t := spec.BuildPage(page, seed)
		return t, dom.BuildSemanticTree(t)
	}
	k := pageKey{app: spec.Name, page: page, seed: seed}
	if v, ok := pageCache.Load(k); ok {
		pageCacheHits.Add(1)
		e := v.(builtPageEntry)
		t := e.tree.Clone()
		return t, e.sem.Rebind(t)
	}
	pageCacheBuilds.Add(1)
	t := spec.BuildPage(page, seed)
	sem := dom.BuildSemanticTree(t)
	// Store an immutable snapshot; the freshly built tree itself is returned
	// to the caller for mutation. A concurrent racer may have stored first —
	// both snapshots are identical, so either winning is fine. The semantic
	// entries are immutable and shared; only its tree binding is per-session.
	master := t.Clone()
	pageCache.LoadOrStore(k, builtPageEntry{tree: master, sem: sem.Rebind(master)})
	return t, sem
}

// Session tracks the DOM state of one user's interaction with an
// application: the current page's DOM tree (and its semantic view), the
// scroll position, expanded menus, and any pending navigation. Both the
// trace generator and the runtime predictor replay events through a Session
// so that they observe exactly the same DOM state for the same event
// history.
type Session struct {
	Spec *Spec
	// DOMSeed parameterizes the deterministic page builder; traces record it
	// so that replay reconstructs identical pages.
	DOMSeed int64

	tree     *dom.Tree
	semantic *dom.SemanticTree
	// pendingPage is the destination of a navigation tap that has not yet
	// been followed by its Load event.
	pendingPage string
	pageVisits  int
}

// NewSession starts a session on the application's home page.
func NewSession(spec *Spec, domSeed int64) *Session {
	s := &Session{Spec: spec, DOMSeed: domSeed}
	s.loadPage("home")
	return s
}

func (s *Session) loadPage(page string) {
	s.tree, s.semantic = builtPage(s.Spec, page, s.DOMSeed)
	s.pageVisits++
}

// Tree returns the current page's DOM tree.
func (s *Session) Tree() *dom.Tree { return s.tree }

// Semantic returns the semantic (accessibility) view of the current page.
func (s *Session) Semantic() *dom.SemanticTree { return s.semantic }

// PendingNavigation returns the page a navigation tap has committed to, or
// "" when no navigation is outstanding.
func (s *Session) PendingNavigation() string { return s.pendingPage }

// PageVisits returns how many pages (including the initial home page) have
// been loaded in this session.
func (s *Session) PageVisits() int { return s.pageVisits }

// CurrentPage returns the name of the page the session is on.
func (s *Session) CurrentPage() string { return s.tree.Page }

// Apply updates the DOM state in response to an event of the given type
// delivered to the given node, and returns the resulting mutation. Load
// events swap in the destination page (the pending navigation target, or the
// home page when there is none, e.g. for the session's initial load).
func (s *Session) Apply(typ webevent.Type, target dom.NodeID) dom.Mutation {
	if typ == webevent.Load {
		page := s.pendingPage
		if page == "" {
			page = "home"
		}
		// The very first load of the session lands on the already-built home
		// page; rebuilding it is equivalent and keeps replay deterministic.
		if !(s.pageVisits == 1 && page == "home" && s.tree.ViewportTop == 0) {
			s.loadPage(page)
		}
		s.pendingPage = ""
		return dom.Mutation{Kind: dom.Navigated, Page: page}
	}
	mut := s.tree.ApplyEvent(typ, target)
	if mut.Kind == dom.Navigated {
		s.pendingPage = mut.Page
	}
	return mut
}

// ApplyEvent is a convenience wrapper applying a runtime event.
func (s *Session) ApplyEvent(e *webevent.Event) dom.Mutation {
	return s.Apply(e.Type, dom.NodeID(e.Target))
}
