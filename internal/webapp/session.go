package webapp

import (
	"repro/internal/dom"
	"repro/internal/webevent"
)

// Session tracks the DOM state of one user's interaction with an
// application: the current page's DOM tree (and its semantic view), the
// scroll position, expanded menus, and any pending navigation. Both the
// trace generator and the runtime predictor replay events through a Session
// so that they observe exactly the same DOM state for the same event
// history.
type Session struct {
	Spec *Spec
	// DOMSeed parameterizes the deterministic page builder; traces record it
	// so that replay reconstructs identical pages.
	DOMSeed int64

	tree     *dom.Tree
	semantic *dom.SemanticTree
	// pendingPage is the destination of a navigation tap that has not yet
	// been followed by its Load event.
	pendingPage string
	pageVisits  int
}

// NewSession starts a session on the application's home page.
func NewSession(spec *Spec, domSeed int64) *Session {
	s := &Session{Spec: spec, DOMSeed: domSeed}
	s.loadPage("home")
	return s
}

func (s *Session) loadPage(page string) {
	s.tree = s.Spec.BuildPage(page, s.DOMSeed)
	s.semantic = dom.BuildSemanticTree(s.tree)
	s.pageVisits++
}

// Tree returns the current page's DOM tree.
func (s *Session) Tree() *dom.Tree { return s.tree }

// Semantic returns the semantic (accessibility) view of the current page.
func (s *Session) Semantic() *dom.SemanticTree { return s.semantic }

// PendingNavigation returns the page a navigation tap has committed to, or
// "" when no navigation is outstanding.
func (s *Session) PendingNavigation() string { return s.pendingPage }

// PageVisits returns how many pages (including the initial home page) have
// been loaded in this session.
func (s *Session) PageVisits() int { return s.pageVisits }

// CurrentPage returns the name of the page the session is on.
func (s *Session) CurrentPage() string { return s.tree.Page }

// Apply updates the DOM state in response to an event of the given type
// delivered to the given node, and returns the resulting mutation. Load
// events swap in the destination page (the pending navigation target, or the
// home page when there is none, e.g. for the session's initial load).
func (s *Session) Apply(typ webevent.Type, target dom.NodeID) dom.Mutation {
	if typ == webevent.Load {
		page := s.pendingPage
		if page == "" {
			page = "home"
		}
		// The very first load of the session lands on the already-built home
		// page; rebuilding it is equivalent and keeps replay deterministic.
		if !(s.pageVisits == 1 && page == "home" && s.tree.ViewportTop == 0) {
			s.loadPage(page)
		}
		s.pendingPage = ""
		return dom.Mutation{Kind: dom.Navigated, Page: page}
	}
	mut := s.tree.ApplyEvent(typ, target)
	if mut.Kind == dom.Navigated {
		s.pendingPage = mut.Page
	}
	return mut
}

// ApplyEvent is a convenience wrapper applying a runtime event.
func (s *Session) ApplyEvent(e *webevent.Event) dom.Mutation {
	return s.Apply(e.Type, dom.NodeID(e.Target))
}
