package cluster

import "repro/internal/obs"

// RegisterMetrics exposes the coordinator's counter families as Prometheus
// series on reg — sampled from the same atomics Stats() snapshots, so
// /healthz and /metrics can never disagree — and attaches the native shard
// round-trip histogram. Call once at wiring time, before the coordinator
// serves campaigns.
func (c *Coordinator) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("pes_cluster_workers",
		"Currently healthy cluster members.",
		func() float64 { return float64(len(c.members.healthy())) })
	reg.CounterFunc("pes_cluster_shards_total",
		"Shard dispatches, re-dispatches after worker failure included.",
		func() float64 { return float64(c.shards.Load()) })
	reg.CounterFunc("pes_cluster_sessions_routed_total",
		"Sessions inside dispatched shards.",
		func() float64 { return float64(c.sessionsRouted.Load()) })
	reg.CounterFunc("pes_cluster_retries_total",
		"Redistribution events after a worker failure.",
		func() float64 { return float64(c.retries.Load()) })
	reg.CounterFunc("pes_cluster_worker_failures_total",
		"Failed shard dispatches that caused re-routing.",
		func() float64 { return float64(c.workerFailures.Load()) })
	reg.CounterFunc("pes_cluster_steals_total",
		"Dispatches an idle worker stole from the longest queue.",
		func() float64 { return float64(c.steals.Load()) })
	reg.CounterFunc("pes_cluster_sessions_stolen_total",
		"Sessions inside stolen dispatches.",
		func() float64 { return float64(c.sessionsStolen.Load()) })
	reg.CounterFunc("pes_cluster_spill_overs_total",
		"Fallbacks to local in-process execution (no live workers).",
		func() float64 { return float64(c.spillOvers.Load()) })
	reg.CounterFunc("pes_cluster_sessions_spilled_total",
		"Sessions executed on the local spill-over worker.",
		func() float64 { return float64(c.sessionsSpilled.Load()) })
	reg.CounterFunc("pes_cluster_client_faults_total",
		"Campaigns rejected for a deterministic client fault (4xx).",
		func() float64 { return float64(c.clientFaults.Load()) })
	reg.CounterFunc("pes_cluster_probes_skipped_total",
		"Health probes suppressed by a member's failure backoff window.",
		func() float64 { return float64(c.probesSkipped.Load()) })
	c.shardLatency = reg.Histogram("pes_shard_roundtrip_seconds",
		"Round-trip wall time of one successful shard dispatch.", nil)
}
