package cluster

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRegisterMetricsExposesClusterFamilies scrapes a freshly wired
// coordinator: every counter family the CI metrics-smoke job gates on must
// render, and the native shard round-trip histogram must be attached.
func TestRegisterMetricsExposesClusterFamilies(t *testing.T) {
	coord, err := New(Config{Workers: []string{"worker-a:9001"}, Transport: everythingFails{}})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	reg := obs.NewRegistry()
	coord.RegisterMetrics(reg)
	if coord.shardLatency == nil {
		t.Fatal("RegisterMetrics did not attach the shard round-trip histogram")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, series := range []string{
		"pes_cluster_workers ",
		"pes_cluster_shards_total 0",
		"pes_cluster_sessions_routed_total 0",
		"pes_cluster_retries_total 0",
		"pes_cluster_worker_failures_total 0",
		"pes_cluster_steals_total 0",
		"pes_cluster_sessions_stolen_total 0",
		"pes_cluster_spill_overs_total 0",
		"pes_cluster_sessions_spilled_total 0",
		"pes_cluster_client_faults_total 0",
		"pes_cluster_probes_skipped_total 0",
		"pes_shard_roundtrip_seconds_count 0",
	} {
		if !strings.Contains(body, "\n"+series) {
			t.Errorf("scrape is missing series %q", series)
		}
	}
}
