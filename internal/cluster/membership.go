package cluster

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Member sources: how an address entered the membership set.
const (
	// SourceStatic marks a worker seeded by Config.Workers (the -workers
	// flag). Static members are never forgotten — a dead static worker is
	// marked unhealthy and rejoins automatically when its health probe
	// succeeds again.
	SourceStatic = "static"
	// SourceRegistered marks a worker that joined at runtime through
	// Coordinator.Register (the worker's -coordinator flag). Registered
	// members leave through Deregister; like static members they are
	// health-checked and marked unhealthy rather than dropped on failure,
	// so a re-registration (or a passing probe) heals them.
	SourceRegistered = "registered"
)

// Member is one cluster member's externally visible state.
type Member struct {
	// Addr is the worker address ("host:port" or a full URL).
	Addr string `json:"addr"`
	// Source is SourceStatic or SourceRegistered.
	Source string `json:"source"`
	// Healthy reports whether the member currently receives work: probes
	// pass and no dispatch-level failure has been observed since.
	Healthy bool `json:"healthy"`
	// Fails is the current run of consecutive failed health probes.
	Fails int `json:"fails,omitempty"`
	// BackoffUntil, when set, is when the coordinator next re-probes this
	// member. A flapping worker earns jittered exponentially growing gaps
	// (re-routing away from it stays immediate; only the re-probing backs
	// off), so a wedged worker is not hammered with probes it will fail.
	BackoffUntil time.Time `json:"backoff_until,omitempty"`

	// faultStreak counts consecutive failure events (dispatch faults and
	// probe failures) since the last success; it drives the backoff curve.
	faultStreak int
}

// membership is the coordinator's live worker set: a mutable map of members
// plus a consistent-hash ring over the healthy ones, rebuilt on every
// change. Watchers (in-flight runs) are notified of changes through a
// closed-and-replaced channel so a mid-campaign join can start stealing
// work immediately.
type membership struct {
	replicas    int
	backoffBase time.Duration // first re-probe gap after a failure
	backoffMax  time.Duration // backoff growth cap

	mu      sync.Mutex
	members map[string]*Member
	ring    *ring         // over healthy member addresses
	watch   chan struct{} // closed on change, then replaced
	rng     *rand.Rand    // backoff jitter; guarded by mu
}

func newMembership(seed []string, replicas int) *membership {
	m := &membership{
		replicas:    replicas,
		backoffBase: time.Second,
		backoffMax:  time.Minute,
		members:     make(map[string]*Member, len(seed)),
		watch:       make(chan struct{}),
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, addr := range seed {
		m.members[addr] = &Member{Addr: addr, Source: SourceStatic, Healthy: true}
	}
	m.rebuildLocked()
	return m
}

// rebuildLocked recomputes the healthy ring and wakes watchers. Caller
// holds m.mu.
func (m *membership) rebuildLocked() {
	healthy := make([]string, 0, len(m.members))
	for addr, mem := range m.members {
		if mem.Healthy {
			healthy = append(healthy, addr)
		}
	}
	sort.Strings(healthy)
	m.ring = newRing(healthy, m.replicas)
	close(m.watch)
	m.watch = make(chan struct{})
}

// watchCh returns a channel closed at the next membership change.
func (m *membership) watchCh() <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.watch
}

// backoffLocked charges one failure to a member's streak and schedules its
// next probe: jittered exponential growth from backoffBase, capped at
// backoffMax. Caller holds m.mu.
func (m *membership) backoffLocked(mem *Member) {
	mem.faultStreak++
	d := m.backoffBase << (mem.faultStreak - 1)
	if d > m.backoffMax || d <= 0 { // <= 0: shift overflow
		d = m.backoffMax
	}
	// Full jitter on the upper half: [d/2, d). Decorrelates coordinators
	// probing the same flapping worker.
	d = d/2 + time.Duration(m.rng.Int63n(int64(d/2)+1))
	mem.BackoffUntil = time.Now().Add(d)
}

// healLocked clears a member's failure history. Caller holds m.mu.
func healLocked(mem *Member) {
	mem.Fails = 0
	mem.faultStreak = 0
	mem.BackoffUntil = time.Time{}
}

// register adds (or heals) a member and reports whether membership changed.
func (m *membership) register(addr, source string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mem, ok := m.members[addr]; ok {
		if mem.Healthy && mem.Fails == 0 {
			healLocked(mem) // a live re-announce also clears any backoff
			return false
		}
		mem.Healthy = true
		healLocked(mem)
		m.rebuildLocked()
		return true
	}
	m.members[addr] = &Member{Addr: addr, Source: source, Healthy: true}
	m.rebuildLocked()
	return true
}

// deregister removes a member entirely and reports whether it existed.
func (m *membership) deregister(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.members[addr]; !ok {
		return false
	}
	delete(m.members, addr)
	m.rebuildLocked()
	return true
}

// fault records a dispatch-level worker failure: the member is marked
// unhealthy immediately (health probes or a re-registration heal it) and
// its next probe backs off. Reports whether the member transitioned.
func (m *membership) fault(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[addr]
	if !ok {
		return false
	}
	m.backoffLocked(mem)
	if !mem.Healthy {
		return false
	}
	mem.Healthy = false
	m.rebuildLocked()
	return true
}

// probe records one health-check outcome. A success resets the failure run
// and heals the member; failAfter consecutive failures mark it unhealthy.
// Reports whether the member's health transitioned.
func (m *membership) probe(addr string, ok bool, failAfter int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, present := m.members[addr]
	if !present {
		return false
	}
	if ok {
		healed := !mem.Healthy
		healLocked(mem)
		if !healed {
			return false
		}
		mem.Healthy = true
		m.rebuildLocked()
		return true
	}
	mem.Fails++
	m.backoffLocked(mem)
	if !mem.Healthy || mem.Fails < failAfter {
		return false
	}
	mem.Healthy = false
	m.rebuildLocked()
	return true
}

// probeTargets returns the member addresses due for a health probe at now
// (sorted), plus how many members were skipped because their backoff window
// has not elapsed.
func (m *membership) probeTargets(now time.Time) (due []string, skipped int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for addr, mem := range m.members {
		if mem.BackoffUntil.After(now) {
			skipped++
			continue
		}
		due = append(due, addr)
	}
	sort.Strings(due)
	return due, skipped
}

// owner returns the healthy member owning the key, skipping excluded
// addresses; ok is false when no eligible member exists.
func (m *membership) owner(key string, excluded map[string]bool) (string, bool) {
	m.mu.Lock()
	r := m.ring
	m.mu.Unlock()
	return r.owner(key, excluded)
}

// healthy returns the healthy member addresses, sorted.
func (m *membership) healthy() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.members))
	for addr, mem := range m.members {
		if mem.Healthy {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

// addrs returns every member address (healthy or not), sorted.
func (m *membership) addrs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.members))
	for addr := range m.members {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// isHealthy reports whether addr is a current healthy member.
func (m *membership) isHealthy(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[addr]
	return ok && mem.Healthy
}

// snapshot returns value copies of every member, sorted by address.
func (m *membership) snapshot() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.members))
	for _, mem := range m.members {
		out = append(out, *mem)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// ring is a consistent-hash ring: replicas virtual nodes per member, placed
// by FNV-64a. Ownership of a key is the first virtual node clockwise from
// the key's hash whose member is not excluded, so removing a member only
// moves the sessions it owned.
type ring struct {
	hashes []uint64
	addrs  []string // member address per virtual node, aligned with hashes
}

// hash64 hashes a string for ring placement. Raw FNV-64a keeps most of the
// difference between similar strings (worker addresses, route keys that
// share long prefixes) in the low bits, which clusters a worker's virtual
// nodes into contiguous runs and starves the others; a murmur3-style
// finalizer scatters those bits across the whole ring.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, s)
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func newRing(addrs []string, replicas int) *ring {
	type vnode struct {
		hash uint64
		addr string
	}
	vnodes := make([]vnode, 0, len(addrs)*replicas)
	for _, a := range addrs {
		for r := 0; r < replicas; r++ {
			vnodes = append(vnodes, vnode{hash: hash64(a + "#" + strconv.Itoa(r)), addr: a})
		}
	}
	sort.Slice(vnodes, func(i, j int) bool {
		if vnodes[i].hash != vnodes[j].hash {
			return vnodes[i].hash < vnodes[j].hash
		}
		return vnodes[i].addr < vnodes[j].addr
	})
	r := &ring{hashes: make([]uint64, len(vnodes)), addrs: make([]string, len(vnodes))}
	for i, v := range vnodes {
		r.hashes[i] = v.hash
		r.addrs[i] = v.addr
	}
	return r
}

// owner returns the member owning the key, skipping excluded addresses; ok
// is false when the ring is empty or every member is excluded.
func (r *ring) owner(key string, excluded map[string]bool) (string, bool) {
	if len(r.hashes) == 0 {
		return "", false
	}
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	for off := 0; off < len(r.hashes); off++ {
		a := r.addrs[(start+off)%len(r.hashes)]
		if !excluded[a] {
			return a, true
		}
	}
	return "", false
}

// validateSeed checks a static worker list for empty and duplicate
// addresses.
func validateSeed(workers []string) error {
	seen := map[string]bool{}
	for _, w := range workers {
		if strings.TrimSpace(w) == "" {
			return fmt.Errorf("cluster: empty worker address")
		}
		if seen[w] {
			return fmt.Errorf("cluster: duplicate worker address %q", w)
		}
		seen[w] = true
	}
	return nil
}
