package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/acmp"
	"repro/internal/batch"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/predictor"
	"repro/internal/sessions"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// testSpecs expands a small campaign — 2 apps × 2 seeds × all 5 schedulers,
// 20 distinct memo keys — enough that both workers of a 2-worker ring own
// sessions with near certainty.
func testSpecs() []SessionSpec {
	var specs []SessionSpec
	for _, app := range []string{"cnn", "ebay"} {
		for _, seed := range []int64{1, 2} {
			for _, sched := range sessions.Names() {
				specs = append(specs, SessionSpec{
					Platform:  "Exynos5410",
					App:       app,
					TraceSeed: seed,
					Scheduler: sched,
					Predictor: predictor.DefaultConfig(),
				})
			}
		}
	}
	return specs
}

func smallConfig() experiments.Config {
	return experiments.Config{TrainTracesPerApp: 2, EvalTracesPerApp: 1, Parallel: 2}
}

func newTestWorker(t *testing.T) *Worker {
	t.Helper()
	if testing.Short() {
		t.Skip("cluster tests train a predictor")
	}
	w, err := NewWorker(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// directResults simulates the specs single-process on a fresh serial runner
// sharing the workers' harness configuration.
func directResults(t *testing.T, specs []SessionSpec) []*engine.Result {
	t.Helper()
	setup, err := experiments.NewSetup(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var batchSessions []batch.Session
	for _, spec := range specs {
		platform, err := acmp.ByName(spec.Platform)
		if err != nil {
			t.Fatal(err)
		}
		app, err := webapp.ByName(spec.App)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := sessions.New(sessions.Spec{
			Platform:  platform,
			Trace:     setup.Artifacts.Trace(app, spec.TraceSeed, trace.PurposeEval, trace.Options{}),
			Scheduler: spec.Scheduler,
			Learner:   setup.Learner,
			Predictor: spec.Predictor,
			Artifacts: setup.Artifacts,
		})
		if err != nil {
			t.Fatal(err)
		}
		batchSessions = append(batchSessions, sess)
	}
	out, err := batch.NewRunner(1).Run(batchSessions)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// normalize re-encodes a result with the solver wall time zeroed — the only
// nondeterministic byte of a Result.
func normalize(t *testing.T, res *engine.Result) []byte {
	t.Helper()
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if solver, ok := m["Solver"].(map[string]any); ok {
		solver["wall_ns"] = 0
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertIdentical(t *testing.T, specs []SessionSpec, merged, direct []*engine.Result) {
	t.Helper()
	if len(merged) != len(direct) {
		t.Fatalf("merged %d results, want %d", len(merged), len(direct))
	}
	for i := range merged {
		if merged[i] == nil {
			t.Fatalf("result %d (%s/%d/%s) missing", i, specs[i].App, specs[i].TraceSeed, specs[i].Scheduler)
		}
		if !bytes.Equal(normalize(t, merged[i]), normalize(t, direct[i])) {
			t.Errorf("result %d (%s/%d/%s) differs from single-process run",
				i, specs[i].App, specs[i].TraceSeed, specs[i].Scheduler)
		}
	}
}

func TestRingDeterministicCompleteAndExclusive(t *testing.T) {
	workers := []string{"worker-a:9001", "worker-b:9002", "worker-c:9003"}
	r := newRing(workers, 64)
	owned := make(map[int]int)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		w, ok := r.owner(key, nil)
		if !ok {
			t.Fatalf("no owner for %q", key)
		}
		// Ownership is deterministic.
		if w2, _ := r.owner(key, nil); w2 != w {
			t.Fatalf("owner(%q) flapped: %d then %d", key, w, w2)
		}
		owned[w]++
		// Excluding the owner moves the key to another worker...
		alt, ok := r.owner(key, map[int]bool{w: true})
		if !ok || alt == w {
			t.Fatalf("exclusion of %d not honored for %q: got %d, %t", w, key, alt, ok)
		}
		// ...and keys not owned by the excluded worker stay put.
		if kept, _ := r.owner(key, map[int]bool{(w + 1) % len(workers): true}); kept != w {
			t.Errorf("excluding a non-owner moved %q from %d to %d", key, w, kept)
		}
	}
	for wi := range workers {
		if owned[wi] == 0 {
			t.Errorf("worker %d owns no keys out of 200 — ring is unbalanced", wi)
		}
	}
	// With every worker excluded there is no owner.
	if _, ok := r.owner("key-0", map[int]bool{0: true, 1: true, 2: true}); ok {
		t.Error("owner returned ok with every worker excluded")
	}
}

// TestCoordinatorMergesByteIdenticalOverHTTP runs a coordinator over two
// real HTTP workers and asserts the merged results are byte-identical to a
// single-process serial run of the same sessions.
func TestCoordinatorMergesByteIdenticalOverHTTP(t *testing.T) {
	w1, w2 := newTestWorker(t), newTestWorker(t)
	ts1 := httptest.NewServer(w1.Handler())
	defer ts1.Close()
	ts2 := httptest.NewServer(w2.Handler())
	defer ts2.Close()

	coord, err := New(Config{Workers: []string{ts1.URL, ts2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	specs := testSpecs()
	var progressed atomic.Int64
	merged, err := coord.Run(specs, func(completed, total int) {
		progressed.Add(1)
		if total != len(specs) {
			t.Errorf("progress total = %d, want %d", total, len(specs))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, specs, merged, directResults(t, specs))
	if got := progressed.Load(); got != int64(len(specs)) {
		t.Errorf("progress fired %d times, want %d", got, len(specs))
	}
	st := coord.Stats()
	if st.SessionsRouted != int64(len(specs)) || st.Shards < 1 || st.Retries != 0 || st.WorkerFailures != 0 {
		t.Errorf("coordinator stats = %+v", st)
	}
	if st.Remote.UniqueRuns != int64(len(specs)) {
		t.Errorf("workers simulated %d unique sessions, want %d", st.Remote.UniqueRuns, len(specs))
	}
}

// failingTransport wraps a set of in-process workers, failing every shard
// sent to the named worker — a deterministic stand-in for a worker killed
// mid-campaign.
type failingTransport struct {
	workers map[string]*Worker
	dead    string

	mu       sync.Mutex
	failures int
}

func (f *failingTransport) RunShard(ctx context.Context, worker string, req ShardRequest) (ShardResponse, error) {
	if worker == f.dead {
		f.mu.Lock()
		f.failures++
		f.mu.Unlock()
		return ShardResponse{}, fmt.Errorf("connection refused (worker killed)")
	}
	return f.workers[worker].RunShard(req)
}

// TestShardRetryOnWorkerFailure kills one of two workers and asserts every
// shard it owned is re-routed to the survivor, with the merged results
// still byte-identical to a single-process run.
func TestShardRetryOnWorkerFailure(t *testing.T) {
	alive := newTestWorker(t)
	names := []string{"worker-alive:9001", "worker-dead:9002"}
	transport := &failingTransport{workers: map[string]*Worker{names[0]: alive}, dead: names[1]}
	coord, err := New(Config{Workers: names, Transport: transport})
	if err != nil {
		t.Fatal(err)
	}
	specs := testSpecs()
	// The dead worker must own some sessions for the retry path to be
	// exercised; with fixed worker names and keys this is deterministic.
	deadOwns := 0
	for _, s := range specs {
		if w, _ := coord.ring.owner(s.RouteKey(), nil); w == 1 {
			deadOwns++
		}
	}
	if deadOwns == 0 {
		t.Fatal("test fixture routes nothing to the dead worker; vary the specs")
	}

	merged, err := coord.Run(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, specs, merged, directResults(t, specs))
	st := coord.Stats()
	if st.WorkerFailures < 1 || st.Retries < 1 {
		t.Errorf("stats do not show the retry: %+v", st)
	}
	if transport.failures < 1 {
		t.Errorf("dead worker was never dispatched to")
	}
	// The survivor executed everything.
	if got := alive.Stats().UniqueRuns; got != int64(len(specs)) {
		t.Errorf("surviving worker simulated %d sessions, want %d", got, len(specs))
	}
}

type everythingFails struct{}

func (everythingFails) RunShard(ctx context.Context, worker string, req ShardRequest) (ShardResponse, error) {
	return ShardResponse{}, fmt.Errorf("worker %s unreachable", worker)
}

// TestAllWorkersFailed asserts Run reports an error (not a hang or a nil
// deref) when no worker can take a shard. No worker harness is trained, so
// this runs even in -short mode.
func TestAllWorkersFailed(t *testing.T) {
	coord, err := New(Config{Workers: []string{"worker-a:9001", "worker-b:9002"}, Transport: everythingFails{}})
	if err != nil {
		t.Fatal(err)
	}
	specs := testSpecs()[:4]
	_, err = coord.Run(specs, nil)
	if err == nil {
		t.Fatal("Run succeeded with every worker failing")
	}
	if st := coord.Stats(); st.WorkerFailures < 2 {
		t.Errorf("stats show %d worker failures, want both workers marked failed", st.WorkerFailures)
	}
}

// TestWarmShardCacheHitsOnRepeatCampaign runs the same campaign twice
// through one coordinator and asserts the second pass is served entirely
// from the workers' warm memo caches.
func TestWarmShardCacheHitsOnRepeatCampaign(t *testing.T) {
	w1, w2 := newTestWorker(t), newTestWorker(t)
	ts1 := httptest.NewServer(w1.Handler())
	defer ts1.Close()
	ts2 := httptest.NewServer(w2.Handler())
	defer ts2.Close()
	coord, err := New(Config{Workers: []string{ts1.URL, ts2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	specs := testSpecs()
	first, err := coord.Run(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := coord.Run(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if !bytes.Equal(normalize(t, first[i]), normalize(t, second[i])) {
			t.Errorf("repeat campaign result %d differs", i)
		}
	}
	st := coord.Stats()
	n := int64(len(specs))
	if st.Remote.Sessions != 2*n || st.Remote.UniqueRuns != n || st.Remote.CacheHits != n {
		t.Errorf("repeat campaign was not served from warm worker caches: %+v", st.Remote)
	}
}

// TestRouteKeyIncludesOracleVersion guards the wire-aliasing invariant: two
// specs that differ only in oracle version must have different route keys
// (they also key different memo entries), while non-Oracle specs keep keys
// with no oracle component at all.
func TestRouteKeyIncludesOracleVersion(t *testing.T) {
	base := SessionSpec{Platform: "Exynos5410", App: "cnn", TraceSeed: 1,
		Scheduler: sessions.Oracle, Predictor: predictor.DefaultConfig()}
	v1, v2 := base, base
	v1.OracleVersion = "v1"
	v2.OracleVersion = "v2"
	if v1.RouteKey() == v2.RouteKey() {
		t.Errorf("v1 and v2 specs alias on the wire: %q", v1.RouteKey())
	}
	plain := base
	plain.Scheduler = sessions.Ondemand
	if got := plain.RouteKey(); strings.Contains(got, "oracle") {
		t.Errorf("non-Oracle route key grew an oracle component: %q", got)
	}
}

// TestWorkerRejectsOracleVersionMismatch is the shard-submit agreement
// check: a worker configured for one oracle version refuses a shard stamped
// with the other, with an error naming both sides, and accepts a matching
// or unstamped (legacy) shard.
func TestWorkerRejectsOracleVersionMismatch(t *testing.T) {
	w := newTestWorker(t) // smallConfig: oracle version defaults to v2
	good := SessionSpec{Platform: "Exynos5410", App: "cnn", TraceSeed: 1,
		Scheduler: sessions.Ondemand, Predictor: predictor.DefaultConfig()}

	_, err := w.RunShard(ShardRequest{Sessions: []SessionSpec{good}, OracleVersion: "v1"})
	if err == nil {
		t.Fatal("worker accepted a shard from a v1 coordinator while running v2")
	}
	for _, want := range []string{"oracle version mismatch", "v1", "v2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("mismatch error %q does not mention %q", err, want)
		}
	}

	if _, err := w.RunShard(ShardRequest{Sessions: []SessionSpec{good}, OracleVersion: "v2"}); err != nil {
		t.Errorf("matching shard rejected: %v", err)
	}
	if _, err := w.RunShard(ShardRequest{Sessions: []SessionSpec{good}}); err != nil {
		t.Errorf("unstamped legacy shard rejected: %v", err)
	}

	if _, err := w.RunShard(ShardRequest{Sessions: []SessionSpec{good}, OracleVersion: "v9"}); err == nil {
		t.Error("worker accepted an unknown oracle version")
	}
}
