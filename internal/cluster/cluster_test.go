package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/acmp"
	"repro/internal/batch"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/predictor"
	"repro/internal/sessions"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// testSpecs expands a small campaign — 2 apps × 2 seeds × all 5 schedulers,
// 20 distinct memo keys — enough that both workers of a 2-worker ring own
// sessions with near certainty.
func testSpecs() []SessionSpec {
	var specs []SessionSpec
	for _, app := range []string{"cnn", "ebay"} {
		for _, seed := range []int64{1, 2} {
			for _, sched := range sessions.Names() {
				specs = append(specs, SessionSpec{
					Platform:  "Exynos5410",
					App:       app,
					TraceSeed: seed,
					Scheduler: sched,
					Predictor: predictor.DefaultConfig(),
				})
			}
		}
	}
	return specs
}

func smallConfig() experiments.Config {
	return experiments.Config{TrainTracesPerApp: 2, EvalTracesPerApp: 1, Parallel: 2}
}

func newTestWorker(t *testing.T) *Worker {
	t.Helper()
	if testing.Short() {
		t.Skip("cluster tests train a predictor")
	}
	w, err := NewWorker(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// directResults simulates the specs single-process on a fresh serial runner
// sharing the workers' harness configuration.
func directResults(t *testing.T, specs []SessionSpec) []*engine.Result {
	t.Helper()
	setup, err := experiments.NewSetup(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var batchSessions []batch.Session
	for _, spec := range specs {
		platform, err := acmp.ByName(spec.Platform)
		if err != nil {
			t.Fatal(err)
		}
		app, err := webapp.ByName(spec.App)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := sessions.New(sessions.Spec{
			Platform:  platform,
			Trace:     setup.Artifacts.Trace(app, spec.TraceSeed, trace.PurposeEval, trace.Options{}),
			Scheduler: spec.Scheduler,
			Learner:   setup.Learner,
			Predictor: spec.Predictor,
			Artifacts: setup.Artifacts,
		})
		if err != nil {
			t.Fatal(err)
		}
		batchSessions = append(batchSessions, sess)
	}
	out, err := batch.NewRunner(1).Run(batchSessions)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// normalize re-encodes a result with the solver wall time zeroed — the only
// nondeterministic byte of a Result.
func normalize(t *testing.T, res *engine.Result) []byte {
	t.Helper()
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if solver, ok := m["Solver"].(map[string]any); ok {
		solver["wall_ns"] = 0
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertIdentical(t *testing.T, specs []SessionSpec, merged, direct []*engine.Result) {
	t.Helper()
	if len(merged) != len(direct) {
		t.Fatalf("merged %d results, want %d", len(merged), len(direct))
	}
	for i := range merged {
		if merged[i] == nil {
			t.Fatalf("result %d (%s/%d/%s) missing", i, specs[i].App, specs[i].TraceSeed, specs[i].Scheduler)
		}
		if !bytes.Equal(normalize(t, merged[i]), normalize(t, direct[i])) {
			t.Errorf("result %d (%s/%d/%s) differs from single-process run",
				i, specs[i].App, specs[i].TraceSeed, specs[i].Scheduler)
		}
	}
}

func TestRingDeterministicCompleteAndExclusive(t *testing.T) {
	workers := []string{"worker-a:9001", "worker-b:9002", "worker-c:9003"}
	r := newRing(workers, 64)
	owned := make(map[string]int)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		w, ok := r.owner(key, nil)
		if !ok {
			t.Fatalf("no owner for %q", key)
		}
		// Ownership is deterministic.
		if w2, _ := r.owner(key, nil); w2 != w {
			t.Fatalf("owner(%q) flapped: %s then %s", key, w, w2)
		}
		owned[w]++
		// Excluding the owner moves the key to another worker...
		alt, ok := r.owner(key, map[string]bool{w: true})
		if !ok || alt == w {
			t.Fatalf("exclusion of %s not honored for %q: got %s, %t", w, key, alt, ok)
		}
		// ...and keys not owned by the excluded worker stay put.
		if kept, _ := r.owner(key, map[string]bool{alt: true}); kept != w {
			t.Errorf("excluding a non-owner moved %q from %s to %s", key, w, kept)
		}
	}
	for _, w := range workers {
		if owned[w] == 0 {
			t.Errorf("worker %s owns no keys out of 200 — ring is unbalanced", w)
		}
	}
	// With every worker excluded there is no owner.
	all := map[string]bool{}
	for _, w := range workers {
		all[w] = true
	}
	if _, ok := r.owner("key-0", all); ok {
		t.Error("owner returned ok with every worker excluded")
	}
	// An empty ring owns nothing.
	if _, ok := newRing(nil, 64).owner("key-0", nil); ok {
		t.Error("empty ring returned an owner")
	}
}

// TestMembershipTransitions unit-tests the membership state machine:
// register/deregister, probe-driven health transitions, dispatch faults, and
// watch-channel notifications.
func TestMembershipTransitions(t *testing.T) {
	m := newMembership([]string{"a:1", "b:2"}, 64)
	if got := m.healthy(); len(got) != 2 {
		t.Fatalf("static seed not healthy: %v", got)
	}

	// A watch channel closes on the next change.
	ch := m.watchCh()
	if !m.register("c:3", SourceRegistered) {
		t.Fatal("registering a new member reported no change")
	}
	select {
	case <-ch:
	default:
		t.Fatal("watch channel not closed by register")
	}
	if m.register("c:3", SourceRegistered) {
		t.Error("re-registering a healthy member reported a change")
	}

	// Probe failures below the threshold change nothing; at the threshold
	// the member turns unhealthy; one success heals it.
	if m.probe("b:2", false, 2) {
		t.Error("first probe failure marked the member unhealthy (threshold 2)")
	}
	if !m.probe("b:2", false, 2) {
		t.Error("second consecutive probe failure did not mark the member unhealthy")
	}
	if m.isHealthy("b:2") {
		t.Error("member still healthy after threshold failures")
	}
	if !m.probe("b:2", true, 2) {
		t.Error("passing probe did not heal the member")
	}
	if !m.isHealthy("b:2") {
		t.Error("member not healthy after passing probe")
	}

	// A dispatch fault marks unhealthy immediately; registration heals.
	if !m.fault("a:1") {
		t.Error("fault on a healthy member reported no transition")
	}
	if m.fault("a:1") {
		t.Error("fault on an unhealthy member reported a transition")
	}
	if owner, _ := m.owner("some-key", nil); owner == "a:1" {
		t.Error("unhealthy member still owns keys")
	}
	if !m.register("a:1", SourceStatic) {
		t.Error("re-registering a faulted member reported no change")
	}

	// Deregister forgets the member entirely.
	if !m.deregister("c:3") || m.deregister("c:3") {
		t.Error("deregister did not remove exactly once")
	}
	if got := m.addrs(); len(got) != 2 {
		t.Errorf("addrs after deregister = %v, want 2 members", got)
	}

	// snapshot returns value copies.
	snap := m.snapshot()
	snap[0].Healthy = false
	snap[0].Addr = "mutated"
	if !m.isHealthy("a:1") {
		t.Error("mutating a snapshot changed membership state")
	}
}

// TestCoordinatorMergesByteIdenticalOverHTTP runs a coordinator over two
// real HTTP workers and asserts the merged results are byte-identical to a
// single-process serial run of the same sessions.
func TestCoordinatorMergesByteIdenticalOverHTTP(t *testing.T) {
	w1, w2 := newTestWorker(t), newTestWorker(t)
	ts1 := httptest.NewServer(w1.Handler())
	defer ts1.Close()
	ts2 := httptest.NewServer(w2.Handler())
	defer ts2.Close()

	coord, err := New(Config{Workers: []string{ts1.URL, ts2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	specs := testSpecs()
	var progressed atomic.Int64
	merged, err := coord.Run(specs, func(completed, total int) {
		progressed.Add(1)
		if total != len(specs) {
			t.Errorf("progress total = %d, want %d", total, len(specs))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, specs, merged, directResults(t, specs))
	if got := progressed.Load(); got != int64(len(specs)) {
		t.Errorf("progress fired %d times, want %d", got, len(specs))
	}
	st := coord.Stats()
	if st.SessionsRouted != int64(len(specs)) || st.Shards < 1 || st.Retries != 0 || st.WorkerFailures != 0 {
		t.Errorf("coordinator stats = %+v", st)
	}
	if st.Remote.UniqueRuns != int64(len(specs)) {
		t.Errorf("workers simulated %d unique sessions, want %d", st.Remote.UniqueRuns, len(specs))
	}
}

// failingTransport wraps a set of in-process workers, failing every shard
// sent to the named worker — a deterministic stand-in for a worker killed
// mid-campaign.
type failingTransport struct {
	workers map[string]*Worker
	dead    string

	mu       sync.Mutex
	failures int
}

func (f *failingTransport) RunShard(ctx context.Context, worker string, req ShardRequest) (ShardResponse, error) {
	if worker == f.dead {
		f.mu.Lock()
		f.failures++
		f.mu.Unlock()
		return ShardResponse{}, fmt.Errorf("connection refused (worker killed)")
	}
	return f.workers[worker].RunShard(req)
}

// TestShardRetryOnWorkerFailure kills one of two workers and asserts every
// shard it owned is re-routed to the survivor, with the merged results
// still byte-identical to a single-process run.
func TestShardRetryOnWorkerFailure(t *testing.T) {
	alive := newTestWorker(t)
	names := []string{"worker-alive:9001", "worker-dead:9002"}
	transport := &failingTransport{workers: map[string]*Worker{names[0]: alive}, dead: names[1]}
	coord, err := New(Config{Workers: names, Transport: transport})
	if err != nil {
		t.Fatal(err)
	}
	specs := testSpecs()
	// The dead worker must own some sessions for the retry path to be
	// exercised; with fixed worker names and keys this is deterministic.
	deadOwns := 0
	for _, s := range specs {
		if w, _ := coord.members.owner(s.RouteKey(), nil); w == names[1] {
			deadOwns++
		}
	}
	if deadOwns == 0 {
		t.Fatal("test fixture routes nothing to the dead worker; vary the specs")
	}

	merged, err := coord.Run(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, specs, merged, directResults(t, specs))
	st := coord.Stats()
	if st.WorkerFailures < 1 || st.Retries < 1 {
		t.Errorf("stats do not show the retry: %+v", st)
	}
	if transport.failures < 1 {
		t.Errorf("dead worker was never dispatched to")
	}
	// The survivor executed everything.
	if got := alive.Stats().UniqueRuns; got != int64(len(specs)) {
		t.Errorf("surviving worker simulated %d sessions, want %d", got, len(specs))
	}
	// The fault propagated to the membership: the dead worker is marked
	// unhealthy (a passing health probe or re-registration would heal it).
	if coord.members.isHealthy(names[1]) {
		t.Error("dead worker still healthy in the membership after a dispatch fault")
	}
	if st.Workers != 1 {
		t.Errorf("Stats.Workers = %d after the fault, want 1", st.Workers)
	}
}

type everythingFails struct{}

func (everythingFails) RunShard(ctx context.Context, worker string, req ShardRequest) (ShardResponse, error) {
	return ShardResponse{}, fmt.Errorf("worker %s unreachable", worker)
}

// TestAllWorkersFailed asserts Run reports an error (not a hang or a nil
// deref) when no worker can take a shard. No worker harness is trained, so
// this runs even in -short mode.
func TestAllWorkersFailed(t *testing.T) {
	coord, err := New(Config{Workers: []string{"worker-a:9001", "worker-b:9002"}, Transport: everythingFails{}})
	if err != nil {
		t.Fatal(err)
	}
	specs := testSpecs()[:4]
	_, err = coord.Run(specs, nil)
	if err == nil {
		t.Fatal("Run succeeded with every worker failing")
	}
	if st := coord.Stats(); st.WorkerFailures < 2 {
		t.Errorf("stats show %d worker failures, want both workers marked failed", st.WorkerFailures)
	}
}

// TestWarmShardCacheHitsOnRepeatCampaign runs the same campaign twice
// through one coordinator and asserts the second pass is served entirely
// from the workers' warm memo caches.
func TestWarmShardCacheHitsOnRepeatCampaign(t *testing.T) {
	w1, w2 := newTestWorker(t), newTestWorker(t)
	ts1 := httptest.NewServer(w1.Handler())
	defer ts1.Close()
	ts2 := httptest.NewServer(w2.Handler())
	defer ts2.Close()
	coord, err := New(Config{Workers: []string{ts1.URL, ts2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	specs := testSpecs()
	first, err := coord.Run(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := coord.Run(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if !bytes.Equal(normalize(t, first[i]), normalize(t, second[i])) {
			t.Errorf("repeat campaign result %d differs", i)
		}
	}
	st := coord.Stats()
	n := int64(len(specs))
	if st.Remote.Sessions != 2*n || st.Remote.UniqueRuns != n || st.Remote.CacheHits != n {
		t.Errorf("repeat campaign was not served from warm worker caches: %+v", st.Remote)
	}
}

// TestRouteKeyIncludesOracleVersion guards the wire-aliasing invariant: two
// specs that differ only in oracle version must have different route keys
// (they also key different memo entries), while non-Oracle specs keep keys
// with no oracle component at all.
func TestRouteKeyIncludesOracleVersion(t *testing.T) {
	base := SessionSpec{Platform: "Exynos5410", App: "cnn", TraceSeed: 1,
		Scheduler: sessions.Oracle, Predictor: predictor.DefaultConfig()}
	v1, v2 := base, base
	v1.OracleVersion = "v1"
	v2.OracleVersion = "v2"
	if v1.RouteKey() == v2.RouteKey() {
		t.Errorf("v1 and v2 specs alias on the wire: %q", v1.RouteKey())
	}
	plain := base
	plain.Scheduler = sessions.Ondemand
	if got := plain.RouteKey(); strings.Contains(got, "oracle") {
		t.Errorf("non-Oracle route key grew an oracle component: %q", got)
	}
}

// TestWorkerRejectsOracleVersionMismatch is the shard-submit agreement
// check: a worker configured for one oracle version refuses a shard stamped
// with the other, with an error naming both sides, and accepts a matching
// or unstamped (legacy) shard.
func TestWorkerRejectsOracleVersionMismatch(t *testing.T) {
	w := newTestWorker(t) // smallConfig: oracle version defaults to v2
	good := SessionSpec{Platform: "Exynos5410", App: "cnn", TraceSeed: 1,
		Scheduler: sessions.Ondemand, Predictor: predictor.DefaultConfig()}

	_, err := w.RunShard(ShardRequest{Sessions: []SessionSpec{good}, OracleVersion: "v1"})
	if err == nil {
		t.Fatal("worker accepted a shard from a v1 coordinator while running v2")
	}
	for _, want := range []string{"oracle version mismatch", "v1", "v2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("mismatch error %q does not mention %q", err, want)
		}
	}

	if _, err := w.RunShard(ShardRequest{Sessions: []SessionSpec{good}, OracleVersion: "v2"}); err != nil {
		t.Errorf("matching shard rejected: %v", err)
	}
	if _, err := w.RunShard(ShardRequest{Sessions: []SessionSpec{good}}); err != nil {
		t.Errorf("unstamped legacy shard rejected: %v", err)
	}

	if _, err := w.RunShard(ShardRequest{Sessions: []SessionSpec{good}, OracleVersion: "v9"}); err == nil {
		t.Error("worker accepted an unknown oracle version")
	}
}

// TestClientFaultDoesNotPoisonRing is the regression test for the failure
// taxonomy: a campaign containing one invalid session spec is rejected by
// whichever worker receives it with a deterministic HTTP 400. The campaign
// must fail fast with the spec error, exclude zero workers (re-routing
// would cascade the identical 400 around the ring until "all N workers
// failed"), and leave the coordinator fully serving subsequent valid
// campaigns.
func TestClientFaultDoesNotPoisonRing(t *testing.T) {
	w1, w2 := newTestWorker(t), newTestWorker(t)
	ts1 := httptest.NewServer(w1.Handler())
	defer ts1.Close()
	ts2 := httptest.NewServer(w2.Handler())
	defer ts2.Close()

	coord, err := New(Config{Workers: []string{ts1.URL, ts2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	specs := testSpecs()
	mixed := append([]SessionSpec(nil), specs...)
	mixed[7].App = "no-such-app"
	_, err = coord.Run(mixed, nil)
	if err == nil {
		t.Fatal("mixed-validity campaign succeeded")
	}
	if !IsClientFault(err) {
		t.Errorf("invalid-spec rejection not classified as a client fault: %v", err)
	}
	if !strings.Contains(err.Error(), "no-such-app") {
		t.Errorf("campaign error does not surface the spec error: %v", err)
	}
	st := coord.Stats()
	if st.WorkerFailures != 0 || st.Retries != 0 {
		t.Errorf("deterministic 400 excluded workers: failures=%d retries=%d", st.WorkerFailures, st.Retries)
	}
	if st.ClientFaults < 1 {
		t.Errorf("client fault not counted: %+v", st)
	}
	if st.Workers != 2 {
		t.Errorf("healthy worker count after client fault = %d, want 2 (ring poisoned)", st.Workers)
	}

	// The coordinator keeps serving valid campaigns on the full ring.
	merged, err := coord.Run(specs, nil)
	if err != nil {
		t.Fatalf("valid campaign after a client fault failed: %v", err)
	}
	assertIdentical(t, specs, merged, directResults(t, specs))
	if st := coord.Stats(); st.WorkerFailures != 0 {
		t.Errorf("worker exclusions leaked across campaigns: %+v", st)
	}
}

// rejectingTransport fakes the taxonomy without a trained harness: shards
// containing the poisoned app are rejected with a client fault, everything
// else "succeeds" with placeholder results.
type rejectingTransport struct{ badApp string }

func (f rejectingTransport) RunShard(ctx context.Context, worker string, req ShardRequest) (ShardResponse, error) {
	for _, s := range req.Sessions {
		if s.App == f.badApp {
			return ShardResponse{}, &ClientFaultError{Worker: worker, Status: http.StatusBadRequest,
				Msg: fmt.Sprintf("unknown app %q", s.App)}
		}
	}
	resp := ShardResponse{Results: make([]*engine.Result, len(req.Sessions))}
	for i := range resp.Results {
		resp.Results[i] = &engine.Result{}
	}
	return resp, nil
}

// TestClientFaultFailsFastFakeTransport covers the same taxonomy split
// without training a harness, so it runs in -short mode too.
func TestClientFaultFailsFastFakeTransport(t *testing.T) {
	coord, err := New(Config{Workers: []string{"worker-a:9001", "worker-b:9002"},
		Transport: rejectingTransport{badApp: "poison"}})
	if err != nil {
		t.Fatal(err)
	}
	specs := testSpecs()
	specs[5].App = "poison"
	_, err = coord.Run(specs, nil)
	if err == nil || !IsClientFault(err) {
		t.Fatalf("expected a client-fault campaign error, got %v", err)
	}
	st := coord.Stats()
	if st.WorkerFailures != 0 || st.Workers != 2 {
		t.Errorf("client fault excluded a worker: %+v", st)
	}
	if _, err := coord.Run(testSpecs(), nil); err != nil {
		t.Errorf("valid campaign after a client fault failed: %v", err)
	}
}

// TestWorkersReturnsCopy guards the getter-aliasing bug: mutating the
// slices and snapshots returned by the coordinator must not corrupt
// routing state.
func TestWorkersReturnsCopy(t *testing.T) {
	coord, err := New(Config{Workers: []string{"worker-a:9001", "worker-b:9002"}, Transport: everythingFails{}})
	if err != nil {
		t.Fatal(err)
	}
	ws := coord.Workers()
	ws[0] = "mutated"
	if got := coord.Workers(); got[0] != "worker-a:9001" {
		t.Errorf("mutating Workers() corrupted membership: %v", got)
	}
	ms := coord.Members()
	if len(ms) != 2 {
		t.Fatalf("Members() = %v, want 2", ms)
	}
	ms[0].Healthy = false
	ms[0].Addr = "mutated"
	if !coord.members.isHealthy("worker-a:9001") {
		t.Error("mutating Members() corrupted membership health")
	}
}

// TestStatsDropExcludedWorker guards the stats-inflation bug: an excluded
// or departed member's last snapshot must not be summed into Stats.Remote.
func TestStatsDropExcludedWorker(t *testing.T) {
	coord, err := New(Config{Workers: []string{"worker-a:9001", "worker-b:9002"}, Transport: everythingFails{}})
	if err != nil {
		t.Fatal(err)
	}
	coord.setWorkerStats("worker-a:9001", batch.Stats{Sessions: 5, UniqueRuns: 3, CacheHits: 2})
	coord.setWorkerStats("worker-b:9002", batch.Stats{Sessions: 7, UniqueRuns: 7})
	if st := coord.Stats(); st.Remote.Sessions != 12 {
		t.Fatalf("Remote.Sessions = %d before any fault, want 12", st.Remote.Sessions)
	}
	coord.noteWorkerFault("worker-b:9002")
	st := coord.Stats()
	if st.Remote.Sessions != 5 || st.Remote.UniqueRuns != 3 || st.Remote.CacheHits != 2 {
		t.Errorf("excluded worker's snapshot still summed: %+v", st.Remote)
	}
	if st.Workers != 1 {
		t.Errorf("Workers = %d after fault, want 1", st.Workers)
	}
	if !coord.Deregister("worker-a:9001") {
		t.Fatal("Deregister returned false for a member")
	}
	if st := coord.Stats(); st.Remote.Sessions != 0 {
		t.Errorf("departed worker's snapshot still summed: %+v", st.Remote)
	}
}

// killAfterFirst wraps the real HTTP transport: after the victim worker's
// first successful shard, its server is shut down — every later dispatch to
// it fails at the transport level exactly like a process killed
// mid-campaign.
type killAfterFirst struct {
	inner  Transport
	victim string
	kill   func()
	once   sync.Once
}

func (k *killAfterFirst) RunShard(ctx context.Context, worker string, req ShardRequest) (ShardResponse, error) {
	resp, err := k.inner.RunShard(ctx, worker, req)
	if worker == k.victim && err == nil {
		k.once.Do(k.kill)
	}
	return resp, err
}

// TestMidCampaignWorkerDeathMergesByteIdentical kills one of two real HTTP
// workers after its first shard and asserts the campaign still completes
// with results byte-identical to a single-process run.
func TestMidCampaignWorkerDeathMergesByteIdentical(t *testing.T) {
	w1, w2 := newTestWorker(t), newTestWorker(t)
	ts1 := httptest.NewServer(w1.Handler())
	defer ts1.Close()
	ts2 := httptest.NewServer(w2.Handler())
	defer ts2.Close() // idempotent after the mid-campaign kill

	tr := &killAfterFirst{inner: &httpTransport{client: &http.Client{}}, victim: ts2.URL, kill: ts2.Close}
	// Small chunks so the victim owns several dispatches: the kill lands
	// between them.
	coord, err := New(Config{Workers: []string{ts1.URL, ts2.URL}, Transport: tr, MaxShardSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	specs := testSpecs()
	merged, err := coord.Run(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, specs, merged, directResults(t, specs))
	st := coord.Stats()
	if st.WorkerFailures < 1 || st.Retries < 1 {
		t.Errorf("mid-campaign kill never observed: %+v", st)
	}
	if w2.Stats().Sessions == 0 {
		t.Error("victim worker never ran a shard before dying")
	}
	if coord.members.isHealthy(ts2.URL) {
		t.Error("dead worker still healthy in the membership")
	}
}

// registerOnFirst wraps the transport: the first successful shard triggers a
// late registration, simulating a worker joining mid-campaign.
type registerOnFirst struct {
	inner Transport
	join  func()
	once  sync.Once
}

func (j *registerOnFirst) RunShard(ctx context.Context, worker string, req ShardRequest) (ShardResponse, error) {
	resp, err := j.inner.RunShard(ctx, worker, req)
	if err == nil {
		j.once.Do(j.join)
	}
	return resp, err
}

// TestMidCampaignWorkerJoinStealsAndMergesByteIdentical starts a campaign on
// a single-worker cluster, registers a second real HTTP worker after the
// first shard completes, and asserts the joiner steals queued work with the
// merged results byte-identical to a single-process run.
func TestMidCampaignWorkerJoinStealsAndMergesByteIdentical(t *testing.T) {
	w1, w2 := newTestWorker(t), newTestWorker(t)
	ts1 := httptest.NewServer(w1.Handler())
	defer ts1.Close()
	ts2 := httptest.NewServer(w2.Handler())
	defer ts2.Close()

	tr := &registerOnFirst{inner: &httpTransport{client: &http.Client{}}}
	coord, err := New(Config{Workers: []string{ts1.URL}, Transport: tr, MaxShardSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr.join = func() {
		if err := coord.Register(ts2.URL); err != nil {
			t.Errorf("mid-campaign Register: %v", err)
		}
	}
	specs := testSpecs()
	merged, err := coord.Run(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, specs, merged, directResults(t, specs))
	st := coord.Stats()
	if st.Workers != 2 {
		t.Errorf("Workers = %d after the join, want 2", st.Workers)
	}
	if st.Steals < 1 || st.SessionsStolen < 1 {
		t.Errorf("joined worker never stole queued work: %+v", st)
	}
	if w2.Stats().Sessions == 0 {
		t.Error("joined worker executed nothing")
	}
	if st.WorkerFailures != 0 {
		t.Errorf("join campaign recorded worker failures: %+v", st)
	}
}

// slowTransport delegates shards to a shared in-process worker, delaying
// the slow member's dispatches — a stand-in for the skewed Oracle tail.
type slowTransport struct {
	worker *Worker
	slow   string
	delay  time.Duration
}

func (s *slowTransport) RunShard(ctx context.Context, worker string, req ShardRequest) (ShardResponse, error) {
	if worker == s.slow {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return ShardResponse{}, ctx.Err()
		}
	}
	return s.worker.RunShard(req)
}

// TestStealingBoundsSlowWorker pairs a fast worker with an artificially
// slow one and asserts the fast worker steals from the slow one's queue,
// with results still merged byte-identically in campaign order.
func TestStealingBoundsSlowWorker(t *testing.T) {
	shared := newTestWorker(t)
	names := []string{"worker-fast:9001", "worker-slow:9002"}
	tr := &slowTransport{worker: shared, slow: names[1], delay: 200 * time.Millisecond}
	coord, err := New(Config{Workers: names, Transport: tr, MaxShardSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	specs := testSpecs()
	merged, err := coord.Run(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, specs, merged, directResults(t, specs))
	st := coord.Stats()
	if st.Steals < 1 || st.SessionsStolen < 1 {
		t.Errorf("idle worker never stole from the slow queue: %+v", st)
	}
	if st.WorkerFailures != 0 {
		t.Errorf("stealing campaign recorded worker failures: %+v", st)
	}
	if st.SessionsRouted != int64(len(specs)) {
		t.Errorf("SessionsRouted = %d, want %d (steals must not double-route)", st.SessionsRouted, len(specs))
	}
}

// TestSpillOverEmptyMembership runs a campaign on a coordinator with no
// workers at all: every session spills over to the local in-process worker
// instead of failing.
func TestSpillOverEmptyMembership(t *testing.T) {
	coord, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.SetLocal(newTestWorker(t))
	specs := testSpecs()[:6]
	merged, err := coord.Run(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, specs, merged, directResults(t, specs))
	st := coord.Stats()
	if st.SpillOvers < 1 || st.SessionsSpilled != int64(len(specs)) {
		t.Errorf("spill-over not recorded: %+v", st)
	}
	if st.Shards != 0 || st.SessionsRouted != 0 {
		t.Errorf("empty membership still routed remotely: %+v", st)
	}
}

// TestSpillOverAfterAllWorkersFail is the graceful-degradation path: every
// remote worker dies mid-campaign and the coordinator finishes the campaign
// on its local worker instead of failing it.
func TestSpillOverAfterAllWorkersFail(t *testing.T) {
	coord, err := New(Config{Workers: []string{"worker-a:9001", "worker-b:9002"}, Transport: everythingFails{}})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetLocal(newTestWorker(t))
	specs := testSpecs()
	merged, err := coord.Run(specs, nil)
	if err != nil {
		t.Fatalf("campaign failed despite local spill-over: %v", err)
	}
	assertIdentical(t, specs, merged, directResults(t, specs))
	st := coord.Stats()
	if st.WorkerFailures != 2 {
		t.Errorf("WorkerFailures = %d, want 2", st.WorkerFailures)
	}
	if st.SessionsSpilled != int64(len(specs)) {
		t.Errorf("SessionsSpilled = %d, want %d", st.SessionsSpilled, len(specs))
	}
	if st.Workers != 0 {
		t.Errorf("Workers = %d after both faults, want 0", st.Workers)
	}
}

// TestHeartbeatMarksDeadAndHealsRecovered drives the real HTTP health-probe
// loop against a flippable /healthz: threshold consecutive failures mark
// the member unhealthy, one passing probe heals it. No harness is trained,
// so this runs in -short mode.
func TestHeartbeatMarksDeadAndHealsRecovered(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" || !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	coord, err := New(Config{
		Workers:           []string{ts.URL},
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  time.Second,
		HeartbeatFailures: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if coord.members.isHealthy(ts.URL) == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	waitFor(true, "initial healthy state")
	healthy.Store(false)
	waitFor(false, "consecutive probe failures to mark the worker unhealthy")
	if st := coord.Stats(); st.Workers != 0 {
		t.Errorf("Workers = %d while the only member is unhealthy, want 0", st.Workers)
	}
	healthy.Store(true)
	waitFor(true, "a passing probe to heal the worker")
	if st := coord.Stats(); st.Workers != 1 {
		t.Errorf("Workers = %d after the heal, want 1", st.Workers)
	}
}

// TestRetryBudgetExhaustion asserts a campaign whose worker faults exceed
// Config.RetryBudget fails with a budget error instead of bouncing the
// sessions around the ring (or spilling) forever.
func TestRetryBudgetExhaustion(t *testing.T) {
	coord, err := New(Config{
		Workers:   []string{"worker-a:9001", "worker-b:9002", "worker-c:9003"},
		Transport: everythingFails{},
		// Budget 1: the first fault re-routes, the second fails the run.
		RetryBudget: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Run(testSpecs()[:6], nil)
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("Run error = %v, want retry budget exhaustion", err)
	}
	if st := coord.Stats(); st.WorkerFailures != 2 {
		t.Errorf("WorkerFailures = %d, want exactly 2 (budget must stop the cascade)", st.WorkerFailures)
	}
}

// TestProbeBackoffSuppressesProbes exercises the flap-damping state machine:
// failures push a member's next probe out on a growing jittered schedule,
// success or re-registration clears it.
func TestProbeBackoffSuppressesProbes(t *testing.T) {
	m := newMembership([]string{"a:1", "b:2"}, 4)
	m.backoffBase = 10 * time.Millisecond
	m.backoffMax = 100 * time.Millisecond

	now := time.Now()
	if due, skipped := m.probeTargets(now); len(due) != 2 || skipped != 0 {
		t.Fatalf("fresh membership: due=%v skipped=%d", due, skipped)
	}

	// A dispatch fault backs off re-probing immediately.
	m.fault("a:1")
	due, skipped := m.probeTargets(time.Now())
	if skipped != 1 || len(due) != 1 || due[0] != "b:2" {
		t.Fatalf("after fault: due=%v skipped=%d", due, skipped)
	}
	// The backoff window is bounded: base/2 .. max.
	gap := time.Until(m.snapshot()[0].BackoffUntil)
	if gap < 0 || gap > m.backoffMax {
		t.Fatalf("backoff gap %v outside (0, %v]", gap, m.backoffMax)
	}
	// Once the window elapses the member is probed again.
	if due, _ := m.probeTargets(now.Add(time.Second)); len(due) != 2 {
		t.Fatalf("backoff never expires: due=%v", due)
	}

	// Consecutive failures grow the window (jitter keeps it >= prior base).
	first := m.snapshot()[0].BackoffUntil
	for i := 0; i < 5; i++ {
		m.probe("a:1", false, 3)
	}
	grown := m.snapshot()[0].BackoffUntil
	if !grown.After(first) {
		t.Errorf("5 more failures did not grow the backoff: %v -> %v", first, grown)
	}
	if gap := time.Until(grown); gap < m.backoffMax/2 {
		t.Errorf("streaked backoff gap %v, want >= %v (cap/2 with jitter)", gap, m.backoffMax/2)
	}

	// A passing probe clears the backoff entirely.
	m.probe("a:1", true, 3)
	if due, skipped := m.probeTargets(time.Now()); len(due) != 2 || skipped != 0 {
		t.Fatalf("heal did not clear backoff: due=%v skipped=%d", due, skipped)
	}
	if mem := m.snapshot()[0]; !mem.BackoffUntil.IsZero() || mem.faultStreak != 0 {
		t.Errorf("healed member keeps backoff state: %+v", mem)
	}

	// Re-registration clears it too (a restarted worker announces itself).
	m.fault("b:2")
	m.register("b:2", SourceRegistered)
	if mem := m.snapshot()[1]; !mem.BackoffUntil.IsZero() {
		t.Errorf("re-registered member keeps backoff: %+v", mem)
	}
}
