// Package cluster is the multi-process execution layer: a coordinator that
// expands a campaign's sessions into per-worker shards, routes each shard to
// a worker by consistent hashing on the batch memo key, executes shards over
// an HTTP transport, and merges the per-session results back in campaign
// order — byte-identical to single-process execution.
//
// The design leans on two properties the lower layers already guarantee:
//
//   - Determinism. A session is fully described by (platform, app, trace
//     seed, scheduler, predictor config): trace generation, predictor
//     training, and the simulation itself are deterministic, so a worker
//     that rebuilds the session from this description produces the same
//     Result bytes the coordinator's own process would have (workers must
//     run the same harness configuration — training scale and seed — which
//     cmd/pes-serve enforces by sharing one flag set).
//   - Keyed caching. Routing hashes the same tuple the batch memo cache is
//     keyed by, so a given session always lands on the same worker; repeat
//     campaigns hit that worker's warm memo cache, and sessions of one
//     (app, seed) pair cluster on few workers, keeping each worker's
//     artifact cache (traces, runtime events, fingerprints) warm too.
//
// Partial failure is handled by rerouting: when a worker fails a shard
// (transport error or malformed response), the worker is excluded for the
// rest of the run and the shard's sessions are re-routed through the ring
// across the remaining workers. A per-session simulation error reported by
// a healthy worker is not retried — simulation is deterministic, so it
// would fail identically anywhere — and surfaces like the in-process
// runner's first error.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/engine"
	"repro/internal/predictor"
	"repro/internal/sched"
)

// SessionSpec is the wire description of one session: the same tuple that
// keys the batch memo cache. A worker rebuilds the full batch session —
// trace, runtime events, scheduler instance — from it; Predictor must be
// fully specified (the campaign layer merges defaults before routing).
type SessionSpec struct {
	Platform  string           `json:"platform"`
	App       string           `json:"app"`
	TraceSeed int64            `json:"trace_seed"`
	Scheduler string           `json:"scheduler"`
	Predictor predictor.Config `json:"predictor"`
	// OracleVersion is the Oracle solver version ("v1"/"v2"), set on Oracle
	// sessions only. It participates in the route key exactly like it
	// participates in the batch memo key, so v1 and v2 sessions never alias
	// on the wire or in a worker's cache.
	OracleVersion string `json:"oracle_version,omitempty"`
}

// RouteKey canonically encodes the memo-key tuple for consistent hashing.
func (s SessionSpec) RouteKey() string {
	var b strings.Builder
	b.WriteString(s.Platform)
	b.WriteByte('|')
	b.WriteString(s.App)
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(s.TraceSeed, 10))
	b.WriteByte('|')
	b.WriteString(s.Scheduler)
	b.WriteByte('|')
	fmt.Fprintf(&b, "ct=%g,deg=%d,dom=%t", s.Predictor.ConfidenceThreshold, s.Predictor.MaxDegree, s.Predictor.UseDOMAnalysis)
	if s.OracleVersion != "" {
		b.WriteString("|oracle=")
		b.WriteString(s.OracleVersion)
	}
	return b.String()
}

// ShardRequest is the body of POST /v1/shards: the sessions routed to one
// worker, plus the coordinator's configured oracle version so
// coordinator/worker harness-flag agreement is validated at shard submit
// instead of surfacing later as a golden diff.
type ShardRequest struct {
	Sessions []SessionSpec `json:"sessions"`
	// OracleVersion is the coordinator process's -oracle flag ("v1"/"v2").
	// A worker whose own flag disagrees rejects the shard with a clear
	// error. Empty (a pre-versioning coordinator) skips the check.
	OracleVersion string `json:"oracle_version,omitempty"`
}

// ShardResponse is a worker's answer: results index-aligned with the
// request's sessions (entries are null for failed sessions), the first
// session error if any, and a snapshot of the worker's cumulative
// runner/artifact counters (how warm its caches are).
type ShardResponse struct {
	Results []*engine.Result `json:"results"`
	Error   string           `json:"error,omitempty"`
	Stats   batch.Stats      `json:"stats"`
}

// Transport executes one shard on one worker. Implementations must be safe
// for concurrent use; an error return means the worker (not a session)
// failed and the shard will be retried elsewhere.
type Transport interface {
	RunShard(ctx context.Context, worker string, req ShardRequest) (ShardResponse, error)
}

// Stats snapshots a coordinator's counters.
type Stats struct {
	// Workers is the configured worker count.
	Workers int `json:"workers"`
	// Shards counts shard dispatches (including retried dispatches);
	// SessionsRouted counts the sessions inside them.
	Shards         int64 `json:"shards"`
	SessionsRouted int64 `json:"sessions_routed"`
	// Retries counts shards re-routed to another worker after a failure;
	// WorkerFailures counts the failed dispatches that caused them.
	Retries        int64 `json:"retries"`
	WorkerFailures int64 `json:"worker_failures"`
	// Remote sums the latest runner-stats snapshot reported by each worker:
	// cache hits here are sessions a worker served from its warm memo cache.
	Remote batch.Stats `json:"remote"`
}

// Config parameterizes a coordinator.
type Config struct {
	// Workers lists the worker addresses ("host:port" or a full URL).
	Workers []string
	// Transport overrides the shard transport; nil selects HTTP.
	Transport Transport
	// Replicas is the number of virtual nodes per worker on the hash ring
	// (default 64).
	Replicas int
	// ShardTimeout bounds one shard execution (default 10 minutes). A
	// shard that exceeds it counts as a worker failure — the worker is
	// excluded and the shard re-routed — so size it above the largest
	// expected shard's cold (cache-miss) run time.
	ShardTimeout time.Duration
	// OracleVersion is this coordinator process's oracle version (zero
	// value = default). It is stamped on every shard request; workers whose
	// own -oracle flag disagrees reject the shard.
	OracleVersion sched.OracleVersion
}

// Coordinator routes sessions to workers and merges their results. Safe for
// concurrent use; one coordinator serves every campaign of a server.
type Coordinator struct {
	cfg       Config
	ring      *ring
	transport Transport

	shards         atomic.Int64
	sessionsRouted atomic.Int64
	retries        atomic.Int64
	workerFailures atomic.Int64

	mu          sync.Mutex
	workerStats map[string]batch.Stats // latest snapshot per worker
}

// New builds a coordinator over the configured workers.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	seen := map[string]bool{}
	for _, w := range cfg.Workers {
		if strings.TrimSpace(w) == "" {
			return nil, fmt.Errorf("cluster: empty worker address")
		}
		if seen[w] {
			return nil, fmt.Errorf("cluster: duplicate worker address %q", w)
		}
		seen[w] = true
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 64
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 10 * time.Minute
	}
	t := cfg.Transport
	if t == nil {
		t = &httpTransport{client: &http.Client{}}
	}
	return &Coordinator{
		cfg:         cfg,
		ring:        newRing(cfg.Workers, cfg.Replicas),
		transport:   t,
		workerStats: make(map[string]batch.Stats),
	}, nil
}

// Workers returns the configured worker addresses.
func (c *Coordinator) Workers() []string { return c.cfg.Workers }

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		Workers:        len(c.cfg.Workers),
		Shards:         c.shards.Load(),
		SessionsRouted: c.sessionsRouted.Load(),
		Retries:        c.retries.Load(),
		WorkerFailures: c.workerFailures.Load(),
	}
	c.mu.Lock()
	for _, ws := range c.workerStats {
		st.Remote.Sessions += ws.Sessions
		st.Remote.UniqueRuns += ws.UniqueRuns
		st.Remote.CacheHits += ws.CacheHits
		st.Remote.CacheEntries += ws.CacheEntries
		st.Remote.CacheEvictions += ws.CacheEvictions
		st.Remote.Solver = st.Remote.Solver.Add(ws.Solver)
	}
	c.mu.Unlock()
	return st
}

// shard is one dispatch unit: the worker it is routed to and the original
// indices of its sessions.
type shard struct {
	worker  int
	indices []int
}

// route groups the pending session indices into shards by ring ownership,
// skipping excluded workers. Shards come back in worker order so dispatch
// is deterministic.
func (c *Coordinator) route(specs []SessionSpec, pending []int, excluded map[int]bool) []shard {
	byWorker := make(map[int][]int)
	for _, i := range pending {
		w, ok := c.ring.owner(specs[i].RouteKey(), excluded)
		if !ok {
			return nil
		}
		byWorker[w] = append(byWorker[w], i)
	}
	workers := make([]int, 0, len(byWorker))
	for w := range byWorker {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	out := make([]shard, 0, len(workers))
	for _, w := range workers {
		out = append(out, shard{worker: w, indices: byWorker[w]})
	}
	return out
}

// Run executes the sessions across the workers and returns the results
// index-aligned with the input — the same contract as the in-process batch
// runner: on a session error the first error is returned and the
// corresponding entries are nil, while every other session still completes.
// progress (may be nil) is called once per resolved session, possibly from
// several goroutines. A worker failure excludes that worker for the rest of
// the run and re-routes its shard; Run fails only when every worker has
// failed.
func (c *Coordinator) Run(specs []SessionSpec, progress func(completed, total int)) ([]*engine.Result, error) {
	out := make([]*engine.Result, len(specs))
	total := len(specs)
	var completed atomic.Int64
	note := func(n int) {
		if progress == nil {
			return
		}
		for i := 0; i < n; i++ {
			progress(int(completed.Add(1)), total)
		}
	}

	excluded := make(map[int]bool)
	pending := make([]int, len(specs))
	for i := range specs {
		pending[i] = i
	}
	var firstErr error
	var lastWorkerErr error
	retrying := false
	for len(pending) > 0 {
		shards := c.route(specs, pending, excluded)
		if len(shards) == 0 {
			// Surface the cause, not just the count: a deterministic
			// rejection (bad spec, coordinator/worker version skew) fails
			// every worker identically and would otherwise be
			// indistinguishable from an outage.
			return out, fmt.Errorf("cluster: all %d workers failed (last error: %w)", len(c.cfg.Workers), lastWorkerErr)
		}
		if retrying {
			c.retries.Add(int64(len(shards)))
		}

		type shardOutcome struct {
			shard shard
			resp  ShardResponse
			err   error
		}
		outcomes := make([]shardOutcome, len(shards))
		var wg sync.WaitGroup
		for si, sh := range shards {
			wg.Add(1)
			go func() {
				defer wg.Done()
				req := ShardRequest{
					Sessions:      make([]SessionSpec, len(sh.indices)),
					OracleVersion: c.cfg.OracleVersion.OrDefault().String(),
				}
				for k, i := range sh.indices {
					req.Sessions[k] = specs[i]
				}
				c.shards.Add(1)
				c.sessionsRouted.Add(int64(len(sh.indices)))
				ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ShardTimeout)
				defer cancel()
				resp, err := c.transport.RunShard(ctx, c.cfg.Workers[sh.worker], req)
				if err == nil && len(resp.Results) != len(sh.indices) {
					err = fmt.Errorf("cluster: worker %s returned %d results for %d sessions",
						c.cfg.Workers[sh.worker], len(resp.Results), len(sh.indices))
				}
				outcomes[si] = shardOutcome{shard: sh, resp: resp, err: err}
			}()
		}
		wg.Wait()

		var next []int
		for _, oc := range outcomes {
			if oc.err != nil {
				c.workerFailures.Add(1)
				excluded[oc.shard.worker] = true
				lastWorkerErr = oc.err
				next = append(next, oc.shard.indices...)
				continue
			}
			for k, i := range oc.shard.indices {
				out[i] = oc.resp.Results[k]
			}
			if oc.resp.Error != "" && firstErr == nil {
				firstErr = fmt.Errorf("cluster: worker %s: %s", c.cfg.Workers[oc.shard.worker], oc.resp.Error)
			}
			c.mu.Lock()
			c.workerStats[c.cfg.Workers[oc.shard.worker]] = oc.resp.Stats
			c.mu.Unlock()
			note(len(oc.shard.indices))
		}
		sort.Ints(next)
		pending = next
		retrying = len(pending) > 0
	}
	return out, firstErr
}

// ring is a consistent-hash ring: Replicas virtual nodes per worker, placed
// by FNV-64a. Ownership of a key is the first virtual node clockwise from
// the key's hash whose worker is not excluded, so removing a worker only
// moves the sessions it owned.
type ring struct {
	hashes  []uint64
	workers []int // worker index per virtual node, aligned with hashes
}

// hash64 hashes a string for ring placement. Raw FNV-64a keeps most of the
// difference between similar strings (worker addresses, route keys that
// share long prefixes) in the low bits, which clusters a worker's virtual
// nodes into contiguous runs and starves the others; a murmur3-style
// finalizer scatters those bits across the whole ring.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, s)
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func newRing(workers []string, replicas int) *ring {
	type vnode struct {
		hash   uint64
		worker int
	}
	vnodes := make([]vnode, 0, len(workers)*replicas)
	for wi, w := range workers {
		for r := 0; r < replicas; r++ {
			vnodes = append(vnodes, vnode{hash: hash64(w + "#" + strconv.Itoa(r)), worker: wi})
		}
	}
	sort.Slice(vnodes, func(i, j int) bool {
		if vnodes[i].hash != vnodes[j].hash {
			return vnodes[i].hash < vnodes[j].hash
		}
		return vnodes[i].worker < vnodes[j].worker
	})
	r := &ring{hashes: make([]uint64, len(vnodes)), workers: make([]int, len(vnodes))}
	for i, v := range vnodes {
		r.hashes[i] = v.hash
		r.workers[i] = v.worker
	}
	return r
}

// owner returns the worker owning the key, skipping excluded workers; ok is
// false when every worker is excluded.
func (r *ring) owner(key string, excluded map[int]bool) (int, bool) {
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	for off := 0; off < len(r.hashes); off++ {
		w := r.workers[(start+off)%len(r.hashes)]
		if !excluded[w] {
			return w, true
		}
	}
	return 0, false
}

// httpTransport POSTs shards to workers over HTTP.
type httpTransport struct {
	client *http.Client
}

// workerURL normalizes a worker address to a base URL.
func workerURL(w string) string {
	if strings.Contains(w, "://") {
		return strings.TrimRight(w, "/")
	}
	return "http://" + w
}

func (t *httpTransport) RunShard(ctx context.Context, worker string, req ShardRequest) (ShardResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return ShardResponse{}, fmt.Errorf("cluster: encoding shard: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, workerURL(worker)+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return ShardResponse{}, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := t.client.Do(httpReq)
	if err != nil {
		return ShardResponse{}, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
		return ShardResponse{}, fmt.Errorf("cluster: worker %s returned %d: %s", worker, httpResp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var resp ShardResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return ShardResponse{}, fmt.Errorf("cluster: decoding worker %s response: %w", worker, err)
	}
	return resp, nil
}
