// Package cluster is the multi-process execution layer: a coordinator that
// expands a campaign's sessions into per-worker shards, routes each shard to
// a worker by consistent hashing on the batch memo key, executes shards over
// an HTTP transport, and merges the per-session results back in campaign
// order — byte-identical to single-process execution.
//
// The design leans on two properties the lower layers already guarantee:
//
//   - Determinism. A session is fully described by (platform, app, trace
//     seed, scheduler, predictor config): trace generation, predictor
//     training, and the simulation itself are deterministic, so a worker
//     that rebuilds the session from this description produces the same
//     Result bytes the coordinator's own process would have (workers must
//     run the same harness configuration — training scale and seed — which
//     cmd/pes-serve enforces by sharing one flag set).
//   - Keyed caching. Routing hashes the same tuple the batch memo cache is
//     keyed by, so a given session always lands on the same worker; repeat
//     campaigns hit that worker's warm memo cache, and sessions of one
//     (app, seed) pair cluster on few workers, keeping each worker's
//     artifact cache (traces, runtime events, fingerprints) warm too.
//
// The cluster is elastic. Membership is dynamic: Config.Workers only seeds
// the set, workers join and leave at runtime through Register/Deregister,
// and every member is health-checked against its /healthz endpoint; the
// consistent ring rebalances live as the healthy set changes. Within a run,
// each worker is fed its ring-owned sessions in bounded chunks, and a
// worker that drains its own queue steals half of the longest remaining
// queue — so one slow shard (the Oracle tail) cannot stall the campaign
// behind an otherwise idle cluster. When no live worker remains, the
// coordinator spills the remaining sessions over to a local in-process
// worker instead of failing the campaign.
//
// Failures are split by fault domain, because the two kinds must be treated
// oppositely:
//
//   - Client fault (HTTP 4xx: invalid session spec, oracle-version skew).
//     Deterministic — every worker would reject it identically — so the
//     campaign fails immediately with the rejection and no worker is
//     excluded. Treating these as worker failures would cascade the same
//     rejection across the ring and poison every member for the run.
//   - Worker fault (transport error, 5xx, malformed or short response).
//     The worker is excluded for the rest of the run, marked unhealthy in
//     the membership (probes heal it when it recovers), and its sessions
//     are re-routed across the remaining workers.
//   - Session error (a deterministic simulation error reported by a healthy
//     worker). Not retried — it would fail identically anywhere — and
//     surfaced like the in-process runner's first error, with every other
//     session still completing.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/predictor"
	"repro/internal/sched"
)

// SessionSpec is the wire description of one session: the same tuple that
// keys the batch memo cache. A worker rebuilds the full batch session —
// trace, runtime events, scheduler instance — from it; Predictor must be
// fully specified (the campaign layer merges defaults before routing).
type SessionSpec struct {
	Platform  string           `json:"platform"`
	App       string           `json:"app"`
	TraceSeed int64            `json:"trace_seed"`
	Scheduler string           `json:"scheduler"`
	Predictor predictor.Config `json:"predictor"`
	// OracleVersion is the Oracle solver version ("v1"/"v2"), set on Oracle
	// sessions only. It participates in the route key exactly like it
	// participates in the batch memo key, so v1 and v2 sessions never alias
	// on the wire or in a worker's cache.
	OracleVersion string `json:"oracle_version,omitempty"`
}

// RouteKey canonically encodes the memo-key tuple for consistent hashing.
func (s SessionSpec) RouteKey() string {
	var b strings.Builder
	b.WriteString(s.Platform)
	b.WriteByte('|')
	b.WriteString(s.App)
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(s.TraceSeed, 10))
	b.WriteByte('|')
	b.WriteString(s.Scheduler)
	b.WriteByte('|')
	fmt.Fprintf(&b, "ct=%g,deg=%d,dom=%t", s.Predictor.ConfidenceThreshold, s.Predictor.MaxDegree, s.Predictor.UseDOMAnalysis)
	if s.OracleVersion != "" {
		b.WriteString("|oracle=")
		b.WriteString(s.OracleVersion)
	}
	return b.String()
}

// ShardRequest is the body of POST /v1/shards: the sessions routed to one
// worker, plus the coordinator's configured oracle version so
// coordinator/worker harness-flag agreement is validated at shard submit
// instead of surfacing later as a golden diff.
type ShardRequest struct {
	Sessions []SessionSpec `json:"sessions"`
	// OracleVersion is the coordinator process's -oracle flag ("v1"/"v2").
	// A worker whose own flag disagrees rejects the shard with a clear
	// error. Empty (a pre-versioning coordinator) skips the check.
	OracleVersion string `json:"oracle_version,omitempty"`
}

// ShardResponse is a worker's answer: results index-aligned with the
// request's sessions (entries are null for failed sessions), the first
// session error if any, and a snapshot of the worker's cumulative
// runner/artifact counters (how warm its caches are).
type ShardResponse struct {
	Results []*engine.Result `json:"results"`
	Error   string           `json:"error,omitempty"`
	Stats   batch.Stats      `json:"stats"`
	// Spans are the worker-side trace spans for this shard (simulate wall
	// time, solve totals), present only when the request carried a trace ID.
	// The coordinator merges them into the campaign's timeline, stamping the
	// worker address the worker itself does not know.
	Spans []obs.Span `json:"spans,omitempty"`
}

// ClientFaultError is a shard rejection that is the campaign's fault — an
// invalid session spec, an oracle-version skew, malformed shard JSON — not
// the worker's. The rejection is deterministic: every worker would answer
// it identically, so the dispatcher fails the campaign immediately and
// excludes nobody instead of cascading the same 4xx across the ring.
type ClientFaultError struct {
	// Worker is the address that rejected the shard.
	Worker string
	// Status is the HTTP status code (4xx).
	Status int
	// Msg is the worker's error message.
	Msg string
}

func (e *ClientFaultError) Error() string {
	return fmt.Sprintf("cluster: worker %s rejected the shard (HTTP %d): %s", e.Worker, e.Status, e.Msg)
}

// IsClientFault reports whether err marks a deterministic client-fault
// shard rejection (see ClientFaultError) anywhere in its chain.
func IsClientFault(err error) bool {
	var cf *ClientFaultError
	return errors.As(err, &cf)
}

// Transport executes one shard on one worker. Implementations must be safe
// for concurrent use. An error return that satisfies IsClientFault fails
// the whole campaign immediately (deterministic rejection, nobody
// excluded); any other error means the worker failed and its sessions are
// re-routed. Transports that also implement Pinger get coordinator health
// probes.
type Transport interface {
	RunShard(ctx context.Context, worker string, req ShardRequest) (ShardResponse, error)
}

// Pinger is the optional health-probe side of a Transport. The coordinator
// heartbeat loop probes every member through it; transports that do not
// implement it (test fakes) skip health checking entirely.
type Pinger interface {
	Ping(ctx context.Context, worker string) error
}

// Stats snapshots a coordinator's counters.
type Stats struct {
	// Workers is the current healthy member count.
	Workers int `json:"workers"`
	// Members lists every member (healthy or not) with its source.
	Members []Member `json:"members,omitempty"`
	// Shards counts shard dispatches (including re-dispatches after a
	// worker failure); SessionsRouted counts the sessions inside them.
	Shards         int64 `json:"shards"`
	SessionsRouted int64 `json:"sessions_routed"`
	// Retries counts redistribution events after a worker failure;
	// WorkerFailures counts the failed dispatches that caused them.
	Retries        int64 `json:"retries"`
	WorkerFailures int64 `json:"worker_failures"`
	// Steals counts dispatches an idle worker stole from the longest
	// remaining queue; SessionsStolen counts the sessions inside them.
	Steals         int64 `json:"steals"`
	SessionsStolen int64 `json:"sessions_stolen"`
	// SpillOvers counts the times sessions fell back to local in-process
	// execution because no live worker remained; SessionsSpilled counts the
	// sessions executed that way. Local executions are not counted in
	// Shards/SessionsRouted.
	SpillOvers      int64 `json:"spill_overs"`
	SessionsSpilled int64 `json:"sessions_spilled"`
	// ClientFaults counts campaigns rejected for a deterministic client
	// fault (4xx): the campaign fails, no worker is excluded.
	ClientFaults int64 `json:"client_faults"`
	// ProbesSkipped counts health probes suppressed because the member's
	// failure backoff window had not elapsed (flap damping at work).
	ProbesSkipped int64 `json:"probes_skipped"`
	// Remote sums the latest runner-stats snapshot reported by each
	// currently healthy member: cache hits here are sessions a worker
	// served from its warm memo cache. Snapshots of excluded, unhealthy, or
	// departed members are dropped, not summed — a dead worker's stale
	// counters must not inflate the cluster's cache totals.
	Remote batch.Stats `json:"remote"`
}

// Config parameterizes a coordinator.
type Config struct {
	// Workers statically seeds the membership ("host:port" or a full URL
	// per entry). It may be empty: workers can join at runtime through
	// Register (the -coordinator flag on pes-serve workers).
	Workers []string
	// Transport overrides the shard transport; nil selects HTTP.
	Transport Transport
	// Replicas is the number of virtual nodes per worker on the hash ring
	// (default 64).
	Replicas int
	// ShardTimeout bounds one shard execution (default 10 minutes). A
	// shard that exceeds it counts as a worker failure — the worker is
	// excluded and the shard re-routed — so size it above the largest
	// expected chunk's cold (cache-miss) run time.
	ShardTimeout time.Duration
	// OracleVersion is this coordinator process's oracle version (zero
	// value = default). It is stamped on every shard request; workers whose
	// own -oracle flag disagrees reject the shard.
	OracleVersion sched.OracleVersion
	// MaxShardSessions caps the sessions per dispatched chunk (default 16).
	// A worker is fed its queue in chunks of up to this cap; smaller chunks
	// leave more queue behind for idle workers to steal and shrink the work
	// lost to a worker fault, larger chunks amortize transport overhead and
	// preserve session→worker cache affinity.
	MaxShardSessions int
	// HeartbeatInterval is the period of the membership health-check loop
	// (default 3s; negative disables). Probes run only when the transport
	// implements Pinger.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout bounds one health probe (default 2s).
	HeartbeatTimeout time.Duration
	// HeartbeatFailures is the number of consecutive failed probes that
	// mark a member unhealthy (default 3). A single passing probe heals it.
	HeartbeatFailures int
	// RetryBudget caps worker-fault re-route events per campaign (default
	// 16). Re-routing is immediate and cheap, but unbounded: a pathological
	// fleet (every worker flapping) could otherwise bounce the same
	// sessions around the ring forever. Exhausting the budget fails the
	// campaign with the last worker error attached.
	RetryBudget int
	// ProbeBackoffBase is the first re-probe delay charged to a member
	// after a failure (default 1s). Each further consecutive failure —
	// dispatch fault or probe — doubles it with jitter, up to
	// ProbeBackoffMax (default 60s), so a flapping worker is re-routed away
	// from immediately but re-probed lazily instead of hammered. A passing
	// probe or a re-registration clears the backoff.
	ProbeBackoffBase time.Duration
	ProbeBackoffMax  time.Duration
	// Local optionally supplies the in-process spill-over worker: when the
	// live worker set empties (none configured yet, or every member failed),
	// remaining sessions execute on it instead of failing the campaign.
	// server.New wires the service's own harness here automatically.
	Local *Worker
	// Logger receives the coordinator's structured events (membership
	// transitions, worker faults, steals); nil selects slog.Default().
	Logger *slog.Logger
}

// Coordinator routes sessions to workers and merges their results. Safe for
// concurrent use; one coordinator serves every campaign of a server. Close
// stops the health-check loop.
type Coordinator struct {
	cfg       Config
	transport Transport
	members   *membership
	log       *slog.Logger

	// shardLatency is the round-trip histogram set by RegisterMetrics at
	// wiring time (nil when telemetry is unwired; observations are nil-safe).
	shardLatency *obs.Histogram

	shards          atomic.Int64
	sessionsRouted  atomic.Int64
	retries         atomic.Int64
	workerFailures  atomic.Int64
	steals          atomic.Int64
	sessionsStolen  atomic.Int64
	spillOvers      atomic.Int64
	sessionsSpilled atomic.Int64
	clientFaults    atomic.Int64
	probesSkipped   atomic.Int64

	mu          sync.Mutex
	local       *Worker
	workerStats map[string]batch.Stats // latest snapshot per worker

	hbStop    chan struct{}
	hbDone    chan struct{}
	closeOnce sync.Once
}

// New builds a coordinator. The static worker seed may be empty — workers
// can join later through Register — in which case campaigns spill over to
// the local worker until the first member joins.
func New(cfg Config) (*Coordinator, error) {
	if err := validateSeed(cfg.Workers); err != nil {
		return nil, err
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 64
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 10 * time.Minute
	}
	if cfg.MaxShardSessions <= 0 {
		cfg.MaxShardSessions = 16
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 3 * time.Second
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 2 * time.Second
	}
	if cfg.HeartbeatFailures <= 0 {
		cfg.HeartbeatFailures = 3
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 16
	}
	if cfg.ProbeBackoffBase <= 0 {
		cfg.ProbeBackoffBase = time.Second
	}
	if cfg.ProbeBackoffMax < cfg.ProbeBackoffBase {
		cfg.ProbeBackoffMax = time.Minute
	}
	t := cfg.Transport
	if t == nil {
		t = NewHTTPTransport()
	}
	members := newMembership(cfg.Workers, cfg.Replicas)
	members.backoffBase = cfg.ProbeBackoffBase
	members.backoffMax = cfg.ProbeBackoffMax
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	c := &Coordinator{
		cfg:         cfg,
		transport:   t,
		members:     members,
		log:         logger,
		local:       cfg.Local,
		workerStats: make(map[string]batch.Stats),
		hbStop:      make(chan struct{}),
		hbDone:      make(chan struct{}),
	}
	if p, ok := t.(Pinger); ok && cfg.HeartbeatInterval > 0 {
		go c.heartbeat(p)
	} else {
		close(c.hbDone)
	}
	return c, nil
}

// Close stops the membership health-check loop. Idempotent; in-flight runs
// are unaffected (they finish on the membership as last probed).
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.hbStop) })
	<-c.hbDone
}

// heartbeat probes every member's /healthz on a fixed period, healing
// members whose probes pass and marking members unhealthy after
// HeartbeatFailures consecutive failures. Membership changes rebuild the
// ring and wake in-flight runs.
func (c *Coordinator) heartbeat(p Pinger) {
	defer close(c.hbDone)
	ticker := time.NewTicker(c.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-ticker.C:
		}
		due, skipped := c.members.probeTargets(time.Now())
		c.probesSkipped.Add(int64(skipped))
		for _, addr := range due {
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HeartbeatTimeout)
			err := p.Ping(ctx, addr)
			cancel()
			if err != nil {
				if c.members.probe(addr, false, c.cfg.HeartbeatFailures) {
					c.dropStats(addr)
					c.log.Warn("cluster member unhealthy", "worker", addr, "cause", "probe", "error", err)
				}
			} else if c.members.probe(addr, true, c.cfg.HeartbeatFailures) {
				c.log.Info("cluster member healed", "worker", addr)
			}
		}
	}
}

// Register adds a worker to the live membership (or heals an existing
// member). The ring rebalances immediately and in-flight campaigns start
// stealing work for the new member.
func (c *Coordinator) Register(addr string) error {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return fmt.Errorf("cluster: empty worker address")
	}
	if c.members.register(addr, SourceRegistered) {
		c.log.Info("cluster member registered", "worker", addr)
	}
	return nil
}

// Deregister removes a worker from the membership entirely and drops its
// stats snapshot; reports whether the worker was a member. In-flight
// dispatches to it are not interrupted (their failure, if any, is handled
// like any worker fault).
func (c *Coordinator) Deregister(addr string) bool {
	if !c.members.deregister(addr) {
		return false
	}
	c.dropStats(addr)
	c.log.Info("cluster member deregistered", "worker", addr)
	return true
}

// Members returns a snapshot (copies) of every member's state.
func (c *Coordinator) Members() []Member { return c.members.snapshot() }

// Workers returns a copy of the current member addresses, sorted. Mutating
// the returned slice does not affect routing.
func (c *Coordinator) Workers() []string { return c.members.addrs() }

// SetLocal installs the in-process spill-over worker (see Config.Local).
func (c *Coordinator) SetLocal(w *Worker) {
	c.mu.Lock()
	c.local = w
	c.mu.Unlock()
}

func (c *Coordinator) localWorker() *Worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.local
}

// noteWorkerFault marks a member unhealthy after a dispatch-level failure
// and drops its stats snapshot.
func (c *Coordinator) noteWorkerFault(addr string) {
	c.members.fault(addr)
	c.dropStats(addr)
}

func (c *Coordinator) setWorkerStats(addr string, st batch.Stats) {
	c.mu.Lock()
	c.workerStats[addr] = st
	c.mu.Unlock()
}

func (c *Coordinator) dropStats(addr string) {
	c.mu.Lock()
	delete(c.workerStats, addr)
	c.mu.Unlock()
}

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	members := c.members.snapshot()
	st := Stats{
		Members:         members,
		Shards:          c.shards.Load(),
		SessionsRouted:  c.sessionsRouted.Load(),
		Retries:         c.retries.Load(),
		WorkerFailures:  c.workerFailures.Load(),
		Steals:          c.steals.Load(),
		SessionsStolen:  c.sessionsStolen.Load(),
		SpillOvers:      c.spillOvers.Load(),
		SessionsSpilled: c.sessionsSpilled.Load(),
		ClientFaults:    c.clientFaults.Load(),
		ProbesSkipped:   c.probesSkipped.Load(),
	}
	healthy := make(map[string]bool, len(members))
	for _, m := range members {
		if m.Healthy {
			healthy[m.Addr] = true
			st.Workers++
		}
	}
	c.mu.Lock()
	for addr, ws := range c.workerStats {
		if !healthy[addr] {
			// Excluded or departed members' last snapshots must not inflate
			// the live totals.
			continue
		}
		st.Remote.Sessions += ws.Sessions
		st.Remote.UniqueRuns += ws.UniqueRuns
		st.Remote.CacheHits += ws.CacheHits
		st.Remote.CacheEntries += ws.CacheEntries
		st.Remote.CacheEvictions += ws.CacheEvictions
		st.Remote.StoreHits += ws.StoreHits
		st.Remote.Solver = st.Remote.Solver.Add(ws.Solver)
	}
	c.mu.Unlock()
	return st
}

// run is the in-flight state of one Coordinator.Run call: per-member work
// queues fed in bounded chunks, a runner goroutine per member that steals
// from the longest queue when its own drains, and a local spill-over lane
// for sessions no live member can take.
type run struct {
	c     *Coordinator
	specs []SessionSpec
	out   []*engine.Result
	total int

	ctx    context.Context
	cancel context.CancelFunc
	// trace is the campaign's span recorder, taken from the caller's context
	// (nil when untraced — all recording is nil-safe).
	trace *obs.Recorder

	progress  func(completed, total int)
	completed atomic.Int64

	mu            sync.Mutex
	cond          *sync.Cond
	queues        map[string][]int // pending original indices per member
	localQueue    []int
	runners       map[string]bool
	localOn       bool
	excluded      map[string]bool // members failed this run
	inflight      int
	resolved      int
	retriesUsed   int // worker-fault re-routes charged against RetryBudget
	done          bool
	fatalErr      error
	sessErr       error
	lastWorkerErr error
	wg            sync.WaitGroup
}

// Run executes the sessions across the cluster and returns the results
// index-aligned with the input — the same contract as the in-process batch
// runner: on a session error the first error is returned and the
// corresponding entries are nil, while every other session still completes.
// progress (may be nil) is called once per resolved session, possibly from
// several goroutines.
//
// A worker fault excludes that worker for the rest of the run and re-routes
// its sessions; a client fault (deterministic 4xx rejection) fails the
// campaign immediately and excludes nobody; when no live worker remains the
// remaining sessions spill over to the local worker, and Run fails only
// when none is configured.
func (c *Coordinator) Run(specs []SessionSpec, progress func(completed, total int)) ([]*engine.Result, error) {
	return c.RunContext(context.Background(), specs, progress)
}

// RunContext is Run carrying a context: a trace recorder attached with
// obs.WithTrace collects dispatch/steal/spill spans (and the worker-side
// spans returned in shard responses), the trace ID propagates to workers in
// the X-Pes-Trace-Id header, and cancelling ctx aborts the run with ctx's
// error (in-flight shards are abandoned; workers complete them into their
// own caches).
func (c *Coordinator) RunContext(ctx context.Context, specs []SessionSpec, progress func(completed, total int)) ([]*engine.Result, error) {
	out := make([]*engine.Result, len(specs))
	if len(specs) == 0 {
		return out, nil
	}
	r := &run{
		c:        c,
		specs:    specs,
		out:      out,
		total:    len(specs),
		trace:    obs.TraceFrom(ctx),
		progress: progress,
		queues:   make(map[string][]int),
		runners:  make(map[string]bool),
		excluded: make(map[string]bool),
	}
	r.cond = sync.NewCond(&r.mu)
	r.ctx, r.cancel = context.WithCancel(ctx)
	defer r.cancel()
	// A parent-context cancellation must wake the completion wait below,
	// which otherwise only the runners' broadcasts do.
	stopWatch := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		if r.fatalErr == nil {
			r.fatalErr = ctx.Err()
		}
		r.cancel()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stopWatch()

	all := make([]int, len(specs))
	for i := range all {
		all[i] = i
	}
	r.mu.Lock()
	r.assignLocked(all)
	// Idle members get runners too, so they can steal immediately.
	for _, addr := range c.members.healthy() {
		r.ensureRunnerLocked(addr)
	}
	r.mu.Unlock()

	go r.watchMembership()

	r.mu.Lock()
	for r.fatalErr == nil && r.resolved < r.total {
		r.cond.Wait()
	}
	r.done = true
	err := r.fatalErr
	r.cancel()
	r.cond.Broadcast()
	r.mu.Unlock()

	r.wg.Wait()
	if err != nil {
		return out, err
	}
	r.mu.Lock()
	sessErr := r.sessErr
	r.mu.Unlock()
	return out, sessErr
}

// note reports n resolved sessions to the progress callback (outside r.mu —
// the callback may call back into the coordinator).
func (r *run) note(n int) {
	if r.progress == nil {
		return
	}
	for i := 0; i < n; i++ {
		r.progress(int(r.completed.Add(1)), r.total)
	}
}

// assignLocked routes indices to the healthy, non-excluded members by ring
// ownership, spilling to the local lane those no member can take. Caller
// holds r.mu.
func (r *run) assignLocked(indices []int) {
	var spill []int
	for _, i := range indices {
		addr, ok := r.c.members.owner(r.specs[i].RouteKey(), r.excluded)
		if !ok {
			spill = append(spill, i)
			continue
		}
		r.queues[addr] = append(r.queues[addr], i)
		r.ensureRunnerLocked(addr)
	}
	if len(spill) > 0 {
		r.spillLocked(spill)
	}
	r.cond.Broadcast()
}

// spillLocked hands indices to the local in-process worker — the graceful
// degradation path when the live worker set is empty. Caller holds r.mu.
func (r *run) spillLocked(indices []int) {
	if r.c.localWorker() == nil {
		if r.fatalErr == nil {
			if r.lastWorkerErr != nil {
				r.fatalErr = fmt.Errorf("cluster: no live workers remain and no local spill-over is configured (last worker error: %w)", r.lastWorkerErr)
			} else {
				r.fatalErr = fmt.Errorf("cluster: no live workers and no local spill-over configured")
			}
			r.cancel()
		}
		return
	}
	r.localQueue = append(r.localQueue, indices...)
	r.c.spillOvers.Add(1)
	r.c.sessionsSpilled.Add(int64(len(indices)))
	if !r.localOn {
		r.localOn = true
		r.wg.Add(1)
		go r.localRunner()
	}
}

// ensureRunnerLocked starts the member's runner goroutine once. Caller
// holds r.mu.
func (r *run) ensureRunnerLocked(addr string) {
	if r.runners[addr] || r.excluded[addr] || r.done || r.fatalErr != nil {
		return
	}
	r.runners[addr] = true
	r.wg.Add(1)
	go r.runner(addr)
}

// watchMembership starts runners for members that join mid-run, so a fresh
// worker immediately begins stealing queued work.
func (r *run) watchMembership() {
	for {
		ch := r.c.members.watchCh()
		r.mu.Lock()
		if r.done || r.fatalErr != nil {
			r.mu.Unlock()
			return
		}
		for _, addr := range r.c.members.healthy() {
			r.ensureRunnerLocked(addr)
		}
		r.mu.Unlock()
		select {
		case <-r.ctx.Done():
			return
		case <-ch:
		}
	}
}

// chunkLocked takes the member's next dispatch: its own queue from the head
// (up to the chunk cap), or — when its queue is empty — half of the longest
// other queue from the tail (a steal). Own-queue chunks take everything up
// to the cap rather than a fraction, so a balanced cluster dispatches each
// member's sessions in one shard and steals nothing: session→worker
// affinity (and the warm memo caches it buys on repeat campaigns) is only
// traded away when a queue actually outlives an idle worker. Caller holds
// r.mu.
func (r *run) chunkLocked(addr string) (indices []int, stolen bool) {
	limit := r.c.cfg.MaxShardSessions
	if q := r.queues[addr]; len(q) > 0 {
		n := len(q)
		if n > limit {
			n = limit
		}
		indices = append([]int(nil), q[:n]...)
		r.queues[addr] = q[n:]
		return indices, false
	}
	victim, longest := "", 0
	for a, q := range r.queues {
		if a != addr && len(q) > longest {
			victim, longest = a, len(q)
		}
	}
	if victim == "" {
		return nil, false
	}
	n := (longest + 1) / 2
	if n > limit {
		n = limit
	}
	q := r.queues[victim]
	indices = append([]int(nil), q[len(q)-n:]...)
	r.queues[victim] = q[:len(q)-n]
	return indices, true
}

// runner is one member's dispatch loop: chunks of its own queue, then
// steals, until the run completes, a fatal error lands, or the member
// fails.
func (r *run) runner(addr string) {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		var chunk []int
		var stolen bool
		for {
			if r.done || r.fatalErr != nil || r.excluded[addr] {
				r.mu.Unlock()
				return
			}
			chunk, stolen = r.chunkLocked(addr)
			if chunk != nil {
				break
			}
			r.cond.Wait()
		}
		r.inflight++
		r.mu.Unlock()

		spanName := "dispatch"
		if stolen {
			r.c.steals.Add(1)
			r.c.sessionsStolen.Add(int64(len(chunk)))
			spanName = "steal"
			r.c.log.Debug("cluster steal", "worker", addr, "sessions", len(chunk), "trace", r.trace.TraceID())
		}
		r.c.shards.Add(1)
		r.c.sessionsRouted.Add(int64(len(chunk)))
		req := ShardRequest{
			Sessions:      make([]SessionSpec, len(chunk)),
			OracleVersion: r.c.cfg.OracleVersion.OrDefault().String(),
		}
		for k, i := range chunk {
			req.Sessions[k] = r.specs[i]
		}
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.ctx, r.c.cfg.ShardTimeout)
		resp, err := r.c.transport.RunShard(ctx, addr, req)
		cancel()
		rtt := time.Since(start)
		if err == nil && len(resp.Results) != len(chunk) {
			err = fmt.Errorf("cluster: worker %s returned %d results for %d sessions", addr, len(resp.Results), len(chunk))
		}
		if err == nil {
			r.c.shardLatency.ObserveSeconds(int64(rtt))
			r.trace.Record(obs.Span{
				Name: spanName, Worker: addr, Sessions: len(chunk),
				StartUS: start.UnixMicro(), DurUS: rtt.Microseconds(),
			})
			for i := range resp.Spans {
				if resp.Spans[i].Worker == "" {
					resp.Spans[i].Worker = addr
				}
			}
			r.trace.Merge(resp.Spans)
		}

		r.mu.Lock()
		r.inflight--
		if err != nil {
			if r.ctx.Err() != nil {
				// The run is over (done or fatal); the abort is ours.
				r.cond.Broadcast()
				r.mu.Unlock()
				return
			}
			if IsClientFault(err) {
				// Deterministic rejection: every worker answers identically.
				// Fail the campaign now and exclude nobody — re-routing
				// would only cascade the same 4xx around the ring.
				r.c.clientFaults.Add(1)
				r.c.log.Warn("cluster client fault",
					"worker", addr, "trace", r.trace.TraceID(), "error", err)
				if r.fatalErr == nil {
					r.fatalErr = err
				}
				r.cancel()
				r.cond.Broadcast()
				r.mu.Unlock()
				return
			}
			// Worker fault: exclude it for the run, mark it unhealthy, and
			// re-route everything it still held — unless this campaign has
			// exhausted its retry budget, in which case it fails now instead
			// of bouncing the same sessions around a flapping fleet forever.
			r.c.workerFailures.Add(1)
			r.c.retries.Add(1)
			r.c.noteWorkerFault(addr)
			r.c.log.Warn("cluster worker fault",
				"worker", addr, "sessions", len(chunk), "trace", r.trace.TraceID(), "error", err)
			r.lastWorkerErr = err
			r.excluded[addr] = true
			r.retriesUsed++
			if r.retriesUsed > r.c.cfg.RetryBudget {
				if r.fatalErr == nil {
					r.fatalErr = fmt.Errorf("cluster: campaign retry budget exhausted (%d worker faults > budget %d; last: %w)",
						r.retriesUsed, r.c.cfg.RetryBudget, err)
				}
				r.cancel()
				r.cond.Broadcast()
				r.mu.Unlock()
				return
			}
			requeue := append(chunk, r.queues[addr]...)
			delete(r.queues, addr)
			r.assignLocked(requeue)
			r.cond.Broadcast()
			r.mu.Unlock()
			return
		}
		for k, i := range chunk {
			r.out[i] = resp.Results[k]
		}
		if resp.Error != "" && r.sessErr == nil {
			r.sessErr = fmt.Errorf("cluster: worker %s: %s", addr, resp.Error)
		}
		r.resolved += len(chunk)
		r.c.setWorkerStats(addr, resp.Stats)
		r.cond.Broadcast()
		r.mu.Unlock()
		r.note(len(chunk))
	}
}

// localRunner drains the spill-over lane on the coordinator's own
// in-process worker. Local execution shares the service's harness, so its
// results are byte-identical to a remote worker's; a local rejection is a
// deterministic spec error and fails the campaign like a client fault.
func (r *run) localRunner() {
	defer r.wg.Done()
	w := r.c.localWorker()
	for {
		r.mu.Lock()
		var chunk []int
		for {
			if r.done || r.fatalErr != nil {
				r.mu.Unlock()
				return
			}
			if len(r.localQueue) > 0 {
				chunk = r.localQueue
				r.localQueue = nil
				break
			}
			r.cond.Wait()
		}
		r.mu.Unlock()

		req := ShardRequest{
			Sessions:      make([]SessionSpec, len(chunk)),
			OracleVersion: r.c.cfg.OracleVersion.OrDefault().String(),
		}
		for k, i := range chunk {
			req.Sessions[k] = r.specs[i]
		}
		start := time.Now()
		resp, err := w.RunShardTraced(r.trace.TraceID(), req)
		if err == nil {
			r.trace.Record(obs.Span{
				Name: "spill", Worker: "local", Sessions: len(chunk),
				StartUS: start.UnixMicro(), DurUS: time.Since(start).Microseconds(),
			})
			for i := range resp.Spans {
				if resp.Spans[i].Worker == "" {
					resp.Spans[i].Worker = "local"
				}
			}
			r.trace.Merge(resp.Spans)
		}

		r.mu.Lock()
		if err != nil {
			r.c.clientFaults.Add(1)
			if r.fatalErr == nil {
				r.fatalErr = fmt.Errorf("cluster: local spill-over: %w", err)
			}
			r.cancel()
			r.cond.Broadcast()
			r.mu.Unlock()
			return
		}
		for k, i := range chunk {
			r.out[i] = resp.Results[k]
		}
		if resp.Error != "" && r.sessErr == nil {
			r.sessErr = fmt.Errorf("cluster: local spill-over: %s", resp.Error)
		}
		r.resolved += len(chunk)
		r.cond.Broadcast()
		r.mu.Unlock()
		r.note(len(chunk))
	}
}

// httpTransport POSTs shards to workers over HTTP and probes their
// /healthz.
type httpTransport struct {
	client *http.Client
}

// NewHTTPTransport returns the production HTTP shard transport — the one a
// nil Config.Transport selects. Exported so wrappers (internal/chaos) can
// interpose on the real transport instead of a test fake.
func NewHTTPTransport() Transport {
	return &httpTransport{client: &http.Client{}}
}

// workerURL normalizes a worker address to a base URL.
func workerURL(w string) string {
	if strings.Contains(w, "://") {
		return strings.TrimRight(w, "/")
	}
	return "http://" + w
}

func (t *httpTransport) RunShard(ctx context.Context, worker string, req ShardRequest) (ShardResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return ShardResponse{}, fmt.Errorf("cluster: encoding shard: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, workerURL(worker)+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return ShardResponse{}, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if id := obs.TraceIDFrom(ctx); id != "" {
		httpReq.Header.Set(obs.TraceHeader, id)
	}
	httpResp, err := t.client.Do(httpReq)
	if err != nil {
		return ShardResponse{}, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
		msg := strings.TrimSpace(string(raw))
		var se shardError
		if json.Unmarshal(raw, &se) == nil && se.Error != "" {
			msg = se.Error
		}
		if httpResp.StatusCode >= 400 && httpResp.StatusCode < 500 {
			// The worker deliberately rejected the shard: the campaign's
			// fault (bad spec, version skew), not the worker's.
			return ShardResponse{}, &ClientFaultError{Worker: worker, Status: httpResp.StatusCode, Msg: msg}
		}
		return ShardResponse{}, fmt.Errorf("cluster: worker %s returned %d: %s", worker, httpResp.StatusCode, msg)
	}
	var resp ShardResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return ShardResponse{}, fmt.Errorf("cluster: decoding worker %s response: %w", worker, err)
	}
	return resp, nil
}

// Ping satisfies Pinger: a member is healthy while its /healthz answers 200.
func (t *httpTransport) Ping(ctx context.Context, worker string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, workerURL(worker)+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: worker %s health probe returned %d", worker, resp.StatusCode)
	}
	return nil
}
