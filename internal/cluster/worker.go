package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/acmp"
	"repro/internal/batch"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sessions"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// Worker executes shards on one process's harness: its own trained learner,
// artifact store, and memoizing batch runner. Because every layer below is
// deterministic, a worker configured like the coordinator (same training
// scale and seed) produces byte-identical results to in-process execution —
// and because routing is consistent, repeat campaigns hit its warm caches.
type Worker struct {
	setup *experiments.Setup
}

// NewWorker trains the worker's harness (predictor, corpus, runner) from
// the configuration. Workers of one cluster must share the coordinator's
// configuration for results to merge byte-identically.
func NewWorker(cfg experiments.Config) (*Worker, error) {
	setup, err := experiments.NewSetup(cfg)
	if err != nil {
		return nil, err
	}
	return &Worker{setup: setup}, nil
}

// NewWorkerFromSetup wraps an existing harness setup (tests share one setup
// between a worker and a direct runner).
func NewWorkerFromSetup(setup *experiments.Setup) *Worker {
	return &Worker{setup: setup}
}

// Setup exposes the worker's harness state.
func (w *Worker) Setup() *experiments.Setup { return w.setup }

// Stats snapshots the worker's runner/artifact counters.
func (w *Worker) Stats() batch.Stats { return w.setup.Runner.Stats() }

// buildSessions turns wire specs into self-contained batch sessions, the
// same construction the campaign layer performs in-process: the trace comes
// from the worker's artifact store, the learner is the worker's trained
// model, and the predictor configuration is taken verbatim from the spec.
func (w *Worker) buildSessions(specs []SessionSpec) ([]batch.Session, error) {
	out := make([]batch.Session, 0, len(specs))
	for i, spec := range specs {
		platform, err := acmp.ByName(spec.Platform)
		if err != nil {
			return nil, fmt.Errorf("session %d: %w", i, err)
		}
		app, err := webapp.ByName(spec.App)
		if err != nil {
			return nil, fmt.Errorf("session %d: %w", i, err)
		}
		ov, err := sched.ParseOracleVersion(spec.OracleVersion)
		if err != nil {
			return nil, fmt.Errorf("session %d: %w", i, err)
		}
		tr := w.setup.Artifacts.Trace(app, spec.TraceSeed, trace.PurposeEval, trace.Options{})
		sess, err := sessions.New(sessions.Spec{
			Platform:      platform,
			Trace:         tr,
			Scheduler:     spec.Scheduler,
			Learner:       w.setup.Learner,
			Predictor:     spec.Predictor,
			Artifacts:     w.setup.Artifacts,
			OracleVersion: ov,
		})
		if err != nil {
			return nil, fmt.Errorf("session %d: %w", i, err)
		}
		out = append(out, sess)
	}
	return out, nil
}

// RunShard executes one shard on the worker's runner. Invalid specs are the
// caller's fault (the HTTP layer answers 400); a session simulation error
// is reported in the response like the in-process runner's first error,
// with the remaining sessions still completing.
func (w *Worker) RunShard(req ShardRequest) (ShardResponse, error) {
	return w.RunShardTraced("", req)
}

// RunShardTraced is RunShard joining a campaign trace: a non-empty traceID
// (from the X-Pes-Trace-Id header, or the coordinator's recorder on the
// local spill-over path) makes the response carry per-chunk simulate and
// solve-total spans for the coordinator to merge into the campaign timeline.
// An empty traceID records nothing and is byte-identical to RunShard.
func (w *Worker) RunShardTraced(traceID string, req ShardRequest) (ShardResponse, error) {
	if len(req.Sessions) == 0 {
		return ShardResponse{}, fmt.Errorf("shard contains no sessions")
	}
	if req.OracleVersion != "" {
		theirs, err := sched.ParseOracleVersion(req.OracleVersion)
		if err != nil {
			return ShardResponse{}, fmt.Errorf("shard oracle version: %w", err)
		}
		if mine := w.setup.Config.OracleVersion.OrDefault(); theirs != mine {
			return ShardResponse{}, fmt.Errorf(
				"oracle version mismatch: coordinator submits %s shards but this worker runs %s; restart with matching -oracle flags",
				theirs, mine)
		}
	}
	sess, err := w.buildSessions(req.Sessions)
	if err != nil {
		return ShardResponse{}, err
	}
	start := time.Now()
	results, runErr := w.setup.Runner.Run(sess)
	resp := ShardResponse{Results: results, Stats: w.Stats()}
	if traceID != "" {
		// Solve totals sum the solver wall time embedded in each session's
		// result — deterministic per shard, cache-served sessions included
		// (their solver work happened once, wherever they were first built).
		var solveNS int64
		for _, res := range results {
			if res != nil {
				solveNS += res.Solver.WallNS
			}
		}
		startUS := start.UnixMicro()
		resp.Spans = []obs.Span{
			{TraceID: traceID, Name: "simulate", Sessions: len(req.Sessions),
				StartUS: startUS, DurUS: time.Since(start).Microseconds()},
			{TraceID: traceID, Name: "solve", Sessions: len(req.Sessions),
				StartUS: startUS, DurUS: solveNS / 1e3},
		}
	}
	if runErr != nil {
		resp.Error = runErr.Error()
	}
	return resp, nil
}

// workerHealth is the body of a worker's GET /healthz.
type workerHealth struct {
	Status string      `json:"status"`
	Role   string      `json:"role"`
	Stats  batch.Stats `json:"stats"`
	// Workers is the worker's simulation worker-pool size.
	Workers int `json:"workers"`
}

// Handler returns the worker HTTP API:
//
//	POST /v1/shards  execute a shard of sessions, return merged-ready results
//	GET  /healthz    liveness + cache counters
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shards", w.handleShard)
	mux.HandleFunc("GET /healthz", w.handleHealth)
	return mux
}

// shardError is the JSON error body of a failed shard request.
type shardError struct {
	Error string `json:"error"`
}

func (w *Worker) writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(v)
}

func (w *Worker) handleShard(rw http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		w.writeJSON(rw, http.StatusBadRequest, shardError{Error: "invalid shard JSON: " + err.Error()})
		return
	}
	resp, err := w.RunShardTraced(r.Header.Get(obs.TraceHeader), req)
	if err != nil {
		w.writeJSON(rw, http.StatusBadRequest, shardError{Error: err.Error()})
		return
	}
	w.writeJSON(rw, http.StatusOK, resp)
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	w.writeJSON(rw, http.StatusOK, workerHealth{
		Status:  "ok",
		Role:    "worker",
		Stats:   w.Stats(),
		Workers: w.setup.Runner.Workers(),
	})
}
