// Package ilp provides the integer-linear-programming solver behind the PES
// optimizer (Eqn. 2–5 of the paper).
//
// The scheduling problem has a chain structure: events execute back to back
// on the main thread, each event must be assigned exactly one ACMP
// configuration (Eqn. 2), the cumulative finish time of every prefix must
// meet that event's deadline (Eqn. 4), and the objective is the total energy
// (Eqn. 5). Like the paper, which implements its own solver rather than
// using a third-party LP package, this solver is specialized to that
// structure.
//
// Solve is an exact branch-and-bound over per-event configuration choices
// with three structural optimizations over the straightforward search
// (preserved verbatim as SolveReference):
//
//   - Dominance pruning over ACMP configurations: a choice that is no
//     faster and no cheaper than an earlier-ordered choice can never appear
//     in the solver's answer, so each item's candidate set shrinks to its
//     energy/latency Pareto frontier before the search starts.
//   - Memoized suffix latencies: the latest admissible finish time of every
//     item is precomputed from the suffix of minimum latencies, turning the
//     per-node "can the remaining deadlines still be met?" scan into an O(1)
//     comparison.
//   - Frontier bisection: each pruned frontier is ordered by ascending
//     energy and therefore strictly descending latency, so the infeasible
//     low-energy prefix at a node is skipped with a binary search instead of
//     being enumerated.
//
// The optimizations only remove work that cannot change the answer: the
// returned assignment — including its tie-breaking among equal-energy
// optima — is identical to SolveReference's whenever neither search
// exhausts its node budget (property-tested in equivalence_test.go; the
// explored node sets themselves shrink, which is the point). SolveGreedy
// exposes the deadline-aware greedy heuristic that seeds the incumbent.
package ilp

import (
	"math"
	"sort"

	"repro/internal/simtime"
)

// Choice is one candidate configuration for an item: its predicted latency
// and energy under that configuration.
type Choice struct {
	Latency simtime.Duration
	Energy  float64
}

// Item is one event to schedule: its absolute deadline and its per-config
// choices. Choices must be non-empty.
type Item struct {
	Deadline simtime.Time
	Choices  []Choice
}

// Problem is a chain-scheduling instance: items execute in order starting no
// earlier than Start.
type Problem struct {
	Start simtime.Time
	Items []Item
}

// Assignment is the solver output.
type Assignment struct {
	// Choice holds the selected choice index for each item.
	Choice []int
	// TotalEnergy is the summed energy of the selected choices.
	TotalEnergy float64
	// Feasible reports whether every original deadline is met. When the
	// instance is infeasible (e.g. a Type I event), the solver returns the
	// assignment that meets the relaxed deadlines (earliest achievable
	// finish times) with minimal energy, and Feasible is false.
	Feasible bool
	// Finish holds the cumulative finish time of each item under the
	// returned assignment.
	Finish []simtime.Time
	// Nodes is the number of branch-and-bound candidates explored (for
	// overhead reporting and regression benchmarks). Solve and
	// SolveReference count the same way — one node per candidate choice
	// tried at a search position — so their Nodes values are directly
	// comparable; Solve's dominance pruning and memoized suffix latencies
	// make its count strictly smaller on non-trivial instances.
	Nodes int
}

// Aborted reports whether the search exhausted its node budget before
// completing, in which case the assignment is the best incumbent found
// along the traversal (a traversal artifact) rather than a proven optimum.
func (a Assignment) Aborted() bool { return a.Nodes >= maxNodes }

// maxNodes bounds the branch-and-bound search; beyond it the greedy solution
// stands. With ≤ ~16 items and 17 configurations the bound is generous.
const maxNodes = 400000

// prep is the shared precomputation of a solve: per-item minima, the
// relaxed deadlines, and the memoized suffix quantities derived from them.
type prep struct {
	// minLat and minEnergy are the per-item minima over the choice set.
	minLat    []simtime.Duration
	minEnergy []float64
	// deadlines are the relaxed deadlines: the original deadline, or the
	// earliest achievable finish time when even maximum performance misses
	// it (so the search space is never empty).
	deadlines []simtime.Time
	// feasible reports whether relaxation was unnecessary.
	feasible bool
	// latestFinish memoizes, per item, the latest finish time from which
	// every remaining deadline is still reachable at minimum latencies:
	// latestFinish[i] = min(deadlines[i], latestFinish[i+1] - minLat[i+1]).
	// A partial schedule is extensible iff finish(i) <= latestFinish[i],
	// replacing the O(n) suffix walk of the reference solver.
	latestFinish []simtime.Time
	// sufEnergy[i] is the deadline-ignoring energy lower bound of the
	// suffix starting at item i.
	sufEnergy []float64
}

// prepare computes the shared solve state for a non-empty problem.
func prepare(p Problem) *prep {
	n := len(p.Items)
	pr := &prep{
		minLat:       make([]simtime.Duration, n),
		minEnergy:    make([]float64, n),
		deadlines:    make([]simtime.Time, n),
		feasible:     true,
		latestFinish: make([]simtime.Time, n),
		sufEnergy:    make([]float64, n+1),
	}
	for i, it := range p.Items {
		if len(it.Choices) == 0 {
			// A degenerate item with no choices: treat as zero-cost no-op.
			continue
		}
		pr.minLat[i] = it.Choices[0].Latency
		pr.minEnergy[i] = it.Choices[0].Energy
		for _, c := range it.Choices[1:] {
			if c.Latency < pr.minLat[i] {
				pr.minLat[i] = c.Latency
			}
			if c.Energy < pr.minEnergy[i] {
				pr.minEnergy[i] = c.Energy
			}
		}
	}
	earliest := p.Start
	for i := range p.Items {
		earliest = earliest.Add(pr.minLat[i])
		pr.deadlines[i] = p.Items[i].Deadline
		if earliest.After(pr.deadlines[i]) {
			pr.deadlines[i] = earliest
			pr.feasible = false
		}
	}
	pr.latestFinish[n-1] = pr.deadlines[n-1]
	for i := n - 2; i >= 0; i-- {
		pr.latestFinish[i] = pr.latestFinish[i+1].Add(-pr.minLat[i+1])
		if pr.deadlines[i].Before(pr.latestFinish[i]) {
			pr.latestFinish[i] = pr.deadlines[i]
		}
	}
	for i := n - 1; i >= 0; i-- {
		pr.sufEnergy[i] = pr.sufEnergy[i+1] + pr.minEnergy[i]
	}
	return pr
}

// energyOrder returns each item's choice indices sorted by ascending energy
// — the candidate ordering of the search, shared (including its
// tie-breaking) with SolveReference so both solvers visit leaves in the same
// order.
func energyOrder(p Problem) [][]int {
	order := make([][]int, len(p.Items))
	for i, it := range p.Items {
		idx := make([]int, len(it.Choices))
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool {
			return it.Choices[idx[a]].Energy < it.Choices[idx[b]].Energy
		})
		order[i] = idx
	}
	return order
}

// frontiers reduces each item's energy-ordered candidate list to its
// energy/latency Pareto frontier: walking in ascending-energy order, a
// choice is kept only if it is strictly faster than every choice kept before
// it. A pruned choice j is dominated by an earlier-ordered keeper k
// (energy(k) <= energy(j), latency(k) <= latency(j)): substituting k for j
// in any feasible assignment stays feasible at no more energy, and the
// substituted assignment is visited first, so no dominated choice can appear
// in the first optimal leaf the search finds — pruning never changes the
// returned assignment. The kept lists have strictly descending latency,
// which feasibleFrom exploits.
func frontiers(p Problem, order [][]int) [][]int {
	front := make([][]int, len(p.Items))
	for i, it := range p.Items {
		kept := order[i][:0] // reuse the order backing array; order is not used afterwards
		var minLat simtime.Duration
		for _, j := range order[i] {
			if len(kept) == 0 || it.Choices[j].Latency < minLat {
				kept = append(kept, j)
				minLat = it.Choices[j].Latency
			}
		}
		front[i] = kept
	}
	return front
}

// feasibleFrom returns the index of the first frontier candidate whose
// latency fits the budget. Frontier latencies are strictly descending, so
// the infeasible candidates form a prefix and binary search finds the cut
// without visiting them.
func feasibleFrom(choices []Choice, frontier []int, budget simtime.Duration) int {
	return sort.Search(len(frontier), func(k int) bool {
		return choices[frontier[k]].Latency <= budget
	})
}

// Solve computes a minimum-energy assignment subject to the chain deadline
// constraints. It always returns a complete assignment: when the original
// deadlines cannot all be met even at maximum performance, the deadlines are
// relaxed to the earliest achievable finish times (the infeasible events run
// as fast as possible) and Feasible is false.
//
// The returned assignment (including its tie-breaking among equal-energy
// optima) is identical to SolveReference's whenever neither search aborts
// on the node budget; only the amount of search work differs.
func Solve(p Problem) Assignment {
	n := len(p.Items)
	if n == 0 {
		return Assignment{Feasible: true}
	}
	pr := prepare(p)
	front := frontiers(p, energyOrder(p))

	greedyChoice, greedyEnergy := greedy(p, pr)
	best := append([]int(nil), greedyChoice...)
	bestEnergy := greedyEnergy

	cur := make([]int, n)
	nodes := 0
	var dfs func(i int, now simtime.Time, energy float64) bool
	dfs = func(i int, now simtime.Time, energy float64) bool {
		if nodes >= maxNodes {
			return true // abort the search, keep the best found so far
		}
		if i == n {
			if energy < bestEnergy {
				bestEnergy = energy
				copy(best, cur)
			}
			return false
		}
		if energy+pr.sufEnergy[i] >= bestEnergy {
			return false
		}
		it := p.Items[i]
		if len(it.Choices) == 0 {
			cur[i] = 0
			return dfs(i+1, now, energy)
		}
		f := front[i]
		for _, j := range f[feasibleFrom(it.Choices, f, pr.latestFinish[i].Sub(now)):] {
			c := it.Choices[j]
			// The frontier ascends in energy, so once this candidate's
			// energy lower bound reaches the incumbent no later candidate
			// can beat it either: stop scanning. The skipped subtrees are
			// exactly the ones the recursive bound check would reject on
			// entry, so the returned assignment is unchanged.
			if energy+c.Energy+pr.sufEnergy[i+1] >= bestEnergy {
				break
			}
			nodes++
			cur[i] = j
			if dfs(i+1, now.Add(c.Latency), energy+c.Energy) {
				return true
			}
		}
		return false
	}
	dfs(0, p.Start, 0)

	return materialize(p, best, pr.feasible, nodes)
}

// materialize derives the finish times and total energy of an assignment.
func materialize(p Problem, choice []int, feasible bool, nodes int) Assignment {
	finish := make([]simtime.Time, len(p.Items))
	now := p.Start
	total := 0.0
	for i := range p.Items {
		if len(p.Items[i].Choices) > 0 {
			c := p.Items[i].Choices[choice[i]]
			now = now.Add(c.Latency)
			total += c.Energy
		}
		finish[i] = now
	}
	return Assignment{
		Choice:      choice,
		TotalEnergy: total,
		Feasible:    feasible,
		Finish:      finish,
		Nodes:       nodes,
	}
}

// SolveReferenceOrder explores candidates in exactly the order — and with
// exactly the node accounting, budget, and abort behaviour — of
// SolveReference, but performs each future-feasibility test as the O(1)
// memoized-suffix-latency comparison instead of the reference's O(n) walk.
// Its Assignment (including Nodes) is bit-identical to SolveReference's on
// every instance, aborted searches included; only the wall time drops.
//
// It exists for budget-pinned baselines: the Oracle's published figures were
// produced under the reference search budget, and on its hardest windows
// that budget is exhausted, making the returned assignment an artifact of
// the traversal itself. The Oracle therefore keeps this traversal, while the
// PES optimizer — whose instances are far smaller — uses the pruned Solve.
func SolveReferenceOrder(p Problem) Assignment {
	n := len(p.Items)
	if n == 0 {
		return Assignment{Feasible: true}
	}
	pr := prepare(p)
	order := energyOrder(p)

	greedyChoice, greedyEnergy := greedy(p, pr)
	best := append([]int(nil), greedyChoice...)
	bestEnergy := greedyEnergy

	cur := make([]int, n)
	nodes := 0
	var dfs func(i int, now simtime.Time, energy float64) bool
	dfs = func(i int, now simtime.Time, energy float64) bool {
		if nodes >= maxNodes {
			return true // abort the search, keep the best found so far
		}
		if i == n {
			if energy < bestEnergy {
				bestEnergy = energy
				copy(best, cur)
			}
			return false
		}
		if energy+pr.sufEnergy[i] >= bestEnergy {
			return false
		}
		it := p.Items[i]
		if len(it.Choices) == 0 {
			cur[i] = 0
			return dfs(i+1, now, energy)
		}
		for _, j := range order[i] {
			nodes++
			c := it.Choices[j]
			finish := now.Add(c.Latency)
			if finish.After(pr.latestFinish[i]) {
				continue
			}
			cur[i] = j
			if dfs(i+1, finish, energy+c.Energy) {
				return true
			}
		}
		return false
	}
	dfs(0, p.Start, 0)

	return materialize(p, best, pr.feasible, nodes)
}

// SolveGreedy returns the assignment of the deadline-aware greedy heuristic
// alone: for each item in order, the lowest-energy choice that keeps the
// current and all future (relaxed) deadlines reachable. Solve uses it as the
// incumbent seeding its branch-and-bound, so Solve's energy is never worse;
// it is exported for equivalence tests and benchmarks.
func SolveGreedy(p Problem) Assignment {
	if len(p.Items) == 0 {
		return Assignment{Feasible: true}
	}
	pr := prepare(p)
	choice, _ := greedy(p, pr)
	return materialize(p, choice, pr.feasible, 0)
}

// greedy assigns, for each item in order, the lowest-energy choice that
// keeps the current and all future (relaxed) deadlines reachable — the
// feasibility test is the O(1) latestFinish comparison. It always succeeds
// because the deadlines have been relaxed to the max-performance schedule.
// Choices are scanned in input order with strict-improvement updates,
// matching the reference greedy's tie-breaking exactly.
func greedy(p Problem, pr *prep) ([]int, float64) {
	n := len(p.Items)
	choice := make([]int, n)
	total := 0.0
	now := p.Start
	for i, it := range p.Items {
		if len(it.Choices) == 0 {
			continue
		}
		bestJ := -1
		bestEnergy := math.MaxFloat64
		bestLat := simtime.Duration(0)
		for j, c := range it.Choices {
			if now.Add(c.Latency).After(pr.latestFinish[i]) {
				continue
			}
			if c.Energy < bestEnergy {
				bestEnergy, bestJ, bestLat = c.Energy, j, c.Latency
			}
		}
		if bestJ == -1 {
			// Should not happen after relaxation, but fall back to the
			// fastest choice defensively.
			for j, c := range it.Choices {
				if bestJ == -1 || c.Latency < it.Choices[bestJ].Latency {
					bestJ = j
					bestLat = c.Latency
					bestEnergy = c.Energy
				}
			}
		}
		choice[i] = bestJ
		total += bestEnergy
		now = now.Add(bestLat)
	}
	return choice, total
}
