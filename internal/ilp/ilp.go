// Package ilp provides the integer-linear-programming solver behind the PES
// optimizer (Eqn. 2–5 of the paper).
//
// The scheduling problem has a chain structure: events execute back to back
// on the main thread, each event must be assigned exactly one ACMP
// configuration (Eqn. 2), the cumulative finish time of every prefix must
// meet that event's deadline (Eqn. 4), and the objective is the total energy
// (Eqn. 5). Like the paper, which implements its own solver rather than
// using a third-party LP package, this solver is specialized to that
// structure: an exact branch-and-bound over per-event configuration choices
// with energy lower bounds and deadline feasibility pruning, and a greedy
// fallback when the search budget is exhausted.
package ilp

import (
	"math"
	"sort"

	"repro/internal/simtime"
)

// Choice is one candidate configuration for an item: its predicted latency
// and energy under that configuration.
type Choice struct {
	Latency simtime.Duration
	Energy  float64
}

// Item is one event to schedule: its absolute deadline and its per-config
// choices. Choices must be non-empty.
type Item struct {
	Deadline simtime.Time
	Choices  []Choice
}

// Problem is a chain-scheduling instance: items execute in order starting no
// earlier than Start.
type Problem struct {
	Start simtime.Time
	Items []Item
}

// Assignment is the solver output.
type Assignment struct {
	// Choice holds the selected choice index for each item.
	Choice []int
	// TotalEnergy is the summed energy of the selected choices.
	TotalEnergy float64
	// Feasible reports whether every original deadline is met. When the
	// instance is infeasible (e.g. a Type I event), the solver returns the
	// assignment that meets the relaxed deadlines (earliest achievable
	// finish times) with minimal energy, and Feasible is false.
	Feasible bool
	// Finish holds the cumulative finish time of each item under the
	// returned assignment.
	Finish []simtime.Time
	// Nodes is the number of branch-and-bound nodes explored (for overhead
	// reporting).
	Nodes int
}

// maxNodes bounds the branch-and-bound search; beyond it the greedy solution
// stands. With ≤ ~16 items and 17 configurations the bound is generous.
const maxNodes = 400000

// Solve computes a minimum-energy assignment subject to the chain deadline
// constraints. It always returns a complete assignment: when the original
// deadlines cannot all be met even at maximum performance, the deadlines are
// relaxed to the earliest achievable finish times (the infeasible events run
// as fast as possible) and Feasible is false.
func Solve(p Problem) Assignment {
	n := len(p.Items)
	if n == 0 {
		return Assignment{Feasible: true}
	}

	// Minimum latency and energy per item, used for feasibility relaxation
	// and lower bounds.
	minLat := make([]simtime.Duration, n)
	minEnergy := make([]float64, n)
	for i, it := range p.Items {
		if len(it.Choices) == 0 {
			// A degenerate item with no choices: treat as zero-cost no-op.
			minLat[i] = 0
			minEnergy[i] = 0
			continue
		}
		minLat[i] = it.Choices[0].Latency
		minEnergy[i] = it.Choices[0].Energy
		for _, c := range it.Choices[1:] {
			if c.Latency < minLat[i] {
				minLat[i] = c.Latency
			}
			if c.Energy < minEnergy[i] {
				minEnergy[i] = c.Energy
			}
		}
	}

	// Relax deadlines to the earliest achievable finish time so the search
	// space is never empty; remember whether relaxation was needed.
	deadlines := make([]simtime.Time, n)
	feasible := true
	earliest := p.Start
	for i := range p.Items {
		earliest = earliest.Add(minLat[i])
		deadlines[i] = p.Items[i].Deadline
		if earliest.After(deadlines[i]) {
			deadlines[i] = earliest
			feasible = false
		}
	}

	// Suffix sums of minimum latency and energy for pruning.
	sufLat := make([]simtime.Duration, n+1)
	sufEnergy := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		sufLat[i] = sufLat[i+1] + minLat[i]
		sufEnergy[i] = sufEnergy[i+1] + minEnergy[i]
	}

	// Candidate orderings per item: by energy ascending so the first feasible
	// leaf found is already good, improving pruning.
	order := make([][]int, n)
	for i, it := range p.Items {
		idx := make([]int, len(it.Choices))
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool {
			return it.Choices[idx[a]].Energy < it.Choices[idx[b]].Energy
		})
		order[i] = idx
	}

	greedyChoice, greedyEnergy := greedy(p, deadlines, sufLat)

	best := append([]int(nil), greedyChoice...)
	bestEnergy := greedyEnergy

	cur := make([]int, n)
	nodes := 0
	var dfs func(i int, now simtime.Time, energy float64) bool
	dfs = func(i int, now simtime.Time, energy float64) bool {
		if nodes >= maxNodes {
			return true // abort the search, keep the best found so far
		}
		if i == n {
			if energy < bestEnergy {
				bestEnergy = energy
				copy(best, cur)
			}
			return false
		}
		if energy+sufEnergy[i] >= bestEnergy {
			return false
		}
		it := p.Items[i]
		if len(it.Choices) == 0 {
			cur[i] = 0
			return dfs(i+1, now, energy)
		}
		for _, j := range order[i] {
			nodes++
			c := it.Choices[j]
			finish := now.Add(c.Latency)
			if finish.After(deadlines[i]) {
				continue
			}
			// Future feasibility: every later deadline must remain reachable
			// at minimum latencies.
			ok := true
			t := finish
			for k := i + 1; k < n; k++ {
				t = t.Add(minLat[k])
				if t.After(deadlines[k]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cur[i] = j
			if dfs(i+1, finish, energy+c.Energy) {
				return true
			}
		}
		return false
	}
	dfs(0, p.Start, 0)

	// Materialize finish times for the winning assignment.
	finish := make([]simtime.Time, n)
	now := p.Start
	total := 0.0
	for i := range p.Items {
		if len(p.Items[i].Choices) > 0 {
			c := p.Items[i].Choices[best[i]]
			now = now.Add(c.Latency)
			total += c.Energy
		}
		finish[i] = now
	}
	return Assignment{
		Choice:      best,
		TotalEnergy: total,
		Feasible:    feasible,
		Finish:      finish,
		Nodes:       nodes,
	}
}

// greedy assigns, for each item in order, the lowest-energy choice that
// keeps the current and all future (relaxed) deadlines reachable. It always
// succeeds because the deadlines have been relaxed to the max-performance
// schedule.
func greedy(p Problem, deadlines []simtime.Time, sufLat []simtime.Duration) ([]int, float64) {
	n := len(p.Items)
	choice := make([]int, n)
	total := 0.0
	now := p.Start
	for i, it := range p.Items {
		if len(it.Choices) == 0 {
			continue
		}
		bestJ := -1
		bestEnergy := math.MaxFloat64
		bestLat := simtime.Duration(0)
		for j, c := range it.Choices {
			finish := now.Add(c.Latency)
			if finish.After(deadlines[i]) {
				continue
			}
			// Future reachability under minimum latencies.
			ok := true
			t := finish
			for k := i + 1; k < n; k++ {
				t = t.Add(sufLat[k] - sufLat[k+1])
				if t.After(deadlines[k]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if c.Energy < bestEnergy {
				bestEnergy, bestJ, bestLat = c.Energy, j, c.Latency
			}
		}
		if bestJ == -1 {
			// Should not happen after relaxation, but fall back to the
			// fastest choice defensively.
			for j, c := range it.Choices {
				if bestJ == -1 || c.Latency < it.Choices[bestJ].Latency {
					bestJ = j
					bestLat = c.Latency
					bestEnergy = c.Energy
				}
			}
		}
		choice[i] = bestJ
		total += bestEnergy
		now = now.Add(bestLat)
	}
	return choice, total
}
