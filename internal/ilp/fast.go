package ilp

import (
	"math"

	"repro/internal/simtime"
)

// Solver is the reusable fast-path encoding of the chain-scheduling search
// behind Oracle v2: the same dominance-pruned branch-and-bound as Solve —
// energy-ordered Pareto frontiers, memoized suffix latencies, frontier
// bisection, the same node budget — run as an iterative depth-first search
// over flattened per-item choice tables held in scratch buffers recycled
// across calls, with a staged escalation for hard windows:
//
//   - Attempt 0 runs the pruned search as-is under a small node cap. Easy
//     instances (the overwhelming majority) finish here at pure search cost,
//     and the result is bit-identical to Solve's, node count included.
//   - If the cap is hit, the search restarts under an admissible
//     arrival-time-grid lower bound: a backward DP tabulates, per item, a
//     lower bound on the minimum suffix energy as a step function of the
//     arrival time (cells are power-of-two tick widths, so indexing is one
//     shift). The bound is evaluated at each cell's left edge and the true
//     suffix cost is nondecreasing in arrival time, so pruning with it can
//     never cut off an improving leaf. The same table seeds a near-optimal
//     incumbent (walking the argmin of energy-plus-bound), which together
//     with the bound collapses the budget-exhausting windows of the frozen
//     reference traversal to a few thousand nodes.
//   - A second escalation rebuilds the table at 4x resolution; only then
//     does a still-incomplete search exhaust the shared node budget and
//     report an abort.
//
// All attempts explore candidates in Solve's order and only ever prune
// subtrees whose admissible bound proves they cannot beat the incumbent, so
// whenever the search completes the returned energy is the exact optimum of
// the (relaxed) instance — equal to Solve's wherever Solve itself completes.
// The choice vector can differ from Solve's only when distinct optimal
// assignments tie at the exact minimum energy (then the escalated attempts
// may return the table-guided representative).
//
// After the buffers have grown to the largest instance seen, a solve
// performs no allocation at all, which is what lets the Oracle policy solve
// one 12-event window per plan at the same per-event cost discipline as the
// PES hot path.
//
// A Solver is not safe for concurrent use: it belongs to one scheduler
// instance, exactly like the optimizer's reusable problem buffers.
type Solver struct {
	// Prep scratch, mirroring prepare's per-item arrays.
	minLat       []simtime.Duration
	minEnergy    []float64
	deadlines    []simtime.Time
	latestFinish []simtime.Time
	sufEnergy    []float64
	// earliestArr[i] is the earliest possible arrival time at item i (start
	// plus the prefix of minimum latencies): the left edge of item i's
	// arrival-time grid.
	earliestArr []simtime.Time

	// Flattened frontier tables: item i's kept candidates occupy
	// frontOff[i]:frontOff[i+1] of the flat arrays, sorted by ascending
	// energy (and therefore strictly descending latency).
	frontLat    []simtime.Duration
	frontEnergy []float64
	frontChoice []int
	frontOff    []int

	// order is the per-item energy-sort scratch (one item at a time).
	order []int

	// Arrival-time-grid bound tables (built only on escalation): item i's
	// cells occupy lbOff[i]:lbOff[i+1] of lbFlat; cell k of item i covers
	// arrival times [earliestArr[i] + k<<lbShift[i], ...+(k+1)<<lbShift[i]).
	lbFlat  []float64
	lbOff   []int
	lbShift []uint

	// Iterative-search state: per-depth resume position in the flat frontier,
	// arrival time and accumulated energy on entry, plus the current and best
	// assignments and the materialized finish times.
	pos    []int
	nowAt  []simtime.Time
	enAt   []float64
	cur    []int
	best   []int
	finish []simtime.Time
}

// NewSolver returns an empty Solver; buffers grow on first use.
func NewSolver() *Solver { return &Solver{} }

// Escalation schedule: attempt 0 is the pure pruned search; attempts 1 and 2
// add the grid bound at increasing resolution. Node caps are cumulative
// shares of the shared maxNodes budget (50k + 100k + 250k = maxNodes), so an
// instance that defeats every attempt reports the same abort condition as
// the recursive solvers: Nodes >= maxNodes.
var (
	attemptCells = [3]int{0, 4096, 16384}
	attemptCap   = [3]int{10000, 50000, maxNodes}
)

// grow sizes every per-item buffer for an n-item problem.
func (s *Solver) grow(n int) {
	if cap(s.minLat) < n {
		c := 2 * n
		s.minLat = make([]simtime.Duration, c)
		s.minEnergy = make([]float64, c)
		s.deadlines = make([]simtime.Time, c)
		s.latestFinish = make([]simtime.Time, c)
		s.sufEnergy = make([]float64, c+1)
		s.earliestArr = make([]simtime.Time, c+1)
		s.frontOff = make([]int, c+1)
		s.lbOff = make([]int, c+2)
		s.lbShift = make([]uint, c+1)
		s.pos = make([]int, c)
		s.nowAt = make([]simtime.Time, c+1)
		s.enAt = make([]float64, c+1)
		s.cur = make([]int, c)
		s.best = make([]int, c)
		s.finish = make([]simtime.Time, c)
	}
	s.minLat = s.minLat[:n]
	s.minEnergy = s.minEnergy[:n]
	s.deadlines = s.deadlines[:n]
	s.latestFinish = s.latestFinish[:n]
	s.sufEnergy = s.sufEnergy[:n+1]
	s.earliestArr = s.earliestArr[:n+1]
	s.frontOff = s.frontOff[:n+1]
	s.lbOff = s.lbOff[:n+2]
	s.lbShift = s.lbShift[:n+1]
	s.pos = s.pos[:n]
	s.nowAt = s.nowAt[:n+1]
	s.enAt = s.enAt[:n+1]
	s.cur = s.cur[:n]
	s.best = s.best[:n]
	s.finish = s.finish[:n]
}

// prepare fills the prep arrays (the logic of prepare, on scratch) and
// returns whether the original deadlines are all reachable.
func (s *Solver) prepare(p Problem) bool {
	n := len(p.Items)
	s.earliestArr[0] = p.Start
	for i, it := range p.Items {
		if len(it.Choices) == 0 {
			s.minLat[i], s.minEnergy[i] = 0, 0
			s.earliestArr[i+1] = s.earliestArr[i]
			continue
		}
		s.minLat[i] = it.Choices[0].Latency
		s.minEnergy[i] = it.Choices[0].Energy
		for _, c := range it.Choices[1:] {
			if c.Latency < s.minLat[i] {
				s.minLat[i] = c.Latency
			}
			if c.Energy < s.minEnergy[i] {
				s.minEnergy[i] = c.Energy
			}
		}
		s.earliestArr[i+1] = s.earliestArr[i].Add(s.minLat[i])
	}
	feasible := true
	earliest := p.Start
	for i := range p.Items {
		earliest = earliest.Add(s.minLat[i])
		s.deadlines[i] = p.Items[i].Deadline
		if earliest.After(s.deadlines[i]) {
			s.deadlines[i] = earliest
			feasible = false
		}
	}
	s.latestFinish[n-1] = s.deadlines[n-1]
	for i := n - 2; i >= 0; i-- {
		s.latestFinish[i] = s.latestFinish[i+1].Add(-s.minLat[i+1])
		if s.deadlines[i].Before(s.latestFinish[i]) {
			s.latestFinish[i] = s.deadlines[i]
		}
	}
	s.sufEnergy[n] = 0
	for i := n - 1; i >= 0; i-- {
		s.sufEnergy[i] = s.sufEnergy[i+1] + s.minEnergy[i]
	}
	return feasible
}

// flatten builds the flattened Pareto-frontier tables: each item's choices
// are index-sorted by ascending energy (stable insertion sort — zero-alloc,
// and the item sets are at most a platform ladder long), then reduced to the
// strictly-faster-than-anything-cheaper frontier exactly as frontiers does.
func (s *Solver) flatten(p Problem) {
	s.frontLat = s.frontLat[:0]
	s.frontEnergy = s.frontEnergy[:0]
	s.frontChoice = s.frontChoice[:0]
	for i, it := range p.Items {
		s.frontOff[i] = len(s.frontLat)
		m := len(it.Choices)
		if m == 0 {
			continue
		}
		if cap(s.order) < m {
			s.order = make([]int, 2*m)
		}
		order := s.order[:m]
		for j := range order {
			order[j] = j
		}
		for j := 1; j < m; j++ {
			k, e := j, it.Choices[order[j]].Energy
			for k > 0 && it.Choices[order[k-1]].Energy > e {
				order[k], order[k-1] = order[k-1], order[k]
				k--
			}
		}
		var minLat simtime.Duration
		kept := 0
		for _, j := range order {
			c := it.Choices[j]
			if kept == 0 || c.Latency < minLat {
				s.frontLat = append(s.frontLat, c.Latency)
				s.frontEnergy = append(s.frontEnergy, c.Energy)
				s.frontChoice = append(s.frontChoice, j)
				minLat = c.Latency
				kept++
			}
		}
	}
	s.frontOff[len(p.Items)] = len(s.frontLat)
}

// firstFeasible returns the first flat-table slot in [lo, hi) whose latency
// fits the budget; the latencies are strictly descending, so the infeasible
// candidates form a prefix and a binary search skips them (the manual loop
// keeps the hot path closure-free).
func (s *Solver) firstFeasible(lo, hi int, budget simtime.Duration) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.frontLat[mid] <= budget {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// greedyInto runs the deadline-aware greedy of greedy() writing the choices
// into s.best, and returns the incumbent energy.
func (s *Solver) greedyInto(p Problem) float64 {
	total := 0.0
	now := p.Start
	for i, it := range p.Items {
		if len(it.Choices) == 0 {
			s.best[i] = 0
			continue
		}
		bestJ := -1
		bestEnergy := math.MaxFloat64
		bestLat := simtime.Duration(0)
		for j, c := range it.Choices {
			if now.Add(c.Latency).After(s.latestFinish[i]) {
				continue
			}
			if c.Energy < bestEnergy {
				bestEnergy, bestJ, bestLat = c.Energy, j, c.Latency
			}
		}
		if bestJ == -1 {
			for j, c := range it.Choices {
				if bestJ == -1 || c.Latency < it.Choices[bestJ].Latency {
					bestJ = j
					bestLat = c.Latency
					bestEnergy = c.Energy
				}
			}
		}
		s.best[i] = bestJ
		total += bestEnergy
		now = now.Add(bestLat)
	}
	return total
}

// lbAt returns the grid bound for arriving at item i at time t: the value
// tabulated at the left edge of t's cell, which under-approximates the true
// (nondecreasing) minimum suffix energy. math.MaxFloat64 marks arrival
// times with no feasible completion. Cells are filled lazily on first query
// — the search trajectory touches a small fraction of the table, so eager
// tabulation would dominate the cost of an escalated solve.
func (s *Solver) lbAt(i int, t simtime.Time) float64 {
	k := int(t.Sub(s.earliestArr[i])) >> s.lbShift[i]
	if hi := s.lbOff[i+1] - s.lbOff[i] - 1; k > hi {
		k = hi
	}
	if k < 0 {
		k = 0
	}
	return s.lbCell(i, k)
}

// lbCell fills (if needed) and returns one bound cell: the minimum over item
// i's feasible frontier choices of the choice energy plus the next level's
// bound at the resulting finish time — a backward DP over cell left edges,
// using exactly the quantities the search itself prunes with. Uncomputed
// cells hold NaN; recursion depth is bounded by the item count and every
// cell is computed at most once per buildBound.
func (s *Solver) lbCell(i, k int) float64 {
	v := s.lbFlat[s.lbOff[i]+k]
	if v == v { // not NaN: already filled
		return v
	}
	n := len(s.lbOff) - 2
	t := s.earliestArr[i].Add(simtime.Duration(int64(k) << s.lbShift[i]))
	fLo, fHi := s.frontOff[i], s.frontOff[i+1]
	if fLo == fHi {
		// Degenerate zero-cost item: pass the next level's bound through.
		v = 0
		if i+1 < n {
			v = s.lbAt(i+1, t)
		}
		s.lbFlat[s.lbOff[i]+k] = v
		return v
	}
	best := math.MaxFloat64
	for f := fLo; f < fHi; f++ {
		ft := t.Add(s.frontLat[f])
		if ft.After(s.latestFinish[i]) {
			continue
		}
		v := s.frontEnergy[f]
		if i+1 < n {
			v += s.lbAt(i+1, ft)
		}
		if v < best {
			best = v
		}
		if s.frontEnergy[f] >= best {
			// Frontier energies ascend and the suffix term is nonnegative,
			// so no later candidate can improve the cell.
			break
		}
	}
	s.lbFlat[s.lbOff[i]+k] = best
	return best
}

// buildBound lays out the admissible arrival-time-grid lower bound with at
// most maxCells cells per item and resets every cell to unfilled; lbCell
// computes values on demand.
func (s *Solver) buildBound(p Problem, maxCells int) {
	n := len(p.Items)
	// Size each item's grid: power-of-two cell widths so that indexing is a
	// shift, spanning [earliestArr[i], latestFinish[i-1]] (the latest
	// feasible arrival is bounded by the previous item's latest finish; for
	// item 0 the arrival is exactly Start).
	total := 0
	for i := 0; i <= n; i++ {
		s.lbOff[i] = total
		if i == n {
			break
		}
		span := int64(0)
		if i > 0 {
			span = int64(s.latestFinish[i-1].Sub(s.earliestArr[i]))
		}
		if span < 0 {
			span = 0
		}
		shift := uint(0)
		for span>>shift >= int64(maxCells) {
			shift++
		}
		s.lbShift[i] = shift
		total += int(span>>shift) + 1
	}
	s.lbOff[n] = total
	if cap(s.lbFlat) < total {
		s.lbFlat = make([]float64, 2*total)
	}
	unfilled := math.NaN()
	for k := range s.lbFlat[:total] {
		s.lbFlat[k] = unfilled
	}
}

// guidedInto walks the bound table greedily — at each item the feasible
// frontier choice minimizing its energy plus the next level's bound — and,
// when the walk completes with a better total than the incumbent, installs
// it into s.best. Returns the possibly improved incumbent energy.
func (s *Solver) guidedInto(p Problem, bestEnergy float64) float64 {
	n := len(p.Items)
	now := p.Start
	total := 0.0
	for i := range p.Items {
		fLo, fHi := s.frontOff[i], s.frontOff[i+1]
		if fLo == fHi {
			s.cur[i] = 0
			continue
		}
		bestF := -1
		bestV := math.MaxFloat64
		for f := fLo; f < fHi; f++ {
			ft := now.Add(s.frontLat[f])
			if ft.After(s.latestFinish[i]) {
				continue
			}
			v := s.frontEnergy[f]
			if i+1 < n {
				v += s.lbAt(i+1, ft)
			}
			if v < bestV {
				bestV, bestF = v, f
			}
		}
		if bestF == -1 {
			return bestEnergy // dead end (cannot happen after relaxation)
		}
		s.cur[i] = s.frontChoice[bestF]
		total += s.frontEnergy[bestF]
		now = now.Add(s.frontLat[bestF])
	}
	if total < bestEnergy {
		copy(s.best, s.cur)
		return total
	}
	return bestEnergy
}

// Solve computes a minimum-energy assignment over the same relaxed deadline
// semantics as the package-level Solve. Whenever the search completes
// (Aborted() false — in practice every optimizer-shaped instance) the
// returned energy is the exact optimum; see the type comment for when the
// representative choice vector can differ from Solve's. The returned
// Assignment's Choice and Finish slices alias the Solver's scratch and are
// valid only until the next Solve call — callers that retain them must copy.
func (s *Solver) Solve(p Problem) Assignment {
	n := len(p.Items)
	if n == 0 {
		return Assignment{Feasible: true}
	}
	s.grow(n)
	feasible := s.prepare(p)
	s.flatten(p)
	bestEnergy := s.greedyInto(p)

	nodes := 0
	for attempt := 0; attempt < len(attemptCap); attempt++ {
		bound := attemptCells[attempt] > 0
		if bound {
			s.buildBound(p, attemptCells[attempt])
			bestEnergy = s.guidedInto(p, bestEnergy)
		}
		var complete bool
		complete, bestEnergy, nodes = s.search(p, bestEnergy, nodes, attemptCap[attempt], bound)
		if complete {
			break
		}
	}

	// Materialize onto scratch (the logic of materialize, allocation-free).
	now := p.Start
	total := 0.0
	for i := range p.Items {
		if len(p.Items[i].Choices) > 0 {
			c := p.Items[i].Choices[s.best[i]]
			now = now.Add(c.Latency)
			total += c.Energy
		}
		s.finish[i] = now
	}
	return Assignment{
		Choice:      s.best,
		TotalEnergy: total,
		Feasible:    feasible,
		Finish:      s.finish,
		Nodes:       nodes,
	}
}

// search runs one iterative depth-first attempt: Solve's traversal order and
// node accounting, optionally strengthened by the grid bound, stopping once
// nodes reaches cap. It returns whether the search ran to completion, the
// final incumbent energy, and the accumulated node count. Improvements found
// by an interrupted attempt are kept in s.best/bestEnergy.
func (s *Solver) search(p Problem, bestEnergy float64, nodes, cap int, bound bool) (bool, float64, int) {
	n := len(p.Items)
	i := 0
	s.nowAt[0] = p.Start
	s.enAt[0] = 0
	complete := true

enter:
	// Entering the search position at depth i with arrival state
	// (s.nowAt[i], s.enAt[i]) — the body of the recursive dfs.
	if nodes >= cap {
		complete = false
		goto done // interrupt the attempt, keep the best found so far
	}
	if i == n {
		if s.enAt[n] < bestEnergy {
			bestEnergy = s.enAt[n]
			copy(s.best, s.cur)
		}
		goto backtrack
	}
	if s.enAt[i]+s.sufEnergy[i] >= bestEnergy {
		goto backtrack
	}
	if s.frontOff[i] == s.frontOff[i+1] {
		// A degenerate item with no choices: zero-cost pass-through, marked
		// so backtracking skips it.
		s.cur[i] = 0
		s.pos[i] = -1
		s.nowAt[i+1] = s.nowAt[i]
		s.enAt[i+1] = s.enAt[i]
		i++
		goto enter
	}
	s.pos[i] = s.firstFeasible(s.frontOff[i], s.frontOff[i+1], s.latestFinish[i].Sub(s.nowAt[i]))

scan:
	// Scanning item i's frontier from s.pos[i]: the candidate loop of the
	// recursive dfs, resumed here after every child returns.
	for s.pos[i] < s.frontOff[i+1] {
		k := s.pos[i]
		en := s.frontEnergy[k]
		// The frontier ascends in energy, so once this candidate's energy
		// lower bound reaches the incumbent no later candidate can beat it
		// either: stop scanning (exactly Solve's cutoff).
		if s.enAt[i]+en+s.sufEnergy[i+1] >= bestEnergy {
			break
		}
		ft := s.nowAt[i].Add(s.frontLat[k])
		if bound && i+1 < n && s.enAt[i]+en+s.lbAt(i+1, ft) >= bestEnergy {
			// The grid bound proves this subtree cannot improve the
			// incumbent. Not monotone along the frontier (later candidates
			// arrive earlier), so skip rather than break.
			s.pos[i] = k + 1
			continue
		}
		nodes++
		s.cur[i] = s.frontChoice[k]
		s.pos[i] = k + 1
		s.nowAt[i+1] = ft
		s.enAt[i+1] = s.enAt[i] + en
		i++
		goto enter
	}

backtrack:
	i--
	if i < 0 {
		goto done
	}
	if s.pos[i] == -1 {
		goto backtrack // pass-through item: keep unwinding
	}
	goto scan

done:
	return complete, bestEnergy, nodes
}
