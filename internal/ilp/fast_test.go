package ilp

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/simtime"
)

// chainPoint mirrors chaingen.Point (chaingen imports this package, so the
// in-package tests re-state the 17-point ladder instead of importing it).
type chainPoint struct {
	effMHz  float64
	powerMW float64
}

func chainPoints() []chainPoint {
	var pts []chainPoint
	for f := 350.0; f <= 600; f += 50 {
		pts = append(pts, chainPoint{effMHz: f / 1.9, powerMW: 85 + 0.52*(f-350)})
	}
	for f := 800.0; f <= 1800; f += 100 {
		pts = append(pts, chainPoint{effMHz: f, powerMW: 180 + f*f*0.00102})
	}
	return pts
}

// chainProblem mirrors chaingen.Problem: the optimizer-shaped distribution
// shared with cmd/pes-bench, including the hard 12-item Oracle windows.
func chainProblem(rng *rand.Rand, pts []chainPoint, items int) Problem {
	p := Problem{Start: simtime.Time(rng.Intn(1000))}
	now := p.Start
	for i := 0; i < items; i++ {
		var tmemMS, mcycles, qosMS float64
		switch rng.Intn(6) {
		case 0:
			tmemMS, mcycles, qosMS = 3, 18, 33 // move
		case 1:
			tmemMS, mcycles, qosMS = 380, 4400, 3000 // load
		default:
			tmemMS, mcycles, qosMS = 26, 520, 300 // tap
		}
		scale := 0.5 + rng.Float64()
		var cs []Choice
		for _, pt := range pts {
			lat := simtime.Duration(scale * (tmemMS*1000 + mcycles*1e6/pt.effMHz))
			cs = append(cs, Choice{Latency: lat, Energy: pt.powerMW * lat.Seconds()})
		}
		trigger := now
		now = now.Add(simtime.Duration(qosMS * (0.4 + 1.2*rng.Float64()) * 1000))
		p.Items = append(p.Items, Item{
			Deadline: trigger.Add(simtime.Duration(qosMS * 1000)),
			Choices:  cs,
		})
	}
	return p
}

// hasEnergyTies reports whether any item carries two choices with exactly
// equal energy — the one case where Solve's sort.Slice ordering and the fast
// solver's stable insertion sort may legitimately order candidates
// differently.
func hasEnergyTies(p Problem) bool {
	for _, it := range p.Items {
		for a := range it.Choices {
			for b := a + 1; b < len(it.Choices); b++ {
				if it.Choices[a].Energy == it.Choices[b].Energy {
					return true
				}
			}
		}
	}
	return false
}

// cloneAssignment copies an Assignment out of the fast solver's scratch so it
// survives the next Solve call.
func cloneAssignment(a Assignment) Assignment {
	a.Choice = append([]int(nil), a.Choice...)
	a.Finish = append([]simtime.Time(nil), a.Finish...)
	return a
}

// fastAttempt0Cap is the node cap of the fast solver's pure-search attempt:
// below it the traversal coincides with Solve's step for step.
const fastAttempt0Cap = 10000

// TestFastSolverMatchesSolve is the core equivalence property of the v2
// fast-path encoding. Where Solve completes within the fast solver's pure
// first attempt (and the instance has no equal-energy choices, so candidate
// ordering is determined), the result must be bit-identical — choices,
// feasibility, finish times, and the node count. On harder instances both
// solvers must agree on the optimum energy whenever both complete.
func TestFastSolverMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := NewSolver()
	bitIdentical := 0
	for trial := 0; trial < 400; trial++ {
		p := problems(rng, trial, 12, 17)
		got := cloneAssignment(s.Solve(p))
		want := Solve(p)
		if hasEnergyTies(p) || want.Nodes >= fastAttempt0Cap {
			if got.Aborted() || want.Aborted() {
				continue
			}
			if diff := got.TotalEnergy - want.TotalEnergy; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d: optimal energies diverge: fast=%v solve=%v", trial, got.TotalEnergy, want.TotalEnergy)
			}
			continue
		}
		bitIdentical++
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: fast solver diverged\n got %+v\nwant %+v\nproblem: %+v", trial, got, want, p)
		}
	}
	if bitIdentical < 100 {
		t.Fatalf("only %d bit-identity trials; the property went under-exercised", bitIdentical)
	}
}

// TestFastSolverMatchesSolveOnChaingen pins the solver on the
// optimizer-shaped distribution shared with cmd/pes-bench — including the
// 12-item windows that are the Oracle v2 production case. The fast solver
// must never exhaust its node budget on this distribution (that is the
// bench's budget_aborts == 0 gate in miniature), and must agree with Solve
// bit for bit on the easy instances and on the optimum energy everywhere
// Solve itself completes.
func TestFastSolverMatchesSolveOnChaingen(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := chainPoints()
	s := NewSolver()
	escalated := 0
	for trial := 0; trial < 200; trial++ {
		p := chainProblem(rng, pts, 1+rng.Intn(12))
		got := cloneAssignment(s.Solve(p))
		want := Solve(p)
		if got.Aborted() {
			t.Fatalf("trial %d: fast solver exhausted its node budget on a production-shaped window", trial)
		}
		if want.Nodes < fastAttempt0Cap {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: fast solver diverged on chaingen instance\n got %+v\nwant %+v", trial, got, want)
			}
			continue
		}
		escalated++
		if want.Aborted() {
			if got.TotalEnergy > want.TotalEnergy+1e-9 {
				t.Fatalf("trial %d: fast optimum %v worse than truncated Solve incumbent %v", trial, got.TotalEnergy, want.TotalEnergy)
			}
			continue
		}
		if diff := got.TotalEnergy - want.TotalEnergy; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: optimal energies diverge: fast=%v solve=%v", trial, got.TotalEnergy, want.TotalEnergy)
		}
	}
	if escalated == 0 {
		t.Log("no trial escalated past the pure attempt; the grid-bound path went unexercised")
	}
}

// TestFastSolverOptimalOnSmallInstances cross-checks the fast solver against
// exhaustive enumeration for N <= 6 windows: it must attain the true minimum
// energy over the relaxed deadlines exactly (the satellite exact-enumeration
// agreement requirement).
func TestFastSolverOptimalOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	s := NewSolver()
	for trial := 0; trial < 300; trial++ {
		p := problems(rng, trial, 6, 8)
		got := s.Solve(p)
		want := exhaustiveMin(p)
		if want < 0 {
			t.Fatalf("trial %d: relaxation left no feasible assignment", trial)
		}
		if diff := got.TotalEnergy - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: fast solver energy %v, exhaustive optimum %v", trial, got.TotalEnergy, want)
		}
	}
}

// TestFastSolverDominatesReferenceOrder is the v2-vs-v1 energy property: the
// budget-truncated reference-order traversal (Oracle v1) can return a
// traversal artifact, so the fast solver's energy must never exceed it on
// any instance — and when v1 did not abort, both are proven optima, so the
// energies must agree exactly. On the production-shaped 12-item windows the
// fast solver must additionally always complete.
func TestFastSolverDominatesReferenceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pts := chainPoints()
	s := NewSolver()
	v1Aborted := 0
	for trial := 0; trial < 300; trial++ {
		var p Problem
		chain := trial%2 == 0
		if chain {
			p = chainProblem(rng, pts, 1+rng.Intn(12))
		} else {
			p = problems(rng, trial, 14, 17)
		}
		v2 := cloneAssignment(s.Solve(p))
		v1 := SolveReferenceOrder(p)
		if v2.Aborted() {
			if chain {
				t.Fatalf("trial %d: fast solver exhausted its budget on a production-shaped window", trial)
			}
			continue // a truncated v2 incumbent carries no dominance guarantee
		}
		if v2.TotalEnergy > v1.TotalEnergy+1e-9 {
			t.Fatalf("trial %d: v2 energy %v exceeds v1 energy %v", trial, v2.TotalEnergy, v1.TotalEnergy)
		}
		if v1.Aborted() {
			v1Aborted++
		} else if diff := v2.TotalEnergy - v1.TotalEnergy; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: both proven optimal yet energies diverge: v2=%v v1=%v", trial, v2.TotalEnergy, v1.TotalEnergy)
		}
	}
	if v1Aborted == 0 {
		t.Log("no trial exhausted v1's node budget; the dominance property went unexercised on aborts")
	}
}

// TestFastSolverZeroAlloc gates the tentpole's zero-alloc property: once the
// scratch buffers have grown to the instance size — grid-bound tables
// included — a solve allocates nothing.
func TestFastSolverZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	pts := chainPoints()
	probs := make([]Problem, 16)
	for i := range probs {
		probs[i] = chainProblem(rng, pts, 12)
	}
	s := NewSolver()
	escalated := false
	for _, p := range probs {
		if a := s.Solve(p); a.Nodes >= fastAttempt0Cap {
			escalated = true
		}
	}
	if !escalated {
		t.Log("warmup never escalated to the grid-bound path; its buffers went unexercised")
	}
	i := 0
	allocs := testing.AllocsPerRun(len(probs)*4, func() {
		s.Solve(probs[i%len(probs)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("fast solver allocates %.1f objects per solve, want 0", allocs)
	}
}

// TestFastSolverReusedAcrossSizes exercises the buffer-growth path: the same
// Solver instance must stay correct when instance sizes shrink and grow.
func TestFastSolverReusedAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pts := chainPoints()
	s := NewSolver()
	for _, n := range []int{12, 1, 7, 2, 14, 3, 12} {
		p := chainProblem(rng, pts, n)
		got := cloneAssignment(s.Solve(p))
		want := Solve(p)
		if want.Nodes < fastAttempt0Cap {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d: fast solver diverged after size change\n got %+v\nwant %+v", n, got, want)
			}
		} else if !got.Aborted() && !want.Aborted() {
			if diff := got.TotalEnergy - want.TotalEnergy; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("n=%d: optimal energies diverge after size change: %v vs %v", n, got.TotalEnergy, want.TotalEnergy)
			}
		}
	}
}

// TestFastSolverEmptyAndDegenerate covers the trivial shapes.
func TestFastSolverEmptyAndDegenerate(t *testing.T) {
	s := NewSolver()
	if a := s.Solve(Problem{}); !a.Feasible || a.TotalEnergy != 0 || len(a.Choice) != 0 {
		t.Errorf("empty problem: %+v", a)
	}
	p := Problem{Items: []Item{{Deadline: simtime.Time(simtime.Second)}}}
	if a := s.Solve(p); len(a.Choice) != 1 || a.TotalEnergy != 0 {
		t.Errorf("no-choice item mishandled: %+v", a)
	}
	// A no-choice item sandwiched between real ones exercises the iterative
	// pass-through/backtrack marking (and the bound's pass-through rows via
	// an artificially hard sibling below).
	rng := rand.New(rand.NewSource(53))
	q := randomProblem(rng, 3, 4)
	q.Items[1].Choices = nil
	got := cloneAssignment(s.Solve(q))
	want := Solve(q)
	if hasEnergyTies(q) {
		if diff := got.TotalEnergy - want.TotalEnergy; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("sandwiched no-choice item: energies diverge: %+v vs %+v", got, want)
		}
	} else if !reflect.DeepEqual(got, want) {
		t.Fatalf("sandwiched no-choice item diverged:\n got %+v\nwant %+v", got, want)
	}
	// Degenerate item inside a hard window: force escalation so the bound's
	// pass-through rows are exercised too.
	pts := chainPoints()
	h := chainProblem(rng, pts, 12)
	h.Items[5].Choices = nil
	gotH := cloneAssignment(s.Solve(h))
	wantH := Solve(h)
	if !gotH.Aborted() && !wantH.Aborted() {
		if diff := gotH.TotalEnergy - wantH.TotalEnergy; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("degenerate item in hard window: energies diverge: %v vs %v", gotH.TotalEnergy, wantH.TotalEnergy)
		}
	}
}
