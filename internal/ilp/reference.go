package ilp

import (
	"math"
	"sort"

	"repro/internal/simtime"
)

// SolveReference is the pre-overhaul exact solver, kept verbatim as the
// behavioural baseline: a branch-and-bound over the full per-item choice
// sets whose future-feasibility test walks the remaining items at every
// node. It returns the same assignment as Solve (property-tested in
// equivalence_test.go) while exploring strictly more nodes on non-trivial
// instances; the solver microbenchmarks in cmd/pes-bench report the ratio.
// New code should call Solve.
func SolveReference(p Problem) Assignment {
	n := len(p.Items)
	if n == 0 {
		return Assignment{Feasible: true}
	}

	// Minimum latency and energy per item, used for feasibility relaxation
	// and lower bounds.
	minLat := make([]simtime.Duration, n)
	minEnergy := make([]float64, n)
	for i, it := range p.Items {
		if len(it.Choices) == 0 {
			// A degenerate item with no choices: treat as zero-cost no-op.
			minLat[i] = 0
			minEnergy[i] = 0
			continue
		}
		minLat[i] = it.Choices[0].Latency
		minEnergy[i] = it.Choices[0].Energy
		for _, c := range it.Choices[1:] {
			if c.Latency < minLat[i] {
				minLat[i] = c.Latency
			}
			if c.Energy < minEnergy[i] {
				minEnergy[i] = c.Energy
			}
		}
	}

	// Relax deadlines to the earliest achievable finish time so the search
	// space is never empty; remember whether relaxation was needed.
	deadlines := make([]simtime.Time, n)
	feasible := true
	earliest := p.Start
	for i := range p.Items {
		earliest = earliest.Add(minLat[i])
		deadlines[i] = p.Items[i].Deadline
		if earliest.After(deadlines[i]) {
			deadlines[i] = earliest
			feasible = false
		}
	}

	// Suffix sums of minimum latency and energy for pruning.
	sufLat := make([]simtime.Duration, n+1)
	sufEnergy := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		sufLat[i] = sufLat[i+1] + minLat[i]
		sufEnergy[i] = sufEnergy[i+1] + minEnergy[i]
	}

	// Candidate orderings per item: by energy ascending so the first feasible
	// leaf found is already good, improving pruning.
	order := make([][]int, n)
	for i, it := range p.Items {
		idx := make([]int, len(it.Choices))
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool {
			return it.Choices[idx[a]].Energy < it.Choices[idx[b]].Energy
		})
		order[i] = idx
	}

	greedyChoice, greedyEnergy := referenceGreedy(p, deadlines, sufLat)

	best := append([]int(nil), greedyChoice...)
	bestEnergy := greedyEnergy

	cur := make([]int, n)
	nodes := 0
	var dfs func(i int, now simtime.Time, energy float64) bool
	dfs = func(i int, now simtime.Time, energy float64) bool {
		if nodes >= maxNodes {
			return true // abort the search, keep the best found so far
		}
		if i == n {
			if energy < bestEnergy {
				bestEnergy = energy
				copy(best, cur)
			}
			return false
		}
		if energy+sufEnergy[i] >= bestEnergy {
			return false
		}
		it := p.Items[i]
		if len(it.Choices) == 0 {
			cur[i] = 0
			return dfs(i+1, now, energy)
		}
		for _, j := range order[i] {
			nodes++
			c := it.Choices[j]
			finish := now.Add(c.Latency)
			if finish.After(deadlines[i]) {
				continue
			}
			// Future feasibility: every later deadline must remain reachable
			// at minimum latencies.
			ok := true
			t := finish
			for k := i + 1; k < n; k++ {
				t = t.Add(minLat[k])
				if t.After(deadlines[k]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cur[i] = j
			if dfs(i+1, finish, energy+c.Energy) {
				return true
			}
		}
		return false
	}
	dfs(0, p.Start, 0)

	return materialize(p, best, feasible, nodes)
}

// referenceGreedy is the pre-overhaul greedy: for each item in order, the
// lowest-energy choice that keeps the current and all future (relaxed)
// deadlines reachable, with the future check walking the suffix explicitly.
func referenceGreedy(p Problem, deadlines []simtime.Time, sufLat []simtime.Duration) ([]int, float64) {
	n := len(p.Items)
	choice := make([]int, n)
	total := 0.0
	now := p.Start
	for i, it := range p.Items {
		if len(it.Choices) == 0 {
			continue
		}
		bestJ := -1
		bestEnergy := math.MaxFloat64
		bestLat := simtime.Duration(0)
		for j, c := range it.Choices {
			finish := now.Add(c.Latency)
			if finish.After(deadlines[i]) {
				continue
			}
			// Future reachability under minimum latencies.
			ok := true
			t := finish
			for k := i + 1; k < n; k++ {
				t = t.Add(sufLat[k] - sufLat[k+1])
				if t.After(deadlines[k]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if c.Energy < bestEnergy {
				bestEnergy, bestJ, bestLat = c.Energy, j, c.Latency
			}
		}
		if bestJ == -1 {
			// Should not happen after relaxation, but fall back to the
			// fastest choice defensively.
			for j, c := range it.Choices {
				if bestJ == -1 || c.Latency < it.Choices[bestJ].Latency {
					bestJ = j
					bestLat = c.Latency
					bestEnergy = c.Energy
				}
			}
		}
		choice[i] = bestJ
		total += bestEnergy
		now = now.Add(bestLat)
	}
	return choice, total
}
