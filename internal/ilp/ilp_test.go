package ilp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

// mkChoices builds a latency/energy trade-off ladder: faster costs more.
func mkChoices(lats []simtime.Duration, energyPerMs float64) []Choice {
	var out []Choice
	for _, l := range lats {
		// Energy grows super-linearly as latency shrinks.
		e := energyPerMs * 1000 / float64(l.Millis()+1)
		out = append(out, Choice{Latency: l, Energy: e})
	}
	return out
}

func TestEmptyProblem(t *testing.T) {
	a := Solve(Problem{})
	if !a.Feasible || a.TotalEnergy != 0 || len(a.Choice) != 0 {
		t.Errorf("empty problem: %+v", a)
	}
}

func TestSingleItemPicksCheapestFeasible(t *testing.T) {
	lats := []simtime.Duration{100 * simtime.Millisecond, 200 * simtime.Millisecond, 400 * simtime.Millisecond}
	p := Problem{
		Start: 0,
		Items: []Item{{Deadline: simtime.Time(250 * simtime.Millisecond), Choices: mkChoices(lats, 10)}},
	}
	a := Solve(p)
	if !a.Feasible {
		t.Fatal("should be feasible")
	}
	// The 400ms choice is cheapest but misses the deadline; 200ms is the
	// cheapest feasible one.
	if got := p.Items[0].Choices[a.Choice[0]].Latency; got != 200*simtime.Millisecond {
		t.Errorf("picked latency %v, want 200ms", got)
	}
}

func TestChainConstraintForcesEarlierSpeedup(t *testing.T) {
	// Two events: the second has a tight absolute deadline, so the first must
	// run faster than its own deadline alone would require — the essence of
	// the paper's cross-event coordination.
	slow := Choice{Latency: 300 * simtime.Millisecond, Energy: 1}
	fast := Choice{Latency: 100 * simtime.Millisecond, Energy: 5}
	p := Problem{
		Start: 0,
		Items: []Item{
			{Deadline: simtime.Time(400 * simtime.Millisecond), Choices: []Choice{slow, fast}},
			{Deadline: simtime.Time(250 * simtime.Millisecond), Choices: []Choice{slow, fast}},
		},
	}
	a := Solve(p)
	if !a.Feasible {
		t.Fatal("should be feasible: fast+fast finishes at 200ms")
	}
	if p.Items[0].Choices[a.Choice[0]].Latency != 100*simtime.Millisecond {
		t.Error("the first event must be sped up to protect the second event's deadline")
	}
}

func TestInfeasibleRelaxation(t *testing.T) {
	// Even the fastest choice misses the deadline (a Type I event): the
	// solver must still return an assignment, flag infeasibility, and run
	// the event as fast as necessary.
	p := Problem{
		Start: 0,
		Items: []Item{
			{Deadline: simtime.Time(50 * simtime.Millisecond), Choices: []Choice{
				{Latency: 200 * simtime.Millisecond, Energy: 1},
				{Latency: 120 * simtime.Millisecond, Energy: 3},
			}},
			{Deadline: simtime.Time(500 * simtime.Millisecond), Choices: []Choice{
				{Latency: 300 * simtime.Millisecond, Energy: 1},
				{Latency: 150 * simtime.Millisecond, Energy: 4},
			}},
		},
	}
	a := Solve(p)
	if a.Feasible {
		t.Error("problem should be reported infeasible")
	}
	if len(a.Choice) != 2 {
		t.Fatal("assignment must cover all items")
	}
	// The second event's deadline is still met.
	if a.Finish[1].After(simtime.Time(500 * simtime.Millisecond)) {
		t.Errorf("second event finishes at %v, past its deadline", a.Finish[1])
	}
}

func TestFinishTimesAndEnergyConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p := randomProblem(rng, 1+rng.Intn(8), 5)
		a := Solve(p)
		now := p.Start
		total := 0.0
		for i, it := range p.Items {
			c := it.Choices[a.Choice[i]]
			now = now.Add(c.Latency)
			total += c.Energy
			if a.Finish[i] != now {
				t.Fatalf("finish[%d] = %v, want %v", i, a.Finish[i], now)
			}
		}
		if diff := total - a.TotalEnergy; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("energy mismatch: %v vs %v", total, a.TotalEnergy)
		}
	}
}

func TestSolverMatchesBruteForceOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(rng, 1+rng.Intn(4), 4)
		got := Solve(p)
		want, feasible := bruteForce(p)
		if feasible != got.Feasible {
			t.Fatalf("trial %d: feasibility mismatch (brute=%v solver=%v)", trial, feasible, got.Feasible)
		}
		if feasible && got.TotalEnergy > want+1e-9 {
			t.Fatalf("trial %d: solver energy %v worse than optimum %v", trial, got.TotalEnergy, want)
		}
	}
}

// bruteForce enumerates all assignments and returns the optimal feasible
// energy (respecting original deadlines) and whether any feasible assignment
// exists.
func bruteForce(p Problem) (float64, bool) {
	n := len(p.Items)
	best := -1.0
	var rec func(i int, now simtime.Time, energy float64)
	rec = func(i int, now simtime.Time, energy float64) {
		if i == n {
			if best < 0 || energy < best {
				best = energy
			}
			return
		}
		for _, c := range p.Items[i].Choices {
			finish := now.Add(c.Latency)
			if finish.After(p.Items[i].Deadline) {
				continue
			}
			rec(i+1, finish, energy+c.Energy)
		}
	}
	rec(0, p.Start, 0)
	return best, best >= 0
}

func randomProblem(rng *rand.Rand, items, choices int) Problem {
	p := Problem{Start: simtime.Time(rng.Intn(1000))}
	now := p.Start
	for i := 0; i < items; i++ {
		var cs []Choice
		for j := 0; j < choices; j++ {
			lat := simtime.Duration(10+rng.Intn(300)) * simtime.Millisecond
			cs = append(cs, Choice{Latency: lat, Energy: float64(1+rng.Intn(100)) / 10})
		}
		// Deadline somewhere around the cumulative mid-range latency.
		slack := simtime.Duration(rng.Intn(400)) * simtime.Millisecond
		now = now.Add(150 * simtime.Millisecond)
		p.Items = append(p.Items, Item{Deadline: now.Add(slack), Choices: cs})
	}
	return p
}

// Property: the solver's assignment always meets the relaxed deadlines, i.e.
// every finish time is at most max(original deadline, earliest achievable).
func TestDeadlineProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 1+rng.Intn(6), 3)
		a := Solve(p)
		// Earliest achievable prefix finishes.
		now := p.Start
		for i, it := range p.Items {
			min := it.Choices[0].Latency
			for _, c := range it.Choices {
				if c.Latency < min {
					min = c.Latency
				}
			}
			now = now.Add(min)
			limit := p.Items[i].Deadline
			if now.After(limit) {
				limit = now
			}
			if a.Finish[i].After(limit) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestItemWithNoChoices(t *testing.T) {
	p := Problem{Items: []Item{{Deadline: simtime.Time(simtime.Second)}}}
	a := Solve(p)
	if len(a.Choice) != 1 || a.TotalEnergy != 0 {
		t.Errorf("no-choice item mishandled: %+v", a)
	}
}
