package ilp

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/simtime"
)

// ladderProblem builds a problem shaped like the real optimizer instances:
// each item's choices form a DVFS-style ladder where higher operating points
// are strictly faster and draw superlinearly more power, with a small random
// perturbation so the energy/latency frontier is non-trivial (some mid
// points are dominated).
func ladderProblem(rng *rand.Rand, items, choices int) Problem {
	p := Problem{Start: simtime.Time(rng.Intn(1000))}
	now := p.Start
	for i := 0; i < items; i++ {
		work := float64(5+rng.Intn(300)) * 1000 // µs of work at the slowest point
		var cs []Choice
		for j := 0; j < choices; j++ {
			speed := 1 + float64(j)*0.45
			lat := simtime.Duration(work / speed)
			power := (0.4 + 0.6*speed*speed) * (0.8 + 0.4*rng.Float64())
			cs = append(cs, Choice{Latency: lat, Energy: power * float64(lat) / 1000})
		}
		slack := simtime.Duration(rng.Intn(500)) * simtime.Millisecond
		now = now.Add(simtime.Duration(work * 0.6))
		p.Items = append(p.Items, Item{Deadline: now.Add(slack), Choices: cs})
	}
	return p
}

// problems yields a mixed bag of random and ladder-shaped instances.
func problems(rng *rand.Rand, trial, maxItems, maxChoices int) Problem {
	if trial%2 == 0 {
		return randomProblem(rng, 1+rng.Intn(maxItems), 1+rng.Intn(maxChoices))
	}
	return ladderProblem(rng, 1+rng.Intn(maxItems), 1+rng.Intn(maxChoices))
}

// TestSolveEquivalentToReference is the core byte-identity property of the
// overhauled solver: on random instances the dominance-pruned search must
// return exactly the assignment of the pre-overhaul reference solver — same
// choice indices (not just equal energy), same feasibility verdict, same
// finish times — while exploring no more nodes.
func TestSolveEquivalentToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 400; trial++ {
		p := problems(rng, trial, 12, 17)
		got := Solve(p)
		want := SolveReference(p)
		if got.Nodes >= maxNodes || want.Nodes >= maxNodes {
			// An exhausted search budget returns the best incumbent found
			// along the traversal, which legitimately differs between the
			// two traversals; both must still be at least as good as the
			// shared greedy seed.
			if gr := SolveGreedy(p); got.TotalEnergy > gr.TotalEnergy+1e-9 || want.TotalEnergy > gr.TotalEnergy+1e-9 {
				t.Fatalf("trial %d: aborted search returned worse than its greedy seed", trial)
			}
			continue
		}
		if !reflect.DeepEqual(got.Choice, want.Choice) {
			t.Fatalf("trial %d: choices diverge\n got %v (E=%v)\nwant %v (E=%v)\nproblem: %+v",
				trial, got.Choice, got.TotalEnergy, want.Choice, want.TotalEnergy, p)
		}
		if got.Feasible != want.Feasible || !reflect.DeepEqual(got.Finish, want.Finish) {
			t.Fatalf("trial %d: feasibility/finish diverge: %+v vs %+v", trial, got, want)
		}
		if got.Nodes > want.Nodes {
			t.Fatalf("trial %d: overhauled solver explored %d nodes, reference only %d", trial, got.Nodes, want.Nodes)
		}
	}
}

// TestSolveNeverWorseThanGreedy: the branch-and-bound energy is at most the
// greedy heuristic's energy, with every QoS deadline respected whenever the
// greedy respects it (both operate on the same relaxed deadlines).
func TestSolveNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 300; trial++ {
		p := problems(rng, trial, 10, 12)
		bb := Solve(p)
		gr := SolveGreedy(p)
		if bb.TotalEnergy > gr.TotalEnergy+1e-9 {
			t.Fatalf("trial %d: branch-and-bound energy %v exceeds greedy energy %v",
				trial, bb.TotalEnergy, gr.TotalEnergy)
		}
		if bb.Feasible != gr.Feasible {
			t.Fatalf("trial %d: feasibility verdicts diverge (bb=%v greedy=%v)", trial, bb.Feasible, gr.Feasible)
		}
		if bb.Feasible {
			for i := range p.Items {
				if bb.Finish[i].After(p.Items[i].Deadline) {
					t.Fatalf("trial %d: item %d finishes at %v past its deadline %v",
						trial, i, bb.Finish[i], p.Items[i].Deadline)
				}
			}
		}
	}
}

// exhaustiveMin enumerates every assignment against the relaxed deadlines
// and returns the minimum total energy. Only tractable for tiny instances.
func exhaustiveMin(p Problem) float64 {
	pr := prepare(p)
	n := len(p.Items)
	best := -1.0
	var rec func(i int, now simtime.Time, energy float64)
	rec = func(i int, now simtime.Time, energy float64) {
		if i == n {
			if best < 0 || energy < best {
				best = energy
			}
			return
		}
		if len(p.Items[i].Choices) == 0 {
			rec(i+1, now, energy)
			return
		}
		for _, c := range p.Items[i].Choices {
			finish := now.Add(c.Latency)
			if finish.After(pr.deadlines[i]) {
				continue
			}
			rec(i+1, finish, energy+c.Energy)
		}
	}
	rec(0, p.Start, 0)
	return best
}

// TestSolveOptimalOnSmallInstances cross-checks the solver against
// exhaustive enumeration for N <= 6 events: the branch-and-bound must attain
// the true minimum energy exactly.
func TestSolveOptimalOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 300; trial++ {
		p := problems(rng, trial, 6, 8)
		got := Solve(p)
		want := exhaustiveMin(p)
		if want < 0 {
			t.Fatalf("trial %d: relaxation left no feasible assignment", trial)
		}
		if diff := got.TotalEnergy - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: solver energy %v, exhaustive optimum %v", trial, got.TotalEnergy, want)
		}
	}
}

// TestSolveReferenceOrderBitIdentical: the Oracle's budget-pinned solver
// must reproduce SolveReference bit for bit on every instance — including
// ones that exhaust the node budget, where the result is an artifact of the
// traversal — and with the identical node count.
func TestSolveReferenceOrderBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	aborted := 0
	for trial := 0; trial < 200; trial++ {
		p := problems(rng, trial, 14, 17)
		got := SolveReferenceOrder(p)
		want := SolveReference(p)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: reference-order solver diverged\n got %+v\nwant %+v", trial, got, want)
		}
		if got.Nodes >= maxNodes {
			aborted++
		}
	}
	if aborted == 0 {
		t.Log("no trial exhausted the node budget; the abort path went unexercised")
	}
}
