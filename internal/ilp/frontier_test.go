package ilp_test

import (
	"math/rand"
	"testing"

	"repro/internal/ilp"
	"repro/internal/ilp/chaingen"
)

// TestFrontierReducesNodes pins the headline claim of the overhaul on
// optimizer-shaped instances — the shared chaingen distribution (the
// 17-point Exynos-shaped ladder) also measured by cmd/pes-bench and the
// committed BENCH_pr3.json: at least a 2x reduction in explored nodes
// versus the reference solver, summed over the suite, with no search
// exhausting its budget.
func TestFrontierReducesNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	pts := chaingen.Points()
	var nodes, refNodes int
	for trial := 0; trial < 80; trial++ {
		p := chaingen.Problem(rng, pts, 2+rng.Intn(5))
		a := ilp.Solve(p)
		r := ilp.SolveReference(p)
		if a.Aborted() || r.Aborted() {
			t.Fatalf("trial %d: search budget exhausted on an optimizer-shaped instance", trial)
		}
		nodes += a.Nodes
		refNodes += r.Nodes
	}
	if nodes == 0 || float64(refNodes)/float64(nodes) < 2 {
		t.Fatalf("node reduction %d -> %d is below 2x", refNodes, nodes)
	}
}
