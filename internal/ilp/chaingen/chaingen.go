// Package chaingen generates optimizer-shaped chain-scheduling instances.
// It is the single source of the synthetic problem shape shared by the ilp
// solver's equivalence/node-reduction tests and the cmd/pes-bench
// microbenchmark suite, so the property tests and the committed benchmark
// baseline (BENCH_pr3.json) always measure the same distribution.
package chaingen

import (
	"math/rand"

	"repro/internal/ilp"
	"repro/internal/simtime"
)

// Point is one synthetic ACMP operating point: the CPI-adjusted effective
// frequency and the active power drawn while executing on it.
type Point struct {
	EffMHz  float64
	PowerMW float64
}

// Points returns the 17-point DVFS ladder mirroring the Exynos 5410
// platform model's shape: a CPI-penalized little cluster (350–600 MHz in
// 50 MHz steps, CPI 1.9, ~85–215 mW) and a big cluster (800–1800 MHz in
// 100 MHz steps, ~0.7–3.4 W, superlinear in frequency).
func Points() []Point {
	var pts []Point
	for f := 350.0; f <= 600; f += 50 {
		pts = append(pts, Point{EffMHz: f / 1.9, PowerMW: 85 + 0.52*(f-350)})
	}
	for f := 800.0; f <= 1800; f += 100 {
		pts = append(pts, Point{EffMHz: f, PowerMW: 180 + f*f*0.00102})
	}
	return pts
}

// Problem generates one instance of items chained events: workloads drawn
// from the paper's interaction mix (mostly taps, occasional moves and
// loads) through the DVFS latency law, deadlines following the trigger
// chain with interaction-typical QoS slack.
func Problem(rng *rand.Rand, pts []Point, items int) ilp.Problem {
	p := ilp.Problem{Start: simtime.Time(rng.Intn(1000))}
	now := p.Start
	for i := 0; i < items; i++ {
		var tmemMS, mcycles, qosMS float64
		switch rng.Intn(6) {
		case 0:
			tmemMS, mcycles, qosMS = 3, 18, 33 // move
		case 1:
			tmemMS, mcycles, qosMS = 380, 4400, 3000 // load
		default:
			tmemMS, mcycles, qosMS = 26, 520, 300 // tap
		}
		scale := 0.5 + rng.Float64()
		var cs []ilp.Choice
		for _, pt := range pts {
			lat := simtime.Duration(scale * (tmemMS*1000 + mcycles*1e6/pt.EffMHz))
			cs = append(cs, ilp.Choice{Latency: lat, Energy: pt.PowerMW * lat.Seconds()})
		}
		trigger := now
		now = now.Add(simtime.Duration(qosMS * (0.4 + 1.2*rng.Float64()) * 1000))
		p.Items = append(p.Items, ilp.Item{
			Deadline: trigger.Add(simtime.Duration(qosMS * 1000)),
			Choices:  cs,
		})
	}
	return p
}
