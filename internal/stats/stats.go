// Package stats provides the small statistical toolbox used across the PES
// reproduction: summary statistics for experiment reporting, percentiles for
// latency distributions, a 2×2 linear solver for the Tmem/Ndep fit of the
// DVFS latency model, and an online mean estimator used by the schedulers.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrSingular is returned by Solve2x2 when the coefficient matrix is
// (numerically) singular.
var ErrSingular = errors.New("stats: singular system")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when fewer
// than two samples are available.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ratio returns num/den, or 0 when den is 0. It keeps experiment code free of
// divide-by-zero guards when a denominator can legitimately be empty.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Solve2x2 solves the linear system
//
//	a11·x + a12·y = b1
//	a21·x + a22·y = b2
//
// and returns (x, y). It is used to recover Tmem and Ndep from two latency
// observations at two different frequencies (Eqn. 1 of the paper).
func Solve2x2(a11, a12, b1, a21, a22, b2 float64) (x, y float64, err error) {
	det := a11*a22 - a12*a21
	if math.Abs(det) < 1e-12 {
		return 0, 0, ErrSingular
	}
	x = (b1*a22 - a12*b2) / det
	y = (a11*b2 - b1*a21) / det
	return x, y, nil
}

// Running maintains an online mean/variance (Welford) plus min/max. The zero
// value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a new observation into the running statistics.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Count returns the number of observations folded in so far.
func (r *Running) Count() int { return r.n }

// Mean returns the running mean (0 before any observation).
func (r *Running) Mean() float64 { return r.mean }

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n))
}

// Min returns the smallest observation (0 before any observation).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest observation (0 before any observation).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return 0
	}
	return r.max
}

// Histogram is a fixed-width-bucket histogram used to summarize latency and
// PFB-occupancy distributions in the experiment harness.
type Histogram struct {
	lo, width float64
	counts    []int
	under     int
	over      int
	total     int
}

// NewHistogram builds a histogram of n buckets of the given width starting at
// lo. It panics if n ≤ 0 or width ≤ 0.
func NewHistogram(lo, width float64, n int) *Histogram {
	if n <= 0 || width <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, width: width, counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	idx := int(math.Floor((x - h.lo) / h.width))
	switch {
	case idx < 0:
		h.under++
	case idx >= len(h.counts):
		h.over++
	default:
		h.counts[idx]++
	}
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Bucket returns the count for bucket i.
func (h *Histogram) Bucket(i int) int { return h.counts[i] }

// Buckets returns the number of in-range buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Outliers returns the counts below and above the histogram range.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// BucketLow returns the lower bound of bucket i.
func (h *Histogram) BucketLow(i int) float64 { return h.lo + float64(i)*h.width }
