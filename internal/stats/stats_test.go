package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almost(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); !almost(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice mean/std should be 0")
	}
	if StdDev([]float64{3}) != 0 {
		t.Error("single-sample std should be 0")
	}
}

func TestSumMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Sum(xs) != 11 {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if Min(xs) != -1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %v", Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); !almost(got, 5.5, 1e-12) {
		t.Errorf("p50 = %v, want 5.5", got)
	}
	if got := Percentile([]float64{42}, 90); got != 42 {
		t.Errorf("single-element percentile = %v", got)
	}
	// Out-of-range p is clamped.
	if got := Percentile(xs, 150); got != 10 {
		t.Errorf("p150 = %v, want clamp to max", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(4, 2) != 2 {
		t.Error("Ratio(4,2) != 2")
	}
	if Ratio(4, 0) != 0 {
		t.Error("Ratio with zero denominator should be 0")
	}
}

func TestSolve2x2(t *testing.T) {
	// Tmem + Ndep/f style system: T1 = Tmem + N/f1, T2 = Tmem + N/f2.
	f1, f2 := 600.0, 1800.0
	tmem, n := 5.0, 1.2e6 // 5µs mem, 1.2M cycles
	t1 := tmem + n/f1
	t2 := tmem + n/f2
	x, y, err := Solve2x2(1, 1/f1, t1, 1, 1/f2, t2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x, tmem, 1e-6) || !almost(y, n, 1e-3) {
		t.Errorf("Solve2x2 = (%v, %v), want (%v, %v)", x, y, tmem, n)
	}
}

func TestSolve2x2Singular(t *testing.T) {
	if _, _, err := Solve2x2(1, 2, 3, 2, 4, 6); err != ErrSingular {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestRunning(t *testing.T) {
	var r Running
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		r.Add(x)
	}
	if r.Count() != len(xs) {
		t.Errorf("Count = %d", r.Count())
	}
	if !almost(r.Mean(), Mean(xs), 1e-12) {
		t.Errorf("running mean %v != %v", r.Mean(), Mean(xs))
	}
	if !almost(r.StdDev(), StdDev(xs), 1e-9) {
		t.Errorf("running std %v != %v", r.StdDev(), StdDev(xs))
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v", r.Min(), r.Max())
	}
	var empty Running
	if empty.Mean() != 0 || empty.StdDev() != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Error("zero-value Running should report zeros")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5) // [0,10) [10,20) ... [40,50)
	for _, x := range []float64{-1, 0, 5, 15, 44, 49.9, 50, 120} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Errorf("outliers = %d/%d, want 1/2", under, over)
	}
	if h.Bucket(0) != 2 || h.Bucket(1) != 1 || h.Bucket(4) != 2 {
		t.Errorf("bucket counts = %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(4))
	}
	if h.Buckets() != 5 {
		t.Errorf("Buckets = %d", h.Buckets())
	}
	if h.BucketLow(3) != 30 {
		t.Errorf("BucketLow(3) = %v", h.BucketLow(3))
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid histogram shape")
		}
	}()
	NewHistogram(0, 0, 5)
}

// Property: running mean matches batch mean.
func TestRunningMatchesBatch(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var r Running
		for i, v := range raw {
			xs[i] = float64(v)
			r.Add(xs[i])
		}
		return almost(r.Mean(), Mean(xs), 1e-6) && almost(r.StdDev(), StdDev(xs), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile is bounded by min and max and monotone in p.
func TestPercentileBounds(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		p := float64(pRaw) / 255 * 100
		v := Percentile(xs, p)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Solve2x2 recovers the parameters of any well-conditioned system.
func TestSolve2x2Property(t *testing.T) {
	f := func(xi, yi int16) bool {
		x := float64(xi)
		y := float64(yi)
		// Fixed well-conditioned matrix.
		a11, a12, a21, a22 := 2.0, 1.0, 1.0, 3.0
		b1 := a11*x + a12*y
		b2 := a21*x + a22*y
		gx, gy, err := Solve2x2(a11, a12, b1, a21, a22, b2)
		return err == nil && almost(gx, x, 1e-6) && almost(gy, y, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
