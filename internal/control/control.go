// Package control implements the PES control unit: the Pending Frame Buffer
// (PFB) that holds speculative frames until their predicted events are
// confirmed by real user input, and the fallback controller that disables
// speculation after a run of consecutive mis-predictions (Sec. 5.4).
package control

import (
	"repro/internal/render"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

// PendingFrame is one speculative frame awaiting confirmation.
type PendingFrame struct {
	// Type is the predicted event type the frame answers.
	Type webevent.Type
	// Frame is the speculatively produced frame.
	Frame *render.Frame
}

// PFB is the Pending Frame Buffer: an ordered queue of speculative frames.
// Frames are committed strictly in prediction order; a mismatch squashes the
// entire buffer.
type PFB struct {
	frames []PendingFrame

	committed int
	squashed  int
	maxSize   int
}

// Push appends a completed speculative frame.
func (b *PFB) Push(typ webevent.Type, f *render.Frame) {
	b.frames = append(b.frames, PendingFrame{Type: typ, Frame: f})
	if len(b.frames) > b.maxSize {
		b.maxSize = len(b.frames)
	}
}

// Size returns the current number of pending frames.
func (b *PFB) Size() int { return len(b.frames) }

// MaxSize returns the high-water mark of the buffer.
func (b *PFB) MaxSize() int { return b.maxSize }

// Committed and Squashed return lifetime counters.
func (b *PFB) Committed() int { return b.committed }

// Squashed returns how many frames have been dropped by squashes.
func (b *PFB) Squashed() int { return b.squashed }

// Head returns the oldest pending frame without removing it.
func (b *PFB) Head() (PendingFrame, bool) {
	if len(b.frames) == 0 {
		return PendingFrame{}, false
	}
	return b.frames[0], true
}

// Commit removes and returns the oldest pending frame; it must only be
// called after Head confirmed a match.
func (b *PFB) Commit() (PendingFrame, bool) {
	if len(b.frames) == 0 {
		return PendingFrame{}, false
	}
	f := b.frames[0]
	b.frames = b.frames[1:]
	b.committed++
	return f, true
}

// Squash drops every pending frame and returns the total production time
// that is thereby wasted (the paper's mis-prediction waste metric).
func (b *PFB) Squash() (dropped int, wasted simtime.Duration) {
	for _, pf := range b.frames {
		wasted += pf.Frame.ProductionTime()
	}
	dropped = len(b.frames)
	b.squashed += dropped
	b.frames = b.frames[:0]
	return dropped, wasted
}

// Fallback tracks consecutive mis-predictions and disables speculation after
// the paper's threshold (> 3 in a row). The paper does not specify when
// prediction re-arms; this implementation re-arms after a configurable
// number of reactively handled events (default 10).
type Fallback struct {
	// Threshold is the number of consecutive mis-predictions after which
	// speculation is disabled (default 3, i.e. disabled on the 4th).
	Threshold int
	// RearmAfter is the number of reactively handled events after which
	// speculation is re-enabled (default 10).
	RearmAfter int

	consecutive   int
	disabled      bool
	reactiveCount int
	disabledTotal int
}

// NewFallback returns a Fallback with the paper's defaults.
func NewFallback() *Fallback { return &Fallback{Threshold: 3, RearmAfter: 10} }

// Enabled reports whether speculation is currently allowed.
func (f *Fallback) Enabled() bool { return !f.disabled }

// Disabled returns how many times speculation has been disabled in total.
func (f *Fallback) Disabled() int { return f.disabledTotal }

// OnMisprediction records a mis-prediction; it returns true when this
// mis-prediction crosses the threshold and disables speculation.
func (f *Fallback) OnMisprediction() bool {
	f.consecutive++
	if !f.disabled && f.consecutive > f.Threshold {
		f.disabled = true
		f.disabledTotal++
		f.reactiveCount = 0
		return true
	}
	return false
}

// OnCorrectPrediction resets the consecutive mis-prediction counter.
func (f *Fallback) OnCorrectPrediction() { f.consecutive = 0 }

// OnReactiveEvent records an event handled without speculation; after
// RearmAfter such events speculation is re-enabled.
func (f *Fallback) OnReactiveEvent() {
	if !f.disabled {
		return
	}
	f.reactiveCount++
	if f.reactiveCount >= f.RearmAfter {
		f.disabled = false
		f.consecutive = 0
	}
}
