package control

import (
	"testing"

	"repro/internal/acmp"
	"repro/internal/render"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

func mkFrame(dur simtime.Duration) *render.Frame {
	return render.Produce(webevent.Click, acmp.Config{Core: acmp.BigCore, FreqMHz: 1800},
		0, simtime.Time(dur), true)
}

func TestPFBCommitOrder(t *testing.T) {
	var b PFB
	if _, ok := b.Head(); ok {
		t.Error("empty PFB should have no head")
	}
	if _, ok := b.Commit(); ok {
		t.Error("empty PFB should not commit")
	}
	b.Push(webevent.Click, mkFrame(10*simtime.Millisecond))
	b.Push(webevent.Scroll, mkFrame(5*simtime.Millisecond))
	if b.Size() != 2 || b.MaxSize() != 2 {
		t.Errorf("size=%d max=%d", b.Size(), b.MaxSize())
	}
	head, ok := b.Head()
	if !ok || head.Type != webevent.Click {
		t.Fatalf("head = %+v", head)
	}
	got, _ := b.Commit()
	if got.Type != webevent.Click || b.Size() != 1 || b.Committed() != 1 {
		t.Error("commit should pop the oldest frame")
	}
}

func TestPFBSquashWaste(t *testing.T) {
	var b PFB
	b.Push(webevent.Click, mkFrame(10*simtime.Millisecond))
	b.Push(webevent.Scroll, mkFrame(15*simtime.Millisecond))
	dropped, wasted := b.Squash()
	if dropped != 2 || wasted != 25*simtime.Millisecond {
		t.Errorf("dropped=%d wasted=%v", dropped, wasted)
	}
	if b.Size() != 0 || b.Squashed() != 2 {
		t.Error("squash should empty the buffer")
	}
	// Squashing an empty buffer is a no-op.
	if d, w := b.Squash(); d != 0 || w != 0 {
		t.Error("empty squash should be free")
	}
}

func TestFallbackThresholdAndRearm(t *testing.T) {
	f := NewFallback()
	if !f.Enabled() {
		t.Fatal("fallback should start enabled")
	}
	// Three consecutive mis-predictions do not disable; the fourth does.
	for i := 0; i < 3; i++ {
		if f.OnMisprediction() {
			t.Fatalf("disabled too early at %d", i+1)
		}
	}
	if !f.Enabled() {
		t.Fatal("should still be enabled after 3")
	}
	if !f.OnMisprediction() {
		t.Fatal("4th consecutive mis-prediction should disable speculation")
	}
	if f.Enabled() || f.Disabled() != 1 {
		t.Error("speculation should be disabled once")
	}
	// Re-arms after RearmAfter reactive events.
	for i := 0; i < f.RearmAfter; i++ {
		f.OnReactiveEvent()
	}
	if !f.Enabled() {
		t.Error("speculation should re-arm")
	}
	// A correct prediction resets the consecutive counter.
	f.OnMisprediction()
	f.OnMisprediction()
	f.OnCorrectPrediction()
	for i := 0; i < 3; i++ {
		f.OnMisprediction()
	}
	if !f.Enabled() {
		t.Error("counter should have been reset by the correct prediction")
	}
	// OnReactiveEvent while enabled is a no-op.
	f.OnReactiveEvent()
	if !f.Enabled() {
		t.Error("reactive events while enabled must not disable speculation")
	}
}
