// Package eventclass classifies events executed under a reactive scheduler
// into the four categories of Fig. 3 of the paper. The classification is not
// intrinsic to an event: it describes how the event fared under a particular
// schedule and therefore exposes the scheduling policy's limitations.
package eventclass

import (
	"fmt"

	"repro/internal/acmp"
	"repro/internal/engine"
	"repro/internal/render"
	"repro/internal/simtime"
)

// Class is one of the paper's four event categories.
type Class int

const (
	// TypeI events cannot meet their QoS target even on the
	// highest-performance configuration.
	TypeI Class = iota
	// TypeII events could meet the deadline in isolation but missed it at
	// runtime because of interference from other events.
	TypeII
	// TypeIII events met the deadline but needed a higher-performance (more
	// energy-hungry) configuration than they would have in isolation,
	// because interference shrank their time budget.
	TypeIII
	// TypeIV events met the deadline without interference — the benign case
	// whose slack a proactive scheduler can redistribute.
	TypeIV

	// NumClasses is the number of categories.
	NumClasses int = iota
)

// String names the class.
func (c Class) String() string {
	switch c {
	case TypeI:
		return "Type I"
	case TypeII:
		return "Type II"
	case TypeIII:
		return "Type III"
	case TypeIV:
		return "Type IV"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classify assigns an executed event to its category.
func Classify(p *acmp.Platform, o engine.Outcome) Class {
	ev := o.Event
	// Would the event have met its target on the fastest configuration with
	// a full budget (no interference)?
	bestLat := p.Latency(ev.Work, p.MaxPerformance()) + render.DisplayMargin
	if bestLat > ev.QoSTarget() {
		return TypeI
	}
	interfered := o.Start.After(ev.Trigger.Add(simtime.Millisecond))
	if o.Violated {
		return TypeII
	}
	if interfered {
		return TypeIII
	}
	return TypeIV
}

// Distribution summarizes the class mix of a simulation result as fractions
// that sum to 1 (for a non-empty result).
func Distribution(p *acmp.Platform, r *engine.Result) [NumClasses]float64 {
	var counts [NumClasses]int
	for _, o := range r.Outcomes {
		counts[Classify(p, o)]++
	}
	var out [NumClasses]float64
	total := len(r.Outcomes)
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}
