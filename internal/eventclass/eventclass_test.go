package eventclass

import (
	"testing"

	"repro/internal/acmp"
	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/webapp"
	"repro/internal/webevent"
)

func TestClassifyRules(t *testing.T) {
	p := acmp.Exynos5410()
	light := acmp.Workload{Tmem: 2 * simtime.Millisecond, Cycles: 8e6}
	heavy := acmp.Workload{Tmem: 50 * simtime.Millisecond, Cycles: 900e6} // > 300ms even at max

	mk := func(typ webevent.Type, work acmp.Workload, startDelay, latency simtime.Duration, violated bool) engine.Outcome {
		ev := &webevent.Event{Type: typ, Trigger: simtime.Time(10 * simtime.Second), Work: work}
		return engine.Outcome{
			Event:    ev,
			Start:    ev.Trigger.Add(startDelay),
			Finish:   ev.Trigger.Add(startDelay + latency),
			Latency:  latency,
			Violated: violated,
		}
	}

	if got := Classify(p, mk(webevent.Click, heavy, 0, 500*simtime.Millisecond, true)); got != TypeI {
		t.Errorf("inherently infeasible event classified as %v", got)
	}
	if got := Classify(p, mk(webevent.Click, light, 200*simtime.Millisecond, 400*simtime.Millisecond, true)); got != TypeII {
		t.Errorf("interfered violating event classified as %v", got)
	}
	if got := Classify(p, mk(webevent.Click, light, 100*simtime.Millisecond, 200*simtime.Millisecond, false)); got != TypeIII {
		t.Errorf("interfered but met event classified as %v", got)
	}
	if got := Classify(p, mk(webevent.Click, light, 0, 50*simtime.Millisecond, false)); got != TypeIV {
		t.Errorf("benign event classified as %v", got)
	}
	for c := TypeI; c < Class(NumClasses); c++ {
		if c.String() == "" {
			t.Error("class must have a name")
		}
	}
	if Class(99).String() == "" {
		t.Error("unknown class should render")
	}
}

func TestDistributionSumsToOne(t *testing.T) {
	p := acmp.Exynos5410()
	spec, _ := webapp.ByName("cnn")
	tr := trace.Generate(spec, 77, trace.Options{})
	evs, err := tr.Runtime()
	if err != nil {
		t.Fatal(err)
	}
	r := engine.RunReactive(p, "cnn", evs, sched.NewEBS(p))
	d := Distribution(p, r)
	sum := 0.0
	for _, f := range d {
		if f < 0 || f > 1 {
			t.Fatalf("fraction %v out of range", f)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("distribution sums to %v", sum)
	}
	// Empty result yields all zeros.
	empty := Distribution(p, &engine.Result{})
	for _, f := range empty {
		if f != 0 {
			t.Error("empty distribution should be zero")
		}
	}
}
