package obs

import (
	"context"
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
)

func TestMintTraceIDDeterministic(t *testing.T) {
	a, b := MintTraceID("c0001"), MintTraceID("c0001")
	if a == "" || a != b {
		t.Fatalf("trace ID not deterministic: %q vs %q", a, b)
	}
	if MintTraceID("c0002") == a {
		t.Fatal("distinct campaigns share a trace ID")
	}
}

func TestRecorderStampsTraceID(t *testing.T) {
	r := NewRecorder("abc123")
	r.Record(Span{Name: "queue_wait", StartUS: 10, DurUS: 5})
	r.Merge([]Span{{TraceID: "other", Name: "simulate", Worker: "w1", StartUS: 20, DurUS: 7}})
	tl := r.Timeline()
	if len(tl) != 2 {
		t.Fatalf("timeline length = %d, want 2", len(tl))
	}
	for _, s := range tl {
		if s.TraceID != "abc123" {
			t.Errorf("span %s trace ID = %q, want abc123", s.Name, s.TraceID)
		}
	}
}

// The timeline must be a pure function of the span *set*: the same spans
// arriving in any order — e.g. live recording vs a rebuild across a journal
// resume — serialize byte-identically.
func TestTimelineByteStableAcrossArrivalOrder(t *testing.T) {
	spans := []Span{
		{Name: "queue_wait", StartUS: 100, DurUS: 40},
		{Name: "dispatch", Worker: "w1", Sessions: 16, StartUS: 140, DurUS: 900},
		{Name: "dispatch", Worker: "w2", Sessions: 16, StartUS: 140, DurUS: 700},
		{Name: "simulate", Worker: "w1", Sessions: 16, StartUS: 150, DurUS: 800, Detail: "chunk 0"},
		{Name: "simulate", Worker: "w2", Sessions: 16, StartUS: 150, DurUS: 600, Detail: "chunk 1"},
		{Name: "steal", Worker: "w2", Sessions: 8, StartUS: 780, DurUS: 3},
		{Name: "solve", Worker: "w1", StartUS: 150, DurUS: 400},
	}
	var want []byte
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]Span(nil), spans...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := NewRecorder("t1")
		// Interleave Record and Merge arrival paths.
		r.Record(shuffled[0])
		r.Merge(shuffled[1:4])
		for _, s := range shuffled[4:] {
			r.Record(s)
		}
		got, err := json.Marshal(r.Timeline())
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("trial %d: timeline not byte-stable\n got: %s\nwant: %s", trial, got, want)
		}
	}
}

func TestContextPropagation(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("untraced context should yield nil recorder")
	}
	if TraceIDFrom(context.Background()) != "" {
		t.Fatal("untraced context should yield empty trace ID")
	}
	r := NewRecorder("xyz")
	ctx := WithTrace(context.Background(), r)
	if TraceFrom(ctx) != r {
		t.Fatal("recorder not recovered from context")
	}
	if TraceIDFrom(ctx) != "xyz" {
		t.Fatalf("trace ID from context = %q, want xyz", TraceIDFrom(ctx))
	}
	// nil recorder attaches nothing.
	if ctx2 := WithTrace(context.Background(), nil); TraceFrom(ctx2) != nil {
		t.Fatal("nil recorder should not attach")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder("conc")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(Span{Name: "simulate", StartUS: int64(w*1000 + i)})
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 8*200 {
		t.Fatalf("len = %d, want %d", r.Len(), 8*200)
	}
}
