// Package obs is the stdlib-only telemetry substrate: a metrics registry
// (counters, gauges, fixed-bucket histograms) with Prometheus text
// exposition, per-campaign tracing (see trace.go), and the live debug
// surface (pprof + expvar).
//
// The registry is the read side of the counters the rest of the system
// already keeps. Two kinds of series coexist:
//
//   - Native metrics (Counter, Gauge, Histogram): atomic, nil-safe, and
//     allocation-free on the increment/observe path, so they can sit on the
//     simulation hot path the same way the engine's zero-alloc discipline
//     demands (gated by AllocsPerRun tests). These carry the new
//     time-series — session wall time, solve wall time, shard round-trips,
//     HTTP handler latency.
//   - Sampled metrics (CounterFunc, GaugeFunc): closures evaluated at scrape
//     time over the same atomic counters the /healthz and results `stats`
//     snapshots read, so every counter family the JSON views report is also
//     a Prometheus series, with one source of truth and no double counting.
//
// Exposition follows the Prometheus text format version 0.0.4: families are
// emitted in sorted order with one # HELP / # TYPE header each, series
// within a family sorted by label set, histograms as cumulative _bucket
// series plus _sum and _count. Deterministic output order is part of the
// contract — tests diff scrapes byte for byte.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Label is one constant key="value" pair attached to a series at
// registration. Labels are fixed for the life of the series (there is no
// dynamic label lookup on the hot path — register one series per label
// combination instead).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing series. All methods are nil-safe so
// instrumented code never has to check whether telemetry is wired; a nil
// counter costs one predictable branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can go up and down. Nil-safe like Counter.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add shifts the gauge by delta (CAS loop; contended adds retry).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are chosen at
// registration and never change, so Observe is a linear scan over a small
// array plus three atomic adds — no allocation, no locks. Nil-safe.
type Histogram struct {
	upper   []float64      // ascending bucket upper bounds (an implicit +Inf bucket follows)
	counts  []atomic.Int64 // len(upper)+1
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// DefBuckets is the default latency bucket ladder, in seconds: 100µs to 30s
// in roughly 2.5x steps — wide enough to hold both a 344µs PES session and a
// multi-second Oracle shard round-trip.
var DefBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSeconds records a duration given in nanoseconds, converted to
// seconds (the Prometheus base unit for time).
func (h *Histogram) ObserveSeconds(ns int64) { h.Observe(float64(ns) / 1e9) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCounts returns the non-cumulative per-bucket counts (the last entry
// is the +Inf bucket). For tests and introspection; exposition renders the
// cumulative form.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// metricKind is the exposition TYPE of a series.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered time series.
type series struct {
	family string // metric family name (without label block)
	labels string // rendered {k="v",...} block, "" when unlabeled
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	sample  func() float64 // CounterFunc / GaugeFunc
}

// family groups series sharing a name for exposition.
type familyEntry struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds the process's (or one subsystem's) metric families and
// renders them in the Prometheus text format. Registration is cheap but
// synchronized — do it at wiring time, not on hot paths. Safe for concurrent
// registration and scraping.
type Registry struct {
	mu       sync.Mutex
	families map[string]*familyEntry
	names    []string // sorted family names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*familyEntry)}
}

// validName reports whether a metric or label name fits the Prometheus
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// renderLabels renders a deterministic {k="v",...} block (sorted by key).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	out := "{"
	for i, l := range sorted {
		if i > 0 {
			out += ","
		}
		out += l.Key + "=" + strconv.Quote(l.Value)
	}
	return out + "}"
}

// register adds a series, panicking on an invalid name, a kind conflict
// within a family, or a duplicate (family, labels) pair — all programmer
// errors at wiring time, not runtime conditions.
func (r *Registry) register(s *series, help string, labels []Label) {
	if !validName(s.family) {
		panic(fmt.Sprintf("obs: invalid metric name %q", s.family))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l.Key, s.family))
		}
	}
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[s.family]
	if !ok {
		f = &familyEntry{name: s.family, help: help, kind: s.kind}
		r.families[s.family] = f
		r.names = append(r.names, s.family)
		sort.Strings(r.names)
	}
	if f.kind != s.kind {
		panic(fmt.Sprintf("obs: metric family %s registered as both %s and %s", s.family, f.kind, s.kind))
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s%s", s.family, s.labels))
		}
	}
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
}

// Counter registers and returns a native counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(&series{family: name, kind: kindCounter, counter: c}, help, labels)
	return c
}

// Gauge registers and returns a native gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(&series{family: name, kind: kindGauge, gauge: g}, help, labels)
	return g
}

// CounterFunc registers a counter series sampled from fn at scrape time.
// Use it to expose an existing atomic counter (a Stats snapshot field)
// without a second write path; fn must be monotonic for the series to obey
// counter semantics.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&series{family: name, kind: kindCounter, sample: fn}, help, labels)
}

// GaugeFunc registers a gauge series sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&series{family: name, kind: kindGauge, sample: fn}, help, labels)
}

// Histogram registers and returns a native histogram with the given
// ascending bucket upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending", name))
		}
	}
	h := &Histogram{upper: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
	r.register(&series{family: name, kind: kindHistogram, hist: h}, help, labels)
	return h
}

// formatFloat renders a sample the way Prometheus expects (integers without
// an exponent, everything else in Go's shortest form).
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// innerLabels re-renders a series' label block with one extra label (used
// for the histogram le label); block is the rendered "{...}" or "".
func withLabel(block, key, value string) string {
	extra := key + "=" + strconv.Quote(value)
	if block == "" {
		return "{" + extra + "}"
	}
	return block[:len(block)-1] + "," + extra + "}"
}

// WritePrometheus renders every registered family in the text exposition
// format, families sorted by name, series sorted by label block.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*familyEntry, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		// Snapshot the series slice; the metrics themselves are atomic.
		fams = append(fams, &familyEntry{name: f.name, help: f.help, kind: f.kind, series: append([]*series(nil), f.series...)})
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f.name, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name string, s *series) error {
	switch s.kind {
	case kindCounter, kindGauge:
		var v float64
		switch {
		case s.sample != nil:
			v = s.sample()
		case s.counter != nil:
			v = float64(s.counter.Value())
		default:
			v = s.gauge.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatFloat(v))
		return err
	default:
		h := s.hist
		cum := int64(0)
		for i, ub := range h.upper {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", formatFloat(ub)), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.upper)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
		return err
	}
}

// Handler serves the registry as GET /metrics content
// (text/plain; version=0.0.4).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// DebugHandler returns the live-profiling surface served on -debug-addr:
// the full net/http/pprof tree under /debug/pprof/ and expvar under
// /debug/vars. Never expose this on a public listener — it is opt-in and on
// a separate address for exactly that reason.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
