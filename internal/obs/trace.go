package obs

import (
	"context"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// TraceHeader is the HTTP header carrying a campaign's trace ID across
// coordinator → worker shard calls (and any other cluster RPC that wants to
// join the timeline).
const TraceHeader = "X-Pes-Trace-Id"

// MintTraceID derives the trace ID for a campaign. It is deliberately
// deterministic (FNV-64a of the campaign ID): a journal-resumed campaign
// keeps its original ID, so it also keeps its trace ID with no extra
// persistence, and the post-resume tail lands in the same timeline as the
// pre-crash prefix.
func MintTraceID(campaignID string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(campaignID))
	return strconv.FormatUint(h.Sum64(), 16)
}

// Span is one timed stage of a campaign: queue wait, dispatch, steal,
// spill-over, per-chunk simulate, solve totals. Times are microseconds since
// the Unix epoch (StartUS) and microsecond durations (DurUS) — coarse enough
// to serialize compactly, fine enough for sub-millisecond sessions.
type Span struct {
	TraceID  string `json:"trace_id"`
	Name     string `json:"name"`
	Worker   string `json:"worker,omitempty"`
	Sessions int    `json:"sessions,omitempty"`
	StartUS  int64  `json:"start_us"`
	DurUS    int64  `json:"dur_us"`
	Detail   string `json:"detail,omitempty"`
}

// Recorder accumulates the spans of one campaign. All methods are nil-safe:
// code paths that run outside a traced campaign (direct runner use,
// pes-sim, tests) pass a nil recorder and pay one branch.
type Recorder struct {
	mu      sync.Mutex
	traceID string
	spans   []Span
}

// NewRecorder returns a recorder for the given trace ID.
func NewRecorder(traceID string) *Recorder {
	return &Recorder{traceID: traceID}
}

// TraceID returns the recorder's trace ID ("" on nil).
func (r *Recorder) TraceID() string {
	if r == nil {
		return ""
	}
	return r.traceID
}

// Record appends one span, stamping the recorder's trace ID.
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s.TraceID = r.traceID
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Merge appends spans produced elsewhere (a worker's shard response),
// restamping them with the recorder's trace ID so cross-process spans join
// the same timeline even if the far side didn't know the ID.
func (r *Recorder) Merge(spans []Span) {
	if r == nil || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	for _, s := range spans {
		s.TraceID = r.traceID
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// Timeline returns a copy of the spans in canonical order: sorted by
// (StartUS, Name, Worker, DurUS, Detail). The order is a total function of
// the span set, independent of arrival order, so two timelines holding the
// same spans — e.g. one recorded live and one rebuilt across a journal
// resume — serialize byte-identically.
func (r *Recorder) Timeline() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.StartUS != b.StartUS {
			return a.StartUS < b.StartUS
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		if a.DurUS != b.DurUS {
			return a.DurUS < b.DurUS
		}
		return a.Detail < b.Detail
	})
	return out
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// traceKey is the context key for the active campaign Recorder.
type traceKey struct{}

// WithTrace attaches a recorder to a context; the cluster coordinator and
// batch runner pick it up to time their stages.
func WithTrace(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, r)
}

// TraceFrom extracts the recorder from a context (nil when untraced —
// safe to call methods on directly).
func TraceFrom(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(traceKey{}).(*Recorder)
	return r
}

// TraceIDFrom returns the trace ID on the context ("" when untraced).
func TraceIDFrom(ctx context.Context) string {
	return TraceFrom(ctx).TraceID()
}
