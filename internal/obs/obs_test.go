package obs

import (
	"bufio"
	"fmt"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pes_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("pes_test_depth", "a gauge")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var rec *Recorder
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSeconds(100)
	rec.Record(Span{Name: "x"})
	rec.Merge([]Span{{Name: "y"}})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if rec.Timeline() != nil || rec.Len() != 0 || rec.TraceID() != "" {
		t.Fatal("nil recorder must read empty")
	}
}

func TestHistogramBucketsSumToCount(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pes_test_seconds", "latency", []float64{0.001, 0.01, 0.1, 1})
	vals := []float64{0.0005, 0.001, 0.002, 0.05, 0.5, 2, 100}
	for _, v := range vals {
		h.Observe(v)
	}
	if h.Count() != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(vals))
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if math.Abs(h.Sum()-sum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), sum)
	}
	var bucketTotal int64
	for _, c := range h.BucketCounts() {
		bucketTotal += c
	}
	if bucketTotal != h.Count() {
		t.Fatalf("bucket counts sum to %d, want _count %d", bucketTotal, h.Count())
	}
	// 0.0005 and 0.001 land in le=0.001 (upper bound inclusive).
	if got := h.BucketCounts()[0]; got != 2 {
		t.Fatalf("first bucket = %d, want 2", got)
	}
	// 2 and 100 land in +Inf.
	if got := h.BucketCounts()[4]; got != 2 {
		t.Fatalf("+Inf bucket = %d, want 2", got)
	}
}

// parseExposition is a minimal Prometheus text-format 0.0.4 parser: it
// validates line grammar and returns sample name → value. It fails the test
// on any malformed line.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 4 {
				t.Fatalf("malformed comment line: %q", line)
			}
			if fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Fatalf("unknown TYPE %q in %q", fields[3], line)
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		// sample line: name{labels} value  |  name value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unbalanced label block in %q", line)
			}
			name = key[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("sample %q has no preceding # TYPE", line)
			}
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate series %q", key)
		}
		samples[key] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pes_jobs_total", "jobs", L("kind", "done"))
	c.Add(7)
	r.Counter("pes_jobs_total", "jobs", L("kind", "failed")).Add(2)
	r.GaugeFunc("pes_queue_depth", "depth", func() float64 { return 3 })
	h := r.Histogram("pes_lat_seconds", "latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := parseExposition(t, text)

	want := map[string]float64{
		`pes_jobs_total{kind="done"}`:       7,
		`pes_jobs_total{kind="failed"}`:     2,
		`pes_queue_depth`:                   3,
		`pes_lat_seconds_bucket{le="0.01"}`: 1,
		`pes_lat_seconds_bucket{le="0.1"}`:  2,
		`pes_lat_seconds_bucket{le="+Inf"}`: 3,
		`pes_lat_seconds_count`:             3,
	}
	for k, v := range want {
		if got, ok := samples[k]; !ok || got != v {
			t.Errorf("series %s = %v (present=%v), want %v\nfull exposition:\n%s", k, got, ok, v, text)
		}
	}
	if got := samples["pes_lat_seconds_sum"]; math.Abs(got-5.055) > 1e-9 {
		t.Errorf("histogram sum = %v, want 5.055", got)
	}

	// Deterministic: two scrapes are byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != text {
		t.Error("two scrapes of an unchanged registry differ")
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("invalid name", func() { NewRegistry().Counter("9bad", "") })
	expectPanic("invalid label", func() { NewRegistry().Counter("ok_total", "", L("9bad", "v")) })
	expectPanic("kind conflict", func() {
		r := NewRegistry()
		r.Counter("pes_x", "")
		r.Gauge("pes_x", "")
	})
	expectPanic("duplicate series", func() {
		r := NewRegistry()
		r.Counter("pes_x", "", L("a", "b"))
		r.Counter("pes_x", "", L("a", "b"))
	})
	expectPanic("non-ascending buckets", func() {
		NewRegistry().Histogram("pes_h", "", []float64{1, 1})
	})
}

func TestMetricsRaceClean(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pes_race_total", "")
	g := r.Gauge("pes_race_gauge", "")
	h := r.Histogram("pes_race_seconds", "", nil)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(seed*perWorker+i) * 1e-6)
			}
		}(w)
	}
	// Concurrent scrapes while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			_ = r.WritePrometheus(&b)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

// The hot-path increments must not allocate: they sit inside the
// per-session simulate path that PR 4 drove to zero allocations.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pes_alloc_total", "")
	g := r.Gauge("pes_alloc_gauge", "")
	h := r.Histogram("pes_alloc_seconds", "", nil)
	var nilC *Counter
	var nilH *Histogram

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1) }},
		{"Gauge.Add", func() { g.Add(1) }},
		{"Histogram.Observe", func() { h.Observe(0.003) }},
		{"Histogram.ObserveSeconds", func() { h.ObserveSeconds(12345) }},
		{"nil Counter.Inc", func() { nilC.Inc() }},
		{"nil Histogram.Observe", func() { nilH.Observe(1) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		7:      "7",
		-3:     "-3",
		1.5:    "1.5",
		0.0001: "0.0001",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestDebugHandlerRoutes(t *testing.T) {
	h := DebugHandler()
	if h == nil {
		t.Fatal("nil debug handler")
	}
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("GET", path, nil))
		if rw.Code != 200 {
			t.Errorf("%s: status %d, want 200", path, rw.Code)
		}
	}
}

// TestFuncMetricsThroughHandler serves a registry of sampled (func-backed)
// metrics over the HTTP handler: the closures must run at scrape time, every
// scrape, and the exposition must carry the text content type.
func TestFuncMetricsThroughHandler(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.CounterFunc("pes_func_total", "sampled counter", func() float64 {
		calls++
		return float64(calls)
	})
	r.GaugeFunc("pes_func_gauge", "sampled gauge", func() float64 { return 2.5 }, L("shard", "a"))
	h := r.Handler()
	scrape := func() string {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
		if rw.Code != 200 {
			t.Fatalf("status %d, want 200", rw.Code)
		}
		if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
		}
		return rw.Body.String()
	}
	if body := scrape(); !strings.Contains(body, "pes_func_total 1\n") {
		t.Errorf("first scrape did not sample the counter closure:\n%s", body)
	}
	body := scrape()
	if !strings.Contains(body, "pes_func_total 2\n") {
		t.Errorf("second scrape did not re-sample the counter closure:\n%s", body)
	}
	if !strings.Contains(body, `pes_func_gauge{shard="a"} 2.5`+"\n") {
		t.Errorf("labelled gauge func missing from scrape:\n%s", body)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("pes_bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00035)
	}
	if h.Count() != int64(b.N) {
		b.Fatal("count mismatch")
	}
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("pes_sessions_total", "Sessions simulated.").Add(42)
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	fmt.Print(b.String())
	// Output:
	// # HELP pes_sessions_total Sessions simulated.
	// # TYPE pes_sessions_total counter
	// pes_sessions_total 42
}
