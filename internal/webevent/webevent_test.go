package webevent

import (
	"testing"

	"repro/internal/simtime"
)

func TestQoSTargets(t *testing.T) {
	if LoadInteraction.QoSTarget() != 3*simtime.Second {
		t.Errorf("load QoS = %v, want 3s", LoadInteraction.QoSTarget())
	}
	if TapInteraction.QoSTarget() != 300*simtime.Millisecond {
		t.Errorf("tap QoS = %v, want 300ms", TapInteraction.QoSTarget())
	}
	if MoveInteraction.QoSTarget() != 33*simtime.Millisecond {
		t.Errorf("move QoS = %v, want 33ms", MoveInteraction.QoSTarget())
	}
}

func TestTypeInteractionMapping(t *testing.T) {
	cases := map[Type]Interaction{
		Load:       LoadInteraction,
		Click:      TapInteraction,
		TouchStart: TapInteraction,
		Submit:     TapInteraction,
		TouchMove:  MoveInteraction,
		Scroll:     MoveInteraction,
	}
	for typ, want := range cases {
		if got := typ.Interaction(); got != want {
			t.Errorf("%v.Interaction() = %v, want %v", typ, got, want)
		}
	}
	if !Click.IsTap() || Click.IsMove() {
		t.Error("Click should be a tap")
	}
	if !Scroll.IsMove() || Scroll.IsTap() {
		t.Error("Scroll should be a move")
	}
}

func TestParseTypeRoundTrip(t *testing.T) {
	for _, typ := range AllTypes() {
		got, err := ParseType(typ.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", typ.String(), err)
		}
		if got != typ {
			t.Errorf("round trip %v -> %v", typ, got)
		}
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Error("expected error for unknown type")
	}
}

func TestAllTypesCount(t *testing.T) {
	if len(AllTypes()) != NumTypes {
		t.Errorf("AllTypes has %d entries, NumTypes = %d", len(AllTypes()), NumTypes)
	}
	if NumInteractions != 3 {
		t.Errorf("NumInteractions = %d, want 3", NumInteractions)
	}
}

func TestEventDeadlineAndSignature(t *testing.T) {
	e := &Event{
		Seq:     4,
		App:     "cnn",
		Type:    Click,
		Trigger: simtime.Time(10 * simtime.Second),
	}
	if e.QoSTarget() != 300*simtime.Millisecond {
		t.Errorf("QoSTarget = %v", e.QoSTarget())
	}
	want := simtime.Time(10*simtime.Second + 300*simtime.Millisecond)
	if e.Deadline() != want {
		t.Errorf("Deadline = %v, want %v", e.Deadline(), want)
	}
	sig := e.Signature()
	if sig.App != "cnn" || sig.Type != Click {
		t.Errorf("Signature = %+v", sig)
	}
	if e.String() == "" {
		t.Error("String should not be empty")
	}
}

func TestQueueFIFO(t *testing.T) {
	var q Queue
	if q.Pop() != nil || q.Peek() != nil || q.Len() != 0 {
		t.Error("empty queue misbehaves")
	}
	e1 := &Event{Seq: 1}
	e2 := &Event{Seq: 2}
	e3 := &Event{Seq: 3}
	q.Push(e1)
	q.Push(e2)
	q.Push(e3)
	if q.Len() != 3 {
		t.Errorf("Len = %d", q.Len())
	}
	if q.Peek() != e1 {
		t.Error("Peek should return first event")
	}
	snap := q.Snapshot()
	if len(snap) != 3 || snap[0] != e1 || snap[2] != e3 {
		t.Error("Snapshot wrong")
	}
	if q.Pop() != e1 || q.Pop() != e2 || q.Pop() != e3 || q.Pop() != nil {
		t.Error("Pop order wrong")
	}
	// Snapshot must be a copy.
	q.Push(e1)
	s := q.Snapshot()
	s[0] = e2
	if q.Peek() != e1 {
		t.Error("Snapshot aliases queue storage")
	}
}

func TestTypeStrings(t *testing.T) {
	if Load.String() != "load" || Click.String() != "click" || Submit.String() != "submit" {
		t.Error("type names wrong")
	}
	if Type(99).String() == "" || Interaction(99).String() == "" {
		t.Error("unknown values should render something")
	}
	if LoadInteraction.String() != "load" || TapInteraction.String() != "tap" || MoveInteraction.String() != "move" {
		t.Error("interaction names wrong")
	}
	if Interaction(99).QoSTarget() != 300*simtime.Millisecond {
		t.Error("unknown interaction should default to the tap target")
	}
}
