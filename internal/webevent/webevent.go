// Package webevent defines the event vocabulary of the mobile Web runtime:
// the DOM-level event types users trigger, the three primitive interactions
// the paper schedules (load, tap, move) and their QoS targets, and the event
// instances that flow from the interaction traces into the schedulers.
package webevent

import (
	"fmt"

	"repro/internal/acmp"
	"repro/internal/simtime"
)

// Type is a DOM-level event type. Different DOM types can be manifestations
// of the same primitive interaction (e.g. click and touchstart are both
// "tap"), exactly as in the paper's interaction traces.
type Type int

const (
	// Load is the navigation/page-load event.
	Load Type = iota
	// Click is a tap delivered as a click event.
	Click
	// TouchStart is a tap delivered as a touchstart event.
	TouchStart
	// TouchMove is a move (continuous scroll/drag) delivered as touchmove.
	TouchMove
	// Scroll is a move delivered as a scroll event.
	Scroll
	// Submit is a form submission (counted as a tap interaction).
	Submit

	// NumTypes is the number of DOM-level event types; useful for building
	// per-type tables and one-vs-rest classifiers.
	NumTypes int = iota
)

// AllTypes lists every DOM-level event type in a stable order.
func AllTypes() []Type {
	return []Type{Load, Click, TouchStart, TouchMove, Scroll, Submit}
}

// String returns the DOM-ish name of the event type (e.g. "onclick").
func (t Type) String() string {
	switch t {
	case Load:
		return "load"
	case Click:
		return "click"
	case TouchStart:
		return "touchstart"
	case TouchMove:
		return "touchmove"
	case Scroll:
		return "scroll"
	case Submit:
		return "submit"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType is the inverse of Type.String. It returns an error for unknown
// names; it is used when decoding recorded traces.
func ParseType(s string) (Type, error) {
	for _, t := range AllTypes() {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("webevent: unknown event type %q", s)
}

// Interaction is one of the three primitive user interactions whose QoS
// targets the paper uses for scheduling.
type Interaction int

const (
	// LoadInteraction is a page load; QoS target 3 s.
	LoadInteraction Interaction = iota
	// TapInteraction is a discrete tap; QoS target 300 ms.
	TapInteraction
	// MoveInteraction is a continuous move/scroll step; QoS target 33 ms.
	MoveInteraction

	// NumInteractions is the number of primitive interactions.
	NumInteractions int = iota
)

// String returns the interaction name.
func (i Interaction) String() string {
	switch i {
	case LoadInteraction:
		return "load"
	case TapInteraction:
		return "tap"
	case MoveInteraction:
		return "move"
	default:
		return fmt.Sprintf("Interaction(%d)", int(i))
	}
}

// QoSTarget returns the maximally tolerable event latency for the
// interaction: 3 s for loads, 300 ms for taps, and 33 ms for moves
// (Sec. 4.2 of the paper).
func (i Interaction) QoSTarget() simtime.Duration {
	switch i {
	case LoadInteraction:
		return 3 * simtime.Second
	case TapInteraction:
		return 300 * simtime.Millisecond
	case MoveInteraction:
		return 33 * simtime.Millisecond
	default:
		return 300 * simtime.Millisecond
	}
}

// Interaction maps a DOM-level event type to its primitive interaction.
func (t Type) Interaction() Interaction {
	switch t {
	case Load:
		return LoadInteraction
	case Click, TouchStart, Submit:
		return TapInteraction
	case TouchMove, Scroll:
		return MoveInteraction
	default:
		return TapInteraction
	}
}

// QoSTarget is shorthand for t.Interaction().QoSTarget().
func (t Type) QoSTarget() simtime.Duration { return t.Interaction().QoSTarget() }

// IsTap reports whether the event type is a manifestation of the tap
// interaction.
func (t Type) IsTap() bool { return t.Interaction() == TapInteraction }

// IsMove reports whether the event type is a manifestation of the move
// interaction.
func (t Type) IsMove() bool { return t.Interaction() == MoveInteraction }

// NodeKind mirrors dom.NodeKind as an opaque small integer so that the event
// package does not depend on the DOM package (the DOM package depends on
// webevent for listener registration). It is used only as part of the cost
// model signature.
type NodeKind int

// Event is one event instance in an interaction trace.
type Event struct {
	// Seq is the position of the event within its trace (0-based).
	Seq int
	// App is the application the event belongs to.
	App string
	// Type is the DOM-level event type.
	Type Type
	// Trigger is the instant the user input that generates the event occurs.
	Trigger simtime.Time
	// Target is the DOM node the event is delivered to (0 for load events).
	Target int
	// TargetKind is the kind of the target node; it is part of the cost
	// model signature because e.g. menu-toggle clicks cost more than link
	// clicks.
	TargetKind NodeKind
	// Work is the ground-truth hardware workload of the event's callback and
	// rendering work. Schedulers never read this directly; they only observe
	// realized latencies.
	Work acmp.Workload
	// ViewportY is the vertical position (fraction of page height, 0–1) of
	// the viewport when the event is triggered; used by the feature
	// extractor for the "distance to previous click" feature.
	ViewportY float64
	// Navigation marks a tap that triggers a page navigation; the next event
	// in the trace will be the resulting Load.
	Navigation bool
}

// QoSTarget returns the deadline duration for this event.
func (e *Event) QoSTarget() simtime.Duration { return e.Type.QoSTarget() }

// Deadline returns the absolute instant by which the event's frame must be
// on screen to satisfy its QoS target.
func (e *Event) Deadline() simtime.Time { return e.Trigger.Add(e.QoSTarget()) }

// Signature identifies a class of events for the purposes of the cost model:
// events from the same application with the same type and target kind are
// assumed to have similar Tmem/Ndep, mirroring the paper's per-event-type
// latency measurement.
type Signature struct {
	App        string
	Type       Type
	TargetKind NodeKind
}

// Signature returns the cost model signature of the event.
func (e *Event) Signature() Signature {
	return Signature{App: e.App, Type: e.Type, TargetKind: e.TargetKind}
}

// String renders a compact human-readable description of the event.
func (e *Event) String() string {
	return fmt.Sprintf("#%d %s %s @%s", e.Seq, e.App, e.Type, e.Trigger)
}

// Queue is a FIFO of outstanding events (triggered but not yet executed).
// The paper observes the queue is almost always short (< 2) because humans
// generate events slowly, but bursts do occur and produce the interference
// the proactive scheduler exploits.
type Queue struct {
	events []*Event
}

// Push appends an event to the back of the queue.
func (q *Queue) Push(e *Event) { q.events = append(q.events, e) }

// Pop removes and returns the front event, or nil when the queue is empty.
func (q *Queue) Pop() *Event {
	if len(q.events) == 0 {
		return nil
	}
	e := q.events[0]
	q.events = q.events[1:]
	return e
}

// Peek returns the front event without removing it, or nil when empty.
func (q *Queue) Peek() *Event {
	if len(q.events) == 0 {
		return nil
	}
	return q.events[0]
}

// Len returns the number of outstanding events.
func (q *Queue) Len() int { return len(q.events) }

// Snapshot returns a copy of the queue contents front-to-back.
func (q *Queue) Snapshot() []*Event {
	out := make([]*Event, len(q.events))
	copy(out, q.events)
	return out
}
