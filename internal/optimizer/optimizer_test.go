package optimizer

import (
	"testing"

	"repro/internal/acmp"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

func sig(app string, typ webevent.Type) webevent.Signature {
	return webevent.Signature{App: app, Type: typ}
}

func TestEstimateDefaultsBeforeObservations(t *testing.T) {
	p := acmp.Exynos5410()
	c := NewCostModel(p)
	w, measured := c.Estimate(sig("cnn", webevent.Click))
	if measured {
		t.Error("estimate should be a default before any observation")
	}
	if w.Cycles <= 0 {
		t.Error("default workload should be non-trivial")
	}
	if c.Observations(sig("cnn", webevent.Click)) != 0 {
		t.Error("no observations expected")
	}
}

func TestCostModelRecoversWorkloadFromTwoFrequencies(t *testing.T) {
	p := acmp.Exynos5410()
	c := NewCostModel(p)
	truth := acmp.Workload{Tmem: 20 * simtime.Millisecond, Cycles: 360e6}
	s := sig("cnn", webevent.Click)
	cfg1 := acmp.Config{Core: acmp.BigCore, FreqMHz: 1000}
	cfg2 := acmp.Config{Core: acmp.BigCore, FreqMHz: 1800}
	c.Observe(s, cfg1, p.Latency(truth, cfg1))
	c.Observe(s, cfg2, p.Latency(truth, cfg2))
	w, measured := c.Estimate(s)
	if !measured {
		t.Fatal("estimate should be measurement-based after two observations")
	}
	if relErr(float64(w.Tmem), float64(truth.Tmem)) > 0.1 {
		t.Errorf("Tmem estimate %v vs truth %v", w.Tmem, truth.Tmem)
	}
	if relErr(float64(w.Cycles), float64(truth.Cycles)) > 0.1 {
		t.Errorf("Cycles estimate %v vs truth %v", w.Cycles, truth.Cycles)
	}
	// Predicted latency at a third frequency should be close to the truth.
	cfg3 := acmp.Config{Core: acmp.LittleCore, FreqMHz: 600}
	pred := c.PredictLatency(s, cfg3)
	actual := p.Latency(truth, cfg3)
	if relErr(float64(pred), float64(actual)) > 0.12 {
		t.Errorf("predicted latency %v vs actual %v", pred, actual)
	}
}

func TestCostModelWithoutFrequencyDiversity(t *testing.T) {
	p := acmp.Exynos5410()
	c := NewCostModel(p)
	truth := acmp.Workload{Tmem: 10 * simtime.Millisecond, Cycles: 200e6}
	s := sig("bbc", webevent.Click)
	cfg := acmp.Config{Core: acmp.BigCore, FreqMHz: 1200}
	c.Observe(s, cfg, p.Latency(truth, cfg))
	c.Observe(s, cfg, p.Latency(truth, cfg))
	w, measured := c.Estimate(s)
	if !measured {
		t.Fatal("should be measurement-based")
	}
	// Same-frequency observations cannot separate Tmem and Ndep, but the
	// reconstructed latency at the observed frequency must match.
	if relErr(float64(p.Latency(w, cfg)), float64(p.Latency(truth, cfg))) > 0.05 {
		t.Errorf("reconstructed latency %v vs truth %v", p.Latency(w, cfg), p.Latency(truth, cfg))
	}
}

func TestObservationWindowBounded(t *testing.T) {
	p := acmp.Exynos5410()
	c := NewCostModel(p)
	s := sig("msn", webevent.Scroll)
	cfg := p.MaxPerformance()
	for i := 0; i < 30; i++ {
		c.Observe(s, cfg, 10*simtime.Millisecond)
	}
	if got := c.Observations(s); got != maxObservations {
		t.Errorf("observations = %d, want %d", got, maxObservations)
	}
}

func TestPickMinEnergyConfig(t *testing.T) {
	p := acmp.Exynos5410()
	c := NewCostModel(p)
	truth := acmp.Workload{Tmem: 2 * simtime.Millisecond, Cycles: 8e6}
	s := sig("cnn", webevent.Scroll)
	cfg1 := acmp.Config{Core: acmp.BigCore, FreqMHz: 800}
	cfg2 := acmp.Config{Core: acmp.BigCore, FreqMHz: 1800}
	c.Observe(s, cfg1, p.Latency(truth, cfg1))
	c.Observe(s, cfg2, p.Latency(truth, cfg2))

	// Plenty of budget: a light scroll should land on the little cluster.
	pick := c.PickMinEnergyConfig(s, 0, simtime.Time(60*simtime.Millisecond))
	if pick.Core != acmp.LittleCore {
		t.Errorf("light event with budget should use the little core, got %v", pick)
	}
	// Impossible budget: must fall back to maximum performance.
	heavy := sig("cnn", webevent.Load)
	pick = c.PickMinEnergyConfig(heavy, 0, simtime.Time(5*simtime.Millisecond))
	if pick != p.MaxPerformance() {
		t.Errorf("impossible deadline should pick max performance, got %v", pick)
	}
	// The chosen config meets the deadline per the model's own estimate.
	pick = c.PickMinEnergyConfig(s, 0, simtime.Time(100*simtime.Millisecond))
	if c.PredictLatency(s, pick) > 100*simtime.Millisecond {
		t.Error("chosen config should meet the deadline per the model")
	}
}

func TestScheduleCoordinatesAcrossEvents(t *testing.T) {
	p := acmp.Exynos5410()
	c := NewCostModel(p)
	opt := New(p, c)

	// Teach the cost model two signatures with known workloads.
	tapSig := sig("cnn", webevent.Click)
	tapWork := acmp.Workload{Tmem: 15 * simtime.Millisecond, Cycles: 300e6}
	loadSig := sig("cnn", webevent.Load)
	loadWork := acmp.Workload{Tmem: 250 * simtime.Millisecond, Cycles: 2500e6}
	for _, cfg := range []acmp.Config{{Core: acmp.BigCore, FreqMHz: 1000}, {Core: acmp.BigCore, FreqMHz: 1800}} {
		c.Observe(tapSig, cfg, p.Latency(tapWork, cfg))
		c.Observe(loadSig, cfg, p.Latency(loadWork, cfg))
	}

	// A tap due soon followed by a predicted load: the schedule must meet
	// both deadlines and assign some configuration to each.
	tasks := []*Task{
		{Signature: tapSig, Type: webevent.Click, ExpectedTrigger: 0,
			Deadline: simtime.Time(300 * simtime.Millisecond)},
		{Signature: loadSig, Type: webevent.Load, ExpectedTrigger: simtime.Time(500 * simtime.Millisecond),
			Deadline: simtime.Time(3500 * simtime.Millisecond), Predicted: true},
	}
	feasible := opt.Schedule(0, tasks)
	if !feasible {
		t.Error("schedule should be feasible")
	}
	for i, task := range tasks {
		if task.Config.IsZero() {
			t.Fatalf("task %d has no configuration", i)
		}
		if task.EstimatedLatency <= 0 {
			t.Fatalf("task %d has no latency estimate", i)
		}
	}
	if st := opt.Stats(); st.Solves != 1 || st.Nodes <= 0 {
		t.Errorf("solver statistics not recorded: %+v", st)
	}
	if opt.Cost() != c {
		t.Error("Cost() should expose the cost model")
	}
	// An empty schedule is trivially feasible.
	if !opt.Schedule(0, nil) {
		t.Error("empty schedule should be feasible")
	}

	// Re-planning the identical horizon with no cost-model update in
	// between must come from the plan cache — no new solve — and must
	// install the identical assignment.
	want := []acmp.Config{tasks[0].Config, tasks[1].Config}
	for i := range tasks {
		tasks[i].Config = acmp.Config{}
		tasks[i].EstimatedLatency = 0
	}
	if !opt.Schedule(0, tasks) {
		t.Error("cached schedule should be feasible")
	}
	st := opt.Stats()
	if st.Solves != 1 || st.PlanCacheHits != 1 {
		t.Errorf("repeat Schedule should hit the plan cache: %+v", st)
	}
	for i := range tasks {
		if tasks[i].Config != want[i] {
			t.Errorf("task %d: cached config %v, want %v", i, tasks[i].Config, want[i])
		}
		if tasks[i].EstimatedLatency <= 0 {
			t.Errorf("task %d: cached plan lost the latency estimate", i)
		}
	}

	// A cost-model observation invalidates the cache: the same horizon
	// solves again.
	c.Observe(tapSig, p.MaxPerformance(), p.Latency(tapWork, p.MaxPerformance()))
	opt.Schedule(0, tasks)
	if st := opt.Stats(); st.Solves != 2 || st.PlanCacheHits != 1 {
		t.Errorf("cost-model revision should invalidate the plan cache: %+v", st)
	}

	// ResetPlanCache forces the next identical horizon to solve again.
	opt.ResetPlanCache()
	opt.Schedule(0, tasks)
	if st := opt.Stats(); st.Solves != 3 {
		t.Errorf("ResetPlanCache should force a fresh solve: %+v", st)
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	d := (a - b) / b
	if d < 0 {
		d = -d
	}
	return d
}
