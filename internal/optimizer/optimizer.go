// Package optimizer implements the energy/QoS optimizer of PES: the latency
// cost model based on the classical DVFS law T = Tmem + Ndep/f (Eqn. 1), the
// power look-up table exposed by the ACMP platform, and the construction of
// the constrained-optimization problem (Eqn. 5) whose solution is the
// speculative schedule. The same cost model also powers the reactive EBS
// baseline's per-event configuration choice.
package optimizer

import (
	"strconv"
	"time"

	"repro/internal/acmp"
	"repro/internal/ilp"
	"repro/internal/render"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

// maxObservations bounds the per-signature history kept by the cost model.
const maxObservations = 8

// obsPoint is one latency observation: the effective frequency (MHz divided
// by the core's CPI factor) and the observed execution latency.
type obsPoint struct {
	effFreq float64
	latency float64 // µs
}

// CostModel estimates event workloads (Tmem, Ndep) from observed execution
// latencies, exactly as the paper does: once an event signature has been
// observed under two different (effective) frequencies, the two-unknown
// system of Eqn. 1 is solved; with more observations a least-squares fit is
// used; before that, conservative per-interaction defaults apply.
type CostModel struct {
	platform *acmp.Platform
	obs      map[webevent.Signature][]obsPoint
	defaults map[webevent.Interaction]acmp.Workload

	// rev counts Observe calls. Every observation can shift the workload
	// estimate of its signature and therefore the latency/energy choices of
	// any problem mentioning it; the optimizer's plan cache is valid only
	// while the revision it was filled under is current.
	rev int

	// est memoizes the workload estimate per signature at the current
	// revision. Solving one plan evaluates every signature against every
	// platform configuration; without the memo each of those evaluations
	// redoes the least-squares fit.
	est map[webevent.Signature]estEntry
}

// estEntry is one memoized workload estimate.
type estEntry struct {
	rev      int
	w        acmp.Workload
	measured bool
}

// NewCostModel creates a cost model for the platform.
func NewCostModel(p *acmp.Platform) *CostModel {
	return &CostModel{
		platform: p,
		obs:      make(map[webevent.Signature][]obsPoint),
		est:      make(map[webevent.Signature]estEntry),
		defaults: map[webevent.Interaction]acmp.Workload{
			// Conservative (heavier-than-typical) priors so that unknown
			// events are provisioned generously rather than missing QoS.
			webevent.LoadInteraction: {Tmem: 380 * simtime.Millisecond, Cycles: 4400e6},
			webevent.TapInteraction:  {Tmem: 26 * simtime.Millisecond, Cycles: 520e6},
			webevent.MoveInteraction: {Tmem: 3 * simtime.Millisecond, Cycles: 18e6},
		},
	}
}

// effFreq returns the CPI-adjusted frequency of a configuration, so that
// latency = Tmem + Cycles/effFreq holds across core types.
func (c *CostModel) effFreq(cfg acmp.Config) float64 {
	return float64(cfg.FreqMHz) / c.platform.Cluster(cfg.Core).CPI
}

// Observe records a completed execution of an event with the given signature
// on cfg.
func (c *CostModel) Observe(sig webevent.Signature, cfg acmp.Config, execLatency simtime.Duration) {
	pts := append(c.obs[sig], obsPoint{effFreq: c.effFreq(cfg), latency: float64(execLatency)})
	if len(pts) > maxObservations {
		pts = pts[len(pts)-maxObservations:]
	}
	c.obs[sig] = pts
	c.rev++
}

// Observations returns how many latency samples the model holds for the
// signature.
func (c *CostModel) Observations(sig webevent.Signature) int { return len(c.obs[sig]) }

// Estimate returns the estimated workload for the signature and whether the
// estimate comes from measurements (true) or from the per-interaction
// default (false). Estimates are memoized per cost-model revision: the
// underlying fit only changes when Observe records a new sample.
func (c *CostModel) Estimate(sig webevent.Signature) (acmp.Workload, bool) {
	if e, ok := c.est[sig]; ok && e.rev == c.rev {
		return e.w, e.measured
	}
	w, measured := c.estimate(sig)
	c.est[sig] = estEntry{rev: c.rev, w: w, measured: measured}
	return w, measured
}

// estimate computes the estimate afresh (the uncached path of Estimate).
func (c *CostModel) estimate(sig webevent.Signature) (acmp.Workload, bool) {
	pts := c.obs[sig]
	if len(pts) == 0 {
		return c.defaults[sig.Type.Interaction()], false
	}
	// Check whether we have frequency diversity; without it Tmem and Ndep
	// cannot be separated and a fixed memory share is assumed.
	distinct := false
	for _, p := range pts[1:] {
		if p.effFreq != pts[0].effFreq {
			distinct = true
			break
		}
	}
	if !distinct || len(pts) < 2 {
		// Assume the interaction-typical memory share of the latency.
		share := 0.15
		if sig.Type.Interaction() == webevent.LoadInteraction {
			share = 0.20
		}
		mean := 0.0
		meanF := 0.0
		for _, p := range pts {
			mean += p.latency
			meanF += p.effFreq
		}
		mean /= float64(len(pts))
		meanF /= float64(len(pts))
		return acmp.Workload{
			Tmem:   simtime.Duration(mean * share),
			Cycles: int64(mean * (1 - share) * meanF),
		}, true
	}
	// Least-squares fit of latency = Tmem + Cycles * (1/effFreq).
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x := 1 / p.effFreq
		sx += x
		sy += p.latency
		sxx += x * x
		sxy += x * p.latency
	}
	n := float64(len(pts))
	den := n*sxx - sx*sx
	if den == 0 {
		return c.defaults[sig.Type.Interaction()], false
	}
	cycles := (n*sxy - sx*sy) / den
	tmem := (sy - cycles*sx) / n
	if cycles < 0 {
		cycles = 0
	}
	if tmem < 0 {
		tmem = 0
	}
	return acmp.Workload{Tmem: simtime.Duration(tmem), Cycles: int64(cycles)}, true
}

// PredictLatency estimates the execution latency of an event with the given
// signature on cfg.
func (c *CostModel) PredictLatency(sig webevent.Signature, cfg acmp.Config) simtime.Duration {
	w, _ := c.Estimate(sig)
	return c.platform.Latency(w, cfg)
}

// PredictEnergy estimates the active energy (mJ) of executing the signature
// on cfg.
func (c *CostModel) PredictEnergy(sig webevent.Signature, cfg acmp.Config) float64 {
	return acmp.EnergyMJ(c.platform.Power(cfg), c.PredictLatency(sig, cfg))
}

// PickMinEnergyConfig returns the minimum-energy configuration whose
// predicted latency meets the deadline when execution starts at start; when
// no configuration can meet the deadline (a Type I event or a very late
// start) the maximum-performance configuration is returned. This is the
// per-event decision rule of the reactive EBS scheduler. The deadline is
// tightened by the display-submission margin so that frames also reach the
// screen in time.
func (c *CostModel) PickMinEnergyConfig(sig webevent.Signature, start simtime.Time, deadline simtime.Time) acmp.Config {
	budget := deadline.Sub(start) - render.DisplayMargin
	best := acmp.Config{}
	bestEnergy := 0.0
	for _, cfg := range c.platform.Configs() {
		lat := c.PredictLatency(sig, cfg)
		if simtime.Duration(lat) > budget {
			continue
		}
		e := acmp.EnergyMJ(c.platform.Power(cfg), lat)
		if best.IsZero() || e < bestEnergy {
			best, bestEnergy = cfg, e
		}
	}
	if best.IsZero() {
		return c.platform.MaxPerformance()
	}
	return best
}

// Task is one entry of a speculative schedule: either an outstanding actual
// event or a predicted future event, with the configuration the optimizer
// assigned to it.
type Task struct {
	// Event is the outstanding actual event, or nil for a predicted event.
	Event *webevent.Event
	// Type is the event type (for predicted events).
	Type webevent.Type
	// Signature keys the cost model.
	Signature webevent.Signature
	// ExpectedTrigger is when the event is (expected to be) triggered.
	ExpectedTrigger simtime.Time
	// Deadline is the absolute QoS deadline used in the optimization.
	Deadline simtime.Time
	// Config is the assigned ACMP configuration (filled by Schedule).
	Config acmp.Config
	// EstimatedLatency is the cost model's latency estimate under Config.
	EstimatedLatency simtime.Duration
	// Predicted marks speculative (not yet triggered) tasks.
	Predicted bool
}

// SolverStats aggregates the constrained-optimization work of one scheduler
// instance (and, summed, of whole sessions, batches, and campaigns): how
// many solves ran, how much search they did, how many solves the plan cache
// absorbed, and the wall-clock time spent inside the solver. The counters
// other than WallNS are fully deterministic for a deterministic simulation.
type SolverStats struct {
	// Solves counts ilp.Solve invocations (plan-cache misses included,
	// cache hits excluded).
	Solves int `json:"solves"`
	// Nodes sums the branch-and-bound candidates explored across solves.
	Nodes int64 `json:"nodes"`
	// PlanCacheHits counts Schedule calls answered from the plan cache
	// without solving.
	PlanCacheHits int `json:"plan_cache_hits"`
	// BudgetAborts counts solves that exhausted the branch-and-bound node
	// budget, returning a traversal artifact instead of a proven optimum.
	// Zero on the PES path and on Oracle v2's fast-path windows; Oracle v1's
	// hardest windows abort by design (that is what pins its figures).
	BudgetAborts int `json:"budget_aborts"`
	// WallNS is the wall-clock time spent inside ilp.Solve, in nanoseconds.
	// It is a host measurement: the one non-deterministic field.
	WallNS int64 `json:"wall_ns"`
}

// Add returns the element-wise sum of two stat records.
func (s SolverStats) Add(o SolverStats) SolverStats {
	return SolverStats{
		Solves:        s.Solves + o.Solves,
		Nodes:         s.Nodes + o.Nodes,
		PlanCacheHits: s.PlanCacheHits + o.PlanCacheHits,
		BudgetAborts:  s.BudgetAborts + o.BudgetAborts,
		WallNS:        s.WallNS + o.WallNS,
	}
}

// cachedPlan is one memoized solve: the chosen indices into the platform's
// configuration list plus the solution's feasibility verdict.
type cachedPlan struct {
	choice   []int
	feasible bool
}

// maxCachedPlans bounds the plan cache between invalidations; the cache is
// cleared wholesale whenever the cost model learns, so the bound only
// matters for pathological no-observation workloads.
const maxCachedPlans = 256

// Optimizer assembles and solves the constrained optimization problem over
// outstanding plus predicted events. It is incremental: solved plans are
// memoized in a cache keyed by a fingerprint of the problem — the start
// time and every task's (signature, deadline) — and invalidated when the
// cost model's revision moves, so re-planning over an unchanged horizon
// (e.g. after a correct prediction confirmed the standing plan) reuses the
// standing assignment instead of re-solving.
type Optimizer struct {
	platform *acmp.Platform
	cost     *CostModel

	stats SolverStats

	// plans is the plan cache; planRev is the cost-model revision its
	// entries were computed under.
	plans   map[string]cachedPlan
	planRev int

	// Reusable solve buffers: the plan-key bytes, the problem's item list,
	// and one flat backing array for all items' choice lists. ilp.Solve does
	// not retain the problem, and an Optimizer belongs to one scheduler
	// instance (single goroutine), so recycling them across solves is safe.
	keyBuf    []byte
	itemsBuf  []ilp.Item
	choiceBuf []ilp.Choice
}

// New creates an optimizer using the given cost model.
func New(p *acmp.Platform, cost *CostModel) *Optimizer {
	return &Optimizer{platform: p, cost: cost, plans: make(map[string]cachedPlan)}
}

// Cost exposes the cost model (shared with the EBS fallback path).
func (o *Optimizer) Cost() *CostModel { return o.cost }

// Stats returns the accumulated solver statistics.
func (o *Optimizer) Stats() SolverStats { return o.stats }

// ResetPlanCache drops every memoized plan. Benchmarks and the overhead
// table use it to measure the raw solve path; production code never needs
// it (the cache self-invalidates on cost-model revisions).
func (o *Optimizer) ResetPlanCache() {
	clear(o.plans)
}

// appendPlanKey fingerprints a Schedule call into buf. Two calls with equal
// keys under the same cost-model revision build the identical ilp.Problem —
// the choice set of a task is a pure function of (signature, cost model,
// platform), and the chain constraints are a pure function of (start,
// deadlines) — so the memoized assignment is exactly what ilp.Solve would
// return. The key spells out the full (outstanding events + predicted
// suffix, deadlines) contents rather than hashing them, so a collision
// cannot silently corrupt a plan. Appending into a reusable buffer keeps the
// cache-hit fast path allocation-free (map lookup by string(buf) does not
// copy).
func appendPlanKey(buf []byte, start simtime.Time, tasks []*Task) []byte {
	buf = strconv.AppendInt(buf, int64(start), 10)
	for _, t := range tasks {
		buf = append(buf, '|')
		buf = append(buf, t.Signature.App...)
		buf = append(buf, '/')
		buf = strconv.AppendInt(buf, int64(t.Signature.Type), 10)
		buf = append(buf, '/')
		buf = strconv.AppendInt(buf, int64(t.Signature.TargetKind), 10)
		buf = append(buf, '@')
		buf = strconv.AppendInt(buf, int64(t.Deadline), 10)
	}
	return buf
}

// Schedule assigns a configuration to every task such that the total
// predicted energy is minimized while each task finishes by its deadline
// when execution starts at start (Eqn. 5). Infeasible deadlines (Type I
// events) are met as early as possible. It returns whether all original
// deadlines are predicted to be met.
//
// A repeated horizon (same start, same task signatures and deadlines, no
// cost-model update in between) is answered from the plan cache without
// solving; the applied assignment is identical either way.
func (o *Optimizer) Schedule(start simtime.Time, tasks []*Task) bool {
	if len(tasks) == 0 {
		return true
	}
	if o.planRev != o.cost.rev {
		clear(o.plans)
		o.planRev = o.cost.rev
	}
	configs := o.platform.Configs()
	o.keyBuf = appendPlanKey(o.keyBuf[:0], start, tasks)
	if plan, ok := o.plans[string(o.keyBuf)]; ok {
		o.stats.PlanCacheHits++
		o.apply(tasks, plan.choice, configs)
		return plan.feasible
	}

	// Build the problem on the reusable buffers: one Item per task, all
	// choice lists carved out of one flat backing array.
	nc := len(configs)
	if cap(o.itemsBuf) < len(tasks) {
		o.itemsBuf = make([]ilp.Item, 0, 2*len(tasks))
	}
	if cap(o.choiceBuf) < len(tasks)*nc {
		o.choiceBuf = make([]ilp.Choice, 2*len(tasks)*nc)
	}
	prob := ilp.Problem{Start: start, Items: o.itemsBuf[:0]}
	for ti, t := range tasks {
		choices := o.choiceBuf[ti*nc : ti*nc : (ti+1)*nc]
		for _, cfg := range configs {
			lat := o.cost.PredictLatency(t.Signature, cfg)
			choices = append(choices, ilp.Choice{
				Latency: lat,
				Energy:  acmp.EnergyMJ(o.platform.Power(cfg), lat),
			})
		}
		prob.Items = append(prob.Items, ilp.Item{
			Deadline: t.Deadline.Add(-render.DisplayMargin),
			Choices:  choices,
		})
	}
	begun := time.Now()
	sol := ilp.Solve(prob)
	o.stats.WallNS += time.Since(begun).Nanoseconds()
	o.stats.Solves++
	o.stats.Nodes += int64(sol.Nodes)
	if sol.Aborted() {
		o.stats.BudgetAborts++
	}
	if len(o.plans) < maxCachedPlans {
		o.plans[string(o.keyBuf)] = cachedPlan{choice: sol.Choice, feasible: sol.Feasible}
	}
	o.apply(tasks, sol.Choice, configs)
	return sol.Feasible
}

// apply installs a solve's choice indices onto the tasks.
func (o *Optimizer) apply(tasks []*Task, choice []int, configs []acmp.Config) {
	for i, t := range tasks {
		cfg := configs[choice[i]]
		t.Config = cfg
		t.EstimatedLatency = o.cost.PredictLatency(t.Signature, cfg)
	}
}
