// Package simtime defines the time base shared by every component of the
// PES reproduction.
//
// The simulated clock is an integer count of microseconds since the start of
// a simulation run. Microsecond resolution is fine enough to express the
// paper's DVFS transition overhead (100 µs) and core-migration overhead
// (20 µs) exactly, while keeping all arithmetic in integers so that results
// are bit-reproducible across platforms.
package simtime

import (
	"fmt"
	"time"
)

// Time is an instant on the simulated clock, measured in microseconds since
// the beginning of the simulation run. The zero value is the start of the
// run.
type Time int64

// Duration is a span of simulated time in microseconds.
type Duration int64

// Convenient duration units.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Never is a sentinel instant that is later than any instant produced during
// a simulation. It is used for "no deadline" and "not scheduled" markers.
const Never Time = 1<<63 - 1

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Micros returns the instant as a raw microsecond count.
func (t Time) Micros() int64 { return int64(t) }

// Millis returns the instant expressed in (possibly fractional) milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e3 }

// Seconds returns the instant expressed in (possibly fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// String renders the instant as a duration since the start of the run.
func (t Time) String() string { return Duration(t).String() }

// Micros returns the duration as a raw microsecond count.
func (d Duration) Micros() int64 { return int64(d) }

// Millis returns the duration in (possibly fractional) milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e3 }

// Seconds returns the duration in (possibly fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e6 }

// Std converts the simulated duration into a time.Duration for interfacing
// with the standard library (primarily in tests and benchmark reporting).
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Microsecond }

// String renders the duration using the most natural unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Millisecond:
		return fmt.Sprintf("%dµs", int64(d))
	case d < Second:
		return fmt.Sprintf("%.3gms", d.Millis())
	default:
		return fmt.Sprintf("%.4gs", d.Seconds())
	}
}

// FromMillis converts a millisecond count into a Duration, rounding to the
// nearest microsecond.
func FromMillis(ms float64) Duration { return Duration(ms*1e3 + 0.5) }

// FromSeconds converts a second count into a Duration, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Duration { return Duration(s*1e6 + 0.5) }

// Max returns the later of two instants.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of two instants.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxDuration returns the longer of two durations.
func MaxDuration(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MinDuration returns the shorter of two durations.
func MinDuration(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}
