package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestUnits(t *testing.T) {
	if Millisecond != 1000 {
		t.Fatalf("Millisecond = %d, want 1000", Millisecond)
	}
	if Second != 1000000 {
		t.Fatalf("Second = %d, want 1e6", Second)
	}
}

func TestTimeArithmetic(t *testing.T) {
	var start Time
	end := start.Add(250 * Millisecond)
	if got := end.Sub(start); got != 250*Millisecond {
		t.Errorf("Sub = %v, want 250ms", got)
	}
	if !start.Before(end) {
		t.Error("start should be before end")
	}
	if !end.After(start) {
		t.Error("end should be after start")
	}
	if end.Millis() != 250 {
		t.Errorf("Millis = %v, want 250", end.Millis())
	}
	if end.Seconds() != 0.25 {
		t.Errorf("Seconds = %v, want 0.25", end.Seconds())
	}
}

func TestConversions(t *testing.T) {
	if FromMillis(33.0) != 33*Millisecond {
		t.Errorf("FromMillis(33) = %v", FromMillis(33.0))
	}
	if FromSeconds(3.0) != 3*Second {
		t.Errorf("FromSeconds(3) = %v", FromSeconds(3.0))
	}
	if d := FromMillis(0.5); d != 500 {
		t.Errorf("FromMillis(0.5) = %v, want 500µs", d)
	}
	if got := (2 * Millisecond).Std(); got != 2*time.Millisecond {
		t.Errorf("Std = %v, want 2ms", got)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500µs"},
		{33 * Millisecond, "33ms"},
		{3 * Second, "3s"},
		{-250, "-250µs"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	a, b := Time(10), Time(20)
	if Max(a, b) != b || Max(b, a) != b {
		t.Error("Max wrong")
	}
	if Min(a, b) != a || Min(b, a) != a {
		t.Error("Min wrong")
	}
	if MaxDuration(3, 7) != 7 || MinDuration(3, 7) != 3 {
		t.Error("duration min/max wrong")
	}
}

func TestNeverIsLate(t *testing.T) {
	huge := Time(0).Add(FromSeconds(1e6))
	if !Never.After(huge) {
		t.Error("Never should exceed any practical instant")
	}
}

// Property: Add and Sub are inverses for any in-range pair.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(base int32, delta int32) bool {
		tm := Time(base)
		d := Duration(delta)
		return tm.Add(d).Sub(tm) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Max/Min ordering invariants.
func TestMinMaxProperties(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Time(a), Time(b)
		return Max(x, y) >= Min(x, y) && (Max(x, y) == x || Max(x, y) == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
