// Package acmp models the Asymmetric Chip-Multiprocessor (ACMP) hardware
// substrate that the PES paper schedules onto.
//
// The model captures exactly the properties the schedulers in the paper care
// about:
//
//   - two heterogeneous core clusters (an out-of-order "big" cluster and an
//     in-order "little" cluster), each with a discrete DVFS frequency ladder;
//   - a per-<core, frequency> active power look-up table, mirroring the
//     offline-measured power model the paper persists to a local file;
//   - the classical DVFS latency law T = Tmem + Ndep/f (Eqn. 1), with an
//     additional per-core CPI factor expressing that an in-order core needs
//     more cycles for the same event work;
//   - the DVFS transition (100 µs) and core-migration (20 µs) overheads the
//     paper charges when the configuration changes.
//
// Two platforms are provided: the Exynos 5410 (ODROID XU+E, the paper's
// primary platform) and the NVIDIA TX2 "Parker" SoC used in the paper's
// "other devices" sensitivity study.
package acmp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/simtime"
)

// CoreType identifies one of the two heterogeneous clusters of an ACMP.
type CoreType int

const (
	// LittleCore is the low-performance, energy-conserving in-order cluster
	// (Cortex-A7 on the Exynos 5410).
	LittleCore CoreType = iota
	// BigCore is the high-performance, energy-hungry out-of-order cluster
	// (Cortex-A15 on the Exynos 5410).
	BigCore
)

// String returns the conventional big.LITTLE name of the core type.
func (c CoreType) String() string {
	switch c {
	case LittleCore:
		return "little"
	case BigCore:
		return "big"
	default:
		return fmt.Sprintf("CoreType(%d)", int(c))
	}
}

// Config is one point in the ACMP scheduling space: a <core, frequency>
// tuple, exactly the decision variable of the paper's optimizer.
type Config struct {
	Core    CoreType
	FreqMHz int
}

// String renders the configuration as e.g. "big@1800MHz".
func (c Config) String() string { return fmt.Sprintf("%s@%dMHz", c.Core, c.FreqMHz) }

// IsZero reports whether the configuration is the zero value (no assignment).
func (c Config) IsZero() bool { return c.FreqMHz == 0 }

// Cluster describes one core cluster: its frequency ladder, its active power
// at each frequency, and its CPI factor relative to the big out-of-order
// core (an in-order core retires the same event work in more cycles).
type Cluster struct {
	Core     CoreType
	FreqsMHz []int           // ascending DVFS ladder
	PowerMW  map[int]float64 // active power (mW) per frequency while executing
	CPI      float64         // cycle multiplier relative to the big core
}

// MinFreq returns the lowest frequency of the cluster.
func (cl *Cluster) MinFreq() int { return cl.FreqsMHz[0] }

// MaxFreq returns the highest frequency of the cluster.
func (cl *Cluster) MaxFreq() int { return cl.FreqsMHz[len(cl.FreqsMHz)-1] }

// HasFreq reports whether f is a valid operating point of the cluster.
func (cl *Cluster) HasFreq(f int) bool {
	for _, x := range cl.FreqsMHz {
		if x == f {
			return true
		}
	}
	return false
}

// ClosestFreqAtLeast returns the lowest ladder frequency ≥ f, or the maximum
// frequency when f exceeds the ladder.
func (cl *Cluster) ClosestFreqAtLeast(f int) int {
	for _, x := range cl.FreqsMHz {
		if x >= f {
			return x
		}
	}
	return cl.MaxFreq()
}

// Platform is a complete ACMP hardware model.
type Platform struct {
	Name string
	// Clusters indexed by core type.
	Little, Big Cluster
	// DVFSLatency is the cost of changing frequency within a cluster.
	DVFSLatency simtime.Duration
	// MigrationLatency is the cost of moving the main thread between
	// clusters.
	MigrationLatency simtime.Duration
	// IdlePowerMW is the platform power draw while the main thread is idle
	// (clusters clock-gated at their lowest operating points).
	IdlePowerMW float64

	configs []Config // cached enumeration
}

// Cluster returns the cluster for the given core type.
func (p *Platform) Cluster(c CoreType) *Cluster {
	if c == BigCore {
		return &p.Big
	}
	return &p.Little
}

// Configs enumerates every <core, frequency> configuration of the platform,
// little cluster first, each cluster in ascending frequency order. The slice
// is cached and must not be mutated by callers.
//
// The cache is not synchronized: populate it from one goroutine (the
// standard constructors do so eagerly; sessions.New forces it for
// hand-built platforms) before sharing the platform across simulation
// workers.
func (p *Platform) Configs() []Config {
	if p.configs == nil {
		var cfgs []Config
		for _, f := range p.Little.FreqsMHz {
			cfgs = append(cfgs, Config{LittleCore, f})
		}
		for _, f := range p.Big.FreqsMHz {
			cfgs = append(cfgs, Config{BigCore, f})
		}
		p.configs = cfgs
	}
	return p.configs
}

// ValidConfig reports whether cfg is an operating point of the platform.
func (p *Platform) ValidConfig(cfg Config) bool {
	return p.Cluster(cfg.Core).HasFreq(cfg.FreqMHz)
}

// MaxPerformance returns the highest-performance configuration of the
// platform (big cluster at its maximum frequency).
func (p *Platform) MaxPerformance() Config {
	return Config{BigCore, p.Big.MaxFreq()}
}

// MinPerformance returns the lowest-performance configuration of the
// platform (little cluster at its minimum frequency).
func (p *Platform) MinPerformance() Config {
	return Config{LittleCore, p.Little.MinFreq()}
}

// Power returns the active power (mW) drawn while executing on cfg.
// It panics if cfg is not a valid operating point; scheduler code must only
// ever produce valid configurations.
func (p *Platform) Power(cfg Config) float64 {
	pw, ok := p.Cluster(cfg.Core).PowerMW[cfg.FreqMHz]
	if !ok {
		panic(fmt.Sprintf("acmp: %s has no operating point %v", p.Name, cfg))
	}
	return pw
}

// Workload is the hardware-relevant description of one event execution,
// expressed in the terms of the paper's Eqn. 1.
type Workload struct {
	// Tmem is the memory-bound portion of the execution that does not scale
	// with CPU frequency.
	Tmem simtime.Duration
	// Cycles is Ndep: the number of CPU cycles (measured on the big,
	// CPI-reference core) that do not overlap with memory accesses.
	Cycles int64
}

// Latency evaluates the DVFS latency law for the workload on cfg:
//
//	T = Tmem + (Cycles × CPI(core)) / f
//
// with f in MHz so that Cycles/f is directly in microseconds.
func (p *Platform) Latency(w Workload, cfg Config) simtime.Duration {
	cl := p.Cluster(cfg.Core)
	cycles := float64(w.Cycles) * cl.CPI
	compute := cycles / float64(cfg.FreqMHz)
	return w.Tmem + simtime.Duration(math.Ceil(compute))
}

// Energy returns the active energy in millijoules spent executing the
// workload on cfg (latency × power).
func (p *Platform) Energy(w Workload, cfg Config) float64 {
	lat := p.Latency(w, cfg)
	return EnergyMJ(p.Power(cfg), lat)
}

// SwitchOverhead returns the time cost of moving the main thread from one
// configuration to another: a core migration when the cluster changes, plus
// a DVFS transition when the target cluster is not already at the requested
// frequency. Switching from the zero Config (simulation start) is free.
func (p *Platform) SwitchOverhead(from, to Config) simtime.Duration {
	if from.IsZero() || from == to {
		return 0
	}
	var d simtime.Duration
	if from.Core != to.Core {
		d += p.MigrationLatency
		// After a migration the destination cluster must also be brought to
		// the requested operating point.
		d += p.DVFSLatency
		return d
	}
	if from.FreqMHz != to.FreqMHz {
		d += p.DVFSLatency
	}
	return d
}

// EnergyMJ converts an interval of constant power draw into millijoules:
// mW × µs = nJ, so mJ = mW × µs / 1e6.
func EnergyMJ(powerMW float64, d simtime.Duration) float64 {
	return powerMW * float64(d) / 1e6
}

// IdleEnergy returns the energy (mJ) spent idling for duration d.
func (p *Platform) IdleEnergy(d simtime.Duration) float64 {
	return EnergyMJ(p.IdlePowerMW, d)
}

// powerLadder generates a monotonically increasing power table for a
// frequency ladder using the familiar P ≈ base + k·f^α law that holds for
// DVFS operating points (voltage scales with frequency).
func powerLadder(freqs []int, baseMW, kMW, alpha float64) map[int]float64 {
	tbl := make(map[int]float64, len(freqs))
	for _, f := range freqs {
		tbl[f] = baseMW + kMW*math.Pow(float64(f)/1000.0, alpha)
	}
	return tbl
}

// ladder builds an inclusive arithmetic frequency ladder.
func ladder(lo, hi, step int) []int {
	var fs []int
	for f := lo; f <= hi; f += step {
		fs = append(fs, f)
	}
	sort.Ints(fs)
	return fs
}

// Exynos5410 returns the ACMP model of the Samsung Exynos 5410 SoC on the
// ODROID XU+E board: a Cortex-A15 big cluster at 800–1800 MHz in 100 MHz
// steps and a Cortex-A7 little cluster at 350–600 MHz in 50 MHz steps, the
// DVFS/migration overheads reported in Sec. 6.3, and power tables shaped on
// published Exynos 5410 cluster measurements.
func Exynos5410() *Platform {
	littleFreqs := ladder(350, 600, 50)
	bigFreqs := ladder(800, 1800, 100)
	p := &Platform{
		Name: "Exynos5410",
		Little: Cluster{
			Core:     LittleCore,
			FreqsMHz: littleFreqs,
			// ~85 mW at 350 MHz up to ~215 mW at 600 MHz.
			PowerMW: powerLadder(littleFreqs, 40, 350, 1.6),
			CPI:     1.9,
		},
		Big: Cluster{
			Core:     BigCore,
			FreqsMHz: bigFreqs,
			// ~700 mW at 800 MHz up to ~3.4 W at 1.8 GHz.
			PowerMW: powerLadder(bigFreqs, 180, 1150, 1.85),
			CPI:     1.0,
		},
		DVFSLatency:      100 * simtime.Microsecond,
		MigrationLatency: 20 * simtime.Microsecond,
		IdlePowerMW:      140,
	}
	p.Configs() // populate the cache before the platform is shared
	return p
}

// TX2Parker returns the ACMP model of the NVIDIA Parker SoC on the TX2 board
// used in the paper's "other devices" study: a Cortex-A57 cluster (modelled
// as the big cluster, 500–2000 MHz) and a Denver2-derived efficient cluster
// (modelled as the little cluster, 350–1200 MHz). The 2017-era process gives
// it a flatter power curve than the Exynos 5410.
func TX2Parker() *Platform {
	littleFreqs := ladder(350, 1200, 50)
	bigFreqs := ladder(500, 2000, 100)
	p := &Platform{
		Name: "TX2Parker",
		Little: Cluster{
			Core:     LittleCore,
			FreqsMHz: littleFreqs,
			PowerMW:  powerLadder(littleFreqs, 50, 260, 1.5),
			CPI:      1.5,
		},
		Big: Cluster{
			Core:     BigCore,
			FreqsMHz: bigFreqs,
			PowerMW:  powerLadder(bigFreqs, 150, 820, 1.8),
			CPI:      0.85,
		},
		DVFSLatency:      100 * simtime.Microsecond,
		MigrationLatency: 20 * simtime.Microsecond,
		IdlePowerMW:      170,
	}
	p.Configs() // populate the cache before the platform is shared
	return p
}
