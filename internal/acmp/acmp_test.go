package acmp

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestExynosLadders(t *testing.T) {
	p := Exynos5410()
	if got := len(p.Little.FreqsMHz); got != 6 {
		t.Errorf("little ladder has %d points, want 6 (350–600 step 50)", got)
	}
	if got := len(p.Big.FreqsMHz); got != 11 {
		t.Errorf("big ladder has %d points, want 11 (800–1800 step 100)", got)
	}
	if got := len(p.Configs()); got != 17 {
		t.Errorf("Configs() = %d, want 17", got)
	}
	if p.Little.MinFreq() != 350 || p.Little.MaxFreq() != 600 {
		t.Errorf("little range = %d–%d", p.Little.MinFreq(), p.Little.MaxFreq())
	}
	if p.Big.MinFreq() != 800 || p.Big.MaxFreq() != 1800 {
		t.Errorf("big range = %d–%d", p.Big.MinFreq(), p.Big.MaxFreq())
	}
}

func TestConfigValidity(t *testing.T) {
	p := Exynos5410()
	if !p.ValidConfig(Config{BigCore, 1800}) {
		t.Error("big@1800 should be valid")
	}
	if p.ValidConfig(Config{BigCore, 1850}) {
		t.Error("big@1850 should be invalid")
	}
	if p.ValidConfig(Config{LittleCore, 800}) {
		t.Error("little@800 should be invalid")
	}
	if p.MaxPerformance() != (Config{BigCore, 1800}) {
		t.Errorf("MaxPerformance = %v", p.MaxPerformance())
	}
	if p.MinPerformance() != (Config{LittleCore, 350}) {
		t.Errorf("MinPerformance = %v", p.MinPerformance())
	}
}

func TestPowerMonotonic(t *testing.T) {
	for _, p := range []*Platform{Exynos5410(), TX2Parker()} {
		for _, cl := range []*Cluster{&p.Little, &p.Big} {
			prev := 0.0
			for _, f := range cl.FreqsMHz {
				pw := cl.PowerMW[f]
				if pw <= prev {
					t.Errorf("%s %s: power not increasing at %d MHz (%v ≤ %v)", p.Name, cl.Core, f, pw, prev)
				}
				prev = pw
			}
		}
		// The big cluster at max should dominate the little cluster at max.
		if p.Power(p.MaxPerformance()) <= p.Power(Config{LittleCore, p.Little.MaxFreq()}) {
			t.Errorf("%s: big max power should exceed little max power", p.Name)
		}
	}
}

func TestLatencyLaw(t *testing.T) {
	p := Exynos5410()
	w := Workload{Tmem: 10 * simtime.Millisecond, Cycles: 180_000_000} // 180 M cycles
	// big @1800: 10ms + 180e6/1800 µs = 10ms + 100ms = 110ms
	lat := p.Latency(w, Config{BigCore, 1800})
	if lat != 110*simtime.Millisecond {
		t.Errorf("latency big@1800 = %v, want 110ms", lat)
	}
	// big @900 doubles the compute part: 10 + 200 = 210ms
	lat = p.Latency(w, Config{BigCore, 900})
	if lat != 210*simtime.Millisecond {
		t.Errorf("latency big@900 = %v, want 210ms", lat)
	}
	// little pays the CPI penalty.
	little := p.Latency(w, Config{LittleCore, 600})
	big600equiv := w.Tmem + simtime.Duration(float64(w.Cycles)/600)
	if little <= big600equiv {
		t.Errorf("little latency %v should exceed CPI-free latency %v", little, big600equiv)
	}
}

func TestLatencyMonotoneInFrequency(t *testing.T) {
	f := func(cyclesRaw uint32, tmemRaw uint16) bool {
		p := Exynos5410()
		w := Workload{Tmem: simtime.Duration(tmemRaw), Cycles: int64(cyclesRaw)}
		for _, cl := range []*Cluster{&p.Little, &p.Big} {
			prev := simtime.Duration(1<<62 - 1)
			for _, fr := range cl.FreqsMHz {
				lat := p.Latency(w, Config{cl.Core, fr})
				if lat > prev {
					return false
				}
				prev = lat
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyAndIdle(t *testing.T) {
	p := Exynos5410()
	w := Workload{Tmem: 0, Cycles: 90_000_000}
	cfg := Config{BigCore, 1800}
	lat := p.Latency(w, cfg)
	wantMJ := p.Power(cfg) * float64(lat) / 1e6
	if got := p.Energy(w, cfg); got != wantMJ {
		t.Errorf("Energy = %v, want %v", got, wantMJ)
	}
	if got := p.IdleEnergy(simtime.Second); got != p.IdlePowerMW*1e6/1e6 {
		t.Errorf("IdleEnergy(1s) = %v mJ, want %v", got, p.IdlePowerMW)
	}
	if EnergyMJ(1000, simtime.Second) != 1000 {
		t.Error("1 W for 1 s should be 1000 mJ")
	}
}

func TestSwitchOverhead(t *testing.T) {
	p := Exynos5410()
	same := Config{BigCore, 1000}
	if d := p.SwitchOverhead(same, same); d != 0 {
		t.Errorf("no-op switch cost %v", d)
	}
	if d := p.SwitchOverhead(Config{}, same); d != 0 {
		t.Errorf("boot switch cost %v", d)
	}
	if d := p.SwitchOverhead(Config{BigCore, 1000}, Config{BigCore, 1800}); d != 100*simtime.Microsecond {
		t.Errorf("DVFS switch cost %v, want 100µs", d)
	}
	if d := p.SwitchOverhead(Config{BigCore, 1000}, Config{LittleCore, 600}); d != 120*simtime.Microsecond {
		t.Errorf("migration switch cost %v, want 120µs", d)
	}
}

func TestClusterHelpers(t *testing.T) {
	p := Exynos5410()
	if !p.Big.HasFreq(1200) || p.Big.HasFreq(1250) {
		t.Error("HasFreq wrong")
	}
	if got := p.Big.ClosestFreqAtLeast(1150); got != 1200 {
		t.Errorf("ClosestFreqAtLeast(1150) = %d", got)
	}
	if got := p.Big.ClosestFreqAtLeast(5000); got != 1800 {
		t.Errorf("ClosestFreqAtLeast(5000) = %d", got)
	}
	if got := p.Little.ClosestFreqAtLeast(0); got != 350 {
		t.Errorf("ClosestFreqAtLeast(0) = %d", got)
	}
}

func TestBigIsFasterButHungrier(t *testing.T) {
	// For a fixed workload, the big cluster at max frequency must be the
	// fastest configuration, and the little cluster at min frequency the
	// most frugal per unit time.
	p := Exynos5410()
	w := Workload{Tmem: simtime.Millisecond, Cycles: 50_000_000}
	fastest := p.MaxPerformance()
	for _, cfg := range p.Configs() {
		if p.Latency(w, cfg) < p.Latency(w, fastest) {
			t.Errorf("%v beats MaxPerformance latency", cfg)
		}
		if p.Power(cfg) < p.Power(p.MinPerformance()) {
			t.Errorf("%v draws less power than MinPerformance", cfg)
		}
	}
}

func TestCoreTypeString(t *testing.T) {
	if LittleCore.String() != "little" || BigCore.String() != "big" {
		t.Error("CoreType.String wrong")
	}
	if CoreType(9).String() == "" {
		t.Error("unknown core type should still render")
	}
	if (Config{BigCore, 1800}).String() != "big@1800MHz" {
		t.Errorf("Config.String = %s", Config{BigCore, 1800})
	}
}

func TestPowerPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid operating point")
		}
	}()
	Exynos5410().Power(Config{BigCore, 12345})
}

func TestTX2Platform(t *testing.T) {
	p := TX2Parker()
	if p.Name != "TX2Parker" {
		t.Errorf("Name = %s", p.Name)
	}
	if len(p.Configs()) == 0 {
		t.Fatal("TX2 has no configs")
	}
	// The newer SoC should be more efficient: same work at big-max costs less
	// energy than on the Exynos big-max.
	w := Workload{Tmem: 0, Cycles: 200_000_000}
	e1 := Exynos5410().Energy(w, Exynos5410().MaxPerformance())
	e2 := p.Energy(w, p.MaxPerformance())
	if e2 >= e1 {
		t.Errorf("TX2 energy %v should be below Exynos energy %v for the same work", e2, e1)
	}
}
