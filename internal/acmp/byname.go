package acmp

import (
	"fmt"
	"strings"
	"sync"
)

// Shared platform instances. One instance per hardware model — instead of a
// fresh model per caller — keeps pointer-keyed caches (e.g. the artifact
// store's fingerprint memo) effective across campaigns, and the constructors
// build the lazy config ladder eagerly so sharing is race-free.
var (
	sharedOnce   sync.Once
	sharedExynos *Platform
	sharedTX2    *Platform
)

// ByName resolves a platform name to its shared, process-wide hardware
// model. Names are case-insensitive; the empty string, "exynos5410",
// "exynos" and "odroid" select the Exynos 5410, while "tx2", "tx2parker"
// and "parker" select the TX2 Parker (the canonical model names are
// accepted too). Callers must treat the returned platform as immutable.
func ByName(name string) (*Platform, error) {
	sharedOnce.Do(func() {
		sharedExynos = Exynos5410()
		sharedTX2 = TX2Parker()
	})
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "exynos5410", "exynos", "odroid":
		return sharedExynos, nil
	case "tx2", "tx2parker", "parker":
		return sharedTX2, nil
	}
	return nil, fmt.Errorf("unknown platform %q (want exynos5410 or tx2)", name)
}
