package render

import (
	"testing"
	"testing/quick"

	"repro/internal/acmp"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

func TestNextVSync(t *testing.T) {
	if got := NextVSync(0); got != 0 {
		t.Errorf("NextVSync(0) = %v", got)
	}
	if got := NextVSync(1); got != simtime.Time(VSyncPeriod) {
		t.Errorf("NextVSync(1) = %v, want %v", got, VSyncPeriod)
	}
	edge := simtime.Time(VSyncPeriod) * 3
	if got := NextVSync(edge); got != edge {
		t.Errorf("NextVSync(edge) = %v, want %v", got, edge)
	}
	if got := NextVSync(edge + 1); got != edge+simtime.Time(VSyncPeriod) {
		t.Errorf("NextVSync(edge+1) = %v", got)
	}
}

func TestNextVSyncProperty(t *testing.T) {
	f := func(raw uint32) bool {
		tm := simtime.Time(raw)
		v := NextVSync(tm)
		return v >= tm && v.Sub(tm) < VSyncPeriod && v%simtime.Time(VSyncPeriod) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitStagesSumsToTotal(t *testing.T) {
	for _, in := range []webevent.Interaction{webevent.LoadInteraction, webevent.TapInteraction, webevent.MoveInteraction} {
		total := 123457 * simtime.Microsecond
		stages := SplitStages(total, in)
		var sum simtime.Duration
		for _, d := range stages {
			if d < 0 {
				t.Errorf("%v: negative stage duration", in)
			}
			sum += d
		}
		if sum != total {
			t.Errorf("%v: stages sum to %v, want %v", in, sum, total)
		}
	}
	// Unknown interaction falls back to the tap split.
	stages := SplitStages(1000, webevent.Interaction(99))
	var sum simtime.Duration
	for _, d := range stages {
		sum += d
	}
	if sum != 1000 {
		t.Error("fallback split should preserve total")
	}
	// Moves are paint/composite heavy, loads callback heavy.
	loads := SplitStages(1000*simtime.Millisecond, webevent.LoadInteraction)
	moves := SplitStages(1000*simtime.Millisecond, webevent.MoveInteraction)
	if loads[StageCallback] <= moves[StageCallback] {
		t.Error("loads should spend more in the callback stage than moves")
	}
	if moves[StagePaint] <= loads[StagePaint] {
		t.Error("moves should spend more in paint than loads")
	}
}

func TestProduceAndDisplayLatency(t *testing.T) {
	cfg := acmp.Config{Core: acmp.BigCore, FreqMHz: 1800}
	start := simtime.Time(100 * simtime.Millisecond)
	finish := simtime.Time(150 * simtime.Millisecond)
	f := Produce(webevent.Click, cfg, start, finish, true)
	if f.ProductionTime() != 50*simtime.Millisecond {
		t.Errorf("ProductionTime = %v", f.ProductionTime())
	}
	if !f.Speculative || f.Config != cfg || f.EventType != webevent.Click {
		t.Error("frame metadata wrong")
	}
	// Latency from a trigger after completion is just the VSync wait.
	trigger := simtime.Time(200 * simtime.Millisecond)
	lat := DisplayLatency(trigger, finish)
	if lat <= 0 || lat > VSyncPeriod {
		t.Errorf("fully speculated latency = %v, want within one VSync period", lat)
	}
	// Latency when the frame completes after the trigger includes the
	// production tail.
	lat2 := DisplayLatency(simtime.Time(120*simtime.Millisecond), finish)
	if lat2 < 30*simtime.Millisecond {
		t.Errorf("latency = %v, want ≥ 30ms", lat2)
	}
	if StageCallback.String() != "callback" || Stage(99).String() == "" {
		t.Error("stage names wrong")
	}
}
