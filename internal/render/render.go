// Package render models the part of the Web rendering engine that matters
// for event scheduling: after an event's JavaScript callback runs, the
// engine produces a frame through the style → layout → paint → composite
// pipeline, and the frame becomes visible at the next display refresh
// (VSync, 60 Hz on mobile devices). Event latency therefore includes an idle
// period between frame completion and the next VSync edge (Fig. 1 of the
// paper).
package render

import (
	"repro/internal/acmp"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

// VSyncPeriod is the display refresh interval (60 Hz).
const VSyncPeriod = 16667 * simtime.Microsecond

// NextVSync returns the first VSync edge at or after t (frames are submitted
// on refresh boundaries).
func NextVSync(t simtime.Time) simtime.Time {
	period := simtime.Time(VSyncPeriod)
	if t%period == 0 {
		return t
	}
	return (t/period + 1) * period
}

// Stage identifies one stage of the rendering pipeline.
type Stage int

const (
	// StageCallback is the JavaScript event handler execution.
	StageCallback Stage = iota
	// StageStyle is style resolution.
	StageStyle
	// StageLayout is layout.
	StageLayout
	// StagePaint is painting.
	StagePaint
	// StageComposite is compositing.
	StageComposite

	// NumStages is the number of pipeline stages.
	NumStages int = iota
)

// String names the stage.
func (s Stage) String() string {
	names := [...]string{"callback", "style", "layout", "paint", "composite"}
	if int(s) < len(names) {
		return names[s]
	}
	return "stage?"
}

// stageShare is the approximate fraction of an event's total work spent in
// each pipeline stage, per primitive interaction. Loads are dominated by the
// callback (parsing + script) and layout; moves are dominated by paint and
// composite. The split does not affect scheduling decisions (the optimizer
// reasons about whole events) but is reported per frame for inspection and
// used to attribute mis-prediction waste.
var stageShare = map[webevent.Interaction][NumStages]float64{
	webevent.LoadInteraction: {0.45, 0.15, 0.25, 0.10, 0.05},
	webevent.TapInteraction:  {0.40, 0.20, 0.20, 0.13, 0.07},
	webevent.MoveInteraction: {0.15, 0.10, 0.15, 0.35, 0.25},
}

// Frame is the product of executing one event through the pipeline.
type Frame struct {
	// Event is the event (actual or predicted) the frame answers.
	EventType webevent.Type
	// Started and Completed bound the frame's production on the CPU.
	Started, Completed simtime.Time
	// Config is the ACMP configuration the frame was produced on.
	Config acmp.Config
	// Stages records the per-stage durations.
	Stages [NumStages]simtime.Duration
	// Speculative marks frames produced ahead of their triggering event.
	Speculative bool
}

// ProductionTime returns how long the frame took to produce.
func (f *Frame) ProductionTime() simtime.Duration { return f.Completed.Sub(f.Started) }

// SplitStages attributes a total execution duration to pipeline stages for
// the given interaction.
func SplitStages(total simtime.Duration, in webevent.Interaction) [NumStages]simtime.Duration {
	shares, ok := stageShare[in]
	if !ok {
		shares = stageShare[webevent.TapInteraction]
	}
	var out [NumStages]simtime.Duration
	var used simtime.Duration
	for i := 0; i < NumStages-1; i++ {
		out[i] = simtime.Duration(float64(total) * shares[i])
		used += out[i]
	}
	out[NumStages-1] = total - used // remainder avoids rounding drift
	return out
}

// Produce builds the frame record for an event executed on cfg between start
// and finish.
func Produce(typ webevent.Type, cfg acmp.Config, start, finish simtime.Time, speculative bool) *Frame {
	return &Frame{
		EventType:   typ,
		Started:     start,
		Completed:   finish,
		Config:      cfg,
		Stages:      SplitStages(finish.Sub(start), typ.Interaction()),
		Speculative: speculative,
	}
}

// DisplayMargin is the average wait between frame completion and the next
// display refresh (half a VSync period). QoS-aware schedulers subtract it
// from their deadlines so that frames not only finish but also reach the
// display within the QoS target.
const DisplayMargin = VSyncPeriod / 2

// DisplayLatency returns the user-perceived event latency: the delay from
// the event trigger until the frame reaches the display. The display adds,
// on average, half a refresh period of waiting for the next VSync edge
// (VSync phase is unsynchronized with user input). A frame completed before
// its trigger (fully hidden by speculation) still pays that submission wait.
func DisplayLatency(trigger simtime.Time, frameCompleted simtime.Time) simtime.Duration {
	var tail simtime.Duration
	if frameCompleted.After(trigger) {
		tail = frameCompleted.Sub(trigger)
	}
	return tail + DisplayMargin
}
