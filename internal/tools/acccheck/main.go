package main

import (
	"fmt"

	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/webapp"
	"repro/internal/webevent"
)

func main() {
	learner, _, err := predictor.TrainOnSeenApps(8, 1000)
	if err != nil {
		panic(err)
	}
	eval := trace.GenerateCorpus(webapp.Registry(), 3, 500000, trace.PurposeEval, trace.Options{})
	res, err := predictor.EvaluateAccuracy(learner, eval, true)
	if err != nil {
		panic(err)
	}
	resNo, _ := predictor.EvaluateAccuracy(learner, eval, false)
	var seenSum, seenN, unseenSum, unseenN, noDomSum float64
	for i, r := range res {
		fmt.Printf("%-14s seen=%-5v acc=%.3f noDOM=%.3f n=%d\n", r.App, r.Seen, r.Accuracy, resNo[i].Accuracy, r.Events)
		if r.Seen {
			seenSum += r.Accuracy
			seenN++
		} else {
			unseenSum += r.Accuracy
			unseenN++
		}
		noDomSum += resNo[i].Accuracy
	}
	fmt.Printf("SEEN avg=%.3f UNSEEN avg=%.3f noDOM avg=%.3f\n", seenSum/seenN, unseenSum/unseenN, noDomSum/18)

	// Confusion matrix (with DOM analysis) across the corpus.
	confusion := map[[2]webevent.Type]int{}
	for _, tr := range eval {
		spec, _ := webapp.ByName(tr.App)
		evs, _ := tr.Runtime()
		p := predictor.New(learner, spec, tr.DOMSeed, predictor.DefaultConfig())
		for i, e := range evs {
			if i > 0 {
				if pred, ok := p.PredictNext(); ok {
					confusion[[2]webevent.Type{pred.Type, e.Type}]++
				}
			}
			p.Observe(e)
		}
	}
	fmt.Println("\npredicted -> actual : count (mismatches only)")
	total, wrong := 0, 0
	for k, v := range confusion {
		total += v
		if k[0] != k[1] {
			wrong += v
		}
	}
	for k, v := range confusion {
		if k[0] != k[1] && v > wrong/30 {
			fmt.Printf("  %-10s -> %-10s : %d (%.1f%% of errors)\n", k[0], k[1], v, 100*float64(v)/float64(wrong))
		}
	}
	fmt.Printf("total=%d wrong=%d overall=%.3f\n", total, wrong, 1-float64(wrong)/float64(total))
}
