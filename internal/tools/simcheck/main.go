// simcheck is a development tool that prints the headline energy/QoS
// comparison across schedulers for a quick calibration check.
package main
import (
	"fmt"
	"repro/internal/acmp"
	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/webapp"
)
func main() {
	platform := acmp.Exynos5410()
	learner, _, err := predictor.TrainOnSeenApps(6, 1000)
	if err != nil {
		panic(err)
	}
	eval := trace.GenerateCorpus(webapp.SeenApps(), 2, 500000, trace.PurposeEval, trace.Options{})
	type agg struct{ energy, busy, idle, waste, viol, n, mispred, committed, specOutcomes float64 }
	sums := map[string]*agg{}
	add := func(r *sim.Result) {
		a := sums[r.Scheduler]
		if a == nil {
			a = &agg{}
			sums[r.Scheduler] = a
		}
		a.energy += r.TotalEnergyMJ
		a.busy += r.BusyEnergyMJ
		a.idle += r.IdleEnergyMJ
		a.waste += r.WastedEnergyMJ
		a.viol += r.ViolationRate
		a.mispred += float64(r.Mispredictions)
		a.committed += float64(r.CommittedFrames)
		for _, o := range r.Outcomes {
			if o.Speculative {
				a.specOutcomes++
			}
		}
		a.n++
	}
	for _, tr := range eval {
		evs, _ := tr.Runtime()
		spec, _ := webapp.ByName(tr.App)
		add(sim.RunReactive(platform, tr.App, evs, sched.NewInteractive(platform)))
		add(sim.RunReactive(platform, tr.App, evs, sched.NewOndemand(platform)))
		add(sim.RunReactive(platform, tr.App, evs, sched.NewEBS(platform)))
		pes := core.NewPES(platform, learner, spec, tr.DOMSeed, predictor.DefaultConfig())
		add(sim.RunProactive(platform, tr.App, evs, pes))
		add(sim.RunProactive(platform, tr.App, evs, sched.NewOracle(platform, evs)))
	}
	base := sums["Interactive"].energy
	for _, name := range []string{"Interactive", "Ondemand", "EBS", "PES", "Oracle"} {
		a := sums[name]
		fmt.Printf("%-12s normEnergy=%5.1f%%  QoSviol=%5.1f%%  busy=%.0f idle=%.0f waste=%.0f mispred=%.0f committed=%.0f spec=%.0f\n",
			name, 100*a.energy/base, 100*a.viol/a.n, a.busy, a.idle, a.waste, a.mispred, a.committed, a.specOutcomes)
	}
}
