// simcheck is a development tool that prints the headline energy/QoS
// comparison across schedulers for a quick calibration check. The sessions
// run through the concurrent batch runner (all schedulers × traces in one
// batch).
package main

import (
	"fmt"

	"repro/internal/acmp"
	"repro/internal/batch"
	"repro/internal/predictor"
	"repro/internal/sessions"
	"repro/internal/trace"
	"repro/internal/webapp"
)

func main() {
	platform := acmp.Exynos5410()
	learner, _, err := predictor.TrainOnSeenApps(6, 1000)
	if err != nil {
		panic(err)
	}
	eval := trace.GenerateCorpus(webapp.SeenApps(), 2, 500000, trace.PurposeEval, trace.Options{})

	var specs []batch.Session
	for _, tr := range eval {
		for _, name := range sessions.Names() {
			sess, err := sessions.New(sessions.Spec{
				Platform:  platform,
				Trace:     tr,
				Scheduler: name,
				Learner:   learner,
				Predictor: predictor.DefaultConfig(),
			})
			if err != nil {
				panic(err)
			}
			specs = append(specs, sess)
		}
	}
	runner := batch.NewRunner(0)
	results, err := runner.Run(specs)
	if err != nil {
		panic(err)
	}

	type agg struct{ energy, busy, idle, waste, viol, n, mispred, committed, specOutcomes float64 }
	sums := map[string]*agg{}
	for _, r := range results {
		a := sums[r.Scheduler]
		if a == nil {
			a = &agg{}
			sums[r.Scheduler] = a
		}
		a.energy += r.TotalEnergyMJ
		a.busy += r.BusyEnergyMJ
		a.idle += r.IdleEnergyMJ
		a.waste += r.WastedEnergyMJ
		a.viol += r.ViolationRate
		a.mispred += float64(r.Mispredictions)
		a.committed += float64(r.CommittedFrames)
		for _, o := range r.Outcomes {
			if o.Speculative {
				a.specOutcomes++
			}
		}
		a.n++
	}
	base := sums[sessions.Interactive].energy
	for _, name := range sessions.Names() {
		a := sums[name]
		fmt.Printf("%-12s normEnergy=%5.1f%%  QoSviol=%5.1f%%  busy=%.0f idle=%.0f waste=%.0f mispred=%.0f committed=%.0f spec=%.0f\n",
			name, 100*a.energy/base, 100*a.viol/a.n, a.busy, a.idle, a.waste, a.mispred, a.committed, a.specOutcomes)
	}
	st := runner.Stats()
	fmt.Printf("batch: %d sessions on %d worker(s), %d simulated, %d cache hits\n",
		st.Sessions, runner.Workers(), st.UniqueRuns, st.CacheHits)
}
