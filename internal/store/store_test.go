package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// discard silences the warning log in tests that corrupt on purpose (the
// warnings themselves are asserted through the counters).
func discard(string, ...any) {}

func openQuiet(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	s.warnf = discard
	return s
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s := openQuiet(t, dir)
	want := map[string][]byte{
		"a":      []byte("alpha"),
		"b":      []byte(""),
		"result": bytes.Repeat([]byte{0xAB}, 4096),
	}
	for k, v := range want {
		if err := s.Put(k, v); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	// Overwrite: the later record must win, now and after reopen.
	if err := s.Put("a", []byte("alpha2")); err != nil {
		t.Fatal(err)
	}
	want["a"] = []byte("alpha2")
	check := func(s *Store) {
		t.Helper()
		for k, v := range want {
			got, ok := s.Get(k)
			if !ok {
				t.Fatalf("Get(%s): missing", k)
			}
			if !bytes.Equal(got, v) {
				t.Fatalf("Get(%s) = %q, want %q", k, got, v)
			}
		}
		if _, ok := s.Get("absent"); ok {
			t.Fatal("Get(absent) reported a hit")
		}
	}
	check(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openQuiet(t, dir)
	defer s2.Close()
	check(s2)
	st := s2.Stats()
	if st.Recovered != 4 { // 3 keys + 1 overwrite record
		t.Errorf("Recovered = %d, want 4", st.Recovered)
	}
	if st.Records != 3 {
		t.Errorf("Records = %d, want 3", st.Records)
	}
	if st.CorruptRecords != 0 || st.TornBytes != 0 {
		t.Errorf("clean reopen reported corruption: %+v", st)
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LogName), []byte("definitely not a pes store log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a foreign file as a store log")
	}
}

func TestCloseThenPutFails(t *testing.T) {
	s := openQuiet(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err == nil {
		t.Fatal("Put succeeded on a closed store")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// writeRecords fills a fresh store with n deterministic records and returns
// the expected contents plus each record's [start, end) extent in the log.
func writeRecords(t *testing.T, dir string, n int, rng *rand.Rand) (map[string][]byte, []int64) {
	t.Helper()
	s := openQuiet(t, dir)
	want := make(map[string][]byte, n)
	bounds := []int64{s.size}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%03d", i)
		val := make([]byte, rng.Intn(200))
		rng.Read(val)
		if err := s.Put(key, val); err != nil {
			t.Fatal(err)
		}
		want[key] = val
		bounds = append(bounds, s.size)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return want, bounds
}

// TestCrashRecoveryProperty is the crash-safety property test of the record
// log: for many seeds, write N records, then either truncate the file at a
// random offset (a torn append) or flip a random byte (corruption at rest),
// reopen, and require that
//
//   - every record the damage did not reach is recovered bit-identically,
//   - no Get ever returns bytes that differ from what was stored,
//   - dropped records are accounted for (CorruptRecords / TornBytes), and
//   - the reopened log accepts appends and survives another clean reopen.
func TestCrashRecoveryProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			n := 5 + rng.Intn(20)
			want, bounds := writeRecords(t, dir, n, rng)
			path := filepath.Join(dir, LogName)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			size := int64(len(raw))
			if size != bounds[len(bounds)-1] {
				t.Fatalf("log size %d != tracked size %d", size, bounds[len(bounds)-1])
			}

			truncate := rng.Intn(2) == 0
			// Damage offset anywhere in the file, header included.
			dmg := int64(rng.Intn(int(size)))
			if truncate {
				if err := os.Truncate(path, dmg); err != nil {
					t.Fatal(err)
				}
			} else {
				raw[dmg] ^= 1 << uint(rng.Intn(8))
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			s, err := Open(dir)
			if err != nil {
				// The only legitimate refusal is a damaged format header —
				// the store cannot distinguish it from a foreign file.
				if dmg >= int64(len(fileMagic)) {
					t.Fatalf("Open after damage at %d: %v", dmg, err)
				}
				return
			}
			s.warnf = discard
			defer s.Close()

			// Records wholly before the damage offset must all survive;
			// none may come back wrong.
			intactBefore := 0
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("key-%03d", i)
				start, end := bounds[i], bounds[i+1]
				got, ok := s.Get(key)
				if ok && !bytes.Equal(got, want[key]) {
					t.Fatalf("Get(%s) returned corrupt bytes", key)
				}
				if end <= dmg {
					intactBefore++
					if !ok {
						t.Errorf("record %d [%d,%d) untouched by damage at %d but lost", i, start, end, dmg)
					}
				}
			}
			st := s.Stats()
			dropped := int64(n - int(st.Recovered))
			if dropped < 0 {
				t.Fatalf("recovered %d of %d records", st.Recovered, n)
			}
			if dropped > 0 && st.CorruptRecords == 0 && st.TornBytes == 0 {
				t.Errorf("%d records dropped with no counted warning: %+v", dropped, st)
			}
			if !truncate && dropped > 1 {
				// A single flipped byte hits at most one record's content; it
				// may break framing and drop everything after it, but then
				// TornBytes must say so.
				if st.TornBytes == 0 {
					t.Errorf("one flipped byte dropped %d records without a torn tail: %+v", dropped, st)
				}
			}

			// The recovered log must accept appends and reopen cleanly.
			if err := s.Put("after-crash", []byte("fresh")); err != nil {
				t.Fatalf("Put after recovery: %v", err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2 := openQuiet(t, dir)
			defer s2.Close()
			if got, ok := s2.Get("after-crash"); !ok || !bytes.Equal(got, []byte("fresh")) {
				t.Fatalf("record appended after recovery did not survive reopen (ok=%v)", ok)
			}
			st2 := s2.Stats()
			// The first open truncated any torn tail, so the second sees
			// none. A checksum-corrupt record with intact framing stays in
			// the append-only log and is legitimately re-skipped each open.
			if st2.TornBytes != 0 {
				t.Errorf("second reopen still finds a torn tail: %+v", st2)
			}
			if st2.CorruptRecords > st.CorruptRecords {
				t.Errorf("corruption grew across reopen: %d -> %d", st.CorruptRecords, st2.CorruptRecords)
			}
		})
	}
}

// TestCorruptMidFileRecordIsSkipped pins the framing-intact case precisely:
// a checksum-corrupt record in the middle of the log is dropped with a
// counted warning while both its neighbors survive.
func TestCorruptMidFileRecordIsSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openQuiet(t, dir)
	var mid int64
	for i, kv := range []struct{ k, v string }{{"first", "111"}, {"second", "222"}, {"third", "333"}} {
		if i == 1 {
			mid = s.size
		}
		if err := s.Put(kv.k, []byte(kv.v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, LogName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the middle record's value (header stays valid).
	raw[mid+recHeaderSize+int64(len("second"))] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openQuiet(t, dir)
	defer s2.Close()
	if _, ok := s2.Get("second"); ok {
		t.Error("corrupt record served")
	}
	for _, k := range []string{"first", "third"} {
		if _, ok := s2.Get(k); !ok {
			t.Errorf("intact record %q lost", k)
		}
	}
	st := s2.Stats()
	if st.CorruptRecords != 1 {
		t.Errorf("CorruptRecords = %d, want 1", st.CorruptRecords)
	}
	if st.TornBytes != 0 {
		t.Errorf("TornBytes = %d, want 0 (framing was intact)", st.TornBytes)
	}
	if st.Recovered != 2 {
		t.Errorf("Recovered = %d, want 2", st.Recovered)
	}
}

// TestReadVerifiesChecksum pins the never-return-corrupt-bytes guarantee for
// corruption landing *after* Open: the read path re-verifies the checksum
// and turns the entry into a miss.
func TestReadVerifiesChecksum(t *testing.T) {
	dir := t.TempDir()
	s := openQuiet(t, dir)
	defer s.Close()
	if err := s.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	r := s.index["k"]
	// Corrupt the value on disk behind the store's back.
	if _, err := s.f.WriteAt([]byte{'X'}, r.off); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("Get returned corrupt bytes")
	}
	if got := s.Stats().CorruptRecords; got != 1 {
		t.Errorf("CorruptRecords = %d, want 1", got)
	}
	// The entry is gone, not wedged: a re-Put serves again.
	if err := s.Put("k", []byte("payload2")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); !ok || !bytes.Equal(got, []byte("payload2")) {
		t.Fatalf("re-Put after corruption not served (ok=%v, got=%q)", ok, got)
	}
}

// TestGetOrBuildSingleflight proves the store-level exactly-once guarantee:
// many concurrent callers for one key execute exactly one build and all
// receive the built bytes.
func TestGetOrBuildSingleflight(t *testing.T) {
	s := openQuiet(t, t.TempDir())
	defer s.Close()
	const callers = 16
	var builds atomic.Int64
	var wg sync.WaitGroup
	vals := make([][]byte, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], _, errs[i] = s.GetOrBuild("shared", func() ([]byte, error) {
				builds.Add(1)
				return []byte("built-once"), nil
			})
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1", got)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(vals[i], []byte("built-once")) {
			t.Fatalf("caller %d got %q", i, vals[i])
		}
	}
	// The build persisted: a later call is a plain hit.
	if _, hit, err := s.GetOrBuild("shared", func() ([]byte, error) {
		t.Fatal("rebuilt a stored key")
		return nil, nil
	}); err != nil || !hit {
		t.Fatalf("stored key not served as a hit (hit=%v, err=%v)", hit, err)
	}
}

func TestGetOrBuildErrorNotCached(t *testing.T) {
	s := openQuiet(t, t.TempDir())
	defer s.Close()
	boom := fmt.Errorf("boom")
	if _, _, err := s.GetOrBuild("k", func() ([]byte, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure is not stored; the next call retries and succeeds.
	val, hit, err := s.GetOrBuild("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || !bytes.Equal(val, []byte("ok")) {
		t.Fatalf("retry after error: val=%q hit=%v err=%v", val, hit, err)
	}
	if s.Stats().Records != 1 {
		t.Fatalf("Records = %d, want 1", s.Stats().Records)
	}
}

// TestConcurrentPutGet hammers the store from many goroutines (meaningful
// under -race) and then proves everything written is recovered on reopen.
func TestConcurrentPutGet(t *testing.T) {
	dir := t.TempDir()
	s := openQuiet(t, dir)
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Put(key, []byte(key+"-val")); err != nil {
					t.Errorf("Put(%s): %v", key, err)
					return
				}
				if got, ok := s.Get(key); !ok || string(got) != key+"-val" {
					t.Errorf("Get(%s) after Put: ok=%v got=%q", key, ok, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openQuiet(t, dir)
	defer s2.Close()
	if got := s2.Stats().Records; got != writers*perWriter {
		t.Fatalf("Records after reopen = %d, want %d", got, writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			key := fmt.Sprintf("w%d-%d", w, i)
			if got, ok := s2.Get(key); !ok || string(got) != key+"-val" {
				t.Fatalf("Get(%s) after reopen: ok=%v got=%q", key, ok, got)
			}
		}
	}
}

func TestSyncEveryCadence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSyncEvery(3))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// 10 puts at a cadence of 3 sync on puts 3, 6 and 9.
	if got := s.Stats().Syncs; got != 3 {
		t.Fatalf("Syncs = %d, want 3", got)
	}
	// PutDurable syncs immediately on a syncing store.
	if err := s.PutDurable("terminal", []byte("done")); err != nil {
		t.Fatalf("PutDurable: %v", err)
	}
	if got := s.Stats().Syncs; got != 4 {
		t.Fatalf("Syncs after PutDurable = %d, want 4", got)
	}
}

func TestNoSyncByDefault(t *testing.T) {
	s := openQuiet(t, t.TempDir())
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// PutDurable on a no-fsync store behaves like Put.
	if err := s.PutDurable("terminal", []byte("done")); err != nil {
		t.Fatalf("PutDurable: %v", err)
	}
	if got := s.Stats().Syncs; got != 0 {
		t.Fatalf("Syncs = %d, want 0 before Close", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := s.Stats().Syncs; got != 1 {
		t.Fatalf("Syncs after Close = %d, want 1", got)
	}
}

func TestKeysPrefixScan(t *testing.T) {
	dir := t.TempDir()
	s := openQuiet(t, dir)
	puts := []string{"campaign|c0002|spec", "campaign|c0001|spec", "campaign|c0001|state", "result|abc", "trace|xyz"}
	for _, k := range puts {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	got := s.Keys("campaign|")
	want := []string{"campaign|c0001|spec", "campaign|c0001|state", "campaign|c0002|spec"}
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if ks := s.Keys("nope|"); len(ks) != 0 {
		t.Fatalf("Keys(nope|) = %v, want empty", ks)
	}
	s.Close()

	// The scan survives a reopen: replay rebuilds the same index.
	s2 := openQuiet(t, dir)
	defer s2.Close()
	got2 := s2.Keys("campaign|")
	if len(got2) != len(want) {
		t.Fatalf("Keys after reopen = %v, want %v", got2, want)
	}
}
