// Package store is the persistent, content-addressed half of the cache
// hierarchy: a disk-backed key/value store that survives process restarts,
// layered *under* the in-memory caches (the batch memo cache of
// internal/batch and the trace/learner caches of internal/artifacts).
//
// Keys are content fingerprints — the same tuples that key the in-memory
// caches (platform, app, trace seed, scheduler, predictor configuration,
// trace/learner content hashes) — so a value can be trusted across restarts,
// deploys, and machines running the same code: equal key means equal bytes.
// The store is a cache, never the source of truth; deleting the directory is
// always safe and only costs recomputation.
//
// # On-disk format
//
// One append-only record log (store.log) inside the directory. The file
// opens with an 8-byte format header; each record is
//
//	[4]byte magic | uint32 keyLen | uint32 valLen | uint32 crc32(key‖val)
//	key bytes | value bytes
//
// with all integers little-endian. Every Put appends one record in a single
// write; a re-Put of an existing key appends a new record and the replay
// order makes the last one win.
//
// # Recovery
//
// Open replays the log and rebuilds the in-memory key → offset index. The
// log may have been torn by a crash mid-append or corrupted at rest, so
// replay is defensive:
//
//   - A record whose checksum fails but whose framing is intact is skipped
//     with a counted warning (Stats.CorruptRecords); later records are kept.
//   - A torn tail — a header or body extending past EOF, or a header whose
//     magic or lengths are garbage (framing can no longer be trusted) — ends
//     the replay; the tail is truncated away (Stats.TornBytes) so the log is
//     append-consistent again.
//   - Reads re-verify the checksum, so corruption landing after Open can
//     never surface as corrupt bytes: the entry turns into a miss instead.
//
// The store is safe for concurrent use by one process. Concurrent processes
// must not share a directory: each worker of a cluster keeps its own local
// store (routing affinity keeps them warm), which is what makes restart,
// deploy, and CI warm-starts cheap without any coordination protocol.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// LogName is the record log's file name inside the store directory.
const LogName = "store.log"

var (
	fileMagic = [8]byte{'P', 'E', 'S', 'L', 'O', 'G', '1', '\n'}
	recMagic  = uint32(0x50455352) // "PESR"
)

const (
	recHeaderSize = 16
	// maxKeyLen and maxValLen bound what a replayed header may claim; a
	// length beyond them means the framing itself is corrupt.
	maxKeyLen = 1 << 20
	maxValLen = 1 << 30
)

// File is the store's view of its log file: the subset of *os.File the
// record log uses. The indirection exists for fault injection — internal/chaos
// wraps a File to simulate short writes and crash-at-record-N without
// touching the OS — and for nothing else; production stores always run on a
// bare *os.File.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Write(p []byte) (int, error)
	Truncate(size int64) error
	Sync() error
	Close() error
	Stat() (os.FileInfo, error)
}

// Option configures a Store at Open.
type Option func(*Store)

// WithFileWrapper interposes wrap between the store and its log file (fault
// injection; see File). The wrapper sees every read, write, truncate and
// sync the store issues, including the Open replay.
func WithFileWrapper(wrap func(File) File) Option {
	return func(s *Store) { s.wrapFile = wrap }
}

// WithSyncEvery makes the store fsync its log after every n Puts (n >= 1),
// plus wherever PutDurable is used (journal terminal-state records). The
// default (0) never syncs on Put: a process crash (kill -9) still loses
// nothing because the writes sit in the OS page cache, but a power loss or
// kernel panic can lose the un-synced tail — torn-tail recovery then resumes
// from the last synced record. Syncing costs one disk flush per n results;
// pes-bench -store -store-sync reports the overhead.
func WithSyncEvery(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.syncEvery = int64(n)
		}
	}
}

// Stats snapshots a store's counters. The recovery fields are set by Open
// and constant afterwards; the rest accumulate over the store's lifetime.
type Stats struct {
	// Records is the number of distinct keys currently readable.
	Records int64 `json:"records"`
	// Recovered is the number of intact records replayed at Open — non-zero
	// means this process warm-started from a previous one's work.
	Recovered int64 `json:"recovered"`
	// CorruptRecords counts records dropped for a checksum mismatch, at
	// replay or on a later read. Each drop is also logged as a warning.
	CorruptRecords int64 `json:"corrupt_records"`
	// TornBytes is the size of the unparseable log tail truncated at Open
	// (a crash mid-append, or corruption that broke the record framing).
	TornBytes int64 `json:"torn_bytes"`
	// Hits and Misses count Get/GetOrBuild lookups.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Puts counts records appended.
	Puts int64 `json:"puts"`
	// Syncs counts explicit log flushes to stable storage: the WithSyncEvery
	// cadence, PutDurable calls, and Sync/Close. Zero syncs on a no-fsync
	// store until Close.
	Syncs int64 `json:"syncs"`
	// SharedBuilds counts GetOrBuild callers that were served by another
	// caller's in-flight build instead of building or reading themselves.
	SharedBuilds int64 `json:"shared_builds"`
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// ref locates one live record's value inside the log.
type ref struct {
	key string
	off int64 // offset of the value bytes
	len uint32
	crc uint32 // crc32(key‖value), as framed
}

// call is an in-flight GetOrBuild: the first caller builds, everyone else
// blocks on done and shares the outcome.
type call struct {
	done chan struct{}
	val  []byte
	err  error
}

// Store is one disk-backed content-addressed store. All methods are safe
// for concurrent use within one process.
type Store struct {
	dir       string
	wrapFile  func(File) File
	syncEvery int64 // fsync after every n Puts; 0 = never on Put

	mu       sync.Mutex // guards index, inflight, appends, size, closed
	f        File
	size     int64 // current log size == next append offset
	index    map[string]ref
	inflight map[string]*call
	closed   bool

	recovered      int64
	tornBytes      int64
	corruptRecords atomic.Int64
	hits           atomic.Int64
	misses         atomic.Int64
	puts           atomic.Int64
	syncs          atomic.Int64
	sharedBuilds   atomic.Int64

	// warnf receives recovery/read warnings; tests may replace it before
	// the store is shared. Defaults to log.Printf.
	warnf func(format string, args ...any)
}

// Open creates or reopens the store in dir (created if missing), replaying
// the record log and recovering every intact record. A torn tail is
// truncated; checksum-corrupt records are skipped with a counted warning.
func Open(dir string, opts ...Option) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, LogName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		f:        f,
		index:    make(map[string]ref),
		inflight: make(map[string]*call),
		warnf:    log.Printf,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.wrapFile != nil {
		s.f = s.wrapFile(f)
	}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// replay scans the log, rebuilds the index, and truncates any unparseable
// tail so the file is append-consistent again.
func (s *Store) replay() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := info.Size()
	if size == 0 {
		if _, err := s.f.Write(fileMagic[:]); err != nil {
			return fmt.Errorf("store: writing log header: %w", err)
		}
		s.size = int64(len(fileMagic))
		return nil
	}
	var hdr [8]byte
	if size < int64(len(hdr)) {
		// Shorter than the format header: a crash before the header write
		// completed. Start the log over.
		return s.dropTail(0, size, "log shorter than its format header")
	}
	if _, err := s.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("store: reading log header: %w", err)
	}
	if hdr != fileMagic {
		// Refuse to touch a file that was never ours.
		return fmt.Errorf("store: %s is not a pes store log (bad format header)", filepath.Join(s.dir, LogName))
	}

	off := int64(len(fileMagic))
	var rec [recHeaderSize]byte
	for off < size {
		if size-off < recHeaderSize {
			return s.dropTail(off, size, "torn record header")
		}
		if _, err := s.f.ReadAt(rec[:], off); err != nil {
			return fmt.Errorf("store: replaying at offset %d: %w", off, err)
		}
		magic := binary.LittleEndian.Uint32(rec[0:4])
		keyLen := binary.LittleEndian.Uint32(rec[4:8])
		valLen := binary.LittleEndian.Uint32(rec[8:12])
		crc := binary.LittleEndian.Uint32(rec[12:16])
		if magic != recMagic || keyLen == 0 || keyLen > maxKeyLen || valLen > maxValLen {
			// The framing itself can no longer be trusted; everything from
			// here on is unreachable.
			return s.dropTail(off, size, "corrupt record framing")
		}
		body := int64(keyLen) + int64(valLen)
		if off+recHeaderSize+body > size {
			return s.dropTail(off, size, "torn record body")
		}
		buf := make([]byte, body)
		if _, err := s.f.ReadAt(buf, off+recHeaderSize); err != nil {
			return fmt.Errorf("store: replaying at offset %d: %w", off, err)
		}
		next := off + recHeaderSize + body
		if crc32.ChecksumIEEE(buf) != crc {
			// Framing intact, content rotten: skip this record only.
			s.corruptRecords.Add(1)
			s.warnf("store: dropping corrupt record at offset %d of %s (checksum mismatch)", off, filepath.Join(s.dir, LogName))
			off = next
			continue
		}
		key := string(buf[:keyLen])
		s.index[key] = ref{key: key, off: off + recHeaderSize + int64(keyLen), len: valLen, crc: crc}
		s.recovered++
		off = next
	}
	s.size = size
	return nil
}

// dropTail truncates the log at off, abandoning the bytes [off, size) that
// can no longer be parsed, and finishes the replay.
func (s *Store) dropTail(off, size int64, reason string) error {
	s.tornBytes = size - off
	s.warnf("store: truncating %d unparseable tail bytes of %s at offset %d (%s)", s.tornBytes, filepath.Join(s.dir, LogName), off, reason)
	if err := s.f.Truncate(off); err != nil {
		return fmt.Errorf("store: truncating torn tail: %w", err)
	}
	if off == 0 {
		if _, err := s.f.Write(fileMagic[:]); err != nil {
			return fmt.Errorf("store: rewriting log header: %w", err)
		}
		off = int64(len(fileMagic))
	}
	s.size = off
	return nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of distinct keys currently readable.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	records := int64(len(s.index))
	s.mu.Unlock()
	return Stats{
		Records:        records,
		Recovered:      s.recovered,
		CorruptRecords: s.corruptRecords.Load(),
		TornBytes:      s.tornBytes,
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Puts:           s.puts.Load(),
		Syncs:          s.syncs.Load(),
		SharedBuilds:   s.sharedBuilds.Load(),
	}
}

// lookup returns the live ref for key, if any.
func (s *Store) lookup(key string) (ref, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.index[key]
	return r, ok
}

// read fetches and verifies one record's value. A checksum mismatch (the
// log was corrupted after Open) drops the entry and reports a miss — the
// store never returns bytes it cannot vouch for.
func (s *Store) read(r ref) ([]byte, bool) {
	buf := make([]byte, int(r.len)+len(r.key))
	copy(buf, r.key)
	if _, err := s.f.ReadAt(buf[len(r.key):], r.off); err != nil {
		s.warnf("store: reading record at offset %d: %v", r.off, err)
		s.drop(r)
		return nil, false
	}
	if crc32.ChecksumIEEE(buf) != r.crc {
		s.corruptRecords.Add(1)
		s.warnf("store: dropping corrupt record at offset %d of %s (checksum mismatch on read)", r.off, filepath.Join(s.dir, LogName))
		s.drop(r)
		return nil, false
	}
	return buf[len(r.key):], true
}

// drop removes a record from the index unless a newer Put replaced it.
func (s *Store) drop(r ref) {
	s.mu.Lock()
	if cur, ok := s.index[r.key]; ok && cur.off == r.off {
		delete(s.index, r.key)
	}
	s.mu.Unlock()
}

// Get returns the value stored for key, or ok=false when the key is absent
// (or its record failed verification). The returned slice is private to the
// caller.
func (s *Store) Get(key string) ([]byte, bool) {
	r, ok := s.lookup(key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	val, ok := s.read(r)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return val, true
}

// Put appends a record for key. A later Get returns the new value; the old
// record (if any) becomes dead weight in the log. When the store was opened
// with WithSyncEvery, every n-th Put also flushes the log to stable storage.
func (s *Store) Put(key string, val []byte) error {
	return s.put(key, val, false)
}

// PutDurable appends a record for key and flushes the log to stable storage
// before returning — the record survives power loss, not just a process
// crash. The journal uses it for terminal-state records so "campaign done"
// can never outlive the results it stands for. On a no-fsync store (no
// WithSyncEvery) it behaves like Put: durability is all-or-nothing per
// store, so a store that never syncs is not made to stall on one record.
func (s *Store) PutDurable(key string, val []byte) error {
	return s.put(key, val, s.syncEvery > 0)
}

func (s *Store) put(key string, val []byte, durable bool) error {
	if key == "" || len(key) > maxKeyLen {
		return fmt.Errorf("store: invalid key length %d", len(key))
	}
	if len(val) > maxValLen {
		return fmt.Errorf("store: value too large (%d bytes)", len(val))
	}
	buf := make([]byte, recHeaderSize+len(key)+len(val))
	binary.LittleEndian.PutUint32(buf[0:4], recMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(val)))
	copy(buf[recHeaderSize:], key)
	copy(buf[recHeaderSize+len(key):], val)
	crc := crc32.ChecksumIEEE(buf[recHeaderSize:])
	binary.LittleEndian.PutUint32(buf[12:16], crc)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: store is closed")
	}
	// One write per record: a crash can only tear the log at a record
	// boundary mid-write, which recovery truncates away.
	if _, err := s.f.WriteAt(buf, s.size); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	off := s.size
	s.size += int64(len(buf))
	s.index[key] = ref{key: key, off: off + recHeaderSize + int64(len(key)), len: uint32(len(val)), crc: crc}
	puts := s.puts.Add(1)
	if durable || (s.syncEvery > 0 && puts%s.syncEvery == 0) {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing log: %w", err)
		}
		s.syncs.Add(1)
	}
	return nil
}

// Keys returns the live keys starting with prefix, sorted. It is a replay
// aid (the campaign journal scans its record kinds at startup), not a fast
// path: the scan holds the store lock for the duration.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// GetOrBuild returns the stored value for key, building and storing it on a
// miss. Concurrent callers for the same key share one build (store-level
// singleflight): exactly one executes build, everyone else blocks and
// receives the same bytes. hit is false only for the caller that executed
// build. A build error is returned to every waiting caller and nothing is
// stored; a later call retries.
func (s *Store) GetOrBuild(key string, build func() ([]byte, error)) (val []byte, hit bool, err error) {
	for {
		r, ok := s.lookup(key)
		if ok {
			if v, ok := s.read(r); ok {
				s.hits.Add(1)
				return v, true, nil
			}
		}
		s.mu.Lock()
		// Re-check under the lock: a Put or a finishing build may have
		// landed between the lookup and here.
		if r, ok := s.index[key]; ok {
			s.mu.Unlock()
			if v, ok := s.read(r); ok {
				s.hits.Add(1)
				return v, true, nil
			}
			continue
		}
		if c, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			<-c.done
			if c.err != nil {
				return nil, false, c.err
			}
			s.sharedBuilds.Add(1)
			return c.val, true, nil
		}
		c := &call{done: make(chan struct{})}
		s.inflight[key] = c
		s.mu.Unlock()

		s.misses.Add(1)
		c.val, c.err = build()
		if c.err == nil {
			if putErr := s.Put(key, c.val); putErr != nil {
				// The value is still good; persistence just failed. Warn and
				// serve it — the store is a cache, not the source of truth.
				s.warnf("store: persisting %q: %v", key, putErr)
			}
		}
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(c.done)
		return c.val, false, c.err
	}
}

// Sync flushes the log to stable storage (survives an OS crash, not just a
// process exit; Put alone already survives the latter).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: store is closed")
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.syncs.Add(1)
	return nil
}

// Close syncs and closes the log. Further Puts fail; the struct must not be
// used concurrently with Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	syncErr := s.f.Sync()
	if syncErr == nil {
		s.syncs.Add(1)
	}
	closeErr := s.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
