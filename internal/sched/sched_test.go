package sched

import (
	"testing"

	"repro/internal/acmp"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

func tapEvent(trigger simtime.Time, cycles int64) *webevent.Event {
	return &webevent.Event{
		App: "cnn", Type: webevent.Click, Trigger: trigger,
		Work: acmp.Workload{Tmem: 10 * simtime.Millisecond, Cycles: cycles},
	}
}

func TestInteractiveStartsLowAfterIdleAndRampsToMax(t *testing.T) {
	p := acmp.Exynos5410()
	g := NewInteractive(p)
	// A long idle period before the event: utilization is low, so the start
	// configuration must not be the maximum.
	e := tapEvent(simtime.Time(5*simtime.Second), 400e6)
	cfg := g.ConfigAtStart(e, e.Trigger)
	if cfg == p.MaxPerformance() {
		t.Errorf("after idle the governor should not start at max performance, got %v", cfg)
	}
	// After one sampling quantum of sustained execution it ramps to max.
	next := g.Requantum(e, cfg, g.Quantum())
	if next != p.MaxPerformance() {
		t.Errorf("Requantum after a quantum should reach max performance, got %v", next)
	}
	// Right after a long busy period, utilization is high: start at max.
	g.Observe(e, next, e.Trigger, 500*simtime.Millisecond)
	cfg2 := g.ConfigAtStart(e, e.Trigger.Add(510*simtime.Millisecond))
	if cfg2 != p.MaxPerformance() {
		t.Errorf("high recent utilization should start at max performance, got %v", cfg2)
	}
	if g.Name() != "Interactive" || g.Quantum() <= 0 {
		t.Error("metadata wrong")
	}
	g.NoteIdle(0, simtime.Time(simtime.Second)) // must not panic
}

func TestOndemandIsLazierThanInteractive(t *testing.T) {
	p := acmp.Exynos5410()
	inter := NewInteractive(p)
	onde := NewOndemand(p)
	e := tapEvent(simtime.Time(10*simtime.Second), 400e6)
	ci := inter.ConfigAtStart(e, e.Trigger)
	co := onde.ConfigAtStart(e, e.Trigger)
	// Ondemand starts lower (or equal) on the performance ladder.
	ladder := PerformanceLadder(p)
	idx := func(c acmp.Config) int {
		for i, x := range ladder {
			if x == c {
				return i
			}
		}
		return -1
	}
	if idx(co) > idx(ci) {
		t.Errorf("Ondemand start %v should not exceed Interactive start %v", co, ci)
	}
	// Ondemand ramps gradually rather than jumping straight to max.
	next := onde.Requantum(e, co, onde.Quantum())
	if next == co {
		t.Error("Ondemand should ramp after a quantum")
	}
	if onde.Quantum() <= inter.Quantum() {
		t.Error("Ondemand should sample less often than Interactive")
	}
	onde.Observe(e, next, e.Trigger, 100*simtime.Millisecond)
	onde.NoteIdle(0, 1)
	if onde.Name() != "Ondemand" {
		t.Error("name wrong")
	}
}

func TestEBSPicksMinEnergyMeetingDeadline(t *testing.T) {
	p := acmp.Exynos5410()
	e := NewEBS(p)
	if e.Name() != "EBS" || e.Quantum() != 0 {
		t.Error("EBS metadata wrong")
	}
	ev := tapEvent(simtime.Time(2*simtime.Second), 300e6)
	// Teach the cost model with two observations at different frequencies.
	for _, cfg := range []acmp.Config{{Core: acmp.BigCore, FreqMHz: 1000}, {Core: acmp.BigCore, FreqMHz: 1800}} {
		e.Observe(ev, cfg, ev.Trigger, p.Latency(ev.Work, cfg))
	}
	cfg := e.ConfigAtStart(ev, ev.Trigger)
	if cfg.IsZero() {
		t.Fatal("EBS returned no configuration")
	}
	// The chosen configuration must meet the deadline per the cost model.
	if lat := e.Cost().PredictLatency(ev.Signature(), cfg); lat > ev.QoSTarget() {
		t.Errorf("EBS config %v predicted latency %v exceeds the QoS target", cfg, lat)
	}
	// With no budget it escalates to max performance.
	late := e.ConfigAtStart(ev, ev.Deadline())
	if late != p.MaxPerformance() {
		t.Errorf("with no budget EBS should pick max performance, got %v", late)
	}
	if got := e.Requantum(ev, cfg, simtime.Second); got != cfg {
		t.Error("EBS should not change configuration mid-event")
	}
	e.NoteIdle(0, 1)
}

func TestOraclePlanMeetsDeadlinesAndCoversWindow(t *testing.T) {
	p := acmp.Exynos5410()
	var events []*webevent.Event
	for i := 0; i < 5; i++ {
		ev := tapEvent(simtime.Time(i)*simtime.Time(400*simtime.Millisecond), 250e6)
		ev.Seq = i
		events = append(events, ev)
	}
	o := NewOracle(p, events)
	if o.Name() != "Oracle" || !o.SpeculationEnabled() {
		t.Error("oracle metadata wrong")
	}
	tasks := o.Plan(0, []*webevent.Event{events[0]})
	if len(tasks) != 5 {
		t.Fatalf("plan has %d tasks, want 5", len(tasks))
	}
	if tasks[0].Event != events[0] {
		t.Error("the outstanding event must be the first task")
	}
	for i, task := range tasks {
		if task.Config.IsZero() {
			t.Fatalf("task %d has no config", i)
		}
	}
	// Observing an event advances the window.
	o.Observe(events[0])
	o.Observe(events[1])
	tasks = o.Plan(events[1].Trigger, nil)
	if len(tasks) != 3 {
		t.Fatalf("after observing two events the plan should cover 3 remaining, got %d", len(tasks))
	}
	// ReactiveConfig meets the deadline with ground truth.
	cfg := o.ReactiveConfig(events[2], events[2].Trigger)
	if p.Latency(events[2].Work, cfg) > events[2].QoSTarget() {
		t.Error("oracle reactive config misses the deadline")
	}
	if o.ReactiveConfig(events[2], events[2].Deadline()) != p.MaxPerformance() {
		t.Error("oracle with no budget should pick max performance")
	}
	// The no-op notification hooks must not panic.
	o.OnCorrectPrediction()
	o.OnMisprediction()
	o.OnReactiveEvent()
	o.ObserveExecution(events[0].Signature(), cfg, simtime.Millisecond)
	if got := o.Plan(0, nil); len(got) != 3 {
		t.Errorf("plan without outstanding should still cover the window, got %d", len(got))
	}
}
