package sched

import (
	"testing"

	"repro/internal/acmp"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

func oracleTrace(n int) []*webevent.Event {
	evs := make([]*webevent.Event, n)
	for i := range evs {
		evs[i] = &webevent.Event{
			Seq: i, App: "cnn", Type: webevent.Click,
			Trigger: simtime.Time(i+1) * simtime.Time(300*simtime.Millisecond),
			Work:    acmp.Workload{Tmem: 12 * simtime.Millisecond, Cycles: int64(200e6 + 40e6*float64(i))},
		}
	}
	return evs
}

func TestParseOracleVersion(t *testing.T) {
	cases := []struct {
		in   string
		want OracleVersion
		ok   bool
	}{
		{"", DefaultOracleVersion, true},
		{"v1", OracleV1, true},
		{"1", OracleV1, true},
		{"V1", OracleV1, true},
		{" v2 ", OracleV2, true},
		{"2", OracleV2, true},
		{"v3", 0, false},
		{"fast", 0, false},
	}
	for _, c := range cases {
		got, err := ParseOracleVersion(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseOracleVersion(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseOracleVersion(%q) should fail", c.in)
		}
	}
	if OracleV1.String() != "v1" || OracleV2.String() != "v2" || OracleVersion(7).String() != "v7" {
		t.Error("String spellings wrong")
	}
	if OracleVersion(0).OrDefault() != DefaultOracleVersion || OracleV1.OrDefault() != OracleV1 {
		t.Error("OrDefault wrong")
	}
	if !OracleV1.Valid() || !OracleV2.Valid() || OracleVersion(3).Valid() {
		t.Error("Valid wrong")
	}
}

func TestNewOracleDefaultsToV2(t *testing.T) {
	o := NewOracle(acmp.Exynos5410(), oracleTrace(3))
	if o.Version() != DefaultOracleVersion || o.Version() != OracleV2 {
		t.Fatalf("default oracle version = %v", o.Version())
	}
	if z := NewOracleWithVersion(acmp.Exynos5410(), oracleTrace(3), 0); z.Version() != DefaultOracleVersion {
		t.Fatalf("zero version should resolve to default, got %v", z.Version())
	}
}

// TestOraclePlanCacheHit is the counter assertion for the plan-cache fix:
// planning the identical horizon twice must answer the second call from the
// cache (one solve, one hit) with an identical task list, for both versions.
func TestOraclePlanCacheHit(t *testing.T) {
	for _, v := range []OracleVersion{OracleV1, OracleV2} {
		o := NewOracleWithVersion(acmp.Exynos5410(), oracleTrace(6), v)
		start := simtime.Time(100 * simtime.Millisecond)

		first := o.Plan(start, nil)
		if len(first) == 0 {
			t.Fatalf("%v: empty plan", v)
		}
		// Plan reuses its output buffer; snapshot before the second call.
		snap := make([]SpecTask, len(first))
		copy(snap, first)
		s1 := o.SolverStats()
		if s1.Solves != 1 || s1.PlanCacheHits != 0 {
			t.Fatalf("%v: after first plan stats = %+v", v, s1)
		}

		second := o.Plan(start, nil)
		s2 := o.SolverStats()
		if s2.PlanCacheHits != 1 {
			t.Errorf("%v: repeated identical horizon missed the plan cache: %+v", v, s2)
		}
		if s2.Solves != 1 || s2.Nodes != s1.Nodes {
			t.Errorf("%v: cached plan re-ran the solver: %+v vs %+v", v, s2, s1)
		}
		if len(second) != len(snap) {
			t.Fatalf("%v: cached plan length %d != %d", v, len(second), len(snap))
		}
		for i := range snap {
			if second[i] != snap[i] {
				t.Errorf("%v: cached task %d differs: %+v vs %+v", v, i, second[i], snap[i])
			}
		}

		// A different start time is a different horizon: must solve again.
		o.Plan(start.Add(simtime.Millisecond), nil)
		if s3 := o.SolverStats(); s3.Solves != 2 || s3.PlanCacheHits != 1 {
			t.Errorf("%v: shifted horizon should re-solve: %+v", v, s3)
		}
	}
}

// TestOracleV2MatchesV1OnProvenWindows checks that where v1's reference
// solver completes within budget (no aborts), v2 plans the same energy; the
// task lists agree config-for-config on this tie-free workload.
func TestOracleV2MatchesV1OnProvenWindows(t *testing.T) {
	p := acmp.Exynos5410()
	evs := oracleTrace(6)
	o1 := NewOracleWithVersion(p, evs, OracleV1)
	o2 := NewOracleWithVersion(p, evs, OracleV2)
	start := simtime.Time(50 * simtime.Millisecond)
	t1 := o1.Plan(start, nil)
	t2 := o2.Plan(start, nil)
	if o1.SolverStats().BudgetAborts != 0 {
		t.Skip("v1 aborted; windows not comparable")
	}
	if len(t1) != len(t2) {
		t.Fatalf("plan lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i].Config != t2[i].Config {
			t.Errorf("task %d config differs: %v vs %v", i, t1[i].Config, t2[i].Config)
		}
	}
	if o2.SolverStats().BudgetAborts != 0 {
		t.Errorf("v2 aborted on a 6-event window: %+v", o2.SolverStats())
	}
}

// TestOraclePlanSteadyStateAllocs pins the zero-alloc property of repeated
// oracle planning (the v2 throughput path): after warmup, planning the same
// session's horizons must not allocate.
func TestOraclePlanSteadyStateAllocs(t *testing.T) {
	o := NewOracleWithVersion(acmp.Exynos5410(), oracleTrace(8), OracleV2)
	starts := []simtime.Time{
		simtime.Time(10 * simtime.Millisecond),
		simtime.Time(20 * simtime.Millisecond),
		simtime.Time(30 * simtime.Millisecond),
	}
	for _, s := range starts { // warmup: solve + fill the plan cache
		o.Plan(s, nil)
	}
	avg := testing.AllocsPerRun(50, func() {
		for _, s := range starts {
			o.Plan(s, nil)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Plan allocates %.1f times per cycle", avg)
	}
}
