// Package sched defines the scheduler contracts used by the simulator and
// implements the reactive baselines the paper compares against: the
// Android-style Interactive and Ondemand CPU governors (QoS-agnostic,
// utilization-driven) and EBS, the state-of-the-art reactive QoS-aware
// event-based scheduler.
package sched

import (
	"repro/internal/acmp"
	"repro/internal/optimizer"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

// ReactivePolicy is the contract for reactive schedulers: they are consulted
// only for events that have already been triggered, one at a time.
type ReactivePolicy interface {
	// Name identifies the scheduler in experiment output.
	Name() string
	// ConfigAtStart returns the ACMP configuration to begin executing the
	// event with, given its actual start time.
	ConfigAtStart(e *webevent.Event, start simtime.Time) acmp.Config
	// Quantum returns the governor sampling period; 0 means the
	// configuration is never re-evaluated during an event's execution.
	Quantum() simtime.Duration
	// Requantum is called after each sampling period while the event
	// executes and may return an updated configuration (governors ramp up
	// under sustained load).
	Requantum(e *webevent.Event, current acmp.Config, elapsed simtime.Duration) acmp.Config
	// NoteIdle informs the policy of an idle interval on the main thread.
	NoteIdle(from, to simtime.Time)
	// Observe reports a completed execution for bookkeeping/cost models.
	Observe(e *webevent.Event, cfg acmp.Config, start simtime.Time, execLatency simtime.Duration)
}

// SpecTask is one entry of a proactive scheduler's plan: an outstanding
// event (Event != nil) or a predicted future event, with the configuration
// the optimizer assigned to it.
type SpecTask struct {
	// Event is the outstanding actual event this task executes, or nil for a
	// predicted (speculative) task.
	Event *webevent.Event
	// Type is the (predicted) event type.
	Type webevent.Type
	// Signature keys the cost model for the task.
	Signature webevent.Signature
	// Config is the assigned ACMP configuration.
	Config acmp.Config
	// EstimatedLatency is the optimizer's latency estimate.
	EstimatedLatency simtime.Duration
	// ExpectedTrigger is the (predicted) trigger time.
	ExpectedTrigger simtime.Time
}

// ProactivePolicy is the contract for proactive schedulers (PES and the
// Oracle): they observe arrivals, plan speculative schedules across
// outstanding and predicted events, and fall back to reactive decisions when
// speculation is unavailable.
type ProactivePolicy interface {
	// Name identifies the scheduler in experiment output.
	Name() string
	// Observe is called for every actual event arrival before scheduling it.
	Observe(e *webevent.Event)
	// Plan produces a speculative schedule covering the outstanding events
	// (possibly none) followed by predicted future events. It may return
	// only the outstanding events (no prediction) or nothing at all, in
	// which case the simulator executes outstanding events reactively.
	Plan(now simtime.Time, outstanding []*webevent.Event) []SpecTask
	// ReactiveConfig returns the configuration for executing an event
	// without speculation (the EBS-equivalent fallback inside PES).
	ReactiveConfig(e *webevent.Event, start simtime.Time) acmp.Config
	// ObserveExecution reports a completed execution for cost-model updates.
	ObserveExecution(sig webevent.Signature, cfg acmp.Config, execLatency simtime.Duration)
	// OnCorrectPrediction and OnMisprediction report prediction outcomes.
	OnCorrectPrediction()
	OnMisprediction()
	// OnReactiveEvent reports an event handled without speculation.
	OnReactiveEvent()
	// SpeculationEnabled reports whether speculation is currently allowed.
	SpeculationEnabled() bool
}

// SolverStatsProvider is implemented by schedulers that run the constrained
// optimizer (PES and the Oracle). The engine copies the stats into the
// session Result after a run, from where the batch runner and the campaign
// results endpoint aggregate them.
type SolverStatsProvider interface {
	// SolverStats returns the scheduler's accumulated solver statistics.
	SolverStats() optimizer.SolverStats
}

// PerformanceLadder returns every configuration of the platform ordered from
// lowest to highest performance (little cluster ascending, then big cluster
// ascending) — the ladder utilization-driven governors walk.
func PerformanceLadder(p *acmp.Platform) []acmp.Config {
	return p.Configs()
}

// governor holds the shared utilization-tracking state of the Interactive
// and Ondemand policies.
type governor struct {
	platform *acmp.Platform
	ladder   []acmp.Config

	lastBusyEnd simtime.Time
	lastBusyDur simtime.Duration
}

func (g *governor) NoteIdle(from, to simtime.Time) {
	// Idle intervals only matter through the gap between lastBusyEnd and the
	// next event start, which ConfigAtStart measures directly.
	_ = from
	_ = to
}

// utilizationAt estimates the recent CPU utilization seen by the governor at
// the given instant, over a sliding window that contains the last busy
// interval and the idle gap since.
func (g *governor) utilizationAt(start simtime.Time) float64 {
	const window = 200 * simtime.Millisecond
	idle := start.Sub(g.lastBusyEnd)
	if idle < 0 {
		idle = 0
	}
	if idle > window {
		return 0
	}
	busy := g.lastBusyDur
	if busy > window-idle {
		busy = window - idle
	}
	return float64(busy) / float64(window)
}

// levelConfig maps a utilization-style level in [0, 1] onto the performance
// ladder.
func (g *governor) levelConfig(level float64) acmp.Config {
	if level < 0 {
		level = 0
	}
	if level > 1 {
		level = 1
	}
	idx := int(level * float64(len(g.ladder)-1))
	return g.ladder[idx]
}

func (g *governor) observe(start simtime.Time, execLatency simtime.Duration) {
	g.lastBusyEnd = start.Add(execLatency)
	g.lastBusyDur = execLatency
}

// Interactive models Android's default Interactive CPU governor: it samples
// CPU utilization and jumps to the highest frequency once utilization
// crosses 85%, which under a bursty event-driven workload means most busy
// time is spent at the big cluster's top frequency (the paper measures
// >80%). It is QoS-agnostic.
type Interactive struct {
	governor
}

// NewInteractive creates the Interactive governor for the platform.
func NewInteractive(p *acmp.Platform) *Interactive {
	return &Interactive{governor{platform: p, ladder: PerformanceLadder(p)}}
}

// Name implements ReactivePolicy.
func (i *Interactive) Name() string { return "Interactive" }

// Quantum implements ReactivePolicy: Interactive samples every 20 ms.
func (i *Interactive) Quantum() simtime.Duration { return 20 * simtime.Millisecond }

// ConfigAtStart implements ReactivePolicy: the starting configuration
// reflects the utilization of the recent window, so an event arriving after
// an idle pause starts on a low-performance operating point.
func (i *Interactive) ConfigAtStart(e *webevent.Event, start simtime.Time) acmp.Config {
	util := i.utilizationAt(start)
	if util >= 0.85 {
		return i.platform.MaxPerformance()
	}
	// Interactive is biased toward responsiveness: it never starts below a
	// third of the ladder once any recent activity exists.
	level := 0.35 + 0.5*util
	return i.levelConfig(level)
}

// Requantum implements ReactivePolicy: during sustained execution the
// sampled utilization is 100%, so the governor ramps to the maximum
// frequency after one period.
func (i *Interactive) Requantum(e *webevent.Event, current acmp.Config, elapsed simtime.Duration) acmp.Config {
	if elapsed >= i.Quantum() {
		return i.platform.MaxPerformance()
	}
	return current
}

// Observe implements ReactivePolicy.
func (i *Interactive) Observe(e *webevent.Event, cfg acmp.Config, start simtime.Time, execLatency simtime.Duration) {
	i.observe(start, execLatency)
}

// Ondemand models the Ondemand governor: it also raises frequency under
// load but samples less often and returns toward low frequencies more
// aggressively, trading responsiveness for energy (Fig. 13 of the paper).
type Ondemand struct {
	governor
}

// NewOndemand creates the Ondemand governor for the platform.
func NewOndemand(p *acmp.Platform) *Ondemand {
	return &Ondemand{governor{platform: p, ladder: PerformanceLadder(p)}}
}

// Name implements ReactivePolicy.
func (o *Ondemand) Name() string { return "Ondemand" }

// Quantum implements ReactivePolicy: Ondemand samples every 100 ms.
func (o *Ondemand) Quantum() simtime.Duration { return 100 * simtime.Millisecond }

// ConfigAtStart implements ReactivePolicy.
func (o *Ondemand) ConfigAtStart(e *webevent.Event, start simtime.Time) acmp.Config {
	util := o.utilizationAt(start)
	if util >= 0.95 {
		return o.platform.MaxPerformance()
	}
	return o.levelConfig(0.15 + 0.5*util)
}

// Requantum implements ReactivePolicy: Ondemand ramps one big step per
// sampling period rather than jumping straight to the maximum.
func (o *Ondemand) Requantum(e *webevent.Event, current acmp.Config, elapsed simtime.Duration) acmp.Config {
	if elapsed < o.Quantum() {
		return current
	}
	// Move roughly half-way up the remaining ladder each period.
	ladder := o.ladder
	cur := 0
	for i, cfg := range ladder {
		if cfg == current {
			cur = i
			break
		}
	}
	next := cur + (len(ladder)-cur)/2
	if next <= cur {
		next = cur + 1
	}
	if next >= len(ladder) {
		next = len(ladder) - 1
	}
	return ladder[next]
}

// Observe implements ReactivePolicy.
func (o *Ondemand) Observe(e *webevent.Event, cfg acmp.Config, start simtime.Time, execLatency simtime.Duration) {
	o.observe(start, execLatency)
}

// EBS is the reactive QoS-aware Event-Based Scheduler of Zhu et al. (HPCA
// 2015), the paper's strongest reactive baseline: before executing an event
// it predicts, with the shared DVFS cost model, the minimum-energy ACMP
// configuration that still meets the event's QoS target, considering only
// that single event.
type EBS struct {
	platform *acmp.Platform
	cost     *optimizer.CostModel
}

// NewEBS creates an EBS instance with its own cost model.
func NewEBS(p *acmp.Platform) *EBS {
	return &EBS{platform: p, cost: optimizer.NewCostModel(p)}
}

// Name implements ReactivePolicy.
func (e *EBS) Name() string { return "EBS" }

// Quantum implements ReactivePolicy: EBS commits to one configuration per
// event.
func (e *EBS) Quantum() simtime.Duration { return 0 }

// ConfigAtStart implements ReactivePolicy: the minimum-energy configuration
// that meets the event's deadline from its actual start time.
func (e *EBS) ConfigAtStart(ev *webevent.Event, start simtime.Time) acmp.Config {
	return e.cost.PickMinEnergyConfig(ev.Signature(), start, ev.Deadline())
}

// Requantum implements ReactivePolicy (no-op for EBS).
func (e *EBS) Requantum(ev *webevent.Event, current acmp.Config, elapsed simtime.Duration) acmp.Config {
	return current
}

// NoteIdle implements ReactivePolicy (no-op for EBS).
func (e *EBS) NoteIdle(from, to simtime.Time) {}

// Observe implements ReactivePolicy: feed the realized latency back into the
// cost model.
func (e *EBS) Observe(ev *webevent.Event, cfg acmp.Config, start simtime.Time, execLatency simtime.Duration) {
	e.cost.Observe(ev.Signature(), cfg, execLatency)
}

// Cost exposes EBS's cost model (used by tests and by PES when it falls back
// to reactive behaviour with a shared model).
func (e *EBS) Cost() *optimizer.CostModel { return e.cost }

// Interface conformance checks.
var (
	_ ReactivePolicy = (*Interactive)(nil)
	_ ReactivePolicy = (*Ondemand)(nil)
	_ ReactivePolicy = (*EBS)(nil)
)
