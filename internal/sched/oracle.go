package sched

import (
	"time"

	"repro/internal/acmp"
	"repro/internal/ilp"
	"repro/internal/optimizer"
	"repro/internal/render"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

// OracleWindow is how many upcoming events the oracle optimizes over in one
// plan. The paper's oracle knows the entire event sequence; a bounded window
// keeps the ILP tractable while remaining effectively global because plans
// are recomputed as the session progresses.
const OracleWindow = 12

// Oracle is the upper-bound scheduler of the paper's evaluation: it has a
// priori knowledge of the entire event sequence (types, trigger times and
// workloads), never mis-predicts, and globally minimizes energy under every
// event's QoS constraint.
type Oracle struct {
	platform *acmp.Platform
	events   []*webevent.Event
	nextIdx  int
	stats    optimizer.SolverStats
}

// NewOracle creates an oracle for a specific trace.
func NewOracle(p *acmp.Platform, events []*webevent.Event) *Oracle {
	return &Oracle{platform: p, events: events}
}

// Name implements ProactivePolicy.
func (o *Oracle) Name() string { return "Oracle" }

// Observe implements ProactivePolicy.
func (o *Oracle) Observe(e *webevent.Event) {
	if e.Seq+1 > o.nextIdx {
		o.nextIdx = e.Seq + 1
	}
}

// Plan implements ProactivePolicy: it schedules the outstanding events plus
// the next OracleWindow future events with exact workloads and deadlines.
func (o *Oracle) Plan(start simtime.Time, outstanding []*webevent.Event) []SpecTask {
	type entry struct {
		ev        *webevent.Event
		isPending bool
	}
	var entries []entry
	first := o.nextIdx
	for _, e := range outstanding {
		entries = append(entries, entry{ev: e, isPending: true})
		if e.Seq+1 > first {
			first = e.Seq + 1
		}
	}
	for i := first; i < len(o.events) && len(entries) < OracleWindow; i++ {
		entries = append(entries, entry{ev: o.events[i]})
	}
	if len(entries) == 0 {
		return nil
	}

	configs := o.platform.Configs()
	prob := ilp.Problem{Start: start}
	for _, en := range entries {
		item := ilp.Item{Deadline: en.ev.Deadline().Add(-render.DisplayMargin)}
		for _, cfg := range configs {
			lat := o.platform.Latency(en.ev.Work, cfg)
			item.Choices = append(item.Choices, ilp.Choice{
				Latency: lat,
				Energy:  acmp.EnergyMJ(o.platform.Power(cfg), lat),
			})
		}
		prob.Items = append(prob.Items, item)
	}
	// The oracle keeps the reference-order solver: its figures are an
	// upper-bound baseline produced under the reference search budget, and
	// its hardest 12-item windows exhaust that budget, so the returned
	// assignment depends on the traversal itself. SolveReferenceOrder pins
	// the traversal (bit-identical assignments and node counts) while doing
	// each feasibility test in O(1).
	begun := time.Now()
	sol := ilp.SolveReferenceOrder(prob)
	o.stats.WallNS += time.Since(begun).Nanoseconds()
	o.stats.Solves++
	o.stats.Nodes += int64(sol.Nodes)

	out := make([]SpecTask, 0, len(entries))
	for i, en := range entries {
		cfg := configs[sol.Choice[i]]
		task := SpecTask{
			Type:             en.ev.Type,
			Signature:        en.ev.Signature(),
			Config:           cfg,
			EstimatedLatency: o.platform.Latency(en.ev.Work, cfg),
			ExpectedTrigger:  en.ev.Trigger,
		}
		if en.isPending {
			task.Event = en.ev
		}
		out = append(out, task)
	}
	return out
}

// ReactiveConfig implements ProactivePolicy: with perfect workload knowledge
// the oracle picks the true minimum-energy configuration meeting the
// deadline.
func (o *Oracle) ReactiveConfig(e *webevent.Event, start simtime.Time) acmp.Config {
	budget := e.Deadline().Sub(start) - render.DisplayMargin
	best := acmp.Config{}
	bestEnergy := 0.0
	for _, cfg := range o.platform.Configs() {
		lat := o.platform.Latency(e.Work, cfg)
		if lat > budget {
			continue
		}
		en := acmp.EnergyMJ(o.platform.Power(cfg), lat)
		if best.IsZero() || en < bestEnergy {
			best, bestEnergy = cfg, en
		}
	}
	if best.IsZero() {
		return o.platform.MaxPerformance()
	}
	return best
}

// ObserveExecution implements ProactivePolicy (the oracle needs no cost
// model).
func (o *Oracle) ObserveExecution(sig webevent.Signature, cfg acmp.Config, execLatency simtime.Duration) {
}

// OnCorrectPrediction implements ProactivePolicy.
func (o *Oracle) OnCorrectPrediction() {}

// OnMisprediction implements ProactivePolicy; it cannot happen for an
// oracle.
func (o *Oracle) OnMisprediction() {}

// OnReactiveEvent implements ProactivePolicy.
func (o *Oracle) OnReactiveEvent() {}

// SpeculationEnabled implements ProactivePolicy.
func (o *Oracle) SpeculationEnabled() bool { return true }

// SolverStats implements SolverStatsProvider. The oracle has no plan cache,
// so PlanCacheHits is always zero.
func (o *Oracle) SolverStats() optimizer.SolverStats { return o.stats }

var (
	_ ProactivePolicy     = (*Oracle)(nil)
	_ SolverStatsProvider = (*Oracle)(nil)
)
