package sched

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/acmp"
	"repro/internal/ilp"
	"repro/internal/optimizer"
	"repro/internal/render"
	"repro/internal/simtime"
	"repro/internal/webevent"
)

// OracleWindow is how many upcoming events the oracle optimizes over in one
// plan. The paper's oracle knows the entire event sequence; a bounded window
// keeps the ILP tractable while remaining effectively global because plans
// are recomputed as the session progresses.
const OracleWindow = 12

// OracleVersion selects which solver encoding the Oracle runs.
//
// v1 is the paper-exact baseline: the frozen reference-order traversal
// (ilp.SolveReferenceOrder) whose hardest 12-event windows exhaust the node
// budget, making the published figures artifacts of the traversal itself. v2
// runs the pruned fast-path encoding (ilp.Solver): the same optimum wherever
// v1 proved one, provably no worse energy where v1 was truncated, and
// roughly the PES hot path's cost per solve.
type OracleVersion int

const (
	// OracleV1 is the frozen paper-exact reference-order solver.
	OracleV1 OracleVersion = 1
	// OracleV2 is the pruned zero-alloc fast-path solver.
	OracleV2 OracleVersion = 2
)

// DefaultOracleVersion is the version used when none is requested.
const DefaultOracleVersion = OracleV2

// String renders the version in the canonical flag/wire spelling.
func (v OracleVersion) String() string {
	switch v {
	case OracleV1:
		return "v1"
	case OracleV2:
		return "v2"
	}
	return fmt.Sprintf("v%d", int(v))
}

// ParseOracleVersion resolves a flag/wire spelling ("v1", "1", "v2", "2";
// the empty string means the default) to a version.
func ParseOracleVersion(s string) (OracleVersion, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "":
		return DefaultOracleVersion, nil
	case "v1", "1":
		return OracleV1, nil
	case "v2", "2":
		return OracleV2, nil
	}
	return 0, fmt.Errorf("sched: unknown oracle version %q (want v1 or v2)", s)
}

// OrDefault maps the zero value to DefaultOracleVersion, so structs carrying
// a version need not special-case "unset".
func (v OracleVersion) OrDefault() OracleVersion {
	if v == 0 {
		return DefaultOracleVersion
	}
	return v
}

// Valid reports whether v names an implemented solver.
func (v OracleVersion) Valid() bool { return v == OracleV1 || v == OracleV2 }

// oracleEntry is one event of a plan window.
type oracleEntry struct {
	ev        *webevent.Event
	isPending bool
}

// oraclePlan is one memoized solve: the chosen indices into the platform's
// configuration list.
type oraclePlan struct {
	choice []int
}

// maxCachedOraclePlans bounds the oracle plan cache. The oracle never
// learns, so entries stay valid for the whole session and the bound only
// caps memory.
const maxCachedOraclePlans = 256

// Oracle is the upper-bound scheduler of the paper's evaluation: it has a
// priori knowledge of the entire event sequence (types, trigger times and
// workloads), never mis-predicts, and globally minimizes energy under every
// event's QoS constraint.
type Oracle struct {
	platform *acmp.Platform
	events   []*webevent.Event
	version  OracleVersion
	nextIdx  int
	stats    optimizer.SolverStats

	// solver is the reusable v2 fast-path solver (nil under v1).
	solver *ilp.Solver

	// plans memoizes solved windows by (start, per-event workload and
	// deadline); keyBuf is the reusable key scratch.
	plans  map[string]oraclePlan
	keyBuf []byte

	// Reusable plan-building buffers: the window's entries, the problem's
	// item list with one flat backing array for every item's choices, and
	// the returned task list (consumed synchronously by the engine's
	// adoptPlan, which copies the values). Recycling them makes Plan calls
	// allocation-free in the steady state for both versions.
	entries   []oracleEntry
	itemsBuf  []ilp.Item
	choiceBuf []ilp.Choice
	out       []SpecTask
}

// NewOracle creates an oracle for a specific trace at the default version.
func NewOracle(p *acmp.Platform, events []*webevent.Event) *Oracle {
	return NewOracleWithVersion(p, events, DefaultOracleVersion)
}

// NewOracleWithVersion creates an oracle running the given solver version
// (the zero value selects the default).
func NewOracleWithVersion(p *acmp.Platform, events []*webevent.Event, v OracleVersion) *Oracle {
	o := &Oracle{
		platform: p,
		events:   events,
		version:  v.OrDefault(),
		plans:    make(map[string]oraclePlan),
	}
	if o.version == OracleV2 {
		o.solver = ilp.NewSolver()
	}
	return o
}

// Name implements ProactivePolicy.
func (o *Oracle) Name() string { return "Oracle" }

// Version returns the solver version the oracle runs.
func (o *Oracle) Version() OracleVersion { return o.version }

// Observe implements ProactivePolicy.
func (o *Oracle) Observe(e *webevent.Event) {
	if e.Seq+1 > o.nextIdx {
		o.nextIdx = e.Seq + 1
	}
}

// appendOraclePlanKey fingerprints a plan window into buf. The oracle's
// choice set for an event is a pure function of its exact workload and the
// platform, and the chain constraints are a pure function of (start,
// deadlines), so two windows with equal keys build the identical
// ilp.Problem. The key spells the contents out rather than hashing them, so
// a collision cannot corrupt a plan; appending into a reusable buffer keeps
// the lookup allocation-free (map access by string(buf) does not copy).
func appendOraclePlanKey(buf []byte, start simtime.Time, entries []oracleEntry) []byte {
	buf = strconv.AppendInt(buf, int64(start), 10)
	for _, en := range entries {
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(en.ev.Work.Tmem), 10)
		buf = append(buf, '/')
		buf = strconv.AppendInt(buf, en.ev.Work.Cycles, 10)
		buf = append(buf, '@')
		buf = strconv.AppendInt(buf, int64(en.ev.Deadline()), 10)
	}
	return buf
}

// Plan implements ProactivePolicy: it schedules the outstanding events plus
// the next OracleWindow future events with exact workloads and deadlines. A
// repeated identical window (same start, same workloads and deadlines) is
// answered from the plan cache without solving; the applied assignment is
// identical either way.
func (o *Oracle) Plan(start simtime.Time, outstanding []*webevent.Event) []SpecTask {
	entries := o.entries[:0]
	first := o.nextIdx
	for _, e := range outstanding {
		entries = append(entries, oracleEntry{ev: e, isPending: true})
		if e.Seq+1 > first {
			first = e.Seq + 1
		}
	}
	for i := first; i < len(o.events) && len(entries) < OracleWindow; i++ {
		entries = append(entries, oracleEntry{ev: o.events[i]})
	}
	o.entries = entries
	if len(entries) == 0 {
		return nil
	}

	configs := o.platform.Configs()
	o.keyBuf = appendOraclePlanKey(o.keyBuf[:0], start, entries)
	var choice []int
	if plan, ok := o.plans[string(o.keyBuf)]; ok {
		o.stats.PlanCacheHits++
		choice = plan.choice
	} else {
		choice = o.solve(start, entries, configs)
	}

	out := o.out[:0]
	for i, en := range entries {
		cfg := configs[choice[i]]
		task := SpecTask{
			Type:             en.ev.Type,
			Signature:        en.ev.Signature(),
			Config:           cfg,
			EstimatedLatency: o.platform.Latency(en.ev.Work, cfg),
			ExpectedTrigger:  en.ev.Trigger,
		}
		if en.isPending {
			task.Event = en.ev
		}
		out = append(out, task)
	}
	o.out = out
	return out
}

// solve runs the version-selected solver over the window and memoizes the
// result. The returned choice slice is owned by the plan cache.
func (o *Oracle) solve(start simtime.Time, entries []oracleEntry, configs []acmp.Config) []int {
	// Build the problem on the reusable buffers: one Item per entry, all
	// choice lists carved out of one flat backing array.
	nc := len(configs)
	if cap(o.itemsBuf) < len(entries) {
		o.itemsBuf = make([]ilp.Item, 0, 2*len(entries))
	}
	if cap(o.choiceBuf) < len(entries)*nc {
		o.choiceBuf = make([]ilp.Choice, 2*len(entries)*nc)
	}
	prob := ilp.Problem{Start: start, Items: o.itemsBuf[:0]}
	for ei, en := range entries {
		choices := o.choiceBuf[ei*nc : ei*nc : (ei+1)*nc]
		for _, cfg := range configs {
			lat := o.platform.Latency(en.ev.Work, cfg)
			choices = append(choices, ilp.Choice{
				Latency: lat,
				Energy:  acmp.EnergyMJ(o.platform.Power(cfg), lat),
			})
		}
		prob.Items = append(prob.Items, ilp.Item{
			Deadline: en.ev.Deadline().Add(-render.DisplayMargin),
			Choices:  choices,
		})
	}

	var sol ilp.Assignment
	begun := time.Now()
	if o.version == OracleV1 {
		// v1 keeps the reference-order solver: its figures are an upper-bound
		// baseline produced under the reference search budget, and its
		// hardest 12-item windows exhaust that budget, so the returned
		// assignment depends on the traversal itself. SolveReferenceOrder
		// pins the traversal (bit-identical assignments and node counts)
		// while doing each feasibility test in O(1).
		sol = ilp.SolveReferenceOrder(prob)
	} else {
		sol = o.solver.Solve(prob)
	}
	o.stats.WallNS += time.Since(begun).Nanoseconds()
	o.stats.Solves++
	o.stats.Nodes += int64(sol.Nodes)
	if sol.Aborted() {
		o.stats.BudgetAborts++
	}

	// The v2 solver's Choice aliases its scratch; copy before retaining.
	choice := append([]int(nil), sol.Choice...)
	if len(o.plans) < maxCachedOraclePlans {
		o.plans[string(o.keyBuf)] = oraclePlan{choice: choice}
	}
	return choice
}

// ReactiveConfig implements ProactivePolicy: with perfect workload knowledge
// the oracle picks the true minimum-energy configuration meeting the
// deadline.
func (o *Oracle) ReactiveConfig(e *webevent.Event, start simtime.Time) acmp.Config {
	budget := e.Deadline().Sub(start) - render.DisplayMargin
	best := acmp.Config{}
	bestEnergy := 0.0
	for _, cfg := range o.platform.Configs() {
		lat := o.platform.Latency(e.Work, cfg)
		if lat > budget {
			continue
		}
		en := acmp.EnergyMJ(o.platform.Power(cfg), lat)
		if best.IsZero() || en < bestEnergy {
			best, bestEnergy = cfg, en
		}
	}
	if best.IsZero() {
		return o.platform.MaxPerformance()
	}
	return best
}

// ObserveExecution implements ProactivePolicy (the oracle needs no cost
// model).
func (o *Oracle) ObserveExecution(sig webevent.Signature, cfg acmp.Config, execLatency simtime.Duration) {
}

// OnCorrectPrediction implements ProactivePolicy.
func (o *Oracle) OnCorrectPrediction() {}

// OnMisprediction implements ProactivePolicy; it cannot happen for an
// oracle.
func (o *Oracle) OnMisprediction() {}

// OnReactiveEvent implements ProactivePolicy.
func (o *Oracle) OnReactiveEvent() {}

// SpeculationEnabled implements ProactivePolicy.
func (o *Oracle) SpeculationEnabled() bool { return true }

// SolverStats implements SolverStatsProvider.
func (o *Oracle) SolverStats() optimizer.SolverStats { return o.stats }

var (
	_ ProactivePolicy     = (*Oracle)(nil)
	_ SolverStatsProvider = (*Oracle)(nil)
)
