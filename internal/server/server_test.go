package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sessions"
)

// The server trains a predictor at construction, so tests share one small
// instance (plus dedicated ones where clean counters matter).
var (
	srvOnce sync.Once
	srv     *Server
	srvErr  error
)

func smallConfig() Config {
	return Config{
		Experiments: experiments.Config{TrainTracesPerApp: 2, EvalTracesPerApp: 1, Parallel: 2},
		JobWorkers:  2,
	}
}

func testServer(t *testing.T) *Server {
	t.Helper()
	if testing.Short() {
		t.Skip("server tests train a predictor")
	}
	srvOnce.Do(func() { srv, srvErr = New(smallConfig()) })
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srv
}

func TestCampaignExpansionDefaults(t *testing.T) {
	s := testServer(t)
	plan, err := Campaign{}.Expand(s.Setup())
	if err != nil {
		t.Fatal(err)
	}
	// 18 applications × 1 seed × 5 schedulers.
	if got, want := len(plan.Sessions), 18*5; got != want {
		t.Errorf("default campaign expands to %d sessions, want %d", got, want)
	}
	if len(plan.Meta) != len(plan.Sessions) {
		t.Errorf("meta (%d) not aligned with sessions (%d)", len(plan.Meta), len(plan.Sessions))
	}
	if plan.Platform != "Exynos5410" {
		t.Errorf("default platform %q", plan.Platform)
	}
}

func TestCampaignExpansionSweep(t *testing.T) {
	s := testServer(t)
	c := Campaign{
		Platform:   "tx2",
		Apps:       []string{"cnn"},
		TraceSeeds: []int64{1, 2},
		Schedulers: []string{"ebs", "PES"},
		// 0.7 is the base threshold, so it must be deduplicated.
		Sweep: &Sweep{ConfidenceThresholds: []float64{0.9, 0.5, 0.7}},
	}
	plan, err := c.Expand(s.Setup())
	if err != nil {
		t.Fatal(err)
	}
	// Per seed: EBS + PES at base, plus PES at 0.5 and 0.9.
	if got, want := len(plan.Sessions), 2*(2+2); got != want {
		t.Fatalf("sweep campaign expands to %d sessions, want %d", got, want)
	}
	var labels []string
	for _, m := range plan.Meta[:4] {
		labels = append(labels, m.Label)
	}
	if got, want := strings.Join(labels, ","), "EBS,PES,PES@50%,PES@90%"; got != want {
		t.Errorf("labels %q, want %q", got, want)
	}
	for _, m := range plan.Meta {
		if m.Platform != "TX2Parker" {
			t.Fatalf("session platform %q, want TX2Parker", m.Platform)
		}
		if m.Scheduler == sessions.PES && m.ConfidenceThreshold == 0 {
			t.Errorf("PES session missing confidence threshold: %+v", m)
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	s := testServer(t)
	cases := map[string]Campaign{
		"bad platform":  {Platform: "pixel9"},
		"bad app":       {Apps: []string{"nosuchapp"}},
		"bad scheduler": {Schedulers: []string{"nosuchsched"}},
		"bad threshold": {Sweep: &Sweep{ConfidenceThresholds: []float64{1.5}}},
	}
	for name, c := range cases {
		if _, err := c.Expand(s.Setup()); err == nil {
			t.Errorf("%s: expansion succeeded, want error", name)
		}
	}
}

func TestPlanTables(t *testing.T) {
	s := testServer(t)
	c := Campaign{Apps: []string{"cnn", "ebay"}, TraceSeeds: []int64{1, 2}, Schedulers: []string{"Interactive", "EBS"}}
	plan, err := c.Expand(s.Setup())
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.Setup().Runner.Run(plan.Sessions)
	if err != nil {
		t.Fatal(err)
	}
	tables := plan.Tables(results)
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want energy + qos", len(tables))
	}
	for _, tab := range tables {
		if got, want := strings.Join(tab.Columns, ","), "Interactive,EBS"; got != want {
			t.Errorf("%s columns %q, want %q", tab.ID, got, want)
		}
		if len(tab.Rows) != 2 {
			t.Errorf("%s has %d rows, want one per app", tab.ID, len(tab.Rows))
		}
	}
	energy := tables[0]
	for _, row := range energy.Rows {
		for i, v := range row.Values {
			if v <= 0 {
				t.Errorf("energy[%s][%s] = %g, want > 0", row.Label, energy.Columns[i], v)
			}
		}
	}
}

// waitDone polls the status endpoint until the job reaches a terminal state.
func waitDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(base + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Status != StatusQueued && st.Status != StatusRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still %s (%d/%d) at deadline", id, st.Status, st.Completed, st.Sessions)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHTTPCampaignLifecycle(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Liveness first.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Workers < 1 {
		t.Fatalf("healthz = %+v", h)
	}

	// Submit a small campaign.
	body := `{"apps":["cnn"],"trace_seeds":[1],"schedulers":["Interactive","EBS"]}`
	resp, err = http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Sessions != 2 {
		t.Fatalf("campaign expanded to %d sessions, want 2", st.Sessions)
	}

	final := waitDone(t, ts.URL, st.ID)
	if final.Status != StatusDone {
		t.Fatalf("campaign ended %s: %s", final.Status, final.Error)
	}
	if final.Completed != final.Sessions {
		t.Errorf("progress shows %d/%d completed", final.Completed, final.Sessions)
	}

	resp, err = http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	var res Results
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(res.Rows) != 2 || len(res.Tables) != 2 {
		t.Fatalf("results: %d rows, %d tables", len(res.Rows), len(res.Tables))
	}
	for _, row := range res.Rows {
		if row.Result == nil || row.Result.TotalEnergyMJ <= 0 {
			t.Errorf("row %+v has no result", row.SessionMeta)
		}
	}
}

func TestHTTPErrors(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/campaigns/nosuchjob"); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", code)
	}
	if code := get("/v1/campaigns/nosuchjob/results"); code != http.StatusNotFound {
		t.Errorf("unknown job results = %d, want 404", code)
	}
	if code := get("/v1/figures/nosuchfig"); code != http.StatusNotFound {
		t.Errorf("unknown figure = %d, want 404", code)
	}
	for _, body := range []string{"{nonsense", `{"apps":["nosuchapp"]}`, `{"bogus_field":1}`} {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestFigureEndpointAndCache(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/figures/fig2")
	if err != nil {
		t.Fatal(err)
	}
	var tab experiments.Table
	if err := json.NewDecoder(resp.Body).Decode(&tab); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tab.ID != "fig2" || len(tab.Rows) != 3 {
		t.Fatalf("fig2 = %+v", tab)
	}

	// The figure cache computes each figure once, and aliases share one slot.
	first, err := s.figure("overhead")
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.figure("sec6.3")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("figure aliases were computed separately instead of cached")
	}
}

func TestShutdownCancelsQueuedJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("server tests train a predictor")
	}
	cfg := smallConfig()
	cfg.JobWorkers = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With one worker, at most one campaign runs at a time; the rest wait in
	// the queue and must be canceled (not run) once shutdown begins.
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := s.Submit(Campaign{Apps: []string{"cnn"}, Schedulers: []string{"EBS", "Ondemand", "Interactive"}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	s.Close()
	for _, id := range ids {
		j, ok := s.jobByID(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		st := j.snapshot()
		switch st.Status {
		case StatusDone, StatusCanceled:
		default:
			t.Errorf("after Close, job %s is %s, want done or canceled", id, st.Status)
		}
	}
	if _, err := s.Submit(Campaign{}); err == nil {
		t.Error("Submit after Close succeeded, want error")
	}
	// Close is idempotent.
	s.Close()
}

func TestJobEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("server tests train a predictor")
	}
	cfg := smallConfig()
	cfg.JobWorkers = 1
	cfg.QueueDepth = 1
	cfg.MaxJobs = 1 // clamped up to QueueDepth+JobWorkers = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	submitAndWait := func() string {
		t.Helper()
		st, err := s.Submit(Campaign{Apps: []string{"cnn"}, Schedulers: []string{"EBS"}})
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(time.Minute)
		for {
			j, ok := s.jobByID(st.ID)
			if !ok {
				t.Fatalf("job %s disappeared while waiting", st.ID)
			}
			if cur := j.snapshot(); terminal(cur.Status) {
				if cur.Status != StatusDone {
					t.Fatalf("job %s ended %s: %s", st.ID, cur.Status, cur.Error)
				}
				return st.ID
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s did not finish", st.ID)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	id1 := submitAndWait()
	id2 := submitAndWait()
	id3 := submitAndWait()
	if _, ok := s.jobByID(id1); ok {
		t.Errorf("oldest finished job %s survived past MaxJobs", id1)
	}
	for _, id := range []string{id2, id3} {
		if _, ok := s.jobByID(id); !ok {
			t.Errorf("job %s was evicted while within MaxJobs", id)
		}
	}
}
