package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/sessions"
)

// The server trains a predictor at construction, so tests share one small
// instance (plus dedicated ones where clean counters matter).
var (
	srvOnce sync.Once
	srv     *Server
	srvErr  error
)

func smallConfig() Config {
	return Config{
		Experiments: experiments.Config{TrainTracesPerApp: 2, EvalTracesPerApp: 1, Parallel: 2},
		JobWorkers:  2,
	}
}

func testServer(t *testing.T) *Server {
	t.Helper()
	if testing.Short() {
		t.Skip("server tests train a predictor")
	}
	srvOnce.Do(func() { srv, srvErr = New(smallConfig()) })
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srv
}

func TestCampaignExpansionDefaults(t *testing.T) {
	s := testServer(t)
	plan, err := Campaign{}.Expand(s.Setup())
	if err != nil {
		t.Fatal(err)
	}
	// 18 applications × 1 seed × 5 schedulers.
	if got, want := len(plan.Sessions), 18*5; got != want {
		t.Errorf("default campaign expands to %d sessions, want %d", got, want)
	}
	if len(plan.Meta) != len(plan.Sessions) {
		t.Errorf("meta (%d) not aligned with sessions (%d)", len(plan.Meta), len(plan.Sessions))
	}
	if plan.Platform != "Exynos5410" {
		t.Errorf("default platform %q", plan.Platform)
	}
}

func TestCampaignExpansionSweep(t *testing.T) {
	s := testServer(t)
	c := Campaign{
		Platform:   "tx2",
		Apps:       []string{"cnn"},
		TraceSeeds: []int64{1, 2},
		Schedulers: []string{"ebs", "PES"},
		// 0.7 is the base threshold, so it must be deduplicated.
		Sweep: &Sweep{ConfidenceThresholds: []float64{0.9, 0.5, 0.7}},
	}
	plan, err := c.Expand(s.Setup())
	if err != nil {
		t.Fatal(err)
	}
	// Per seed: EBS + PES at base, plus PES at 0.5 and 0.9.
	if got, want := len(plan.Sessions), 2*(2+2); got != want {
		t.Fatalf("sweep campaign expands to %d sessions, want %d", got, want)
	}
	var labels []string
	for _, m := range plan.Meta[:4] {
		labels = append(labels, m.Label)
	}
	if got, want := strings.Join(labels, ","), "EBS,PES,PES@50%,PES@90%"; got != want {
		t.Errorf("labels %q, want %q", got, want)
	}
	for _, m := range plan.Meta {
		if m.Platform != "TX2Parker" {
			t.Fatalf("session platform %q, want TX2Parker", m.Platform)
		}
		if m.Scheduler == sessions.PES && m.ConfidenceThreshold == 0 {
			t.Errorf("PES session missing confidence threshold: %+v", m)
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	s := testServer(t)
	cases := map[string]Campaign{
		"bad platform":       {Platform: "pixel9"},
		"bad app":            {Apps: []string{"nosuchapp"}},
		"bad scheduler":      {Schedulers: []string{"nosuchsched"}},
		"bad threshold":      {Sweep: &Sweep{ConfidenceThresholds: []float64{1.5}}},
		"bad oracle version": {OracleVersion: "v3"},
	}
	for name, c := range cases {
		if _, err := c.Expand(s.Setup()); err == nil {
			t.Errorf("%s: expansion succeeded, want error", name)
		}
	}
}

// TestCampaignOracleVersionStamping checks that the campaign-level oracle
// version lands on Oracle sessions only — in the metadata, the wire specs,
// and the memo keys — and that the default is the server's configured
// version (v2 unless the process runs -oracle=v1).
func TestCampaignOracleVersionStamping(t *testing.T) {
	s := testServer(t)
	c := Campaign{Apps: []string{"cnn"}, Schedulers: []string{"Oracle", "Ondemand"}, OracleVersion: "v1"}
	plan, err := c.Expand(s.Setup())
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range plan.Meta {
		spec := plan.Specs[i]
		if m.Scheduler == sessions.Oracle {
			if m.OracleVersion != "v1" || spec.OracleVersion != "v1" {
				t.Errorf("Oracle session not stamped v1: meta=%q spec=%q", m.OracleVersion, spec.OracleVersion)
			}
			if key := plan.Sessions[i].Key; !strings.Contains(key.Variant, "oracle=v1") {
				t.Errorf("Oracle memo key missing version: %q", key.Variant)
			}
		} else if m.OracleVersion != "" || spec.OracleVersion != "" {
			t.Errorf("%s session stamped with oracle version %q/%q", m.Scheduler, m.OracleVersion, spec.OracleVersion)
		}
	}
	// Default: the server's configured version (v2 here).
	plan2, err := Campaign{Apps: []string{"cnn"}, Schedulers: []string{"Oracle"}}.Expand(s.Setup())
	if err != nil {
		t.Fatal(err)
	}
	if got := plan2.Specs[0].OracleVersion; got != "v2" {
		t.Errorf("default oracle version on the wire = %q, want v2", got)
	}
}

func TestPlanTables(t *testing.T) {
	s := testServer(t)
	c := Campaign{Apps: []string{"cnn", "ebay"}, TraceSeeds: []int64{1, 2}, Schedulers: []string{"Interactive", "EBS"}}
	plan, err := c.Expand(s.Setup())
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.Setup().Runner.Run(plan.Sessions)
	if err != nil {
		t.Fatal(err)
	}
	tables := plan.Tables(results)
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want energy + qos + latency percentiles", len(tables))
	}
	for _, tab := range tables[:2] {
		if got, want := strings.Join(tab.Columns, ","), "Interactive,EBS"; got != want {
			t.Errorf("%s columns %q, want %q", tab.ID, got, want)
		}
		if len(tab.Rows) != 2 {
			t.Errorf("%s has %d rows, want one per app", tab.ID, len(tab.Rows))
		}
	}
	pct := tables[2]
	if pct.ID != "latency_percentiles" {
		t.Fatalf("third table is %q, want latency_percentiles", pct.ID)
	}
	if len(pct.Rows) != 2 {
		t.Fatalf("percentile table has %d rows, want one per scheduler", len(pct.Rows))
	}
	for _, row := range pct.Rows {
		p50, p95, p99 := row.Values[0], row.Values[1], row.Values[2]
		if p50 <= 0 || p95 < p50 || p99 < p95 {
			t.Errorf("%s percentiles not monotone: p50=%g p95=%g p99=%g", row.Label, p50, p95, p99)
		}
		if r95, r99 := row.Values[3], row.Values[4]; r95 <= 0 || r99 < r95 {
			t.Errorf("%s QoS ratios not monotone: p95=%g p99=%g", row.Label, r95, r99)
		}
		if viol := row.Values[5]; viol < 0 || viol > 100 {
			t.Errorf("%s violation%% out of range: %g", row.Label, viol)
		}
	}
	energy := tables[0]
	for _, row := range energy.Rows {
		for i, v := range row.Values {
			if v <= 0 {
				t.Errorf("energy[%s][%s] = %g, want > 0", row.Label, energy.Columns[i], v)
			}
		}
	}
}

// waitDone polls the status endpoint until the job reaches a terminal state.
func waitDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(base + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Status != StatusQueued && st.Status != StatusRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still %s (%d/%d) at deadline", id, st.Status, st.Completed, st.Sessions)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHTTPCampaignLifecycle(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Liveness first.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Workers < 1 {
		t.Fatalf("healthz = %+v", h)
	}

	// Submit a small campaign.
	body := `{"apps":["cnn"],"trace_seeds":[1],"schedulers":["Interactive","EBS"]}`
	resp, err = http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Sessions != 2 {
		t.Fatalf("campaign expanded to %d sessions, want 2", st.Sessions)
	}

	final := waitDone(t, ts.URL, st.ID)
	if final.Status != StatusDone {
		t.Fatalf("campaign ended %s: %s", final.Status, final.Error)
	}
	if final.Completed != final.Sessions {
		t.Errorf("progress shows %d/%d completed", final.Completed, final.Sessions)
	}

	resp, err = http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	var res Results
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(res.Rows) != 2 || len(res.Tables) != 3 {
		t.Fatalf("results: %d rows, %d tables", len(res.Rows), len(res.Tables))
	}
	for _, row := range res.Rows {
		if row.Result == nil || row.Result.TotalEnergyMJ <= 0 {
			t.Errorf("row %+v has no result", row.SessionMeta)
		}
	}
}

func TestHTTPErrors(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/campaigns/nosuchjob"); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", code)
	}
	if code := get("/v1/campaigns/nosuchjob/results"); code != http.StatusNotFound {
		t.Errorf("unknown job results = %d, want 404", code)
	}
	if code := get("/v1/figures/nosuchfig"); code != http.StatusNotFound {
		t.Errorf("unknown figure = %d, want 404", code)
	}
	for _, body := range []string{"{nonsense", `{"apps":["nosuchapp"]}`, `{"bogus_field":1}`} {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestFigureEndpointAndCache(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/figures/fig2")
	if err != nil {
		t.Fatal(err)
	}
	var tab experiments.Table
	if err := json.NewDecoder(resp.Body).Decode(&tab); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tab.ID != "fig2" || len(tab.Rows) != 3 {
		t.Fatalf("fig2 = %+v", tab)
	}

	// The figure cache computes each figure once, and aliases share one slot.
	first, err := s.figure("overhead")
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.figure("sec6.3")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("figure aliases were computed separately instead of cached")
	}
}

func TestShutdownCancelsQueuedJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("server tests train a predictor")
	}
	cfg := smallConfig()
	cfg.JobWorkers = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With one worker, at most one campaign runs at a time; the rest wait in
	// the queue and must be canceled (not run) once shutdown begins.
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := s.Submit(Campaign{Apps: []string{"cnn"}, Schedulers: []string{"EBS", "Ondemand", "Interactive"}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	s.Close()
	for _, id := range ids {
		j, ok := s.jobByID(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		st := j.snapshot()
		switch st.Status {
		case StatusDone, StatusCanceled:
		default:
			t.Errorf("after Close, job %s is %s, want done or canceled", id, st.Status)
		}
	}
	if _, err := s.Submit(Campaign{}); err == nil {
		t.Error("Submit after Close succeeded, want error")
	}
	// Close is idempotent.
	s.Close()
}

func TestJobEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("server tests train a predictor")
	}
	cfg := smallConfig()
	cfg.JobWorkers = 1
	cfg.QueueDepth = 1
	cfg.MaxJobs = 1 // clamped up to QueueDepth+JobWorkers = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	submitAndWait := func() string {
		t.Helper()
		st, err := s.Submit(Campaign{Apps: []string{"cnn"}, Schedulers: []string{"EBS"}})
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(time.Minute)
		for {
			j, ok := s.jobByID(st.ID)
			if !ok {
				t.Fatalf("job %s disappeared while waiting", st.ID)
			}
			if cur := j.snapshot(); terminal(cur.Status) {
				if cur.Status != StatusDone {
					t.Fatalf("job %s ended %s: %s", st.ID, cur.Status, cur.Error)
				}
				return st.ID
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s did not finish", st.ID)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	id1 := submitAndWait()
	id2 := submitAndWait()
	id3 := submitAndWait()
	if _, ok := s.jobByID(id1); ok {
		t.Errorf("oldest finished job %s survived past MaxJobs", id1)
	}
	for _, id := range []string{id2, id3} {
		if _, ok := s.jobByID(id); !ok {
			t.Errorf("job %s was evicted while within MaxJobs", id)
		}
	}
}

// TestResultsFiltersAndNDJSON exercises the server-side row filters and the
// NDJSON streaming mode of the results endpoint: filtered rows match only
// the selected app/scheduler, bad filter values answer 400, and NDJSON
// streams exactly the filtered rows one JSON document per line.
func TestResultsFiltersAndNDJSON(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"apps":["cnn","ebay"],"trace_seeds":[1],"schedulers":["Interactive","EBS"]}`
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fin := waitDone(t, ts.URL, st.ID); fin.Status != StatusDone {
		t.Fatalf("campaign ended %s: %s", fin.Status, fin.Error)
	}
	base := ts.URL + "/v1/campaigns/" + st.ID + "/results"

	fetch := func(url string) Results {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s returned %d", url, resp.StatusCode)
		}
		var res Results
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Unfiltered: 2 apps × 2 schedulers; tables cover the full campaign.
	if res := fetch(base); len(res.Rows) != 4 || len(res.Tables) != 3 {
		t.Fatalf("unfiltered: %d rows, %d tables, want 4 rows + 3 tables", len(res.Rows), len(res.Tables))
	}

	// App filter (and tables still cover the full campaign).
	res := fetch(base + "?app=cnn")
	if len(res.Rows) != 2 {
		t.Fatalf("app filter: %d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.App != "cnn" {
			t.Errorf("app filter leaked row %+v", row.SessionMeta)
		}
	}
	if len(res.Tables) != 3 || len(res.Tables[0].Rows) != 2 {
		t.Errorf("filtered response must keep full-campaign tables, got %d tables", len(res.Tables))
	}

	// Combined filter, case-insensitive scheduler.
	res = fetch(base + "?app=ebay&scheduler=ebs")
	if len(res.Rows) != 1 || res.Rows[0].App != "ebay" || res.Rows[0].Scheduler != "EBS" {
		t.Fatalf("combined filter rows = %+v, want one ebay/EBS row", res.Rows)
	}

	// Unknown filter values are 400s.
	for _, q := range []string{"?app=nosuchapp", "?scheduler=nosuchsched"} {
		resp, err := http.Get(base + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s returned %d, want 400", q, resp.StatusCode)
		}
	}

	// NDJSON: one row per line, filter honored, streaming content type.
	resp, err = http.Get(base + "?scheduler=Interactive&format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("NDJSON content type = %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	var rows []ResultRow
	for dec.More() {
		var row ResultRow
		if err := dec.Decode(&row); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 2 {
		t.Fatalf("NDJSON streamed %d rows, want 2", len(rows))
	}
	for _, row := range rows {
		if row.Scheduler != "Interactive" || row.Result == nil || row.Result.TotalEnergyMJ <= 0 {
			t.Errorf("NDJSON row %+v malformed", row.SessionMeta)
		}
	}
}

// TestClusterModeExpandSkipsSessionConstruction asserts a coordinator-side
// expansion produces wire specs and metadata without building runnable
// sessions (and thus without generating any trace locally).
func TestClusterModeExpandSkipsSessionConstruction(t *testing.T) {
	s := testServer(t)
	before := s.Setup().Artifacts.Stats().TraceBuilds
	c := Campaign{Apps: []string{"twitter"}, TraceSeeds: []int64{991, 992}, Schedulers: []string{"Interactive", "PES"}}
	plan, err := c.expand(s.Setup(), false)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Sessions != nil {
		t.Errorf("cluster-mode plan built %d in-process sessions, want none", len(plan.Sessions))
	}
	if len(plan.Specs) != 4 || len(plan.Meta) != 4 {
		t.Fatalf("plan has %d specs / %d meta, want 4 each", len(plan.Specs), len(plan.Meta))
	}
	if after := s.Setup().Artifacts.Stats().TraceBuilds; after != before {
		t.Errorf("cluster-mode expansion generated %d traces locally, want 0", after-before)
	}
	for i, spec := range plan.Specs {
		m := plan.Meta[i]
		if spec.App != m.App || spec.TraceSeed != m.TraceSeed || spec.Scheduler != m.Scheduler || spec.Platform != "Exynos5410" {
			t.Errorf("spec %d (%+v) not aligned with meta (%+v)", i, spec, m)
		}
	}
	// Validation still runs without session construction.
	if _, err := (Campaign{Apps: []string{"nosuchapp"}}).expand(s.Setup(), false); err == nil {
		t.Error("cluster-mode expansion accepted an unknown app")
	}
}

// TestClusterMembershipEndpoints exercises the coordinator's worker
// registration API: register, list, deregister, the error paths, and the
// absence of the endpoints on a non-cluster server.
func TestClusterMembershipEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("server tests train a predictor")
	}
	coord, err := cluster.New(cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cfg := smallConfig()
	cfg.Cluster = coord
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, membersResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/cluster/workers", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m membersResponse
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp, m
	}

	resp, m := post(`{"addr": "localhost:9001"}`)
	if resp.StatusCode != http.StatusOK || len(m.Members) != 1 || m.Members[0].Addr != "localhost:9001" {
		t.Fatalf("register = %d %+v", resp.StatusCode, m)
	}
	if m.Members[0].Source != cluster.SourceRegistered || !m.Members[0].Healthy {
		t.Errorf("registered member state = %+v", m.Members[0])
	}
	// Registration is idempotent.
	if resp, m = post(`{"addr": "localhost:9001"}`); resp.StatusCode != http.StatusOK || len(m.Members) != 1 {
		t.Errorf("re-register = %d %+v", resp.StatusCode, m)
	}
	// Bad requests are client errors, not registrations.
	for _, bad := range []string{`{`, `{"addr": ""}`, `{"addr": "x", "extra": 1}`} {
		if resp, _ := post(bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q = %d, want 400", bad, resp.StatusCode)
		}
	}

	// The coordinator's stats surface the member on /healthz.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Cluster == nil || len(h.Cluster.Members) != 1 || h.Cluster.Workers != 1 {
		t.Errorf("healthz cluster stats = %+v", h.Cluster)
	}

	// List, then deregister.
	resp, err = http.Get(ts.URL + "/v1/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	var listed membersResponse
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed.Members) != 1 {
		t.Errorf("GET workers = %+v", listed)
	}
	del := func(query string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/cluster/workers"+query, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := del(""); got != http.StatusBadRequest {
		t.Errorf("DELETE without addr = %d, want 400", got)
	}
	if got := del("?addr=unknown:1"); got != http.StatusNotFound {
		t.Errorf("DELETE unknown = %d, want 404", got)
	}
	if got := del("?addr=localhost:9001"); got != http.StatusOK {
		t.Errorf("DELETE member = %d, want 200", got)
	}
	if ws := coord.Workers(); len(ws) != 0 {
		t.Errorf("membership after deregister = %v, want empty", ws)
	}

	// A non-cluster server does not serve the membership API.
	plain := httptest.NewServer(testServer(t).Handler())
	defer plain.Close()
	if resp, err := http.Get(plain.URL + "/v1/cluster/workers"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("membership API on a non-cluster server = %d, want 404", resp.StatusCode)
		}
	}
}
