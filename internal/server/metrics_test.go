package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// scrapeMetrics fetches /metrics through the server's public handler and
// returns every sample keyed by its full series name including labels
// (e.g. `pes_session_seconds_bucket{le="+Inf"}`).
func scrapeMetrics(t *testing.T, h http.Handler) map[string]float64 {
	t.Helper()
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := make(map[string]float64)
	typed := make(map[string]bool)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparsable value in line %q: %v", line, err)
		}
		name := line[:sp]
		if _, dup := samples[name]; dup {
			t.Fatalf("duplicate series %q in one scrape", name)
		}
		samples[name] = v
		family := name
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		family = strings.TrimSuffix(family, "_bucket")
		family = strings.TrimSuffix(family, "_sum")
		family = strings.TrimSuffix(family, "_count")
		if !typed[family] {
			t.Fatalf("series %q has no preceding # TYPE for family %q", name, family)
		}
	}
	return samples
}

// TestMetricsEndpointMonotonicAcrossRepeatCampaign gates the exposition on
// the live server: the format parses, every /healthz counter family is
// present, the session histogram's count tracks the sessions counter, and a
// repeat campaign moves the memo-hit counter while counters stay monotonic.
func TestMetricsEndpointMonotonicAcrossRepeatCampaign(t *testing.T) {
	s := testServer(t)
	campaign := Campaign{Apps: []string{"cnn"}, Schedulers: []string{"EBS", "PES"}}
	st1, err := s.Submit(campaign)
	if err != nil {
		t.Fatal(err)
	}
	if got := pollTerminal(t, s, st1.ID); got.Status != StatusDone {
		t.Fatalf("campaign %s: %s (%s)", got.ID, got.Status, got.Error)
	}
	before := scrapeMetrics(t, s.Handler())
	for _, series := range []string{
		"pes_sessions_total", "pes_unique_runs_total", "pes_cache_hits_total",
		"pes_cache_entries", "pes_cache_evictions_total", "pes_store_hits_total",
		"pes_solver_solves_total", "pes_solver_nodes_total", "pes_solver_plan_cache_hits_total",
		"pes_solver_budget_aborts_total", "pes_campaign_queue_depth", "pes_jobs",
		"pes_journaled", "pes_campaigns_resumed", "pes_session_seconds_count",
		"pes_session_seconds_sum", "pes_solve_seconds_count",
	} {
		if _, ok := before[series]; !ok {
			t.Errorf("scrape is missing series %s", series)
		}
	}
	if before["pes_session_seconds_count"] != before["pes_sessions_total"] {
		t.Errorf("session histogram count %v != sessions counter %v",
			before["pes_session_seconds_count"], before["pes_sessions_total"])
	}
	if inf := before[`pes_session_seconds_bucket{le="+Inf"}`]; inf != before["pes_session_seconds_count"] {
		t.Errorf("+Inf bucket %v != _count %v (cumulative buckets must end at the count)",
			inf, before["pes_session_seconds_count"])
	}

	st2, err := s.Submit(campaign)
	if err != nil {
		t.Fatal(err)
	}
	if got := pollTerminal(t, s, st2.ID); got.Status != StatusDone {
		t.Fatalf("repeat campaign %s: %s (%s)", got.ID, got.Status, got.Error)
	}
	after := scrapeMetrics(t, s.Handler())
	for _, counter := range []string{
		"pes_sessions_total", "pes_unique_runs_total", "pes_cache_hits_total",
		"pes_solver_solves_total", "pes_session_seconds_count",
	} {
		if after[counter] < before[counter] {
			t.Errorf("%s went backwards: %v -> %v", counter, before[counter], after[counter])
		}
	}
	wantSessions := before["pes_sessions_total"] + 2 // cnn × {EBS, PES}
	if after["pes_sessions_total"] != wantSessions {
		t.Errorf("pes_sessions_total = %v after the repeat campaign, want %v", after["pes_sessions_total"], wantSessions)
	}
	if after["pes_cache_hits_total"] < before["pes_cache_hits_total"]+2 {
		t.Errorf("repeat campaign moved pes_cache_hits_total only %v -> %v, want +2",
			before["pes_cache_hits_total"], after["pes_cache_hits_total"])
	}
	if after["pes_unique_runs_total"] != before["pes_unique_runs_total"] {
		t.Errorf("repeat campaign re-simulated: unique runs %v -> %v",
			before["pes_unique_runs_total"], after["pes_unique_runs_total"])
	}
	if after["pes_session_seconds_count"] != after["pes_sessions_total"] {
		t.Errorf("session histogram count %v != sessions counter %v after repeat",
			after["pes_session_seconds_count"], after["pes_sessions_total"])
	}
	// The first scrape went through the timed handler, so the second one
	// must see the /metrics route histogram populated.
	if got := after[`pes_http_request_duration_seconds_count{route="/metrics"}`]; got < 1 {
		t.Errorf("HTTP latency histogram for /metrics has count %v, want >= 1", got)
	}
}

// TestTraceEndpointTimeline gates GET /v1/campaigns/{id}/trace on the local
// execution path: a deterministic trace ID minted from the campaign ID, a
// queue-wait span from admission, and a simulate span from the local lane —
// all stamped with the same trace ID.
func TestTraceEndpointTimeline(t *testing.T) {
	s := testServer(t)
	st, err := s.Submit(Campaign{Apps: []string{"cnn"}, Schedulers: []string{"EBS"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := pollTerminal(t, s, st.ID); got.Status != StatusDone {
		t.Fatalf("campaign %s: %s (%s)", got.ID, got.Status, got.Error)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var tr TraceResponse
	getJSON(t, ts.URL+"/v1/campaigns/"+st.ID+"/trace", &tr)
	if tr.ID != st.ID || tr.Status != StatusDone {
		t.Errorf("trace header = %s/%s, want %s/done", tr.ID, tr.Status, st.ID)
	}
	if want := obs.MintTraceID(st.ID); tr.TraceID != want {
		t.Errorf("trace ID %q, want the deterministic mint %q", tr.TraceID, want)
	}
	names := make(map[string]int)
	for _, sp := range tr.Spans {
		names[sp.Name]++
		if sp.TraceID != tr.TraceID {
			t.Errorf("span %s carries trace ID %q, want %q", sp.Name, sp.TraceID, tr.TraceID)
		}
		if sp.DurUS < 0 {
			t.Errorf("span %s has negative duration %d", sp.Name, sp.DurUS)
		}
	}
	if names["queue_wait"] != 1 || names["simulate"] < 1 {
		t.Errorf("span names %v, want one queue_wait and at least one simulate", names)
	}

	resp, err := http.Get(ts.URL + "/v1/campaigns/zzz/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown campaign = %d, want 404", resp.StatusCode)
	}
}

// TestTraceTimelineStableAcrossJournalResume asserts the trace contract the
// journal relies on: a resumed campaign keeps its trace identity (the ID is
// minted from the campaign ID, which survives the restart) and serves a
// byte-stable timeline — two fetches of a terminal campaign's trace are
// identical bytes, because the canonical span order is deterministic.
func TestTraceTimelineStableAcrossJournalResume(t *testing.T) {
	if testing.Short() {
		t.Skip("server tests train a predictor")
	}
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.JobWorkers = 1
	cfg.DrainTimeout = time.Millisecond
	cfg.Experiments.Store = st
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		jst, err := s1.Submit(Campaign{Apps: []string{"cnn"}, Schedulers: []string{"EBS", "Ondemand"}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, jst.ID)
	}
	s1.Close()
	st.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cfg2 := smallConfig()
	cfg2.Experiments.Store = st2
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Resumed() == 0 {
		t.Skip("every campaign finished inside the drain window; nothing resumed")
	}
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	resumedTraces := 0
	for _, id := range ids {
		if _, ok := s2.jobByID(id); !ok {
			continue // finished pre-drain, journaled terminal, not resumed
		}
		if got := pollTerminal(t, s2, id); got.Status != StatusDone {
			t.Fatalf("resumed campaign %s: %s (%s)", id, got.Status, got.Error)
		}
		first := getBody(t, ts.URL+"/v1/campaigns/"+id+"/trace")
		second := getBody(t, ts.URL+"/v1/campaigns/"+id+"/trace")
		if first != second {
			t.Errorf("trace of %s is not byte-stable across fetches:\n%s\nvs\n%s", id, first, second)
		}
		var tr TraceResponse
		getJSON(t, ts.URL+"/v1/campaigns/"+id+"/trace", &tr)
		if want := obs.MintTraceID(id); tr.TraceID != want {
			t.Errorf("resumed campaign %s trace ID %q, want %q (identity must survive the restart)", id, tr.TraceID, want)
		}
		if len(tr.Spans) == 0 {
			t.Errorf("resumed campaign %s has an empty timeline", id)
		}
		resumedTraces++
	}
	if resumedTraces == 0 {
		t.Error("no resumed campaign was still queryable; the test proved nothing")
	}
}

// getJSON fetches url and decodes its 200 JSON body into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(getBody(t, url)), v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

// getBody fetches url and returns the raw body, failing on non-200.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
