package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// The campaign journal makes campaign *lifecycle* durable the same way PR 8
// made results durable: by writing records through the persistent store's
// append-only log (same framing, CRC, torn-tail recovery — no second file
// format). Three record kinds per campaign, keyed under the reserved
// "campaign|" prefix (disjoint from "result|", "trace|", "learner|"):
//
//	campaign|<id>|spec   the submitted Campaign + its expanded session count,
//	                     written at submit. Its presence means the campaign
//	                     must reach a terminal state.
//	campaign|<id>|mark   advisory completion watermark, re-Put every few
//	                     sessions (replay keeps the last). Progress
//	                     observability across restarts; correctness never
//	                     depends on it — resume re-runs the whole plan and
//	                     lets completed sessions come back as store hits.
//	campaign|<id>|state  the terminal state (done/failed), written exactly
//	                     once through PutDurable so on a syncing store
//	                     "campaign done" can never outlive the results it
//	                     stands for.
//
// On startup a server backed by the same store replays the journal: every
// spec without a terminal state is re-expanded (expansion is deterministic)
// and re-enqueued under its original ID. Sessions that persisted before the
// crash are store hits, so a resumed campaign re-simulates only the missing
// tail and serves results byte-identical to an uninterrupted run.

// markEvery is the watermark cadence: one mark record per this many
// completed sessions (plus one at campaign end). Coarse on purpose — the
// mark is advisory, and one tiny record per session would double the log's
// record count for no recovery benefit.
const markEvery = 8

func specKey(id string) string  { return "campaign|" + id + "|spec" }
func markKey(id string) string  { return "campaign|" + id + "|mark" }
func stateKey(id string) string { return "campaign|" + id + "|state" }

// journalSpec is the value of a spec record: everything needed to re-expand
// and re-enqueue the campaign after a restart.
type journalSpec struct {
	Campaign Campaign `json:"campaign"`
	// Sessions is the expanded session count at submit time, kept as a
	// cross-check: a resumed expansion of a different size means the server
	// binary changed under the journal, and the campaign fails cleanly
	// instead of serving a silently different sweep.
	Sessions int `json:"sessions"`
}

// journalState is the value of a terminal-state record.
type journalState struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// journalMark is the value of a watermark record.
type journalMark struct {
	Completed int `json:"completed"`
}

// journal writes campaign lifecycle records through the persistent store.
// Nil-safe: a nil journal (no -store) makes every method a no-op, so call
// sites read unconditionally.
type journal struct {
	st  *store.Store
	log *slog.Logger

	mu    sync.Mutex
	marks map[string]int // last persisted watermark per campaign
}

func newJournal(st *store.Store, logger *slog.Logger) *journal {
	if logger == nil {
		logger = slog.Default()
	}
	return &journal{st: st, log: logger, marks: make(map[string]int)}
}

// spec records a submitted campaign. Failure to journal is logged, not
// fatal: the campaign still runs, it just will not survive a restart.
func (jl *journal) spec(id string, c Campaign, sessions int) {
	if jl == nil {
		return
	}
	val, err := json.Marshal(journalSpec{Campaign: c, Sessions: sessions})
	if err == nil {
		err = jl.st.Put(specKey(id), val)
	}
	if err != nil {
		jl.log.Warn("journaling campaign spec failed", "campaign", id, "error", err)
	}
}

// mark advances a campaign's completion watermark, writing every markEvery
// sessions and at the end. Monotonic: stale (out-of-order) completions
// never move the watermark backwards.
func (jl *journal) mark(id string, completed, total int) {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	last := jl.marks[id]
	if completed <= last || (completed-last < markEvery && completed != total) {
		jl.mu.Unlock()
		return
	}
	jl.marks[id] = completed
	jl.mu.Unlock()
	val, _ := json.Marshal(journalMark{Completed: completed})
	if err := jl.st.Put(markKey(id), val); err != nil {
		jl.log.Warn("journaling campaign watermark failed", "campaign", id, "completed", completed, "error", err)
	}
}

// state records a campaign's terminal state, durably on a syncing store.
func (jl *journal) state(id, status, errMsg string) {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	delete(jl.marks, id)
	jl.mu.Unlock()
	val, err := json.Marshal(journalState{Status: status, Error: errMsg})
	if err == nil {
		err = jl.st.PutDurable(stateKey(id), val)
	}
	if err != nil {
		jl.log.Warn("journaling campaign terminal state failed", "campaign", id, "status", status, "error", err)
	}
}

// journalEntry is one non-terminal campaign found at startup.
type journalEntry struct {
	id   string
	spec journalSpec
}

// parseJobID extracts the numeric part of a "c%04d" job ID; ok is false for
// foreign keys (nothing else writes the campaign| prefix, but a corrupt or
// hand-edited log must not panic the boot).
func parseJobID(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'c' {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// scan replays the journal: it returns every campaign with a spec record
// but no terminal state (sorted by ID, i.e. submission order) and the
// highest job ID ever journaled, so resumed and fresh submissions never
// collide.
func (jl *journal) scan() (resume []journalEntry, maxID int) {
	if jl == nil {
		return nil, 0
	}
	terminal := make(map[string]bool)
	var specIDs []string
	for _, key := range jl.st.Keys("campaign|") {
		parts := strings.Split(key, "|")
		if len(parts) != 3 {
			continue
		}
		id, kind := parts[1], parts[2]
		n, ok := parseJobID(id)
		if !ok {
			jl.log.Warn("skipping malformed journal key", "key", key)
			continue
		}
		if n > maxID {
			maxID = n
		}
		switch kind {
		case "state":
			terminal[id] = true
		case "spec":
			specIDs = append(specIDs, id)
		}
	}
	sort.Slice(specIDs, func(i, j int) bool {
		a, _ := parseJobID(specIDs[i])
		b, _ := parseJobID(specIDs[j])
		return a < b
	})
	for _, id := range specIDs {
		if terminal[id] {
			continue
		}
		val, ok := jl.st.Get(specKey(id))
		if !ok {
			// The spec record rotted after replay; nothing to resume from.
			jl.log.Warn("campaign spec record unreadable, not resuming", "campaign", id)
			continue
		}
		var spec journalSpec
		if err := json.Unmarshal(val, &spec); err != nil {
			jl.log.Warn("campaign spec record undecodable, not resuming", "campaign", id, "error", err)
			continue
		}
		resume = append(resume, journalEntry{id: id, spec: spec})
	}
	return resume, maxID
}

// RecoverySummary is the outcome of one journal recovery pass: how many
// non-terminal campaigns were re-enqueued, how many failed to re-expand
// (terminated in the journal, queryable as failed jobs), and how many
// stayed journaled because the queue was full. The same counts back the
// pes_campaigns_{resumed,recovery_failed,stayed_journaled} gauges.
type RecoverySummary struct {
	Resumed         int
	Failed          int
	StayedJournaled int
}

// recoverJournal re-enqueues every non-terminal journaled campaign under
// its original ID. Called from New before the workers start, with the
// server not yet shared, so no locking is needed.
func (s *Server) recoverJournal() RecoverySummary {
	entries, maxID := s.journal.scan()
	if maxID > s.nextID {
		s.nextID = maxID
	}
	var sum RecoverySummary
	for _, e := range entries {
		plan, err := e.spec.Campaign.expand(s.setup, s.cfg.Cluster == nil)
		if err == nil && len(plan.Meta) != e.spec.Sessions {
			err = fmt.Errorf("journaled campaign expanded to %d sessions, was submitted with %d (server configuration changed under the journal)",
				len(plan.Meta), e.spec.Sessions)
		}
		if err != nil {
			// The spec was valid at submit; failing to re-expand means the
			// world changed. Terminate it in the journal so it is not
			// retried forever, and surface the failure as a queryable job.
			s.log.Warn("resuming campaign failed", "campaign", e.id, "error", err)
			s.journal.state(e.id, StatusFailed, err.Error())
			j := &job{id: e.id, campaign: e.spec.Campaign, plan: &Plan{}, total: e.spec.Sessions, status: StatusFailed, errMsg: err.Error()}
			s.jobs[e.id] = j
			s.order = append(s.order, e.id)
			sum.Failed++
			continue
		}
		j := &job{
			id:       e.id,
			campaign: e.spec.Campaign,
			plan:     plan,
			total:    len(plan.Meta),
			status:   StatusQueued,
			trace:    obs.NewRecorder(obs.MintTraceID(e.id)),
			enqueued: time.Now(),
		}
		select {
		case s.queue <- j:
		default:
			// Queue full mid-recovery: the campaign stays journaled as
			// non-terminal and a later restart (or a larger QueueDepth)
			// picks it up.
			s.log.Warn("campaign queue full during recovery, campaign stays journaled", "campaign", e.id)
			sum.StayedJournaled++
			continue
		}
		s.jobs[e.id] = j
		s.order = append(s.order, e.id)
		sum.Resumed++
		s.log.Info("resuming campaign from the journal",
			"campaign", e.id, "trace", j.trace.TraceID(), "sessions", j.total)
	}
	if s.journal != nil {
		s.log.Info("journal recovery complete",
			"resumed", sum.Resumed, "failed", sum.Failed, "stayed_journaled", sum.StayedJournaled)
	}
	return sum
}
