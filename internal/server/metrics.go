package server

import (
	"net/http"
	"time"

	"repro/internal/obs"
)

// httpRoutes are the route patterns instrumented with a latency histogram.
// One histogram per route label, registered up front — the hot handler path
// only does map-free pointer lookups and an atomic Observe.
var httpRoutes = []string{
	"/v1/campaigns",
	"/v1/campaigns/{id}",
	"/v1/campaigns/{id}/results",
	"/v1/campaigns/{id}/trace",
	"/v1/figures/{name}",
	"/v1/cluster/workers",
	"/healthz",
	"/metrics",
}

// initMetrics wires the server's registry: the shared runner's counter
// families (sessions, memo/store hits, solver, artifacts, store log), the
// cluster coordinator's when one is configured, the server's own queue and
// journal-recovery gauges, and the per-route HTTP latency histograms.
// Called once from New, before the server serves traffic.
func (s *Server) initMetrics() {
	reg := s.metrics
	s.setup.Runner.RegisterMetrics(reg)
	if s.cfg.Cluster != nil {
		s.cfg.Cluster.RegisterMetrics(reg)
	}
	reg.GaugeFunc("pes_campaign_queue_depth",
		"Campaigns waiting in the admission queue.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("pes_jobs",
		"Jobs retained for status/result queries.",
		func() float64 {
			s.mu.Lock()
			n := len(s.jobs)
			s.mu.Unlock()
			return float64(n)
		})
	reg.GaugeFunc("pes_journaled",
		"1 when a persistent store journals campaign lifecycles.",
		func() float64 {
			if s.journal != nil {
				return 1
			}
			return 0
		})
	// The journal recovery outcome, one gauge per disposition. Set once at
	// boot (recovery runs before initMetrics); constant for the process's
	// life, which is exactly what a restart-counting alert wants.
	reg.GaugeFunc("pes_campaigns_resumed",
		"Journaled campaigns re-enqueued at boot.",
		func() float64 { return float64(s.recovery.Resumed) })
	reg.GaugeFunc("pes_campaigns_recovery_failed",
		"Journaled campaigns that failed to re-expand at boot.",
		func() float64 { return float64(s.recovery.Failed) })
	reg.GaugeFunc("pes_campaigns_stayed_journaled",
		"Journaled campaigns left for a later boot (queue full at recovery).",
		func() float64 { return float64(s.recovery.StayedJournaled) })

	s.httpLat = make(map[string]*obs.Histogram, len(httpRoutes))
	for _, route := range httpRoutes {
		s.httpLat[route] = reg.Histogram("pes_http_request_duration_seconds",
			"HTTP handler latency by route pattern.", nil, obs.L("route", route))
	}
}

// timed wraps a handler with its route's latency histogram.
func (s *Server) timed(route string, h http.Handler) http.Handler {
	hist := s.httpLat[route]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h.ServeHTTP(w, r)
		hist.ObserveSeconds(int64(time.Since(start)))
	})
}

// Metrics exposes the server's registry (for cmd wiring that adds
// process-level series, e.g. chaos injection counters).
func (s *Server) Metrics() *obs.Registry { return s.metrics }
