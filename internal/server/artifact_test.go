package server

import (
	"sync"
	"testing"
	"time"

	"repro/internal/artifacts"
	"repro/internal/experiments"
)

// TestConcurrentCampaignsBuildArtifactsOnce submits overlapping campaigns
// covering the same (app, seed) cross product and proves the shared
// artifact store generated each evaluation trace — and parsed each runtime
// event list — exactly once, on top of the existing guarantee that each
// unique session simulated exactly once. Run under -race this also
// exercises the store's singleflight construction from the job workers.
func TestConcurrentCampaignsBuildArtifactsOnce(t *testing.T) {
	store := artifacts.NewStore()
	s, err := New(Config{
		Experiments: experiments.Config{
			TrainTracesPerApp: 1,
			EvalTracesPerApp:  1,
			Artifacts:         store,
		},
		JobWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	apps := []string{"cnn", "ebay"}
	seeds := []int64{21, 22}
	campaign := Campaign{Apps: apps, TraceSeeds: seeds}

	// Campaign expansion happens in Submit (concurrently here) and the
	// simulations on the shared job workers.
	const overlapping = 4
	var wg sync.WaitGroup
	ids := make([]string, overlapping)
	for i := 0; i < overlapping; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.Submit(campaign)
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatalf("submission failed")
	}

	deadline := time.Now().Add(30 * time.Second)
	for _, id := range ids {
		for {
			j, ok := s.jobByID(id)
			if !ok {
				t.Fatalf("job %s disappeared", id)
			}
			st := j.snapshot()
			if st.Status == StatusDone {
				break
			}
			if st.Status == StatusFailed || st.Status == StatusCanceled {
				t.Fatalf("job %s ended %s: %s", id, st.Status, st.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still %s after 30s", id, st.Status)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	ast := store.Stats()
	// Campaign traces: one per (app, seed); the setup additionally generated
	// the training corpus and the 18-app evaluation corpus. The campaign
	// seeds (21, 22) are distinct from every corpus seed, so the campaign's
	// share is exactly len(apps)*len(seeds) builds on top of the setup's.
	setupTraces := store.Stats().TraceBuilds - int64(len(apps)*len(seeds))
	if setupTraces <= 0 {
		t.Fatalf("implausible setup trace count: %+v", ast)
	}
	// Re-expanding the same campaign must add no trace builds at all.
	if _, err := campaign.Expand(s.Setup()); err != nil {
		t.Fatal(err)
	}
	if got := store.Stats().TraceBuilds; got != ast.TraceBuilds {
		t.Errorf("re-expansion generated %d extra traces, want 0", got-ast.TraceBuilds)
	}
	// Each campaign trace was requested once per (scheduler, campaign); all
	// but the first request per (app, seed) must have been hits.
	if ast.TraceHits == 0 {
		t.Error("expected trace cache hits across overlapping campaigns")
	}
	// Runtime events: exactly one parse per campaign (app, seed) — the five
	// schedulers and four campaigns all share it — plus the figure-less
	// setup parses nothing.
	if want := int64(len(apps) * len(seeds)); ast.RuntimeBuilds != want {
		t.Errorf("RuntimeBuilds = %d, want %d (one parse per (app, seed))", ast.RuntimeBuilds, want)
	}
	if ast.RuntimeHits == 0 {
		t.Error("expected runtime cache hits (5 schedulers x 4 campaigns share each parse)")
	}
	// One learner training for the whole server.
	if ast.LearnerBuilds != 1 {
		t.Errorf("LearnerBuilds = %d, want 1", ast.LearnerBuilds)
	}

	// The memo cache on top: 4 identical campaigns, each unique session
	// simulated exactly once.
	bst := s.Stats()
	sessionsPer := len(apps) * len(seeds) * 5
	if want := int64(sessionsPer); bst.UniqueRuns != want {
		t.Errorf("UniqueRuns = %d, want %d", bst.UniqueRuns, want)
	}
	if want := int64(sessionsPer * (overlapping - 1)); bst.CacheHits != want {
		t.Errorf("CacheHits = %d, want %d", bst.CacheHits, want)
	}
	if bst.Artifacts == nil {
		t.Error("batch stats should carry the attached artifact-store counters")
	}
}
