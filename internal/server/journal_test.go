package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/store"
)

// pollTerminal waits (in-process, no HTTP) for a job to leave the queue.
func pollTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		j, ok := s.jobByID(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		st := j.snapshot()
		if terminal(st.Status) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still %s (%d/%d) at deadline", id, st.Status, st.Completed, st.Sessions)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// normalizeResult re-encodes a result with the solver wall time zeroed — the
// only nondeterministic byte of a Result (store-hit sessions replay the wall
// time of the run that produced them; fresh simulations measure their own).
func normalizeResult(t *testing.T, res *engine.Result) []byte {
	t.Helper()
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if solver, ok := m["Solver"].(map[string]any); ok {
		solver["wall_ns"] = 0
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestJournalCrashResumeTailOnly is the server half of the resilience
// property suite: kill the store at a randomized record mid-campaign, boot a
// fresh server on the same directory, and assert the campaign resumes under
// its original ID, re-simulates only the missing tail (persisted sessions
// come back as store hits), and serves results byte-identical to an
// uninterrupted run.
func TestJournalCrashResumeTailOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("server tests train a predictor")
	}
	campaign := Campaign{Apps: []string{"cnn", "ebay"}} // 2 apps × 5 schedulers

	// Uninterrupted reference on the shared (storeless) server.
	ref := testServer(t)
	refSt, err := ref.Submit(campaign)
	if err != nil {
		t.Fatal(err)
	}
	if got := pollTerminal(t, ref, refSt.ID); got.Status != StatusDone {
		t.Fatalf("reference campaign %s: %s (%s)", got.ID, got.Status, got.Error)
	}
	refJob, _ := ref.jobByID(refSt.ID)
	want := make([][]byte, len(refJob.results))
	for i, res := range refJob.results {
		want[i] = normalizeResult(t, res)
	}

	for trial := 0; trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)))
			dir := t.TempDir()
			in := chaos.New(chaos.Config{Seed: int64(trial) + 1})
			st, err := store.Open(dir, store.WithFileWrapper(in.WrapFile))
			if err != nil {
				t.Fatal(err)
			}
			cfg := smallConfig()
			cfg.Experiments.Store = st
			s1, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			st1, err := s1.Submit(campaign)
			if err != nil {
				t.Fatal(err)
			}
			// Arm only after submit: setup artifacts and the spec record must
			// land, the crash belongs to the campaign's result writes. The
			// crash point stays below the 10 result records plus the terminal
			// state, so the journal is guaranteed non-terminal on disk.
			in.ArmCrashAfter(int64(1 + rng.Intn(8)))
			// In-memory the campaign still completes — the store is a cache,
			// not the source of truth, so failed Puts are logged, not fatal.
			if got := pollTerminal(t, s1, st1.ID); got.Status != StatusDone {
				t.Fatalf("pre-crash campaign %s: %s (%s)", got.ID, got.Status, got.Error)
			}
			if !in.Stats().Crashed {
				t.Fatal("crash never fired; the trial proves nothing")
			}
			s1.Close()
			st.Close()

			// "Reboot": clean store on the same directory, fresh server.
			st2, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			persisted := len(st2.Keys("result|"))
			if persisted >= len(want) {
				t.Fatalf("%d of %d results survived the crash; no tail left to prove resume", persisted, len(want))
			}
			cfg2 := smallConfig()
			cfg2.Experiments.Store = st2
			s2, err := New(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if s2.Resumed() != 1 {
				t.Fatalf("Resumed() = %d, want 1", s2.Resumed())
			}
			got := pollTerminal(t, s2, st1.ID) // original ID survives the reboot
			if got.Status != StatusDone {
				t.Fatalf("resumed campaign %s: %s (%s)", got.ID, got.Status, got.Error)
			}
			stats := s2.Stats()
			if int(stats.StoreHits) != persisted || int(stats.UniqueRuns) != len(want)-persisted {
				t.Errorf("resume ran %d sessions with %d store hits, want tail-only %d/%d",
					stats.UniqueRuns, stats.StoreHits, len(want)-persisted, persisted)
			}
			j2, _ := s2.jobByID(st1.ID)
			if len(j2.results) != len(want) {
				t.Fatalf("resumed campaign has %d results, want %d", len(j2.results), len(want))
			}
			for i, res := range j2.results {
				if !bytes.Equal(normalizeResult(t, res), want[i]) {
					t.Fatalf("result %d differs from the uninterrupted reference", i)
				}
			}
		})
	}
}

// TestDrainLeavesQueuedCampaignsResumable asserts graceful shutdown with a
// journal drains instead of drops: nothing is canceled, unfinished campaigns
// stay queued on disk, and a reboot on the same store finishes them.
func TestDrainLeavesQueuedCampaignsResumable(t *testing.T) {
	if testing.Short() {
		t.Skip("server tests train a predictor")
	}
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.JobWorkers = 1
	cfg.DrainTimeout = time.Millisecond
	cfg.Experiments.Store = st
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		jst, err := s.Submit(Campaign{Apps: []string{"cnn"}, Schedulers: []string{"EBS", "Ondemand", "Interactive"}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, jst.ID)
	}
	s.Close()
	pending := 0
	for _, id := range ids {
		j, _ := s.jobByID(id)
		switch jst := j.snapshot(); jst.Status {
		case StatusDone:
		case StatusQueued:
			pending++
		default:
			t.Errorf("after drain, job %s is %s, want done or queued", id, jst.Status)
		}
	}
	if pending == 0 {
		t.Skip("every campaign finished inside the drain window; nothing to resume")
	}
	st.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cfg2 := smallConfig()
	cfg2.Experiments.Store = st2
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Resumed() != pending {
		t.Fatalf("Resumed() = %d, want %d", s2.Resumed(), pending)
	}
	for _, id := range ids {
		if _, ok := s2.jobByID(id); !ok {
			continue // finished before the drain, journaled terminal, not resumed
		}
		if got := pollTerminal(t, s2, id); got.Status != StatusDone {
			t.Errorf("resumed campaign %s: %s (%s)", id, got.Status, got.Error)
		}
	}
}

// TestSubmitQueueFull429 asserts admission control: a full queue surfaces as
// ErrQueueFull from Submit and as 429 + Retry-After over HTTP.
func TestSubmitQueueFull429(t *testing.T) {
	shared := testServer(t)
	// No workers: the queue never drains, so fullness is deterministic.
	s := &Server{
		cfg:     Config{QueueDepth: 1, MaxJobs: 16},
		setup:   shared.setup,
		jobs:    make(map[string]*job),
		queue:   make(chan *job, 1),
		figures: make(map[string]*figEntry),
	}
	if _, err := s.Submit(Campaign{Apps: []string{"cnn"}}); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	if _, err := s.Submit(Campaign{Apps: []string{"cnn"}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second Submit error = %v, want ErrQueueFull", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(`{"apps":["cnn"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "queue is full") {
		t.Errorf("error body %+v (%v)", e, err)
	}
}
