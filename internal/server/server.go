package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/sessions"
	"repro/internal/webapp"
)

// Config parameterizes the service.
type Config struct {
	// Experiments configures the shared harness state: predictor training
	// scale, evaluation corpus, simulation worker-pool size, seed. The zero
	// value selects the paper defaults.
	Experiments experiments.Config
	// JobWorkers is the number of campaigns executed concurrently (each
	// campaign's sessions additionally fan out on the batch runner's worker
	// pool). Default 2.
	JobWorkers int
	// QueueDepth caps the number of campaigns waiting to run. Default 256.
	QueueDepth int
	// MaxJobs caps the number of jobs retained for status/result queries;
	// when a new submission would exceed it, the oldest finished jobs are
	// evicted. Default 1024.
	MaxJobs int
	// Cluster optionally shards campaign execution across remote workers
	// through a coordinator; nil executes campaigns in-process on the
	// shared runner. Figure endpoints always run in-process. Workers must
	// share this server's Experiments configuration for merged results to
	// be byte-identical to in-process execution. New wires the service's
	// own harness into the coordinator as the local spill-over worker, so
	// campaigns degrade to in-process execution when the live worker set
	// empties instead of failing.
	Cluster *cluster.Coordinator
	// DrainTimeout bounds graceful shutdown when a persistent store backs
	// the server (Experiments.Store): Close gives running campaigns this
	// long to finish, then cancels their in-process execution between
	// sessions and returns them to queued — the journal resumes them
	// (tail-only, completed sessions come back as store hits) on the next
	// boot. Default 30s. Without a store, Close waits for running
	// campaigns unconditionally, as before.
	DrainTimeout time.Duration
	// Metrics optionally supplies the registry /metrics serves, letting the
	// embedding process (cmd/pes-serve) add series of its own — chaos
	// injection counters, for instance — to the same exposition. Nil makes
	// the server create a private registry; /metrics is served either way.
	Metrics *obs.Registry
	// Logger receives the server's structured events (campaign lifecycle,
	// journal recovery); nil selects slog.Default().
	Logger *slog.Logger
}

// ErrQueueFull is returned by Submit when QueueDepth campaigns are already
// waiting — admission control instead of unbounded memory growth. The HTTP
// layer maps it to 429 Too Many Requests with a Retry-After header.
var ErrQueueFull = errors.New("campaign queue is full")

// Job statuses.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// job is one submitted campaign and its lifecycle state.
type job struct {
	id       string
	campaign Campaign
	plan     *Plan
	// total is the session count of the plan, kept separately because the
	// plan's session closures are released once the job is terminal.
	total int
	// trace accumulates the campaign's span timeline. Its trace ID is
	// minted deterministically from the job ID, so a journal-resumed
	// campaign (same ID) rejoins the same trace.
	trace *obs.Recorder
	// enqueued is when the job entered the queue, the start of its
	// queue_wait span.
	enqueued time.Time

	completed atomic.Int64

	mu      sync.Mutex
	status  string
	results []*engine.Result
	errMsg  string
}

// terminal reports whether a status is final.
func terminal(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCanceled
}

func (j *job) setStatus(status, errMsg string) {
	j.mu.Lock()
	j.status = status
	j.errMsg = errMsg
	if terminal(status) {
		// The session closures (and the traces they capture) are only
		// needed to run the campaign; results are served from j.results
		// and j.plan.Meta.
		j.plan.Sessions = nil
	}
	j.mu.Unlock()
}

// snapshot returns the job's externally visible state.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:        j.id,
		Status:    j.status,
		Sessions:  j.total,
		Completed: int(j.completed.Load()),
		Error:     j.errMsg,
	}
}

// JobStatus is the response body of GET /v1/campaigns/{id} (and of the
// submission response).
type JobStatus struct {
	ID string `json:"id"`
	// Status is one of queued, running, done, failed, canceled.
	Status string `json:"status"`
	// Sessions is the number of sessions the campaign expanded to.
	Sessions int `json:"sessions"`
	// Completed counts the sessions resolved so far (cache hits included).
	Completed int    `json:"completed"`
	Error     string `json:"error,omitempty"`
}

// ResultRow is one session of a finished campaign: its metadata plus the
// full engine result.
type ResultRow struct {
	SessionMeta
	Result *engine.Result `json:"result"`
}

// Results is the response body of GET /v1/campaigns/{id}/results.
type Results struct {
	ID   string      `json:"id"`
	Rows []ResultRow `json:"rows"`
	// Tables are the aggregate energy and QoS tables (the shape the figure
	// harness computes for Fig. 11/12) over the campaign's sessions.
	Tables []*experiments.Table `json:"tables"`
	// Solver sums the constrained-optimization statistics over the
	// campaign's session results (cache-served sessions report the stats of
	// the one simulation that produced them).
	Solver optimizer.SolverStats `json:"solver"`
	// Stats snapshots the shared runner's memo-cache counters after the
	// campaign completed; its Solver field counts only work actually
	// performed by this server's unique runs.
	Stats batch.Stats `json:"stats"`
	// Cluster snapshots the coordinator's shard/retry/worker counters when
	// campaigns are sharded across workers (absent in-process).
	Cluster *cluster.Stats `json:"cluster,omitempty"`
}

// errUnknownFigure distinguishes a bad figure name (HTTP 404) from a figure
// that failed to compute (HTTP 500).
var errUnknownFigure = errors.New("unknown figure")

// figEntry is a singleflight cache slot for one figure.
type figEntry struct {
	once sync.Once
	tab  *experiments.Table
	err  error
}

// Server is the simulation service: one trained harness setup, one shared
// batch runner (and thus one cross-request memo cache), a bounded campaign
// queue, and the HTTP handlers on top.
type Server struct {
	cfg   Config
	setup *experiments.Setup

	// journal persists campaign lifecycle records when a store backs the
	// server; nil otherwise (every journal method is nil-safe).
	journal *journal
	// recovery is the boot-time journal replay outcome; resumed mirrors its
	// Resumed count (kept for the /healthz payload).
	recovery RecoverySummary
	resumed  int

	// metrics is the registry /metrics serves; log receives structured
	// events; httpLat holds the per-route latency histograms.
	metrics *obs.Registry
	log     *slog.Logger
	httpLat map[string]*obs.Histogram

	// runCtx bounds in-process campaign execution; runCancel fires when the
	// drain deadline passes during Close (journal-backed servers only).
	runCtx    context.Context
	runCancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // job ids in submission order, for eviction
	nextID int
	closed bool

	queue   chan *job
	wg      sync.WaitGroup
	figures map[string]*figEntry
}

// New trains the shared predictor, generates the evaluation corpus, and
// starts the campaign workers. Call Close to shut the workers down.
func New(cfg Config) (*Server, error) {
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.MaxJobs < cfg.QueueDepth+cfg.JobWorkers {
		// Eviction skips live jobs, so the cap must leave room for every
		// job that can be queued or running at once.
		cfg.MaxJobs = cfg.QueueDepth + cfg.JobWorkers
	}
	setup, err := experiments.NewSetup(cfg.Experiments)
	if err != nil {
		return nil, err
	}
	if cfg.Cluster != nil {
		// The service's own trained harness doubles as the coordinator's
		// spill-over backend: identical configuration means local results
		// are byte-identical to a worker's.
		cfg.Cluster.SetLocal(cluster.NewWorkerFromSetup(setup))
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		setup:   setup,
		metrics: cfg.Metrics,
		log:     cfg.Logger,
		jobs:    make(map[string]*job),
		queue:   make(chan *job, cfg.QueueDepth),
		figures: make(map[string]*figEntry),
	}
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	if st := cfg.Experiments.Store; st != nil {
		s.journal = newJournal(st, s.log)
		// Replay the journal before the workers start: every non-terminal
		// campaign re-enqueues under its original ID, and s.nextID advances
		// past every journaled ID so fresh submissions never collide.
		s.recovery = s.recoverJournal()
		s.resumed = s.recovery.Resumed
	}
	s.initMetrics()
	for i := 0; i < cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Resumed reports how many journaled campaigns this server re-enqueued at
// boot.
func (s *Server) Resumed() int { return s.resumed }

// Setup exposes the shared harness state (trained learner, corpus, runner).
func (s *Server) Setup() *experiments.Setup { return s.setup }

// Stats snapshots the shared runner's memo-cache counters.
func (s *Server) Stats() batch.Stats { return s.setup.Runner.Stats() }

// Close stops accepting campaigns and shuts the workers down. Without a
// journal, queued jobs are canceled and running ones finish unconditionally
// (individual session simulations are not interruptible). With a journal
// (Experiments.Store set), shutdown drains instead of dropping: queued jobs
// stay journaled as queued and resume on the next boot, running jobs get
// DrainTimeout to finish before their in-process execution is canceled
// between sessions and they return to queued — nothing a client submitted
// is ever silently lost.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	// Closing under the lock serializes with Submit's send on the same
	// channel; waiting happens outside it so workers can keep taking s.mu.
	close(s.queue)
	s.mu.Unlock()
	var deadline *time.Timer
	if s.journal != nil {
		deadline = time.AfterFunc(s.cfg.DrainTimeout, s.runCancel)
	}
	s.wg.Wait()
	if deadline != nil {
		deadline.Stop()
	}
	s.runCancel()
}

// worker executes queued campaigns until the queue closes. After shutdown
// begins, jobs still in the queue are canceled — or, with a journal, left
// queued on disk to resume on the next boot.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			if s.journal != nil {
				// The job's journal spec has no terminal state, so the next
				// boot on this store re-enqueues it. In-memory it stays
				// queued, which is also what the journal says.
				continue
			}
			j.setStatus(StatusCanceled, "server shut down before the campaign started")
			continue
		}
		j.setStatus(StatusRunning, "")
		j.trace.Record(obs.Span{
			Name: "queue_wait", StartUS: j.enqueued.UnixMicro(),
			DurUS: time.Since(j.enqueued).Microseconds(),
		})
		s.log.Info("campaign started",
			"campaign", j.id, "trace", j.trace.TraceID(), "sessions", j.total)
		start := time.Now()
		results, err := s.execute(j, func(completed, total int) {
			s.journal.mark(j.id, int(j.completed.Add(1)), j.total)
		})
		if err != nil && errors.Is(err, context.Canceled) && s.journal != nil {
			// The drain deadline passed mid-campaign. Completed sessions are
			// in the store; the journal stays non-terminal, so the next boot
			// resumes this campaign and re-simulates only the missing tail.
			j.mu.Lock()
			j.status = StatusQueued
			j.completed.Store(0)
			j.mu.Unlock()
			s.log.Info("campaign returned to queue at drain deadline",
				"campaign", j.id, "trace", j.trace.TraceID())
			continue
		}
		j.mu.Lock()
		j.results = results
		j.mu.Unlock()
		if err != nil {
			j.setStatus(StatusFailed, err.Error())
			s.journal.state(j.id, StatusFailed, err.Error())
			s.log.Warn("campaign failed",
				"campaign", j.id, "trace", j.trace.TraceID(), "error", err)
		} else {
			j.setStatus(StatusDone, "")
			s.journal.state(j.id, StatusDone, "")
			s.log.Info("campaign done",
				"campaign", j.id, "trace", j.trace.TraceID(),
				"sessions", j.total, "elapsed", time.Since(start).Round(time.Millisecond))
		}
	}
}

// execute runs one expanded campaign: through the cluster coordinator when
// one is configured (each worker resolves its shard against its own warm
// memo/artifact caches), in-process on the shared runner otherwise. Both
// paths return results index-aligned with the plan, so the merge — and
// everything downstream of it (rows, tables, solver aggregation) — is
// identical. In-process execution is bounded by the server's run context
// (the drain deadline); cluster dispatch is not — a coordinator killed
// mid-campaign relies on the journal plus the workers' own stores, which is
// the same guarantee with no cooperation needed from remote processes.
func (s *Server) execute(j *job, progress func(completed, total int)) ([]*engine.Result, error) {
	plan := j.plan
	if s.cfg.Cluster != nil {
		// Background context plus the trace recorder: cluster dispatch stays
		// non-cancelable (a killed coordinator relies on the journal), while
		// the recorder collects dispatch/steal/spill and worker spans.
		return s.cfg.Cluster.RunContext(obs.WithTrace(context.Background(), j.trace), plan.Specs, progress)
	}
	start := time.Now()
	results, err := s.setup.Runner.RunContext(obs.WithTrace(s.runCtx, j.trace), plan.Sessions, progress)
	j.trace.Record(obs.Span{
		Name: "simulate", Worker: "local", Sessions: len(plan.Sessions),
		StartUS: start.UnixMicro(), DurUS: time.Since(start).Microseconds(),
	})
	return results, err
}

// Submit validates and enqueues a campaign, returning its job status. In
// cluster mode the expansion skips building runnable in-process sessions
// (the workers rebuild them from the plan's wire specs), so submission
// never generates traces the coordinator will not simulate.
func (s *Server) Submit(c Campaign) (JobStatus, error) {
	plan, err := c.expand(s.setup, s.cfg.Cluster == nil)
	if err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, fmt.Errorf("server is shutting down")
	}
	s.nextID++
	id := fmt.Sprintf("c%04d", s.nextID)
	j := &job{
		id:       id,
		campaign: c,
		plan:     plan,
		total:    len(plan.Meta),
		trace:    obs.NewRecorder(obs.MintTraceID(id)),
		enqueued: time.Now(),
		status:   StatusQueued,
	}
	// The queue is buffered, so a non-blocking send under s.mu is safe —
	// and holding the lock here means Close (which closes the channel under
	// the same lock) cannot race the send.
	select {
	case s.queue <- j:
	default:
		return JobStatus{}, fmt.Errorf("%w (%d campaigns pending)", ErrQueueFull, s.cfg.QueueDepth)
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	// Journal only after the job is actually admitted: a spec record is a
	// promise the campaign will reach a terminal state.
	s.journal.spec(j.id, c, j.total)
	return j.snapshot(), nil
}

// evictLocked drops the oldest finished jobs while more than MaxJobs are
// retained. Queued or running jobs are never evicted. Caller holds s.mu.
func (s *Server) evictLocked() {
	if len(s.jobs) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	for i, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		if len(s.jobs) <= s.cfg.MaxJobs {
			kept = append(kept, s.order[i:]...)
			break
		}
		j.mu.Lock()
		done := terminal(j.status)
		j.mu.Unlock()
		if done {
			delete(s.jobs, id)
		} else {
			kept = append(kept, id)
		}
	}
	s.order = kept
}

// jobByID looks a job up.
func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// figure computes (once) and returns the named figure table. Figure
// simulations run on the shared runner, so campaigns covering the same
// sessions are served from the same memo cache.
func (s *Server) figure(name string) (*experiments.Table, error) {
	gen, canon, err := s.figureGen(name)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	e, ok := s.figures[canon]
	if !ok {
		e = &figEntry{}
		s.figures[canon] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.tab, e.err = gen() })
	return e.tab, e.err
}

// figureGen resolves a figure name (with the same aliases as
// cmd/pes-experiments) to its generator and canonical cache key.
func (s *Server) figureGen(name string) (func() (*experiments.Table, error), string, error) {
	switch strings.ToLower(name) {
	case "fig2":
		return s.setup.Fig2, "fig2", nil
	case "fig3":
		return s.setup.Fig3, "fig3", nil
	case "table1":
		return s.setup.Table1, "table1", nil
	case "fig8":
		return s.setup.Fig8, "fig8", nil
	case "fig9":
		return s.setup.Fig9, "fig9", nil
	case "fig10":
		return s.setup.Fig10, "fig10", nil
	case "fig11":
		return s.setup.Fig11, "fig11", nil
	case "fig12":
		return s.setup.Fig12, "fig12", nil
	case "fig13":
		return s.setup.Fig13, "fig13", nil
	case "fig14":
		return func() (*experiments.Table, error) { return s.setup.Fig14(nil) }, "fig14", nil
	case "overhead", "sec6.3":
		return s.setup.OverheadTable, "overhead", nil
	case "ablation", "nodom":
		return s.setup.AblationNoDOM, "ablation", nil
	case "tx2", "otherdevice":
		return s.setup.OtherDeviceTX2, "tx2", nil
	}
	return nil, "", fmt.Errorf("%w %q", errUnknownFigure, name)
}

// Handler returns the HTTP API:
//
//	POST /v1/campaigns              submit a campaign (JSON body), 202 + job id
//	GET  /v1/campaigns/{id}         job status and progress
//	GET  /v1/campaigns/{id}/results per-session results + aggregate tables
//	GET  /v1/campaigns/{id}/trace   the campaign's span timeline
//	GET  /v1/figures/{name}         one figure of the paper, computed on demand
//	GET  /healthz                   liveness + shared-cache counters
//	GET  /metrics                   Prometheus text exposition of the registry
//
// Coordinators (Config.Cluster set) additionally serve the membership API:
//
//	POST   /v1/cluster/workers        register a worker ({"addr": "host:port"})
//	DELETE /v1/cluster/workers?addr=  deregister a worker
//	GET    /v1/cluster/workers        list members with health state
//
// Every route is timed into the pes_http_request_duration_seconds histogram
// under its route pattern.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(method, route string, h http.HandlerFunc) {
		mux.Handle(method+" "+route, s.timed(route, h))
	}
	handle("POST", "/v1/campaigns", s.handleSubmit)
	handle("GET", "/v1/campaigns/{id}", s.handleStatus)
	handle("GET", "/v1/campaigns/{id}/results", s.handleResults)
	handle("GET", "/v1/campaigns/{id}/trace", s.handleTrace)
	handle("GET", "/v1/figures/{name}", s.handleFigure)
	handle("GET", "/healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.timed("/metrics", s.metrics.Handler()))
	if s.cfg.Cluster != nil {
		handle("POST", "/v1/cluster/workers", s.handleClusterRegister)
		handle("DELETE", "/v1/cluster/workers", s.handleClusterDeregister)
		handle("GET", "/v1/cluster/workers", s.handleClusterMembers)
	}
	return mux
}

// TraceResponse is the body of GET /v1/campaigns/{id}/trace: the campaign's
// span timeline in canonical order. Queryable at any point of the lifecycle
// (an in-flight campaign reports the spans recorded so far); because the
// trace ID is minted from the campaign ID, a journal-resumed campaign keeps
// its trace identity across restarts.
type TraceResponse struct {
	ID      string     `json:"id"`
	TraceID string     `json:"trace_id"`
	Status  string     `json:"status"`
	Spans   []obs.Span `json:"spans"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown campaign id"})
		return
	}
	spans := j.trace.Timeline()
	if spans == nil {
		spans = []obs.Span{}
	}
	writeJSON(w, http.StatusOK, TraceResponse{
		ID:      j.id,
		TraceID: j.trace.TraceID(),
		Status:  j.snapshot().Status,
		Spans:   spans,
	})
}

// registerRequest is the body of POST /v1/cluster/workers.
type registerRequest struct {
	Addr string `json:"addr"`
}

// membersResponse is the body of the membership endpoints' answers.
type membersResponse struct {
	Members []cluster.Member `json:"members"`
}

func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid registration JSON: " + err.Error()})
		return
	}
	if err := s.cfg.Cluster.Register(req.Addr); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, membersResponse{Members: s.cfg.Cluster.Members()})
}

func (s *Server) handleClusterDeregister(w http.ResponseWriter, r *http.Request) {
	addr := r.URL.Query().Get("addr")
	if addr == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "missing addr query parameter"})
		return
	}
	if !s.cfg.Cluster.Deregister(addr) {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown worker address"})
		return
	}
	writeJSON(w, http.StatusOK, membersResponse{Members: s.cfg.Cluster.Members()})
}

func (s *Server) handleClusterMembers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, membersResponse{Members: s.cfg.Cluster.Members()})
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing left to report
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var c Campaign
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid campaign JSON: " + err.Error()})
		return
	}
	st, err := s.Submit(c)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			// Admission control, not a client mistake: tell the client when
			// to come back instead of letting the queue grow without bound.
			w.Header().Set("Retry-After", "5")
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown campaign id"})
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// rowFilter is the validated server-side row selection of a results
// request: an optional application and an optional (canonical) scheduler.
type rowFilter struct {
	app   string
	sched string
}

// parseRowFilter validates the ?app= / ?scheduler= query parameters.
func parseRowFilter(r *http.Request) (rowFilter, error) {
	var f rowFilter
	if name := r.URL.Query().Get("app"); name != "" {
		spec, err := webapp.ByName(name)
		if err != nil {
			return f, err
		}
		f.app = spec.Name
	}
	if name := r.URL.Query().Get("scheduler"); name != "" {
		canon, err := sessions.Canonical(name)
		if err != nil {
			return f, err
		}
		f.sched = canon
	}
	return f, nil
}

// match reports whether a session's metadata passes the filter.
func (f rowFilter) match(m SessionMeta) bool {
	return (f.app == "" || m.App == f.app) && (f.sched == "" || m.Scheduler == f.sched)
}

// wantsNDJSON reports whether the client asked for streaming NDJSON rows
// (?format=ndjson or an Accept header naming application/x-ndjson).
func wantsNDJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "ndjson" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown campaign id"})
		return
	}
	st := j.snapshot()
	if st.Status != StatusDone {
		writeJSON(w, http.StatusConflict, apiError{
			Error: fmt.Sprintf("campaign %s is %s, results are available once it is %s", st.ID, st.Status, StatusDone),
		})
		return
	}
	filter, err := parseRowFilter(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	j.mu.Lock()
	results := j.results
	j.mu.Unlock()

	if wantsNDJSON(r) {
		// Stream one ResultRow per line so a large sharded sweep never
		// materializes as one giant document on either side. Aggregate
		// tables/solver stats are JSON-mode only.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for i, res := range results {
			if !filter.match(j.plan.Meta[i]) {
				continue
			}
			if err := enc.Encode(ResultRow{SessionMeta: j.plan.Meta[i], Result: res}); err != nil {
				return // client went away; nothing left to report
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return
	}

	rows := make([]ResultRow, 0, len(results))
	var solver optimizer.SolverStats
	for i, res := range results {
		if !filter.match(j.plan.Meta[i]) {
			continue
		}
		rows = append(rows, ResultRow{SessionMeta: j.plan.Meta[i], Result: res})
		solver = solver.Add(res.Solver)
	}
	// The aggregate tables always cover the full campaign — a filtered
	// subset would silently change what the figures mean — while rows and
	// the solver sum honor the filter.
	out := Results{
		ID:     j.id,
		Rows:   rows,
		Tables: j.plan.Tables(results),
		Solver: solver,
		Stats:  s.Stats(),
	}
	if s.cfg.Cluster != nil {
		cs := s.cfg.Cluster.Stats()
		out.Cluster = &cs
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	tab, err := s.figure(r.PathValue("name"))
	if err != nil {
		code := http.StatusNotFound
		if !errors.Is(err, errUnknownFigure) {
			code = http.StatusInternalServerError
		}
		writeJSON(w, code, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, tab)
}

// health is the response body of GET /healthz.
type health struct {
	Status string      `json:"status"`
	Jobs   int         `json:"jobs"`
	Stats  batch.Stats `json:"stats"`
	// Workers is the simulation worker-pool size of the shared runner.
	Workers int `json:"workers"`
	// Cluster reports shard/retry/remote-worker counters when campaigns
	// are sharded across workers (absent in-process).
	Cluster *cluster.Stats `json:"cluster,omitempty"`
	// Journaled reports whether a persistent store journals campaign
	// lifecycles; Resumed counts the campaigns re-enqueued from it at boot.
	// Always present (no omitempty): the CI chaos smoke gates on the exact
	// count, and 0 is an answer, not an absence.
	Journaled bool `json:"journaled"`
	Resumed   int  `json:"resumed"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	h := health{
		Status:    "ok",
		Jobs:      jobs,
		Stats:     s.Stats(),
		Workers:   s.setup.Runner.Workers(),
		Journaled: s.journal != nil,
		Resumed:   s.resumed,
	}
	if s.cfg.Cluster != nil {
		cs := s.cfg.Cluster.Stats()
		h.Cluster = &cs
	}
	writeJSON(w, http.StatusOK, h)
}
