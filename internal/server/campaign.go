// Package server is the simulation-as-a-service layer: a long-running HTTP
// service that accepts simulation campaigns, executes them on the concurrent
// batch runner, and shares one process-wide memo cache across every request,
// so overlapping campaigns (and figure requests) simulate each unique
// session exactly once.
package server

import (
	"fmt"
	"sort"

	"repro/internal/acmp"
	"repro/internal/batch"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/sessions"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/webapp"
)

// Campaign is one simulation campaign request: the cross product of
// applications, trace seeds and schedulers on one platform, optionally
// extended by a predictor sensitivity sweep. Every field is optional; the
// zero Campaign expands to the full scheduler comparison of every
// application on one seed.
type Campaign struct {
	// Platform names the hardware model: "exynos5410" (default) or "tx2"
	// (case-insensitive; the canonical model names are accepted too).
	Platform string `json:"platform,omitempty"`
	// Apps lists the applications to simulate; empty means the full
	// 18-application suite.
	Apps []string `json:"apps,omitempty"`
	// TraceSeeds lists the user/session seeds to generate traces from;
	// empty means seed 1.
	TraceSeeds []int64 `json:"trace_seeds,omitempty"`
	// Schedulers lists the schedulers to compare; empty means all five.
	Schedulers []string `json:"schedulers,omitempty"`
	// Predictor overrides the PES predictor configuration.
	Predictor *PredictorSpec `json:"predictor,omitempty"`
	// Sweep adds a sensitivity sweep on top of the base campaign.
	Sweep *Sweep `json:"sweep,omitempty"`
	// OracleVersion selects the Oracle solver for this campaign ("v1" or
	// "v2"); empty uses the server's configured default. Only Oracle
	// sessions are affected.
	OracleVersion string `json:"oracle_version,omitempty"`
}

// PredictorSpec is the JSON form of the PES predictor configuration. Zero
// fields keep the paper defaults.
type PredictorSpec struct {
	ConfidenceThreshold float64 `json:"confidence_threshold,omitempty"`
	MaxDegree           int     `json:"max_degree,omitempty"`
	// UseDOMAnalysis defaults to true when omitted.
	UseDOMAnalysis *bool `json:"use_dom_analysis,omitempty"`
}

// Sweep describes an optional sensitivity sweep: extra PES sessions are
// added for each confidence threshold (reactive schedulers and the Oracle
// ignore the predictor, so only PES is swept).
type Sweep struct {
	ConfidenceThresholds []float64 `json:"confidence_thresholds,omitempty"`
}

// SessionMeta labels one expanded session of a campaign; results rows carry
// it alongside the engine result.
type SessionMeta struct {
	Platform  string `json:"platform"`
	App       string `json:"app"`
	TraceSeed int64  `json:"trace_seed"`
	Scheduler string `json:"scheduler"`
	// ConfidenceThreshold is set on PES sessions only.
	ConfidenceThreshold float64 `json:"confidence_threshold,omitempty"`
	// OracleVersion is set on Oracle sessions only ("v1"/"v2").
	OracleVersion string `json:"oracle_version,omitempty"`
	// Label is the scheduler presentation label; for swept PES sessions it
	// carries the threshold (e.g. "PES@50%").
	Label string `json:"label"`
}

// Plan is a validated, fully expanded campaign: the batch sessions to run
// in-process and, index-aligned, the metadata describing each one plus the
// wire specs the cluster coordinator routes to workers instead.
type Plan struct {
	Platform string
	// Sessions holds the runnable in-process sessions; it is nil for plans
	// a coordinator expanded for cluster execution (workers rebuild the
	// sessions from Specs).
	Sessions []batch.Session
	Meta     []SessionMeta
	// Specs mirrors Sessions as self-describing wire specs: a cluster
	// worker rebuilds session i of this plan from Specs[i].
	Specs []cluster.SessionSpec
}

// platformByName resolves a campaign platform name to its shared hardware
// model (one instance per model keeps the artifact store's pointer-keyed
// fingerprint memo effective across campaigns).
func platformByName(name string) (*acmp.Platform, error) {
	return acmp.ByName(name)
}

// predictorConfig merges a PredictorSpec over the setup's base configuration.
func predictorConfig(base predictor.Config, spec *PredictorSpec) predictor.Config {
	if spec == nil {
		return base
	}
	cfg := base
	if spec.ConfidenceThreshold != 0 {
		cfg.ConfidenceThreshold = spec.ConfidenceThreshold
	}
	if spec.MaxDegree != 0 {
		cfg.MaxDegree = spec.MaxDegree
	}
	if spec.UseDOMAnalysis != nil {
		cfg.UseDOMAnalysis = *spec.UseDOMAnalysis
	}
	return cfg
}

// Expand validates the campaign and expands it into batch sessions, reusing
// the setup's trained learner and predictor defaults. The expansion is the
// apps × seeds × schedulers cross product at the base predictor
// configuration, plus one extra PES pass per distinct sweep threshold.
func (c Campaign) Expand(setup *experiments.Setup) (*Plan, error) {
	return c.expand(setup, true)
}

// expand is Expand with the in-process sessions optional: a coordinator
// executes a plan through its cluster (only Specs cross the wire), so
// building the runnable sessions — which generates every (app, seed) trace
// locally — would spend the exact work sharding exists to offload.
// Validation is unchanged either way: platforms, apps, schedulers, and
// sweep thresholds are checked during expansion itself.
func (c Campaign) expand(setup *experiments.Setup, buildSessions bool) (*Plan, error) {
	platform, err := platformByName(c.Platform)
	if err != nil {
		return nil, err
	}

	var apps []*webapp.Spec
	if len(c.Apps) == 0 {
		apps = webapp.Registry()
	} else {
		for _, name := range c.Apps {
			spec, err := webapp.ByName(name)
			if err != nil {
				return nil, err
			}
			apps = append(apps, spec)
		}
	}

	seeds := c.TraceSeeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}

	var scheds []string
	if len(c.Schedulers) == 0 {
		scheds = sessions.Names()
	} else {
		for _, name := range c.Schedulers {
			canon, err := sessions.Canonical(name)
			if err != nil {
				return nil, err
			}
			scheds = append(scheds, canon)
		}
	}

	baseCfg := predictorConfig(setup.Config.Predictor, c.Predictor)

	oracleVer := setup.Config.OracleVersion.OrDefault()
	if c.OracleVersion != "" {
		oracleVer, err = sched.ParseOracleVersion(c.OracleVersion)
		if err != nil {
			return nil, err
		}
	}

	// Distinct sweep thresholds beyond the base configuration, in ascending
	// order so the expansion (and the results rows) are deterministic.
	var sweepThresholds []float64
	if c.Sweep != nil {
		seen := map[float64]bool{baseCfg.ConfidenceThreshold: true}
		for _, th := range c.Sweep.ConfidenceThresholds {
			if th <= 0 || th > 1 {
				return nil, fmt.Errorf("sweep confidence threshold %g out of range (0, 1]", th)
			}
			if !seen[th] {
				seen[th] = true
				sweepThresholds = append(sweepThresholds, th)
			}
		}
		sort.Float64s(sweepThresholds)
	}

	plan := &Plan{Platform: platform.Name}
	add := func(app *webapp.Spec, seed int64, schedName string, cfg predictor.Config, label string) error {
		if buildSessions {
			// The artifact store generates each (app, seed) trace exactly
			// once per process, no matter how many schedulers, sweep
			// points, or overlapping campaigns replay it.
			tr := setup.Artifacts.Trace(app, seed, trace.PurposeEval, trace.Options{})
			sess, err := sessions.New(sessions.Spec{
				Platform:      platform,
				Trace:         tr,
				Scheduler:     schedName,
				Learner:       setup.Learner,
				Predictor:     cfg,
				Artifacts:     setup.Artifacts,
				OracleVersion: oracleVer,
			})
			if err != nil {
				return err
			}
			plan.Sessions = append(plan.Sessions, sess)
		}
		meta := SessionMeta{
			Platform:  platform.Name,
			App:       app.Name,
			TraceSeed: seed,
			Scheduler: schedName,
			Label:     label,
		}
		spec := cluster.SessionSpec{
			Platform:  platform.Name,
			App:       app.Name,
			TraceSeed: seed,
			Scheduler: schedName,
			Predictor: cfg,
		}
		if schedName == sessions.PES {
			meta.ConfidenceThreshold = cfg.ConfidenceThreshold
		}
		if schedName == sessions.Oracle {
			meta.OracleVersion = oracleVer.String()
			spec.OracleVersion = oracleVer.String()
		}
		plan.Meta = append(plan.Meta, meta)
		plan.Specs = append(plan.Specs, spec)
		return nil
	}
	for _, app := range apps {
		for _, seed := range seeds {
			for _, name := range scheds {
				if err := add(app, seed, name, baseCfg, name); err != nil {
					return nil, err
				}
			}
			for _, th := range sweepThresholds {
				cfg := baseCfg
				cfg.ConfidenceThreshold = th
				label := fmt.Sprintf("%s@%d%%", sessions.PES, int(th*100+0.5))
				if err := add(app, seed, sessions.PES, cfg, label); err != nil {
					return nil, err
				}
			}
		}
	}
	if len(plan.Meta) == 0 {
		return nil, fmt.Errorf("campaign expands to zero sessions")
	}
	return plan, nil
}

// Tables aggregates campaign results into the energy and QoS tables the
// figure harness computes (the shape of Fig. 11 and 12): one row per
// application, one column per scheduler label, averaged over trace seeds.
// Sessions without a result (failed batch entries) are skipped. results must
// be index-aligned with the plan's sessions, as returned by the batch
// runner.
func (p *Plan) Tables(results []*engine.Result) []*experiments.Table {
	var labels, apps []string
	haveLabel := map[string]bool{}
	haveApp := map[string]bool{}
	type cell struct{ energy, viol, n float64 }
	cells := map[[2]string]*cell{}
	for i, r := range results {
		if i >= len(p.Meta) || r == nil {
			continue
		}
		m := p.Meta[i]
		if !haveLabel[m.Label] {
			haveLabel[m.Label] = true
			labels = append(labels, m.Label)
		}
		if !haveApp[m.App] {
			haveApp[m.App] = true
			apps = append(apps, m.App)
		}
		k := [2]string{m.App, m.Label}
		c := cells[k]
		if c == nil {
			c = &cell{}
			cells[k] = c
		}
		c.energy += r.TotalEnergyMJ
		c.viol += 100 * r.ViolationRate
		c.n++
	}
	energy := &experiments.Table{
		ID:      "energy",
		Title:   "Total energy per session (mJ, averaged over trace seeds)",
		Columns: labels,
	}
	qos := &experiments.Table{
		ID:      "qos",
		Title:   "QoS violation (%, averaged over trace seeds)",
		Columns: labels,
	}
	for _, app := range apps {
		eRow := make([]float64, len(labels))
		vRow := make([]float64, len(labels))
		for j, label := range labels {
			if c := cells[[2]string{app, label}]; c != nil && c.n > 0 {
				eRow[j] = c.energy / c.n
				vRow[j] = c.viol / c.n
			}
		}
		energy.AddRow(app, eRow...)
		qos.AddRow(app, vRow...)
	}
	return []*experiments.Table{energy, qos, p.percentileTable(results)}
}

// percentileTable aggregates the per-event latency distribution of each
// scheduler label against its QoS targets: tail latencies (p50/p95/p99 in
// milliseconds), the tail of the latency-to-QoS-target ratio (a ratio above
// 1 is a violation; p99_qos_ratio says how deep the worst events cut into
// their deadlines), and the overall violation percentage. Means hide tails;
// under a heavy-traffic framing the p95/p99 columns are what a QoS budget
// is set against.
func (p *Plan) percentileTable(results []*engine.Result) *experiments.Table {
	var labels []string
	latencies := map[string][]float64{}
	ratios := map[string][]float64{}
	violations := map[string]int{}
	for i, r := range results {
		if i >= len(p.Meta) || r == nil {
			continue
		}
		label := p.Meta[i].Label
		if _, ok := latencies[label]; !ok {
			labels = append(labels, label)
		}
		for _, o := range r.Outcomes {
			latencies[label] = append(latencies[label], float64(o.Latency)/float64(simtime.Millisecond))
			ratios[label] = append(ratios[label], float64(o.Latency)/float64(o.Event.QoSTarget()))
			if o.Violated {
				violations[label]++
			}
		}
	}
	tab := &experiments.Table{
		ID:      "latency_percentiles",
		Title:   "Per-scheduler event latency percentiles vs QoS target (all sessions pooled)",
		Columns: []string{"p50_ms", "p95_ms", "p99_ms", "p95_qos_ratio", "p99_qos_ratio", "violation_pct"},
	}
	for _, label := range labels {
		ls, rs := latencies[label], ratios[label]
		if len(ls) == 0 {
			continue
		}
		tab.AddRow(label,
			stats.Percentile(ls, 50),
			stats.Percentile(ls, 95),
			stats.Percentile(ls, 99),
			stats.Percentile(rs, 95),
			stats.Percentile(rs, 99),
			100*float64(violations[label])/float64(len(ls)),
		)
	}
	return tab
}
