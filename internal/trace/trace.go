// Package trace generates, records and replays user interaction traces.
//
// The original study records >100 real interaction traces with a
// record-and-replay tool and replays each one under every scheduler. That
// data is not available, so this package provides the closest synthetic
// equivalent: a stochastic user-behaviour model parameterized per
// application (think times, scroll runs, burstiness, navigation and menu
// habits, and an intrinsic noise term) that produces traces with the same
// statistics the paper reports — roughly 110-second sessions with a few
// dozen events covering the three primitive interactions (load, tap, move),
// including different DOM-level manifestations of the same interaction.
//
// Traces are plain data (JSON-serializable) and are the single source of
// truth replayed identically under every scheduler, so scheduler comparisons
// are paired exactly as in the paper.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/acmp"
	"repro/internal/dom"
	"repro/internal/simtime"
	"repro/internal/webapp"
	"repro/internal/webevent"
)

// Event is the serialized form of one trace entry.
type Event struct {
	Seq        int     `json:"seq"`
	Type       string  `json:"type"`
	TriggerUS  int64   `json:"trigger_us"`
	Target     int     `json:"target"`
	TargetKind int     `json:"target_kind"`
	TmemUS     int64   `json:"tmem_us"`
	Cycles     int64   `json:"cycles"`
	ViewportY  float64 `json:"viewport_y"`
	Navigation bool    `json:"navigation"`
}

// Trace is one recorded interaction session with one application.
type Trace struct {
	App     string  `json:"app"`
	Seed    int64   `json:"seed"`
	DOMSeed int64   `json:"dom_seed"`
	Purpose string  `json:"purpose"` // "train" or "eval"
	Events  []Event `json:"events"`
}

// Purposes for generated corpora.
const (
	PurposeTrain = "train"
	PurposeEval  = "eval"
)

// Count returns the number of events in the trace.
func (t *Trace) Count() int { return len(t.Events) }

// Duration returns the span from the first to the last event trigger.
func (t *Trace) Duration() simtime.Duration {
	if len(t.Events) == 0 {
		return 0
	}
	return simtime.Duration(t.Events[len(t.Events)-1].TriggerUS - t.Events[0].TriggerUS)
}

// Runtime converts the trace into runtime event instances ready to be fed to
// a scheduler simulation.
func (t *Trace) Runtime() ([]*webevent.Event, error) {
	out := make([]*webevent.Event, 0, len(t.Events))
	for _, e := range t.Events {
		typ, err := webevent.ParseType(e.Type)
		if err != nil {
			return nil, fmt.Errorf("trace %s/%d: %w", t.App, t.Seed, err)
		}
		out = append(out, &webevent.Event{
			Seq:        e.Seq,
			App:        t.App,
			Type:       typ,
			Trigger:    simtime.Time(e.TriggerUS),
			Target:     e.Target,
			TargetKind: webevent.NodeKind(e.TargetKind),
			Work: acmp.Workload{
				Tmem:   simtime.Duration(e.TmemUS),
				Cycles: e.Cycles,
			},
			ViewportY:  e.ViewportY,
			Navigation: e.Navigation,
		})
	}
	return out, nil
}

// Session reconstructs the DOM session that produced this trace; replaying
// the trace's events through it reproduces the exact DOM states the user
// saw (used by the predictor's feature extraction).
func (t *Trace) Session() (*webapp.Session, error) {
	spec, err := webapp.ByName(t.App)
	if err != nil {
		return nil, err
	}
	return webapp.NewSession(spec, t.DOMSeed), nil
}

// Options controls trace generation.
type Options struct {
	// TargetDuration is the intended session length (default 110 s).
	TargetDuration simtime.Duration
	// MinEvents and MaxEvents bound the number of events (defaults 12, 70).
	MinEvents, MaxEvents int
}

func (o Options) withDefaults() Options {
	if o.TargetDuration == 0 {
		o.TargetDuration = 110 * simtime.Second
	}
	if o.MinEvents == 0 {
		o.MinEvents = 12
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 70
	}
	return o
}

// Generate produces one synthetic interaction trace for the application
// using the given seed. The same (application, seed, options) triple always
// yields the same trace.
func Generate(spec *webapp.Spec, seed int64, opts Options) *Trace {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	domSeed := seed*31 + 7
	sess := webapp.NewSession(spec, domSeed)
	b := spec.Behavior

	tr := &Trace{App: spec.Name, Seed: seed, DOMSeed: domSeed, Purpose: PurposeEval}

	now := simtime.Time(0).Add(simtime.FromMillis(150 + 100*rng.Float64()))
	g := &generator{rng: rng, spec: spec, sess: sess, trace: tr}

	// The session always starts with the home page load.
	g.emit(webevent.Load, dom.None, now, false)
	g.lastWasLoad = true

	for len(tr.Events) < opts.MaxEvents {
		if simtime.Duration(now) >= opts.TargetDuration && len(tr.Events) >= opts.MinEvents {
			break
		}
		typ, target, gap, nav := g.next(b)
		now = now.Add(gap)
		g.emit(typ, target, now, nav)
	}
	return tr
}

// generator holds the mutable state of one trace-generation run.
type generator struct {
	rng   *rand.Rand
	spec  *webapp.Spec
	sess  *webapp.Session
	trace *Trace

	scrollRemaining int
	lastWasLoad     bool
	lastWasNavTap   bool
	openedMenu      dom.NodeID // menu expanded by the previous tap, if any
	lastGapWasBurst bool
}

// emit appends one event to the trace and applies it to the DOM session.
func (g *generator) emit(typ webevent.Type, target dom.NodeID, at simtime.Time, navigation bool) {
	kind := dom.Document
	if target != dom.None {
		kind = g.sess.Tree().Node(target).Kind
	}
	work := g.spec.SampleWorkload(typ, kind, g.rng)
	g.trace.Events = append(g.trace.Events, Event{
		Seq:        len(g.trace.Events),
		Type:       typ.String(),
		TriggerUS:  at.Micros(),
		Target:     int(target),
		TargetKind: int(kind),
		TmemUS:     work.Tmem.Micros(),
		Cycles:     work.Cycles,
		ViewportY:  g.sess.Tree().ViewportCenterY(),
		Navigation: navigation,
	})
	mut := g.sess.Apply(typ, target)
	g.lastWasLoad = typ == webevent.Load
	g.lastWasNavTap = navigation
	if mut.Kind == dom.MenuToggled && !g.sess.Tree().Node(mut.Menu).Hidden {
		g.openedMenu = mut.Menu
	} else if typ != webevent.Load {
		g.openedMenu = dom.None
	}
}

// next decides the next user action: its event type, target node, the gap
// since the previous event, and whether it is a navigation tap.
func (g *generator) next(b webapp.Behavior) (webevent.Type, dom.NodeID, simtime.Duration, bool) {
	tree := g.sess.Tree()

	// A navigation tap is always followed by the resulting page load after a
	// short request-dispatch delay.
	if g.sess.PendingNavigation() != "" {
		gap := simtime.FromMillis(80 + 180*g.rng.Float64())
		return webevent.Load, dom.None, gap, false
	}

	intentMove, intentTap := g.decideIntent(b, tree)

	// Noise: the user deviates from the predictable intent.
	if g.rng.Float64() < b.Noise {
		intentMove = tree.Scrollable() && !tree.AtBottom() && g.rng.Float64() < 0.5
		intentTap = !intentMove
		g.scrollRemaining = 0
	}

	if intentMove {
		gap := g.moveGap(b)
		return b.MoveManifestation, dom.None, gap, false
	}
	_ = intentTap
	return g.tapAction(b, tree)
}

// decideIntent implements the predictable part of the behaviour model.
func (g *generator) decideIntent(b webapp.Behavior, tree *dom.Tree) (move, tap bool) {
	canScroll := tree.Scrollable() && !tree.AtBottom()
	switch {
	case g.scrollRemaining > 0 && canScroll:
		g.scrollRemaining--
		return true, false
	case g.lastWasLoad && canScroll && g.rng.Float64() < b.AfterLoadScrollProb:
		g.startRun(b, tree)
		return true, false
	case g.openedMenu != dom.None && g.rng.Float64() < b.MenuFollowProb:
		return false, true
	case canScroll && g.rng.Float64() < b.ScrollAffinity:
		g.startRun(b, tree)
		return true, false
	default:
		return false, true
	}
}

// startRun begins a new run of consecutive scrolls. Most runs sweep to the
// bottom of the page (the user scans the whole page); the rest stop after a
// geometrically distributed number of steps.
func (g *generator) startRun(b webapp.Behavior, tree *dom.Tree) {
	if g.rng.Float64() < 0.75 {
		step := tree.ViewportHeight * dom.ScrollStepFraction
		remaining := tree.PageHeight - tree.ViewportHeight - tree.ViewportTop
		n := int(remaining/step) + 1
		if n < 1 {
			n = 1
		}
		g.scrollRemaining = n - 1
		return
	}
	cont := 1 - 1/b.ScrollRunMean
	if cont < 0 {
		cont = 0
	}
	length := 1
	for length < 20 && g.rng.Float64() < cont {
		length++
	}
	g.scrollRemaining = length - 1
}

// moveGap returns the inter-arrival gap for a move event. The first move
// after a load frequently arrives while the load is still rendering — the
// "impatient scroll" that produces event interference.
func (g *generator) moveGap(b webapp.Behavior) simtime.Duration {
	if g.lastWasLoad {
		if g.rng.Float64() < 0.18 {
			// The impatient case: the user starts scrolling while the page
			// is still rendering, producing event interference.
			return simtime.FromMillis(2400 + 2200*g.rng.Float64())
		}
		return g.thinkGap(b)
	}
	if g.scrollRemaining > 0 || !g.lastGapWasBurst {
		return simtime.FromMillis(b.ScrollGapMs * (0.6 + 0.8*g.rng.Float64()))
	}
	return simtime.FromMillis(b.ScrollGapMs * (0.6 + 0.8*g.rng.Float64()))
}

// thinkGap returns a deliberate-action gap: either a burst right after the
// previous event or a longer reading/thinking pause.
func (g *generator) thinkGap(b webapp.Behavior) simtime.Duration {
	if g.rng.Float64() < b.BurstProb {
		g.lastGapWasBurst = true
		return simtime.FromMillis(b.BurstGapMs * (0.5 + g.rng.Float64()))
	}
	g.lastGapWasBurst = false
	jitter := 1 + b.ThinkJitter*(2*g.rng.Float64()-1)
	return simtime.FromMillis(b.ThinkMeanMs * jitter)
}

// tapAction chooses what the user taps and returns the resulting event.
func (g *generator) tapAction(b webapp.Behavior, tree *dom.Tree) (webevent.Type, dom.NodeID, simtime.Duration, bool) {
	gap := g.thinkGap(b)
	if g.openedMenu != dom.None {
		// Menu follow-ups come quickly: the user opened the menu to use it.
		gap = simtime.FromMillis(600 + 900*g.rng.Float64())
		if item := g.visibleMenuItem(tree, g.openedMenu); item != dom.None {
			n := tree.Node(item)
			return b.TapManifestation, item, gap, n.NavigatesTo != ""
		}
	}

	// Form submission.
	if b.FormProb > 0 && g.rng.Float64() < b.FormProb {
		if form := g.visibleOfKind(tree, dom.Form); form != dom.None {
			return webevent.Submit, form, gap, false
		}
	}

	// Menu toggle.
	if g.rng.Float64() < b.MenuProb {
		if toggle := g.visibleToggle(tree); toggle != dom.None {
			return b.TapManifestation, toggle, gap, false
		}
	}

	// Navigation vs plain tap.
	wantNav := g.rng.Float64() < b.NavProb
	candidates := tree.VisibleTappable()
	var navs, plains []dom.NodeID
	for _, id := range candidates {
		n := tree.Node(id)
		if n.TogglesMenu != dom.None {
			continue
		}
		if n.NavigatesTo != "" {
			navs = append(navs, id)
		} else {
			plains = append(plains, id)
		}
	}
	pick := func(ids []dom.NodeID) dom.NodeID {
		if len(ids) == 0 {
			return dom.None
		}
		return ids[g.rng.Intn(len(ids))]
	}
	var target dom.NodeID
	if wantNav {
		target = pick(navs)
	}
	if target == dom.None {
		target = pick(plains)
	}
	if target == dom.None {
		target = pick(candidates)
	}
	if target == dom.None {
		// Degenerate page: fall back to a scroll if possible, else re-tap the
		// document root as a no-op tap.
		if tree.Scrollable() {
			return b.MoveManifestation, dom.None, gap, false
		}
		return b.TapManifestation, dom.None, gap, false
	}
	n := tree.Node(target)
	return b.TapManifestation, target, gap, n.NavigatesTo != "" && n.TogglesMenu == dom.None
}

func (g *generator) visibleMenuItem(tree *dom.Tree, menu dom.NodeID) dom.NodeID {
	var items []dom.NodeID
	for _, id := range tree.VisibleTappable() {
		if tree.Node(id).Parent == menu {
			items = append(items, id)
		}
	}
	if len(items) == 0 {
		return dom.None
	}
	return items[g.rng.Intn(len(items))]
}

func (g *generator) visibleToggle(tree *dom.Tree) dom.NodeID {
	var toggles []dom.NodeID
	for _, id := range tree.VisibleTappable() {
		if tree.Node(id).TogglesMenu != dom.None {
			toggles = append(toggles, id)
		}
	}
	if len(toggles) == 0 {
		return dom.None
	}
	return toggles[g.rng.Intn(len(toggles))]
}

func (g *generator) visibleOfKind(tree *dom.Tree, kind dom.Kind) dom.NodeID {
	for _, id := range tree.VisibleNodes() {
		if tree.Node(id).Kind == kind {
			return id
		}
	}
	return dom.None
}

// Corpus is a set of traces with helpers for experiment plumbing.
type Corpus []*Trace

// CorpusSeed derives the trace seed of one (application index, user) slot of
// a corpus from its base seed. It is exported so that the shared artifact
// cache can enumerate a corpus's traces without regenerating them.
func CorpusSeed(baseSeed int64, appIndex, user int) int64 {
	return baseSeed + int64(appIndex)*1000 + int64(user)*17 + 1
}

// GenerateCorpus builds tracesPerApp traces for every application in apps.
// Seeds are derived from baseSeed so that train and eval corpora, and
// different "users", never share a random stream.
func GenerateCorpus(apps []*webapp.Spec, tracesPerApp int, baseSeed int64, purpose string, opts Options) Corpus {
	var out Corpus
	for ai, spec := range apps {
		for u := 0; u < tracesPerApp; u++ {
			tr := Generate(spec, CorpusSeed(baseSeed, ai, u), opts)
			tr.Purpose = purpose
			out = append(out, tr)
		}
	}
	return out
}

// ByApp returns the traces of the corpus that belong to the application.
func (c Corpus) ByApp(app string) Corpus {
	var out Corpus
	for _, t := range c {
		if t.App == app {
			out = append(out, t)
		}
	}
	return out
}

// Apps returns the distinct application names present in the corpus, in
// first-appearance order.
func (c Corpus) Apps() []string {
	seen := make(map[string]bool)
	var out []string
	for _, t := range c {
		if !seen[t.App] {
			seen[t.App] = true
			out = append(out, t.App)
		}
	}
	return out
}

// TotalEvents returns the number of events across the corpus.
func (c Corpus) TotalEvents() int {
	n := 0
	for _, t := range c {
		n += t.Count()
	}
	return n
}

// Encode writes the corpus as a JSON stream (one trace per line).
func Encode(w io.Writer, c Corpus) error {
	enc := json.NewEncoder(w)
	for _, t := range c {
		if err := enc.Encode(t); err != nil {
			return fmt.Errorf("trace: encode: %w", err)
		}
	}
	return nil
}

// Decode reads a corpus previously written by Encode.
func Decode(r io.Reader) (Corpus, error) {
	dec := json.NewDecoder(r)
	var out Corpus
	for {
		var t Trace
		if err := dec.Decode(&t); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		out = append(out, &t)
	}
	return out, nil
}
